package repro_test

import (
	"testing"
	"time"

	"repro"
)

func TestFacadeDefaultsMatchPaper(t *testing.T) {
	sys, err := repro.NewSystem(repro.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sys.Config()
	if cfg.Platform.Name != "SCC" {
		t.Errorf("default platform = %q, want SCC", cfg.Platform.Name)
	}
	if cfg.TotalCores != 48 || sys.NumAppCores() != 24 || sys.NumServiceCores() != 24 {
		t.Errorf("default partition: %d total, %d app, %d svc",
			cfg.TotalCores, sys.NumAppCores(), sys.NumServiceCores())
	}
	if cfg.Deployment != repro.Dedicated || cfg.Acquire != repro.Lazy {
		t.Error("defaults should be dedicated deployment with lazy acquisition")
	}
}

func TestFacadePlatforms(t *testing.T) {
	if repro.SCC(0).Name != "SCC" || repro.SCC(1).Name != "SCC800" {
		t.Error("SCC setting names wrong")
	}
	if repro.Opteron().Name != "Opteron" {
		t.Error("Opteron name wrong")
	}
	scc, opt := repro.SCC(0), repro.Opteron()
	if scc.NumCores() != 48 || opt.NumCores() != 48 {
		t.Error("both platforms have 48 cores in the paper")
	}
}

func TestFacadePolicies(t *testing.T) {
	ps := repro.Policies()
	if len(ps) != 5 {
		t.Fatalf("Policies() returned %d", len(ps))
	}
	for _, p := range ps {
		got, err := repro.ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	free := 0
	for _, p := range ps {
		if p.StarvationFree() {
			free++
		}
	}
	if free != 2 {
		t.Errorf("%d starvation-free policies, want 2 (Wholly, FairCM)", free)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	sys, err := repro.NewSystem(repro.Config{
		TotalCores: 8,
		Policy:     repro.FairCM,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.Mem.Alloc(1, 0)
	sys.SpawnWorkers(func(rt *repro.Runtime) {
		for !rt.Stopped() {
			rt.Run(func(tx *repro.Tx) {
				tx.Write(counter, tx.Read(counter)+1)
			})
			rt.AddOps(1)
		}
	})
	st := sys.Run(2 * time.Millisecond)
	if st.Commits == 0 || st.Throughput() <= 0 {
		t.Fatalf("no progress: %+v", st)
	}
	if got := sys.Mem.ReadRaw(counter); got != st.Commits {
		t.Fatalf("counter %d != commits %d", got, st.Commits)
	}
}

func TestFacadeIrrevocable(t *testing.T) {
	sys, err := repro.NewSystem(repro.Config{TotalCores: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := sys.Mem.Alloc(1, 0)
	sideEffects := 0
	sys.SpawnWorkers(func(rt *repro.Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.RunIrrevocable(func(ir *repro.Irrevocable) {
			sideEffects++
			ir.Write(a, 7)
		})
	})
	sys.RunToCompletion()
	if sideEffects != 1 || sys.Mem.ReadRaw(a) != 7 {
		t.Fatalf("irrevocable misbehaved: effects=%d a=%d", sideEffects, sys.Mem.ReadRaw(a))
	}
}

func TestFacadeRandDeterminism(t *testing.T) {
	a, b := repro.NewRand(5), repro.NewRand(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("facade Rand not deterministic")
		}
	}
}

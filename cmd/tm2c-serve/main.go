// Command tm2c-serve hosts a TM2C workload behind a TCP line protocol: a
// live-backend System runs in-process, its app cores pull operations from
// connected network clients, execute them as transactions through the typed
// API, and stream the results back. It is the "TM as a service" front-end:
// many concurrent clients share one transactional memory.
//
// Usage:
//
//	tm2c-serve -addr 127.0.0.1:7344 -app bank -accounts 1024
//	tm2c-serve -addr 127.0.0.1:0 -app kv -capacity 4096
//
// Apps and their line protocols (one request per line, one response line per
// request; see docs/WIRE.md):
//
//	bank:   TRANSFER <from> <to> <amt> → OK
//	        BALANCE                    → OK <total>   (transactional scan)
//	        TOTAL                      → OK <total>   (static invariant)
//	intset: ADD <k> | DEL <k> | HAS <k> → OK 1|0
//	kv:     PUT <k> <v> → OK
//	        GET <k>     → OK <v> | NF
//	        DEL <k>     → OK 1|0
//	all:    PING → OK, QUIT (closes the connection),
//	        SHUTDOWN → OK and the server drains and exits.
//
// Malformed requests get "ERR <reason>" and the connection stays up. On
// SIGINT/SIGTERM or SHUTDOWN the server stops accepting, closes the op
// queue, lets the in-flight transactions finish, and exits 0 only if the
// lock tables drained empty.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7344", "TCP listen address (port 0 picks a free port, printed on stdout)")
		app      = flag.String("app", "bank", "hosted workload: bank | intset | kv")
		cores    = flag.Int("cores", 8, "total cores of the hosted system")
		accounts = flag.Int("accounts", 1024, "bank: number of accounts")
		capacity = flag.Int("capacity", 4096, "kv: slot capacity of the store")
		seed     = flag.Uint64("seed", 1, "system seed")
		quiet    = flag.Bool("quiet", false, "suppress the per-run stats line")
	)
	flag.Parse()

	srv, err := newServer(serverConfig{
		addr:     *addr,
		app:      *app,
		cores:    *cores,
		accounts: *accounts,
		capacity: *capacity,
		seed:     *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tm2c-serve: %v\n", err)
		os.Exit(2)
	}
	// The bound address goes to stdout first, so scripts using port 0 can
	// scrape it before the first client connects.
	fmt.Printf("LISTEN %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		srv.InitiateShutdown()
	}()

	st, err := srv.Serve()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tm2c-serve: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("DONE commits=%d aborts=%d ops=%d\n", st.Commits, st.Aborts, st.Ops)
	}
	if leaked := srv.LockedAddrs(); leaked != 0 {
		fmt.Fprintf(os.Stderr, "tm2c-serve: %d addresses still locked after drain\n", leaked)
		os.Exit(1)
	}
}

package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// startTestServer boots a server on an ephemeral port and returns it plus a
// channel carrying Serve's result.
func startTestServer(t *testing.T, app string) (*server, chan *core.Stats) {
	t.Helper()
	srv, err := newServer(serverConfig{
		addr:     "127.0.0.1:0",
		app:      app,
		cores:    8,
		accounts: 64,
		capacity: 256,
		seed:     1,
	})
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	done := make(chan *core.Stats, 1)
	go func() {
		st, err := srv.Serve()
		if err != nil {
			t.Errorf("Serve: %v", err)
		}
		done <- st
	}()
	return srv, done
}

type testConn struct {
	c  net.Conn
	in *bufio.Scanner
}

func dialTest(t *testing.T, addr string) *testConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return &testConn{c: c, in: bufio.NewScanner(c)}
}

func (tc *testConn) rt(t *testing.T, line string) string {
	t.Helper()
	fmt.Fprintln(tc.c, line)
	if !tc.in.Scan() {
		t.Fatalf("%s: connection closed (err %v)", line, tc.in.Err())
	}
	return tc.in.Text()
}

func waitDrained(t *testing.T, srv *server, done chan *core.Stats) *core.Stats {
	t.Helper()
	select {
	case st := <-done:
		if leaked := srv.LockedAddrs(); leaked != 0 {
			t.Errorf("%d addresses still locked after drain", leaked)
		}
		return st
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain after shutdown")
		return nil
	}
}

// TestServeBankEndToEnd is the bank-transfer conservation check over real
// TCP: concurrent clients hammer transfers, then the transactional BALANCE
// scan must still equal the static TOTAL, and the drained server must hold
// no locks.
func TestServeBankEndToEnd(t *testing.T) {
	srv, done := startTestServer(t, "bank")
	const clients, opsPer = 4, 200
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc := dialTest(t, srv.Addr())
			defer tc.c.Close()
			for op := 0; op < opsPer; op++ {
				from := (i*7 + op) % 64
				to := (i*13 + op*3) % 64
				if reply := tc.rt(t, fmt.Sprintf("TRANSFER %d %d 2", from, to)); reply != "OK" {
					t.Errorf("TRANSFER: %q", reply)
					return
				}
			}
		}()
	}
	wg.Wait()

	tc := dialTest(t, srv.Addr())
	total := tc.rt(t, "TOTAL")
	bal := tc.rt(t, "BALANCE")
	if total != bal || !strings.HasPrefix(total, "OK ") {
		t.Errorf("money not conserved over the wire: TOTAL %q, BALANCE %q", total, bal)
	}
	if reply := tc.rt(t, "BOGUS 1"); !strings.HasPrefix(reply, "ERR") {
		t.Errorf("unknown verb not rejected: %q", reply)
	}
	if reply := tc.rt(t, "SHUTDOWN"); reply != "OK" {
		t.Errorf("SHUTDOWN: %q", reply)
	}
	tc.c.Close()

	st := waitDrained(t, srv, done)
	if want := uint64(clients * opsPer); st.Ops < want {
		t.Errorf("server executed %d ops, want >= %d", st.Ops, want)
	}
	if st.Commits == 0 {
		t.Error("no transaction committed")
	}
}

// TestServeKV checks the typed-API KV store's protocol semantics, including
// delete tombstones and probe-chain reuse.
func TestServeKV(t *testing.T) {
	srv, done := startTestServer(t, "kv")
	tc := dialTest(t, srv.Addr())
	steps := []struct{ send, want string }{
		{"GET 42", "NF"},
		{"PUT 42 7", "OK"},
		{"GET 42", "OK 7"},
		{"PUT 42 8", "OK"},
		{"GET 42", "OK 8"},
		{"DEL 42", "OK 1"},
		{"DEL 42", "OK 0"},
		{"GET 42", "NF"},
		{"PUT 42 9", "OK"},
		{"GET 42", "OK 9"},
		{"PUT 0 1", "ERR PUT wants a key in [1, 2^64-1)"},
	}
	for _, s := range steps {
		if got := tc.rt(t, s.send); got != s.want {
			t.Errorf("%s: got %q, want %q", s.send, got, s.want)
		}
	}
	tc.rt(t, "SHUTDOWN")
	tc.c.Close()
	waitDrained(t, srv, done)
}

// TestServeIntset drives the elastic linked list over the wire.
func TestServeIntset(t *testing.T) {
	srv, done := startTestServer(t, "intset")
	tc := dialTest(t, srv.Addr())
	steps := []struct{ send, want string }{
		{"HAS 5", "OK 0"},
		{"ADD 5", "OK 1"},
		{"ADD 5", "OK 0"},
		{"HAS 5", "OK 1"},
		{"DEL 5", "OK 1"},
		{"DEL 5", "OK 0"},
	}
	for _, s := range steps {
		if got := tc.rt(t, s.send); got != s.want {
			t.Errorf("%s: got %q, want %q", s.send, got, s.want)
		}
	}
	tc.rt(t, "SHUTDOWN")
	tc.c.Close()
	waitDrained(t, srv, done)
}

package main

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/internal/apps/bank"
	"repro/internal/apps/intset"
	"repro/internal/cm"
	"repro/internal/core"
)

// serverConfig are the knobs newServer needs; a subset of the CLI flags so
// tests can build servers directly.
type serverConfig struct {
	addr     string
	app      string
	cores    int
	accounts int
	capacity int
	seed     uint64
}

// request is one parsed client line on its way to an app core. The executor
// runs inside a worker runtime's transaction loop; resp receives exactly one
// response line.
type request struct {
	exec func(rt *core.Runtime) string
	resp chan string
}

// server glues the pieces together: the hosted System, the workload adapter
// translating protocol lines into transactions, the listener, and the op
// queue the app cores pull from.
type server struct {
	sys  *core.System
	ln   net.Listener
	reqs chan *request
	app  workload

	shutOnce sync.Once
	conns    sync.WaitGroup // active client connections
}

// workload adapts one hosted app to the line protocol: parse a command into
// a transaction-running executor, or reject it.
type workload interface {
	parse(verb string, args []string) (func(rt *core.Runtime) string, error)
}

func newServer(cfg serverConfig) (*server, error) {
	sys, err := core.NewSystem(core.Config{
		Backend:    core.BackendLive,
		Seed:       cfg.seed,
		TotalCores: cfg.cores,
		Policy:     cm.FairCM,
	})
	if err != nil {
		return nil, err
	}
	var app workload
	switch cfg.app {
	case "bank":
		app = &bankWorkload{b: bank.New(sys, cfg.accounts)}
	case "intset":
		app = &intsetWorkload{l: intset.New(sys)}
	case "kv":
		app = newKVWorkload(sys, cfg.capacity)
	default:
		return nil, fmt.Errorf("unknown app %q (want bank | intset | kv)", cfg.app)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, err
	}
	return &server{
		sys:  sys,
		ln:   ln,
		reqs: make(chan *request, 128),
		app:  app,
	}, nil
}

// Addr returns the bound listen address.
func (s *server) Addr() string { return s.ln.Addr().String() }

// InitiateShutdown stops accepting and, once the active connections have
// finished, closes the op queue so the app cores drain and return. Safe to
// call more than once and from any goroutine.
func (s *server) InitiateShutdown() {
	s.shutOnce.Do(func() {
		s.ln.Close()
		go func() {
			s.conns.Wait()
			close(s.reqs)
		}()
	})
}

// Serve spawns the app cores as queue workers, accepts clients until
// shutdown, and returns the drained system's merged stats.
func (s *server) Serve() (*core.Stats, error) {
	s.sys.SpawnWorkers(func(rt *core.Runtime) {
		for req := range s.reqs {
			req.resp <- req.exec(rt)
			rt.AddOps(1)
		}
	})
	go s.acceptLoop()
	st := s.sys.RunToCompletion()
	return st, nil
}

// LockedAddrs reports locks surviving the drain (must be zero). Valid after
// Serve returns.
func (s *server) LockedAddrs() int { return s.sys.LockedAddrs() }

func (s *server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutdown
		}
		s.conns.Add(1)
		go s.serveConn(conn)
	}
}

func (s *server) serveConn(conn net.Conn) {
	defer s.conns.Done()
	defer conn.Close()
	in := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	resp := make(chan string, 1)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		verb, args := strings.ToUpper(fields[0]), fields[1:]
		var reply string
		switch verb {
		case "PING":
			reply = "OK"
		case "QUIT":
			return
		case "SHUTDOWN":
			fmt.Fprintln(out, "OK")
			out.Flush()
			// This connection must end before the queue can close: the
			// shutdown waiter counts it.
			go s.InitiateShutdown()
			return
		default:
			exec, err := s.app.parse(verb, args)
			if err != nil {
				reply = "ERR " + err.Error()
				break
			}
			s.reqs <- &request{exec: exec, resp: resp}
			reply = <-resp
		}
		fmt.Fprintln(out, reply)
		if err := out.Flush(); err != nil {
			return
		}
	}
}

// --- bank ---------------------------------------------------------------

type bankWorkload struct{ b *bank.Bank }

func (w *bankWorkload) parse(verb string, args []string) (func(rt *core.Runtime) string, error) {
	switch verb {
	case "TRANSFER":
		if len(args) != 3 {
			return nil, fmt.Errorf("usage: TRANSFER <from> <to> <amt>")
		}
		from, err1 := strconv.Atoi(args[0])
		to, err2 := strconv.Atoi(args[1])
		amt, err3 := strconv.ParseUint(args[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("TRANSFER wants integers")
		}
		if from < 0 || from >= w.b.Accounts() || to < 0 || to >= w.b.Accounts() {
			return nil, fmt.Errorf("account out of range [0,%d)", w.b.Accounts())
		}
		if from == to {
			// A self-transfer is a no-op; Bank.Transfer assumes distinct
			// accounts (its read-modify-write pair would mint money).
			return func(rt *core.Runtime) string { return "OK" }, nil
		}
		return func(rt *core.Runtime) string {
			w.b.Transfer(rt, from, to, amt)
			return "OK"
		}, nil
	case "BALANCE":
		return func(rt *core.Runtime) string {
			return fmt.Sprintf("OK %d", w.b.Balance(rt))
		}, nil
	case "TOTAL":
		return func(rt *core.Runtime) string {
			return fmt.Sprintf("OK %d", w.b.Total())
		}, nil
	}
	return nil, fmt.Errorf("unknown bank command %q", verb)
}

// --- intset -------------------------------------------------------------

type intsetWorkload struct{ l *intset.List }

func (w *intsetWorkload) parse(verb string, args []string) (func(rt *core.Runtime) string, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("usage: %s <key>", verb)
	}
	key, err := strconv.ParseUint(args[0], 10, 63)
	if err != nil {
		return nil, fmt.Errorf("%s wants an unsigned key", verb)
	}
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	switch verb {
	case "ADD":
		return func(rt *core.Runtime) string {
			return fmt.Sprintf("OK %d", b2i(w.l.Add(rt, intset.Normal, key)))
		}, nil
	case "DEL":
		return func(rt *core.Runtime) string {
			return fmt.Sprintf("OK %d", b2i(w.l.Remove(rt, intset.Normal, key)))
		}, nil
	case "HAS":
		return func(rt *core.Runtime) string {
			return fmt.Sprintf("OK %d", b2i(w.l.Contains(rt, intset.Normal, key)))
		}, nil
	}
	return nil, fmt.Errorf("unknown intset command %q", verb)
}

// --- kv -----------------------------------------------------------------

// kvWorkload is a fixed-capacity open-addressing hash table written
// entirely against the typed transactional API: two parallel TArrays hold
// keys and values, linear probing resolves collisions, and a tombstone key
// keeps probe chains intact across deletes. Keys are in [1, 2^63); 0 marks
// an empty slot.
type kvWorkload struct {
	keys core.TArray[uint64]
	vals core.TArray[uint64]
	cap  int
}

// kvTombstone marks a deleted slot: probing continues past it, PUT reuses it.
const kvTombstone = ^uint64(0)

func newKVWorkload(sys *core.System, capacity int) *kvWorkload {
	if capacity < 16 {
		capacity = 16
	}
	return &kvWorkload{
		keys: core.NewTArray(sys, core.Uint64Codec(), capacity, 0),
		vals: core.NewTArray(sys, core.Uint64Codec(), capacity, 0),
		cap:  capacity,
	}
}

func kvHash(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	return k
}

func (w *kvWorkload) parse(verb string, args []string) (func(rt *core.Runtime) string, error) {
	wantArgs := 1
	if verb == "PUT" {
		wantArgs = 2
	}
	if len(args) != wantArgs {
		return nil, fmt.Errorf("usage: GET|DEL <key> or PUT <key> <val>")
	}
	key, err := strconv.ParseUint(args[0], 10, 64)
	if err != nil || key == 0 || key == kvTombstone {
		return nil, fmt.Errorf("%s wants a key in [1, 2^64-1)", verb)
	}
	switch verb {
	case "PUT":
		val, err := strconv.ParseUint(args[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("PUT wants an unsigned value")
		}
		return func(rt *core.Runtime) string {
			ok := false
			rt.Run(func(tx *core.Tx) {
				ok = w.put(tx, key, val)
			})
			if !ok {
				return "ERR store full"
			}
			return "OK"
		}, nil
	case "GET":
		return func(rt *core.Runtime) string {
			found, val := false, uint64(0)
			rt.Run(func(tx *core.Tx) {
				found, val = w.get(tx, key)
			})
			if !found {
				return "NF"
			}
			return fmt.Sprintf("OK %d", val)
		}, nil
	case "DEL":
		return func(rt *core.Runtime) string {
			deleted := false
			rt.Run(func(tx *core.Tx) {
				deleted = w.del(tx, key)
			})
			if deleted {
				return "OK 1"
			}
			return "OK 0"
		}, nil
	}
	return nil, fmt.Errorf("unknown kv command %q", verb)
}

func (w *kvWorkload) put(tx *core.Tx, key, val uint64) bool {
	h := kvHash(key)
	reuse := -1
	for i := 0; i < w.cap; i++ {
		slot := int((h + uint64(i)) % uint64(w.cap))
		switch k := w.keys.Get(tx, slot); k {
		case key:
			w.vals.Set(tx, slot, val)
			return true
		case kvTombstone:
			if reuse < 0 {
				reuse = slot
			}
		case 0:
			if reuse >= 0 {
				slot = reuse
			}
			w.keys.Set(tx, slot, key)
			w.vals.Set(tx, slot, val)
			return true
		}
	}
	if reuse >= 0 {
		w.keys.Set(tx, reuse, key)
		w.vals.Set(tx, reuse, val)
		return true
	}
	return false
}

func (w *kvWorkload) get(tx *core.Tx, key uint64) (bool, uint64) {
	h := kvHash(key)
	for i := 0; i < w.cap; i++ {
		slot := int((h + uint64(i)) % uint64(w.cap))
		switch k := w.keys.Get(tx, slot); k {
		case key:
			return true, w.vals.Get(tx, slot)
		case 0:
			return false, 0
		}
	}
	return false, 0
}

func (w *kvWorkload) del(tx *core.Tx, key uint64) bool {
	h := kvHash(key)
	for i := 0; i < w.cap; i++ {
		slot := int((h + uint64(i)) % uint64(w.cap))
		switch k := w.keys.Get(tx, slot); k {
		case key:
			w.keys.Set(tx, slot, kvTombstone)
			return true
		case 0:
			return false
		}
	}
	return false
}

// Command tm2c-client is the load generator and checker for tm2c-serve's
// line protocol: N concurrent connections each issue a stream of random
// operations against the hosted workload, then the conservation invariant
// is verified over a final connection.
//
// Usage:
//
//	tm2c-client -addr 127.0.0.1:7344 -app bank -clients 4 -ops 500 -check
//	tm2c-client -addr 127.0.0.1:7344 -cmd "TRANSFER 0 1 5"
//	tm2c-client -addr 127.0.0.1:7344 -shutdown
//
// Exits non-zero on any protocol error, transport error, or failed check.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7344", "tm2c-serve address")
		app      = flag.String("app", "bank", "workload to drive: bank | intset | kv")
		clients  = flag.Int("clients", 4, "concurrent client connections")
		ops      = flag.Int("ops", 500, "operations per connection")
		seed     = flag.Int64("seed", 1, "workload seed")
		accounts = flag.Int("accounts", 1024, "bank: account range (must be <= the server's)")
		keyRange = flag.Int64("keys", 512, "intset/kv: key range")
		check    = flag.Bool("check", false, "bank: verify BALANCE == TOTAL after the run")
		shutdown = flag.Bool("shutdown", false, "send SHUTDOWN when done")
		rawCmd   = flag.String("cmd", "", "send one raw protocol line, print the response, exit")
	)
	flag.Parse()

	if *rawCmd != "" {
		c, err := dial(*addr)
		if err != nil {
			fatal(err)
		}
		defer c.close()
		reply, err := c.roundTrip(*rawCmd)
		if err != nil {
			fatal(err)
		}
		fmt.Println(reply)
		return
	}

	var wg sync.WaitGroup
	errs := make([]error, *clients)
	for i := 0; i < *clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = driveOne(*addr, *app, *ops, rand.New(rand.NewSource(*seed+int64(i))), *accounts, *keyRange)
		}()
	}
	wg.Wait()
	failed := false
	for i, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-client: client %d: %v\n", i, err)
			failed = true
		}
	}

	if *check || *shutdown {
		c, err := dial(*addr)
		if err != nil {
			fatal(err)
		}
		defer c.close()
		if *check && *app == "bank" {
			if err := checkBank(c); err != nil {
				fmt.Fprintf(os.Stderr, "tm2c-client: %v\n", err)
				failed = true
			} else {
				fmt.Println("CHECK OK: money conserved")
			}
		}
		if *shutdown {
			if _, err := c.roundTrip("SHUTDOWN"); err != nil {
				fmt.Fprintf(os.Stderr, "tm2c-client: shutdown: %v\n", err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tm2c-client: %v\n", err)
	os.Exit(1)
}

// conn is one line-protocol connection.
type conn struct {
	c  net.Conn
	in *bufio.Scanner
}

func dial(addr string) (*conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &conn{c: c, in: bufio.NewScanner(c)}, nil
}

func (c *conn) close() { c.c.Close() }

// roundTrip sends one line and returns the one response line.
func (c *conn) roundTrip(line string) (string, error) {
	if _, err := fmt.Fprintln(c.c, line); err != nil {
		return "", err
	}
	if !c.in.Scan() {
		if err := c.in.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("connection closed mid-request")
	}
	return c.in.Text(), nil
}

// must sends a line and fails unless the response is OK or NF.
func (c *conn) must(line string) (string, error) {
	reply, err := c.roundTrip(line)
	if err != nil {
		return "", fmt.Errorf("%s: %v", line, err)
	}
	if !strings.HasPrefix(reply, "OK") && reply != "NF" {
		return "", fmt.Errorf("%s: server said %q", line, reply)
	}
	return reply, nil
}

// driveOne runs one connection's random op stream.
func driveOne(addr, app string, ops int, r *rand.Rand, accounts int, keyRange int64) error {
	c, err := dial(addr)
	if err != nil {
		return err
	}
	defer c.close()
	if _, err := c.must("PING"); err != nil {
		return err
	}
	for i := 0; i < ops; i++ {
		var line string
		switch app {
		case "bank":
			from := r.Intn(accounts)
			to := r.Intn(accounts)
			line = fmt.Sprintf("TRANSFER %d %d %d", from, to, 1+r.Intn(5))
		case "intset":
			key := 1 + r.Int63n(keyRange)
			switch r.Intn(3) {
			case 0:
				line = fmt.Sprintf("ADD %d", key)
			case 1:
				line = fmt.Sprintf("DEL %d", key)
			default:
				line = fmt.Sprintf("HAS %d", key)
			}
		case "kv":
			key := 1 + r.Int63n(keyRange)
			switch r.Intn(3) {
			case 0:
				line = fmt.Sprintf("PUT %d %d", key, r.Int63())
			case 1:
				line = fmt.Sprintf("GET %d", key)
			default:
				line = fmt.Sprintf("DEL %d", key)
			}
		default:
			return fmt.Errorf("unknown app %q", app)
		}
		if _, err := c.must(line); err != nil {
			return err
		}
	}
	return nil
}

// checkBank verifies the conservation invariant over the wire: the
// transactional BALANCE scan must equal the static TOTAL.
func checkBank(c *conn) error {
	totalLine, err := c.must("TOTAL")
	if err != nil {
		return err
	}
	balLine, err := c.must("BALANCE")
	if err != nil {
		return err
	}
	var total, bal uint64
	if _, err := fmt.Sscanf(totalLine, "OK %d", &total); err != nil {
		return fmt.Errorf("bad TOTAL response %q", totalLine)
	}
	if _, err := fmt.Sscanf(balLine, "OK %d", &bal); err != nil {
		return fmt.Errorf("bad BALANCE response %q", balLine)
	}
	if total != bal {
		return fmt.Errorf("money not conserved: BALANCE %d != TOTAL %d", bal, total)
	}
	return nil
}

// Command tm2c-bench regenerates the tables and figures of the TM2C paper's
// evaluation (§5-§7).
//
// Usage:
//
//	tm2c-bench -list
//	tm2c-bench -run fig5a
//	tm2c-bench -run all -scale quick
//	tm2c-bench -run fig8a,fig8b -scale full -csv
//	tm2c-bench -run fig5a -serialrpc
//	tm2c-bench -run ablbatch -coalesce
//	tm2c-bench -run ablplace -placement adaptive
//	tm2c-bench -run ablro -readonly
//	tm2c-bench -run abltl2 -scale quick
//	tm2c-bench -run fig5a -protocol tl2
//	tm2c-bench -run fig5a -scale quick -backend live
//	tm2c-bench -run fig5a -json results/
//
// Scales: quick (seconds), default (a few minutes), full (closest to the
// paper's parameters; tens of minutes), large (million-object working sets
// on a 256-core mesh — the scale dimension of the scaleplace experiment).
// Results print as aligned text
// tables, or CSV with -csv. -serialrpc forces serial commit-time lock
// acquisition (instead of scatter-gather) in every experiment, for A/B
// comparisons; the ablrpc ablation compares the two modes directly.
// -coalesce enables the coalescing message plane (per-destination wire
// batching, Config.Coalesce) in every experiment; the ablbatch ablation
// compares both planes directly. -adaptiveflush additionally defers
// sub-threshold fire-and-forget envelopes until a size/age trigger fires
// (implies -coalesce); ablbatch compares all three transport modes.
// -placement forces an object→DTM-node placement policy in every
// experiment; the ablplace ablation compares the three policies directly.
// -readonly runs every bank balance scan as a declared read-only
// transaction; the ablro ablation compares the two kinds directly.
// -protocol forces a read-visibility protocol (visible | tl2) in every
// experiment; the abltl2 ablation compares the two protocols directly.
// -backend selects the execution backend: the deterministic simulator
// (sim, the default; durations are virtual and reproducible), the
// real-concurrency goroutine backend (live; durations are wall-clock and
// throughput columns read operations per wall millisecond), or the
// cross-process backend (net; like live but the cores are spread over
// -groups OS processes connected by framed sockets — rank 0 forks the
// worker ranks by default, or launch each rank standalone with
// -peers/-rank/-listen). -json writes one machine-readable BENCH_<id>.json
// (BENCH_<id>_live.json / BENCH_<id>_net.json for live / net results) per
// experiment into the given directory, seeding the bench trajectory.
// -trace-dir enables the flight recorder in every experiment and writes one
// chrome://tracing JSON per system run into the directory. -pprof serves
// net/http/pprof while the experiments run and dumps runtime/metrics at
// quiesce.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/netboot"
	"repro/internal/placement"
	"repro/internal/trace"
)

// benchResult is the schema of one BENCH_<id>.json file.
type benchResult struct {
	ID             string `json:"id"`
	Title          string `json:"title"`
	Backend        string `json:"backend"`
	Scale          string `json:"scale"`
	Seed           uint64 `json:"seed"`
	ThroughputUnit string `json:"throughput_unit"`
	ElapsedMS      int64  `json:"elapsed_ms"`
	// AllocsPerOp and NsPerOp are process-wide costs per completed
	// transactional operation across the whole experiment (heap objects
	// allocated, wall-clock nanoseconds): the coarse speed invariants
	// benchcheck -maxallocs / -maxnsop gate in CI.
	AllocsPerOp float64 `json:"allocs_per_op"`
	NsPerOp     float64 `json:"ns_per_op"`
	// Directory is the process-wide placement-directory delta across the
	// experiment (core.DirSoFar bracketing): hierarchical-directory gauges
	// (materialized leaves vs leaf universe), migration/handoff counts and
	// the cumulative local/remote access split behind RemoteAccessRatio.
	Directory core.DirStats `json:"directory"`
	Tables    []*exp.Table  `json:"tables"`
}

func main() {
	var (
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		run        = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale      = flag.String("scale", "default", "quick | default | full | large")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		serialRPC  = flag.Bool("serialrpc", false, "force serial (non-scatter-gather) commit lock acquisition in every experiment")
		coalesce   = flag.Bool("coalesce", false, "enable the coalescing message plane (per-destination wire batching) in every experiment")
		adaptiveF  = flag.Bool("adaptiveflush", false, "enable size/age-triggered adaptive outbox flush in every experiment (implies -coalesce)")
		placementF = flag.String("placement", "", "force a placement policy (hash | range | adaptive | hier) in every experiment")
		readonly   = flag.Bool("readonly", false, "run every bank balance scan as a declared read-only transaction")
		protocolF  = flag.String("protocol", "", "force a read-visibility protocol (visible | tl2) in every experiment")
		backendF   = flag.String("backend", "sim", "execution backend: sim (deterministic simulator) | live (real goroutines, wall-clock)")
		jsonDir    = flag.String("json", "", "directory to write one BENCH_<id>.json per experiment into")
		timings    = flag.Bool("timings", false, "print wall-clock time per experiment")
		traceDir   = flag.String("trace-dir", "", "directory to write one chrome trace_event JSON per system run into (enables the flight recorder)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) and dump runtime/metrics after the experiments finish")
		allocProf  = flag.String("allocprofile", "", "write a pprof allocs profile to this file after the experiments finish")
		arrivalF   = flag.Bool("arrivalstamp", false, "timestamp contending payloads at envelope arrival instead of per-payload service instant in every experiment (the ablarrival ablation compares both)")
		groups     = flag.Int("groups", 2, "net backend: number of OS processes (forked from this one by default)")
		rankF      = flag.Int("rank", 0, "net backend: this process's rank when launched standalone with -peers")
		listenF    = flag.String("listen", "", "net backend: override this rank's bind address in the -peers list")
		peersF     = flag.String("peers", "", "net backend: full rank-ordered address list (unix:<path> or host:port) for standalone launches; empty forks -groups local workers over unix sockets")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "tm2c-bench: pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", *pprofAddr)
	}

	var ov exp.Overrides
	ov.SerialRPC = *serialRPC
	ov.ReadOnly = *readonly
	ov.Coalesce = *coalesce
	ov.AdaptiveFlush = *adaptiveF
	if *placementF != "" {
		k, err := placement.Parse(*placementF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
			os.Exit(2)
		}
		ov.Placement = &k
	}
	proto, err := core.ParseProtocol(*protocolF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
		os.Exit(2)
	}
	ov.Protocol = proto
	backend, err := core.ParseBackend(*backendF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
		os.Exit(2)
	}
	ov.Backend = backend
	ov.ArrivalStamp = *arrivalF

	// Net backend: resolve this process's place in the process group. In the
	// default fork mode rank 0 spawns the worker ranks below; forked children
	// and standalone rank>0 processes run the identical experiment sequence
	// but suppress the rank-0-only reporting.
	var plan *netboot.Plan
	isChild := false
	if backend == core.BackendNet {
		plan, err = netboot.Resolve(*groups, *rankF, *listenF, *peersF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
			os.Exit(2)
		}
		ov.Net = plan.NetConfig()
		isChild = plan.Rank != 0
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
			os.Exit(1)
		}
		// On the net backend every process records its own cores; a rank
		// prefix keeps the per-process files from clobbering each other.
		prefix := "run-"
		if plan != nil {
			prefix = fmt.Sprintf("run-r%d-", plan.Rank)
		}
		ov.Trace = &trace.Options{Sink: traceSink(*traceDir, prefix)}
	}

	if *list {
		for _, e := range exp.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc exp.Scale
	switch *scale {
	case "quick":
		sc = exp.Quick
	case "default":
		sc = exp.Default
	case "full":
		sc = exp.Full
	case "large":
		sc = exp.Large
	default:
		fmt.Fprintf(os.Stderr, "tm2c-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	sc.Seed = *seed

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
			os.Exit(1)
		}
	}
	unit := "ops/vms" // operations per virtual millisecond
	if backend == core.BackendLive || backend == core.BackendNet {
		unit = "ops/ms" // operations per wall-clock millisecond
	}

	maxCores := 0
	for _, n := range sc.Cores {
		if n > maxCores {
			maxCores = n
		}
	}
	perProc := maxCores
	if plan != nil {
		// Each process only runs its own rank's share of the cores.
		perProc = (maxCores + plan.Ranks - 1) / plan.Ranks
	}
	if w := netboot.OversubscriptionWarning(perProc, runtime.GOMAXPROCS(0), backend); w != "" && !isChild {
		fmt.Fprintln(os.Stderr, "tm2c-bench: "+w)
	}

	if plan != nil {
		if err := plan.Fork(); err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
			os.Exit(1)
		}
	}

	var ids []string
	if *run == "all" {
		ids = exp.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		e, ok := exp.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "tm2c-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		opsBefore := core.OpsSoFar()
		dirBefore := core.DirSoFar()
		start := time.Now()
		tables := e.Run(sc, ov)
		elapsed := time.Since(start)
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		var allocsPerOp, nsPerOp float64
		if dOps := core.OpsSoFar() - opsBefore; dOps > 0 {
			allocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(dOps)
			nsPerOp = float64(elapsed.Nanoseconds()) / float64(dOps)
		}
		if isChild {
			// Worker ranks participate in every system but rank 0 owns the
			// merged stats report and artifacts.
			continue
		}
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s — %s\n", t.ID, t.Title)
				t.CSV(os.Stdout)
				fmt.Println()
			} else {
				t.Render(os.Stdout)
			}
		}
		if *jsonDir != "" {
			// Stamp the backend that actually produced the numbers: a few
			// experiments (fig8a's ping-pong, the settings table) measure
			// the simulator's timing model and ignore -backend entirely.
			resBackend, resUnit := backend.String(), unit
			if e.SimOnly {
				resBackend, resUnit = core.BackendSim.String(), "ops/vms"
			}
			res := benchResult{
				ID:             e.ID,
				Title:          e.Title,
				Backend:        resBackend,
				Scale:          *scale,
				Seed:           *seed,
				ThroughputUnit: resUnit,
				ElapsedMS:      elapsed.Milliseconds(),
				AllocsPerOp:    allocsPerOp,
				NsPerOp:        nsPerOp,
				Directory:      core.DirSoFar().Delta(dirBefore),
				Tables:         tables,
			}
			// Sim results keep the historic BENCH_<id>.json name; live and
			// net results carry a backend suffix so all three backends'
			// baselines can sit in one directory without clobbering each
			// other.
			name := fmt.Sprintf("BENCH_%s.json", e.ID)
			switch resBackend {
			case core.BackendLive.String():
				name = fmt.Sprintf("BENCH_%s_live.json", e.ID)
			case core.BackendNet.String():
				name = fmt.Sprintf("BENCH_%s_net.json", e.ID)
			}
			path := filepath.Join(*jsonDir, name)
			buf, err := json.MarshalIndent(&res, "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "tm2c-bench: marshal %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if *timings {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", e.ID, elapsed.Round(time.Millisecond))
		}
	}
	if plan != nil {
		if err := plan.Wait(); err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if *pprofAddr != "" {
		dumpRuntimeMetrics(os.Stderr)
	}
	if *allocProf != "" {
		if err := writeAllocProfile(*allocProf); err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeAllocProfile dumps the cumulative allocation profile at quiesce — the
// no-server companion to -pprof for environments where scraping an HTTP
// endpoint mid-run is impractical.
func writeAllocProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // flush the most recent allocation records
	err = pprof.Lookup("allocs").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// traceSink returns an Options.Sink that writes every system run's merged
// trace as a sequentially-numbered chrome trace_event file in dir. The
// counter is mutex-guarded: live-backend experiments may finish runs from
// more than one goroutine.
func traceSink(dir, prefix string) func(*trace.Trace) {
	var mu sync.Mutex
	var n int
	return func(t *trace.Trace) {
		mu.Lock()
		seq := n
		n++
		mu.Unlock()
		path := filepath.Join(dir, fmt.Sprintf("%s%04d.json", prefix, seq))
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: trace: %v\n", err)
			return
		}
		err = trace.WriteChrome(f, t)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: trace %s: %v\n", path, err)
		}
	}
}

// dumpRuntimeMetrics prints the Go runtime's own health counters at quiesce
// — scheduler latency, GC cycles, heap size — so a profiling session ends
// with the numbers that contextualize its pprof captures.
func dumpRuntimeMetrics(w *os.File) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	fmt.Fprintln(w, "--- runtime/metrics at quiesce ---")
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(w, "%-60s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(w, "%-60s %g\n", s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var count uint64
			for _, c := range h.Counts {
				count += c
			}
			fmt.Fprintf(w, "%-60s histogram, %d samples\n", s.Name, count)
		}
	}
}

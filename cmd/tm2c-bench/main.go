// Command tm2c-bench regenerates the tables and figures of the TM2C paper's
// evaluation (§5-§7).
//
// Usage:
//
//	tm2c-bench -list
//	tm2c-bench -run fig5a
//	tm2c-bench -run all -scale quick
//	tm2c-bench -run fig8a,fig8b -scale full -csv
//	tm2c-bench -run fig5a -serialrpc
//	tm2c-bench -run ablplace -placement adaptive
//	tm2c-bench -run ablro -readonly
//
// Scales: quick (seconds), default (a few minutes), full (closest to the
// paper's parameters; tens of minutes). Results print as aligned text
// tables, or CSV with -csv. -serialrpc forces serial commit-time lock
// acquisition (instead of scatter-gather) in every experiment, for A/B
// comparisons; the ablrpc ablation compares the two modes directly.
// -placement forces an object→DTM-node placement policy in every
// experiment; the ablplace ablation compares the three policies directly.
// -readonly runs every bank balance scan as a declared read-only
// transaction; the ablro ablation compares the two kinds directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/placement"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		run        = flag.String("run", "all", "comma-separated experiment IDs, or 'all'")
		scale      = flag.String("scale", "default", "quick | default | full")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		serialRPC  = flag.Bool("serialrpc", false, "force serial (non-scatter-gather) commit lock acquisition in every experiment")
		placementF = flag.String("placement", "", "force a placement policy (hash | range | adaptive) in every experiment")
		readonly   = flag.Bool("readonly", false, "run every bank balance scan as a declared read-only transaction")
		timings    = flag.Bool("timings", false, "print wall-clock time per experiment")
	)
	flag.Parse()
	exp.ForceSerialRPC = *serialRPC
	exp.ForceReadOnly = *readonly
	if *placementF != "" {
		k, err := placement.Parse(*placementF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tm2c-bench: %v\n", err)
			os.Exit(2)
		}
		exp.ForcePlacement = &k
	}

	if *list {
		for _, e := range exp.All {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc exp.Scale
	switch *scale {
	case "quick":
		sc = exp.Quick
	case "default":
		sc = exp.Default
	case "full":
		sc = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "tm2c-bench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	sc.Seed = *seed

	var ids []string
	if *run == "all" {
		ids = exp.IDs()
	} else {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		e, ok := exp.ByID(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "tm2c-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tables := e.Run(sc)
		for _, t := range tables {
			if *csv {
				fmt.Printf("# %s — %s\n", t.ID, t.Title)
				t.CSV(os.Stdout)
				fmt.Println()
			} else {
				t.Render(os.Stdout)
			}
		}
		if *timings {
			fmt.Fprintf(os.Stderr, "[%s took %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}

// Command benchcheck asserts invariants over tm2c-bench JSON artifacts in
// CI. It dispatches on the tables the artifact contains:
//
//   - ablbatch: the message-plane claim. With protocol batching off, the
//     coalescing transport must report at least -minreduction percent fewer
//     wire messages per operation than the uncoalesced plane, and coalescing
//     must never inflate per-operation wire traffic beyond noise in any row
//     pair.
//   - abltl2: the invisible-read claim. On each read-mostly workload the
//     TL2 row must report at least -mintl2reduction percent fewer wire
//     messages per operation than the visible row, and TL2 throughput must
//     be no worse than visible.
//   - scaleplace: the hierarchical-placement-at-scale claim. On the Zipf
//     rows the hier policy must hold at least -minscaletput of hash's
//     throughput, report a strictly lower remote-access share than flat
//     adaptive, and materialize far fewer leaves than the leaf universe;
//     -maximbalance bounds every adaptive/hier row's node imbalance and
//     -maxwireop bounds every row's wire messages per operation.
//
// The per-operation normalization is what makes both checks valid on the
// live backend, where each row's wall-clock window covers a different
// amount of work.
//
// Independent of the table dispatch, -maxallocs and -maxnsop gate the
// artifact's top-level allocs_per_op / ns_per_op fields (process-wide heap
// allocations and wall-clock nanoseconds per completed transactional
// operation, recorded by tm2c-bench around the whole run). They are the CI
// regression guard for the pooled zero-allocation hot path: a change that
// reintroduces per-commit allocation shows up directly in allocs_per_op.
//
// Two further modes bypass the table dispatch:
//
//   - -trace validates a flight-recorder chrome trace_event JSON file:
//     every event must carry a known phase type and non-negative timestamp.
//     -requireabort additionally demands at least one abort span carrying a
//     taxonomy reason; -requireenvelope demands at least one coalesced
//     envelope instant (an envelope instant is only emitted for >= 2
//     payloads, so its presence proves real coalescing).
//   - -baseline gates a fresh tm2c-bench artifact against a committed one:
//     deterministic sim tables must be cell-for-cell identical (the
//     trace-off no-regression guarantee), and with -maxslowdown > 0 the
//     fresh run's wall-clock may not exceed baseline elapsed_ms by more
//     than that factor.
//   - -netsmoke validates a cross-process net-backend artifact: backend tag
//     "net", rectangular non-empty tables, and at least one positive numeric
//     cell (an all-zero grid means the processes never handed off work).
//
// Usage:
//
//	tm2c-bench -run ablbatch -scale quick -json out/
//	benchcheck -file out/BENCH_ablbatch.json -minreduction 20
//	tm2c-bench -run abltl2 -scale quick -json out/
//	benchcheck -file out/BENCH_abltl2.json -mintl2reduction 60
//	benchcheck -trace out/traces/run-0000.json -requireabort
//	benchcheck -file fresh/BENCH_fig5a.json -baseline BENCH_fig5a.json
//	tm2c-bench -run fig5a -scale quick -backend net -json out/
//	benchcheck -file out/BENCH_fig5a_net.json -netsmoke
//	tm2c-bench -run fig5a -scale quick -backend live -json out/
//	benchcheck -file out/BENCH_fig5a_live.json -maxallocs 2 -maxnsop 200000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// table mirrors the exp.Table JSON schema (only what the check needs).
type table struct {
	ID      string     `json:"id"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

type benchResult struct {
	ID          string   `json:"id"`
	Backend     string   `json:"backend"`
	ElapsedMS   int64    `json:"elapsed_ms"`
	AllocsPerOp float64  `json:"allocs_per_op"`
	NsPerOp     float64  `json:"ns_per_op"`
	Tables      []*table `json:"tables"`
}

func main() {
	var (
		file            = flag.String("file", "", "tm2c-bench JSON artifact to check")
		minReduction    = flag.Float64("minreduction", 20, "ablbatch: minimum percent wire-message reduction required on the batching-off pair")
		minTL2Reduction = flag.Float64("mintl2reduction", 60, "abltl2: minimum percent wire-messages-per-op reduction required of tl2 vs visible on every workload")
		traceFile       = flag.String("trace", "", "validate a flight-recorder chrome trace_event JSON file instead of a bench artifact")
		requireAbort    = flag.Bool("requireabort", false, "-trace: require at least one abort span with a taxonomy reason")
		requireEnvelope = flag.Bool("requireenvelope", false, "-trace: require at least one coalesced envelope instant")
		baseline        = flag.String("baseline", "", "committed artifact to gate -file against (sim tables must be cell-identical)")
		maxSlowdown     = flag.Float64("maxslowdown", 0, "-baseline: max allowed elapsed_ms ratio fresh/baseline (0 disables the wall-clock gate)")
		netSmoke        = flag.Bool("netsmoke", false, "validate -file as a cross-process net-backend artifact (backend tag, table shape, nonzero throughput) instead of the table dispatch")
		maxAllocs       = flag.Float64("maxallocs", -1, "fail if the artifact's allocs_per_op exceeds this (-1 disables)")
		maxNsOp         = flag.Float64("maxnsop", -1, "fail if the artifact's ns_per_op exceeds this (-1 disables)")
		minScaleTput    = flag.Float64("minscaletput", 0.9, "scaleplace: minimum hier/hash throughput ratio required on Zipf rows")
		maxImbalance    = flag.Float64("maximbalance", -1, "scaleplace: fail if an adaptive/hier row's node imbalance exceeds this (-1 disables)")
		maxWireOp       = flag.Float64("maxwireop", -1, "scaleplace: fail if any row's wire/op exceeds this (-1 disables)")
	)
	flag.Parse()
	if *traceFile != "" {
		if checkTrace(*traceFile, *requireAbort, *requireEnvelope) {
			os.Exit(1)
		}
		return
	}
	if *file == "" {
		fatal(fmt.Errorf("-file is required"))
	}
	buf, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal(buf, &res); err != nil {
		fatal(fmt.Errorf("%s: %v", *file, err))
	}
	if *baseline != "" {
		if checkBaseline(&res, *file, *baseline, *maxSlowdown) {
			os.Exit(1)
		}
		return
	}
	if *netSmoke {
		if checkNetSmoke(&res, *file) {
			os.Exit(1)
		}
		return
	}
	checked, failed := false, false
	// Per-operation cost gates apply to any artifact that recorded them —
	// the CI guard against alloc/op and ns/op regressions on the live
	// backend's pooled hot path.
	if *maxAllocs >= 0 {
		checked = true
		fmt.Printf("%s backend=%s: %.3f allocs/op (budget %.3f)\n", res.ID, res.Backend, res.AllocsPerOp, *maxAllocs)
		if res.AllocsPerOp > *maxAllocs {
			fmt.Printf("FAIL: allocs_per_op %.3f exceeds -maxallocs %.3f\n", res.AllocsPerOp, *maxAllocs)
			failed = true
		}
	}
	if *maxNsOp >= 0 {
		checked = true
		fmt.Printf("%s backend=%s: %.0f ns/op (budget %.0f)\n", res.ID, res.Backend, res.NsPerOp, *maxNsOp)
		if res.NsPerOp > *maxNsOp {
			fmt.Printf("FAIL: ns_per_op %.0f exceeds -maxnsop %.0f\n", res.NsPerOp, *maxNsOp)
			failed = true
		}
	}
	if grid := findTable(res.Tables, "ablbatch"); grid != nil {
		checked = true
		failed = checkABLBatch(&res, grid, *minReduction) || failed
	}
	if grid := findTable(res.Tables, "abltl2"); grid != nil {
		checked = true
		failed = checkABLTL2(&res, grid, *minTL2Reduction) || failed
	}
	if grid := findTable(res.Tables, "scaleplace"); grid != nil {
		checked = true
		failed = checkScalePlace(&res, grid, *minScaleTput, *maxImbalance, *maxWireOp) || failed
	}
	if !checked {
		fatal(fmt.Errorf("%s: no table benchcheck knows how to check (want ablbatch, abltl2 or scaleplace, or enable -maxallocs/-maxnsop)", *file))
	}
	if failed {
		os.Exit(1)
	}
}

// checkABLBatch verifies the coalescing-transport claim. Returns true on
// failure.
func checkABLBatch(res *benchResult, grid *table, minReduction float64) bool {
	batchCol := colIndex(grid, "batching")
	coalCol := colIndex(grid, "coalesce")
	wireCol := colIndex(grid, "wire/op")
	ppwCol := colIndex(grid, "payloads/wire")

	// Group rows by batching setting: transport mode off / on / adaptive.
	type rowVals struct{ wirePerOp, ppw float64 }
	rows := map[string]map[string]rowVals{} // batching -> coalesce mode -> values
	for _, row := range grid.Rows {
		rows[row[batchCol]] = appendRow(rows[row[batchCol]], row[coalCol], rowVals{
			wirePerOp: cell(row, wireCol), ppw: cell(row, ppwCol),
		})
	}
	failed := false
	for _, b := range []string{"on", "off"} {
		off, okOff := rows[b]["off"]
		on, okOn := rows[b]["on"]
		if !okOff || !okOn {
			fatal(fmt.Errorf("missing coalesce on/off pair for batching=%s", b))
		}
		// Two views of the reduction: per operation across the run pair
		// (noisy on live — abort rates differ run to run), and per logical
		// payload within the coalesced run (structural: 1 - 1/ppw is
		// exactly the fraction of wire messages the envelopes absorbed).
		crossRun := 100 * (1 - on.wirePerOp/off.wirePerOp)
		perPayload := 0.0
		if on.ppw > 0 {
			perPayload = 100 * (1 - 1/on.ppw)
		}
		fmt.Printf("%s backend=%s batching=%s: wire msgs/op %v -> %v (%.1f%% cross-run, %.1f%% per-payload reduction)\n",
			res.ID, res.Backend, b, off.wirePerOp, on.wirePerOp, crossRun, perPayload)
		if adpt, ok := rows[b]["adaptive"]; ok {
			fmt.Printf("%s backend=%s batching=%s: adaptive flush wire msgs/op %v (plain coalesce %v, uncoalesced %v)\n",
				res.ID, res.Backend, b, adpt.wirePerOp, on.wirePerOp, off.wirePerOp)
			// The adaptive-flush claim is the batching-on plane: protocol
			// batching already merged each burst, so plain coalescing finds
			// nothing and pays envelope overhead for free — adaptive
			// deferral must bring the coalescing transport back to parity
			// or better against the uncoalesced plane.
			if b == "on" && adpt.wirePerOp > off.wirePerOp {
				fmt.Printf("FAIL: batching=on: adaptive flush sent more wire messages per op than uncoalesced (%v vs %v)\n",
					adpt.wirePerOp, off.wirePerOp)
				failed = true
			}
		}
		if b != "off" {
			continue // the plain batching-on pair has nothing to merge; informational only
		}
		if perPayload < minReduction {
			fmt.Printf("FAIL: batching=off per-payload reduction %.1f%% < required %.1f%%\n", perPayload, minReduction)
			failed = true
		}
		if on.wirePerOp >= off.wirePerOp {
			fmt.Printf("FAIL: batching=off: coalesced run sent no fewer wire messages per op (%v vs %v)\n",
				on.wirePerOp, off.wirePerOp)
			failed = true
		}
	}
	return failed
}

// checkABLTL2 verifies the invisible-read claim: on every read-mostly
// workload row pair, tl2 must cut wire messages per operation by at least
// minReduction percent vs visible, without losing throughput. Returns true
// on failure.
func checkABLTL2(res *benchResult, grid *table, minReduction float64) bool {
	workCol := colIndex(grid, "workload")
	protoCol := colIndex(grid, "protocol")
	tputCol := colIndex(grid, "ops/ms")
	wireCol := colIndex(grid, "wire/op")

	type rowVals struct{ tput, wirePerOp float64 }
	rows := map[string]map[string]rowVals{} // workload -> protocol -> values
	order := []string{}
	for _, row := range grid.Rows {
		w := row[workCol]
		if rows[w] == nil {
			order = append(order, w)
		}
		rows[w] = appendRow(rows[w], row[protoCol], rowVals{
			tput: cell(row, tputCol), wirePerOp: cell(row, wireCol),
		})
	}
	failed := false
	for _, w := range order {
		vis, okVis := rows[w]["visible"]
		tl2, okTL2 := rows[w]["tl2"]
		if !okVis || !okTL2 {
			fatal(fmt.Errorf("missing visible/tl2 pair for workload=%s", w))
		}
		if vis.wirePerOp <= 0 {
			fatal(fmt.Errorf("workload=%s: visible row reports %v wire msgs/op", w, vis.wirePerOp))
		}
		reduction := 100 * (1 - tl2.wirePerOp/vis.wirePerOp)
		fmt.Printf("%s backend=%s workload=%s: wire msgs/op %v -> %v (%.1f%% reduction), throughput %v -> %v ops/ms\n",
			res.ID, res.Backend, w, vis.wirePerOp, tl2.wirePerOp, reduction, vis.tput, tl2.tput)
		if reduction < minReduction {
			fmt.Printf("FAIL: workload=%s: tl2 wire-msgs/op reduction %.1f%% < required %.1f%%\n", w, reduction, minReduction)
			failed = true
		}
		if tl2.tput < vis.tput {
			fmt.Printf("FAIL: workload=%s: tl2 throughput %v below visible %v\n", w, tl2.tput, vis.tput)
			failed = true
		}
	}
	return failed
}

// checkScalePlace verifies the hierarchical-placement-at-scale claims over
// the scaleplace grid (skew x policy rows). Returns true on failure.
func checkScalePlace(res *benchResult, grid *table, minTput, maxImbalance, maxWireOp float64) bool {
	skewCol := colIndex(grid, "skew")
	polCol := colIndex(grid, "policy")
	tputCol := colIndex(grid, "ops/ms")
	imbCol := colIndex(grid, "node imbalance")
	wireCol := colIndex(grid, "wire/op")
	leavesCol := colIndex(grid, "leaves")
	univCol := colIndex(grid, "leaf universe")
	remoteCol := colIndex(grid, "remote %")

	type rowVals struct{ tput, imb, wire, leaves, univ, remote float64 }
	rows := map[string]map[string]rowVals{} // skew -> policy -> values
	order := []string{}
	failed := false
	for _, row := range grid.Rows {
		s, p := row[skewCol], row[polCol]
		if rows[s] == nil {
			order = append(order, s)
		}
		rows[s] = appendRow(rows[s], p, rowVals{
			tput: cell(row, tputCol), imb: cell(row, imbCol), wire: cell(row, wireCol),
			leaves: cell(row, leavesCol), univ: cell(row, univCol), remote: cell(row, remoteCol),
		})
		if maxWireOp >= 0 && cell(row, wireCol) > maxWireOp {
			fmt.Printf("FAIL: skew=%s policy=%s: wire/op %v exceeds -maxwireop %v\n", s, p, cell(row, wireCol), maxWireOp)
			failed = true
		}
		if maxImbalance >= 0 && p != "hash" && cell(row, imbCol) > maxImbalance {
			fmt.Printf("FAIL: skew=%s policy=%s: node imbalance %v exceeds -maximbalance %v\n", s, p, cell(row, imbCol), maxImbalance)
			failed = true
		}
	}
	for _, s := range order {
		hash, okH := rows[s]["hash"]
		flat, okA := rows[s]["adaptive"]
		hier, okR := rows[s]["hier"]
		if !okH || !okA || !okR {
			fatal(fmt.Errorf("skew=%s: missing hash/adaptive/hier triple", s))
		}
		// The hierarchical directory only materializes what the run touched;
		// a flat table would hold (and scan) the whole leaf universe.
		if hier.univ <= 0 || 10*hier.leaves >= hier.univ {
			fmt.Printf("FAIL: skew=%s: hier materialized %v leaves of a %v-leaf universe (not ≪)\n", s, hier.leaves, hier.univ)
			failed = true
		}
		fmt.Printf("%s backend=%s skew=%s: ops/ms hash %v adaptive %v hier %v; remote %% adaptive %v hier %v; leaves %v/%v\n",
			res.ID, res.Backend, s, hash.tput, flat.tput, hier.tput, flat.remote, hier.remote, hier.leaves, hier.univ)
		if !strings.HasPrefix(s, "zipf") {
			continue // uniform rows are informational: every policy converges
		}
		if hash.tput > 0 && hier.tput < minTput*hash.tput {
			fmt.Printf("FAIL: skew=%s: hier throughput %v below %.2fx hash %v\n", s, hier.tput, minTput, hash.tput)
			failed = true
		}
		// The co-mapping claim: locality-aware migration must strictly cut
		// the remote share flat adaptive ends up with.
		if hier.remote >= flat.remote {
			fmt.Printf("FAIL: skew=%s: hier remote share %v%% not below flat adaptive's %v%%\n", s, hier.remote, flat.remote)
			failed = true
		}
	}
	return failed
}

// checkNetSmoke validates a cross-process net-backend artifact: the backend
// tag must read "net", every table must be rectangular and non-empty, and at
// least one numeric cell must be positive — a run whose processes failed to
// hand off a single transaction produces all-zero throughput grids even when
// the JSON parses. Returns true on failure.
func checkNetSmoke(res *benchResult, path string) bool {
	failed := false
	if res.Backend != "net" {
		fmt.Printf("FAIL: %s: backend %q, want \"net\"\n", path, res.Backend)
		failed = true
	}
	if len(res.Tables) == 0 {
		fmt.Printf("FAIL: %s: no tables\n", path)
		return true
	}
	positive := 0
	for _, t := range res.Tables {
		if len(t.Columns) == 0 || len(t.Rows) == 0 {
			fmt.Printf("FAIL: table %s: empty (%d columns, %d rows)\n", t.ID, len(t.Columns), len(t.Rows))
			failed = true
			continue
		}
		for ri, row := range t.Rows {
			if len(row) != len(t.Columns) {
				fmt.Printf("FAIL: table %s row %d: %d cells for %d columns\n", t.ID, ri, len(row), len(t.Columns))
				failed = true
				continue
			}
			for _, c := range row {
				if v, err := strconv.ParseFloat(c, 64); err == nil && v > 0 {
					positive++
				}
			}
		}
	}
	if positive == 0 {
		fmt.Printf("FAIL: %s: no positive numeric cell in any table (zero-commit run?)\n", path)
		failed = true
	}
	if !failed {
		fmt.Printf("%s: net artifact OK (%d tables, %d positive cells)\n", path, len(res.Tables), positive)
	}
	return failed
}

// chromeEvent mirrors the trace_event fields the validator needs.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *float64       `json:"ts"`
	Args map[string]any `json:"args"`
}

// checkTrace validates a chrome trace_event JSON file's schema and, on
// request, the presence of taxonomy abort spans and coalesced envelopes.
// Returns true on failure.
func checkTrace(path string, requireAbort, requireEnvelope bool) bool {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var f struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &f); err != nil {
		fatal(fmt.Errorf("%s: not valid trace_event JSON: %v", path, err))
	}
	if len(f.TraceEvents) == 0 {
		fatal(fmt.Errorf("%s: empty traceEvents array", path))
	}
	known := map[string]bool{"X": true, "i": true, "s": true, "f": true, "M": true}
	abortSpans, envelopes := 0, 0
	failed := false
	for i, e := range f.TraceEvents {
		if !known[e.Ph] {
			fmt.Printf("FAIL: event %d (%q): unknown phase type %q\n", i, e.Name, e.Ph)
			failed = true
		}
		if e.Ph != "M" && (e.Ts == nil || *e.Ts < 0) {
			fmt.Printf("FAIL: event %d (%q): missing or negative ts\n", i, e.Name)
			failed = true
		}
		if e.Ph == "X" {
			if outcome, ok := e.Args["outcome"].(string); ok && outcome == "abort" {
				if reason, ok := e.Args["reason"].(string); ok && reason != "" {
					abortSpans++
				}
			}
		}
		if e.Ph == "i" && strings.HasPrefix(e.Name, "envelope(") {
			envelopes++
		}
	}
	fmt.Printf("%s: %d events, %d taxonomy abort spans, %d coalesced envelopes\n",
		path, len(f.TraceEvents), abortSpans, envelopes)
	if requireAbort && abortSpans == 0 {
		fmt.Println("FAIL: no abort span carrying a taxonomy reason")
		failed = true
	}
	if requireEnvelope && envelopes == 0 {
		fmt.Println("FAIL: no coalesced envelope instant (>= 2 payloads sharing a wire message)")
		failed = true
	}
	return failed
}

// checkBaseline gates a fresh artifact against a committed one. Sim-backend
// tables are deterministic, so any cell difference is a real behavior change
// — exactly what the trace-off no-regression guarantee forbids. Returns true
// on failure.
func checkBaseline(fresh *benchResult, freshPath, basePath string, maxSlowdown float64) bool {
	buf, err := os.ReadFile(basePath)
	if err != nil {
		fatal(err)
	}
	var base benchResult
	if err := json.Unmarshal(buf, &base); err != nil {
		fatal(fmt.Errorf("%s: %v", basePath, err))
	}
	failed := false
	if fresh.ID != base.ID || fresh.Backend != base.Backend {
		fmt.Printf("FAIL: artifact mismatch: fresh %s/%s vs baseline %s/%s\n",
			fresh.ID, fresh.Backend, base.ID, base.Backend)
		return true
	}
	if base.Backend != "sim" {
		fatal(fmt.Errorf("%s: -baseline gates deterministic sim artifacts only (got backend %q)", basePath, base.Backend))
	}
	if len(fresh.Tables) != len(base.Tables) {
		fmt.Printf("FAIL: table count %d vs baseline %d\n", len(fresh.Tables), len(base.Tables))
		return true
	}
	for ti, bt := range base.Tables {
		ft := fresh.Tables[ti]
		if ft.ID != bt.ID || fmt.Sprint(ft.Columns) != fmt.Sprint(bt.Columns) {
			fmt.Printf("FAIL: table %d schema changed: %s%v vs baseline %s%v\n",
				ti, ft.ID, ft.Columns, bt.ID, bt.Columns)
			failed = true
			continue
		}
		if len(ft.Rows) != len(bt.Rows) {
			fmt.Printf("FAIL: table %s: %d rows vs baseline %d\n", bt.ID, len(ft.Rows), len(bt.Rows))
			failed = true
			continue
		}
		for ri, brow := range bt.Rows {
			for ci, bcell := range brow {
				if ft.Rows[ri][ci] != bcell {
					fmt.Printf("FAIL: table %s row %d col %q: %q vs baseline %q\n",
						bt.ID, ri, bt.Columns[ci], ft.Rows[ri][ci], bcell)
					failed = true
				}
			}
		}
	}
	if maxSlowdown > 0 && base.ElapsedMS > 0 {
		ratio := float64(fresh.ElapsedMS) / float64(base.ElapsedMS)
		fmt.Printf("%s: elapsed %dms vs baseline %dms (%.2fx)\n", fresh.ID, fresh.ElapsedMS, base.ElapsedMS, ratio)
		if ratio > maxSlowdown {
			fmt.Printf("FAIL: elapsed ratio %.2fx exceeds -maxslowdown %.2fx\n", ratio, maxSlowdown)
			failed = true
		}
	}
	if !failed {
		fmt.Printf("%s: identical to baseline %s (%d tables)\n", freshPath, basePath, len(base.Tables))
	}
	return failed
}

func appendRow[V any](m map[string]V, key string, v V) map[string]V {
	if m == nil {
		m = map[string]V{}
	}
	m[key] = v
	return m
}

// cell parses one numeric table cell.
func cell(row []string, col int) float64 {
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		fatal(fmt.Errorf("row %v: bad numeric cell %q", row, row[col]))
	}
	return v
}

func findTable(ts []*table, id string) *table {
	for _, t := range ts {
		if t.ID == id {
			return t
		}
	}
	return nil
}

func colIndex(t *table, name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	fatal(fmt.Errorf("table %s has no %q column (have %v)", t.ID, name, t.Columns))
	return -1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}

// Command benchcheck asserts invariants over tm2c-bench JSON artifacts in
// CI. Its first (and so far only) check reads a BENCH_ablbatch.json and
// verifies the message-plane claim: with protocol batching off, the
// coalescing transport must report at least -minreduction percent fewer
// wire messages per operation than the uncoalesced plane, and coalescing
// must never inflate per-operation wire traffic beyond noise in any row
// pair. The per-operation normalization is what makes the check valid on
// the live backend, where each row's wall-clock window covers a different
// amount of work.
//
// Usage:
//
//	tm2c-bench -run ablbatch -scale quick -json out/
//	benchcheck -file out/BENCH_ablbatch.json -minreduction 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

// table mirrors the exp.Table JSON schema (only what the check needs).
type table struct {
	ID      string     `json:"id"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

type benchResult struct {
	ID      string   `json:"id"`
	Backend string   `json:"backend"`
	Tables  []*table `json:"tables"`
}

func main() {
	var (
		file         = flag.String("file", "", "BENCH_ablbatch.json to check")
		minReduction = flag.Float64("minreduction", 20, "minimum percent wire-message reduction required on the batching-off pair")
	)
	flag.Parse()
	if *file == "" {
		fatal(fmt.Errorf("-file is required"))
	}
	buf, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal(buf, &res); err != nil {
		fatal(fmt.Errorf("%s: %v", *file, err))
	}
	grid := findTable(res.Tables, "ablbatch")
	if grid == nil {
		fatal(fmt.Errorf("%s: no ablbatch table", *file))
	}
	batchCol := colIndex(grid, "batching")
	coalCol := colIndex(grid, "coalesce")
	wireCol := colIndex(grid, "wire/op")
	ppwCol := colIndex(grid, "payloads/wire")

	// Pair up rows by batching setting: coalesce off vs on.
	type rowVals struct{ wirePerOp, ppw float64 }
	rows := map[string]map[string]rowVals{} // batching -> coalesce -> values
	for _, row := range grid.Rows {
		b, c := row[batchCol], row[coalCol]
		w, err := strconv.ParseFloat(row[wireCol], 64)
		if err != nil {
			fatal(fmt.Errorf("row %v: bad wire/op %q", row, row[wireCol]))
		}
		ppw, err := strconv.ParseFloat(row[ppwCol], 64)
		if err != nil {
			fatal(fmt.Errorf("row %v: bad payloads/wire %q", row, row[ppwCol]))
		}
		if rows[b] == nil {
			rows[b] = map[string]rowVals{}
		}
		rows[b][c] = rowVals{wirePerOp: w, ppw: ppw}
	}
	failed := false
	for _, b := range []string{"on", "off"} {
		off, okOff := rows[b]["off"]
		on, okOn := rows[b]["on"]
		if !okOff || !okOn {
			fatal(fmt.Errorf("missing coalesce on/off pair for batching=%s", b))
		}
		// Two views of the reduction: per operation across the run pair
		// (noisy on live — abort rates differ run to run), and per logical
		// payload within the coalesced run (structural: 1 - 1/ppw is
		// exactly the fraction of wire messages the envelopes absorbed).
		crossRun := 100 * (1 - on.wirePerOp/off.wirePerOp)
		perPayload := 0.0
		if on.ppw > 0 {
			perPayload = 100 * (1 - 1/on.ppw)
		}
		fmt.Printf("%s backend=%s batching=%s: wire msgs/op %v -> %v (%.1f%% cross-run, %.1f%% per-payload reduction)\n",
			res.ID, res.Backend, b, off.wirePerOp, on.wirePerOp, crossRun, perPayload)
		if b != "off" {
			continue // the batching-on pair has nothing to merge; informational only
		}
		if perPayload < *minReduction {
			fmt.Printf("FAIL: batching=off per-payload reduction %.1f%% < required %.1f%%\n", perPayload, *minReduction)
			failed = true
		}
		if on.wirePerOp >= off.wirePerOp {
			fmt.Printf("FAIL: batching=off: coalesced run sent no fewer wire messages per op (%v vs %v)\n",
				on.wirePerOp, off.wirePerOp)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func findTable(ts []*table, id string) *table {
	for _, t := range ts {
		if t.ID == id {
			return t
		}
	}
	return nil
}

func colIndex(t *table, name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	fatal(fmt.Errorf("table %s has no %q column (have %v)", t.ID, name, t.Columns))
	return -1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}

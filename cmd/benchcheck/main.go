// Command benchcheck asserts invariants over tm2c-bench JSON artifacts in
// CI. It dispatches on the tables the artifact contains:
//
//   - ablbatch: the message-plane claim. With protocol batching off, the
//     coalescing transport must report at least -minreduction percent fewer
//     wire messages per operation than the uncoalesced plane, and coalescing
//     must never inflate per-operation wire traffic beyond noise in any row
//     pair.
//   - abltl2: the invisible-read claim. On each read-mostly workload the
//     TL2 row must report at least -mintl2reduction percent fewer wire
//     messages per operation than the visible row, and TL2 throughput must
//     be no worse than visible.
//
// The per-operation normalization is what makes both checks valid on the
// live backend, where each row's wall-clock window covers a different
// amount of work.
//
// Usage:
//
//	tm2c-bench -run ablbatch -scale quick -json out/
//	benchcheck -file out/BENCH_ablbatch.json -minreduction 20
//	tm2c-bench -run abltl2 -scale quick -json out/
//	benchcheck -file out/BENCH_abltl2.json -mintl2reduction 60
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
)

// table mirrors the exp.Table JSON schema (only what the check needs).
type table struct {
	ID      string     `json:"id"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

type benchResult struct {
	ID      string   `json:"id"`
	Backend string   `json:"backend"`
	Tables  []*table `json:"tables"`
}

func main() {
	var (
		file            = flag.String("file", "", "tm2c-bench JSON artifact to check")
		minReduction    = flag.Float64("minreduction", 20, "ablbatch: minimum percent wire-message reduction required on the batching-off pair")
		minTL2Reduction = flag.Float64("mintl2reduction", 60, "abltl2: minimum percent wire-messages-per-op reduction required of tl2 vs visible on every workload")
	)
	flag.Parse()
	if *file == "" {
		fatal(fmt.Errorf("-file is required"))
	}
	buf, err := os.ReadFile(*file)
	if err != nil {
		fatal(err)
	}
	var res benchResult
	if err := json.Unmarshal(buf, &res); err != nil {
		fatal(fmt.Errorf("%s: %v", *file, err))
	}
	checked, failed := false, false
	if grid := findTable(res.Tables, "ablbatch"); grid != nil {
		checked = true
		failed = checkABLBatch(&res, grid, *minReduction) || failed
	}
	if grid := findTable(res.Tables, "abltl2"); grid != nil {
		checked = true
		failed = checkABLTL2(&res, grid, *minTL2Reduction) || failed
	}
	if !checked {
		fatal(fmt.Errorf("%s: no table benchcheck knows how to check (want ablbatch or abltl2)", *file))
	}
	if failed {
		os.Exit(1)
	}
}

// checkABLBatch verifies the coalescing-transport claim. Returns true on
// failure.
func checkABLBatch(res *benchResult, grid *table, minReduction float64) bool {
	batchCol := colIndex(grid, "batching")
	coalCol := colIndex(grid, "coalesce")
	wireCol := colIndex(grid, "wire/op")
	ppwCol := colIndex(grid, "payloads/wire")

	// Pair up rows by batching setting: coalesce off vs on.
	type rowVals struct{ wirePerOp, ppw float64 }
	rows := map[string]map[string]rowVals{} // batching -> coalesce -> values
	for _, row := range grid.Rows {
		rows[row[batchCol]] = appendRow(rows[row[batchCol]], row[coalCol], rowVals{
			wirePerOp: cell(row, wireCol), ppw: cell(row, ppwCol),
		})
	}
	failed := false
	for _, b := range []string{"on", "off"} {
		off, okOff := rows[b]["off"]
		on, okOn := rows[b]["on"]
		if !okOff || !okOn {
			fatal(fmt.Errorf("missing coalesce on/off pair for batching=%s", b))
		}
		// Two views of the reduction: per operation across the run pair
		// (noisy on live — abort rates differ run to run), and per logical
		// payload within the coalesced run (structural: 1 - 1/ppw is
		// exactly the fraction of wire messages the envelopes absorbed).
		crossRun := 100 * (1 - on.wirePerOp/off.wirePerOp)
		perPayload := 0.0
		if on.ppw > 0 {
			perPayload = 100 * (1 - 1/on.ppw)
		}
		fmt.Printf("%s backend=%s batching=%s: wire msgs/op %v -> %v (%.1f%% cross-run, %.1f%% per-payload reduction)\n",
			res.ID, res.Backend, b, off.wirePerOp, on.wirePerOp, crossRun, perPayload)
		if b != "off" {
			continue // the batching-on pair has nothing to merge; informational only
		}
		if perPayload < minReduction {
			fmt.Printf("FAIL: batching=off per-payload reduction %.1f%% < required %.1f%%\n", perPayload, minReduction)
			failed = true
		}
		if on.wirePerOp >= off.wirePerOp {
			fmt.Printf("FAIL: batching=off: coalesced run sent no fewer wire messages per op (%v vs %v)\n",
				on.wirePerOp, off.wirePerOp)
			failed = true
		}
	}
	return failed
}

// checkABLTL2 verifies the invisible-read claim: on every read-mostly
// workload row pair, tl2 must cut wire messages per operation by at least
// minReduction percent vs visible, without losing throughput. Returns true
// on failure.
func checkABLTL2(res *benchResult, grid *table, minReduction float64) bool {
	workCol := colIndex(grid, "workload")
	protoCol := colIndex(grid, "protocol")
	tputCol := colIndex(grid, "ops/ms")
	wireCol := colIndex(grid, "wire/op")

	type rowVals struct{ tput, wirePerOp float64 }
	rows := map[string]map[string]rowVals{} // workload -> protocol -> values
	order := []string{}
	for _, row := range grid.Rows {
		w := row[workCol]
		if rows[w] == nil {
			order = append(order, w)
		}
		rows[w] = appendRow(rows[w], row[protoCol], rowVals{
			tput: cell(row, tputCol), wirePerOp: cell(row, wireCol),
		})
	}
	failed := false
	for _, w := range order {
		vis, okVis := rows[w]["visible"]
		tl2, okTL2 := rows[w]["tl2"]
		if !okVis || !okTL2 {
			fatal(fmt.Errorf("missing visible/tl2 pair for workload=%s", w))
		}
		if vis.wirePerOp <= 0 {
			fatal(fmt.Errorf("workload=%s: visible row reports %v wire msgs/op", w, vis.wirePerOp))
		}
		reduction := 100 * (1 - tl2.wirePerOp/vis.wirePerOp)
		fmt.Printf("%s backend=%s workload=%s: wire msgs/op %v -> %v (%.1f%% reduction), throughput %v -> %v ops/ms\n",
			res.ID, res.Backend, w, vis.wirePerOp, tl2.wirePerOp, reduction, vis.tput, tl2.tput)
		if reduction < minReduction {
			fmt.Printf("FAIL: workload=%s: tl2 wire-msgs/op reduction %.1f%% < required %.1f%%\n", w, reduction, minReduction)
			failed = true
		}
		if tl2.tput < vis.tput {
			fmt.Printf("FAIL: workload=%s: tl2 throughput %v below visible %v\n", w, tl2.tput, vis.tput)
			failed = true
		}
	}
	return failed
}

func appendRow[V any](m map[string]V, key string, v V) map[string]V {
	if m == nil {
		m = map[string]V{}
	}
	m[key] = v
	return m
}

// cell parses one numeric table cell.
func cell(row []string, col int) float64 {
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		fatal(fmt.Errorf("row %v: bad numeric cell %q", row, row[col]))
	}
	return v
}

func findTable(ts []*table, id string) *table {
	for _, t := range ts {
		if t.ID == id {
			return t
		}
	}
	return nil
}

func colIndex(t *table, name string) int {
	for i, c := range t.Columns {
		if c == name {
			return i
		}
	}
	fatal(fmt.Errorf("table %s has no %q column (have %v)", t.ID, name, t.Columns))
	return -1
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}

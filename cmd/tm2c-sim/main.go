// Command tm2c-sim runs one ad-hoc TM2C workload with explicit knobs and
// prints a detailed statistics report. It is the exploratory companion to
// tm2c-bench: every protocol and platform parameter of the paper is a flag.
//
// Examples:
//
//	tm2c-sim -app bank -cm faircm -cores 48 -duration 50ms
//	tm2c-sim -app list -mode elastic-read -platform opteron
//	tm2c-sim -app hashset -deployment multitask -update 50
//	tm2c-sim -app mapreduce -size 4194304 -chunk 8192
//	tm2c-sim -app bank -backend live -duration 50ms
//	tm2c-sim -app bank -backend net -groups 2 -duration 50ms
//	tm2c-sim -app bank -protocol tl2 -balance 90 -zipf 0.85
//
// -backend net spreads the cores over -groups OS processes connected by
// framed sockets; rank 0 forks the worker ranks by default, or each rank is
// launched standalone with -peers/-rank/-listen. Rank 0 prints the merged
// report; worker ranks run silently (their traces, if any, get a .rN path
// suffix).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/apps/bank"
	"repro/internal/apps/hashset"
	"repro/internal/apps/intset"
	"repro/internal/apps/mapreduce"
	"repro/internal/netboot"
	"repro/internal/trace"
)

func main() {
	var (
		app      = flag.String("app", "bank", "bank | hashset | list | mapreduce")
		cores    = flag.Int("cores", 48, "total cores")
		svc      = flag.Int("svc", 0, "DTM service cores (0 = half)")
		cmName   = flag.String("cm", "faircm", "none | backoff | offset-greedy | wholly | faircm")
		deploy   = flag.String("deployment", "dedicated", "dedicated | multitask")
		acquire  = flag.String("acquire", "lazy", "lazy | eager")
		serial   = flag.Bool("serialrpc", false, "serial commit lock acquisition instead of scatter-gather")
		coalesce = flag.Bool("coalesce", false, "coalescing message plane: same-destination payloads of one burst share a wire message")
		adaptive = flag.Bool("adaptiveflush", false, "size/age-triggered adaptive outbox flush: defer sub-threshold fire-and-forget envelopes into the next burst (implies -coalesce)")
		nobatch  = flag.Bool("nobatching", false, "disable per-node write-lock batching (one request per object; the ablbatch ablation's off arm)")
		place    = flag.String("placement", "hash", "hash | range | adaptive | hier object→DTM-node placement")
		epoch    = flag.Int("epoch", 0, "adaptive placement: lock accesses per repartition epoch (0 = default)")
		platform = flag.String("platform", "scc", "scc | scc800 | opteron | scc:N (setting N)")
		backendF = flag.String("backend", "sim", "execution backend: sim (deterministic, virtual time) | live (real goroutines, wall-clock) | net (cores spread over OS processes)")
		arrivalF = flag.Bool("arrivalstamp", false, "timestamp contending payloads at envelope arrival instead of per-payload service instant")
		groups   = flag.Int("groups", 2, "net backend: number of OS processes (forked from this one by default)")
		rankF    = flag.Int("rank", 0, "net backend: this process's rank when launched standalone with -peers")
		listenF  = flag.String("listen", "", "net backend: override this rank's bind address in the -peers list")
		peersF   = flag.String("peers", "", "net backend: full rank-ordered address list (unix:<path> or host:port) for standalone launches; empty forks -groups local workers over unix sockets")
		protoF   = flag.String("protocol", "visible", "read-visibility protocol: visible (per-read DTM round trips) | tl2 (invisible reads, commit-time validation)")
		duration = flag.Duration("duration", 20*time.Millisecond, "virtual run length")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		traceF   = flag.String("trace", "", "write a flight-recorder trace of the run: .json for chrome://tracing, anything else for a plain-text timeline")
		traceCap = flag.Int("trace-events", 0, "flight recorder: ring capacity per core/DTM node in events (0 = default)")
		snapF    = flag.String("snapshot", "", "live backend: write interval-sampled throughput snapshots (JSONL) to this file")
		snapInt  = flag.Duration("snapshot-every", 0, "live backend: snapshot sampling interval (0 = default 10ms)")

		// workload knobs
		update   = flag.Int("update", 20, "hashset/list: update percentage")
		balances = flag.Int("balance", 20, "bank: balance percentage")
		readonly = flag.Bool("readonly", false, "bank: run balance scans as declared read-only transactions")
		zipf     = flag.Float64("zipf", 0, "bank: Zipf skew exponent for account choice (0 = uniform)")
		accounts = flag.Int("accounts", 1024, "bank: accounts")
		buckets  = flag.Int("buckets", 128, "hashset: buckets")
		load     = flag.Int("load", 4, "hashset: load factor")
		elems    = flag.Int("elems", 512, "list: initial elements")
		mode     = flag.String("mode", "normal", "list: normal | elastic-early | elastic-read")
		size     = flag.Int("size", 4<<20, "mapreduce: input bytes")
		chunk    = flag.Int("chunk", 8<<10, "mapreduce: chunk bytes")
	)
	flag.Parse()

	pol, err := repro.ParsePolicy(*cmName)
	if err != nil {
		fatal(err)
	}
	placeKind, err := repro.ParsePlacement(*place)
	if err != nil {
		fatal(err)
	}
	backend, err := repro.ParseBackend(*backendF)
	if err != nil {
		fatal(err)
	}
	proto, err := repro.ParseProtocol(*protoF)
	if err != nil {
		fatal(err)
	}
	cfg := repro.Config{
		Backend:          backend,
		Protocol:         proto,
		Seed:             *seed,
		TotalCores:       *cores,
		ServiceCores:     *svc,
		Policy:           pol,
		SerialRPC:        *serial,
		Coalesce:         *coalesce || *adaptive,
		AdaptiveFlush:    *adaptive,
		NoBatching:       *nobatch,
		Placement:        placeKind,
		RepartitionEpoch: *epoch,
		ArrivalStamp:     *arrivalF,
	}
	var plan *netboot.Plan
	isChild := false
	if backend == repro.BackendNet {
		plan, err = netboot.Resolve(*groups, *rankF, *listenF, *peersF)
		if err != nil {
			fatal(err)
		}
		cfg.Net = plan.NetConfig()
		isChild = plan.Rank != 0
	}
	perProc := *cores
	if plan != nil {
		perProc = (*cores + plan.Ranks - 1) / plan.Ranks
	}
	if w := netboot.OversubscriptionWarning(perProc, runtime.GOMAXPROCS(0), backend); w != "" && !isChild {
		fmt.Fprintln(os.Stderr, "tm2c-sim: "+w)
	}
	if *traceF != "" {
		cfg.Trace = &trace.Options{ActorEvents: *traceCap}
	}
	var snapFile *os.File
	if *snapF != "" {
		if backend != repro.BackendLive {
			fatal(fmt.Errorf("-snapshot requires -backend live (the sim has no wall-clock to sample on)"))
		}
		f, err := os.Create(*snapF)
		if err != nil {
			fatal(err)
		}
		snapFile = f
		cfg.Snapshot = &trace.SnapshotOptions{W: f, Every: *snapInt}
	}
	switch *platform {
	case "scc":
		cfg.Platform = repro.SCC(0)
	case "scc800":
		cfg.Platform = repro.SCC(1)
	case "opteron":
		cfg.Platform = repro.Opteron()
	default:
		var n int
		if _, err := fmt.Sscanf(*platform, "scc:%d", &n); err != nil {
			fatal(fmt.Errorf("unknown platform %q", *platform))
		}
		cfg.Platform = repro.SCC(n)
	}
	switch *deploy {
	case "dedicated":
		cfg.Deployment = repro.Dedicated
	case "multitask":
		cfg.Deployment = repro.Multitask
	default:
		fatal(fmt.Errorf("unknown deployment %q", *deploy))
	}
	switch *acquire {
	case "lazy":
		cfg.Acquire = repro.Lazy
	case "eager":
		cfg.Acquire = repro.Eager
	default:
		fatal(fmt.Errorf("unknown acquire mode %q", *acquire))
	}

	if plan != nil {
		// Fork before NewSystem: constructing a net-backend system blocks in
		// the peer handshake until every rank is up.
		if err := plan.Fork(); err != nil {
			fatal(err)
		}
	}
	sys, err := repro.NewSystem(cfg)
	if err != nil {
		fatal(err)
	}

	var verify func() error
	switch *app {
	case "bank":
		if *accounts < 2 {
			fatal(fmt.Errorf("bank needs at least 2 accounts, got %d", *accounts))
		}
		if !(*zipf >= 0) { // rejects negatives and NaN
			fatal(fmt.Errorf("invalid zipf exponent %v", *zipf))
		}
		b := bank.New(sys, *accounts)
		b.UseReadOnlyBalance(*readonly)
		sys.SpawnWorkers(b.ZipfTransferWorker(*balances, *zipf))
		verify = func() error {
			if b.TotalRaw() != b.Total() {
				return fmt.Errorf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
			}
			return nil
		}
	case "hashset":
		set := hashset.New(sys, *buckets)
		n := *buckets * *load
		rr := repro.NewRand(*seed)
		set.InitFill(n, uint64(2*n), &rr)
		sys.SpawnWorkers(set.Worker(hashset.Workload{UpdatePct: *update, KeyRange: uint64(2 * n)}))
	case "list":
		l := intset.New(sys)
		rr := repro.NewRand(*seed)
		l.InitFill(*elems, uint64(2**elems), &rr)
		var m intset.Mode
		switch *mode {
		case "normal":
			m = intset.Normal
		case "elastic-early":
			m = intset.ElasticEarly
		case "elastic-read":
			m = intset.ElasticRead
		default:
			fatal(fmt.Errorf("unknown list mode %q", *mode))
		}
		sys.SpawnWorkers(l.Worker(intset.Workload{UpdatePct: *update, KeyRange: uint64(2 * *elems), Mode: m}))
	case "mapreduce":
		j := mapreduce.NewJob(sys, *seed, *size, *chunk)
		sys.SpawnWorkers(func(rt *repro.Runtime) { j.Worker(rt) })
		verify = func() error {
			if j.HistogramRaw() != j.Expected() && int(j.HistogramTotal()) == *size {
				return fmt.Errorf("histogram mismatch")
			}
			return nil
		}
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	st := sys.Run(*duration)
	if !isChild {
		report(sys, st)
		// Verification reads raw memory, which is homed on rank 0 — worker
		// ranks cannot check it after the group has shut down.
		if verify != nil {
			if err := verify(); err != nil {
				fatal(err)
			}
			fmt.Println("verification: OK")
		}
	}
	if snapFile != nil {
		if err := snapFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshots written to %s\n", *snapF)
	}
	if *traceF != "" {
		path := *traceF
		if plan != nil && plan.Rank != 0 {
			// Every process records its own cores; suffix the worker ranks'
			// files so they don't clobber rank 0's.
			path = fmt.Sprintf("%s.r%d", path, plan.Rank)
		}
		if err := writeTrace(path, sys.Trace()); err != nil {
			fatal(err)
		}
	}
	if plan != nil {
		if err := plan.Wait(); err != nil {
			fatal(err)
		}
	}
}

// writeTrace renders the run's merged trace: chrome trace_event JSON for
// .json paths, the plain-text timeline otherwise.
func writeTrace(path string, t *trace.Trace) error {
	if t == nil {
		return fmt.Errorf("no trace collected")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = trace.WriteChrome(f, t)
	} else {
		err = trace.WriteText(f, t)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d events (%d dropped) written to %s\n", len(t.Events), t.Dropped, path)
	return nil
}

func report(sys *repro.System, st *repro.Stats) {
	cfg := sys.Config()
	fmt.Printf("platform            %s\n", cfg.Platform.Name)
	fmt.Printf("cores               %d (%d app + %d service, %v)\n",
		cfg.TotalCores, sys.NumAppCores(), sys.NumServiceCores(), cfg.Deployment)
	fmt.Printf("contention manager  %v\n", cfg.Policy)
	fmt.Printf("backend             %v\n", cfg.Backend)
	fmt.Printf("protocol            %v\n", cfg.Protocol)
	if cfg.Backend == repro.BackendLive || cfg.Backend == repro.BackendNet {
		fmt.Printf("wall duration       %v\n", st.Duration)
	} else {
		fmt.Printf("virtual duration    %v\n", st.Duration)
	}
	fmt.Printf("throughput          %.2f ops/ms\n", st.Throughput())
	fmt.Printf("commits / aborts    %d / %d (commit rate %.1f%%)\n", st.Commits, st.Aborts, st.CommitRate())
	fmt.Printf("read-only commits   %d (declared read-only transactions; zero write-lock traffic)\n", st.ReadOnlyCommits)
	fmt.Printf("user aborts         %d (withdrawn via Tx.Abort; not retried)\n", st.UserAborts)
	fmt.Printf("aborts by reason    conflict=%d revoked=%d doomed-read=%d stale-placement=%d timeout=%d user=%d\n",
		st.AbortReasons[trace.ReasonConflict], st.AbortReasons[trace.ReasonRevoked],
		st.AbortReasons[trace.ReasonDoomedRead], st.AbortReasons[trace.ReasonStalePlacement],
		st.AbortReasons[trace.ReasonTimeout], st.AbortReasons[trace.ReasonUser])
	fmt.Printf("  conflict kinds    RAW=%d WAW=%d WAR=%d\n",
		st.AbortsByKind[0], st.AbortsByKind[1], st.AbortsByKind[2])
	fmt.Printf("conflicts/revokes   %d / %d\n", st.Conflicts, st.Revocations)
	if dir := sys.Placement(); dir != nil {
		fmt.Printf("placement           %s", dir.PolicyName())
		if dir.Kind() == repro.PlacementAdaptive {
			fmt.Printf(": epoch %d, %d rounds, %d migrations (%d completed), %d stale NACKs (%d retries hint-steered), %d placement aborts",
				dir.Epoch(), st.RepartitionRounds, st.Migrations, st.Handoffs, st.StaleNacks, st.StaleNackHints, st.PlacementAborts)
		}
		fmt.Println()
	}
	if len(st.NodeLoad) > 0 {
		fmt.Printf("node load           imbalance %.2f (max/mean across %d DTM nodes)\n",
			st.LoadImbalance(), len(st.NodeLoad))
	}
	fmt.Printf("messages            %d (%.1f KB), read-lock %d, write-lock %d, release %d, early %d\n",
		st.Msgs, float64(st.MsgBytes)/1024, st.ReadLockReqs, st.WriteLockReqs, st.ReleaseMsgs, st.EarlyReleases)
	fmt.Printf("wire messages       %d (%.2f avg payloads/wire msg; %d payloads coalesced into shared envelopes)\n",
		st.WireMsgs, st.PayloadsPerWireMsg(), st.CoalescedPayloads)
	if st.Commits > 0 {
		fmt.Printf("commit round trips  %d (%.2f awaited/commit)\n",
			st.CommitRoundTrips, float64(st.CommitRoundTrips)/float64(st.Commits))
	}
	if cfg.Protocol == repro.ProtocolTL2 {
		fmt.Printf("tl2 local reads     %d (served from the local version table; zero wire traffic)\n", st.LocalReads)
		fmt.Printf("tl2 doomed reads    %d (snapshot-staleness aborts at read time)\n", st.DoomedReads)
		fmt.Printf("tl2 revalidations   %d", st.Revalidations)
		if st.Commits > 0 {
			fmt.Printf(" (%.2f read-set stripes checked/commit)", float64(st.Revalidations)/float64(st.Commits))
		}
		fmt.Println()
		fmt.Printf("tl2 clock advances  %d (one global-clock tick per update commit)\n", st.ClockAdvances)
	}
	if sys.TxLifespans.Count() > 0 {
		fmt.Printf("tx lifespan         %s\n", sys.TxLifespans.String())
	}
	if sys.CommitLatency.Count() > 0 {
		fmt.Printf("commit latency      %s\n", sys.CommitLatency.String())
	}
	if sys.ScatterLatency.Count() > 0 {
		fmt.Printf("scatter phase       %s\n", sys.ScatterLatency.String())
	}
	if sys.GatherLatency.Count() > 0 {
		fmt.Printf("gather phase        %s\n", sys.GatherLatency.String())
	}
	if sys.RevalidateLatency.Count() > 0 {
		fmt.Printf("tl2 revalidation    %s\n", sys.RevalidateLatency.String())
	}
	if sys.K != nil {
		fmt.Printf("kernel events       %d\n", sys.K.EventsRun())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tm2c-sim:", err)
	os.Exit(1)
}

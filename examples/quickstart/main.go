// Quickstart: a shared counter and a two-account transfer on a simulated
// 48-core SCC, using TM2C transactions with the starvation-free FairCM
// contention manager.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	sys, err := repro.NewSystem(repro.Config{
		Policy: repro.FairCM, // starvation-free contention management
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Allocate shared data through the typed API: one hot counter and two
	// accounts, funded outside the simulation (the initial values are
	// raw-written at construction).
	counter := repro.NewTVar(sys, repro.Uint64Codec(), 0)
	accounts := repro.NewTArray(sys, repro.Uint64Codec(), 2, 1000)

	// Every application core increments the counter and bounces money
	// between the two accounts until the virtual deadline.
	sys.SpawnWorkers(func(rt *repro.Runtime) {
		for !rt.Stopped() {
			rt.Run(func(tx *repro.Tx) {
				counter.Set(tx, counter.Get(tx)+1)
			})
			rt.Run(func(tx *repro.Tx) {
				a := accounts.Get(tx, 0)
				b := accounts.Get(tx, 1)
				accounts.Set(tx, 0, a-1)
				accounts.Set(tx, 1, b+1)
			})
			rt.AddOps(2)
		}
	})

	stats := sys.Run(5 * time.Millisecond)

	fmt.Printf("app cores        %d (+%d DTM service cores)\n",
		sys.NumAppCores(), sys.NumServiceCores())
	fmt.Printf("throughput       %.1f ops per virtual ms\n", stats.Throughput())
	fmt.Printf("commit rate      %.1f%% (%d commits, %d aborts)\n",
		stats.CommitRate(), stats.Commits, stats.Aborts)
	fmt.Printf("messages         %d\n", stats.Msgs)

	// Despite every transaction conflicting on the counter, no increment
	// was lost and no money was created or destroyed.
	total := accounts.GetRaw(0) + accounts.GetRaw(1)
	fmt.Printf("counter          %d (== half the commits)\n", counter.GetRaw())
	fmt.Printf("account total    %d (invariant: 2000)\n", total)
	if total != 2000 {
		log.Fatal("invariant violated!")
	}
}

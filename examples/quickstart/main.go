// Quickstart: a shared counter and a two-account transfer on a simulated
// 48-core SCC, using TM2C transactions with the starvation-free FairCM
// contention manager.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	sys, err := repro.NewSystem(repro.Config{
		Policy: repro.FairCM, // starvation-free contention management
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Allocate shared data: one hot counter and two accounts, funded
	// outside the simulation with raw writes.
	counter := sys.Mem.Alloc(1, 0)
	accounts := sys.Mem.Alloc(2, 0)
	sys.Mem.WriteRaw(accounts, 1000)
	sys.Mem.WriteRaw(accounts+1, 1000)

	// Every application core increments the counter and bounces money
	// between the two accounts until the virtual deadline.
	sys.SpawnWorkers(func(rt *repro.Runtime) {
		for !rt.Stopped() {
			rt.Run(func(tx *repro.Tx) {
				tx.Write(counter, tx.Read(counter)+1)
			})
			rt.Run(func(tx *repro.Tx) {
				a := tx.Read(accounts)
				b := tx.Read(accounts + 1)
				tx.Write(accounts, a-1)
				tx.Write(accounts+1, b+1)
			})
			rt.AddOps(2)
		}
	})

	stats := sys.Run(5 * time.Millisecond)

	fmt.Printf("app cores        %d (+%d DTM service cores)\n",
		sys.NumAppCores(), sys.NumServiceCores())
	fmt.Printf("throughput       %.1f ops per virtual ms\n", stats.Throughput())
	fmt.Printf("commit rate      %.1f%% (%d commits, %d aborts)\n",
		stats.CommitRate(), stats.Commits, stats.Aborts)
	fmt.Printf("messages         %d\n", stats.Msgs)

	// Despite every transaction conflicting on the counter, no increment
	// was lost and no money was created or destroyed.
	total := sys.Mem.ReadRaw(accounts) + sys.Mem.ReadRaw(accounts+1)
	fmt.Printf("counter          %d (== half the commits)\n", sys.Mem.ReadRaw(counter))
	fmt.Printf("account total    %d (invariant: 2000)\n", total)
	if total != 2000 {
		log.Fatal("invariant violated!")
	}
}

// Wordcount is the paper's MapReduce-like application (§5.4) written
// against the public API: worker cores atomically grab chunks of input via
// a shared cursor transaction, count letters locally, and transactionally
// merge their counts into a shared histogram. TM2C plays the role of the
// MapReduce master node.
//
// Run with: go run ./examples/wordcount
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	inputBytes = 1 << 21 // 2 MB of synthetic text
	chunkBytes = 8 << 10 // the paper's best chunk size
	letters    = 26
)

// histogram is the shared letter-count vector: one 26-word object under a
// single lock, translated through a FuncCodec.
type histogram [letters]uint64

var histCodec = repro.FuncCodec(letters,
	func(h histogram, dst []uint64) { copy(dst, h[:]) },
	func(src []uint64) (h histogram) { copy(h[:], src); return h },
)

// errDone withdraws the chunk-grab transaction once the input is exhausted:
// a user abort through tx.Abort — the attempt's locks are released, nothing
// commits, and Atomic returns the error instead of retrying.
var errDone = errors.New("input exhausted")

// letterAt deterministically generates the input text.
func letterAt(i int) byte { return byte((uint64(i)*2654435761 + 12345) % letters) }

func main() {
	sys, err := repro.NewSystem(repro.Config{
		Policy:       repro.FairCM,
		ServiceCores: 1, // the transactional load is low (§5.4)
		Seed:         9,
	})
	if err != nil {
		log.Fatal(err)
	}
	cursor := repro.NewTVar(sys, repro.Uint64Codec(), 0)
	hist := repro.NewTVar(sys, histCodec, histogram{})

	sys.SpawnWorkers(func(rt *repro.Runtime) {
		for {
			// Map: grab the next chunk atomically; withdraw when done.
			var off int
			err := rt.Atomic(func(tx *repro.Tx) error {
				off = int(cursor.Get(tx))
				if off >= inputBytes {
					tx.Abort(errDone)
				}
				cursor.Set(tx, uint64(off+chunkBytes))
				return nil
			})
			if err != nil {
				return // errDone: every byte has been claimed
			}
			end := off + chunkBytes
			if end > inputBytes {
				end = inputBytes
			}
			var counts histogram
			for i := off; i < end; i++ {
				counts[letterAt(i)]++
			}
			// ~0.7µs/byte: the nominal counting cost of the 533MHz P54C.
			rt.Compute(time.Duration(end-off) * 700 * time.Nanosecond)

			// Reduce: merge into the shared histogram atomically. The
			// histogram is a single 26-word object: one lock, one write.
			rt.Run(func(tx *repro.Tx) {
				cur := hist.Get(tx)
				for l := 0; l < letters; l++ {
					cur[l] += counts[l]
				}
				hist.Set(tx, cur)
			})
			rt.AddOps(1)
		}
	})

	stats := sys.Run(2 * time.Second) // generous deadline; workers exit early
	var total uint64
	for _, c := range hist.GetRaw() {
		total += c
	}
	fmt.Printf("counted %d letters across %d chunks on %d worker cores\n",
		total, stats.Ops, sys.NumAppCores())
	fmt.Printf("virtual duration %v, %d commits, commit rate %.1f%%\n",
		stats.Duration, stats.Commits, stats.CommitRate())
	if total != inputBytes {
		log.Fatalf("lost letters: %d != %d", total, inputBytes)
	}
	fmt.Println("verification: histogram total matches the input size")
}

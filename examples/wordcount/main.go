// Wordcount is the paper's MapReduce-like application (§5.4) written
// against the public API: worker cores atomically grab chunks of input via
// a shared cursor transaction, count letters locally, and transactionally
// merge their counts into a shared histogram. TM2C plays the role of the
// MapReduce master node.
//
// Run with: go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const (
	inputBytes = 1 << 21 // 2 MB of synthetic text
	chunkBytes = 8 << 10 // the paper's best chunk size
	letters    = 26
)

// letterAt deterministically generates the input text.
func letterAt(i int) byte { return byte((uint64(i)*2654435761 + 12345) % letters) }

func main() {
	sys, err := repro.NewSystem(repro.Config{
		Policy:       repro.FairCM,
		ServiceCores: 1, // the transactional load is low (§5.4)
		Seed:         9,
	})
	if err != nil {
		log.Fatal(err)
	}
	cursor := sys.Mem.Alloc(1, 0)
	hist := sys.Mem.Alloc(letters, 0)

	sys.SpawnWorkers(func(rt *repro.Runtime) {
		for {
			// Map: grab the next chunk atomically.
			var off int
			rt.Run(func(tx *repro.Tx) {
				off = int(tx.Read(cursor))
				if off < inputBytes {
					tx.Write(cursor, uint64(off+chunkBytes))
				}
			})
			if off >= inputBytes {
				return
			}
			end := off + chunkBytes
			if end > inputBytes {
				end = inputBytes
			}
			var counts [letters]uint64
			for i := off; i < end; i++ {
				counts[letterAt(i)]++
			}
			// ~0.7µs/byte: the nominal counting cost of the 533MHz P54C.
			rt.Compute(time.Duration(end-off) * 700 * time.Nanosecond)

			// Reduce: merge into the shared histogram atomically. The
			// histogram is a single 26-word object: one lock, one write.
			rt.Run(func(tx *repro.Tx) {
				cur := tx.ReadN(hist, letters)
				for l := 0; l < letters; l++ {
					cur[l] += counts[l]
				}
				tx.WriteN(hist, cur)
			})
			rt.AddOps(1)
		}
	})

	stats := sys.Run(2 * time.Second) // generous deadline; workers exit early
	var total uint64
	for l := 0; l < letters; l++ {
		total += sys.Mem.ReadRaw(hist + repro.Addr(l))
	}
	fmt.Printf("counted %d letters across %d chunks on %d worker cores\n",
		total, stats.Ops, sys.NumAppCores())
	fmt.Printf("virtual duration %v, %d commits, commit rate %.1f%%\n",
		stats.Duration, stats.Commits, stats.CommitRate())
	if total != inputBytes {
		log.Fatalf("lost letters: %d != %d", total, inputBytes)
	}
	fmt.Println("verification: histogram total matches the input size")
}

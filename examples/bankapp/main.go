// Bankapp compares TM2C's contention managers on the paper's bank workload
// (§5.3): most cores transfer money between accounts while one core
// repeatedly computes the full balance. Without fair contention management
// the balance core starves or drags the system down; FairCM keeps both
// sides live (Figure 5(c)).
//
// The app is written against the typed API: the accounts are a
// TArray[uint64], transfers run under Atomic and withdraw themselves with
// tx.Abort when the source account cannot cover the amount (a user abort —
// no retry, surfaced in Stats.UserAborts), and the balance scans are
// declared read-only transactions that skip the commit-time write
// machinery entirely.
//
// Run with: go run ./examples/bankapp
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"repro"
)

const accounts = 256

var errInsufficient = errors.New("insufficient funds")

func runBank(policy repro.Policy) (*repro.Stats, uint64) {
	sys, err := repro.NewSystem(repro.Config{
		Policy: policy,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	accts := repro.NewTArray(sys, repro.Uint64Codec(), accounts, 100)

	sys.SpawnWorkers(func(rt *repro.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			if rt.AppIndex() == 0 {
				// The balance core: scan every account atomically, as a
				// declared read-only transaction.
				var sum uint64
				rt.RunReadOnly(func(tx *repro.Tx) {
					sum = 0
					for i := 0; i < accounts; i++ {
						sum += accts.Get(tx, i)
					}
				})
				if sum != accounts*100 {
					log.Fatalf("balance observed %d, want %d: opacity violated", sum, accounts*100)
				}
			} else {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				amount := uint64(1 + r.Intn(50))
				err := rt.Atomic(func(tx *repro.Tx) error {
					f := accts.Get(tx, from)
					if f < amount {
						tx.Abort(errInsufficient) // withdrawn, not retried
					}
					t := accts.Get(tx, to)
					accts.Set(tx, from, f-amount)
					accts.Set(tx, to, t+amount)
					return nil
				})
				if err != nil && !errors.Is(err, errInsufficient) {
					log.Fatalf("unexpected transfer error: %v", err)
				}
			}
			rt.AddOps(1)
		}
	})
	stats := sys.Run(10 * time.Millisecond)
	return stats, stats.PerCore[0].Commits
}

func main() {
	fmt.Println("bank: 23 transfer cores + 1 balance core, 24 DTM cores, simulated SCC")
	fmt.Printf("%-14s %12s %12s %16s %12s %12s\n",
		"CM", "ops/ms", "commit %", "balance commits", "ro commits", "user aborts")
	for _, p := range repro.Policies() {
		st, balanceCommits := runBank(p)
		fmt.Printf("%-14v %12.2f %12.1f %16d %12d %12d\n",
			p, st.Throughput(), st.CommitRate(), balanceCommits,
			st.ReadOnlyCommits, st.UserAborts)
	}
	fmt.Println("\nexpected shape: FairCM sustains the highest total throughput by")
	fmt.Println("throttling the expensive balance scans; NoCM livelocks.")
	fmt.Println("every balance commit is read-only; declined transfers surface as user aborts.")
}

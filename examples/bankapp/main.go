// Bankapp compares TM2C's contention managers on the paper's bank workload
// (§5.3): most cores transfer money between accounts while one core
// repeatedly computes the full balance. Without fair contention management
// the balance core starves or drags the system down; FairCM keeps both
// sides live (Figure 5(c)).
//
// Run with: go run ./examples/bankapp
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

const accounts = 256

func runBank(policy repro.Policy) (*repro.Stats, uint64) {
	sys, err := repro.NewSystem(repro.Config{
		Policy: policy,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}
	base := sys.Mem.Alloc(accounts, 0)
	for i := 0; i < accounts; i++ {
		sys.Mem.WriteRaw(base+repro.Addr(i), 100)
	}

	sys.SpawnWorkers(func(rt *repro.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			if rt.AppIndex() == 0 {
				// The balance core: scan every account atomically.
				var sum uint64
				rt.Run(func(tx *repro.Tx) {
					sum = 0
					for i := 0; i < accounts; i++ {
						sum += tx.Read(base + repro.Addr(i))
					}
				})
				if sum != accounts*100 {
					log.Fatalf("balance observed %d, want %d: opacity violated", sum, accounts*100)
				}
			} else {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				rt.Run(func(tx *repro.Tx) {
					f := tx.Read(base + repro.Addr(from))
					t := tx.Read(base + repro.Addr(to))
					tx.Write(base+repro.Addr(from), f-1)
					tx.Write(base+repro.Addr(to), t+1)
				})
			}
			rt.AddOps(1)
		}
	})
	stats := sys.Run(10 * time.Millisecond)
	return stats, stats.PerCore[0].Commits
}

func main() {
	fmt.Println("bank: 23 transfer cores + 1 balance core, 24 DTM cores, simulated SCC")
	fmt.Printf("%-14s %12s %12s %16s\n", "CM", "ops/ms", "commit %", "balance commits")
	for _, p := range repro.Policies() {
		st, balanceCommits := runBank(p)
		fmt.Printf("%-14v %12.2f %12.1f %16d\n",
			p, st.Throughput(), st.CommitRate(), balanceCommits)
	}
	fmt.Println("\nexpected shape: FairCM sustains the highest total throughput by")
	fmt.Println("throttling the expensive balance scans; NoCM livelocks.")
}

// Elasticlist demonstrates elastic transactions (§6) on a sorted
// linked-list set built directly on the public API. The same search
// operation runs under three transactional models:
//
//   - normal: every traversed node stays read-locked until commit;
//   - elastic-early: nodes leaving the two-node traversal window are
//     released early (one extra message per release);
//   - elastic-read: no read locks at all — consecutive reads are validated
//     by re-reading shared memory, which on the SCC is much cheaper than a
//     message round trip.
//
// Run with: go run ./examples/elasticlist
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

// node is one list cell, stored as a two-word object through a FuncCodec;
// repro.Addr 0 is nil.
type node struct {
	Key  uint64
	Next repro.Addr
}

var nodeCodec = repro.FuncCodec(2,
	func(n node, dst []uint64) { dst[0], dst[1] = n.Key, uint64(n.Next) },
	func(src []uint64) node { return node{Key: src[0], Next: repro.Addr(src[1])} },
)

type list struct {
	sys  *repro.System
	head repro.TVar[repro.Addr]
}

func (l *list) nodeAt(base repro.Addr) repro.TVar[node] {
	return repro.TVarAt(l.sys, nodeCodec, base)
}

func (l *list) seed(keys ...uint64) {
	// Build the initial list with raw (outside-the-machine) writes.
	var prev repro.TVar[node]
	for i, k := range keys {
		nv := repro.NewTVar(l.sys, nodeCodec, node{Key: k})
		if i == 0 {
			l.head.SetRaw(nv.Addr())
		} else {
			prev.SetRaw(node{Key: prev.GetRaw().Key, Next: nv.Addr()})
		}
		prev = nv
	}
}

// contains searches for key under the given transaction kind.
func (l *list) contains(rt *repro.Runtime, kind repro.TxKind, key uint64) bool {
	var found bool
	rt.RunKind(kind, func(tx *repro.Tx) {
		var prev, prevPrev repro.Addr
		cur := l.head.Get(tx)
		for cur != 0 {
			n := l.nodeAt(cur).Get(tx)
			if kind == repro.ElasticEarly && prevPrev != 0 {
				l.nodeAt(prevPrev).EarlyRelease(tx) // §6: older nodes are irrelevant
			}
			if n.Key >= key {
				found = n.Key == key
				return
			}
			prevPrev, prev, cur = prev, cur, n.Next
		}
		_ = prev
		found = false
	})
	return found
}

func run(kind repro.TxKind) *repro.Stats {
	sys, err := repro.NewSystem(repro.Config{Policy: repro.FairCM, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	l := &list{sys: sys, head: repro.NewTVar(sys, repro.AddrCodec(), 0)}
	keys := make([]uint64, 128)
	for i := range keys {
		keys[i] = uint64(i*3 + 1)
	}
	l.seed(keys...)

	sys.SpawnWorkers(func(rt *repro.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			l.contains(rt, kind, uint64(r.Intn(400)))
			rt.AddOps(1)
		}
	})
	return sys.Run(5 * time.Millisecond)
}

func main() {
	fmt.Println("sorted-list search (128 nodes) under three transaction kinds, simulated SCC")
	fmt.Printf("%-15s %10s %10s %14s %14s\n", "kind", "ops/ms", "commit %", "read-lock msgs", "early releases")
	var normal float64
	for _, kind := range []repro.TxKind{repro.Normal, repro.ElasticEarly, repro.ElasticRead} {
		st := run(kind)
		tput := st.Throughput()
		if kind == repro.Normal {
			normal = tput
		}
		fmt.Printf("%-15v %10.1f %10.1f %14d %14d\n",
			kind, tput, st.CommitRate(), st.ReadLockReqs, st.EarlyReleases)
	}
	_ = normal
	fmt.Println("\nexpected shape (paper Fig.7): elastic-read wins by replacing message")
	fmt.Println("round-trips with memory reads; elastic-early pays a message per release.")
}

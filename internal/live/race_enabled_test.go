//go:build race

package live_test

// raceEnabled reports whether the race detector is instrumenting this
// build. Its shadow-memory bookkeeping allocates on paths that are
// allocation-free in a normal build, so the alloc-budget tests skip.
const raceEnabled = true

// Live-backend stress tests: all five applications of the evaluation run on
// the real-concurrency goroutine backend, under -race in CI. The sim
// backend's serializability audit is unavailable here (there is no global
// commit order to replay), so correctness is checked at the invariant
// level, exactly as on real hardware: conservation laws, structural
// integrity of the shared structures, and empty lock tables at quiesce.
//
// Every app runs once per message plane — the uncoalesced default and the
// coalescing transport (Config.Coalesce) — so batch envelopes, the outbox
// flush points and the per-sender DTM dispatch all race real goroutines.
// The app tests additionally run once per read-visibility protocol: the
// invisible-read TL2 mode's version-table reads, write-back markers, clock
// ticks and commit-time revalidation race real goroutines too.
package live_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/apps/bank"
	"repro/internal/apps/hashset"
	"repro/internal/apps/intset"
	"repro/internal/apps/mapreduce"
	"repro/internal/apps/skiplist"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// liveWindow is the wall-clock measurement window per app. Short: the point
// is exercising real concurrency, not throughput.
const liveWindow = 40 * time.Millisecond

// bothPlanes runs body once per message plane, as subtests. Used by the
// tests that are visible-protocol-only (irrevocability); app tests use
// eachVariant to cover the protocols too.
func bothPlanes(t *testing.T, body func(t *testing.T, coalesce bool)) {
	t.Run("plain", func(t *testing.T) { body(t, false) })
	t.Run("coalesce", func(t *testing.T) { body(t, true) })
}

// eachVariant runs body once per message plane × read-visibility protocol.
func eachVariant(t *testing.T, body func(t *testing.T, coalesce bool, proto core.Protocol)) {
	bothPlanes(t, func(t *testing.T, coalesce bool) {
		for _, proto := range []core.Protocol{core.ProtocolVisible, core.ProtocolTL2} {
			proto := proto
			t.Run(proto.String(), func(t *testing.T) { body(t, coalesce, proto) })
		}
	})
}

func liveSystem(t *testing.T, coalesce bool, proto core.Protocol, mut func(*core.Config)) *core.System {
	t.Helper()
	cfg := core.Config{
		Backend:    core.BackendLive,
		Seed:       7,
		TotalCores: 12,
		// FairCM: starvation-free, so every in-flight transaction finishes
		// and the post-deadline drain stays short (NoCM can livelock on
		// hot keys — on live that is real spinning, not virtual time).
		Policy:   cm.FairCM,
		Coalesce: coalesce,
		Protocol: proto,
		// Every live app test runs with the flight recorder on, so the
		// emit paths race real goroutines under -race in CI.
		Trace: &trace.Options{ActorEvents: 1024},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

// checkQuiesced asserts the invariants every drained run must satisfy on
// any backend: work happened, and no lock survived the drain.
func checkQuiesced(t *testing.T, s *core.System, st *core.Stats) {
	t.Helper()
	if st.Commits == 0 {
		t.Error("no transaction committed")
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Errorf("%d addresses still locked after drain", leaked)
	}
	if tr := s.Trace(); tr == nil {
		t.Error("flight recorder enabled but no trace assembled")
	} else if len(tr.Events) == 0 {
		t.Error("flight recorder enabled but trace is empty")
	}
}

func TestLiveBank(t *testing.T) {
	eachVariant(t, func(t *testing.T, coalesce bool, proto core.Protocol) {
		s := liveSystem(t, coalesce, proto, nil)
		const accounts = 128
		b := bank.New(s, accounts)
		s.SpawnWorkers(b.TransferWorker(10))
		st := s.Run(liveWindow)
		checkQuiesced(t, s, st)
		if b.TotalRaw() != b.Total() {
			t.Errorf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
		}
	})
}

func TestLiveBankZipfAdaptive(t *testing.T) {
	// Skewed writes against the adaptive directory: migrations, stale
	// NACKs and handoffs all race real goroutines here.
	eachVariant(t, func(t *testing.T, coalesce bool, proto core.Protocol) {
		s := liveSystem(t, coalesce, proto, func(c *core.Config) {
			c.Placement = placement.Adaptive
			c.RepartitionEpoch = 512
		})
		const accounts = 256
		b := bank.New(s, accounts)
		s.SpawnWorkers(b.ZipfTransferWorker(0, 1.1))
		st := s.Run(liveWindow)
		checkQuiesced(t, s, st)
		if b.TotalRaw() != b.Total() {
			t.Errorf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
		}
		if err := s.Placement().CheckInvariants(); err != nil {
			t.Errorf("directory invariants violated: %v", err)
		}
	})
}

func TestLiveHashSet(t *testing.T) {
	eachVariant(t, func(t *testing.T, coalesce bool, proto core.Protocol) {
		s := liveSystem(t, coalesce, proto, nil)
		set := hashset.New(s, 32)
		r := sim.NewRand(11)
		keys := set.InitFill(128, 512, &r)
		s.SpawnWorkers(set.Worker(hashset.Workload{UpdatePct: 30, KeyRange: 512}))
		st := s.Run(liveWindow)
		checkQuiesced(t, s, st)
		if len(keys) == 0 {
			t.Fatal("init fill inserted nothing")
		}
		seen := make(map[uint64]bool)
		for _, k := range set.RawKeys() {
			if seen[k] {
				t.Fatalf("duplicate key %d in hash set", k)
			}
			seen[k] = true
		}
	})
}

func TestLiveIntSet(t *testing.T) {
	for _, mode := range []intset.Mode{intset.Normal, intset.ElasticEarly, intset.ElasticRead} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			eachVariant(t, func(t *testing.T, coalesce bool, proto core.Protocol) {
				s := liveSystem(t, coalesce, proto, nil)
				l := intset.New(s)
				r := sim.NewRand(13)
				l.InitFill(96, 384, &r)
				s.SpawnWorkers(l.Worker(intset.Workload{UpdatePct: 25, KeyRange: 384, Mode: mode}))
				st := s.Run(liveWindow)
				checkQuiesced(t, s, st)
				keys := l.RawKeys()
				if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
					t.Fatalf("list keys out of order: %v", keys)
				}
				for i := 1; i < len(keys); i++ {
					if keys[i] == keys[i-1] {
						t.Fatalf("duplicate key %d in sorted list", keys[i])
					}
				}
			})
		})
	}
}

func TestLiveSkipList(t *testing.T) {
	eachVariant(t, func(t *testing.T, coalesce bool, proto core.Protocol) {
		s := liveSystem(t, coalesce, proto, nil)
		l := skiplist.New(s)
		r := sim.NewRand(17)
		l.InitFill(96, 384, &r)
		s.SpawnWorkers(l.Worker(skiplist.Workload{UpdatePct: 25, KeyRange: 384}))
		st := s.Run(liveWindow)
		checkQuiesced(t, s, st)
		if _, err := l.CheckTowers(); err != nil {
			t.Errorf("skip list structure broken: %v", err)
		}
	})
}

func TestLiveMapReduce(t *testing.T) {
	eachVariant(t, func(t *testing.T, coalesce bool, proto core.Protocol) {
		s := liveSystem(t, coalesce, proto, func(c *core.Config) { c.ServiceCores = 2 })
		const size = 96 << 10
		j := mapreduce.NewJob(s, 7, size, 8<<10)
		s.SpawnWorkers(func(rt *core.Runtime) { j.Worker(rt) })
		st := s.RunToCompletion()
		checkQuiesced(t, s, st)
		if got := j.HistogramTotal(); got != size {
			t.Fatalf("merged %d of %d bytes", got, size)
		}
		if j.HistogramRaw() != j.Expected() {
			t.Fatal("histogram does not match the sequential model")
		}
	})
}

func TestLiveMultitaskDeployment(t *testing.T) {
	eachVariant(t, func(t *testing.T, coalesce bool, proto core.Protocol) {
		s := liveSystem(t, coalesce, proto, func(c *core.Config) { c.Deployment = core.Multitask; c.TotalCores = 8 })
		b := bank.New(s, 64)
		s.SpawnWorkers(b.TransferWorker(5))
		st := s.Run(liveWindow)
		checkQuiesced(t, s, st)
		if b.TotalRaw() != b.Total() {
			t.Errorf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
		}
	})
}

// TestLiveCoalescedNoBatching drives the maximum-multiplicity path on real
// goroutines: per-object write-lock requests (NoBatching) re-merged into
// per-node envelopes by the outbox, with the per-sender DTM dispatch
// coalescing the grants on the way back.
func TestLiveCoalescedNoBatching(t *testing.T) {
	s := liveSystem(t, true, core.ProtocolVisible, func(c *core.Config) { c.NoBatching = true; c.ServiceCores = 4 })
	const accounts = 128
	b := bank.New(s, accounts)
	s.SpawnWorkers(b.TransferWorker(10))
	st := s.Run(liveWindow)
	checkQuiesced(t, s, st)
	if b.TotalRaw() != b.Total() {
		t.Errorf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
	}
	if st.WireMsgs > st.Msgs {
		t.Errorf("wire messages %d exceed logical payloads %d", st.WireMsgs, st.Msgs)
	}
	if st.CoalescedPayloads == 0 {
		t.Error("no payload rode a shared envelope on the live backend")
	}
}

func TestLiveRawBaseline(t *testing.T) {
	// SpawnRaw + global lock on the live backend: TAS mutual exclusion
	// must hold under real concurrency.
	s := liveSystem(t, false, core.ProtocolVisible, func(c *core.Config) { c.ServiceCores = -1; c.TotalCores = 8 })
	b := bank.New(s, 32)
	l := bank.NewGlobalLock(s)
	deadline := sim.Time(liveWindow)
	s.SpawnRaw(func(p core.Port, coreID int) {
		r := p.Rand()
		for p.Now() < deadline {
			from, to := bank.PickTransfer(r, 32)
			b.LockTransfer(l, p, coreID, from, to, 1)
			s.AddOps(1)
		}
	})
	st := s.RunToCompletion()
	if st.Ops == 0 {
		t.Fatal("raw workers did nothing")
	}
	if b.TotalRaw() != b.Total() {
		t.Errorf("money not conserved under global lock: %d != %d", b.TotalRaw(), b.Total())
	}
}

func TestLiveBarrier(t *testing.T) {
	// The §8 privatization barrier across really-concurrent workers: every
	// core increments its slot transactionally, meets the barrier, then
	// reads everyone else's slot directly (privatized by the barrier).
	eachVariant(t, func(t *testing.T, coalesce bool, proto core.Protocol) {
		s := liveSystem(t, coalesce, proto, func(c *core.Config) { c.TotalCores = 8 })
		n := s.NumAppCores()
		slots := core.NewTArray(s, core.Uint64Codec(), n, 0)
		s.SpawnWorkers(func(rt *core.Runtime) {
			i := rt.AppIndex()
			rt.Run(func(tx *core.Tx) { slots.Set(tx, i, uint64(i)+1) })
			rt.Barrier()
			for j := 0; j < n; j++ {
				if got := slots.At(j).GetDirect(rt.Port(), rt.Core()); got != uint64(j)+1 {
					panic(fmt.Sprintf("core %d saw slot %d = %d after barrier, want %d", i, j, got, j+1))
				}
			}
			rt.Barrier()
		})
		st := s.RunToCompletion()
		checkQuiesced(t, s, st)
	})
}

// TestLiveIrrevocable stays on the visible protocol: irrevocability
// requires it (RunIrrevocable panics under tl2).
func TestLiveIrrevocable(t *testing.T) {
	bothPlanes(t, func(t *testing.T, coalesce bool) {
		s := liveSystem(t, coalesce, core.ProtocolVisible, func(c *core.Config) { c.TotalCores = 8 })
		const accounts = 64
		accts := core.NewTArray(s, core.Uint64Codec(), accounts, 1000)
		s.SpawnWorkers(func(rt *core.Runtime) {
			r := rt.Rand()
			for !rt.Stopped() {
				from, to := bank.PickTransfer(r, accounts)
				if r.Intn(100) < 5 {
					rt.RunIrrevocable(func(ir *core.Irrevocable) {
						f := accts.At(from).GetIr(ir)
						tv := accts.At(to).GetIr(ir)
						accts.At(from).SetIr(ir, f-1)
						accts.At(to).SetIr(ir, tv+1)
					})
				} else {
					rt.Run(func(tx *core.Tx) {
						f := accts.Get(tx, from)
						tv := accts.Get(tx, to)
						accts.Set(tx, from, f-1)
						accts.Set(tx, to, tv+1)
					})
				}
				rt.AddOps(1)
			}
		})
		st := s.Run(liveWindow)
		checkQuiesced(t, s, st)
		if st.Irrevocables == 0 {
			t.Error("no irrevocable transaction completed")
		}
		var sum uint64
		for i := 0; i < accounts; i++ {
			sum += accts.GetRaw(i)
		}
		if want := uint64(accounts) * 1000; sum != want {
			t.Errorf("money not conserved across irrevocable mix: %d != %d", sum, want)
		}
	})
}

// Package live implements the real-concurrency execution backend of TM2C-Go:
// every port is an actual goroutine, mailboxes are buffered channels with
// selective receive, Advance is a no-op (the hardware runs as fast as it
// runs) and Now is the monotonic clock.
//
// The backend implements the same port.Port contract as the deterministic
// simulator (internal/sim via port.SimPort), so the whole DTM protocol in
// internal/core runs on it unchanged: lock requests, scatter-gather commits,
// contention management, adaptive placement, irrevocability. What changes is
// the meaning of time — run windows are wall-clock, message latency is
// channel latency, and interleavings are whatever the Go scheduler produces,
// so runs are NOT reproducible. Correctness on this backend is checked with
// invariants (money conservation, empty lock tables at quiesce, -race)
// rather than the simulator's serializability audit.
//
// Lifecycle: Spawn all ports first (goroutines block on an internal gate),
// then Start releases them and starts the clock, and Shutdown drains and
// kills the ports that are still serving (the DTM service loops). A killed
// port first empties its mailbox — releases sent by the last transactions
// must still be processed so the lock tables quiesce empty — and only then
// unwinds.
package live

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/port"
	"repro/internal/sim"
)

// mailboxCap is each port's channel buffer. The DTM protocol keeps at most a
// handful of requests in flight per core (one awaited RPC phase, plus
// fire-and-forget releases and barrier traffic), so this never fills in
// practice; if it ever does, senders simply block — backpressure, not loss.
const mailboxCap = 4096

// killSentinel unwinds a port goroutine blocked in a receive when the engine
// shuts down; the spawn wrapper recovers it (same pattern as the sim
// kernel).
type killSentinel struct{}

// Engine owns the goroutine ports of one live system.
type Engine struct {
	seed    uint64
	ports   []*Port
	started chan struct{} // closed by Start; gates every port goroutine
	quit    chan struct{} // closed by Shutdown; drains and kills receivers
	all     sync.WaitGroup

	start time.Time // monotonic epoch, set just before started closes

	mu      sync.Mutex
	fault   any
	running bool
	down    bool
}

// New returns an engine whose port RNGs derive from seed exactly like the
// sim kernel's proc RNGs, so workload shapes match across backends.
func New(seed uint64) *Engine {
	return &Engine{
		seed:    seed,
		started: make(chan struct{}),
		quit:    make(chan struct{}),
	}
}

// Spawn creates a port running fn in its own goroutine. The goroutine
// blocks until Start, so all spawning (and all raw-memory setup) happens
// before any worker code runs. Spawn must not be called after Start.
func (e *Engine) Spawn(name string, fn func(port.Port)) port.Port {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		panic("live: Spawn after Start")
	}
	p := &Port{
		eng:  e,
		id:   len(e.ports),
		name: name,
		ch:   make(chan port.Msg, mailboxCap),
		rng:  sim.NewRand(e.seed ^ (0x9e3779b97f4a7c15 * uint64(len(e.ports)+1))),
	}
	e.ports = append(e.ports, p)
	e.mu.Unlock()
	e.all.Add(1)
	go func() {
		defer e.all.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); !ok {
					e.setFault(r)
				}
			}
		}()
		<-e.started
		fn(p)
	}()
	return p
}

// Start releases every spawned goroutine and starts the monotonic clock.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		panic("live: Start called twice")
	}
	e.running = true
	e.mu.Unlock()
	e.start = time.Now()
	close(e.started)
}

// Now returns the monotonic time since Start as a sim.Time (nanoseconds);
// zero before Start.
func (e *Engine) Now() sim.Time {
	e.mu.Lock()
	running := e.running
	e.mu.Unlock()
	if !running {
		return 0
	}
	return sim.Time(time.Since(e.start))
}

// NumPorts returns how many ports were spawned.
func (e *Engine) NumPorts() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.ports)
}

// Shutdown drains and terminates every port that is still receiving (the
// DTM service loops), waits for all goroutines to exit, and re-raises the
// first fault any port goroutine died with. Callers must first wait for the
// application workers to finish on their own, so that every release message
// of the final transactions is already sitting in a service mailbox: a
// killed receiver empties its mailbox before unwinding, which is what lets
// the lock tables quiesce empty.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	if !e.down {
		e.down = true
		close(e.quit)
	}
	e.mu.Unlock()
	e.all.Wait()
	e.mu.Lock()
	f := e.fault
	e.fault = nil
	e.mu.Unlock()
	if f != nil {
		panic(f)
	}
}

// Fault returns the first panic value captured from a port goroutine, if
// any. Watchdogs consult it while waiting for workers to drain.
func (e *Engine) Fault() any {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fault
}

func (e *Engine) setFault(r any) {
	e.mu.Lock()
	if e.fault == nil {
		e.fault = r
	}
	e.mu.Unlock()
}

// Port is one live execution context: a goroutine with a channel mailbox.
// All methods except ID must be called from the port's own goroutine; the
// stash (messages set aside by selective receive) is single-consumer state.
type Port struct {
	eng  *Engine
	id   int
	name string
	rng  sim.Rand
	ch   chan port.Msg

	// stash holds delivered-but-deferred messages in delivery order:
	// everything RecvMatch/TryRecvMatch skipped — the same MsgQueue the
	// sim kernel's procs use as their mailbox.
	stash sim.MsgQueue

	// onBatch, when set, observes every Batch envelope unpacked into the
	// stash (the payload count). deliver runs on the port's own goroutine,
	// so the hook shares the port's single-consumer discipline.
	onBatch func(n int)
}

// SetBatchHook installs fn to observe every multi-payload Batch envelope
// this port unpacks (called with the envelope's payload count). It must be
// installed before Engine.Start releases the goroutines; a nil fn disables
// it.
func (p *Port) SetBatchHook(fn func(n int)) { p.onBatch = fn }

var _ port.Port = (*Port)(nil)

// ID returns the engine-assigned port identifier.
func (p *Port) ID() int { return p.id }

// Name returns the name given at Spawn time.
func (p *Port) Name() string { return p.name }

// Now returns monotonic nanoseconds since Start.
func (p *Port) Now() sim.Time { return sim.Time(time.Since(p.eng.start)) }

// Rand returns the port's deterministic random source.
func (p *Port) Rand() *sim.Rand { return &p.rng }

// Advance consumes no time — nominal compute costs and modeled waits are a
// simulation concept; on the live backend the hardware is exactly as fast
// as it is. It does yield the processor: code that uses Advance as a wait
// (contention-manager backoff, test-and-set spin loops) must not turn into
// a hot spin that starves the very goroutine it is waiting on.
func (p *Port) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("live: %s: negative advance %v", p.name, d))
	}
	if d > 0 {
		runtime.Gosched()
	}
}

// Yield lets other goroutines run.
func (p *Port) Yield() { runtime.Gosched() }

// Send delivers payload to dst immediately (the delay parameter models
// simulated latency and is ignored). If dst's mailbox is full the sender
// blocks — backpressure — unless the engine is shutting down, in which case
// the message is dropped (its receiver is being killed anyway).
func (p *Port) Send(dst port.Port, payload any, delay time.Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("live: negative send delay %v", delay))
	}
	if b, ok := payload.(*port.Batch); ok && len(b.Payloads) == 0 {
		panic("live: empty batch envelope")
	}
	d := dst.(*Port)
	m := port.Msg{From: p.id, Payload: payload}
	select {
	case d.ch <- m:
	default:
		select {
		case d.ch <- m:
		case <-p.eng.quit:
		}
	}
}

// recvChan blocks for the next channel message, bypassing the stash. During
// shutdown it first drains the mailbox, then unwinds the goroutine.
func (p *Port) recvChan() port.Msg {
	select {
	case m := <-p.ch:
		return m
	default:
	}
	select {
	case m := <-p.ch:
		return m
	case <-p.eng.quit:
		// Drain: releases from the final transactions must be served so
		// the lock tables quiesce empty; die only on a provably empty box.
		select {
		case m := <-p.ch:
			return m
		default:
			panic(killSentinel{})
		}
	}
}

// deliver appends a channel message to the stash, unpacking Batch envelopes
// into one stashed message per payload (staged order, the envelope's
// sender). Receivers therefore only ever observe individual protocol
// payloads, exactly as on the simulated backend, and selective receive is
// unchanged.
func (p *Port) deliver(m port.Msg) {
	if b, ok := m.Payload.(*port.Batch); ok {
		for _, pl := range b.Payloads {
			p.stash.Push(port.Msg{From: m.From, Payload: pl})
		}
		if p.onBatch != nil {
			p.onBatch(len(b.Payloads))
		}
		port.PutBatch(b)
		return
	}
	p.stash.Push(m)
}

// Recv blocks until a message is available and returns the earliest
// delivered one (stashed messages first — they were delivered earlier).
func (p *Port) Recv() port.Msg {
	for p.stash.Len() == 0 {
		p.deliver(p.recvChan())
	}
	return p.stash.Pop()
}

// TryRecv returns the earliest queued message without blocking.
func (p *Port) TryRecv() (port.Msg, bool) {
	if p.stash.Len() > 0 {
		return p.stash.Pop(), true
	}
	select {
	case m := <-p.ch:
		p.deliver(m)
		return p.stash.Pop(), true
	default:
		return port.Msg{}, false
	}
}

// RecvMatch blocks until a message satisfying pred is available and returns
// the earliest such message; everything else stays queued in delivery
// order.
func (p *Port) RecvMatch(pred func(port.Msg) bool) port.Msg {
	for {
		if m, ok := p.stash.TakeMatch(pred); ok {
			return m
		}
		p.deliver(p.recvChan())
	}
}

// TryRecvMatch returns the earliest queued message satisfying pred, if any,
// without blocking. Non-matching messages stay queued.
func (p *Port) TryRecvMatch(pred func(port.Msg) bool) (port.Msg, bool) {
	for {
		if m, ok := p.stash.TakeMatch(pred); ok {
			return m, true
		}
		select {
		case m := <-p.ch:
			p.deliver(m)
		default:
			return port.Msg{}, false
		}
	}
}

// RecvTimeout waits up to d for a message; ok is false on timeout.
func (p *Port) RecvTimeout(d time.Duration) (port.Msg, bool) {
	if p.stash.Len() > 0 {
		return p.stash.Pop(), true
	}
	if d <= 0 {
		select {
		case m := <-p.ch:
			p.deliver(m)
			return p.stash.Pop(), true
		default:
			return port.Msg{}, false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case m := <-p.ch:
		p.deliver(m)
		return p.stash.Pop(), true
	case <-t.C:
		return port.Msg{}, false
	case <-p.eng.quit:
		select {
		case m := <-p.ch:
			p.deliver(m)
			return p.stash.Pop(), true
		default:
			panic(killSentinel{})
		}
	}
}

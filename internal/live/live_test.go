package live

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/port"
)

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// TestStartGate: spawned goroutines must not run before Start — raw-memory
// setup happens between Spawn and Start, exactly like the sim kernel's
// pre-Run phase.
func TestStartGate(t *testing.T) {
	e := New(1)
	var ran atomic.Bool
	e.Spawn("w", func(p port.Port) { ran.Store(true) })
	time.Sleep(20 * time.Millisecond)
	if ran.Load() {
		t.Fatal("goroutine ran before Start")
	}
	if e.Now() != 0 {
		t.Fatalf("Now before Start = %v, want 0", e.Now())
	}
	e.Start()
	e.Shutdown()
	if !ran.Load() {
		t.Fatal("goroutine never ran")
	}
}

// TestSelectiveReceive: RecvMatch must return the earliest matching message
// and leave non-matching traffic queued in delivery order for later Recv.
func TestSelectiveReceive(t *testing.T) {
	e := New(1)
	got := make(chan []int, 1)
	recvd := e.Spawn("recv", func(p port.Port) {
		var order []int
		// Take the first even payload, then drain the rest in order.
		m := p.RecvMatch(func(m port.Msg) bool { return m.Payload.(int)%2 == 0 })
		order = append(order, m.Payload.(int))
		for i := 0; i < 4; i++ {
			order = append(order, p.Recv().Payload.(int))
		}
		got <- order
	})
	e.Spawn("send", func(p port.Port) {
		for _, v := range []int{1, 3, 2, 5, 4} {
			p.Send(recvd, v, 0)
		}
	})
	e.Start()
	defer e.Shutdown()
	select {
	case order := <-got:
		want := []int{2, 1, 3, 5, 4}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("receive order %v, want %v", order, want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver stuck")
	}
}

// TestTryRecvMatchStashes: a non-matching message pulled off the channel
// must stay queued (in the stash) for subsequent receives. The sender's
// messages are followed by a sentinel on the same FIFO channel, and the
// receiver first blocks for the sentinel — so by the time TryRecvMatch
// runs, 7 and 8 are provably delivered (no race on the sender's progress).
func TestTryRecvMatchStashes(t *testing.T) {
	e := New(1)
	done := make(chan error, 1)
	recvd := e.Spawn("recv", func(p port.Port) {
		// Blocks until the sentinel arrives, stashing 7 and 8 on the way.
		p.RecvMatch(func(m port.Msg) bool { return m.Payload.(int) == 0 })
		m, ok := p.TryRecvMatch(func(m port.Msg) bool { return m.Payload.(int) == 99 })
		if ok {
			done <- errf("TryRecvMatch matched %v, want no match", m.Payload)
			return
		}
		// The skipped messages must still be receivable, in delivery order.
		for _, want := range []int{7, 8} {
			if m, ok := p.TryRecv(); !ok || m.Payload.(int) != want {
				done <- errf("TryRecv after stash = %v/%v, want %d/true", m.Payload, ok, want)
				return
			}
		}
		done <- nil
	})
	e.Spawn("send", func(p port.Port) {
		p.Send(recvd, 7, 0)
		p.Send(recvd, 8, 0)
		p.Send(recvd, 0, 0) // sentinel: everything before it is delivered
	})
	e.Start()
	defer e.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver stuck")
	}
}

// TestRecvTimeout: an empty mailbox must time out; a delivered message must
// win over the timer.
func TestRecvTimeout(t *testing.T) {
	e := New(1)
	done := make(chan error, 1)
	recvd := e.Spawn("recv", func(p port.Port) {
		if _, ok := p.RecvTimeout(time.Millisecond); ok {
			done <- errf("RecvTimeout on empty mailbox returned a message")
			return
		}
		if m, ok := p.RecvTimeout(5 * time.Second); !ok || m.Payload.(string) != "hi" {
			done <- errf("RecvTimeout = %v/%v, want hi/true", m, ok)
			return
		}
		done <- nil
	})
	e.Spawn("send", func(p port.Port) {
		time.Sleep(5 * time.Millisecond)
		p.Send(recvd, "hi", 0)
	})
	e.Start()
	defer e.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("receiver stuck")
	}
}

// TestShutdownDrainsBeforeKill: a service loop blocked in Recv must process
// every message already in its mailbox before the shutdown kill takes it —
// the property that lets lock tables quiesce empty on the live backend.
func TestShutdownDrainsBeforeKill(t *testing.T) {
	e := New(1)
	var served atomic.Int64
	svc := e.Spawn("svc", func(p port.Port) {
		for {
			p.Recv()
			served.Add(1)
		}
	})
	const n = 100
	sent := make(chan struct{})
	e.Spawn("send", func(p port.Port) {
		for i := 0; i < n; i++ {
			p.Send(svc, i, 0)
		}
		close(sent)
	})
	e.Start()
	<-sent
	e.Shutdown()
	if got := served.Load(); got != n {
		t.Fatalf("service drained %d of %d messages before dying", got, n)
	}
}

// TestFaultPropagation: a panic in a port goroutine must surface from
// Shutdown, like sim proc panics surface from Kernel.Run.
func TestFaultPropagation(t *testing.T) {
	e := New(1)
	e.Spawn("bad", func(p port.Port) { panic("boom") })
	e.Start()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("Shutdown recovered %v, want boom", r)
		}
	}()
	e.Shutdown()
	t.Fatal("Shutdown did not re-panic the fault")
}

// TestRandStreamsMatchSim: port RNG seeding must match the sim kernel's
// formula, so workload shapes are comparable across backends.
func TestRandStreamsMatchSim(t *testing.T) {
	e := New(42)
	vals := make(chan [2]uint64, 2)
	for i := 0; i < 2; i++ {
		e.Spawn("p", func(p port.Port) {
			vals <- [2]uint64{p.Rand().Uint64(), p.Rand().Uint64()}
		})
	}
	e.Start()
	e.Shutdown()
	a, b := <-vals, <-vals
	if a == b {
		t.Fatal("distinct ports drew identical random streams")
	}
}

// TestBatchEnvelopeUnpacks: a *port.Batch payload must be unpacked into the
// stash at receive time — the receiver observes one message per payload, in
// staged order, and selective receive can pick from the middle of an
// envelope while the rest stays queued.
func TestBatchEnvelopeUnpacks(t *testing.T) {
	e := New(1)
	got := make(chan []any, 1)
	recvd := e.Spawn("recv", func(p port.Port) {
		var order []any
		// Wait for the sentinel first so the envelope is provably queued,
		// then pick from its middle and drain the rest.
		p.RecvMatch(func(m port.Msg) bool { return m.Payload == "sentinel" })
		m := p.RecvMatch(func(m port.Msg) bool { return m.Payload == "pick" })
		order = append(order, m.Payload)
		for i := 0; i < 2; i++ {
			order = append(order, p.Recv().Payload)
		}
		got <- order
	})
	e.Spawn("send", func(p port.Port) {
		p.Send(recvd, &port.Batch{Payloads: []any{"x", "pick", "y"}}, 0)
		p.Send(recvd, "sentinel", 0)
	})
	e.Start()
	defer e.Shutdown()
	select {
	case order := <-got:
		want := []any{"pick", "x", "y"}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("order %v, want %v", order, want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver stuck")
	}
}

// TestBatchEnvelopeTryRecv: the non-blocking receives must unpack envelopes
// too, and report each payload separately.
func TestBatchEnvelopeTryRecv(t *testing.T) {
	e := New(1)
	done := make(chan error, 1)
	recvd := e.Spawn("recv", func(p port.Port) {
		p.RecvMatch(func(m port.Msg) bool { return m.Payload == "sentinel" })
		var vals []any
		for {
			m, ok := p.TryRecv()
			if !ok {
				break
			}
			vals = append(vals, m.Payload)
		}
		if len(vals) != 2 || vals[0] != "a" || vals[1] != "b" {
			done <- errf("TryRecv drained %v, want [a b]", vals)
			return
		}
		done <- nil
	})
	e.Spawn("send", func(p port.Port) {
		p.Send(recvd, &port.Batch{Payloads: []any{"a", "b"}}, 0)
		p.Send(recvd, "sentinel", 0)
	})
	e.Start()
	defer e.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver stuck")
	}
}

// TestOutboxConcurrentFlushOrdering: the Outbox contract on the live
// backend. Each sender goroutine owns its own Outbox (the contract: one
// outbox per execution port) and stages bursts for two destinations
// concurrently with the other senders. Even under real concurrency, one
// sender's payloads must reach each destination in staged order — a flush's
// same-destination payloads travel as one Batch envelope and the mailbox
// unpacks it in order — and multi-payload envelopes must actually occur.
// The sim-backend tests pin first-staged order deterministically; this is
// the racing counterpart (run under -race in CI).
func TestOutboxConcurrentFlushOrdering(t *testing.T) {
	const (
		senders  = 4
		bursts   = 60
		perBurst = 3 // payloads per destination per burst → every flush coalesces
	)
	type item struct{ sender, seq int }
	e := New(7)
	perRecv := senders * bursts * perBurst
	type recvResult struct {
		seqs      map[int][]int // sender → seqs in delivery order
		envelopes int
	}
	results := make(chan recvResult, 2)
	var recvs [2]port.Port
	for i := 0; i < 2; i++ {
		recvs[i] = e.Spawn(fmt.Sprintf("recv%d", i), func(p port.Port) {
			var envelopes atomic.Int64
			p.(*Port).SetBatchHook(func(n int) {
				if n >= 2 {
					envelopes.Add(1)
				}
			})
			r := recvResult{seqs: make(map[int][]int)}
			for n := 0; n < perRecv; n++ {
				it := p.Recv().Payload.(item)
				r.seqs[it.sender] = append(r.seqs[it.sender], it.seq)
			}
			r.envelopes = int(envelopes.Load())
			results <- r
		})
	}
	for s := 0; s < senders; s++ {
		sender := s
		e.Spawn(fmt.Sprintf("send%d", sender), func(p port.Port) {
			var o port.Outbox
			next := [2]int{}
			for b := 0; b < bursts; b++ {
				// Interleave the two destinations within the burst so each
				// flush carries a multi-payload entry per destination.
				for k := 0; k < perBurst; k++ {
					for d := 0; d < 2; d++ {
						o.Stage(recvs[d], d, item{sender, next[d]}, 8, 0)
						next[d]++
					}
				}
				o.Flush(func(en *port.OutEntry) {
					if len(en.Payloads) == 1 {
						p.Send(en.Dst, en.Payloads[0], 0)
						return
					}
					// The outbox retains en.Payloads after Flush returns, so
					// the envelope must carry its own copy (the same contract
					// core.sendEntry follows).
					b := port.GetBatch()
					b.Payloads = append(b.Payloads, en.Payloads...)
					p.Send(en.Dst, b, 0)
				})
				p.Yield()
			}
		})
	}
	e.Start()
	defer e.Shutdown()
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if r.envelopes == 0 {
				t.Errorf("receiver saw no multi-payload envelope; coalescing never happened")
			}
			for s := 0; s < senders; s++ {
				seqs := r.seqs[s]
				if len(seqs) != bursts*perBurst {
					t.Fatalf("sender %d: %d payloads delivered, want %d", s, len(seqs), bursts*perBurst)
				}
				for j, v := range seqs {
					if v != j {
						t.Fatalf("sender %d: payload %d has seq %d; staged order broken (got %v...)",
							s, j, v, seqs[:j+1])
					}
				}
			}
		case <-time.After(30 * time.Second):
			t.Fatal("receivers did not drain in time")
		}
	}
}

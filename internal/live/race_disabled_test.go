//go:build !race

package live_test

const raceEnabled = false

// Allocation regression tests for the live-backend hot paths: the pooled
// envelope/scratch machinery must make steady-state commits allocation-free
// (up to a small floor the Go runtime itself imposes — channel wakeups and
// scheduler bookkeeping on blocked receives).
//
// Methodology: workers run a warm-up batch first so every pool, scratch
// slice and map reaches its steady-state capacity, then rendezvous at a
// barrier; one worker snapshots runtime.MemStats, everyone runs a measured
// batch of transactions, and a second snapshot bounds Mallocs over the
// window. Keys are disjoint per worker, so no transaction ever aborts and
// the measured window is pure hot path: begin, read/write-lock RPCs,
// write-back, release burst, outbox flush.
package live_test

import (
	"runtime"
	"testing"

	"repro/internal/cm"
	"repro/internal/core"
)

// measureLiveAllocs runs the given per-transaction body on every app core
// (disjoint key ranges) and returns the average heap allocations per
// committed transaction over the measured window.
func measureLiveAllocs(t *testing.T, proto core.Protocol, coalesce bool, slotsPerWorker int, body func(tx *core.Tx, a core.TArray[uint64], base, n int)) float64 {
	t.Helper()
	cfg := core.Config{
		Backend:    core.BackendLive,
		Seed:       7,
		TotalCores: 8,
		Policy:     cm.FairCM,
		Coalesce:   coalesce,
		Protocol:   proto,
	}
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	workers := s.NumAppCores()
	accts := core.NewTArray(s, core.Uint64Codec(), workers*slotsPerWorker, 100)

	const warmup = 400
	const measured = 600
	var m1, m2 runtime.MemStats
	s.SpawnWorkers(func(rt *core.Runtime) {
		i := rt.AppIndex()
		base := i * slotsPerWorker
		run := func(tx *core.Tx) { body(tx, accts, base, slotsPerWorker) }
		for n := 0; n < warmup; n++ {
			rt.Run(run)
		}
		rt.Barrier()
		if i == 0 {
			runtime.GC()
			runtime.ReadMemStats(&m1)
		}
		rt.Barrier()
		for n := 0; n < measured; n++ {
			rt.Run(run)
		}
		rt.Barrier()
		if i == 0 {
			runtime.ReadMemStats(&m2)
		}
	})
	st := s.RunToCompletion()
	wantCommits := uint64(workers * (warmup + measured))
	if st.Commits < wantCommits {
		t.Fatalf("commits %d < %d: disjoint-key workload should never abort", st.Commits, wantCommits)
	}
	// The window includes two barrier crossings; their handful of messages
	// is amortized over workers*measured transactions.
	return float64(m2.Mallocs-m1.Mallocs) / float64(workers*measured)
}

// transferBody is the visible-protocol commit shape: two reads, two writes,
// scatter write-lock acquisition at commit, gathered grants, release burst.
func transferBody(tx *core.Tx, a core.TArray[uint64], base, n int) {
	from, to := base, base+1
	f := a.Get(tx, from)
	v := a.Get(tx, to)
	a.Set(tx, from, f-1)
	a.Set(tx, to, v+1)
}

// readMostlyBody is the TL2 shape of interest: several invisible reads
// (version-table validation, no DTM round trip) and one write.
func readMostlyBody(tx *core.Tx, a core.TArray[uint64], base, n int) {
	var sum uint64
	for j := 0; j < n; j++ {
		sum += a.Get(tx, base+j)
	}
	a.Set(tx, base, sum)
}

// liveAllocBudget is the per-commit allocation bound the tests tolerate.
// Steady state measures ~0.01 allocs/tx (stray runtime bookkeeping only);
// the budget leaves headroom for scheduler noise without letting a real
// per-transaction allocation (1.0+/tx) slip through. The seed tree measured
// 10+ allocs per commit on these workloads before pooling.
const liveAllocBudget = 0.5

func TestLiveCommitAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on otherwise allocation-free paths")
	}
	bothPlanes(t, func(t *testing.T, coalesce bool) {
		got := measureLiveAllocs(t, core.ProtocolVisible, coalesce, 2, transferBody)
		t.Logf("visible commit: %.2f allocs/tx", got)
		if got > liveAllocBudget {
			t.Errorf("visible commit hot path allocates %.2f objects/tx, budget %.1f", got, liveAllocBudget)
		}
	})
}

func TestLiveTL2ReadAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on otherwise allocation-free paths")
	}
	bothPlanes(t, func(t *testing.T, coalesce bool) {
		got := measureLiveAllocs(t, core.ProtocolTL2, coalesce, 8, readMostlyBody)
		t.Logf("TL2 read-mostly commit: %.2f allocs/tx", got)
		if got > liveAllocBudget {
			t.Errorf("TL2 read-mostly hot path allocates %.2f objects/tx, budget %.1f", got, liveAllocBudget)
		}
	})
}

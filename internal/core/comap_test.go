package core

import (
	"testing"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/placement"
)

// clusteredWorker returns a worker whose transactions touch only its own
// cluster's partition of the pool, with Zipf-ish skew inside the partition.
// Each mesh quadrant's app cores hammer a distinct contiguous range, so a
// stripe's dominant accessor cluster is unambiguous — the signal the hier
// policy's co-mapping needs, and exactly the structure of a partitioned
// workload (per-region shards, per-tenant tables) on a real machine.
func clusteredWorker(pl *noc.Platform, pool mem.Addr, partWords, ops int) func(rt *Runtime) {
	return func(rt *Runtime) {
		part := pl.ClusterOf(rt.Core())
		base := pool + mem.Addr(part*partWords)
		r := rt.Rand()
		for i := 0; i < ops; i++ {
			rt.Run(func(tx *Tx) {
				a := base + mem.Addr(r.Intn(1+r.Intn(partWords)))
				tx.Write(a, tx.Read(a)+1)
			})
			rt.AddOps(1)
		}
	}
}

// runComap runs the clustered workload under one placement kind and returns
// the stats and the directory.
func runComap(t *testing.T, kind placement.Kind) (*Stats, *placement.Directory) {
	t.Helper()
	cfg := Config{
		Platform:         noc.SCC(0),
		Seed:             13,
		TotalCores:       48,
		ServiceCores:     8,
		Policy:           cm.FairCM,
		Placement:        kind,
		RepartitionEpoch: 256,
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const partWords = 256
	pool := s.Mem.Alloc(partWords*4, 0)
	s.SpawnWorkers(clusteredWorker(s.Platform(), pool, partWords, 120))
	st := s.RunToCompletion()
	if st.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked", leaked)
	}
	if err := s.Placement().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return st, s.Placement()
}

// TestCoMappingConvergesOnStableSkew is the deterministic end-to-end
// co-mapping test the ISSUE asks for: on a stable clustered Zipf workload,
// the hier policy's migrations must pull stripes toward their accessor
// clusters, so (a) its remote-access ratio across epoch windows strictly
// drops from the first window to the last, and (b) its final remote ratio
// beats flat adaptive's on the identical workload and seed — the
// Stats.RemoteAccessRatio counter proving the win.
func TestCoMappingConvergesOnStableSkew(t *testing.T) {
	hierStats, hierDir := runComap(t, placement.AdaptiveHier)
	flatStats, _ := runComap(t, placement.Adaptive)

	if hierStats.Migrations == 0 {
		t.Fatal("hier policy initiated no migrations under clustered skew")
	}
	hist := hierDir.RemoteHistory()
	if len(hist) < 2 {
		t.Fatalf("only %d epoch windows recorded", len(hist))
	}
	if first, last := hist[0], hist[len(hist)-1]; last >= first {
		t.Errorf("hier remote-access ratio did not drop: first window %.3f, last %.3f", first, last)
	}
	hr, fr := hierStats.RemoteAccessRatio(), flatStats.RemoteAccessRatio()
	if hr == 0 || fr == 0 {
		t.Fatalf("remote ratios not tracked (hier %.3f, flat %.3f)", hr, fr)
	}
	if hr >= fr {
		t.Errorf("co-mapping remote ratio %.3f not below flat adaptive's %.3f", hr, fr)
	}
}

// TestDirectoryStateIsOTouched asserts the hierarchical directory's scaling
// contract end to end: under the default million-leaf universe (MemWords
// 2^26 per region), a run touching a small pool materializes leaves
// proportional to the pool, leaving the leaf universe overwhelmingly
// unmaterialized — and the gauges surface through Stats for the bench
// artifacts to record.
func TestDirectoryStateIsOTouched(t *testing.T) {
	st, _ := runComap(t, placement.AdaptiveHier)
	if st.MaterializedLeaves == 0 {
		t.Fatal("no materialized leaves reported")
	}
	if st.LeafUniverse < 1<<20 {
		t.Fatalf("leaf universe = %d, want >= 2^20 under the default MemWords", st.LeafUniverse)
	}
	if 1000*st.MaterializedLeaves >= st.LeafUniverse {
		t.Fatalf("materialized leaves %d not ≪ leaf universe %d", st.MaterializedLeaves, st.LeafUniverse)
	}
	if st.DirSplits == 0 {
		t.Fatal("no splits counted")
	}
}

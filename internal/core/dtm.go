package core

import (
	"fmt"

	"time"

	"repro/internal/cm"
	"repro/internal/dslock"
	"repro/internal/mem"
	"repro/internal/sim"
)

// dtmNode is one DTM service node: it owns the lock table for the slice of
// the address space that hashes to it and arbitrates conflicts through the
// configured contention manager (§3.2).
type dtmNode struct {
	s     *System
	idx   int
	core  int // physical core hosting the node
	table *dslock.Table
	excl  exclState // irrevocable-transaction exclusivity token
}

// serveLoop is the dedicated-deployment service loop: receive, handle,
// repeat. The proc is reclaimed by the kernel at shutdown.
func (n *dtmNode) serveLoop(p *sim.Proc) {
	for {
		m := p.Recv()
		n.handle(p, m)
	}
}

// handle dispatches one incoming message. It returns true if the message
// was a DTM request (the multitask await loop uses this to distinguish
// requests from transaction responses).
func (n *dtmNode) handle(p *sim.Proc, m sim.Msg) bool {
	switch r := m.Payload.(type) {
	case *reqReadLock:
		n.switchIn(p)
		n.handleReadLock(p, r)
	case *reqWriteLock:
		n.switchIn(p)
		n.handleWriteLock(p, r)
	case *relLocks:
		n.switchIn(p)
		n.handleRelease(p, r)
		n.tryGrantExclusive(p)
	case *earlyRelease:
		n.switchIn(p)
		n.handleEarlyRelease(p, r)
		n.tryGrantExclusive(p)
	case *reqExclusive:
		n.switchIn(p)
		n.handleExclusive(p, r)
	case *relExclusive:
		n.switchIn(p)
		n.handleExclusiveRelease(p, r)
	default:
		return false
	}
	return true
}

// switchIn charges the coroutine-switch cost of serving a request on a
// multitasked core (§3.1/Figure 2); dedicated service cores pay nothing.
func (n *dtmNode) switchIn(p *sim.Proc) {
	if n.s.cfg.Deployment == Multitask {
		p.Advance(n.s.compute(n.s.cfg.Costs.MultitaskSwitch))
	}
}

// handleReadLock implements Algorithm 1 (dsl_read_lock) plus the revocation
// protocol: on a RAW conflict the contention manager either aborts the
// requester or remotely aborts the writer and steals its lock.
func (n *dtmNode) handleReadLock(p *sim.Proc, r *reqReadLock) {
	c := n.s.cfg.Costs
	p.Advance(n.s.compute(c.SvcBase + c.SvcLock))
	if n.excl.blocked() {
		// An irrevocable transaction holds or awaits this node's
		// exclusivity token: reject so the table drains (§2 extension).
		n.respond(p, r.Reply, r.ReplyTo, &respLock{ReqID: r.ReqID, OK: false, Kind: cm.RAW})
		return
	}
	meta := r.Meta
	n.s.cfg.Policy.ArrivalPrio(&meta, p.Now())
	for {
		conf := n.table.ReadConflict(r.Addr, meta)
		if conf == nil {
			n.table.AddReader(r.Addr, meta)
			n.respond(p, r.Reply, r.ReplyTo, &respLock{ReqID: r.ReqID, OK: true})
			return
		}
		n.s.stats.Conflicts++
		if n.s.cfg.Policy.Resolve(meta, conf.Enemies, conf.Kind) == cm.AbortRequester ||
			!n.abortEnemies(p, r.Addr, conf.Enemies) {
			n.respond(p, r.Reply, r.ReplyTo, &respLock{ReqID: r.ReqID, OK: false, Kind: conf.Kind})
			return
		}
		// Enemies aborted and revoked; re-check (bounded: the conflict
		// classes can only shrink).
	}
}

// handleWriteLock implements Algorithm 2 (dsl_write_lock) for a batch of
// objects. Either every lock in the batch is acquired or none: on failure
// the batch's own acquisitions are rolled back before the conflict reply, so
// the requester never holds partial state it does not know about.
func (n *dtmNode) handleWriteLock(p *sim.Proc, r *reqWriteLock) {
	c := n.s.cfg.Costs
	p.Advance(n.s.compute(c.SvcBase + c.SvcLock*time.Duration(len(r.Addrs))))
	if n.excl.blocked() {
		n.respond(p, r.Reply, r.ReplyTo, &respLock{ReqID: r.ReqID, OK: false, Kind: cm.WAW})
		return
	}
	meta := r.Meta
	n.s.cfg.Policy.ArrivalPrio(&meta, p.Now())
	var acquired []mem.Addr
	for _, addr := range r.Addrs {
		for {
			conf := n.table.WriteConflict(addr, meta)
			if conf == nil {
				n.table.SetWriter(addr, meta)
				acquired = append(acquired, addr)
				break
			}
			n.s.stats.Conflicts++
			if n.s.cfg.Policy.Resolve(meta, conf.Enemies, conf.Kind) == cm.AbortRequester ||
				!n.abortEnemies(p, addr, conf.Enemies) {
				for _, a := range acquired {
					n.table.ReleaseWrite(a, meta.Core, meta.TxID)
				}
				n.respond(p, r.Reply, r.ReplyTo, &respLock{ReqID: r.ReqID, OK: false, Kind: conf.Kind})
				return
			}
		}
	}
	n.respond(p, r.Reply, r.ReplyTo, &respLock{ReqID: r.ReqID, OK: true})
}

// abortEnemies tries to remotely abort every enemy transaction via its
// status register (§4.1: "the status of such an aborting transaction is
// atomically switched from pending to aborted"). It returns false if any
// enemy has already entered its commit phase (TxCommitting) and is therefore
// no longer abortable; stale locks left by finished attempts are revoked.
func (n *dtmNode) abortEnemies(p *sim.Proc, addr mem.Addr, enemies []cm.Meta) bool {
	for _, e := range enemies {
		swapped, obsID, obsState := n.s.Regs.CASStatusRemoteObserve(
			p, n.core, e.Core, e.TxID, mem.TxPending, mem.TxAborted)
		if swapped {
			n.s.stats.Revocations++
			n.table.Revoke(addr, e.Core, e.TxID)
			continue
		}
		if obsID == e.TxID && obsState == mem.TxCommitting {
			// The enemy holds all its write locks and is persisting; it
			// cannot be aborted. Its commit is finite, so aborting the
			// requester preserves starvation-freedom.
			return false
		}
		// The lock is stale: the attempt already aborted or committed
		// (persist happens before release, so revoking is safe), or the
		// core has moved on to a newer attempt.
		n.table.Revoke(addr, e.Core, e.TxID)
	}
	return true
}

func (n *dtmNode) handleRelease(p *sim.Proc, r *relLocks) {
	c := n.s.cfg.Costs
	ops := len(r.ReadAddrs) + len(r.WriteAddrs)
	p.Advance(n.s.compute(c.SvcBase + c.SvcRelease*time.Duration(ops)))
	for _, a := range r.ReadAddrs {
		n.table.ReleaseRead(a, r.Core, r.TxID)
	}
	for _, a := range r.WriteAddrs {
		n.table.ReleaseWrite(a, r.Core, r.TxID)
	}
}

func (n *dtmNode) handleEarlyRelease(p *sim.Proc, r *earlyRelease) {
	c := n.s.cfg.Costs
	p.Advance(n.s.compute(c.SvcBase + c.SvcRelease*time.Duration(len(r.Addrs))))
	for _, a := range r.Addrs {
		n.table.ReleaseRead(a, r.Core, r.TxID)
	}
}

func (n *dtmNode) respond(p *sim.Proc, reply *sim.Proc, replyCore int, resp *respLock) {
	if reply == nil {
		panic(fmt.Sprintf("core: dtm%d response with no reply proc", n.core))
	}
	n.s.stats.Responses++
	n.s.send(p, n.core, reply, replyCore, resp, msgRespBytes)
}

package core

import (
	"fmt"

	"time"

	"repro/internal/cm"
	"repro/internal/dslock"
	"repro/internal/mem"
	"repro/internal/port"
	"repro/internal/sim"
	"repro/internal/trace"
)

// dtmNode is one DTM service node: it owns the lock table for the slice of
// the address space the placement directory maps to it and arbitrates
// conflicts through the configured contention manager (§3.2).
//
// All of a node's mutable state — lock table, exclusivity token, counter
// shard — is touched only from its serving execution context: the dedicated
// service port's goroutine, or the co-located application port under
// Multitask. That single-writer discipline is what lets the node run
// lock-free on the live backend.
type dtmNode struct {
	s     *System
	idx   int
	core  int // physical core hosting the node
	table *dslock.Table
	excl  exclState // irrevocable-transaction exclusivity token
	reqs  uint64    // requests served (Stats.NodeLoad)
	shard Stats     // this node's counters, merged at snapshot

	// rec is the node's flight-recorder lane (nil when Config.Trace is
	// unset). Touched only from the serving execution context, like every
	// other mutable field above.
	rec *trace.Recorder

	// Drained-stripe scan gate (maybeHandoffs): the directory freeze
	// generation covered by the last tryHandoffs scan, and whether the lock
	// table has shrunk since (release, early release, or revocation).
	handoffGen uint64
	shrunk     bool

	// arrival is the delivery instant of the message currently being
	// handled (set by handle). Under Config.ArrivalStamp the contention
	// managers timestamp contending requests with it instead of the
	// service instant p.Now() — all payloads of one coalesced envelope
	// then carry the same arrival time, so a burst's service order cannot
	// skew their relative priorities.
	arrival sim.Time

	// acqScratch accumulates the addresses a write-lock batch has acquired
	// so far, for rollback on a mid-batch conflict. Serving is single-
	// threaded per node, so one buffer serves every batch.
	acqScratch []mem.Addr

	// out is the node's coalescing outbox (Config.Coalesce): responses
	// stage into it during a dispatch and flush when the mailbox is
	// momentarily empty, so the grants/NACKs answering requests that
	// arrived together (e.g. an unpacked commit-scatter envelope) share
	// one wire message per requesting core. Unused when coalescing is off.
	out port.Outbox
}

// serveLoop is the dedicated-deployment service loop: receive, handle,
// repeat. Under Config.Coalesce one dispatch serves the whole contiguous
// burst queued from the SAME sender — exactly what an unpacked multi-payload
// envelope leaves in the mailbox — before flushing the staged responses, so
// the grants/NACKs answering one core's burst share a wire message. The
// window never extends across senders: responses to different cores cannot
// coalesce anyway, so delaying them behind another core's service time
// would cost latency for nothing, and a lone request is answered at the
// same instant the uncoalesced plane answers it. The port is reclaimed by
// the backend at shutdown.
func (n *dtmNode) serveLoop(p port.Port) {
	if !n.s.cfg.Coalesce {
		for {
			m := p.Recv()
			n.handle(p, m)
		}
	}
	for {
		m := p.Recv()
		n.dispatchBurst(p, m)
	}
}

// dispatchBurst serves m and the already-queued backlog in strict arrival
// order, flushing the staged responses every time the sender changes and
// once the mailbox is momentarily empty. Payloads of an unpacked envelope
// sit contiguously in the mailbox, so one core's burst is answered with one
// coalesced response envelope, while a response to anyone else never waits
// (a sender change flushes first) and service order stays exactly the
// uncoalesced plane's FIFO — the loop is Recv-handle unrolled with O(1)
// receives, no mailbox scans. Only used when coalescing is on.
func (n *dtmNode) dispatchBurst(p port.Port, m port.Msg) {
	for {
		from := m.From
		n.handle(p, m)
		next, ok := p.TryRecv()
		if !ok {
			break
		}
		if next.From != from {
			// The previous sender's burst is over; its responses leave now.
			n.flushOut(p)
		}
		m = next
	}
	n.flushOut(p)
}

// flushOut transmits the responses staged during the current dispatch, one
// wire message per requesting core. Every dispatch site flushes before its
// port can block on a receive, so a staged grant never deadlocks against
// the requester awaiting it.
func (n *dtmNode) flushOut(p port.Port) {
	n.out.Flush(func(e *port.OutEntry) {
		n.s.sendEntry(&n.shard, n.rec, p, n.core, e)
	})
}

// handle dispatches one incoming message. It returns true if the message
// was a DTM request (the multitask await loop uses this to distinguish
// requests from transaction responses).
func (n *dtmNode) handle(p port.Port, m port.Msg) bool {
	n.arrival = m.At
	// The node is each request's final toucher: handleX consumes the message
	// (responses carry no pointer back into it), so the arms recycle it.
	switch r := m.Payload.(type) {
	case *reqReadLock:
		n.switchIn(p)
		n.handleReadLock(p, r)
		putReadLockReq(r)
	case *reqWriteLock:
		n.switchIn(p)
		n.handleWriteLock(p, r)
		putWriteLockReq(r)
	case *relLocks:
		n.switchIn(p)
		n.handleRelease(p, r)
		n.tryGrantExclusive(p)
		putRelLocks(r)
	case *earlyRelease:
		n.switchIn(p)
		n.handleEarlyRelease(p, r)
		n.tryGrantExclusive(p)
		putEarlyRelease(r)
	case *reqExclusive:
		n.switchIn(p)
		n.handleExclusive(p, r)
	case *relExclusive:
		n.switchIn(p)
		n.handleExclusiveRelease(p, r)
	default:
		return false
	}
	n.reqs++
	return true
}

// stamp returns the instant the contention managers timestamp the request
// being handled with: the per-payload service instant by default, the
// payload's delivery instant under Config.ArrivalStamp (identical for
// every payload of one coalesced envelope).
func (n *dtmNode) stamp(p port.Port) sim.Time {
	if n.s.cfg.ArrivalStamp {
		return n.arrival
	}
	return p.Now()
}

// switchIn charges the coroutine-switch cost of serving a request on a
// multitasked core (§3.1/Figure 2); dedicated service cores pay nothing.
func (n *dtmNode) switchIn(p port.Port) {
	if n.s.cfg.Deployment == Multitask {
		p.Advance(n.s.compute(n.s.cfg.Costs.MultitaskSwitch))
	}
}

// placeOK validates a lock request's placement resolution against the
// directory. Pending handoffs whose stripes have drained are completed
// first, so a retried request observes the freshest ownership instead of
// spinning on a frozen-but-empty stripe.
//
// The wire epoch is the fast path: a request stamped with the current
// epoch was resolved against the current table — by a protocol-obeying
// sender, to the node the directory named — so if this node also has no
// handoff pending, none of the request's stripes can be frozen here (a
// frozen stripe keeps its owner marked pending until completion) and the
// per-key scan is skipped. That covers all traffic outside migration
// windows.
func (n *dtmNode) placeOK(epoch uint64, keys ...mem.Addr) bool {
	dir := n.s.dir
	n.maybeHandoffs()
	if epoch == dir.Epoch() && !dir.HasPending(n.idx) {
		return true
	}
	return dir.ValidFor(n.idx, keys...)
}

// maybeHandoffs runs the drained-stripe scan only when a frozen stripe
// could actually have drained since the last scan: the table shrank, or the
// directory froze another of this node's stripes (a fresh freeze may
// already be lock-free and would otherwise never hand off). Without the
// gate, every request arriving during a migration window would pay a full
// O(lock-table) scan.
func (n *dtmNode) maybeHandoffs() {
	dir := n.s.dir
	if !dir.HasPending(n.idx) {
		n.shrunk = false
		return
	}
	gen := dir.FreezeGen(n.idx)
	if !n.shrunk && gen == n.handoffGen {
		return
	}
	n.handoffGen = gen
	n.shrunk = false
	n.tryHandoffs()
}

// tryHandoffs completes every pending outgoing migration whose stripe holds
// no live lock in this node's table, in one pass over the table: ownership
// flips in the directory and subsequent resolutions return the new owner.
// Nothing is copied — a drained stripe has no lock state to move.
func (n *dtmNode) tryHandoffs() {
	dir := n.s.dir
	pending := dir.PendingFor(n.idx)
	held := make(map[int]bool, len(pending))
	n.table.ForEach(func(a mem.Addr) {
		held[dir.StripeOf(a)] = true
	})
	for _, stripe := range pending {
		if !held[stripe] {
			dir.CompleteHandoff(stripe)
		}
	}
}

// nackStale rejects a lock request whose placement resolution went stale.
// The NACK carries the directory epoch and — for single-key requests — the
// key's current owner, so the requester can chase a migrated stripe without
// a fresh resolution round; multi-key batches must re-partition against the
// directory anyway (migration may split them) and get no owner hint. The
// receiver's placeOK stays authoritative, so a hint gone stale in flight
// costs at worst one more NACK, inside the same hop bound.
func (n *dtmNode) nackStale(p port.Port, reply port.Port, replyTo int, reqID uint64, keys ...mem.Addr) {
	n.shard.StaleNacks++
	resp := getRespLock()
	resp.ReqID = reqID
	resp.Stale = true
	resp.NackEpoch = n.s.dir.Epoch()
	resp.NackOwner = -1
	if len(keys) == 1 {
		resp.NackOwner = n.s.dir.Owner(keys[0])
	}
	n.emit(p, trace.KLockStale, 0, trace.FlowID(replyTo, reqID), resp.NackEpoch, uint64(resp.NackOwner+1))
	n.respond(p, reply, replyTo, resp)
}

// handleReadLock implements Algorithm 1 (dsl_read_lock) plus the revocation
// protocol: on a RAW conflict the contention manager either aborts the
// requester or remotely aborts the writer and steals its lock.
func (n *dtmNode) handleReadLock(p port.Port, r *reqReadLock) {
	c := n.s.cfg.Costs
	p.Advance(n.s.compute(c.SvcBase + c.SvcLock))
	if !n.placeOK(r.Epoch, r.Addr) {
		n.nackStale(p, r.Reply, r.ReplyTo, r.ReqID, r.Addr)
		return
	}
	if n.excl.blocked() {
		// An irrevocable transaction holds or awaits this node's
		// exclusivity token: reject so the table drains (§2 extension).
		n.emit(p, trace.KLockNack, r.Meta.TxID, trace.FlowID(r.ReplyTo, r.ReqID), uint64(cm.RAW), 0)
		resp := getRespLock()
		resp.ReqID, resp.Kind = r.ReqID, cm.RAW
		n.respond(p, r.Reply, r.ReplyTo, resp)
		return
	}
	meta := r.Meta
	n.s.cfg.Policy.ArrivalPrio(&meta, n.stamp(p))
	for {
		conf := n.table.ReadConflict(r.Addr, meta)
		if conf == nil {
			n.table.AddReader(r.Addr, meta)
			n.emit(p, trace.KLockGrant, r.Meta.TxID, trace.FlowID(r.ReplyTo, r.ReqID), 1, 0)
			resp := getRespLock()
			resp.ReqID, resp.OK = r.ReqID, true
			n.respond(p, r.Reply, r.ReplyTo, resp)
			return
		}
		n.shard.Conflicts++
		if n.s.cfg.Policy.Resolve(meta, conf.Enemies, conf.Kind) == cm.AbortRequester ||
			!n.abortEnemies(p, r.Addr, conf.Enemies) {
			n.emit(p, trace.KLockNack, r.Meta.TxID, trace.FlowID(r.ReplyTo, r.ReqID), uint64(conf.Kind), 0)
			resp := getRespLock()
			resp.ReqID, resp.Kind = r.ReqID, conf.Kind
			n.respond(p, r.Reply, r.ReplyTo, resp)
			return
		}
		// Enemies aborted and revoked; re-check (bounded: the conflict
		// classes can only shrink).
	}
}

// handleWriteLock implements Algorithm 2 (dsl_write_lock) for a batch of
// objects. Either every lock in the batch is acquired or none: on failure
// the batch's own acquisitions are rolled back before the conflict reply, so
// the requester never holds partial state it does not know about.
func (n *dtmNode) handleWriteLock(p port.Port, r *reqWriteLock) {
	c := n.s.cfg.Costs
	p.Advance(n.s.compute(c.SvcBase + c.SvcLock*time.Duration(len(r.Addrs))))
	if !n.placeOK(r.Epoch, r.Addrs...) {
		n.nackStale(p, r.Reply, r.ReplyTo, r.ReqID, r.Addrs...)
		return
	}
	if n.excl.blocked() {
		n.emit(p, trace.KLockNack, r.Meta.TxID, trace.FlowID(r.ReplyTo, r.ReqID), uint64(cm.WAW), 0)
		resp := getRespLock()
		resp.ReqID, resp.Kind = r.ReqID, cm.WAW
		n.respond(p, r.Reply, r.ReplyTo, resp)
		return
	}
	meta := r.Meta
	n.s.cfg.Policy.ArrivalPrio(&meta, n.stamp(p))
	acquired := n.acqScratch[:0]
	defer func() { n.acqScratch = acquired[:0] }()
	for _, addr := range r.Addrs {
		for {
			conf := n.table.WriteConflict(addr, meta)
			if conf == nil {
				n.table.SetWriter(addr, meta)
				acquired = append(acquired, addr)
				break
			}
			n.shard.Conflicts++
			if n.s.cfg.Policy.Resolve(meta, conf.Enemies, conf.Kind) == cm.AbortRequester ||
				!n.abortEnemies(p, addr, conf.Enemies) {
				for _, a := range acquired {
					n.table.ReleaseWrite(a, meta.Core, meta.TxID)
				}
				n.emit(p, trace.KLockNack, r.Meta.TxID, trace.FlowID(r.ReplyTo, r.ReqID), uint64(conf.Kind), 0)
				resp := getRespLock()
				resp.ReqID, resp.Kind = r.ReqID, conf.Kind
				n.respond(p, r.Reply, r.ReplyTo, resp)
				return
			}
		}
	}
	n.emit(p, trace.KLockGrant, r.Meta.TxID, trace.FlowID(r.ReplyTo, r.ReqID), uint64(len(r.Addrs)), 0)
	resp := getRespLock()
	resp.ReqID, resp.OK = r.ReqID, true
	if n.s.tl2() {
		// Piggyback the granted stripes' current versions: the committer
		// revalidates its read∩write stripes against these without touching
		// memory again. Stable until the holder's own write-back — a marker
		// could only be set by another lock holder, which cannot exist.
		for _, a := range r.Addrs {
			resp.Vers = append(resp.Vers, n.s.Mem.VersionRaw(a))
		}
	}
	n.respond(p, r.Reply, r.ReplyTo, resp)
}

// abortEnemies tries to remotely abort every enemy transaction via its
// status register (§4.1: "the status of such an aborting transaction is
// atomically switched from pending to aborted"). It returns false if any
// enemy has already entered its commit phase (TxCommitting) and is therefore
// no longer abortable; stale locks left by finished attempts are revoked.
func (n *dtmNode) abortEnemies(p port.Port, addr mem.Addr, enemies []cm.Meta) bool {
	for _, e := range enemies {
		swapped, obsID, obsState := n.s.Regs.CASStatusRemoteObserve(
			p, n.core, e.Core, e.TxID, mem.TxPending, mem.TxAborted)
		if swapped {
			n.shard.Revocations++
			n.emit(p, trace.KRevoke, 0, uint64(e.Core), e.TxID, uint64(addr))
			n.table.Revoke(addr, e.Core, e.TxID)
			n.shrunk = true
			continue
		}
		if obsID == e.TxID && obsState == mem.TxCommitting {
			// The enemy holds all its write locks and is persisting; it
			// cannot be aborted. Its commit is finite, so aborting the
			// requester preserves starvation-freedom.
			return false
		}
		// The lock is stale: the attempt already aborted or committed
		// (persist happens before release, so revoking is safe), or the
		// core has moved on to a newer attempt.
		n.table.Revoke(addr, e.Core, e.TxID)
		n.shrunk = true
	}
	return true
}

func (n *dtmNode) handleRelease(p port.Port, r *relLocks) {
	c := n.s.cfg.Costs
	ops := len(r.ReadAddrs) + len(r.WriteAddrs)
	p.Advance(n.s.compute(c.SvcBase + c.SvcRelease*time.Duration(ops)))
	for _, a := range r.ReadAddrs {
		n.table.ReleaseRead(a, r.Core, r.TxID)
	}
	for _, a := range r.WriteAddrs {
		n.table.ReleaseWrite(a, r.Core, r.TxID)
	}
	// Releases are what drain a frozen stripe: try the handoff now so
	// ownership flips as early as possible.
	n.shrunk = true
	n.maybeHandoffs()
}

func (n *dtmNode) handleEarlyRelease(p port.Port, r *earlyRelease) {
	c := n.s.cfg.Costs
	p.Advance(n.s.compute(c.SvcBase + c.SvcRelease*time.Duration(len(r.Addrs))))
	for _, a := range r.Addrs {
		n.table.ReleaseRead(a, r.Core, r.TxID)
	}
	n.shrunk = true
	n.maybeHandoffs()
}

func (n *dtmNode) respond(p port.Port, reply port.Port, replyCore int, resp *respLock) {
	if reply == nil {
		panic(fmt.Sprintf("core: dtm%d response with no reply proc", n.core))
	}
	n.shard.Responses++
	if n.s.cfg.Coalesce {
		n.out.Stage(reply, replyCore, resp, respBytes(resp), p.Now())
		return
	}
	n.s.send(&n.shard, n.rec, p, n.core, reply, replyCore, resp, respBytes(resp))
}

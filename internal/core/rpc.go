package core

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/port"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The application-side RPC layer of the DTM protocol. Every lock request
// carries a correlation ID allocated here and echoed by the DTM node
// (messages.go), which lets one application core keep several requests to
// different DTM nodes outstanding at the same time. The commit path uses
// that to scatter-gather its per-node write-lock batches: all batches are
// sent in one burst and their responses awaited together, so a lazy commit
// touching k DTM nodes pays one awaited round-trip phase instead of k
// serial round trips (Config.SerialRPC restores the serial behavior for the
// ablation).
//
// Determinism: requests are sent in a deterministic order (first-use order
// of the write set), responses are matched by ID and processed in send
// order regardless of arrival order, and the await loop's selective receive
// scans the mailbox in delivery order — so identical seeds still produce
// identical event schedules and audited histories.

// wireMsg is any protocol message with a modeled on-wire size.
type wireMsg interface{ bytes() int }

// deadlineRecver is the optional port capability behind per-RPC deadlines:
// a selective receive that gives up after d. Only the net backend's ports
// provide it — sim and live transports never lose messages, so their
// awaits may block indefinitely.
type deadlineRecver interface {
	RecvMatchTimeout(pred func(port.Msg) bool, d time.Duration) (port.Msg, bool)
}

// initRPC prepares the per-core RPC state. The selective-receive predicate
// is built once and reads rt.awaitIDs, so the hot single-response path
// (every read lock) performs no per-call heap allocation.
func (rt *Runtime) initRPC() {
	if rt.s.cfg.RPCDeadline > 0 {
		if dr, ok := rt.proc.(deadlineRecver); ok {
			rt.deadlineRecv = dr
		}
	}
	rt.awaitPred = func(m port.Msg) bool {
		if resp, ok := m.Payload.(*respLock); ok {
			for _, id := range rt.awaitIDs {
				if id == resp.ReqID {
					return true
				}
			}
			return false
		}
		if rt.node == nil {
			return false
		}
		_, ok := m.Payload.(dtmRequest)
		return ok
	}
}

// nextReqID allocates a fresh correlation ID for an outbound lock request.
// IDs are per-core and start at 1, so (core, ReqID) is globally unique and
// 0 can serve as the consumed-slot sentinel in awaitIDs.
func (rt *Runtime) nextReqID() uint64 {
	rt.reqID++
	return rt.reqID
}

// sendToNode transmits one protocol message to DTM node ni, charging the
// platform's message latency. It does not block.
func (rt *Runtime) sendToNode(ni int, msg wireMsg) {
	rt.s.send(&rt.shard, rt.rec, rt.proc, rt.core, rt.s.nodePorts[ni], rt.s.nodes[ni].core, msg, msg.bytes())
}

// burstToNode queues one protocol message of a burst for DTM node ni:
// staged in the core's outbox under Config.Coalesce (payloads sharing a
// destination node then share a wire message at the next flushOut), sent
// directly otherwise. Burst sites call it unconditionally and follow with
// flushOut, which is a no-op on the uncoalesced plane.
func (rt *Runtime) burstToNode(ni int, msg wireMsg) {
	if !rt.s.cfg.Coalesce {
		rt.sendToNode(ni, msg)
		return
	}
	rt.out.Stage(rt.s.nodePorts[ni], rt.s.nodes[ni].core, msg, msg.bytes(), rt.proc.Now())
}

// flushOut transmits every burst staged in the core's outbox, one wire
// message per destination node. Every staging site that a response depends
// on flushes before the core can block on a receive, so no staged message a
// peer is waiting for ever waits on mailbox traffic.
func (rt *Runtime) flushOut() {
	rt.out.Flush(func(e *port.OutEntry) {
		rt.s.sendEntry(&rt.shard, rt.rec, rt.proc, rt.core, e)
	})
}

// flushOutSoft ends a fire-and-forget burst (releases, early releases).
// Without adaptive flushing it is a plain flushOut. With it, only the
// entries that reached the platform's bytes-per-fixed-cost sweet spot
// (Config.FlushBytes) or aged past Config.FlushAge leave now; the rest stay
// staged so the NEXT burst to the same node — typically the following
// transaction's commit scatter — shares their envelope and its fixed wire
// cost. Deferring a release is safe: a lock whose release is staged belongs
// to a finished attempt, so any node that needs it revoked can do so
// unilaterally through the requester's status register (abortEnemies), and
// the age bound keeps the deferral from outliving the platform's fixed-cost
// horizon even on an idle core (every subsequent soft flush re-checks it).
func (rt *Runtime) flushOutSoft() {
	if !rt.s.cfg.AdaptiveFlush {
		rt.flushOut()
		return
	}
	now := rt.proc.Now()
	minBytes := rt.s.cfg.FlushBytes
	maxAge := sim.Time(rt.s.cfg.FlushAge)
	rt.out.FlushMatching(func(e *port.OutEntry) bool {
		return e.Bytes >= minBytes || now-e.First >= maxAge
	}, func(e *port.OutEntry) {
		rt.s.sendEntry(&rt.shard, rt.rec, rt.proc, rt.core, e)
	})
}

// maxPlacementHops bounds how many times one logical lock request chases
// migrating ownership (stale-epoch NACK → re-resolve → resend) before the
// attempt aborts. The abort releases the attempt's locks, which is exactly
// what lets a frozen stripe the requester itself holds locks on drain, so
// the bound doubles as the protocol's deadlock breaker.
const maxPlacementHops = 8

// placementAbort aborts the attempt after exhausting the stale-NACK hop
// budget.
func (rt *Runtime) placementAbort() {
	rt.shard.PlacementAborts++
	panic(abortSignal{reason: trace.ReasonStalePlacement})
}

// rpcReadLock sends a read-lock request and waits for the response,
// retrying when a migration NACKs the request. A NACK carrying an owner
// hint (nackStale) steers the retry directly — the epoch and owner the
// NACKing node saw — saving the re-resolution against the directory; a
// hintless NACK re-resolves as before. The access is recorded once per
// logical acquisition — NACK-chasing resends must not inflate the stripe
// heat the adaptive policy reads.
func (rt *Runtime) rpcReadLock(tx *Tx, key mem.Addr) *respLock {
	rt.s.dir.Record(rt.cluster, key)
	node, epoch := rt.s.nodeFor(key), rt.s.dir.Epoch()
	for hop := 0; ; hop++ {
		id := rt.nextReqID()
		req := getReadLockReq()
		req.ReqID = id
		req.Epoch = epoch
		req.Addr = key
		req.Meta = rt.local.RequestMeta(tx.id, rt.proc.Now())
		req.Reply = rt.proc
		req.ReplyTo = rt.core
		rt.shard.ReadLockReqs++
		rt.emit(trace.KLockReq, tx.id, trace.FlowID(rt.core, id), uint64(key), 1)
		rt.sendToNode(node, req)
		resp := rt.awaitOne(id)
		if resp == nil {
			// Deadline expired: the request or its response is lost. The
			// lock may nonetheless have been granted, so treat it as held
			// and let the abort's release burst cover it.
			rt.timeoutAbort(tx, []mem.Addr{key}, nil)
		}
		if !resp.Stale {
			return resp
		}
		hintOwner, hintEpoch := resp.NackOwner, resp.NackEpoch
		putRespLock(resp)
		if hop >= maxPlacementHops {
			rt.placementAbort()
		}
		if hintOwner >= 0 {
			node, epoch = hintOwner, hintEpoch
			rt.shard.StaleNackHints++
		} else {
			node, epoch = rt.s.nodeFor(key), rt.s.dir.Epoch()
		}
	}
}

// sendWriteLock sends one write-lock batch to node — all keys must map to
// node under the resolution the batch was grouped with — and returns its
// correlation ID without waiting. The request carries the directory epoch
// captured when the batch was grouped, NOT the epoch at send time: a serial
// commit awaits a full round trip between sends, so a migration can
// complete after grouping, and a send-time stamp would let a stale batch
// pass the receiver's current-epoch fast path at a node that no longer owns
// all of its keys. The grouping-time stamp forces the authoritative per-key
// ValidFor check whenever the directory changed since the batch was formed.
// The caller has already recorded the accesses (once per logical
// acquisition, not per resend).
func (rt *Runtime) sendWriteLock(tx *Tx, node int, epoch uint64, keys []mem.Addr) uint64 {
	req := rt.writeLockReq(tx, epoch, keys)
	// Capture the correlation ID before the handoff: once sent, the node
	// may consume and recycle the pooled request at any moment.
	id := req.ReqID
	rt.sendToNode(node, req)
	return id
}

// writeLockReq builds one write-lock batch request with a fresh correlation
// ID, counting it in the shard (the request will be transmitted exactly
// once, sent directly or staged for a coalesced burst).
func (rt *Runtime) writeLockReq(tx *Tx, epoch uint64, keys []mem.Addr) *reqWriteLock {
	req := getWriteLockReq()
	req.ReqID = rt.nextReqID()
	req.Epoch = epoch
	// Copy the keys into the request's pool-owned storage: the caller's
	// batch slice is per-attempt scratch that will be reused while this
	// request may still be in flight.
	req.Addrs = append(req.Addrs[:0], keys...)
	req.Meta = rt.local.RequestMeta(tx.id, rt.proc.Now())
	req.Reply = rt.proc
	req.ReplyTo = rt.core
	rt.shard.WriteLockReqs++
	rt.emit(trace.KLockReq, tx.id, trace.FlowID(rt.core, req.ReqID), uint64(keys[0]), uint64(len(keys)))
	return req
}

// rpcWriteLock sends one batched write-lock request and waits for its
// response (a single round trip; the serial-commit path). The caller
// handles Stale responses — a batch grouped under a stale resolution must
// be re-partitioned, not just resent.
func (rt *Runtime) rpcWriteLock(tx *Tx, node int, epoch uint64, keys []mem.Addr) *respLock {
	return rt.awaitOne(rt.sendWriteLock(tx, node, epoch, keys))
}

// rpcWriteLockEager acquires the write lock of a single key (eager mode),
// retrying when a migration NACKs the request; like rpcReadLock, a NACK's
// owner hint steers the retry without a fresh directory resolution.
func (rt *Runtime) rpcWriteLockEager(tx *Tx, key mem.Addr) *respLock {
	rt.s.dir.Record(rt.cluster, key)
	node, epoch := rt.s.nodeFor(key), rt.s.dir.Epoch()
	for hop := 0; ; hop++ {
		rt.eagerKey[0] = key
		resp := rt.rpcWriteLock(tx, node, epoch, rt.eagerKey[:])
		if resp == nil {
			rt.timeoutAbort(tx, nil, rt.eagerKey[:])
		}
		if !resp.Stale {
			return resp
		}
		hintOwner, hintEpoch := resp.NackOwner, resp.NackEpoch
		putRespLock(resp)
		if hop >= maxPlacementHops {
			rt.placementAbort()
		}
		if hintOwner >= 0 {
			node, epoch = hintOwner, hintEpoch
			rt.shard.StaleNackHints++
		} else {
			node, epoch = rt.s.nodeFor(key), rt.s.dir.Epoch()
		}
	}
}

// scatterWriteLocks sends every write-lock batch in one burst and gathers
// all responses, stamping every request with the batches' shared grouping
// epoch. Results are indexed by batch, in send order. Under Config.Coalesce
// the burst goes through the outbox, so batches addressed to the same node
// (the NoBatching ablation splits per object) share one wire message; the
// flush marks the end of the scatter burst, before the gather phase blocks.
func (rt *Runtime) scatterWriteLocks(tx *Tx, epoch uint64, batches []nodeGroup) []*respLock {
	scStart := rt.proc.Now()
	rt.emit(trace.KPhaseBegin, tx.id, uint64(trace.PhaseScatter), 0, 0)
	ids := rt.scatterIDs[:0]
	for _, b := range batches {
		req := rt.writeLockReq(tx, epoch, b.addrs)
		// Record the correlation ID before the handoff: once staged or
		// sent, the node may consume and recycle the pooled request.
		ids = append(ids, req.ReqID)
		rt.burstToNode(b.node, req)
	}
	rt.scatterIDs = ids
	rt.flushOut()
	rt.emit(trace.KPhaseEnd, tx.id, uint64(trace.PhaseScatter), 0, 0)
	rt.scatterLat.Observe(rt.proc.Now() - scStart)
	gaStart := rt.proc.Now()
	rt.emit(trace.KPhaseBegin, tx.id, uint64(trace.PhaseGather), 0, 0)
	out := rt.scatterResps[:0]
	for range ids {
		out = append(out, nil)
	}
	rt.scatterResps = out
	rt.awaitIDs = append(rt.awaitIDs[:0], ids...)
	for remaining := len(ids); remaining > 0; {
		resp, timedOut := rt.recvRPC()
		if timedOut {
			rt.awaitIDs = rt.awaitIDs[:0]
			// Any batch — gathered or still in flight — may hold granted
			// locks whose responses we will never process; hand them all to
			// the abort's release burst (releasing an unheld lock is a no-op
			// at the node).
			var all []mem.Addr
			for _, b := range batches {
				all = append(all, b.addrs...)
			}
			rt.timeoutAbort(tx, nil, all)
		}
		if resp == nil {
			continue
		}
		for i, id := range ids {
			if id == resp.ReqID && out[i] == nil {
				out[i] = resp
				rt.awaitIDs[i] = 0 // consumed: a duplicate would not match
				remaining--
				break
			}
		}
	}
	rt.awaitIDs = rt.awaitIDs[:0]
	rt.emit(trace.KPhaseEnd, tx.id, uint64(trace.PhaseGather), 0, 0)
	rt.gatherLat.Observe(rt.proc.Now() - gaStart)
	// out is per-runtime scratch (rt.scatterResps): the caller must consume
	// every response before the next scatter reuses it.
	return out
}

// awaitOne blocks until the response with correlation ID id arrives — the
// allocation-free fast path for the one-outstanding-request case (every
// read lock, eager write locks, serial commits). It returns nil when the
// per-RPC deadline expires (net backend only); the caller must then abort
// via timeoutAbort with its awaited keys.
func (rt *Runtime) awaitOne(id uint64) *respLock {
	rt.awaitIDs = append(rt.awaitIDs[:0], id)
	for {
		resp, timedOut := rt.recvRPC()
		if timedOut {
			rt.awaitIDs = rt.awaitIDs[:0]
			return nil
		}
		if resp != nil {
			rt.awaitIDs = rt.awaitIDs[:0]
			return resp
		}
	}
}

// recvRPC takes the next message the RPC layer can currently process: an
// awaited lock response (returned) or, on a multitasked core, a request for
// the co-located DTM node (served inline, nil returned). Serving while
// awaiting is what keeps two cores gathering locks from each other's nodes
// from deadlocking. Messages that are neither — e.g. barrier traffic —
// stay queued for their own receive loops. On the net backend the wait is
// bounded by Config.RPCDeadline; timedOut reports an expiry (the awaited
// response may be lost to a broken connection and never arrive).
func (rt *Runtime) recvRPC() (resp *respLock, timedOut bool) {
	var m port.Msg
	if rt.deadlineRecv != nil {
		var ok bool
		m, ok = rt.deadlineRecv.RecvMatchTimeout(rt.awaitPred, rt.s.cfg.RPCDeadline)
		if !ok {
			return nil, true
		}
	} else {
		m = rt.proc.RecvMatch(rt.awaitPred)
	}
	if resp, ok := m.Payload.(*respLock); ok {
		return resp, false
	}
	if !rt.node.handle(rt.proc, m) {
		panic(fmt.Sprintf("core: app%d matched unservable message %T", rt.core, m.Payload))
	}
	// One-request dispatch: the next loop turn blocks in RecvMatch, so the
	// co-located node's staged response must leave now.
	rt.node.flushOut(rt.proc)
	return nil, false
}

// timeoutAbort aborts the attempt after an awaited lock RPC exceeded its
// deadline. The awaited locks' grant state is unknowable — the request or
// the response may be the lost frame — so the keys are conservatively
// recorded as held before the abort unwinds: abortCleanup's release burst
// then frees whatever the nodes actually granted, and a release for a lock
// never granted is a no-op. Leaking the lock instead would block its object
// until the run's drain.
func (rt *Runtime) timeoutAbort(tx *Tx, readKeys, writeKeys []mem.Addr) {
	rt.shard.RPCTimeouts++
	for _, k := range readKeys {
		if _, held := tx.reads[k]; !held {
			tx.reads[k] = nil
			tx.readOrder = append(tx.readOrder, k)
		}
	}
	tx.wlocked = append(tx.wlocked, writeKeys...)
	panic(abortSignal{reason: trace.ReasonTimeout})
}

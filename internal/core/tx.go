package core

import (
	"fmt"
	"time"

	"repro/internal/cm"
	"repro/internal/hist"
	"repro/internal/mem"
	"repro/internal/port"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Runtime is the transactional runtime of one application core: the APP
// service of Figure 1. Application workers receive it from SpawnWorkers and
// execute transactions with Run/RunKind. All of a Runtime's mutable state —
// including its counter shard and histograms — belongs to its own execution
// port, so the live backend's concurrent workers never share a write.
type Runtime struct {
	s       *System
	core    int // physical core ID
	appIdx  int
	cluster int // locality cluster of core (noc.Platform.ClusterOf)
	proc    port.Port
	local   *cm.Local
	node    *dtmNode // co-located DTM node (Multitask only)

	nextTxID   uint64
	stats      CoreStats
	shard      Stats          // this core's counters, merged at snapshot
	life       hist.Histogram // committed-transaction lifespans
	commitLat  hist.Histogram // commit-phase latencies
	scatterLat hist.Histogram // commit write-lock scatter-burst latencies
	gatherLat  hist.Histogram // commit response-gather latencies
	revalLat   hist.Histogram // TL2 read-set revalidation latencies

	// rec is the core's flight-recorder lane (nil when Config.Trace is
	// unset; every emit is then a single nil comparison).
	rec *trace.Recorder

	// RPC-layer state (rpc.go): the correlation-ID generator, the IDs
	// currently awaited, the reusable selective-receive predicate, and the
	// net backend's bounded-receive capability (nil elsewhere; awaits then
	// block indefinitely, which lossless transports permit).
	reqID        uint64
	awaitIDs     []uint64
	awaitPred    func(port.Msg) bool
	deadlineRecv deadlineRecver

	// out is the core's coalescing outbox (Config.Coalesce): burst sends —
	// commit scatter, release bursts — stage into it and flush at the end
	// of the burst, so payloads sharing a destination DTM node share one
	// wire message. Unused (always empty) when coalescing is off.
	out port.Outbox

	// rvBuf is the reusable TL2 clock-snapshot buffer (tl2.go); only one
	// attempt is ever live per runtime, so attempts may share it.
	rvBuf []uint64

	// Hot-path scratch, all single-consumer state of this runtime's port:
	// one attempt is ever live per runtime, so the commit and read paths
	// reuse these across attempts and allocate nothing in steady state.
	// tx is the reusable attempt (reset per attempt); words is the arena
	// backing every tx-internal word copy (read/write-set values), reset at
	// attempt start — values handed to user code or the auditor are always
	// fresh clones (cloneWords), never arena slices, so callers may retain
	// them across attempts.
	txScratch    *Tx
	words        []uint64
	eagerKey     [1]mem.Addr       // single-key batch for eager write locks
	scatterIDs   []uint64          // scatter-gather correlation IDs
	scatterResps []*respLock       // scatter-gather response slots
	relGroups    []relGroup        // releaseAll per-node grouping
	relIdx       map[int]int       // releaseAll node → relGroups index
	ngGroups     []nodeGroup       // groupByNode result slots
	ngIdx        map[int]int       // groupByNode node → ngGroups index
	wkSeen       map[mem.Addr]bool // writeKeys dedup set
	wkKeys       []mem.Addr        // writeKeys result
	batchScratch []nodeGroup       // commitBatches result slots
	wbAddrs      []mem.Addr        // commit write-back address list
	wbVals       []uint64          // commit write-back value list
	erKeys       []mem.Addr        // EarlyRelease key list
	rvInWrite    map[mem.Addr]bool // revalidateTL2 write-stripe set
	rvSeen       map[mem.Addr]bool // revalidateTL2 visited-stripe set

	barrierEpoch uint64
	barrierSeen  map[uint64]int
}

// wordBuf carves an n-word slice out of the runtime's word arena. The arena
// is reset at every attempt start, so the slices only back attempt-internal
// state (tx.reads/tx.writes values, window entries); anything with a longer
// lifetime must be cloned (cloneWords). When the arena is full a larger one
// replaces it — outstanding slices keep the old array alive until the
// attempt ends, so they stay valid.
func (rt *Runtime) wordBuf(n int) []uint64 {
	if len(rt.words)+n > cap(rt.words) {
		grow := 2 * cap(rt.words)
		if grow < n {
			grow = n
		}
		if grow < 64 {
			grow = 64
		}
		rt.words = make([]uint64, 0, grow)
	}
	l := len(rt.words)
	rt.words = rt.words[:l+n]
	return rt.words[l : l+n : l+n]
}

func (rt *Runtime) initLocal() {
	rt.local = cm.NewLocal(rt.s.cfg.Policy, rt.core, rt.proc.Rand())
	rt.barrierSeen = make(map[uint64]int)
	rt.initRPC()
}

// Core returns the physical core ID.
func (rt *Runtime) Core() int { return rt.core }

// AppIndex returns the index of this core within the application partition.
func (rt *Runtime) AppIndex() int { return rt.appIdx }

// Port returns the core's execution port (clock, RNG, mailbox).
func (rt *Runtime) Port() Port { return rt.proc }

// Rand returns the core's deterministic random source.
func (rt *Runtime) Rand() *sim.Rand { return rt.proc.Rand() }

// Mem returns the shared memory (for direct, weakly-atomic accesses; see
// §2 — transactional data must not be accessed non-transactionally while
// transactions may touch it).
func (rt *Runtime) Mem() *mem.Memory { return rt.s.Mem }

// Stopped reports whether the system's virtual deadline has passed; worker
// loops use it as their exit condition.
func (rt *Runtime) Stopped() bool { return rt.proc.Now() >= rt.s.deadline }

// Compute charges d of nominal local computation (scaled to the platform).
func (rt *Runtime) Compute(d time.Duration) { rt.proc.Advance(rt.s.compute(d)) }

// AddOps records n completed application-level operations.
func (rt *Runtime) AddOps(n int) {
	rt.stats.Ops += uint64(n)
	rt.s.snap.AddOps(uint64(n))
}

// abortSignal is panicked out of transactional wrappers to unwind an
// aborted attempt; Runtime.attempt recovers it. It never escapes the
// package. Every panic site sets reason explicitly — the taxonomy
// (trace.Reason) partitions all aborts, and abortCleanup counts it into
// Stats.AbortReasons.
type abortSignal struct {
	kind    cm.Kind
	hasKind bool // false for elastic-read validation aborts and remote aborts
	reason  trace.Reason
}

// Tx is one transaction attempt. All accesses are at object granularity: an
// object is n contiguous words identified by its base address, mirroring the
// paper's txread(obj)/txwrite(obj) wrappers (Algorithms 3-4).
type Tx struct {
	rt   *Runtime
	id   uint64
	kind TxKind

	reads     map[mem.Addr][]uint64
	readOrder []mem.Addr
	writes    map[mem.Addr][]uint64
	writeOrd  []mem.Addr
	wlocked   []mem.Addr // lock keys of write locks already held (eager mode)

	window [2]winEntry // elastic-read validation window (last two reads)
	nwin   int

	// Deferred side effects (atomic.go): onCommit runs after this attempt
	// commits, onAbort after it aborts. Each attempt gets a fresh Tx, so
	// hooks registered by an aborted attempt never leak into the retry.
	onCommit []func()
	onAbort  []func()

	// lastGrant is the completion time of the latest successful read,
	// used by the auditor: a read-only transaction serializes at its last
	// read, the only instant all of its locks are provably held.
	lastGrant sim.Time

	// TL2 state (tl2.go), untouched under the visible protocol: the clock
	// snapshot and its instant, the version each read stripe was first
	// observed at, and the versions piggybacked on write-lock grants.
	rv        []uint64
	snapAt    sim.Time
	readVers  map[mem.Addr]uint64
	grantVers map[mem.Addr]uint64
}

type winEntry struct {
	base mem.Addr
	vals []uint64
}

// reset prepares the runtime's reusable Tx for a fresh attempt: maps are
// cleared in place and slice capacities retained, while slots referencing
// heap objects (hooks, window values) are zeroed so nothing registered by a
// previous attempt stays reachable — the semantics of a brand-new Tx, minus
// the allocations.
func (tx *Tx) reset(id uint64, kind TxKind) {
	tx.id = id
	tx.kind = kind
	clear(tx.reads)
	tx.readOrder = tx.readOrder[:0]
	clear(tx.writes)
	tx.writeOrd = tx.writeOrd[:0]
	tx.wlocked = tx.wlocked[:0]
	tx.window[0] = winEntry{}
	tx.window[1] = winEntry{}
	tx.nwin = 0
	for i := range tx.onCommit {
		tx.onCommit[i] = nil
	}
	tx.onCommit = tx.onCommit[:0]
	for i := range tx.onAbort {
		tx.onAbort[i] = nil
	}
	tx.onAbort = tx.onAbort[:0]
	tx.lastGrant = 0
	tx.rv = nil
	tx.snapAt = 0
	clear(tx.readVers)
	clear(tx.grantVers)
}

// ID returns the attempt identifier.
func (tx *Tx) ID() uint64 { return tx.id }

// Kind returns the transactional model of this transaction.
func (tx *Tx) Kind() TxKind { return tx.kind }

// ReadSetSize returns the number of objects currently read-locked.
func (tx *Tx) ReadSetSize() int { return len(tx.reads) }

// WriteSetSize returns the number of objects in the write buffer.
func (tx *Tx) WriteSetSize() int { return len(tx.writes) }

// Run executes fn as a Normal transaction, retrying on aborts until it
// commits. It returns the number of attempts the transaction used: 1 when
// the first attempt committed, 1 + the number of aborted attempts
// otherwise. Error-based control flow (user aborts, explicit retry) needs
// Atomic instead; a Tx.Abort inside a Run body panics.
func (rt *Runtime) Run(fn func(*Tx)) int { return rt.RunKind(Normal, fn) }

// RunKind executes fn as a transaction of the given kind, retrying until
// commit, and returns the attempt count exactly like Run. Inside fn,
// transactional reads and writes may abort the attempt by unwinding the
// stack; fn must therefore be side-effect free apart from Tx accesses and
// local computation (§2: no side effects in transactions) — deferred side
// effects go through Tx.OnCommit/Tx.OnAbort.
func (rt *Runtime) RunKind(kind TxKind, fn func(*Tx)) int {
	attempts, err := rt.runLoop(kind, func(tx *Tx) error {
		fn(tx)
		return nil
	})
	if err != nil {
		panic(fmt.Sprintf("core: Tx.Abort(%v) inside Run/RunKind; use Atomic for error-based control flow", err))
	}
	return attempts
}

// runLoop is the shared retry loop behind Run, RunKind, and the Atomic
// family. It executes fn as one transaction of the given kind, retrying
// conflict aborts (and ErrRetry) until the transaction commits or fn
// withdraws it with a terminal error. The word-level Run path wraps fn with
// a nil-returning adapter and performs the exact same sequence of virtual-
// time advances and random draws it always has.
func (rt *Runtime) runLoop(kind TxKind, fn func(*Tx) error) (attempts int, userErr error) {
	rt.local.StartLifespan(rt.proc.Now())
	var lifeStart sim.Time
	for {
		attempts++
		rt.drainRequests()
		rt.nextTxID++
		tx := rt.txScratch
		if tx == nil {
			tx = &Tx{
				rt:     rt,
				reads:  make(map[mem.Addr][]uint64),
				writes: make(map[mem.Addr][]uint64),
			}
			if rt.s.tl2() {
				tx.readVers = make(map[mem.Addr]uint64)
			}
			rt.txScratch = tx
		}
		tx.reset(rt.nextTxID, kind)
		rt.words = rt.words[:0]
		rt.s.Regs.SetStatusLocal(rt.core, tx.id, mem.TxPending)
		if attempts == 1 {
			lifeStart = rt.proc.Now()
		}
		// The begin cost carries a small random jitter (<= 256 ns nominal
		// on a first attempt). Besides being physically plausible, it breaks
		// the deterministic symmetric livelocks that policies without
		// randomization or priorities (NoCM) would otherwise sustain forever
		// in a perfectly deterministic simulator. The bound doubles with
		// each consecutive abort of the lifespan (capped at ~16 µs): a
		// scatter-gather commit sends every batch before observing any
		// enemy, so two overlapping transactions can kill each other in
		// lockstep, and a fixed 256 ns bound is too narrow to break that
		// phase lock within a useful number of retries.
		bound := 257 << uint(min(attempts-1, 6))
		jitter := time.Duration(rt.proc.Rand().Intn(bound)) * time.Nanosecond
		rt.proc.Advance(rt.s.compute(rt.s.cfg.Costs.TxBegin + jitter))
		if rt.s.tl2() {
			// Each attempt gets a fresh clock snapshot: retrying with the
			// aborted attempt's snapshot would doom every read of a stripe
			// committed since.
			rt.snapshotTL2(tx)
		}
		rt.emit(trace.KAttemptStart, tx.id, uint64(attempts), 0, 0)
		switch outcome, err := rt.attempt(tx, fn); outcome {
		case attemptCommitted:
			rt.local.OnCommit(rt.proc.Now())
			rt.stats.Commits++
			if kind == ReadOnly {
				rt.shard.ReadOnlyCommits++
			}
			// Lifespan = start of the first attempt to commit, across
			// aborts — the paper's §4.1 definition.
			rt.life.Observe(rt.proc.Now() - lifeStart)
			rt.emit(trace.KCommit, tx.id, uint64(attempts), 0, 0)
			rt.s.snap.AddCommit()
			tx.runHooks(tx.onCommit)
			return attempts, nil
		case attemptUserAborted:
			return attempts, err
		}
		if backoff := rt.local.OnAbort(); backoff > 0 {
			rt.proc.Advance(rt.s.compute(backoff))
		}
		// Live-backend drain cap, mirroring the sim backend's hard stop at
		// 6x the deadline: a transaction still aborting that far past the
		// window (e.g. the paper's NoCM livelock) would otherwise spin its
		// goroutine forever, because a retry loop never observes Stopped.
		// The check sits at the retry boundary, where the attempt has
		// already released every lock, so killing it leaves no state
		// behind; the worker unwinds and the drain completes.
		if rt.s.liveDrainExpired() {
			panic(liveDrainKill{})
		}
		rt.local.StartAttempt(rt.proc.Now())
	}
}

// liveDrainKill unwinds a worker whose transaction cannot finish within the
// live backend's drain window; the SpawnWorkers wrapper recovers it. It
// never escapes the package.
type liveDrainKill struct{}

// attemptOutcome classifies one transaction attempt.
type attemptOutcome uint8

const (
	attemptCommitted   attemptOutcome = iota // committed; hooks pending
	attemptAborted                           // conflict abort or ErrRetry: go around the loop
	attemptUserAborted                       // withdrawn by the user: return the error, no retry
)

func (rt *Runtime) attempt(tx *Tx, fn func(*Tx) error) (outcome attemptOutcome, userErr error) {
	defer func() {
		if r := recover(); r != nil {
			switch sig := r.(type) {
			case abortSignal:
				rt.abortCleanup(tx, sig)
				outcome, userErr = attemptAborted, nil
			case userAbortSignal:
				outcome, userErr = rt.finishUserAbort(tx, sig.err)
			default:
				panic(r)
			}
		}
	}()
	if err := fn(tx); err != nil {
		return rt.finishUserAbort(tx, err)
	}
	tx.commit()
	return attemptCommitted, nil
}

// checkAborted aborts the attempt if a contention manager remotely switched
// this transaction's status register to aborted. A core checks its own
// register locally, which is free.
func (tx *Tx) checkAborted() {
	if _, st := tx.rt.s.Regs.LoadStatusLocal(tx.rt.core); st == mem.TxAborted {
		panic(abortSignal{reason: trace.ReasonRevoked})
	}
}

// Read returns the single word object at addr.
func (tx *Tx) Read(addr mem.Addr) uint64 { return tx.readNView(addr, 1)[0] }

// ReadN returns the n-word object at base. Under Normal and ElasticEarly
// kinds this is Algorithm 4: the read lock is acquired from the responsible
// DTM node before the shared memory is read (visible reads, early
// acquisition). Under ElasticRead no lock is taken; the previous reads in
// the validation window are re-read instead. The returned slice is a copy
// the caller owns.
func (tx *Tx) ReadN(base mem.Addr, n int) []uint64 {
	return cloneWords(tx.readNView(base, n))
}

// readNView is ReadN minus the defensive copy: the returned slice aliases
// transaction-owned storage (write buffer, read set, validation window or
// the per-attempt word arena) and is valid only until the next operation on
// the transaction. The typed accessors decode from it immediately, which
// keeps the codec hot path allocation-free; everything user-facing goes
// through ReadN.
func (tx *Tx) readNView(base mem.Addr, n int) []uint64 {
	rt := tx.rt
	rt.proc.Advance(rt.s.compute(rt.s.cfg.Costs.Wrapper))
	if v, ok := tx.writes[base]; ok {
		return v
	}
	if v, ok := tx.reads[base]; ok {
		return v
	}
	if rt.s.tl2() {
		// Every kind reads invisibly under TL2: the elastic relaxations
		// exist to soften visible read locking, which TL2 never performs.
		return tx.readTL2(base, n)
	}
	if tx.kind == ElasticRead {
		return tx.elasticRead(base, n)
	}
	tx.checkAborted()
	key := rt.s.lockKey(base)
	resp := rt.rpcReadLock(tx, key)
	if !resp.OK {
		k := resp.Kind
		putRespLock(resp)
		panic(abortSignal{kind: k, hasKind: true, reason: trace.ReasonConflict})
	}
	putRespLock(resp)
	// Record the grant before anything can abort the attempt: if the lock
	// were not in the read set when the post-read abort check fires, the
	// cleanup would never release it and the stale entry could block that
	// object forever.
	vals := rt.s.Mem.ReadBatchTo(rt.proc, rt.core, base, rt.wordBuf(n))
	tx.reads[base] = vals
	tx.readOrder = append(tx.readOrder, base)
	tx.lastGrant = rt.proc.Now()
	rt.emit(trace.KRead, tx.id, uint64(key), 0, 0)
	tx.checkAborted()
	return vals
}

// elasticRead performs a lock-free read with consecutive-read validation
// (§6.1, elastic-read): before reading the next object, every object in the
// window is re-read from shared memory; a change aborts the attempt.
// Re-reading an object already in the window returns the windowed value
// without rotating the window, so update operations that re-touch the node
// they are about to write keep that node under commit-time validation.
func (tx *Tx) elasticRead(base mem.Addr, n int) []uint64 {
	rt := tx.rt
	for i := 0; i < tx.nwin; i++ {
		if tx.window[i].base == base {
			return tx.window[i].vals
		}
	}
	tx.validateWindow(true)
	vals := rt.s.Mem.ReadBatch(rt.proc, rt.core, base, n)
	tx.pushWindow(base, vals)
	return vals
}

func (tx *Tx) pushWindow(base mem.Addr, vals []uint64) {
	if tx.nwin < len(tx.window) {
		tx.window[tx.nwin] = winEntry{base, vals}
		tx.nwin++
		return
	}
	tx.window[0] = tx.window[1]
	tx.window[1] = winEntry{base, vals}
}

// validateWindow re-reads the window entries and aborts on any change.
// charged selects whether the re-reads cost memory latency (the final
// commit-time re-check is folded into the persist and is free).
func (tx *Tx) validateWindow(charged bool) {
	rt := tx.rt
	for i := 0; i < tx.nwin; i++ {
		w := tx.window[i]
		var cur []uint64
		if charged {
			cur = rt.s.Mem.ReadBatch(rt.proc, rt.core, w.base, len(w.vals))
		} else {
			cur = make([]uint64, len(w.vals))
			for j := range cur {
				cur[j] = rt.s.Mem.ReadRaw(w.base + mem.Addr(j))
			}
		}
		for j := range cur {
			if cur[j] != w.vals[j] {
				rt.emit(trace.KDoomedRead, tx.id, uint64(w.base), 0, 0)
				panic(abortSignal{reason: trace.ReasonDoomedRead})
			}
		}
	}
}

// Write buffers a single-word write.
func (tx *Tx) Write(addr mem.Addr, v uint64) { tx.WriteN(addr, []uint64{v}) }

// WriteN buffers a write of the n-word object at base (deferred writes,
// §3.3). Under Eager acquisition the write lock is requested immediately;
// under Lazy it is deferred to commit. Writes are forbidden inside a
// declared ReadOnly transaction and panic.
func (tx *Tx) WriteN(base mem.Addr, vals []uint64) {
	if tx.kind == ReadOnly {
		panic(fmt.Sprintf("core: write to %#x inside a read-only transaction", uint64(base)))
	}
	rt := tx.rt
	rt.proc.Advance(rt.s.compute(rt.s.cfg.Costs.Wrapper))
	if rt.s.cfg.Acquire == Eager {
		key := rt.s.lockKey(base)
		if !containsAddr(tx.wlocked, key) {
			tx.checkAborted()
			resp := rt.rpcWriteLockEager(tx, key)
			if !resp.OK {
				k := resp.Kind
				putRespLock(resp)
				panic(abortSignal{kind: k, hasKind: true, reason: trace.ReasonConflict})
			}
			tx.wlocked = append(tx.wlocked, key)
			rt.eagerKey[0] = key
			tx.recordGrantVers(rt.eagerKey[:], resp.Vers)
			putRespLock(resp)
		}
	}
	if _, ok := tx.writes[base]; !ok {
		tx.writeOrd = append(tx.writeOrd, base)
	}
	buf := rt.wordBuf(len(vals))
	copy(buf, vals)
	tx.writes[base] = buf
}

// EarlyRelease drops the read locks of the given objects before commit
// (elastic-early, §6.1). The release messages are fire-and-forget, like
// DSTM's explicit release. Objects not in the read set are ignored.
func (tx *Tx) EarlyRelease(bases ...mem.Addr) {
	rt := tx.rt
	if tx.kind != ElasticEarly {
		panic(fmt.Sprintf("core: EarlyRelease on %v transaction", tx.kind))
	}
	if rt.s.tl2() {
		// Invisible reads hold no locks to release; the reads stay in the
		// set and remain snapshot-validated (strictly stronger semantics).
		return
	}
	keys := rt.erKeys[:0]
	for _, b := range bases {
		if _, ok := tx.reads[b]; !ok {
			continue
		}
		delete(tx.reads, b)
		keys = append(keys, rt.s.lockKey(b))
	}
	rt.erKeys = keys
	// Scatter: all per-node release messages go out in one burst (they are
	// fire-and-forget, so there is nothing to gather).
	for _, g := range rt.groupByNode(keys) {
		msg := getEarlyRelease()
		msg.Addrs = append(msg.Addrs[:0], g.addrs...)
		msg.Core = rt.core
		msg.TxID = tx.id
		rt.shard.EarlyReleases++
		rt.burstToNode(g.node, msg)
	}
	rt.flushOutSoft()
}

// commit implements Algorithm 3 (txcommit): acquire the write locks (batched
// per responsible node unless disabled), switch to the non-abortable
// committing state, persist the write set, release every lock. Declared
// read-only transactions branch into the leaner commitReadOnly instead.
func (tx *Tx) commit() {
	if tx.rt.s.tl2() {
		tx.commitTL2()
		return
	}
	if tx.kind == ReadOnly {
		tx.commitReadOnly()
		return
	}
	rt := tx.rt
	tx.checkAborted()
	start := rt.proc.Now()
	rt.proc.Advance(rt.s.compute(rt.s.cfg.Costs.Commit))

	if len(tx.writeOrd) > 0 && rt.s.cfg.Acquire == Lazy {
		tx.acquireCommitLocks()
	}

	if len(tx.writeOrd) > 0 {
		// Become non-abortable. If the CAS fails, a CM got to us first.
		if !rt.s.Regs.CASStatusLocal(rt.core, tx.id, mem.TxPending, mem.TxCommitting) {
			panic(abortSignal{reason: trace.ReasonRevoked})
		}
		if tx.kind == ElasticRead {
			// Final consecutive-read validation at the persist instant.
			func() {
				defer func() {
					if r := recover(); r != nil {
						// Roll back to abortable state before unwinding.
						rt.s.Regs.SetStatusLocal(rt.core, tx.id, mem.TxAborted)
						panic(r)
					}
				}()
				tx.validateWindow(false)
			}()
		}
		// Persist the write set to shared memory.
		rt.emit(trace.KPhaseBegin, tx.id, uint64(trace.PhaseWriteBack), 0, 0)
		addrs, vals := tx.writeBackLists()
		rt.s.Mem.WriteBatch(rt.proc, rt.core, addrs, vals)
		rt.emit(trace.KPhaseEnd, tx.id, uint64(trace.PhaseWriteBack), 0, 0)
	}

	rt.s.Regs.SetStatusLocal(rt.core, tx.id, mem.TxCommitted)
	if rt.s.audit != nil {
		instant := rt.proc.Now() // updates: persist completion, all locks held
		if len(tx.writeOrd) == 0 {
			instant = tx.lastGrant // read-only: the last read's instant
		}
		rt.s.recordCommit(tx, instant)
	}
	rt.releaseAll(tx)
	rt.commitLat.Observe(rt.proc.Now() - start)
}

// commitReadOnly is the declared read-only commit: there is no write set to
// scan, no committing-state CAS, no persist, and no commit-lock machinery —
// only the fire-and-forget release burst for the read locks, whose validity
// the read-lock protocol already established. It therefore charges no
// commit bookkeeping cost: the transaction serializes at its last read, the
// one instant all of its read locks are provably held.
func (tx *Tx) commitReadOnly() {
	rt := tx.rt
	tx.checkAborted()
	start := rt.proc.Now()
	rt.s.Regs.SetStatusLocal(rt.core, tx.id, mem.TxCommitted)
	if rt.s.audit != nil {
		rt.s.recordCommit(tx, tx.lastGrant)
	}
	rt.releaseAll(tx)
	rt.commitLat.Observe(rt.proc.Now() - start)
}

// writeBackLists flattens the write set into parallel address/value lists
// for the persist WriteBatch, reusing the runtime's scratch (one attempt is
// live per runtime, and WriteBatch consumes the lists before returning).
func (tx *Tx) writeBackLists() ([]mem.Addr, []uint64) {
	rt := tx.rt
	addrs := rt.wbAddrs[:0]
	vals := rt.wbVals[:0]
	for _, base := range tx.writeOrd {
		for i, v := range tx.writes[base] {
			addrs = append(addrs, base+mem.Addr(i))
			vals = append(vals, v)
		}
	}
	rt.wbAddrs, rt.wbVals = addrs, vals
	return addrs, vals
}

// acquireCommitLocks performs the lazy commit's write-lock acquisition: the
// write set is partitioned into per-node batches (one per object under the
// NoBatching ablation) and acquired either serially, one awaited round trip
// per batch (SerialRPC), or scatter-gather — every batch sent at once, all
// responses awaited in a single round-trip phase.
//
// Scatter-gather needs a two-phase rollback: when any node rejects its
// batch, the batches that other nodes already granted are recorded in
// tx.wlocked before the abort unwinds, so abortCleanup's releaseAll revokes
// them and no stale write lock survives the attempt.
//
// A batch NACKed for stale placement (an adaptive migration moved or froze
// a stripe between resolution and arrival) aborts nothing: its keys are
// re-resolved against the directory, re-partitioned — migration may split
// them across different nodes — and retried in a fresh phase, keeping
// every lock already granted. The hop bound caps the chase; exceeding it
// aborts the attempt, whose lock release is what lets a frozen stripe
// drain when the requester itself is the holdout.
func (tx *Tx) acquireCommitLocks() {
	rt := tx.rt
	keys := tx.writeKeys()
	rt.s.dir.Record(rt.cluster, keys...) // once per attempt; stale retries resend, not re-record
	for hop := 0; ; hop++ {
		var stale []mem.Addr
		if rt.s.cfg.SerialRPC {
			stale = tx.serialAcquire(keys)
		} else {
			stale = tx.scatterAcquire(keys)
		}
		if len(stale) == 0 {
			return
		}
		if hop >= maxPlacementHops {
			rt.placementAbort()
		}
		keys = stale
	}
}

// serialAcquire acquires the keys' write locks one awaited round trip per
// batch (the SerialRPC ablation), returning the keys whose batches were
// NACKed for stale placement. A conflict rejection aborts immediately.
// Every batch is stamped with the grouping-time epoch: a migration that
// completes during an earlier batch's awaited round trip bumps the
// directory epoch, so the later batches fail the receiver's fast path and
// get the authoritative per-key check instead of a blind grant at a node
// that no longer owns some of their keys.
func (tx *Tx) serialAcquire(keys []mem.Addr) (stale []mem.Addr) {
	rt := tx.rt
	batches, epoch := tx.commitBatches(keys)
	for _, b := range batches {
		tx.checkAborted()
		rt.shard.CommitRoundTrips++
		resp := rt.rpcWriteLock(tx, b.node, epoch, b.addrs)
		if resp == nil {
			// Earlier batches are already in tx.wlocked; this one's grant
			// state is unknown, so hand it to the release burst too.
			rt.timeoutAbort(tx, nil, b.addrs)
		}
		switch {
		case resp.OK:
			tx.wlocked = append(tx.wlocked, b.addrs...)
			tx.recordGrantVers(b.addrs, resp.Vers)
			putRespLock(resp)
		case resp.Stale:
			stale = append(stale, b.addrs...)
			putRespLock(resp)
		default:
			k := resp.Kind
			putRespLock(resp)
			panic(abortSignal{kind: k, hasKind: true, reason: trace.ReasonConflict})
		}
	}
	return stale
}

// scatterAcquire sends every batch in one burst and gathers all responses
// in a single awaited phase, returning the keys NACKed for stale placement.
// Any conflict rejection aborts after the granted batches are recorded for
// rollback.
func (tx *Tx) scatterAcquire(keys []mem.Addr) (stale []mem.Addr) {
	rt := tx.rt
	batches, epoch := tx.commitBatches(keys)
	tx.checkAborted()
	rt.shard.CommitRoundTrips++
	resps := rt.scatterWriteLocks(tx, epoch, batches)
	failed := false
	var failKind cm.Kind
	for i, resp := range resps {
		switch {
		case resp.OK:
			tx.wlocked = append(tx.wlocked, batches[i].addrs...)
			tx.recordGrantVers(batches[i].addrs, resp.Vers)
		case resp.Stale:
			stale = append(stale, batches[i].addrs...)
		case !failed:
			failed, failKind = true, resp.Kind // first rejection in send order, for determinism
		}
		putRespLock(resp)
		resps[i] = nil
	}
	if failed {
		panic(abortSignal{kind: failKind, hasKind: true, reason: trace.ReasonConflict})
	}
	return stale
}

// commitBatches partitions lock keys into the batches the commit acquires —
// one per responsible DTM node in first-write order, or one per object
// under the NoBatching ablation — and returns the directory epoch the
// grouping was resolved at. Requests built from these batches must go to
// the batch's node and carry that epoch, so a directory change between
// grouping and send (or between serial sends) is always visible to the
// receiver (see sendWriteLock).
func (tx *Tx) commitBatches(keys []mem.Addr) ([]nodeGroup, uint64) {
	rt := tx.rt
	batches := rt.batchScratch[:0]
	for _, g := range rt.groupByNode(keys) {
		if rt.s.cfg.NoBatching {
			// One batch per object: each aliases a one-element sub-slice of
			// the group's storage (full slice expression, so appends to one
			// batch can never scribble on the next). The batches are consumed
			// before the next groupByNode call reuses that storage.
			for i := range g.addrs {
				batches = append(batches, nodeGroup{node: g.node, addrs: g.addrs[i : i+1 : i+1]})
			}
		} else {
			batches = append(batches, g)
		}
	}
	rt.batchScratch = batches
	return batches, rt.s.dir.Epoch()
}

// abortCleanup releases every lock held by the failed attempt and marks the
// status register.
func (rt *Runtime) abortCleanup(tx *Tx, sig abortSignal) {
	rt.s.Regs.SetStatusLocal(rt.core, tx.id, mem.TxAborted)
	rt.releaseAll(tx)
	rt.stats.Aborts++
	rt.shard.AbortReasons[sig.reason]++
	if sig.hasKind {
		rt.shard.AbortsByKind[sig.kind]++
	}
	kindEnc := uint64(0)
	if sig.hasKind {
		kindEnc = uint64(sig.kind) + 1
	}
	rt.emit(trace.KAbort, tx.id, uint64(sig.reason), kindEnc, 0)
	rt.s.snap.AddAbort()
	tx.runHooks(tx.onAbort)
}

// releaseAll sends one release message per DTM node covering the attempt's
// remaining read locks and acquired write locks, all in one fire-and-forget
// burst (scatter with nothing to gather). Nodes are visited in first-use
// order (reads in read order, then write locks in acquisition order) so
// identical runs schedule identical events.
func (rt *Runtime) releaseAll(tx *Tx) {
	rt.emit(trace.KPhaseBegin, tx.id, uint64(trace.PhaseRelease), 0, 0)
	if rt.relIdx == nil {
		rt.relIdx = make(map[int]int)
	}
	clear(rt.relIdx)
	rt.relGroups = rt.relGroups[:0]
	if tx.kind != ElasticRead && !rt.s.tl2() {
		// Elastic-read and TL2 reads are invisible: no read locks exist.
		for _, base := range tx.readOrder {
			if _, held := tx.reads[base]; !held {
				continue // early-released
			}
			key := rt.s.lockKey(base)
			g := rt.relGroupFor(rt.s.nodeFor(key))
			g.reads = append(g.reads, key)
		}
	}
	for _, key := range tx.wlocked {
		g := rt.relGroupFor(rt.s.nodeFor(key))
		g.writes = append(g.writes, key)
	}
	for i := range rt.relGroups {
		g := &rt.relGroups[i]
		msg := getRelLocks()
		msg.ReadAddrs = append(msg.ReadAddrs[:0], g.reads...)
		msg.WriteAddrs = append(msg.WriteAddrs[:0], g.writes...)
		msg.Core = rt.core
		msg.TxID = tx.id
		rt.shard.ReleaseMsgs++
		rt.burstToNode(g.node, msg)
	}
	rt.flushOutSoft()
	rt.emit(trace.KPhaseEnd, tx.id, uint64(trace.PhaseRelease), 0, 0)
}

// relGroup is releaseAll's per-node accumulator; the slices are runtime-
// owned scratch, copied into the pooled message before send.
type relGroup struct {
	node          int
	reads, writes []mem.Addr
}

// relGroupFor returns the release group for node ni, appending a new one
// (reusing any retained slice capacity in that slot) on first use. The
// returned pointer is only valid until the next relGroupFor call — callers
// use it immediately.
func (rt *Runtime) relGroupFor(ni int) *relGroup {
	if gi, ok := rt.relIdx[ni]; ok {
		return &rt.relGroups[gi]
	}
	gi := len(rt.relGroups)
	rt.relIdx[ni] = gi
	if gi < cap(rt.relGroups) {
		rt.relGroups = rt.relGroups[:gi+1]
		g := &rt.relGroups[gi]
		g.node = ni
		g.reads = g.reads[:0]
		g.writes = g.writes[:0]
	} else {
		rt.relGroups = append(rt.relGroups, relGroup{node: ni})
	}
	return &rt.relGroups[gi]
}

// writeKeys returns the deduplicated lock keys of the write set, in first-
// write order.
func (tx *Tx) writeKeys() []mem.Addr {
	rt := tx.rt
	if rt.wkSeen == nil {
		rt.wkSeen = make(map[mem.Addr]bool, len(tx.writeOrd))
	}
	clear(rt.wkSeen)
	keys := rt.wkKeys[:0]
	for _, base := range tx.writeOrd {
		k := rt.s.lockKey(base)
		if !rt.wkSeen[k] {
			rt.wkSeen[k] = true
			keys = append(keys, k)
		}
	}
	rt.wkKeys = keys
	return keys
}

type nodeGroup struct {
	node  int
	addrs []mem.Addr
}

// groupByNode partitions lock keys by responsible DTM node, preserving the
// relative order of first appearance (deterministic batching).
func (rt *Runtime) groupByNode(keys []mem.Addr) []nodeGroup {
	if rt.ngIdx == nil {
		rt.ngIdx = make(map[int]int)
	}
	clear(rt.ngIdx)
	groups := rt.ngGroups[:0]
	for _, k := range keys {
		ni := rt.s.nodeFor(k)
		gi, ok := rt.ngIdx[ni]
		if !ok {
			gi = len(groups)
			rt.ngIdx[ni] = gi
			if gi < cap(groups) {
				groups = groups[:gi+1]
				groups[gi].node = ni
				groups[gi].addrs = groups[gi].addrs[:0]
			} else {
				groups = append(groups, nodeGroup{node: ni})
			}
		}
		groups[gi].addrs = append(groups[gi].addrs, k)
	}
	rt.ngGroups = groups
	return groups
}

// drainRequests serves any queued DTM requests at a transaction boundary
// (Multitask cooperative yield).
func (rt *Runtime) drainRequests() {
	if rt.node == nil {
		return
	}
	for {
		m, ok := rt.proc.TryRecv()
		if !ok {
			// End of the boundary dispatch: responses staged for the
			// requests served above leave before the core resumes
			// transactional work (which may block on its own receives).
			rt.node.flushOut(rt.proc)
			return
		}
		if !rt.node.handle(rt.proc, m) {
			if b, isB := m.Payload.(barrierMsg); isB {
				rt.barrierSeen[b.Epoch]++
				continue
			}
			panic(fmt.Sprintf("core: app%d unexpected message %T at tx boundary", rt.core, m.Payload))
		}
	}
}

// Barrier blocks until every application core has reached the same barrier
// (§8 privatization support): each core sends a barrier message to all other
// application cores and waits for all of theirs.
func (rt *Runtime) Barrier() {
	// Adaptive flush may have deferred release messages from the last
	// transaction; a barrier must not let them age behind the rendezvous.
	rt.flushOut()
	rt.barrierEpoch++
	epoch := rt.barrierEpoch
	msg := barrierMsg{Epoch: epoch}
	for _, other := range rt.s.runtimes {
		if other == rt {
			continue
		}
		rt.s.send(&rt.shard, rt.rec, rt.proc, rt.core, other.proc, other.core, msg, msg.bytes())
	}
	for rt.barrierSeen[epoch] < len(rt.s.runtimes)-1 {
		m := rt.proc.Recv()
		switch pl := m.Payload.(type) {
		case barrierMsg:
			rt.barrierSeen[pl.Epoch]++
		default:
			if rt.node != nil && rt.node.handle(rt.proc, m) {
				rt.node.flushOut(rt.proc)
				continue
			}
			panic(fmt.Sprintf("core: app%d unexpected message %T in barrier", rt.core, m.Payload))
		}
	}
	delete(rt.barrierSeen, epoch)
}

func cloneWords(v []uint64) []uint64 {
	out := make([]uint64, len(v))
	copy(out, v)
	return out
}

func containsAddr(s []mem.Addr, a mem.Addr) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

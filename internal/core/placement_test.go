package core

import (
	"testing"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/placement"
)

// skewedWriteWorker returns a worker whose transactions mostly touch a
// small hot set of keys spaced so that, under adaptive placement's
// interleaved initial assignment, every hot key lands on the same DTM node
// — guaranteed load imbalance that must trigger migrations.
func skewedWriteWorker(pool mem.Addr, nodes, words, ops int) func(rt *Runtime) {
	return func(rt *Runtime) {
		r := rt.Rand()
		for i := 0; i < ops; i++ {
			rt.Run(func(tx *Tx) {
				var a mem.Addr
				if r.Intn(100) < 80 {
					a = pool + mem.Addr(nodes*r.Intn(8)) // hot: one initial owner
				} else {
					a = pool + mem.Addr(r.Intn(words))
				}
				tx.Write(a, tx.Read(a)+1)
				b := pool + mem.Addr(r.Intn(words))
				tx.Write(b, tx.Read(b)+1)
			})
			rt.AddOps(1)
		}
	}
}

// TestAdaptiveMigrationNoLockLeak drives a skewed workload with a short
// repartition epoch so stripes migrate while transactions hold locks on
// them, then verifies the ISSUE's core invariant: after the run drains, no
// lock survives anywhere — handoffs never orphaned a lock or lost a
// release — and the linearizability audit stays green.
func TestAdaptiveMigrationNoLockLeak(t *testing.T) {
	cfg := Config{
		Platform:         noc.SCC(0),
		Seed:             9,
		TotalCores:       8,
		ServiceCores:     4,
		Policy:           cm.FairCM,
		Placement:        placement.Adaptive,
		RepartitionEpoch: 64,
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableAudit()
	pool := s.Mem.Alloc(128, 0)
	s.SpawnWorkers(skewedWriteWorker(pool, 4, 128, 40))
	st := s.RunToCompletion()

	if st.Ops != 4*40 {
		t.Fatalf("ops = %d, want 160 (run did not drain)", st.Ops)
	}
	if st.Migrations == 0 || st.Handoffs == 0 {
		t.Fatalf("migrations=%d handoffs=%d, want both > 0 (skew must trigger repartitioning)",
			st.Migrations, st.Handoffs)
	}
	if err := s.CheckAudit(nil); err != nil {
		t.Fatal(err)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d addresses still locked after drained run with migrations", leaked)
	}
	if err := s.Placement().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveMigrationMultitask is the same drain check under Multitask
// deployment, where each core gathers its own lock responses while serving
// its co-located DTM node — including the node's stripe handoffs.
func TestAdaptiveMigrationMultitask(t *testing.T) {
	cfg := Config{
		Platform:         noc.SCC(0),
		Seed:             4,
		TotalCores:       4,
		Deployment:       Multitask,
		Policy:           cm.FairCM,
		Placement:        placement.Adaptive,
		RepartitionEpoch: 64,
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableAudit()
	pool := s.Mem.Alloc(64, 0)
	s.SpawnWorkers(skewedWriteWorker(pool, 4, 64, 30))
	st := s.RunToCompletion()
	if st.Ops != 4*30 {
		t.Fatalf("ops = %d, want 120 (run did not drain)", st.Ops)
	}
	if st.Migrations == 0 {
		t.Fatal("no migrations under skew")
	}
	if err := s.CheckAudit(nil); err != nil {
		t.Fatal(err)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked", leaked)
	}
}

// TestAdaptiveDeterminism verifies that same-seed runs with adaptive
// placement and live migrations are bit-identical: same kernel event trace,
// same statistics.
func TestAdaptiveDeterminism(t *testing.T) {
	for _, dep := range []Deployment{Dedicated, Multitask} {
		t.Run(dep.String(), func(t *testing.T) {
			run := func() (uint64, Stats) {
				cfg := Config{
					Platform:         noc.SCC(0),
					Seed:             5,
					TotalCores:       8,
					Deployment:       dep,
					Policy:           cm.FairCM,
					Placement:        placement.Adaptive,
					RepartitionEpoch: 64,
				}
				s, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.K.EnableTraceHash()
				pool := s.Mem.Alloc(128, 0)
				nodes := s.NumServiceCores()
				s.SpawnWorkers(skewedWriteWorker(pool, nodes, 128, 20))
				st := s.RunToCompletion()
				return s.K.TraceHash(), *st
			}
			h1, st1 := run()
			h2, st2 := run()
			if h1 != h2 {
				t.Fatalf("trace hashes differ: %#x != %#x", h1, h2)
			}
			if st1.Commits != st2.Commits || st1.Msgs != st2.Msgs ||
				st1.Migrations != st2.Migrations || st1.StaleNacks != st2.StaleNacks {
				t.Fatalf("stats differ across identical runs:\n%+v\n%+v", st1, st2)
			}
			if st1.Commits == 0 {
				t.Fatal("no commits")
			}
			if st1.Migrations == 0 {
				t.Fatal("determinism check exercised no migrations")
			}
		})
	}
}

// TestPlacementStaleNackRerouting freezes one stripe by hand, then runs a
// transaction touching a key in it. The owning node completes the (empty)
// handoff on the request's arrival and NACKs it stale; the requester
// re-resolves to the new owner and commits. Exactly the remap protocol's
// happy path, observed end to end.
func TestPlacementStaleNackRerouting(t *testing.T) {
	cfg := Config{
		Platform:         noc.SCC(0),
		Seed:             7,
		TotalCores:       4,
		ServiceCores:     2,
		Policy:           cm.FairCM,
		Placement:        placement.Adaptive,
		RepartitionEpoch: 1 << 30, // no automatic rounds
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Mem.Alloc(8, 0)
	dir := s.Placement()
	key := s.lockKey(addr)
	stripe := dir.StripeOf(key)
	from := dir.Owner(key)
	to := (from + 1) % s.NumServiceCores()
	if !dir.InitiateMove(stripe, to) {
		t.Fatal("InitiateMove refused")
	}

	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.Run(func(tx *Tx) {
			tx.Write(addr, tx.Read(addr)+41)
		})
		rt.AddOps(1)
	})
	st := s.RunToCompletion()

	if st.Commits != 1 {
		t.Fatalf("commits = %d, want 1", st.Commits)
	}
	if st.StaleNacks == 0 {
		t.Fatal("request to the frozen stripe was not NACKed")
	}
	if st.Handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1", st.Handoffs)
	}
	if got := dir.Owner(key); got != to {
		t.Fatalf("key owned by node %d after handoff, want %d", got, to)
	}
	if got := s.Mem.ReadRaw(addr); got != 41 {
		t.Fatalf("mem[addr] = %d, want 41", got)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked", leaked)
	}
}

// TestPlacementKindsAllDrain smoke-runs every policy on the same workload
// and checks clean drains and identical committed effects per policy.
func TestPlacementKindsAllDrain(t *testing.T) {
	for _, k := range placement.Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			cfg := Config{
				Platform:     noc.SCC(0),
				Seed:         11,
				TotalCores:   6,
				ServiceCores: 3,
				Policy:       cm.FairCM,
				Placement:    k,
			}
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.EnableAudit()
			pool := s.Mem.Alloc(64, 0)
			s.SpawnWorkers(scatterWriteWorker(pool, 64, 4, 15))
			st := s.RunToCompletion()
			if st.Ops != 3*15 {
				t.Fatalf("ops = %d, want 45", st.Ops)
			}
			if err := s.CheckAudit(nil); err != nil {
				t.Fatal(err)
			}
			if leaked := s.LockedAddrs(); leaked != 0 {
				t.Fatalf("%d locks leaked", leaked)
			}
			if got := len(st.NodeLoad); got != 3 {
				t.Fatalf("NodeLoad has %d entries, want 3", got)
			}
			var total uint64
			for _, v := range st.NodeLoad {
				total += v
			}
			if total == 0 {
				t.Fatal("NodeLoad recorded no served requests")
			}
			if imb := st.LoadImbalance(); imb < 1 {
				t.Fatalf("LoadImbalance = %v, want >= 1", imb)
			}
		})
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/placement"
)

// skewedWriteWorker returns a worker whose transactions mostly touch a
// small hot set of keys spaced so that, under adaptive placement's
// interleaved initial assignment, every hot key lands on the same DTM node
// — guaranteed load imbalance that must trigger migrations.
func skewedWriteWorker(pool mem.Addr, nodes, words, ops int) func(rt *Runtime) {
	return func(rt *Runtime) {
		r := rt.Rand()
		for i := 0; i < ops; i++ {
			rt.Run(func(tx *Tx) {
				var a mem.Addr
				if r.Intn(100) < 80 {
					a = pool + mem.Addr(nodes*r.Intn(8)) // hot: one initial owner
				} else {
					a = pool + mem.Addr(r.Intn(words))
				}
				tx.Write(a, tx.Read(a)+1)
				b := pool + mem.Addr(r.Intn(words))
				tx.Write(b, tx.Read(b)+1)
			})
			rt.AddOps(1)
		}
	}
}

// TestAdaptiveMigrationNoLockLeak drives a skewed workload with a short
// repartition epoch so stripes migrate while transactions hold locks on
// them, then verifies the ISSUE's core invariant: after the run drains, no
// lock survives anywhere — handoffs never orphaned a lock or lost a
// release — and the linearizability audit stays green.
func TestAdaptiveMigrationNoLockLeak(t *testing.T) {
	cfg := Config{
		Platform:         noc.SCC(0),
		Seed:             9,
		TotalCores:       8,
		ServiceCores:     4,
		Policy:           cm.FairCM,
		Placement:        placement.Adaptive,
		RepartitionEpoch: 64,
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableAudit()
	pool := s.Mem.Alloc(128, 0)
	s.SpawnWorkers(skewedWriteWorker(pool, 4, 128, 40))
	st := s.RunToCompletion()

	if st.Ops != 4*40 {
		t.Fatalf("ops = %d, want 160 (run did not drain)", st.Ops)
	}
	if st.Migrations == 0 || st.Handoffs == 0 {
		t.Fatalf("migrations=%d handoffs=%d, want both > 0 (skew must trigger repartitioning)",
			st.Migrations, st.Handoffs)
	}
	if st.RepartitionRounds == 0 {
		t.Fatal("migrations happened but no repartition round was counted")
	}
	if err := s.CheckAudit(nil); err != nil {
		t.Fatal(err)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d addresses still locked after drained run with migrations", leaked)
	}
	if err := s.Placement().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSerialCommitMidMigrationStaleBatch deterministically reproduces the
// serial-commit placement race: the commit groups its per-node batches once,
// then awaits a full round trip per batch, so a migration can complete while
// an earlier batch is in flight. The later batch then contains a key its
// destination no longer owns. Requests must carry the grouping-time epoch —
// stamped with the send-time epoch, the batch passes the receiver's
// current-epoch fast path and the non-owner grants a lock it has no
// authority over, which this test observes as a missing stale NACK plus a
// lock stranded in the wrong node's table.
//
// Construction (Multitask, 3 cores = 3 co-located DTM nodes): the committer
// writes a on node 0 and b1, b2 on node 1, giving serial batches [a]@n0 then
// [b1,b2]@n1. Node 0's core computes for 11ms, stretching the first round
// trip; 1ms in, its worker migrates b2's drained stripe to node 0 and
// completes the handoff — inside the committer's first round trip, after
// grouping and long before the second batch is sent.
func TestSerialCommitMidMigrationStaleBatch(t *testing.T) {
	cfg := Config{
		Platform:         noc.SCC(0),
		Seed:             2,
		TotalCores:       3,
		Deployment:       Multitask,
		Policy:           cm.FairCM,
		SerialRPC:        true,
		Placement:        placement.Adaptive,
		RepartitionEpoch: 1 << 30, // no automatic rounds; the test drives the move
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pool := s.Mem.Alloc(64, 0)
	dir := s.Placement()
	pick := func(node int, not mem.Addr) mem.Addr {
		for i := 0; i < 64; i++ {
			ad := pool + mem.Addr(i)
			if k := s.lockKey(ad); k != not && s.nodeFor(k) == node {
				return ad
			}
		}
		t.Fatalf("no address on node %d", node)
		return 0
	}
	a := pick(0, ^mem.Addr(0))
	b1 := pick(1, ^mem.Addr(0))
	b2 := pick(1, s.lockKey(b1))
	stripe := dir.StripeOf(s.lockKey(b2))

	s.SpawnWorkers(func(rt *Runtime) {
		switch rt.AppIndex() {
		case 0:
			// Stall node 0 (co-located: requests are served only when this
			// worker yields), then migrate b2's stripe mid-round-trip. The
			// stripe holds no lock, so completing the handoff immediately is
			// exactly what the owner would do on its next scan. Directory
			// calls are plain bookkeeping on the single-threaded kernel.
			rt.Compute(time.Millisecond)
			if !dir.InitiateMove(stripe, 0) {
				panic("InitiateMove refused")
			}
			dir.CompleteHandoff(stripe)
			rt.Compute(10 * time.Millisecond)
		case 2:
			rt.Run(func(tx *Tx) {
				tx.Write(a, 1)
				tx.Write(b1, 2)
				tx.Write(b2, 3)
			})
			rt.AddOps(1)
		}
		// AppIndex 1 returns immediately; its proc keeps serving node 1.
	})
	st := s.RunToCompletion()

	if st.Commits != 1 {
		t.Fatalf("commits = %d, want 1", st.Commits)
	}
	if st.Migrations != 1 || st.Handoffs != 1 {
		t.Fatalf("migrations=%d handoffs=%d, want 1/1", st.Migrations, st.Handoffs)
	}
	if st.StaleNacks == 0 {
		t.Fatal("stale batch was granted: node 1 accepted a key that migrated mid-commit " +
			"(request must carry the grouping-time epoch, not the send-time epoch)")
	}
	for _, w := range []struct {
		addr mem.Addr
		want uint64
	}{{a, 1}, {b1, 2}, {b2, 3}} {
		if got := s.Mem.ReadRaw(w.addr); got != w.want {
			t.Fatalf("mem[%#x] = %d, want %d", w.addr, got, w.want)
		}
	}
	if got := dir.Owner(s.lockKey(b2)); got != 0 {
		t.Fatalf("b2 owned by node %d after handoff, want 0", got)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d addresses still locked: the stale grant stranded a lock in the old owner's table", leaked)
	}
	if err := dir.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveSerialRPCMigration drives the SerialRPC commit path against
// live adaptive migrations. Serial acquisition awaits a full round trip
// between batches, so the directory can migrate ownership mid-commit; the
// later batches were grouped under the old layout and must fail the
// receiver's epoch fast path (grouping-time stamp) so the authoritative
// per-key check NACKs keys the addressed node no longer owns. A send-time
// stamp would let a non-owner blindly grant such a batch, which the
// linearizability audit surfaces as a lost update. Several seeds widen the
// interleavings exercised.
func TestAdaptiveSerialRPCMigration(t *testing.T) {
	for _, seed := range []uint64{3, 9, 17} {
		cfg := Config{
			Platform:         noc.SCC(0),
			Seed:             seed,
			TotalCores:       8,
			ServiceCores:     4,
			Policy:           cm.FairCM,
			SerialRPC:        true,
			Placement:        placement.Adaptive,
			RepartitionEpoch: 64,
		}
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.EnableAudit()
		pool := s.Mem.Alloc(128, 0)
		s.SpawnWorkers(skewedWriteWorker(pool, 4, 128, 40))
		st := s.RunToCompletion()

		if st.Ops != 4*40 {
			t.Fatalf("seed %d: ops = %d, want 160 (run did not drain)", seed, st.Ops)
		}
		if st.Migrations == 0 || st.Handoffs == 0 {
			t.Fatalf("seed %d: migrations=%d handoffs=%d, want both > 0", seed, st.Migrations, st.Handoffs)
		}
		if err := s.CheckAudit(nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if leaked := s.LockedAddrs(); leaked != 0 {
			t.Fatalf("seed %d: %d addresses still locked after drained run", seed, leaked)
		}
		if err := s.Placement().CheckInvariants(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestAdaptiveMigrationMultitask is the same drain check under Multitask
// deployment, where each core gathers its own lock responses while serving
// its co-located DTM node — including the node's stripe handoffs.
func TestAdaptiveMigrationMultitask(t *testing.T) {
	cfg := Config{
		Platform:         noc.SCC(0),
		Seed:             4,
		TotalCores:       4,
		Deployment:       Multitask,
		Policy:           cm.FairCM,
		Placement:        placement.Adaptive,
		RepartitionEpoch: 64,
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableAudit()
	pool := s.Mem.Alloc(64, 0)
	s.SpawnWorkers(skewedWriteWorker(pool, 4, 64, 30))
	st := s.RunToCompletion()
	if st.Ops != 4*30 {
		t.Fatalf("ops = %d, want 120 (run did not drain)", st.Ops)
	}
	if st.Migrations == 0 {
		t.Fatal("no migrations under skew")
	}
	if err := s.CheckAudit(nil); err != nil {
		t.Fatal(err)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked", leaked)
	}
}

// TestAdaptiveDeterminism verifies that same-seed runs with adaptive
// placement and live migrations are bit-identical: same kernel event trace,
// same statistics.
func TestAdaptiveDeterminism(t *testing.T) {
	for _, dep := range []Deployment{Dedicated, Multitask} {
		t.Run(dep.String(), func(t *testing.T) {
			run := func() (uint64, Stats) {
				cfg := Config{
					Platform:         noc.SCC(0),
					Seed:             5,
					TotalCores:       8,
					Deployment:       dep,
					Policy:           cm.FairCM,
					Placement:        placement.Adaptive,
					RepartitionEpoch: 64,
				}
				s, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.K.EnableTraceHash()
				pool := s.Mem.Alloc(128, 0)
				nodes := s.NumServiceCores()
				s.SpawnWorkers(skewedWriteWorker(pool, nodes, 128, 20))
				st := s.RunToCompletion()
				return s.K.TraceHash(), *st
			}
			h1, st1 := run()
			h2, st2 := run()
			if h1 != h2 {
				t.Fatalf("trace hashes differ: %#x != %#x", h1, h2)
			}
			if st1.Commits != st2.Commits || st1.Msgs != st2.Msgs ||
				st1.Migrations != st2.Migrations || st1.StaleNacks != st2.StaleNacks {
				t.Fatalf("stats differ across identical runs:\n%+v\n%+v", st1, st2)
			}
			if st1.Commits == 0 {
				t.Fatal("no commits")
			}
			if st1.Migrations == 0 {
				t.Fatal("determinism check exercised no migrations")
			}
		})
	}
}

// TestPlacementStaleNackRerouting freezes one stripe by hand, then runs a
// transaction touching a key in it. The owning node completes the (empty)
// handoff on the request's arrival and NACKs it stale; the requester
// re-resolves to the new owner and commits. Exactly the remap protocol's
// happy path, observed end to end.
func TestPlacementStaleNackRerouting(t *testing.T) {
	cfg := Config{
		Platform:         noc.SCC(0),
		Seed:             7,
		TotalCores:       4,
		ServiceCores:     2,
		Policy:           cm.FairCM,
		Placement:        placement.Adaptive,
		RepartitionEpoch: 1 << 30, // no automatic rounds
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Mem.Alloc(8, 0)
	dir := s.Placement()
	key := s.lockKey(addr)
	stripe := dir.StripeOf(key)
	from := dir.Owner(key)
	to := (from + 1) % s.NumServiceCores()
	if !dir.InitiateMove(stripe, to) {
		t.Fatal("InitiateMove refused")
	}

	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.Run(func(tx *Tx) {
			tx.Write(addr, tx.Read(addr)+41)
		})
		rt.AddOps(1)
	})
	st := s.RunToCompletion()

	if st.Commits != 1 {
		t.Fatalf("commits = %d, want 1", st.Commits)
	}
	if st.StaleNacks == 0 {
		t.Fatal("request to the frozen stripe was not NACKed")
	}
	if st.Handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1", st.Handoffs)
	}
	if got := dir.Owner(key); got != to {
		t.Fatalf("key owned by node %d after handoff, want %d", got, to)
	}
	if got := s.Mem.ReadRaw(addr); got != 41 {
		t.Fatalf("mem[addr] = %d, want 41", got)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked", leaked)
	}
}

// TestPlacementKindsAllDrain smoke-runs every policy on the same workload
// and checks clean drains and identical committed effects per policy.
func TestPlacementKindsAllDrain(t *testing.T) {
	for _, k := range placement.Kinds() {
		t.Run(k.String(), func(t *testing.T) {
			cfg := Config{
				Platform:     noc.SCC(0),
				Seed:         11,
				TotalCores:   6,
				ServiceCores: 3,
				Policy:       cm.FairCM,
				Placement:    k,
			}
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.EnableAudit()
			pool := s.Mem.Alloc(64, 0)
			s.SpawnWorkers(scatterWriteWorker(pool, 64, 4, 15))
			st := s.RunToCompletion()
			if st.Ops != 3*15 {
				t.Fatalf("ops = %d, want 45", st.Ops)
			}
			if err := s.CheckAudit(nil); err != nil {
				t.Fatal(err)
			}
			if leaked := s.LockedAddrs(); leaked != 0 {
				t.Fatalf("%d locks leaked", leaked)
			}
			if got := len(st.NodeLoad); got != 3 {
				t.Fatalf("NodeLoad has %d entries, want 3", got)
			}
			var total uint64
			for _, v := range st.NodeLoad {
				total += v
			}
			if total == 0 {
				t.Fatal("NodeLoad recorded no served requests")
			}
			if imb := st.LoadImbalance(); imb < 1 {
				t.Fatalf("LoadImbalance = %v, want >= 1", imb)
			}
		})
	}
}

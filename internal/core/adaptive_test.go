package core

import (
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
)

// Adaptive outbox flush (Config.AdaptiveFlush) defers fire-and-forget
// traffic below the platform's bytes-per-fixed-cost sweet spot so a later
// burst to the same node shares the envelope. These tests pin the contract:
// it only changes when staged payloads leave, never what the protocol
// decides; the size trigger degenerates to the plain coalescing plane; and
// everything stays deterministic in virtual time.

func adaptiveSystem(t *testing.T, seed uint64, mut func(*Config)) *System {
	t.Helper()
	cfg := Config{
		Platform:     noc.SCC(0),
		Seed:         seed,
		TotalCores:   12,
		ServiceCores: 4,
		Policy:       cm.FairCM,
		NoBatching:   true, // several payloads per destination per burst
		Coalesce:     true,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAdaptiveFlushRequiresCoalesce(t *testing.T) {
	_, err := NewSystem(Config{
		Platform:      noc.SCC(0),
		Seed:          1,
		TotalCores:    8,
		AdaptiveFlush: true,
	})
	if err == nil {
		t.Fatal("AdaptiveFlush without Coalesce must be rejected")
	}
}

func TestAdaptiveFlushDefaultsFromPlatform(t *testing.T) {
	s := adaptiveSystem(t, 1, func(c *Config) { c.AdaptiveFlush = true })
	pl := s.cfg.Platform
	if want := pl.FlushBytes(); s.cfg.FlushBytes != want {
		t.Errorf("FlushBytes defaulted to %d, want platform sweet spot %d", s.cfg.FlushBytes, want)
	}
	if want := pl.FlushAge(); s.cfg.FlushAge != want {
		t.Errorf("FlushAge defaulted to %v, want platform bound %v", s.cfg.FlushAge, want)
	}
}

// adaptiveDisjointRun is the conflict-free fixed workload of the coalesce
// tests: every protocol decision is independent of message timing, so any
// configuration of the transport must reach the identical outcome.
func adaptiveDisjointRun(t *testing.T, seed uint64, mut func(*Config)) (*Stats, []uint64) {
	t.Helper()
	s := adaptiveSystem(t, seed, mut)
	s.EnableAudit()
	const perCore, rounds = 64, 12
	n := s.NumAppCores()
	base := s.Mem.Alloc(n*perCore, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		r := rt.Rand()
		lo := rt.AppIndex() * perCore
		for i := 0; i < rounds; i++ {
			rt.Run(func(tx *Tx) {
				for k := 0; k < 6; k++ {
					slot := lo + r.Intn(perCore)
					tx.Write(base+mem.Addr(slot), uint64(slot)<<16|uint64(i))
				}
			})
		}
	})
	st := s.RunToCompletion()
	if err := s.CheckAudit(nil); err != nil {
		t.Fatalf("audit failed (seed %d): %v", seed, err)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked (seed %d)", leaked, seed)
	}
	img := make([]uint64, n*perCore)
	for i := range img {
		img[i] = s.Mem.ReadRaw(base + mem.Addr(i))
	}
	return st, img
}

// TestAdaptiveFlushOutcomeEquivalence: on the timing-independent workload,
// adaptive flushing must reach the exact outcome of the plain coalescing
// plane — same commits and aborts, same logical payloads, identical final
// memory — while non-vacuously deferring: strictly fewer wire messages,
// because held-back release envelopes merge into later bursts.
func TestAdaptiveFlushOutcomeEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		plain, imgP := adaptiveDisjointRun(t, seed, nil)
		adpt, imgA := adaptiveDisjointRun(t, seed, func(c *Config) { c.AdaptiveFlush = true })
		if plain.Commits != adpt.Commits || plain.Aborts != adpt.Aborts {
			t.Errorf("seed %d: commits/aborts %d/%d adaptive vs %d/%d plain",
				seed, adpt.Commits, adpt.Aborts, plain.Commits, plain.Aborts)
		}
		if plain.Msgs != adpt.Msgs {
			t.Errorf("seed %d: logical payloads %d adaptive vs %d plain", seed, adpt.Msgs, plain.Msgs)
		}
		for i := range imgP {
			if imgP[i] != imgA[i] {
				t.Fatalf("seed %d: final memory diverges at word %d: %#x vs %#x",
					seed, i, imgA[i], imgP[i])
			}
		}
		if adpt.WireMsgs >= plain.WireMsgs {
			t.Errorf("seed %d: adaptive flush did not reduce wire messages (%d vs %d) — deferral is vacuous",
				seed, adpt.WireMsgs, plain.WireMsgs)
		}
	}
}

// TestAdaptiveFlushDeterministic: adaptive flushing must stay bit-identical
// across same-seed sim runs — the size and age triggers read only virtual
// time and staged byte counts, never wall-clock state.
func TestAdaptiveFlushDeterministic(t *testing.T) {
	run := func() *Stats {
		s := adaptiveSystem(t, 21, func(c *Config) { c.AdaptiveFlush = true })
		const accounts = 24
		base := s.Mem.Alloc(accounts, 0)
		s.SpawnWorkers(func(rt *Runtime) {
			r := rt.Rand()
			for !rt.Stopped() {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				rt.Run(func(tx *Tx) {
					f := tx.Read(base + mem.Addr(from))
					tx.Write(base+mem.Addr(from), f-1)
					tx.Write(base+mem.Addr(to), tx.Read(base+mem.Addr(to))+1)
				})
				rt.AddOps(1)
			}
		})
		return s.Run(2 * time.Millisecond)
	}
	a, b := run(), run()
	if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Msgs != b.Msgs ||
		a.WireMsgs != b.WireMsgs || a.CoalescedPayloads != b.CoalescedPayloads ||
		a.Duration != b.Duration {
		t.Fatalf("same-seed adaptive runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestAdaptiveFlushSizeTriggerDegenerates: with FlushBytes=1 every staged
// entry satisfies the size trigger at every soft flush point, so the
// adaptive plane must be BIT-IDENTICAL to the plain coalescing plane — same
// emission order, same virtual instants, same wire message count. This pins
// two properties at once: the size trigger emits whole entries in staged
// order (a burst is never split or reordered), and turning adaptive off
// loses nothing but the deferral.
func TestAdaptiveFlushSizeTriggerDegenerates(t *testing.T) {
	run := func(adaptive bool) *Stats {
		s := adaptiveSystem(t, 13, func(c *Config) {
			if adaptive {
				c.AdaptiveFlush = true
				c.FlushBytes = 1
				c.FlushAge = time.Hour // never the deciding trigger
			}
		})
		const accounts = 48
		base := s.Mem.Alloc(accounts, 0)
		s.SpawnWorkers(func(rt *Runtime) {
			r := rt.Rand()
			for !rt.Stopped() {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				rt.Run(func(tx *Tx) {
					f := tx.Read(base + mem.Addr(from))
					tv := tx.Read(base + mem.Addr(to))
					tx.Write(base+mem.Addr(from), f-1)
					tx.Write(base+mem.Addr(to), tv+1)
				})
				rt.AddOps(1)
			}
		})
		return s.Run(2 * time.Millisecond)
	}
	off, on := run(false), run(true)
	if off.Commits != on.Commits || off.Aborts != on.Aborts || off.Msgs != on.Msgs ||
		off.MsgBytes != on.MsgBytes || off.WireMsgs != on.WireMsgs ||
		off.CoalescedPayloads != on.CoalescedPayloads || off.Duration != on.Duration {
		t.Fatalf("FlushBytes=1 adaptive run diverged from plain coalescing:\noff %+v\non  %+v", off, on)
	}
}

// TestAdaptiveFlushContendedConserves: under real contention deferred
// releases interact with lock stealing (an enemy can revoke a lock whose
// release is still staged). The run must drain with money conserved, no
// leaked locks, and a clean serializability audit.
func TestAdaptiveFlushContendedConserves(t *testing.T) {
	s := adaptiveSystem(t, 3, func(c *Config) { c.AdaptiveFlush = true })
	s.EnableAudit()
	const accounts = 48
	base := s.Mem.Alloc(accounts, 0)
	initial := make(map[mem.Addr]uint64, accounts)
	for i := 0; i < accounts; i++ {
		s.Mem.WriteRaw(base+mem.Addr(i), 100)
		initial[base+mem.Addr(i)] = 100
	}
	s.SpawnWorkers(func(rt *Runtime) {
		r := rt.Rand()
		for i := 0; i < 30; i++ {
			from := r.Intn(accounts)
			to := (from + 1 + r.Intn(accounts-1)) % accounts
			rt.Run(func(tx *Tx) {
				f := tx.Read(base + mem.Addr(from))
				tv := tx.Read(base + mem.Addr(to))
				tx.Write(base+mem.Addr(from), f-1)
				tx.Write(base+mem.Addr(to), tv+1)
			})
		}
	})
	st := s.RunToCompletion()
	if st.Commits == 0 {
		t.Fatal("nothing committed")
	}
	if err := s.CheckAudit(initial); err != nil {
		t.Fatalf("audit failed: %v", err)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked", leaked)
	}
	var total uint64
	for i := 0; i < accounts; i++ {
		total += s.Mem.ReadRaw(base + mem.Addr(i))
	}
	if want := uint64(accounts) * 100; total != want {
		t.Fatalf("money not conserved: %d != %d", total, want)
	}
}

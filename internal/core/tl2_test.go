package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/placement"
)

func tl2System(t *testing.T, mut func(*Config)) *System {
	t.Helper()
	return testSystem(t, func(c *Config) {
		c.Protocol = ProtocolTL2
		if mut != nil {
			mut(c)
		}
	})
}

func TestParseProtocol(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Protocol
		ok   bool
	}{
		{"", ProtocolVisible, true},
		{"visible", ProtocolVisible, true},
		{"tl2", ProtocolTL2, true},
		{"TL2", ProtocolVisible, false},
		{"eager", ProtocolVisible, false},
	} {
		got, err := ParseProtocol(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseProtocol(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ProtocolTL2.String() != "tl2" || ProtocolVisible.String() != "visible" {
		t.Error("protocol names wrong")
	}
}

// TestTL2PureReadZeroMessages is the tentpole's core claim at its extreme: a
// workload that only reads sends NOTHING — no read-lock requests, no commit
// traffic, not a single wire message — yet commits consistent transactions.
func TestTL2PureReadZeroMessages(t *testing.T) {
	s := tl2System(t, nil)
	pool := s.Mem.Alloc(64, 0)
	for i := 0; i < 64; i++ {
		s.Mem.WriteRaw(pool+mem.Addr(i), uint64(i))
	}
	s.SpawnWorkers(func(rt *Runtime) {
		r := rt.Rand()
		for i := 0; i < 25; i++ {
			rt.RunKind(ReadOnly, func(tx *Tx) {
				a := mem.Addr(r.Intn(64))
				b := mem.Addr(r.Intn(64))
				if tx.Read(pool+a) != uint64(a) || tx.Read(pool+b) != uint64(b) {
					t.Error("read-only transaction saw a wrong value")
				}
			})
			rt.AddOps(1)
		}
	})
	st := s.RunToCompletion()
	if st.Commits == 0 {
		t.Fatal("no commits")
	}
	if st.Msgs != 0 || st.WireMsgs != 0 || st.ReadLockReqs != 0 || st.WriteLockReqs != 0 {
		t.Fatalf("pure-read tl2 run sent traffic: msgs=%d wire=%d rdlk=%d wrlk=%d",
			st.Msgs, st.WireMsgs, st.ReadLockReqs, st.WriteLockReqs)
	}
	if st.LocalReads == 0 {
		t.Fatal("no local reads counted")
	}
	if st.ClockAdvances != 0 {
		t.Fatalf("pure readers ticked the clock %d times", st.ClockAdvances)
	}
}

// tl2TransferWorker is a contended bank: transfers between accounts drawn
// from a small pool, plus occasional full balance scans, all under TL2.
func tl2TransferWorker(pool mem.Addr, accounts, ops int) func(rt *Runtime) {
	return func(rt *Runtime) {
		r := rt.Rand()
		for i := 0; i < ops; i++ {
			if r.Intn(100) < 20 {
				var sum uint64
				rt.RunKind(ReadOnly, func(tx *Tx) {
					sum = 0
					for a := 0; a < accounts; a++ {
						sum += tx.Read(pool + mem.Addr(a))
					}
				})
				if sum != uint64(accounts)*100 {
					panic("balance scan saw non-conserved total")
				}
			} else {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				rt.Run(func(tx *Tx) {
					f := tx.Read(pool + mem.Addr(from))
					tv := tx.Read(pool + mem.Addr(to))
					tx.Write(pool+mem.Addr(from), f-1)
					tx.Write(pool+mem.Addr(to), tv+1)
				})
			}
			rt.AddOps(1)
		}
	}
}

// TestTL2BankAuditSerializable runs the contended bank under TL2 across
// several seeds with the serializability audit on: every committed
// transaction — update or pure read, any kind — must fit the serial order
// given by the recorded TL2 serialization instants.
func TestTL2BankAuditSerializable(t *testing.T) {
	const accounts = 24
	for _, seed := range []uint64{1, 2, 3, 9} {
		s := tl2System(t, func(c *Config) { c.Seed = seed })
		s.EnableAudit()
		pool := s.Mem.Alloc(accounts, 0)
		initial := make(map[mem.Addr]uint64)
		for i := 0; i < accounts; i++ {
			s.Mem.WriteRaw(pool+mem.Addr(i), 100)
			initial[pool+mem.Addr(i)] = 100
		}
		s.SpawnWorkers(tl2TransferWorker(pool, accounts, 30))
		st := s.RunToCompletion()
		if st.Commits == 0 {
			t.Fatalf("seed %d: no commits", seed)
		}
		if err := s.CheckAudit(initial); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var sum uint64
		for i := 0; i < accounts; i++ {
			sum += s.Mem.ReadRaw(pool + mem.Addr(i))
		}
		if sum != accounts*100 {
			t.Fatalf("seed %d: money not conserved: %d", seed, sum)
		}
		if leaked := s.LockedAddrs(); leaked != 0 {
			t.Fatalf("seed %d: %d locks leaked", seed, leaked)
		}
		if st.ClockAdvances == 0 || st.LocalReads == 0 {
			t.Fatalf("seed %d: tl2 counters flat: ticks=%d localreads=%d",
				seed, st.ClockAdvances, st.LocalReads)
		}
		if st.Revalidations == 0 {
			t.Fatalf("seed %d: update commits revalidated nothing", seed)
		}
	}
}

// TestTL2DoomedReadDetection pins the opacity mechanism: a reader whose
// snapshot predates a concurrent commit must abort the attempt (a doomed
// read), never observe a torn pair. The writer keeps x+y invariant; the
// reader stretches the window between reading x and y with local compute so
// writer commits land inside it.
func TestTL2DoomedReadDetection(t *testing.T) {
	s := tl2System(t, func(c *Config) { c.TotalCores = 4; c.ServiceCores = 2 })
	pool := s.Mem.Alloc(2, 0)
	s.Mem.WriteRaw(pool, 1000)
	s.Mem.WriteRaw(pool+1, 1000)
	s.SpawnWorkers(func(rt *Runtime) {
		switch rt.AppIndex() {
		case 0: // writer: move value between the pair, preserving the sum
			for i := 0; i < 200; i++ {
				rt.Run(func(tx *Tx) {
					x := tx.Read(pool)
					y := tx.Read(pool + 1)
					tx.Write(pool, x-1)
					tx.Write(pool+1, y+1)
				})
			}
		case 1: // reader: wide window between the two reads
			for i := 0; i < 60; i++ {
				rt.RunKind(ReadOnly, func(tx *Tx) {
					x := tx.Read(pool)
					rt.Compute(20 * time.Microsecond)
					y := tx.Read(pool + 1)
					if x+y != 2000 {
						t.Errorf("torn read: x=%d y=%d", x, y)
					}
				})
			}
		}
	})
	st := s.RunToCompletion()
	if st.Commits == 0 {
		t.Fatal("no commits")
	}
	if st.DoomedReads == 0 {
		t.Fatal("no doomed read detected: the reader's window never observed a newer version, test lost its teeth")
	}
}

// TestTL2AllKindsStrictAudit runs every transaction kind under TL2 — where
// each degenerates to the same invisible-read semantics and the audit
// checks reads strictly for all of them, elastic kinds included.
func TestTL2AllKindsStrictAudit(t *testing.T) {
	for _, kind := range []TxKind{Normal, ElasticEarly, ElasticRead, ReadOnly} {
		t.Run(kind.String(), func(t *testing.T) {
			s := tl2System(t, nil)
			s.EnableAudit()
			pool := s.Mem.Alloc(16, 0)
			initial := make(map[mem.Addr]uint64)
			for i := 0; i < 16; i++ {
				s.Mem.WriteRaw(pool+mem.Addr(i), 50)
				initial[pool+mem.Addr(i)] = 50
			}
			kind := kind
			s.SpawnWorkers(func(rt *Runtime) {
				r := rt.Rand()
				for i := 0; i < 20; i++ {
					rt.RunKind(kind, func(tx *Tx) {
						a := pool + mem.Addr(r.Intn(16))
						b := pool + mem.Addr(r.Intn(16))
						va, vb := tx.Read(a), tx.Read(b)
						if kind == ElasticEarly {
							tx.EarlyRelease(a) // must be a no-op under tl2
						}
						if kind != ReadOnly && a != b {
							tx.Write(a, va-1)
							tx.Write(b, vb+1)
						}
					})
					rt.AddOps(1)
				}
			})
			st := s.RunToCompletion()
			if st.Commits == 0 {
				t.Fatal("no commits")
			}
			if err := s.CheckAudit(initial); err != nil {
				t.Fatal(err)
			}
			if st.EarlyReleases != 0 {
				t.Fatalf("EarlyRelease sent %d messages under tl2", st.EarlyReleases)
			}
			if leaked := s.LockedAddrs(); leaked != 0 {
				t.Fatalf("%d locks leaked", leaked)
			}
		})
	}
}

// TestTL2ConfigMatrix drives TL2 through the acquisition/transport variants
// it must compose with: eager acquisition, serial commit RPC, the
// coalescing plane, unbatched write locks, multitask deployment, and a
// coarser lock granule. Conservation plus audit in each cell.
func TestTL2ConfigMatrix(t *testing.T) {
	muts := map[string]func(*Config){
		"eager":     func(c *Config) { c.Acquire = Eager },
		"serialrpc": func(c *Config) { c.SerialRPC = true },
		"coalesce":  func(c *Config) { c.Coalesce = true },
		"nobatch":   func(c *Config) { c.NoBatching = true },
		"multitask": func(c *Config) { c.Deployment = Multitask; c.TotalCores = 4 },
		"granule4":  func(c *Config) { c.LockGranule = 4 },
	}
	for name, mut := range muts {
		t.Run(name, func(t *testing.T) {
			const accounts = 16
			s := tl2System(t, mut)
			s.EnableAudit()
			pool := s.Mem.Alloc(accounts, 0)
			initial := make(map[mem.Addr]uint64)
			for i := 0; i < accounts; i++ {
				s.Mem.WriteRaw(pool+mem.Addr(i), 100)
				initial[pool+mem.Addr(i)] = 100
			}
			s.SpawnWorkers(tl2TransferWorker(pool, accounts, 20))
			st := s.RunToCompletion()
			if st.Commits == 0 {
				t.Fatal("no commits")
			}
			if err := s.CheckAudit(initial); err != nil {
				t.Fatal(err)
			}
			var sum uint64
			for i := 0; i < accounts; i++ {
				sum += s.Mem.ReadRaw(pool + mem.Addr(i))
			}
			if sum != accounts*100 {
				t.Fatalf("money not conserved: %d", sum)
			}
			if leaked := s.LockedAddrs(); leaked != 0 {
				t.Fatalf("%d locks leaked", leaked)
			}
		})
	}
}

// TestTL2Determinism: same seed, same schedule, same counters — the TL2
// paths (snapshot, doomed aborts, revalidation) must stay deterministic on
// the sim backend.
func TestTL2Determinism(t *testing.T) {
	run := func() (uint64, Stats) {
		s := tl2System(t, func(c *Config) { c.Seed = 21 })
		pool := s.Mem.Alloc(16, 0)
		for i := 0; i < 16; i++ {
			s.Mem.WriteRaw(pool+mem.Addr(i), 100)
		}
		s.K.EnableTraceHash()
		s.SpawnWorkers(tl2TransferWorker(pool, 16, 25))
		st := s.RunToCompletion()
		return s.K.TraceHash(), *st
	}
	h1, st1 := run()
	h2, st2 := run()
	if h1 != h2 {
		t.Fatalf("trace hashes differ: %#x != %#x", h1, h2)
	}
	if st1.Commits != st2.Commits || st1.Aborts != st2.Aborts ||
		st1.Msgs != st2.Msgs || st1.LocalReads != st2.LocalReads ||
		st1.DoomedReads != st2.DoomedReads || st1.ClockAdvances != st2.ClockAdvances ||
		st1.Revalidations != st2.Revalidations {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", st1, st2)
	}
}

// TestTL2WireReductionVsVisible is the unit-level version of the abltl2
// gate: on a read-mostly workload, TL2 must send dramatically fewer wire
// messages per op than the visible protocol.
func TestTL2WireReductionVsVisible(t *testing.T) {
	run := func(proto Protocol) *Stats {
		s := testSystem(t, func(c *Config) { c.Protocol = proto })
		pool := s.Mem.Alloc(32, 0)
		for i := 0; i < 32; i++ {
			s.Mem.WriteRaw(pool+mem.Addr(i), 100)
		}
		s.SpawnWorkers(func(rt *Runtime) {
			r := rt.Rand()
			for i := 0; i < 30; i++ {
				if r.Intn(100) < 10 {
					from := r.Intn(32)
					to := (from + 1 + r.Intn(31)) % 32
					rt.Run(func(tx *Tx) {
						f := tx.Read(pool + mem.Addr(from))
						tv := tx.Read(pool + mem.Addr(to))
						tx.Write(pool+mem.Addr(from), f-1)
						tx.Write(pool+mem.Addr(to), tv+1)
					})
				} else {
					rt.RunKind(ReadOnly, func(tx *Tx) {
						for j := 0; j < 8; j++ {
							tx.Read(pool + mem.Addr(r.Intn(32)))
						}
					})
				}
				rt.AddOps(1)
			}
		})
		return s.RunToCompletion()
	}
	vis, tl2 := run(ProtocolVisible), run(ProtocolTL2)
	if vis.Ops == 0 || tl2.Ops == 0 {
		t.Fatal("no ops")
	}
	visWire := float64(vis.WireMsgs) / float64(vis.Ops)
	tl2Wire := float64(tl2.WireMsgs) / float64(tl2.Ops)
	if tl2Wire > 0.4*visWire {
		t.Fatalf("tl2 wire/op %.2f vs visible %.2f: reduction below 60%%", tl2Wire, visWire)
	}
}

// TestTL2IrrevocableUnsupported: RunIrrevocable must refuse loudly under
// tl2 instead of silently racing invisible readers.
func TestTL2IrrevocableUnsupported(t *testing.T) {
	s := tl2System(t, nil)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		defer func() {
			r := recover()
			if r == nil {
				t.Error("RunIrrevocable did not panic under tl2")
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "visible protocol") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
		rt.RunIrrevocable(func(ir *Irrevocable) {})
	})
	s.RunToCompletion()
}

// TestStaleNackHintSteersRetry pins the NACK piggyback satellite with a
// deterministic migration: one stripe is frozen for a move; the first
// request to the old owner completes the empty handoff and NACKs with the
// new owner's identity, and the requester's retry follows the hint (counted
// in Stats.StaleNackHints) straight to the new owner — no directory
// re-resolution round.
func TestStaleNackHintSteersRetry(t *testing.T) {
	cfg := Config{
		Platform:         noc.SCC(0),
		Seed:             7,
		TotalCores:       4,
		ServiceCores:     2,
		Policy:           cm.FairCM,
		Placement:        placement.Adaptive,
		RepartitionEpoch: 1 << 30, // no automatic rounds; the test drives the move
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Mem.Alloc(8, 0)
	dir := s.Placement()
	key := s.lockKey(addr)
	stripe := dir.StripeOf(key)
	from := dir.Owner(key)
	to := (from + 1) % s.NumServiceCores()
	if !dir.InitiateMove(stripe, to) {
		t.Fatal("InitiateMove refused")
	}

	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.Run(func(tx *Tx) {
			tx.Write(addr, tx.Read(addr)+41)
		})
		rt.AddOps(1)
	})
	st := s.RunToCompletion()

	if st.Commits != 1 {
		t.Fatalf("commits = %d, want 1", st.Commits)
	}
	if st.StaleNacks == 0 {
		t.Fatal("request to the frozen stripe was not NACKed")
	}
	if st.StaleNackHints == 0 {
		t.Fatal("the NACK carried no usable owner hint (or the requester ignored it)")
	}
	if st.StaleNackHints > st.StaleNacks {
		t.Fatalf("hints used (%d) exceed NACKs issued (%d)", st.StaleNackHints, st.StaleNacks)
	}
	if got := dir.Owner(key); got != to {
		t.Fatalf("key owned by node %d after handoff, want %d", got, to)
	}
	if got := s.Mem.ReadRaw(addr); got != 41 {
		t.Fatalf("mem[addr] = %d, want 41", got)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked", leaked)
	}
}

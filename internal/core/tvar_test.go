package core

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

// testRecord is a fixed-size application struct exercising FuncCodec.
type testRecord struct {
	ID    uint64
	Score int64
	Live  bool
	Next  mem.Addr
}

var testRecordCodec = FuncCodec(4,
	func(r testRecord, dst []uint64) {
		dst[0] = r.ID
		dst[1] = uint64(r.Score)
		if r.Live {
			dst[2] = 1
		} else {
			dst[2] = 0
		}
		dst[3] = uint64(r.Next)
	},
	func(src []uint64) testRecord {
		return testRecord{
			ID:    src[0],
			Score: int64(src[1]),
			Live:  src[2] != 0,
			Next:  mem.Addr(src[3]),
		}
	},
)

// roundTrip encodes v and decodes it back through c.
func roundTrip[T any](c WordCodec[T], v T) T {
	buf := make([]uint64, c.Words())
	c.Encode(v, buf)
	return c.Decode(buf)
}

// TestCodecRoundTripProperty drives every supported codec instantiation
// with arbitrary values and asserts Decode(Encode(v)) == v.
func TestCodecRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(v uint64) bool { return roundTrip(Uint64Codec(), v) == v }, nil); err != nil {
		t.Errorf("uint64 codec: %v", err)
	}
	if err := quick.Check(func(v int64) bool { return roundTrip(Int64Codec(), v) == v }, nil); err != nil {
		t.Errorf("int64 codec: %v", err)
	}
	for _, v := range []bool{true, false} {
		if roundTrip(BoolCodec(), v) != v {
			t.Errorf("bool codec mangles %v", v)
		}
	}
	if err := quick.Check(func(v uint64) bool {
		a := mem.Addr(v)
		return roundTrip(AddrCodec(), a) == a
	}, nil); err != nil {
		t.Errorf("addr codec: %v", err)
	}
	if err := quick.Check(func(id uint64, score int64, live bool, next uint64) bool {
		r := testRecord{ID: id, Score: score, Live: live, Next: mem.Addr(next)}
		return roundTrip(testRecordCodec, r) == r
	}, nil); err != nil {
		t.Errorf("struct FuncCodec: %v", err)
	}
}

// TestCodecWidths pins the word counts the lock protocol depends on.
func TestCodecWidths(t *testing.T) {
	if Uint64Codec().Words() != 1 || Int64Codec().Words() != 1 ||
		BoolCodec().Words() != 1 || AddrCodec().Words() != 1 {
		t.Fatal("scalar codecs must be one word")
	}
	if testRecordCodec.Words() != 4 {
		t.Fatal("record codec width wrong")
	}
}

// TestFuncCodecValidation: invalid FuncCodec arguments panic at
// construction, not first use.
func TestFuncCodecValidation(t *testing.T) {
	for name, build := range map[string]func(){
		"zero words": func() { FuncCodec(0, func(uint64, []uint64) {}, func([]uint64) uint64 { return 0 }) },
		"nil enc":    func() { FuncCodec(1, nil, func([]uint64) uint64 { return 0 }) },
		"nil dec":    func() { FuncCodec[uint64](1, func(uint64, []uint64) {}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			build()
		}()
	}
}

// TestTVarTransactionalRoundTrip runs a typed Set/Get of every built-in
// instantiation plus the struct codec through real transactions.
func TestTVarTransactionalRoundTrip(t *testing.T) {
	s := testSystem(t, nil)
	u := NewTVar(s, Uint64Codec(), 7)
	i := NewTVar(s, Int64Codec(), -3)
	b := NewTVar(s, BoolCodec(), false)
	a := NewTVar(s, AddrCodec(), mem.Nil)
	r := NewTVar(s, testRecordCodec, testRecord{})

	if u.GetRaw() != 7 || i.GetRaw() != -3 || b.GetRaw() || a.GetRaw() != mem.Nil {
		t.Fatal("initial raw values wrong")
	}

	want := testRecord{ID: 9, Score: -42, Live: true, Next: u.Addr()}
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.Run(func(tx *Tx) {
			u.Set(tx, u.Get(tx)+1)
			i.Set(tx, i.Get(tx)-1)
			b.Set(tx, !b.Get(tx))
			a.Set(tx, u.Addr())
			r.Set(tx, want)
		})
	})
	s.RunToCompletion()

	if got := u.GetRaw(); got != 8 {
		t.Errorf("uint64 TVar = %d, want 8", got)
	}
	if got := i.GetRaw(); got != -4 {
		t.Errorf("int64 TVar = %d, want -4", got)
	}
	if !b.GetRaw() {
		t.Error("bool TVar not flipped")
	}
	if got := a.GetRaw(); got != u.Addr() {
		t.Errorf("addr TVar = %#x, want %#x", uint64(got), uint64(u.Addr()))
	}
	if got := r.GetRaw(); got != want {
		t.Errorf("record TVar = %+v, want %+v", got, want)
	}
	// A view over the same base observes the same object.
	if got := TVarAt(s, testRecordCodec, r.Addr()).GetRaw(); got != want {
		t.Errorf("TVarAt view = %+v, want %+v", got, want)
	}
}

// TestTVarPlacement: the Near/At constructors place the allocation behind
// the requested memory controller.
func TestTVarPlacement(t *testing.T) {
	s := testSystem(t, nil)
	mcs := s.Platform().MCCount()
	if mcs < 2 {
		t.Skip("platform has a single memory controller")
	}
	for mc := 0; mc < mcs; mc++ {
		v := NewTVarAt(s, Uint64Codec(), mc, 1)
		if got := s.Mem.MCOf(v.Addr()); got != mc {
			t.Errorf("NewTVarAt(%d) landed on controller %d", mc, got)
		}
		arr := NewTArrayAt(s, Uint64Codec(), 4, mc, 1)
		if got := s.Mem.MCOf(arr.Addr(3)); got != mc {
			t.Errorf("NewTArrayAt(%d) landed on controller %d", mc, got)
		}
	}
	for _, coreID := range s.AppCores() {
		near := NewTVarNear(s, Uint64Codec(), coreID, 0)
		if got, want := s.Mem.MCOf(near.Addr()), s.Mem.NearestMC(coreID); got != want {
			t.Errorf("NewTVarNear(core %d) landed on controller %d, want %d", coreID, got, want)
		}
	}
}

// TestTArrayLayout: elements are contiguous, independently addressed, and
// bounds-checked.
func TestTArrayLayout(t *testing.T) {
	s := testSystem(t, nil)
	arr := NewTArray(s, testRecordCodec, 5, testRecord{ID: 1})
	for i := 0; i < arr.Len(); i++ {
		if got, want := arr.Addr(i), arr.Addr(0)+mem.Addr(i*testRecordCodec.Words()); got != want {
			t.Fatalf("element %d at %#x, want %#x", i, uint64(got), uint64(want))
		}
		if arr.GetRaw(i).ID != 1 {
			t.Fatalf("element %d not initialized", i)
		}
	}
	arr.SetRaw(2, testRecord{ID: 99})
	if arr.GetRaw(2).ID != 99 || arr.GetRaw(1).ID != 1 || arr.GetRaw(3).ID != 1 {
		t.Fatal("SetRaw bled into a neighboring element")
	}
	for _, bad := range []int{-1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("index %d did not panic", bad)
				}
			}()
			arr.Addr(bad)
		}()
	}
}

// TestTVarDirectAccess covers the charged non-transactional accessors used
// by the bare-sequential baselines.
func TestTVarDirectAccess(t *testing.T) {
	s := testSystem(t, func(cfg *Config) { cfg.ServiceCores = -1 })
	v := NewTVar(s, testRecordCodec, testRecord{ID: 5})
	want := testRecord{ID: 6, Score: 2, Live: true}
	s.SpawnRaw(func(p Port, coreID int) {
		if coreID != s.AppCores()[0] {
			return
		}
		got := v.GetDirect(p, coreID)
		if got.ID != 5 {
			t.Errorf("GetDirect = %+v", got)
		}
		v.SetDirect(p, coreID, want)
	})
	s.RunToCompletion()
	if got := v.GetRaw(); got != want {
		t.Fatalf("SetDirect wrote %+v, want %+v", got, want)
	}
	if s.Mem.Stats.Reads == 0 || s.Mem.Stats.Writes == 0 {
		t.Fatal("direct accessors did not charge memory traffic")
	}
}

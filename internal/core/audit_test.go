package core

import (
	"testing"

	"repro/internal/cm"
	"repro/internal/mem"
)

func TestAuditPassesOnConflictHeavyRun(t *testing.T) {
	for _, p := range []cm.Policy{cm.Wholly, cm.FairCM, cm.NoCM} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			accounts := 8
			if !p.StarvationFree() {
				accounts = 48
			}
			s := testSystem(t, func(c *Config) { c.Policy = p })
			s.EnableAudit()
			base := s.Mem.Alloc(accounts, 0)
			initial := make(map[mem.Addr]uint64)
			for i := 0; i < accounts; i++ {
				s.Mem.WriteRaw(base+mem.Addr(i), 100)
				initial[base+mem.Addr(i)] = 100
			}
			s.SpawnWorkers(func(rt *Runtime) {
				r := rt.Rand()
				for i := 0; i < 40; i++ {
					if i%7 == 0 {
						rt.Run(func(tx *Tx) { // read-only scan
							for a := 0; a < accounts; a++ {
								tx.Read(base + mem.Addr(a))
							}
						})
						continue
					}
					from := r.Intn(accounts)
					to := (from + 1 + r.Intn(accounts-1)) % accounts
					rt.Run(func(tx *Tx) {
						f := tx.Read(base + mem.Addr(from))
						tv := tx.Read(base + mem.Addr(to))
						tx.Write(base+mem.Addr(from), f-1)
						tx.Write(base+mem.Addr(to), tv+1)
					})
				}
			})
			s.RunToCompletion()
			if s.AuditedCommits() == 0 {
				t.Fatal("no commits recorded")
			}
			if err := s.CheckAudit(initial); err != nil {
				t.Fatalf("serializability violated: %v", err)
			}
		})
	}
}

func TestAuditCatchesFabricatedViolation(t *testing.T) {
	// Sanity: the checker is not vacuous — a hand-planted inconsistent
	// record must be flagged.
	s := testSystem(t, nil)
	s.EnableAudit()
	s.audit.records = append(s.audit.records,
		auditRecord{core: 0, txID: 1, strict: true, commit: 10, seq: 1,
			writes: []auditAccess{{base: 100, vals: []uint64{5}}}},
		auditRecord{core: 1, txID: 2, strict: true, commit: 20, seq: 2,
			reads: []auditAccess{{base: 100, vals: []uint64{4}}}}, // stale read
	)
	err := s.CheckAudit(nil)
	if err == nil {
		t.Fatal("checker accepted an inconsistent history")
	}
	v, ok := err.(*AuditViolation)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if v.Addr != 100 || v.Got != 4 || v.Want != 5 {
		t.Fatalf("violation details: %+v", v)
	}
	if v.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestAuditElasticWritesParticipateReadsExempt(t *testing.T) {
	s := testSystem(t, nil)
	s.EnableAudit()
	a := s.Mem.Alloc(1, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.RunKind(ElasticRead, func(tx *Tx) {
			tx.Write(a, tx.Read(a)+1)
		})
		rt.Run(func(tx *Tx) {
			if got := tx.Read(a); got != 1 {
				t.Errorf("normal tx read %d, want 1", got)
			}
		})
	})
	s.RunToCompletion()
	if err := s.CheckAudit(nil); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if s.AuditedCommits() != 2 {
		t.Fatalf("recorded %d commits, want 2", s.AuditedCommits())
	}
}

func TestCheckAuditWithoutEnableErrors(t *testing.T) {
	s := testSystem(t, nil)
	if err := s.CheckAudit(nil); err == nil {
		t.Fatal("CheckAudit without EnableAudit should error")
	}
}

func TestAuditReadOnlySerializesAtLastRead(t *testing.T) {
	// A long-running read-only transaction overlapping many writers must
	// still audit clean because it serializes at its last read.
	s := testSystem(t, func(c *Config) { c.Policy = cm.FairCM })
	s.EnableAudit()
	pair := s.Mem.Alloc(2, 0)
	initial := map[mem.Addr]uint64{}
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() == 0 {
			for i := 0; i < 20; i++ {
				var x, y uint64
				rt.Run(func(tx *Tx) {
					x = tx.Read(pair)
					rt.Compute(50_000) // dawdle between the two reads
					y = tx.Read(pair + 1)
				})
				if x != y {
					t.Errorf("torn pair observed: %d != %d", x, y)
				}
			}
			return
		}
		for i := 0; i < 20; i++ {
			rt.Run(func(tx *Tx) {
				x := tx.Read(pair)
				y := tx.Read(pair + 1)
				tx.Write(pair, x+1)
				tx.Write(pair+1, y+1)
			})
		}
	})
	s.RunToCompletion()
	if err := s.CheckAudit(initial); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

package core

import (
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
)

// testSystem builds a small dedicated-deployment system.
func testSystem(t *testing.T, mut func(*Config)) *System {
	t.Helper()
	cfg := Config{
		Platform:   noc.SCC(0),
		Seed:       42,
		TotalCores: 8,
		Policy:     cm.FairCM,
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{TotalCores: 1},
		{TotalCores: 100},
		{TotalCores: 4, ServiceCores: 4},
		{TotalCores: 4, ServiceCores: 7},
		{TotalCores: 4, LockGranule: 3},
	}
	for i, cfg := range cases {
		if _, err := NewSystem(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	s, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.TotalCores != 48 || cfg.ServiceCores != 24 || cfg.LockGranule != 1 {
		t.Fatalf("defaults = %d cores, %d service, granule %d", cfg.TotalCores, cfg.ServiceCores, cfg.LockGranule)
	}
	if s.NumAppCores() != 24 || s.NumServiceCores() != 24 {
		t.Fatalf("partition = %d app / %d svc", s.NumAppCores(), s.NumServiceCores())
	}
}

func TestPartitionIsDisjointAndSpread(t *testing.T) {
	s := testSystem(t, nil)
	seen := make(map[int]bool)
	for _, c := range append(s.AppCores(), s.svcCores...) {
		if seen[c] {
			t.Fatalf("core %d in both partitions", c)
		}
		seen[c] = true
	}
	if len(seen) != 8 {
		t.Fatalf("partitions cover %d cores, want 8", len(seen))
	}
}

func TestSingleTransactionReadWriteCommit(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(2, 0)
	s.Mem.WriteRaw(a, 100)
	s.Mem.WriteRaw(a+1, 50)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		attempts := rt.Run(func(tx *Tx) {
			x := tx.Read(a)
			y := tx.Read(a + 1)
			tx.Write(a, x-10)
			tx.Write(a+1, y+10)
		})
		if attempts != 1 {
			t.Errorf("uncontended tx used %d attempts", attempts)
		}
		rt.AddOps(1)
	})
	st := s.RunToCompletion()
	if got := s.Mem.ReadRaw(a); got != 90 {
		t.Errorf("a = %d, want 90", got)
	}
	if got := s.Mem.ReadRaw(a + 1); got != 60 {
		t.Errorf("a+1 = %d, want 60", got)
	}
	if st.Commits != 1 || st.Aborts != 0 || st.Ops != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ReadLockReqs != 2 || st.WriteLockReqs == 0 || st.ReleaseMsgs == 0 {
		t.Errorf("message stats = %+v", st)
	}
}

func TestReadYourWritesAndReadCaching(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	s.Mem.WriteRaw(a, 7)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.Run(func(tx *Tx) {
			if v := tx.Read(a); v != 7 {
				t.Errorf("first read = %d", v)
			}
			if v := tx.Read(a); v != 7 { // cached, no second request
				t.Errorf("cached read = %d", v)
			}
			tx.Write(a, 9)
			if v := tx.Read(a); v != 9 { // read-your-writes
				t.Errorf("read-after-write = %d", v)
			}
		})
	})
	st := s.RunToCompletion()
	if st.ReadLockReqs != 1 {
		t.Errorf("ReadLockReqs = %d, want 1 (caching broken)", st.ReadLockReqs)
	}
}

func TestMultiWordObjects(t *testing.T) {
	s := testSystem(t, nil)
	obj := s.Mem.Alloc(4, 1)
	for i := 0; i < 4; i++ {
		s.Mem.WriteRaw(obj+mem.Addr(i), uint64(i+1))
	}
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.Run(func(tx *Tx) {
			v := tx.ReadN(obj, 4)
			if len(v) != 4 || v[3] != 4 {
				t.Errorf("ReadN = %v", v)
			}
			v[0] = 999 // must not corrupt the tx cache
			w := tx.ReadN(obj, 4)
			if w[0] != 1 {
				t.Errorf("tx cache corrupted by caller mutation: %v", w)
			}
			tx.WriteN(obj, []uint64{10, 20, 30, 40})
		})
	})
	st := s.RunToCompletion()
	if st.ReadLockReqs != 1 {
		t.Errorf("multi-word object took %d read-lock requests, want 1", st.ReadLockReqs)
	}
	for i, want := range []uint64{10, 20, 30, 40} {
		if got := s.Mem.ReadRaw(obj + mem.Addr(i)); got != want {
			t.Errorf("word %d = %d, want %d", i, got, want)
		}
	}
}

// runMiniBank runs a conflict-heavy transfer workload and checks the core
// TM invariants: money is conserved and every balance snapshot observes the
// full total (an opacity witness). The contention level is chosen per
// policy: livelock-prone policies (NoCM, BackoffRetry — exactly the ones
// Figure 5(a) shows collapsing) get a lighter workload so the finite-ops
// run terminates; the starvation-free CMs are tortured on 8 hot accounts.
func runMiniBank(t *testing.T, mut func(*Config), opsPerCore int) *Stats {
	return runMiniBankN(t, mut, opsPerCore, 8)
}

func runMiniBankN(t *testing.T, mut func(*Config), opsPerCore, accounts int) *Stats {
	t.Helper()
	s := testSystem(t, mut)
	const initial = 1000
	base := s.Mem.Alloc(accounts, 0)
	for i := 0; i < accounts; i++ {
		s.Mem.WriteRaw(base+mem.Addr(i), initial)
	}
	s.SpawnWorkers(func(rt *Runtime) {
		r := rt.Rand()
		for i := 0; i < opsPerCore; i++ {
			if r.Intn(10) == 0 && accounts <= 16 {
				// balance: read everything, verify the snapshot
				var sum uint64
				rt.Run(func(tx *Tx) {
					sum = 0
					for a := 0; a < accounts; a++ {
						sum += tx.Read(base + mem.Addr(a))
					}
				})
				if sum != uint64(accounts)*initial {
					t.Errorf("balance snapshot = %d, want %d (opacity violated)", sum, uint64(accounts)*initial)
				}
			} else {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				rt.Run(func(tx *Tx) {
					f := tx.Read(base + mem.Addr(from))
					tv := tx.Read(base + mem.Addr(to))
					tx.Write(base+mem.Addr(from), f-1)
					tx.Write(base+mem.Addr(to), tv+1)
				})
			}
			rt.AddOps(1)
		}
	})
	st := s.RunToCompletion()
	var total uint64
	for i := 0; i < accounts; i++ {
		total += s.Mem.ReadRaw(base + mem.Addr(i))
	}
	if total != uint64(accounts)*initial {
		t.Errorf("money not conserved: %d != %d", total, uint64(accounts)*initial)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Errorf("%d addresses still locked after a drained run (lock leak)", leaked)
	}
	return st
}

func TestBankInvariantsUnderEveryCM(t *testing.T) {
	for _, p := range cm.Policies {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			accounts := 8
			if !p.StarvationFree() {
				// Livelock-prone policies (the Fig. 5(a) collapse) need a
				// lighter workload to terminate a finite-ops run.
				accounts = 64
			}
			st := runMiniBankN(t, func(c *Config) { c.Policy = p }, 40, accounts)
			if st.Commits == 0 {
				t.Fatal("no commits")
			}
		})
	}
}

func TestBankInvariantsEagerAcquisition(t *testing.T) {
	st := runMiniBank(t, func(c *Config) { c.Acquire = Eager }, 30)
	if st.Commits == 0 {
		t.Fatal("no commits")
	}
}

func TestBankInvariantsNoBatching(t *testing.T) {
	runMiniBank(t, func(c *Config) { c.NoBatching = true }, 30)
}

func TestBankInvariantsMultitask(t *testing.T) {
	st := runMiniBank(t, func(c *Config) { c.Deployment = Multitask }, 25)
	if st.Commits == 0 {
		t.Fatal("no commits under multitask deployment")
	}
}

func TestBankInvariantsLockGranule4(t *testing.T) {
	runMiniBank(t, func(c *Config) { c.LockGranule = 4 }, 25)
}

func TestConflictsAreDetectedAndResolved(t *testing.T) {
	st := runMiniBank(t, func(c *Config) { c.Policy = cm.Wholly }, 60)
	if st.Conflicts == 0 {
		t.Error("conflict-heavy workload reported no conflicts")
	}
	if st.Aborts == 0 {
		t.Error("expected some aborts")
	}
	if st.Revocations == 0 {
		t.Error("priority CM never aborted an enemy")
	}
}

func TestBatchingReducesMessages(t *testing.T) {
	run := func(noBatch bool) *Stats {
		s := testSystem(t, func(c *Config) { c.NoBatching = noBatch })
		base := s.Mem.Alloc(32, 0)
		s.SpawnWorkers(func(rt *Runtime) {
			if rt.AppIndex() != 0 {
				return
			}
			for i := 0; i < 5; i++ {
				rt.Run(func(tx *Tx) {
					for j := 0; j < 16; j++ {
						tx.Write(base+mem.Addr(j), uint64(i*100+j))
					}
				})
			}
		})
		return s.RunToCompletion()
	}
	batched, single := run(false), run(true)
	if batched.WriteLockReqs >= single.WriteLockReqs {
		t.Fatalf("batching did not reduce write-lock messages: %d vs %d",
			batched.WriteLockReqs, single.WriteLockReqs)
	}
	// With 4 DTM nodes, a 16-object write set needs at most 4 batched
	// requests per attempt vs 16 unbatched.
	if single.WriteLockReqs != 16*5 {
		t.Errorf("unbatched WriteLockReqs = %d, want 80", single.WriteLockReqs)
	}
}

func TestWholeSystemDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		s := testSystem(t, func(c *Config) { c.Policy = cm.Wholly })
		base := s.Mem.Alloc(4, 0)
		s.SpawnWorkers(func(rt *Runtime) {
			r := rt.Rand()
			for i := 0; i < 30; i++ {
				a := mem.Addr(r.Intn(4))
				rt.Run(func(tx *Tx) {
					v := tx.Read(base + a)
					tx.Write(base+a, v+1)
				})
			}
		})
		st := s.RunToCompletion()
		return st.Commits, st.Aborts, uint64(st.Duration)
	}
	c1, a1, d1 := run()
	c2, a2, d2 := run()
	if c1 != c2 || a1 != a2 || d1 != d2 {
		t.Fatalf("nondeterministic: (%d,%d,%d) vs (%d,%d,%d)", c1, a1, d1, c2, a2, d2)
	}
}

func TestStarvationFreedomEveryCoreCommits(t *testing.T) {
	for _, p := range []cm.Policy{cm.Wholly, cm.FairCM} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			s := testSystem(t, func(c *Config) { c.Policy = p })
			// Single hot word: every transaction conflicts.
			hot := s.Mem.Alloc(1, 0)
			s.SpawnWorkers(func(rt *Runtime) {
				for !rt.Stopped() {
					rt.Run(func(tx *Tx) {
						v := tx.Read(hot)
						tx.Write(hot, v+1)
					})
					rt.AddOps(1)
				}
			})
			st := s.Run(20 * time.Millisecond)
			for _, pc := range st.PerCore {
				if pc.Commits == 0 {
					t.Errorf("core %d starved (0 commits of %d total)", pc.Core, st.Commits)
				}
			}
			if got := s.Mem.ReadRaw(hot); got != st.Commits {
				t.Errorf("hot counter = %d, commits = %d (lost update!)", got, st.Commits)
			}
		})
	}
}

func TestDurationRunStopsAndShutsDown(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		for !rt.Stopped() {
			rt.Run(func(tx *Tx) { tx.Write(a, tx.Read(a)+1) })
			rt.AddOps(1)
		}
	})
	st := s.Run(5 * time.Millisecond)
	if st.Duration < 5_000_000 || st.Duration > 80_000_000 {
		t.Fatalf("duration = %v, want 5ms plus a short drain tail", st.Duration)
	}
	if st.Ops == 0 {
		t.Fatal("no ops in 5ms")
	}
	if s.K.Live() != 0 {
		t.Fatalf("leaked %d procs after Run", s.K.Live())
	}
	if st.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
}

func TestPerCoreStats(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(8, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		for i := 0; i < 3; i++ {
			addr := a + mem.Addr(rt.AppIndex())
			rt.Run(func(tx *Tx) { tx.Write(addr, 1) })
			rt.AddOps(1)
		}
	})
	st := s.RunToCompletion()
	if len(st.PerCore) != s.NumAppCores() {
		t.Fatalf("PerCore has %d entries", len(st.PerCore))
	}
	for _, pc := range st.PerCore {
		if pc.Commits != 3 || pc.Ops != 3 {
			t.Errorf("core %d: %+v", pc.Core, pc)
		}
	}
	if st.Commits != uint64(3*s.NumAppCores()) {
		t.Errorf("total commits = %d", st.Commits)
	}
}

func TestCommitRateAndThroughputHelpers(t *testing.T) {
	st := &Stats{Commits: 75, Aborts: 25, Ops: 100, Duration: 2_000_000}
	if st.CommitRate() != 75 {
		t.Errorf("CommitRate = %v", st.CommitRate())
	}
	if st.Throughput() != 50 {
		t.Errorf("Throughput = %v", st.Throughput())
	}
	empty := &Stats{}
	if empty.CommitRate() != 100 || empty.Throughput() != 0 {
		t.Error("zero-value stats helpers wrong")
	}
}

func TestBarrier(t *testing.T) {
	s := testSystem(t, nil)
	counter := s.Mem.Alloc(1, 0)
	var afterBarrier []uint64
	s.SpawnWorkers(func(rt *Runtime) {
		rt.Run(func(tx *Tx) { tx.Write(counter, tx.Read(counter)+1) })
		rt.Barrier()
		// After the barrier every core must observe all increments.
		afterBarrier = append(afterBarrier, s.Mem.ReadRaw(counter))
		rt.Barrier() // a second barrier must also work
	})
	s.RunToCompletion()
	for _, v := range afterBarrier {
		if v != uint64(s.NumAppCores()) {
			t.Fatalf("post-barrier observation = %d, want %d", v, s.NumAppCores())
		}
	}
}

func TestRunPanicsOnMisuse(t *testing.T) {
	s := testSystem(t, nil)
	s.SpawnWorkers(func(rt *Runtime) {})
	func() {
		defer func() { recover() }()
		s.Run(0)
		t.Error("Run(0) did not panic")
	}()
	s.RunToCompletion()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("second Run did not panic")
			}
		}()
		s.RunToCompletion()
	}()
}

func TestSpawnWorkersTwicePanics(t *testing.T) {
	s := testSystem(t, nil)
	s.SpawnWorkers(func(rt *Runtime) {})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	s.SpawnWorkers(func(rt *Runtime) {})
}

func TestUserPanicPropagates(t *testing.T) {
	s := testSystem(t, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("application panic swallowed by runtime")
		}
		// The kernel is now poisoned; that is fine for a crashed test.
	}()
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() == 0 {
			rt.Run(func(tx *Tx) { panic("app bug") })
		}
	})
	s.RunToCompletion()
}

func TestStatsStringsAndEnums(t *testing.T) {
	if Dedicated.String() != "dedicated" || Multitask.String() != "multitask" {
		t.Error("Deployment.String")
	}
	if Lazy.String() != "lazy" || Eager.String() != "eager" {
		t.Error("AcquireMode.String")
	}
	if Normal.String() != "normal" || ElasticEarly.String() != "elastic-early" || ElasticRead.String() != "elastic-read" {
		t.Error("TxKind.String")
	}
}

func TestLockGranuleMapsNeighborsTogether(t *testing.T) {
	s := testSystem(t, func(c *Config) { c.LockGranule = 4 })
	if s.lockKey(0x1003) != 0x1000 || s.lockKey(0x1004) != 0x1004 {
		t.Fatalf("lockKey wrong: %x %x", s.lockKey(0x1003), s.lockKey(0x1004))
	}
}

func TestNodeForStableAndInRange(t *testing.T) {
	s := testSystem(t, nil)
	for a := mem.Addr(0); a < 1000; a++ {
		n1, n2 := s.nodeFor(a), s.nodeFor(a)
		if n1 != n2 {
			t.Fatal("nodeFor not deterministic")
		}
		if n1 < 0 || n1 >= len(s.nodes) {
			t.Fatalf("nodeFor out of range: %d", n1)
		}
	}
}

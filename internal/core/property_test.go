package core

import (
	"testing"
	"testing/quick"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
)

// TestSingleCoreSequentialEquivalence drives one application core with a
// random transactional op sequence and checks that the final shared-memory
// state exactly matches a plain in-memory model: with no concurrency, TM2C
// must behave like sequential code.
func TestSingleCoreSequentialEquivalence(t *testing.T) {
	type op struct {
		Write bool
		Addr  uint8
		Val   uint8
		Span  uint8 // ops per transaction
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(seed uint64, ops []op) bool {
		s, err := NewSystem(Config{
			Platform: noc.SCC(0), Seed: seed, TotalCores: 4, Policy: cm.FairCM,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := s.Mem.Alloc(32, 0)
		model := make([]uint64, 32)
		s.SpawnWorkers(func(rt *Runtime) {
			if rt.AppIndex() != 0 {
				return
			}
			i := 0
			for i < len(ops) {
				// Group a few ops into one transaction.
				span := int(ops[i].Span%4) + 1
				end := i + span
				if end > len(ops) {
					end = len(ops)
				}
				group := ops[i:end]
				i = end
				rt.Run(func(tx *Tx) {
					for _, o := range group {
						a := base + mem.Addr(o.Addr%32)
						if o.Write {
							tx.Write(a, uint64(o.Val))
						} else {
							_ = tx.Read(a)
						}
					}
				})
				for _, o := range group {
					if o.Write {
						model[o.Addr%32] = uint64(o.Val)
					}
				}
			}
		})
		s.RunToCompletion()
		for i, want := range model {
			if got := s.Mem.ReadRaw(base + mem.Addr(i)); got != want {
				t.Logf("word %d = %d, want %d", i, got, want)
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentCounterExactness: under every starvation-free CM and every
// acquisition/batching combination, concurrent increments of disjoint and
// shared counters must never lose an update.
func TestConcurrentCounterExactness(t *testing.T) {
	type combo struct {
		pol   cm.Policy
		acq   AcquireMode
		batch bool
	}
	combos := []combo{
		{cm.Wholly, Lazy, true},
		{cm.Wholly, Eager, true},
		{cm.FairCM, Lazy, false},
		{cm.FairCM, Eager, false},
		{cm.OffsetGreedy, Lazy, true},
		{cm.BackoffRetry, Lazy, true},
	}
	for _, c := range combos {
		c := c
		name := c.pol.String() + "/" + c.acq.String()
		if !c.batch {
			name += "/nobatch"
		}
		t.Run(name, func(t *testing.T) {
			s, err := NewSystem(Config{
				Platform: noc.SCC(0), Seed: 5, TotalCores: 8,
				Policy: c.pol, Acquire: c.acq, NoBatching: !c.batch,
			})
			if err != nil {
				t.Fatal(err)
			}
			shared := s.Mem.Alloc(1, 0)
			private := s.Mem.Alloc(8, 1)
			const perCore = 25
			s.SpawnWorkers(func(rt *Runtime) {
				mine := private + mem.Addr(rt.AppIndex())
				for i := 0; i < perCore; i++ {
					rt.Run(func(tx *Tx) {
						tx.Write(shared, tx.Read(shared)+1)
						tx.Write(mine, tx.Read(mine)+1)
					})
				}
			})
			st := s.RunToCompletion()
			wantShared := uint64(perCore * s.NumAppCores())
			if got := s.Mem.ReadRaw(shared); got != wantShared {
				t.Errorf("shared counter = %d, want %d", got, wantShared)
			}
			for i := 0; i < s.NumAppCores(); i++ {
				if got := s.Mem.ReadRaw(private + mem.Addr(i)); got != perCore {
					t.Errorf("private counter %d = %d, want %d", i, got, perCore)
				}
			}
			if st.Commits != wantShared {
				t.Errorf("commits = %d, want %d", st.Commits, wantShared)
			}
		})
	}
}

// TestLifespanHistogramMatchesCommits: every committed transaction records
// exactly one lifespan, and under a starvation-free CM the longest lifespan
// stays within the run (nothing starved to the end).
func TestLifespanHistogramMatchesCommits(t *testing.T) {
	s := testSystem(t, func(c *Config) { c.Policy = cm.FairCM })
	hot := s.Mem.Alloc(1, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		for i := 0; i < 20; i++ {
			rt.Run(func(tx *Tx) { tx.Write(hot, tx.Read(hot)+1) })
		}
	})
	st := s.RunToCompletion()
	if s.TxLifespans.Count() != st.Commits {
		t.Fatalf("lifespans recorded %d != commits %d", s.TxLifespans.Count(), st.Commits)
	}
	if s.TxLifespans.Max() > st.Duration {
		t.Fatalf("a lifespan (%v) exceeds the run (%v)", s.TxLifespans.Max(), st.Duration)
	}
	if s.TxLifespans.Quantile(0.5) <= 0 {
		t.Fatal("degenerate lifespan distribution")
	}
}

// TestDeterminismAcrossConfigs: the full system must be reproducible for
// every deployment/CM combination.
func TestDeterminismAcrossConfigs(t *testing.T) {
	run := func(dep Deployment, pol cm.Policy) (uint64, uint64) {
		s, err := NewSystem(Config{
			Platform: noc.SCC(0), Seed: 99, TotalCores: 6,
			Deployment: dep, Policy: pol,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := s.Mem.Alloc(4, 0)
		s.SpawnWorkers(func(rt *Runtime) {
			r := rt.Rand()
			for i := 0; i < 20; i++ {
				a := base + mem.Addr(r.Intn(4))
				rt.Run(func(tx *Tx) { tx.Write(a, tx.Read(a)+1) })
			}
		})
		st := s.RunToCompletion()
		return st.Aborts, uint64(st.Duration)
	}
	// NoCM is deliberately excluded: four cores incrementing four hot words
	// without contention management is the paper's WAR livelock (§5.3) and
	// a finite-ops run would never terminate.
	for _, dep := range []Deployment{Dedicated, Multitask} {
		for _, pol := range []cm.Policy{cm.BackoffRetry, cm.Wholly, cm.FairCM} {
			a1, d1 := run(dep, pol)
			a2, d2 := run(dep, pol)
			if a1 != a2 || d1 != d2 {
				t.Errorf("%v/%v nondeterministic: (%d,%d) vs (%d,%d)", dep, pol, a1, d1, a2, d2)
			}
		}
	}
}

package core

import (
	"fmt"
	"time"

	"repro/internal/dslock"
	"repro/internal/hist"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/placement"
	"repro/internal/sim"
)

// System is one TM2C instance: a simulated many-core with a DTM service
// partition and an application partition (Figure 1). Build it with
// NewSystem, allocate shared data through Mem, start application code with
// SpawnWorkers, then call Run exactly once.
type System struct {
	cfg Config

	K    *sim.Kernel
	Mem  *mem.Memory
	Regs *mem.Registers

	// TxLifespans aggregates every committed transaction's lifespan (first
	// attempt start to commit, §4.1). Under a starvation-free CM the tail
	// stays bounded even on conflict-heavy workloads.
	TxLifespans hist.Histogram

	// CommitLatency aggregates the commit-phase latency of every committed
	// transaction: from commit entry through lock acquisition, persist and
	// the release burst. The rpc ablation (ablrpc) reads it to compare
	// serial against scatter-gather lock acquisition.
	CommitLatency hist.Histogram

	appCores []int // physical IDs of application cores
	svcCores []int // physical IDs of DTM cores (== appCores under Multitask)
	isSvc    map[int]bool

	nodes     []*dtmNode
	nodeProcs []*sim.Proc
	runtimes  []*Runtime
	dir       *placement.Directory // key→DTM-node directory (nil on raw-only systems)

	deadline sim.Time
	stats    Stats
	audit    *auditor
	spawned  bool
	ran      bool
}

// NewSystem validates cfg and builds the system. Under Dedicated deployment
// the DTM service procs are spawned immediately; application workers are
// attached with SpawnWorkers.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		K:     sim.New(cfg.Seed),
		isSvc: make(map[int]bool),
	}
	s.Mem = mem.New(&s.cfg.Platform)
	s.Regs = mem.NewRegisters(&s.cfg.Platform)

	if cfg.Deployment == Multitask {
		for c := 0; c < cfg.TotalCores; c++ {
			s.appCores = append(s.appCores, c)
			s.svcCores = append(s.svcCores, c)
			s.isSvc[c] = true
		}
	} else {
		// Spread the service cores evenly across the core list (and hence
		// across the mesh) so neither partition clusters in one corner.
		total, svc := cfg.TotalCores, cfg.ServiceCores
		for c := 0; c < total; c++ {
			if ((c+1)*svc)/total > (c*svc)/total {
				s.svcCores = append(s.svcCores, c)
				s.isSvc[c] = true
			} else {
				s.appCores = append(s.appCores, c)
			}
		}
	}
	for i, c := range s.svcCores {
		s.nodes = append(s.nodes, &dtmNode{s: s, idx: i, core: c, table: dslock.NewTable()})
	}
	if len(s.nodes) > 0 {
		dir, err := placement.New(placement.Config{
			Nodes:     len(s.nodes),
			Kind:      cfg.Placement,
			EvalEvery: cfg.RepartitionEpoch,
		})
		if err != nil {
			return nil, err
		}
		s.dir = dir
	}
	s.nodeProcs = make([]*sim.Proc, len(s.nodes))
	if cfg.Deployment == Dedicated {
		for _, n := range s.nodes {
			n := n
			s.nodeProcs[n.idx] = s.K.Spawn(fmt.Sprintf("dtm%d", n.core), n.serveLoop)
		}
	}
	return s, nil
}

// Config returns the normalized configuration.
func (s *System) Config() Config { return s.cfg }

// Platform returns the system's timing model.
func (s *System) Platform() *noc.Platform { return &s.cfg.Platform }

// NumAppCores returns the number of application cores.
func (s *System) NumAppCores() int { return len(s.appCores) }

// NumServiceCores returns the number of DTM nodes.
func (s *System) NumServiceCores() int { return len(s.svcCores) }

// AppCores returns the physical IDs of the application cores.
func (s *System) AppCores() []int { return append([]int(nil), s.appCores...) }

// SpawnWorkers starts one application worker per app core. The worker
// receives the core's Runtime and typically loops until Runtime.Stopped.
// Under Multitask deployment the same proc also serves the core's DTM node:
// incoming requests are handled whenever the application blocks or reaches a
// transaction boundary.
func (s *System) SpawnWorkers(worker func(rt *Runtime)) {
	if s.spawned {
		panic("core: SpawnWorkers called twice")
	}
	if len(s.nodes) == 0 {
		panic("core: SpawnWorkers on a raw-only system (ServiceCores: -1)")
	}
	s.spawned = true
	for i, c := range s.appCores {
		rt := &Runtime{
			s:      s,
			core:   c,
			appIdx: i,
			stats:  CoreStats{Core: c},
		}
		if s.cfg.Deployment == Multitask {
			rt.node = s.nodes[i] // svcCores == appCores, same index
		}
		s.runtimes = append(s.runtimes, rt)
	}
	for _, rt := range s.runtimes {
		rt := rt
		p := s.K.Spawn(fmt.Sprintf("app%d", rt.core), func(p *sim.Proc) {
			rt.proc = p
			rt.initLocal()
			worker(rt)
			if rt.node != nil {
				// Keep serving DTM requests after the workload finishes.
				for {
					m := p.Recv()
					rt.node.handle(p, m)
				}
			}
		})
		if rt.node != nil {
			// Register the proc before any worker starts so that requests
			// routed to this node never observe a nil destination.
			s.nodeProcs[rt.node.idx] = p
		}
	}
}

// SpawnRaw starts one plain proc per application core, without the
// transactional runtime. Non-transactional baselines (sequential code, the
// global-lock bank) use it; they access Mem and Regs directly and report
// completed operations through AddOps.
func (s *System) SpawnRaw(worker func(p *sim.Proc, core int)) {
	if s.spawned {
		panic("core: SpawnRaw after workers already spawned")
	}
	s.spawned = true
	for _, c := range s.appCores {
		c := c
		s.K.Spawn(fmt.Sprintf("raw%d", c), func(p *sim.Proc) { worker(p, c) })
	}
}

// AddOps records n completed application-level operations (used by
// non-transactional baselines; transactional workers use Runtime.AddOps).
func (s *System) AddOps(n int) { s.stats.Ops += uint64(n) }

// Deadline returns the virtual stop time (set by Run).
func (s *System) Deadline() sim.Time { return s.deadline }

// Run executes the simulation until the virtual deadline d, then lets
// in-flight transactions drain (workers observe Stopped and exit, so no new
// work starts), snapshots the statistics, and tears the simulated machine
// down. The graceful drain guarantees that shared memory is never left with
// a half-persisted write set. Run must be called exactly once.
func (s *System) Run(d time.Duration) *Stats {
	if s.ran {
		panic("core: Run called twice")
	}
	if d <= 0 {
		panic("core: Run with non-positive duration")
	}
	s.ran = true
	s.deadline = sim.Time(d)
	// Hard cap at 6x the deadline: the drain tail must accommodate one
	// last long transaction (e.g. a full bank balance scan), but a
	// pathological livelock among the final in-flight transactions must
	// not hang the host process.
	s.K.Run(s.deadline * 6)
	s.snapshot(s.K.Now())
	s.K.Shutdown()
	return &s.stats
}

// RunToCompletion executes until every proc has finished or blocked with no
// pending events (all finite workloads done). Tests use it for workloads
// with a fixed operation count.
func (s *System) RunToCompletion() *Stats {
	if s.ran {
		panic("core: Run called twice")
	}
	s.ran = true
	s.deadline = sim.Infinity
	s.K.Run(sim.Infinity)
	s.snapshot(s.K.Now())
	s.K.Shutdown()
	return &s.stats
}

func (s *System) snapshot(d sim.Time) {
	s.stats.Duration = d
	for _, rt := range s.runtimes {
		s.stats.Commits += rt.stats.Commits
		s.stats.Aborts += rt.stats.Aborts
		s.stats.Ops += rt.stats.Ops
		s.stats.PerCore = append(s.stats.PerCore, rt.stats)
	}
	for _, n := range s.nodes {
		s.stats.NodeLoad = append(s.stats.NodeLoad, n.reqs)
	}
	if s.dir != nil {
		s.stats.RepartitionRounds = s.dir.Epochs
		s.stats.Migrations = s.dir.Migrations
		s.stats.Handoffs = s.dir.Handoffs
	}
}

// Stats returns the snapshot taken by Run. Valid only after Run.
func (s *System) Stats() *Stats { return &s.stats }

// LockedAddrs returns how many addresses still hold at least one lock
// across all DTM nodes. After a fully drained run it must be zero: every
// commit and every abort releases all of its locks. Tests use it as a
// lock-leak detector.
func (s *System) LockedAddrs() int {
	total := 0
	for _, n := range s.nodes {
		total += n.table.Size()
	}
	return total
}

// lockKey maps an object base address to its lock stripe.
func (s *System) lockKey(addr mem.Addr) mem.Addr {
	return addr &^ mem.Addr(s.cfg.LockGranule-1)
}

// Placement returns the key→DTM-node directory (nil on raw-only systems).
func (s *System) Placement() *placement.Directory { return s.dir }

// nodeFor maps a lock key to the responsible DTM node under the current
// placement resolution (§3.2's hash by default; see internal/placement).
func (s *System) nodeFor(key mem.Addr) int {
	return s.dir.Owner(key)
}

// recvPeers returns how many peers the receiving core polls for incoming
// messages: the size of the opposite partition under Dedicated deployment,
// everyone under Multitask.
func (s *System) recvPeers(dstCore int) int {
	if s.cfg.Deployment == Multitask {
		return s.cfg.TotalCores - 1
	}
	if s.isSvc[dstCore] {
		return len(s.appCores)
	}
	return len(s.svcCores)
}

// send transmits payload from srcCore (running in proc p) to dstProc on
// dstCore, charging the platform's message latency.
func (s *System) send(p *sim.Proc, srcCore int, dstProc *sim.Proc, dstCore int, payload any, nbytes int) {
	delay := s.cfg.Platform.MsgDelay(srcCore, dstCore, nbytes, s.recvPeers(dstCore))
	p.Send(dstProc, payload, delay)
	s.stats.Msgs++
	s.stats.MsgBytes += uint64(nbytes)
}

// compute scales a nominal duration to the platform.
func (s *System) compute(d time.Duration) time.Duration {
	return s.cfg.Platform.Compute(d)
}

package core

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dslock"
	"repro/internal/hist"
	"repro/internal/live"
	"repro/internal/mem"
	netbe "repro/internal/net"
	"repro/internal/noc"
	"repro/internal/placement"
	"repro/internal/port"
	"repro/internal/sim"
	"repro/internal/trace"
)

// System is one TM2C instance: a many-core with a DTM service partition and
// an application partition (Figure 1), executing on the backend selected by
// Config.Backend — the deterministic simulator or the real-concurrency
// goroutine backend. Build it with NewSystem, allocate shared data through
// Mem, start application code with SpawnWorkers, then call Run exactly once.
type System struct {
	cfg Config

	// K is the simulation kernel (nil on the live and net backends).
	K *sim.Kernel
	// eng is the live engine (nil on the sim and net backends).
	eng *live.Engine
	// neng is the cross-process engine (nil except on the net backend). It
	// hosts the ports of the cores this rank owns; every other core's port
	// is a Stub that serializes sends onto the owning rank's connection.
	neng *netbe.Engine

	Mem  *mem.Memory
	Regs *mem.Registers

	// TxLifespans aggregates every committed transaction's lifespan (first
	// attempt start to commit, §4.1). Under a starvation-free CM the tail
	// stays bounded even on conflict-heavy workloads. Populated at
	// snapshot time from the per-runtime shards; valid after Run.
	TxLifespans hist.Histogram

	// CommitLatency aggregates the commit-phase latency of every committed
	// transaction: from commit entry through lock acquisition, persist and
	// the release burst. The rpc ablation (ablrpc) reads it to compare
	// serial against scatter-gather lock acquisition. Valid after Run.
	CommitLatency hist.Histogram

	// Per-commit-phase latency breakdowns, populated like CommitLatency.
	// ScatterLatency covers the scatter-gather commit's send burst (batch
	// build through outbox flush), GatherLatency its response-await phase;
	// both stay empty under SerialRPC, whose round trips have no distinct
	// phases. RevalidateLatency covers the TL2 commit's read-set
	// revalidation (successful ones; a failed revalidation aborts the
	// commit). Valid after Run.
	ScatterLatency    hist.Histogram
	GatherLatency     hist.Histogram
	RevalidateLatency hist.Histogram

	appCores []int // physical IDs of application cores
	svcCores []int // physical IDs of DTM cores (== appCores under Multitask)
	isSvc    map[int]bool

	nodes     []*dtmNode
	nodePorts []port.Port
	runtimes  []*Runtime
	dir       *placement.Directory // key→DTM-node directory (nil on raw-only systems)
	clock     *mem.VClock          // TL2 global version clock (nil under the visible protocol)

	// workersDone counts the application workload loops (SpawnWorkers
	// bodies and SpawnRaw procs) still running; the live backend's Run
	// waits on it before tearing the service down. On the sim backend the
	// kernel's event queue already encodes quiescence, so it is never
	// waited on there.
	workersDone sync.WaitGroup

	// Flight-recorder state (Config.Trace; see tracing.go): the placement
	// directory's lane, the trace assembled at snapshot time, and the live
	// backend's periodic metrics snapshotter (Config.Snapshot).
	placeRec *trace.Recorder
	traceOut *trace.Trace
	snap     *trace.Snapshotter

	deadline sim.Time
	stats    Stats
	audit    *auditor
	spawned  bool
	ran      bool

	// remoteLocked is the sum of the peers' leftover lock counts, learned
	// from the post-run stats exchange (net backend; see LockedAddrs).
	remoteLocked int
}

// NewSystem validates cfg and builds the system. Under Dedicated deployment
// the DTM service procs are spawned immediately; application workers are
// attached with SpawnWorkers.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	s := &System{
		cfg:   cfg,
		isSvc: make(map[int]bool),
	}
	switch cfg.Backend {
	case BackendLive:
		s.eng = live.New(cfg.Seed)
	case BackendNet:
		sess := cfg.Net.Session
		if sess < 0 {
			sess = netbe.NextSession()
		}
		eng, err := netbe.New(netbe.Config{
			Rank:    cfg.Net.Rank,
			Ranks:   cfg.Net.Ranks,
			Addrs:   cfg.Net.Addrs,
			Session: sess,
			Seed:    cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		s.neng = eng
	default:
		s.K = sim.New(cfg.Seed)
	}
	s.Mem = mem.New(&s.cfg.Platform)
	s.Regs = mem.NewRegisters(&s.cfg.Platform)
	if s.tl2() {
		s.clock = mem.NewVClock(tl2ClockShards)
	}

	if cfg.Deployment == Multitask {
		for c := 0; c < cfg.TotalCores; c++ {
			s.appCores = append(s.appCores, c)
			s.svcCores = append(s.svcCores, c)
			s.isSvc[c] = true
		}
	} else {
		// Spread the service cores evenly across the core list (and hence
		// across the mesh) so neither partition clusters in one corner.
		total, svc := cfg.TotalCores, cfg.ServiceCores
		for c := 0; c < total; c++ {
			if ((c+1)*svc)/total > (c*svc)/total {
				s.svcCores = append(s.svcCores, c)
				s.isSvc[c] = true
			} else {
				s.appCores = append(s.appCores, c)
			}
		}
	}
	for i, c := range s.svcCores {
		s.nodes = append(s.nodes, &dtmNode{s: s, idx: i, core: c, table: dslock.NewTable()})
	}
	if len(s.nodes) > 0 {
		// The stripe universe derives from the configured memory size (one
		// region per controller, MemWords words each) so far-apart addresses
		// can never alias onto one stripe; the cluster map wires each node's
		// mesh quadrant / socket for the locality accounting and the hier
		// policy's co-mapping bias.
		clusters := make([]int, len(s.nodes))
		for i, n := range s.nodes {
			clusters[i] = s.cfg.Platform.ClusterOf(n.core)
		}
		dir, err := placement.New(placement.Config{
			Nodes:       len(s.nodes),
			Kind:        cfg.Placement,
			Span:        cfg.LockGranule,
			Regions:     cfg.Platform.MCCount(),
			RegionWords: cfg.MemWords,
			Clusters:    clusters,
			EvalEvery:   cfg.RepartitionEpoch,
		})
		if err != nil {
			return nil, err
		}
		s.dir = dir
	}
	s.setupTrace()
	if cfg.Snapshot != nil && cfg.Backend == BackendLive {
		s.snap = trace.NewSnapshotter(*cfg.Snapshot)
	}
	s.nodePorts = make([]port.Port, len(s.nodes))
	if cfg.Deployment == Dedicated {
		for _, n := range s.nodes {
			n := n
			s.nodePorts[n.idx] = s.spawnPort(fmt.Sprintf("dtm%d", n.core), n.core, n.serveLoop)
			s.hookBatches(s.nodePorts[n.idx], n.rec)
		}
	}
	return s, nil
}

// spawnPort starts fn on a fresh execution port of the configured backend,
// for the actor bound to physical core. On sim the proc is scheduled at the
// current virtual instant; on live the goroutine blocks until Run starts
// the engine; on net only the rank owning core runs fn — every other rank
// gets a Stub with the same spawn-order ID (replicated construction).
func (s *System) spawnPort(name string, core int, fn func(port.Port)) port.Port {
	if s.neng != nil {
		return s.neng.Spawn(name, s.rankOf(core), fn)
	}
	if s.eng != nil {
		return s.eng.Spawn(name, fn)
	}
	return port.SimPort{P: s.K.Spawn(name, func(p *sim.Proc) { fn(port.SimPort{P: p}) })}
}

// rankOf maps a physical core to the rank hosting it on the net backend:
// contiguous groups, core c on rank c*Ranks/TotalCores. Only meaningful
// when cfg.Net is set.
func (s *System) rankOf(core int) int {
	return core * s.cfg.Net.Ranks / s.cfg.TotalCores
}

// localCore reports whether core's execution contexts run in this process
// (always true off the net backend).
func (s *System) localCore(core int) bool {
	return s.neng == nil || s.rankOf(core) == s.cfg.Net.Rank
}

// Config returns the normalized configuration.
func (s *System) Config() Config { return s.cfg }

// Backend returns the execution backend the system runs on.
func (s *System) Backend() Backend { return s.cfg.Backend }

// Platform returns the system's timing model.
func (s *System) Platform() *noc.Platform { return &s.cfg.Platform }

// NumAppCores returns the number of application cores.
func (s *System) NumAppCores() int { return len(s.appCores) }

// NumServiceCores returns the number of DTM nodes.
func (s *System) NumServiceCores() int { return len(s.svcCores) }

// AppCores returns the physical IDs of the application cores.
func (s *System) AppCores() []int { return append([]int(nil), s.appCores...) }

// SpawnWorkers starts one application worker per app core. The worker
// receives the core's Runtime and typically loops until Runtime.Stopped.
// Under Multitask deployment the same proc also serves the core's DTM node:
// incoming requests are handled whenever the application blocks or reaches a
// transaction boundary.
func (s *System) SpawnWorkers(worker func(rt *Runtime)) {
	if s.spawned {
		panic("core: SpawnWorkers called twice")
	}
	if len(s.nodes) == 0 {
		panic("core: SpawnWorkers on a raw-only system (ServiceCores: -1)")
	}
	s.spawned = true
	for i, c := range s.appCores {
		rt := &Runtime{
			s:       s,
			core:    c,
			appIdx:  i,
			cluster: s.cfg.Platform.ClusterOf(c),
			stats:   CoreStats{Core: c},
		}
		if s.cfg.Deployment == Multitask {
			rt.node = s.nodes[i] // svcCores == appCores, same index
		}
		if s.cfg.Trace != nil {
			rt.rec = trace.NewRecorder(appActor(c), s.cfg.Trace.ActorEvents)
		}
		s.runtimes = append(s.runtimes, rt)
	}
	for _, rt := range s.runtimes {
		rt := rt
		if s.localCore(rt.core) {
			// Remote cores never run their worker here, so they must not
			// count toward this rank's drain (the DONE barrier aligns the
			// ranks afterwards).
			s.workersDone.Add(1)
		}
		p := s.spawnPort(fmt.Sprintf("app%d", rt.core), rt.core, func(p port.Port) {
			rt.initLocal()
			func() {
				// Mark the workload finished even if the worker panics, so
				// a live Run can surface the fault instead of hanging, and
				// absorb the live drain kill (see liveDrainExpired).
				defer s.workersDone.Done()
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(liveDrainKill); !ok {
							panic(r)
						}
					}
				}()
				worker(rt)
			}()
			// Adaptive flush may still hold deferred fire-and-forget entries
			// from the final transaction; emit them before the port goes
			// passive so lock tables quiesce empty.
			rt.flushOut()
			if rt.node != nil {
				// Keep serving DTM requests after the workload finishes.
				for {
					m := p.Recv()
					if s.cfg.Coalesce {
						rt.node.dispatchBurst(p, m)
					} else {
						rt.node.handle(p, m)
					}
				}
			}
		})
		// Install the port before any worker starts running: peers read it
		// to address barrier traffic (and, under Multitask, DTM requests),
		// and on the live backend workers run concurrently — assigning it
		// inside the goroutine would race the first Barrier. The sim
		// backend's Spawn returns before the proc runs, and the live
		// engine's goroutines block until Run, so this is always ordered.
		rt.proc = p
		// Envelope delivers land on the physical core's app lane; under
		// Multitask the co-located node shares the port and the lane.
		s.hookBatches(p, rt.rec)
		if rt.node != nil {
			s.nodePorts[rt.node.idx] = p
		}
	}
}

// SpawnRaw starts one plain execution port per application core, without
// the transactional runtime. Non-transactional baselines (sequential code,
// the global-lock bank) use it; they access Mem and Regs directly and
// report completed operations through AddOps.
func (s *System) SpawnRaw(worker func(p Port, core int)) {
	if s.spawned {
		panic("core: SpawnRaw after workers already spawned")
	}
	s.spawned = true
	for _, c := range s.appCores {
		c := c
		if s.localCore(c) {
			s.workersDone.Add(1)
		}
		s.spawnPort(fmt.Sprintf("raw%d", c), c, func(p port.Port) {
			defer s.workersDone.Done()
			worker(p, c)
		})
	}
}

// AddOps records n completed application-level operations (used by
// non-transactional baselines, which may run concurrently on the live
// backend; transactional workers use Runtime.AddOps).
func (s *System) AddOps(n int) {
	atomic.AddUint64(&s.stats.Ops, uint64(n))
	s.snap.AddOps(uint64(n))
}

// Deadline returns the stop time (set by Run): virtual on sim, monotonic
// nanoseconds since Run on live.
func (s *System) Deadline() sim.Time { return s.deadline }

// Run executes the workload until the deadline d — virtual time on the sim
// backend, wall-clock time on live — then lets in-flight transactions drain
// (workers observe Stopped and exit, so no new work starts), snapshots the
// statistics, and tears the machine down. The graceful drain guarantees
// that shared memory is never left with a half-persisted write set. Run
// must be called exactly once.
func (s *System) Run(d time.Duration) *Stats {
	if s.ran {
		panic("core: Run called twice")
	}
	if d <= 0 {
		panic("core: Run with non-positive duration")
	}
	s.ran = true
	s.deadline = sim.Time(d)
	if s.neng != nil {
		s.runNet(20*d + 10*time.Second)
		return &s.stats
	}
	if s.eng != nil {
		// Watchdog: the drain tail must fit one last long transaction, but
		// a pathological stall must not hang the host process forever.
		s.runLive(20*d + 10*time.Second)
		return &s.stats
	}
	// Hard cap at 6x the deadline: the drain tail must accommodate one
	// last long transaction (e.g. a full bank balance scan), but a
	// pathological livelock among the final in-flight transactions must
	// not hang the host process.
	s.K.Run(s.deadline * 6)
	s.snapshot(s.K.Now())
	s.K.Shutdown()
	return &s.stats
}

// RunToCompletion executes until every worker has finished (all finite
// workloads done). Tests and fixed-operation-count workloads use it. On the
// sim backend it drains the event queue; on live it waits for the worker
// goroutines.
func (s *System) RunToCompletion() *Stats {
	if s.ran {
		panic("core: Run called twice")
	}
	s.ran = true
	s.deadline = sim.Infinity
	if s.neng != nil {
		s.runNet(5 * time.Minute)
		return &s.stats
	}
	if s.eng != nil {
		s.runLive(5 * time.Minute)
		return &s.stats
	}
	s.K.Run(sim.Infinity)
	s.snapshot(s.K.Now())
	s.K.Shutdown()
	return &s.stats
}

// liveDrainExpired reports whether a deadline-bounded live run is past its
// drain window (6x the deadline, like the sim backend's hard cap in Run):
// transactions that are still aborting then are killed at their next retry
// boundary so the drain terminates even under livelock-prone policies.
func (s *System) liveDrainExpired() bool {
	if s.deadline == sim.Infinity {
		return false
	}
	switch {
	case s.eng != nil:
		return s.eng.Now() >= s.deadline*6
	case s.neng != nil:
		return s.neng.Now() >= s.deadline*6
	}
	return false
}

// runLive drives one live-backend run: release the goroutines, wait for
// every workload loop to finish on its own (bounded by the watchdog), then
// drain and kill the service loops and snapshot. Shutdown re-raises the
// first worker panic, so faults surface to Run's caller exactly like sim
// proc panics do.
func (s *System) runLive(watchdog time.Duration) {
	s.eng.Start()
	s.snap.Start()
	done := make(chan struct{})
	go func() {
		s.workersDone.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(watchdog):
		if f := s.eng.Fault(); f != nil {
			panic(f)
		}
		panic(fmt.Sprintf("core: live backend: workers failed to drain within %v", watchdog))
	}
	dur := s.eng.Now()
	s.eng.Shutdown()
	s.snap.Stop()
	s.snapshot(dur)
}

// runNet drives one rank of a cross-process run: bind the state plane,
// rendezvous with the peers, wait for this rank's local workload loops,
// then run the drain protocol — DONE barrier (no process can issue new
// requests), DRAIN barrier (per-connection FIFO means every release
// already reached its destination mailbox), local drain-and-kill — and
// finally snapshot and exchange statistics so every rank holds the merged
// totals. The order is what makes the lock tables quiesce empty across
// process boundaries.
func (s *System) runNet(watchdog time.Duration) {
	s.neng.BindState(s.Mem, s.Regs, s.rankOf)
	if err := s.neng.Start(); err != nil {
		panic(err)
	}
	s.snap.Start()
	done := make(chan struct{})
	go func() {
		s.workersDone.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(watchdog):
		if f := s.neng.Fault(); f != nil {
			panic(f)
		}
		panic(fmt.Sprintf("core: net backend: local workers failed to drain within %v", watchdog))
	}
	// Peers may lag by their own drain tails; give them the same budget.
	if err := s.neng.BarrierDone(watchdog); err != nil {
		panic(err)
	}
	if err := s.neng.BarrierDrain(30 * time.Second); err != nil {
		panic(err)
	}
	dur := s.neng.Now()
	s.neng.Shutdown()
	s.snap.Stop()
	s.snapshot(dur)
	s.mergeNetStats()
	s.neng.Close()
}

// netShare is one rank's contribution to the merged post-run statistics.
type netShare struct {
	Stats  Stats
	Locked int
}

// mergeNetStats runs the symmetric post-run stats exchange: every rank
// broadcasts its local share and folds in every peer's, so all ranks
// finish holding identical totals. Replicated construction makes the
// merge elementwise — every rank's PerCore and NodeLoad cover all cores
// and nodes, with zeros for the remote ones. Latency histograms are the
// exception: they stay local-only (per-rank), since serializing full
// histograms dwarfs the counters and no cross-rank consumer needs them.
func (s *System) mergeNetStats() {
	local, err := json.Marshal(netShare{Stats: s.stats, Locked: s.LockedAddrs()})
	if err != nil {
		panic(err)
	}
	shares, err := s.neng.ExchangeStats(local, 30*time.Second)
	if err != nil {
		panic(err)
	}
	for _, b := range shares {
		var o netShare
		if err := json.Unmarshal(b, &o); err != nil {
			panic(fmt.Errorf("core: bad stats share from peer: %w", err))
		}
		s.stats.Commits += o.Stats.Commits
		s.stats.Aborts += o.Stats.Aborts
		s.stats.Ops += o.Stats.Ops
		s.stats.addShard(&o.Stats)
		if o.Stats.Duration > s.stats.Duration {
			s.stats.Duration = o.Stats.Duration
		}
		for i, v := range o.Stats.NodeLoad {
			if i < len(s.stats.NodeLoad) {
				s.stats.NodeLoad[i] += v
			}
		}
		for i, pc := range o.Stats.PerCore {
			if i < len(s.stats.PerCore) {
				s.stats.PerCore[i].Commits += pc.Commits
				s.stats.PerCore[i].Aborts += pc.Aborts
				s.stats.PerCore[i].Ops += pc.Ops
			}
		}
		s.remoteLocked += o.Locked
	}
}

// globalOps accumulates every run's completed operations process-wide.
// tm2c-bench samples it (with runtime.MemStats.Mallocs) around each
// experiment to derive allocs/op and ns/op for the benchcheck gates.
var globalOps atomic.Uint64

// OpsSoFar returns the total operations completed by every system run in
// this process so far (updated at snapshot time, i.e. once each run has
// quiesced).
func OpsSoFar() uint64 { return globalOps.Load() }

// DirStats is the process-wide directory-activity accumulator tm2c-bench
// samples around each experiment, mirroring OpsSoFar: leaf counts sum over
// the runs bracketed, LeafUniverse keeps the largest universe seen.
type DirStats struct {
	MaterializedLeaves int    `json:"materialized_leaves"`
	LeafUniverse       int    `json:"leaf_universe"`
	Migrations         uint64 `json:"migrations"`
	Handoffs           uint64 `json:"handoffs"`
	LocalAccesses      uint64 `json:"local_accesses"`
	RemoteAccesses     uint64 `json:"remote_accesses"`
}

// Delta returns the directory activity accumulated since an earlier
// DirSoFar sample. LeafUniverse is a gauge, not a counter: the delta keeps
// the later sample's value.
func (d DirStats) Delta(before DirStats) DirStats {
	return DirStats{
		MaterializedLeaves: d.MaterializedLeaves - before.MaterializedLeaves,
		LeafUniverse:       d.LeafUniverse,
		Migrations:         d.Migrations - before.Migrations,
		Handoffs:           d.Handoffs - before.Handoffs,
		LocalAccesses:      d.LocalAccesses - before.LocalAccesses,
		RemoteAccesses:     d.RemoteAccesses - before.RemoteAccesses,
	}
}

// RemoteRatio returns the remote share of clustered directory accesses, 0
// when nothing was tracked.
func (d DirStats) RemoteRatio() float64 {
	if t := d.LocalAccesses + d.RemoteAccesses; t > 0 {
		return float64(d.RemoteAccesses) / float64(t)
	}
	return 0
}

type dirAccum struct {
	mu sync.Mutex
	d  DirStats
}

var globalDir dirAccum

func (g *dirAccum) add(st *Stats) {
	g.mu.Lock()
	g.d.MaterializedLeaves += st.MaterializedLeaves
	if st.LeafUniverse > g.d.LeafUniverse {
		g.d.LeafUniverse = st.LeafUniverse
	}
	g.d.Migrations += st.Migrations
	g.d.Handoffs += st.Handoffs
	g.d.LocalAccesses += st.LocalAccesses
	g.d.RemoteAccesses += st.RemoteAccesses
	g.mu.Unlock()
}

// DirSoFar returns the accumulated directory activity of every system run
// in this process so far (updated at snapshot time).
func DirSoFar() DirStats {
	globalDir.mu.Lock()
	defer globalDir.mu.Unlock()
	return globalDir.d
}

// snapshot merges the per-runtime and per-node counter shards into the
// run's Stats. It must run after the machine quiesced (kernel drained or
// every goroutine joined), so no shard is concurrently written.
func (s *System) snapshot(d sim.Time) {
	s.stats.Duration = d
	for _, rt := range s.runtimes {
		s.stats.Commits += rt.stats.Commits
		s.stats.Aborts += rt.stats.Aborts
		s.stats.Ops += rt.stats.Ops
		s.stats.PerCore = append(s.stats.PerCore, rt.stats)
		s.stats.addShard(&rt.shard)
		s.TxLifespans.Merge(&rt.life)
		s.CommitLatency.Merge(&rt.commitLat)
		s.ScatterLatency.Merge(&rt.scatterLat)
		s.GatherLatency.Merge(&rt.gatherLat)
		s.RevalidateLatency.Merge(&rt.revalLat)
	}
	for _, n := range s.nodes {
		s.stats.NodeLoad = append(s.stats.NodeLoad, n.reqs)
		s.stats.addShard(&n.shard)
	}
	if s.dir != nil {
		s.stats.RepartitionRounds = s.dir.Epochs
		s.stats.Migrations = s.dir.Migrations
		s.stats.Handoffs = s.dir.Handoffs
		s.stats.DirSplits = s.dir.Splits
		s.stats.DirMerges = s.dir.Merges
		s.stats.MaterializedLeaves = s.dir.MaterializedLeaves()
		s.stats.LeafUniverse = s.dir.LeafUniverse()
		s.stats.LocalAccesses, s.stats.RemoteAccesses = s.dir.AccessLocality()
	}
	globalOps.Add(s.stats.Ops)
	globalDir.add(&s.stats)
	s.assembleTrace()
}

// Stats returns the snapshot taken by Run. Valid only after Run.
func (s *System) Stats() *Stats { return &s.stats }

// LockedAddrs returns how many addresses still hold at least one lock
// across all DTM nodes. After a fully drained run it must be zero: every
// commit and every abort releases all of its locks. Tests use it as a
// lock-leak detector (on both backends — the live shutdown drains every
// service mailbox before killing it, so pending releases are applied).
func (s *System) LockedAddrs() int {
	total := 0
	for _, n := range s.nodes {
		total += n.table.Size()
	}
	return total + s.remoteLocked
}

// lockKey maps an object base address to its lock stripe.
func (s *System) lockKey(addr mem.Addr) mem.Addr {
	return addr &^ mem.Addr(s.cfg.LockGranule-1)
}

// Placement returns the key→DTM-node directory (nil on raw-only systems).
func (s *System) Placement() *placement.Directory { return s.dir }

// nodeFor maps a lock key to the responsible DTM node under the current
// placement resolution (§3.2's hash by default; see internal/placement).
func (s *System) nodeFor(key mem.Addr) int {
	return s.dir.Owner(key)
}

// recvPeers returns how many peers the receiving core polls for incoming
// messages: the size of the opposite partition under Dedicated deployment,
// everyone under Multitask.
func (s *System) recvPeers(dstCore int) int {
	if s.cfg.Deployment == Multitask {
		return s.cfg.TotalCores - 1
	}
	if s.isSvc[dstCore] {
		return len(s.appCores)
	}
	return len(s.svcCores)
}

// send transmits payload from srcCore (running on port p) to dstPort on
// dstCore, charging the platform's message latency (modeled on sim, ignored
// on live). The message counters land in the sender's shard st; rec is the
// sender's flight-recorder lane (nil when tracing is off).
func (s *System) send(st *Stats, rec *trace.Recorder, p port.Port, srcCore int, dstPort port.Port, dstCore int, payload any, nbytes int) {
	if rec != nil {
		rec.Emit(p.Now(), trace.KWireSend, 0, uint64(dstCore), uint64(nbytes), 1)
	}
	delay := s.cfg.Platform.MsgDelay(srcCore, dstCore, nbytes, s.recvPeers(dstCore))
	p.Send(dstPort, payload, delay)
	st.Msgs++
	st.WireMsgs++
	st.MsgBytes += uint64(nbytes)
}

// sendEntry transmits one flushed Outbox entry from srcCore: a singleton
// entry goes out exactly like an uncoalesced send (bare payload, MsgDelay —
// so a burst that never merged behaves identically to the uncoalesced
// plane), a multi-payload entry as one Batch envelope charged the batched
// cost model (fixed overheads once, payload bytes summed). The receiving
// backend unpacks the envelope into individual mailbox messages, so
// selective receive never observes it.
func (s *System) sendEntry(st *Stats, rec *trace.Recorder, p port.Port, srcCore int, e *port.OutEntry) {
	dstCore := e.DstTag
	if len(e.Payloads) == 1 {
		s.send(st, rec, p, srcCore, e.Dst, dstCore, e.Payloads[0], e.Bytes)
		return
	}
	if rec != nil {
		// A payload count >= 2 marks this wire message as a coalesced
		// envelope; the receiver's lane answers with KEnvelopeDeliver.
		rec.Emit(p.Now(), trace.KWireSend, 0, uint64(dstCore), uint64(e.Bytes), uint64(len(e.Payloads)))
	}
	delay := s.cfg.Platform.BatchDelay(srcCore, dstCore, e.Bytes, len(e.Payloads), s.recvPeers(dstCore))
	// The outbox retains e.Payloads after the flush, so the envelope copies
	// the staged payloads into pooled storage; the receiving mailbox recycles
	// the envelope after unpacking it.
	b := port.GetBatch()
	b.Payloads = append(b.Payloads, e.Payloads...)
	p.Send(e.Dst, b, delay)
	st.Msgs += uint64(len(e.Payloads))
	st.WireMsgs++
	st.CoalescedPayloads += uint64(len(e.Payloads))
	st.MsgBytes += uint64(e.Bytes)
}

// compute scales a nominal duration to the platform.
func (s *System) compute(d time.Duration) time.Duration {
	return s.cfg.Platform.Compute(d)
}

package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
)

// TestAbortDoesNotRetryAndReleasesLocks: a Tx.Abort runs the body exactly
// once, surfaces the error from Atomic, counts one user abort (and no
// conflict abort), and leaves no lock behind.
func TestAbortDoesNotRetryAndReleasesLocks(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(4, 0)
	errNo := errors.New("declined")
	runs := 0
	var got error
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		got = rt.Atomic(func(tx *Tx) error {
			runs++
			tx.Read(a)       // read lock
			tx.Write(a+1, 7) // buffered write (no eager lock)
			tx.Abort(errNo)
			t.Error("body continued past Abort")
			return nil
		})
	})
	st := s.RunToCompletion()

	if runs != 1 {
		t.Fatalf("body ran %d times, want 1 (user aborts must not retry)", runs)
	}
	if !errors.Is(got, errNo) {
		t.Fatalf("Atomic returned %v, want %v", got, errNo)
	}
	if st.UserAborts != 1 {
		t.Fatalf("UserAborts = %d, want 1", st.UserAborts)
	}
	if st.Commits != 0 || st.Aborts != 0 {
		t.Fatalf("commits=%d aborts=%d, want 0/0 (user abort is neither)", st.Commits, st.Aborts)
	}
	if n := s.LockedAddrs(); n != 0 {
		t.Fatalf("%d addresses still locked after the user abort", n)
	}
	if s.Mem.ReadRaw(a+1) != 0 {
		t.Fatal("aborted write persisted")
	}
}

// TestAbortNilUsesErrAborted: Abort(nil) surfaces ErrAborted.
func TestAbortNilUsesErrAborted(t *testing.T) {
	s := testSystem(t, nil)
	var got error
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		got = rt.Atomic(func(tx *Tx) error {
			tx.Abort(nil)
			return nil
		})
	})
	s.RunToCompletion()
	if !errors.Is(got, ErrAborted) {
		t.Fatalf("Atomic returned %v, want ErrAborted", got)
	}
}

// TestErrRetryBacksOffAndRetries: returning ErrRetry (or aborting with an
// error wrapping it) re-runs the body; the retries count as ordinary
// aborts, not user aborts.
func TestErrRetryBacksOffAndRetries(t *testing.T) {
	for _, wrapped := range []bool{false, true} {
		name := "plain"
		if wrapped {
			name = "wrapped"
		}
		t.Run(name, func(t *testing.T) {
			s := testSystem(t, nil)
			a := s.Mem.Alloc(1, 0)
			runs := 0
			var got error
			s.SpawnWorkers(func(rt *Runtime) {
				if rt.AppIndex() != 0 {
					return
				}
				got = rt.Atomic(func(tx *Tx) error {
					runs++
					v := tx.Read(a)
					if runs < 3 {
						if wrapped {
							return fmt.Errorf("not ready: %w", ErrRetry)
						}
						return ErrRetry
					}
					tx.Write(a, v+1)
					return nil
				})
			})
			st := s.RunToCompletion()

			if got != nil {
				t.Fatalf("Atomic returned %v after retries, want nil", got)
			}
			if runs != 3 {
				t.Fatalf("body ran %d times, want 3", runs)
			}
			if st.Commits != 1 || st.Aborts != 2 || st.UserAborts != 0 {
				t.Fatalf("commits=%d aborts=%d userAborts=%d, want 1/2/0",
					st.Commits, st.Aborts, st.UserAborts)
			}
			if s.Mem.ReadRaw(a) != 1 {
				t.Fatal("committed write lost")
			}
			if n := s.LockedAddrs(); n != 0 {
				t.Fatalf("%d addresses still locked", n)
			}
		})
	}
}

// TestRunReturnsAttemptCount pins the documented Run/RunKind contract: the
// return value is the attempt count — 1 for a first-try commit, 1 + the
// number of aborted attempts otherwise (asserted against the runtime's own
// abort counter, which guards the retry loop against off-by-one drift).
func TestRunReturnsAttemptCount(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	var uncontended, retried int
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		uncontended = rt.Run(func(tx *Tx) {
			tx.Write(a, tx.Read(a)+1)
		})
		// Force exactly two aborted attempts through the error path the
		// retry loop shares with conflict aborts.
		runs := 0
		retried, _ = rt.runLoop(Normal, func(tx *Tx) error {
			runs++
			tx.Write(a, tx.Read(a)+1)
			if runs < 3 {
				return ErrRetry
			}
			return nil
		})
	})
	st := s.RunToCompletion()

	if uncontended != 1 {
		t.Fatalf("uncontended Run returned %d attempts, want 1", uncontended)
	}
	if retried != 3 {
		t.Fatalf("twice-aborted transaction returned %d attempts, want 3", retried)
	}
	if want := st.Aborts + uint64(st.Commits); uint64(uncontended+retried) != want {
		t.Fatalf("attempt counts %d+%d != commits+aborts %d", uncontended, retried, want)
	}
}

// TestOnCommitFiresExactlyOnce reuses the scatter-rollback scenario: the
// first attempt is rejected at its second DTM node (granted batches rolled
// back), the retry commits. OnCommit must fire exactly once — for the
// committed attempt only — and OnAbort exactly once, for the rolled-back
// attempt.
func TestOnCommitFiresExactlyOnce(t *testing.T) {
	for _, serial := range []bool{false, true} {
		name := "scatter"
		if serial {
			name = "serial"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Platform:     noc.SCC(0),
				Seed:         7,
				TotalCores:   4,
				ServiceCores: 2,
				Policy:       cm.NoCM,
				SerialRPC:    serial,
			}
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool := s.Mem.Alloc(64, 0)
			a1, a2, node2 := findTwoNodeAddrs(t, s, pool, 64)
			key2 := s.lockKey(a2)
			s.nodes[node2].table.SetWriter(key2, cm.Meta{Core: 0, TxID: 99})

			attempts, commitFires, abortFires := 0, 0, 0
			s.SpawnWorkers(func(rt *Runtime) {
				if rt.AppIndex() != 1 {
					return
				}
				rt.Run(func(tx *Tx) {
					attempts++
					tx.OnCommit(func() { commitFires++ })
					tx.OnAbort(func() { abortFires++ })
					tx.Write(a1, 11)
					if attempts == 1 {
						tx.Write(a2, 22) // rejected at node2 on the first try
					}
				})
			})
			st := s.RunToCompletion()

			if st.Commits != 1 || st.Aborts != 1 {
				t.Fatalf("commits=%d aborts=%d, want 1/1", st.Commits, st.Aborts)
			}
			if commitFires != 1 {
				t.Fatalf("OnCommit fired %d times for 1 committed transaction", commitFires)
			}
			if abortFires != 1 {
				t.Fatalf("OnAbort fired %d times for 1 aborted attempt", abortFires)
			}
		})
	}
}

// TestHooksUnderContention: across an arbitrary contended run, OnCommit
// fires exactly Commits times and OnAbort exactly Aborts times.
func TestHooksUnderContention(t *testing.T) {
	s := testSystem(t, func(cfg *Config) { cfg.Policy = cm.FairCM })
	a := s.Mem.Alloc(1, 0)
	commitFires, abortFires := 0, 0
	s.SpawnWorkers(func(rt *Runtime) {
		for i := 0; i < 20; i++ {
			rt.Run(func(tx *Tx) {
				tx.OnCommit(func() { commitFires++ })
				tx.OnAbort(func() { abortFires++ })
				tx.Write(a, tx.Read(a)+1)
			})
		}
	})
	st := s.RunToCompletion()
	if uint64(commitFires) != st.Commits {
		t.Fatalf("OnCommit fired %d times for %d commits", commitFires, st.Commits)
	}
	if uint64(abortFires) != st.Aborts {
		t.Fatalf("OnAbort fired %d times for %d aborts", abortFires, st.Aborts)
	}
	if s.Mem.ReadRaw(a) != st.Commits {
		t.Fatalf("counter %d != commits %d", s.Mem.ReadRaw(a), st.Commits)
	}
}

// TestReadOnlyScanNoWriteTraffic: a system running only declared read-only
// scans commits them without a single write-lock request or commit round
// trip, and counts them in ReadOnlyCommits.
func TestReadOnlyScanNoWriteTraffic(t *testing.T) {
	s := testSystem(t, nil)
	const words = 32
	arr := NewTArray(s, Uint64Codec(), words, 5)
	s.SpawnWorkers(func(rt *Runtime) {
		for i := 0; i < 5; i++ {
			var sum uint64
			attempts := rt.RunReadOnly(func(tx *Tx) {
				sum = 0
				for j := 0; j < words; j++ {
					sum += arr.Get(tx, j)
				}
			})
			if attempts < 1 {
				t.Errorf("RunReadOnly returned %d attempts", attempts)
			}
			if sum != 5*words {
				t.Errorf("scan read %d, want %d", sum, 5*words)
			}
			rt.AddOps(1)
		}
	})
	st := s.RunToCompletion()

	if st.Commits == 0 {
		t.Fatal("no commits")
	}
	if st.ReadOnlyCommits != st.Commits {
		t.Fatalf("ReadOnlyCommits = %d, want %d (every commit declared read-only)",
			st.ReadOnlyCommits, st.Commits)
	}
	if st.WriteLockReqs != 0 {
		t.Fatalf("WriteLockReqs = %d, want 0", st.WriteLockReqs)
	}
	if st.CommitRoundTrips != 0 {
		t.Fatalf("CommitRoundTrips = %d, want 0 (read-only commits contribute none)",
			st.CommitRoundTrips)
	}
	if st.ReadLockReqs == 0 {
		t.Fatal("read-only scans must still take read locks")
	}
	if n := s.LockedAddrs(); n != 0 {
		t.Fatalf("%d addresses still locked after read-only commits", n)
	}
}

// TestReadOnlyWritePanics: a write inside a declared ReadOnly transaction
// is a programming error and panics.
func TestReadOnlyWritePanics(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	panicked := false
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		func() {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			rt.RunReadOnly(func(tx *Tx) {
				tx.Write(a, 1)
			})
		}()
	})
	s.RunToCompletion()
	if !panicked {
		t.Fatal("write inside a ReadOnly transaction did not panic")
	}
}

// TestAbortInsideRunPanics: Run has no way to surface a user abort, so
// Tx.Abort under it is a loud programming error.
func TestAbortInsideRunPanics(t *testing.T) {
	s := testSystem(t, nil)
	panicked := false
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		func() {
			defer func() {
				if recover() != nil {
					panicked = true
				}
			}()
			rt.Run(func(tx *Tx) {
				tx.Abort(errors.New("nope"))
			})
		}()
	})
	s.RunToCompletion()
	if !panicked {
		t.Fatal("Tx.Abort inside Run did not panic")
	}
}

// TestReadOnlyKindString covers the TxKind extension.
func TestReadOnlyKindString(t *testing.T) {
	if ReadOnly.String() != "read-only" {
		t.Fatalf("ReadOnly.String() = %q", ReadOnly.String())
	}
}

// TestReadOnlyAuditClean: declared read-only scans interleaved with writers
// keep the linearizability auditor green — the scan serializes at its last
// read like any lock-holding read-only transaction.
func TestReadOnlyAuditClean(t *testing.T) {
	s := testSystem(t, func(cfg *Config) { cfg.Policy = cm.FairCM })
	s.EnableAudit()
	const words = 8
	arr := NewTArray(s, Uint64Codec(), words, 100)
	s.SpawnWorkers(func(rt *Runtime) {
		r := rt.Rand()
		for i := 0; i < 15; i++ {
			if rt.AppIndex() == 0 {
				var sum uint64
				rt.RunReadOnly(func(tx *Tx) {
					sum = 0
					for j := 0; j < words; j++ {
						sum += arr.Get(tx, j)
					}
				})
				if sum != 100*words {
					t.Errorf("scan observed %d, want %d: opacity violated", sum, 100*words)
				}
			} else {
				from := r.Intn(words)
				to := (from + 1) % words
				rt.Run(func(tx *Tx) {
					f := arr.Get(tx, from)
					tv := arr.Get(tx, to)
					arr.Set(tx, from, f-1)
					arr.Set(tx, to, tv+1)
				})
			}
		}
	})
	s.RunToCompletion()
	initial := make(map[mem.Addr]uint64)
	for i := 0; i < words; i++ {
		initial[arr.Addr(i)] = 100
	}
	if err := s.CheckAudit(initial); err != nil {
		t.Fatalf("audit failed: %v", err)
	}
}

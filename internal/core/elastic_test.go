package core

import (
	"testing"

	"repro/internal/cm"
	"repro/internal/mem"
)

func TestEarlyReleaseDropsLocksAndSkipsCommitRelease(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(4, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.RunKind(ElasticEarly, func(tx *Tx) {
			tx.Read(a)
			tx.Read(a + 1)
			if tx.ReadSetSize() != 2 {
				t.Errorf("read set = %d", tx.ReadSetSize())
			}
			tx.EarlyRelease(a)
			if tx.ReadSetSize() != 1 {
				t.Errorf("read set after early release = %d", tx.ReadSetSize())
			}
			// Releasing something not in the read set is a no-op.
			tx.EarlyRelease(a + 3)
		})
	})
	st := s.RunToCompletion()
	if st.EarlyReleases != 1 {
		t.Fatalf("EarlyReleases = %d, want 1", st.EarlyReleases)
	}
}

func TestEarlyReleasePanicsOutsideElasticEarly(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("EarlyRelease on a normal transaction did not panic")
		}
	}()
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.Run(func(tx *Tx) {
			tx.Read(a)
			tx.EarlyRelease(a)
		})
	})
	s.RunToCompletion()
}

func TestElasticEarlyAvoidsWARAbort(t *testing.T) {
	// Core 0 read-locks a then releases it early; core 1 then write-locks
	// a without conflicting. With a Normal transaction the same schedule
	// produces a WAR conflict.
	for _, kind := range []TxKind{ElasticEarly, Normal} {
		s := testSystem(t, func(c *Config) { c.Policy = cm.NoCM })
		a := s.Mem.Alloc(2, 0)
		s.SpawnWorkers(func(rt *Runtime) {
			switch rt.AppIndex() {
			case 0:
				rt.RunKind(kind, func(tx *Tx) {
					tx.Read(a)
					if kind == ElasticEarly {
						tx.EarlyRelease(a)
					}
					tx.Read(a + 1)
					// Park long enough for core 1 to try write-locking a.
					rt.Compute(500_000)
				})
			case 1:
				rt.Compute(100_000) // let core 0 take its locks first
				rt.Run(func(tx *Tx) {
					tx.Write(a, 7)
				})
			}
		})
		st := s.RunToCompletion()
		if kind == ElasticEarly && st.AbortsByKind[cm.WAR] != 0 {
			t.Errorf("elastic-early still caused %d WAR aborts", st.AbortsByKind[cm.WAR])
		}
		if kind == Normal && st.AbortsByKind[cm.WAR] == 0 {
			t.Errorf("normal mode should have hit a WAR conflict in this schedule")
		}
	}
}

func TestElasticReadValidationAborts(t *testing.T) {
	// Core 0 elastically reads a then b slowly; core 1 commits a change to
	// a in between; core 0's window validation on reading b must abort and
	// retry.
	s := testSystem(t, func(c *Config) { c.Policy = cm.NoCM })
	a := s.Mem.Alloc(1, 0)
	b := s.Mem.Alloc(1, 1)
	s.Mem.WriteRaw(a, 1)
	attempts := 0
	s.SpawnWorkers(func(rt *Runtime) {
		switch rt.AppIndex() {
		case 0:
			attempts = rt.RunKind(ElasticRead, func(tx *Tx) {
				tx.Read(a)
				rt.Compute(400_000) // 400µs: plenty for core 1 to commit
				tx.Read(b)          // validates a
			})
		case 1:
			rt.Compute(50_000)
			rt.Run(func(tx *Tx) { tx.Write(a, tx.Read(a)+100) })
		}
	})
	s.RunToCompletion()
	if attempts < 2 {
		t.Fatalf("elastic-read committed in %d attempt(s) despite invalidation", attempts)
	}
}

func TestElasticReadRepeatedReadServedFromWindow(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(2, 0)
	s.Mem.WriteRaw(a, 5)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.RunKind(ElasticRead, func(tx *Tx) {
			v1 := tx.ReadN(a, 2)
			v2 := tx.ReadN(a, 2) // same object: served from the window
			if v1[0] != v2[0] {
				t.Errorf("window re-read changed value: %v vs %v", v1, v2)
			}
		})
	})
	st := s.RunToCompletion()
	if st.ReadLockReqs != 0 {
		t.Fatalf("elastic-read sent %d read-lock messages", st.ReadLockReqs)
	}
}

func TestElasticReadWriteBackStillLocksWrites(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.RunKind(ElasticRead, func(tx *Tx) {
			v := tx.Read(a)
			tx.Write(a, v+1)
		})
	})
	st := s.RunToCompletion()
	if st.WriteLockReqs == 0 {
		t.Fatal("elastic-read commit acquired no write locks")
	}
	if got := s.Mem.ReadRaw(a); got != 1 {
		t.Fatalf("write-back lost: %d", got)
	}
}

func TestOffsetGreedySystemRun(t *testing.T) {
	st := runMiniBankN(t, func(c *Config) { c.Policy = cm.OffsetGreedy }, 40, 16)
	if st.Commits == 0 {
		t.Fatal("no commits under offset-greedy")
	}
	if st.Revocations == 0 {
		t.Fatal("offset-greedy never aborted an enemy (priorities unused?)")
	}
}

func TestReadOnlyCommitSendsNoWriteLocks(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(8, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.Run(func(tx *Tx) {
			for i := 0; i < 8; i++ {
				tx.Read(a + mem.Addr(i))
			}
		})
	})
	st := s.RunToCompletion()
	if st.WriteLockReqs != 0 {
		t.Fatalf("read-only tx sent %d write-lock requests", st.WriteLockReqs)
	}
	if st.ReleaseMsgs == 0 {
		t.Fatal("read locks were never released")
	}
	if st.Commits != 1 {
		t.Fatalf("commits = %d", st.Commits)
	}
}

func TestMessageByteAccounting(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.Run(func(tx *Tx) { tx.Write(a, tx.Read(a)+1) })
	})
	st := s.RunToCompletion()
	if st.Msgs == 0 || st.MsgBytes == 0 {
		t.Fatalf("message accounting empty: %+v", st)
	}
	if st.MsgBytes < st.Msgs*8 {
		t.Fatalf("bytes (%d) below plausible floor for %d messages", st.MsgBytes, st.Msgs)
	}
	if st.Responses != st.ReadLockReqs+st.WriteLockReqs {
		t.Fatalf("responses %d != requests %d", st.Responses, st.ReadLockReqs+st.WriteLockReqs)
	}
}

func TestMultitaskServesWhileComputing(t *testing.T) {
	// Core 1 (multitask) performs a long local computation; core 0's
	// request to the node hosted on core 1 must still be answered — after
	// the computation finishes (the Figure 2 waiting effect), but before
	// the system ends.
	s := testSystem(t, func(c *Config) { c.Deployment = Multitask; c.TotalCores = 2 })
	// Find an address whose responsible node is core 1's.
	var addr mem.Addr
	for a := mem.Addr(1); ; a++ {
		if s.nodeFor(s.lockKey(a)) == 1 {
			addr = a
			break
		}
	}
	var served bool
	s.SpawnWorkers(func(rt *Runtime) {
		switch rt.AppIndex() {
		case 0:
			rt.Compute(10_000)
			rt.Run(func(tx *Tx) { tx.Read(addr) })
			served = true
		case 1:
			rt.Compute(2_000_000) // 2ms busy loop before any yield
		}
	})
	s.RunToCompletion()
	if !served {
		t.Fatal("request to a busy multitask core was never served")
	}
}

func TestZombieReadDetectedAfterRemoteAbort(t *testing.T) {
	// A transaction whose status register is flipped to aborted must
	// unwind at its next wrapper call, releasing its locks.
	s := testSystem(t, nil)
	a := s.Mem.Alloc(2, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		first := true
		rt.Run(func(tx *Tx) {
			tx.Read(a)
			if first {
				first = false
				// Simulate a remote CM abort mid-transaction.
				s.Regs.SetStatusLocal(rt.Core(), tx.ID(), mem.TxAborted)
			}
			tx.Read(a + 1) // must panic-abort on the first attempt
		})
	})
	st := s.RunToCompletion()
	if st.Aborts != 1 || st.Commits != 1 {
		t.Fatalf("aborts=%d commits=%d, want 1/1", st.Aborts, st.Commits)
	}
}

func TestRawOnlySystemRejectsWorkers(t *testing.T) {
	s, err := NewSystem(Config{TotalCores: 4, ServiceCores: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumAppCores() != 4 || s.NumServiceCores() != 0 {
		t.Fatalf("raw-only partition: %d app / %d svc", s.NumAppCores(), s.NumServiceCores())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SpawnWorkers on raw-only system did not panic")
		}
	}()
	s.SpawnWorkers(func(rt *Runtime) {})
}

package core

import (
	"repro/internal/mem"
	"repro/internal/trace"
)

// The invisible-read protocol mode (Config.Protocol == ProtocolTL2), in the
// style of TL2: transactions read shared memory directly and validate
// against a snapshot of the global version clock instead of acquiring read
// locks, so a read costs zero wire messages. The network is consulted only
// at an update commit, which reuses the visible protocol's entire
// machinery: the per-node write-lock batches, the scatter-gather RPC layer,
// placement NACK chasing, contention management, and the release burst.
//
// Opacity argument. Every transaction snapshots the sharded clock at
// attempt start (tx.rv, one counter per shard). A committer, once its write
// locks are granted and it has become non-abortable, sets a write-back
// marker on every write stripe, ticks its clock shard to obtain the new
// version wv, revalidates its read set, persists, then publishes wv and
// clears the markers. A reader accepts a stripe only if it is unmarked and
// its version is covered by rv (mem.VersionLEQ): rv covering a version
// means the snapshot loaded that shard AFTER the tick that produced it,
// which happened AFTER the markers went up — so an uncovered-or-marked
// stripe can be mid-write-back and is refused (a doomed read aborts rather
// than return a possibly torn value). Hence all accepted reads reflect
// fully published commits no newer than the snapshot: every read-only
// prefix of a transaction is a consistent view as of its snapshot instant,
// even for attempts that later abort — which is opacity.
//
// Serialization instants (what the sim audit replays): an update commit
// serializes at its clock tick — revalidation proves the read set unchanged
// from first read through a point after the tick, and the write locks +
// markers keep the write set exclusive from before the tick through
// publication. A transaction that wrote nothing serializes at its snapshot
// instant: its reads were each validated against that same snapshot, so no
// commit-time work (and no message) is needed at all.
//
// Under this mode every TxKind degenerates to the same invisible-read
// semantics: elastic windows and early release exist to relax visible read
// locking, which TL2 does not perform (EarlyRelease becomes a no-op), and
// the audit checks ALL kinds strictly. Irrevocable transactions are
// unsupported — their exclusivity tokens block lock requesters, but an
// invisible reader never sends one (RunIrrevocable panics).

// tl2ClockShards is the version-clock shard count: enough to keep live
// committers from serializing on one cache line, small enough that the
// begin-time snapshot stays a register-plane operation.
const tl2ClockShards = 8

// tl2 reports whether the system runs the invisible-read protocol.
func (s *System) tl2() bool { return s.cfg.Protocol == ProtocolTL2 }

// snapshotTL2 loads the version clock into the attempt's read snapshot.
// Called once per attempt, after the begin cost; the per-runtime buffer is
// reused across attempts (only one attempt is ever live per runtime).
func (rt *Runtime) snapshotTL2(tx *Tx) {
	rt.proc.Advance(rt.s.compute(rt.s.cfg.Costs.ClockSnap))
	rt.rvBuf = rt.s.clock.Snapshot(rt.rvBuf[:0])
	tx.rv = rt.rvBuf
	tx.snapAt = rt.proc.Now()
}

// readTL2 is the invisible read: fetch the object and its stripe's version
// metadata in one atomic memory visit, refuse anything the snapshot does
// not cover. No message leaves the core.
func (tx *Tx) readTL2(base mem.Addr, n int) []uint64 {
	rt := tx.rt
	tx.checkAborted() // eager-mode enemies can still remote-abort us
	key := rt.s.lockKey(base)
	vals, ver, locked := rt.s.Mem.ReadVersionedTo(rt.proc, rt.core, base, key, rt.wordBuf(n))
	if locked || !mem.VersionLEQ(ver, tx.rv) {
		// Doomed: the stripe is newer than our snapshot, or a committer's
		// write-back is in flight. Returning the value could tear the
		// snapshot, so the attempt dies here.
		rt.shard.DoomedReads++
		rt.emit(trace.KDoomedRead, tx.id, uint64(key), 0, 0)
		panic(abortSignal{reason: trace.ReasonDoomedRead})
	}
	if prev, seen := tx.readVers[key]; seen {
		if prev != ver {
			// A second object on the same stripe observed a different
			// version: the stripe changed between our reads.
			rt.shard.DoomedReads++
			rt.emit(trace.KDoomedRead, tx.id, uint64(key), 0, 0)
			panic(abortSignal{reason: trace.ReasonDoomedRead})
		}
	} else {
		tx.readVers[key] = ver
	}
	tx.reads[base] = vals
	tx.readOrder = append(tx.readOrder, base)
	rt.shard.LocalReads++
	return vals
}

// commitTL2 is the TL2 commit. A transaction with an empty write buffer
// serializes at its snapshot instant and completes without a single
// message; an update commit acquires its write locks through the shared
// scatter machinery, marks the write stripes, ticks the clock, revalidates
// the read set, persists, publishes, and releases.
func (tx *Tx) commitTL2() {
	rt := tx.rt
	tx.checkAborted()
	start := rt.proc.Now()

	if len(tx.writeOrd) == 0 {
		// Pure reader (including the declared ReadOnly kind): every read was
		// validated against rv when it happened, so the whole transaction is
		// a consistent view as of the snapshot. Nothing is locked, nothing
		// to release — zero commit-time network work.
		rt.s.Regs.SetStatusLocal(rt.core, tx.id, mem.TxCommitted)
		if rt.s.audit != nil {
			rt.s.recordCommit(tx, tx.snapAt)
		}
		rt.commitLat.Observe(rt.proc.Now() - start)
		return
	}

	rt.proc.Advance(rt.s.compute(rt.s.cfg.Costs.Commit))
	if rt.s.cfg.Acquire == Lazy {
		tx.acquireCommitLocks() // records grant-time versions (tx.grantVers)
	}
	// Become non-abortable. If the CAS fails, a CM got to us first.
	if !rt.s.Regs.CASStatusLocal(rt.core, tx.id, mem.TxPending, mem.TxCommitting) {
		panic(abortSignal{reason: trace.ReasonRevoked})
	}
	// Mark the write stripes. Safe: we hold their DTM write locks and are
	// already Committing, so no CM can revoke them (abortEnemies refuses),
	// and a marker therefore always belongs to a lock holder — two markers
	// on one stripe would need two holders of the same write lock.
	keys := tx.writeKeys()
	rt.s.Mem.LockVersions(rt.proc, rt.core, keys)
	rt.proc.Advance(rt.s.compute(rt.s.cfg.Costs.ClockTick))
	wv := rt.s.clock.Tick(rt.core)
	rt.shard.ClockAdvances++
	rt.emit(trace.KClockTick, tx.id, wv, 0, 0)
	tickAt := rt.proc.Now()
	rvStart := rt.proc.Now()
	rt.emit(trace.KPhaseBegin, tx.id, uint64(trace.PhaseRevalidate), 0, 0)
	tx.revalidateTL2(keys)
	rt.emit(trace.KPhaseEnd, tx.id, uint64(trace.PhaseRevalidate), 0, 0)
	rt.revalLat.Observe(rt.proc.Now() - rvStart)
	// Persist the write set, then publish the new version: readers see the
	// marker until the very instant the new data is fully in place.
	rt.emit(trace.KPhaseBegin, tx.id, uint64(trace.PhaseWriteBack), 0, 0)
	addrs, vals := tx.writeBackLists()
	rt.s.Mem.WriteBatch(rt.proc, rt.core, addrs, vals)
	rt.s.Mem.PublishVersions(rt.proc, rt.core, keys, wv)
	rt.emit(trace.KPhaseEnd, tx.id, uint64(trace.PhaseWriteBack), 0, 0)
	rt.s.Regs.SetStatusLocal(rt.core, tx.id, mem.TxCommitted)
	if rt.s.audit != nil {
		rt.s.recordCommit(tx, tickAt) // serializes at the clock tick
	}
	rt.releaseAll(tx)
	rt.commitLat.Observe(rt.proc.Now() - start)
}

// revalidateTL2 re-checks every stripe of the read set after the clock
// tick. Stripes we also write are checked against the version the DTM node
// piggybacked on the grant (no memory traffic); pure-read stripes pay one
// charged version load each. Any change — or a foreign write-back marker —
// since the first read aborts the commit, which must first clear its own
// markers and roll the status back to abortable before unwinding.
func (tx *Tx) revalidateTL2(writeKeys []mem.Addr) {
	rt := tx.rt
	if rt.rvInWrite == nil {
		rt.rvInWrite = make(map[mem.Addr]bool)
		rt.rvSeen = make(map[mem.Addr]bool)
	}
	inWrite, seen := rt.rvInWrite, rt.rvSeen
	clear(inWrite)
	clear(seen)
	if len(tx.readVers) > 0 {
		for _, k := range writeKeys {
			inWrite[k] = true
		}
	}
	for _, base := range tx.readOrder {
		key := rt.s.lockKey(base)
		if seen[key] {
			continue
		}
		seen[key] = true
		want, recorded := tx.readVers[key]
		if !recorded {
			continue // read served from the write buffer; never versioned
		}
		rt.shard.Revalidations++
		var ok bool
		if inWrite[key] {
			// Our own marker sits on this stripe; the authoritative version
			// is the one its owner node reported with the write-lock grant.
			ok = tx.grantVers[key] == want
		} else {
			cur, locked := rt.s.Mem.LoadVersion(rt.proc, rt.core, key)
			ok = !locked && cur == want
		}
		if !ok {
			rt.s.Mem.UnlockVersions(writeKeys)
			rt.s.Regs.SetStatusLocal(rt.core, tx.id, mem.TxAborted)
			rt.emit(trace.KDoomedRead, tx.id, uint64(key), 0, 0)
			panic(abortSignal{reason: trace.ReasonDoomedRead})
		}
	}
}

// recordGrantVers stores the versions a DTM node piggybacked on a
// write-lock grant (respLock.Vers, request order). Nil under the visible
// protocol, where this is a no-op.
func (tx *Tx) recordGrantVers(keys []mem.Addr, vers []uint64) {
	if len(vers) == 0 {
		return
	}
	if len(vers) != len(keys) {
		panic("core: write-lock grant version count does not match its batch")
	}
	if tx.grantVers == nil {
		tx.grantVers = make(map[mem.Addr]uint64, len(keys))
	}
	for i, k := range keys {
		tx.grantVers[k] = vers[i]
	}
}

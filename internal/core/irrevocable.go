package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/port"
	"repro/internal/sim"
)

// Irrevocable transactions are the extension sketched in §2 of the paper:
// "one could extend our code with irrevocable transactions that ask
// exclusive accesses to all responsible nodes before executing
// pessimistically". They permit side effects (I/O, system calls) inside a
// transaction because the transaction can never abort.
//
// Protocol: the core requests an exclusivity token from every DTM node in
// ascending node order (a global order, so two irrevocable transactions can
// never deadlock). A node grants the token once its lock table has drained;
// while a token is held or requested, the node rejects new lock
// acquisitions, which aborts optimistic transactions into their usual retry
// path and guarantees the drain terminates. Once all tokens are held the
// body runs pessimistically with direct shared-memory access, then the
// tokens are released.

// reqExclusive asks a DTM node for its exclusivity token.
type reqExclusive struct {
	Core  int
	TxID  uint64
	Reply port.Port
}

func (r *reqExclusive) bytes() int { return msgHeaderBytes + 16 }
func (*reqExclusive) dtmRequest()  {}

// respExclusive grants the token.
type respExclusive struct{}

// relExclusive returns the token (fire-and-forget).
type relExclusive struct {
	Core int
	TxID uint64
}

func (r *relExclusive) bytes() int { return msgHeaderBytes + 16 }
func (*relExclusive) dtmRequest()  {}

// exclState is a DTM node's exclusivity bookkeeping.
type exclState struct {
	held    bool
	owner   int
	ownerTx uint64
	queue   []*reqExclusive
}

// blocked reports whether ordinary lock traffic must be rejected: either a
// token is held or someone is waiting for the table to drain.
func (e *exclState) blocked() bool { return e.held || len(e.queue) > 0 }

// handleExclusive enqueues or immediately grants a token request.
func (n *dtmNode) handleExclusive(p port.Port, r *reqExclusive) {
	c := n.s.cfg.Costs
	p.Advance(n.s.compute(c.SvcBase))
	n.excl.queue = append(n.excl.queue, r)
	n.tryGrantExclusive(p)
}

// handleExclusiveRelease returns the token and hands it to the next waiter.
func (n *dtmNode) handleExclusiveRelease(p port.Port, r *relExclusive) {
	c := n.s.cfg.Costs
	p.Advance(n.s.compute(c.SvcBase))
	if !n.excl.held || n.excl.owner != r.Core || n.excl.ownerTx != r.TxID {
		return // stale release
	}
	n.excl.held = false
	n.tryGrantExclusive(p)
}

// tryGrantExclusive grants the head waiter once the lock table is empty.
func (n *dtmNode) tryGrantExclusive(p port.Port) {
	if n.excl.held || len(n.excl.queue) == 0 || n.table.Size() != 0 {
		return
	}
	r := n.excl.queue[0]
	n.excl.queue = n.excl.queue[1:]
	n.excl.held = true
	n.excl.owner = r.Core
	n.excl.ownerTx = r.TxID
	n.shard.Responses++
	n.s.send(&n.shard, n.rec, p, n.core, r.Reply, r.Core, &respExclusive{}, msgRespBytes)
}

// Irrevocable is the handle passed to an irrevocable transaction body. Its
// accesses go straight to shared memory — the exclusivity tokens make that
// safe — and, because the transaction cannot abort, the body may perform
// arbitrary side effects.
type Irrevocable struct {
	rt *Runtime
	id uint64
}

// Read returns the word at addr.
func (ir *Irrevocable) Read(addr mem.Addr) uint64 {
	return ir.rt.s.Mem.Read(ir.rt.proc, ir.rt.core, addr)
}

// ReadN returns the n-word object at base.
func (ir *Irrevocable) ReadN(base mem.Addr, n int) []uint64 {
	return ir.rt.s.Mem.ReadBatch(ir.rt.proc, ir.rt.core, base, n)
}

// Write stores v at addr immediately (write-through; there is no abort).
func (ir *Irrevocable) Write(addr mem.Addr, v uint64) {
	ir.rt.s.Mem.Write(ir.rt.proc, ir.rt.core, addr, v)
}

// WriteN stores the n-word object vals at base immediately (one batched
// write-through access; there is no abort).
func (ir *Irrevocable) WriteN(base mem.Addr, vals []uint64) {
	addrs := make([]mem.Addr, len(vals))
	for i := range addrs {
		addrs[i] = base + mem.Addr(i)
	}
	ir.rt.s.Mem.WriteBatch(ir.rt.proc, ir.rt.core, addrs, vals)
}

// Compute charges local computation time.
func (ir *Irrevocable) Compute(d sim.Time) { ir.rt.proc.Advance(d.Duration()) }

// RunIrrevocable executes fn as an irrevocable transaction: it blocks until
// every DTM node has granted exclusive access, runs fn pessimistically, and
// releases the tokens. It never aborts and therefore runs fn exactly once.
//
// Irrevocability is a visible-protocol facility: the exclusivity tokens
// stop transactions at the DTM nodes, but a TL2 reader never consults a
// node, so it could observe an irrevocable transaction's direct writes
// mid-flight. RunIrrevocable therefore panics under Protocol=tl2.
func (rt *Runtime) RunIrrevocable(fn func(*Irrevocable)) {
	if rt.s.tl2() {
		panic("core: irrevocable transactions require the visible protocol (tl2 readers bypass the DTM exclusivity tokens)")
	}
	rt.nextTxID++
	id := rt.nextTxID
	// The status register stays in Committing: an irrevocable transaction
	// is never abortable.
	rt.s.Regs.SetStatusLocal(rt.core, id, mem.TxCommitting)
	rt.proc.Advance(rt.s.compute(rt.s.cfg.Costs.TxBegin))

	// Acquire every node's token in ascending node order (global order =>
	// no deadlock between two irrevocable transactions).
	for ni := range rt.s.nodes {
		rt.sendToNode(ni, &reqExclusive{Core: rt.core, TxID: id, Reply: rt.proc})
		rt.awaitExclusiveGrant()
	}
	fn(&Irrevocable{rt: rt, id: id})
	// Token-release burst: fire-and-forget to every node, coalesced like
	// any other burst when the message plane coalesces (one payload per
	// node here, so the win is uniformity, not merging).
	for ni := range rt.s.nodes {
		rt.burstToNode(ni, &relExclusive{Core: rt.core, TxID: id})
	}
	rt.flushOut()
	rt.s.Regs.SetStatusLocal(rt.core, id, mem.TxCommitted)
	rt.stats.Commits++
	rt.shard.Irrevocables++
}

// awaitExclusiveGrant waits for one respExclusive, serving co-located DTM
// requests under Multitask deployment (which keeps the drain making
// progress on this core's own node).
func (rt *Runtime) awaitExclusiveGrant() {
	for {
		m := rt.proc.Recv()
		switch pl := m.Payload.(type) {
		case *respExclusive:
			return
		case barrierMsg:
			rt.barrierSeen[pl.Epoch]++
		default:
			if rt.node != nil && rt.node.handle(rt.proc, m) {
				rt.node.flushOut(rt.proc)
				continue
			}
			panic(fmt.Sprintf("core: app%d unexpected message %T awaiting exclusivity", rt.core, m.Payload))
		}
	}
}

package core

import (
	"errors"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Error-based transactional control flow. The word-level Run/RunKind
// contract retries every abort until the body commits; Atomic extends it so
// the application can participate in the decision:
//
//   - returning nil commits (retrying conflict aborts as usual);
//   - returning ErrRetry (or wrapping it) aborts the attempt, releases its
//     locks, applies the contention manager's backoff, and retries;
//   - returning any other error — or calling Tx.Abort — withdraws the
//     transaction: its locks are released, nothing is persisted, the error
//     comes back from Atomic, and the transaction is NOT retried. These
//     user aborts are counted in Stats.UserAborts, not Stats.Aborts.
//
// OnCommit/OnAbort register deferred side effects on the current attempt,
// which is how a transaction composes with §2's "no side effects inside
// transactions" rule without going full Irrevocable: the body stays
// re-executable, and the effect runs exactly once, after the outcome is
// known.

// ErrRetry, returned from an Atomic body (possibly wrapped), aborts the
// attempt and retries it after the contention manager's backoff — the
// explicit-retry idiom for "the state I need isn't there yet".
var ErrRetry = errors.New("core: retry transaction")

// ErrAborted is the error Atomic returns for a Tx.Abort(nil).
var ErrAborted = errors.New("core: transaction aborted")

// userAbortSignal unwinds a Tx.Abort out of the transaction body; the
// attempt recover arm turns it into an error return. It never escapes the
// package.
type userAbortSignal struct{ err error }

// Abort withdraws the transaction with the given error: the attempt's locks
// are released, nothing is persisted, and the enclosing Atomic returns err
// without retrying (Abort(ErrRetry) instead behaves exactly like returning
// ErrRetry). A nil err is replaced by ErrAborted. Abort does not return;
// inside Run/RunKind — which have no way to surface the error — it panics.
func (tx *Tx) Abort(err error) {
	if err == nil {
		err = ErrAborted
	}
	panic(userAbortSignal{err: err})
}

// OnCommit defers f until this attempt commits. Hooks run on the worker
// after the commit completed and every lock was released, in registration
// order, exactly once per committed transaction — an attempt that aborts
// discards its hooks with the rest of its buffers, so re-execution cannot
// double-fire them. f must not touch the Tx (the transaction is over); it
// may perform arbitrary side effects, like an Irrevocable body.
func (tx *Tx) OnCommit(f func()) { tx.onCommit = append(tx.onCommit, f) }

// OnAbort defers f until this attempt aborts, whatever the reason: a
// conflict, an ErrRetry, or a user abort. Hooks run after the attempt's
// locks are released, in registration order. A retried transaction runs its
// OnAbort hooks once per aborted attempt (each re-execution registers
// fresh ones); a committed attempt never runs them.
func (tx *Tx) OnAbort(f func()) { tx.onAbort = append(tx.onAbort, f) }

// runHooks fires the given hook list in registration order.
func (tx *Tx) runHooks(hooks []func()) {
	for _, f := range hooks {
		f()
	}
}

// finishUserAbort tears an attempt down on behalf of the application: the
// status register flips to aborted, every lock is released, and the
// transaction is handed back to the caller instead of the retry loop.
// ErrRetry (possibly wrapped) is rerouted through the ordinary abort path
// so it backs off and retries like a conflict.
func (rt *Runtime) finishUserAbort(tx *Tx, err error) (attemptOutcome, error) {
	if errors.Is(err, ErrRetry) {
		rt.abortCleanup(tx, abortSignal{reason: trace.ReasonUser})
		return attemptAborted, nil
	}
	rt.s.Regs.SetStatusLocal(rt.core, tx.id, mem.TxAborted)
	rt.releaseAll(tx)
	rt.shard.UserAborts++
	rt.shard.AbortReasons[trace.ReasonUser]++
	rt.emit(trace.KAbort, tx.id, uint64(trace.ReasonUser), 0, 0)
	rt.s.snap.AddAbort()
	tx.runHooks(tx.onAbort)
	return attemptUserAborted, err
}

// Atomic executes fn as a Normal transaction under the error-based control
// flow described above: nil commits, ErrRetry backs off and retries, any
// other error (or Tx.Abort) withdraws the transaction and is returned.
func (rt *Runtime) Atomic(fn func(*Tx) error) error { return rt.AtomicKind(Normal, fn) }

// AtomicKind is Atomic for an explicit transaction kind (elastic models,
// ReadOnly).
func (rt *Runtime) AtomicKind(kind TxKind, fn func(*Tx) error) error {
	_, err := rt.runLoop(kind, fn)
	return err
}

// AtomicReadOnly executes fn as a declared ReadOnly transaction (see
// RunReadOnly) under Atomic's error contract.
func (rt *Runtime) AtomicReadOnly(fn func(*Tx) error) error {
	return rt.AtomicKind(ReadOnly, fn)
}

// RunReadOnly executes fn as a declared ReadOnly transaction, retrying
// until commit, and returns the attempt count exactly like Run. Reads take
// visible read locks as usual; writes panic. The attempt path allocates no
// write set and the commit path skips the lock-acquisition machinery and
// bookkeeping entirely — the transaction serializes at its last read and
// only pays the release burst.
func (rt *Runtime) RunReadOnly(fn func(*Tx)) int { return rt.RunKind(ReadOnly, fn) }

package core

import (
	"reflect"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/port"
	"repro/internal/wire"
)

// Wire codec registration for the cross-process net backend. Exactly the
// closed set of DTM protocol messages (messages.go, irrevocable.go) plus the
// Batch coalescing envelope ever crosses a port boundary — applications go
// through the typed transaction API, never Port.Send — so these ten codecs
// are the complete wire vocabulary. Kind bytes are stable protocol
// constants: never renumber one, add new ones at the end and bump
// wire.Version.
//
// Encodings are little-endian and fixed-width (see internal/wire and
// docs/WIRE.md). Ints are encoded as two's-complement u64 so negative
// sentinels (respLock.NackOwner = -1) survive; port references travel as
// spawn-order port IDs and are re-resolved against the receiving process's
// replicated port table.
const (
	wkReqReadLock uint8 = iota + 1 // 0 reserved: catches zeroed buffers
	wkReqWriteLock
	wkRespLock
	wkRelLocks
	wkEarlyRelease
	wkBarrier
	wkReqExclusive
	wkRespExclusive
	wkRelExclusive
	wkBatch
)

func encMeta(e *wire.Enc, m cm.Meta) {
	e.Int(m.Core)
	e.U64(m.TxID)
	e.I64(m.Prio)
	e.Time(m.Offset)
}

func decMeta(d *wire.Dec) cm.Meta {
	return cm.Meta{Core: d.Int(), TxID: d.U64(), Prio: d.I64(), Offset: d.Time()}
}

func encAddrs(e *wire.Enc, as []mem.Addr) {
	e.U32(uint32(len(as)))
	for _, a := range as {
		e.U64(uint64(a))
	}
}

func decAddrs(d *wire.Dec) []mem.Addr {
	vs := d.U64s()
	if vs == nil {
		return nil
	}
	as := make([]mem.Addr, len(vs))
	for i, v := range vs {
		as[i] = mem.Addr(v)
	}
	return as
}

func typeOf[T any]() reflect.Type { return reflect.TypeOf((*T)(nil)).Elem() }

func init() {
	wire.Register(wire.Codec{
		Kind: wkReqReadLock, Type: typeOf[*reqReadLock](),
		Encode: func(e *wire.Enc, v any) {
			r := v.(*reqReadLock)
			e.U64(r.ReqID)
			e.U64(r.Epoch)
			e.U64(uint64(r.Addr))
			encMeta(e, r.Meta)
			e.Port(r.Reply)
			e.Int(r.ReplyTo)
		},
		Decode: func(d *wire.Dec) any {
			return &reqReadLock{
				ReqID: d.U64(), Epoch: d.U64(), Addr: mem.Addr(d.U64()),
				Meta: decMeta(d), Reply: d.Port(), ReplyTo: d.Int(),
			}
		},
	})
	wire.Register(wire.Codec{
		Kind: wkReqWriteLock, Type: typeOf[*reqWriteLock](),
		Encode: func(e *wire.Enc, v any) {
			r := v.(*reqWriteLock)
			e.U64(r.ReqID)
			e.U64(r.Epoch)
			encAddrs(e, r.Addrs)
			encMeta(e, r.Meta)
			e.Port(r.Reply)
			e.Int(r.ReplyTo)
		},
		Decode: func(d *wire.Dec) any {
			return &reqWriteLock{
				ReqID: d.U64(), Epoch: d.U64(), Addrs: decAddrs(d),
				Meta: decMeta(d), Reply: d.Port(), ReplyTo: d.Int(),
			}
		},
	})
	wire.Register(wire.Codec{
		Kind: wkRespLock, Type: typeOf[*respLock](),
		Encode: func(e *wire.Enc, v any) {
			r := v.(*respLock)
			e.U64(r.ReqID)
			e.Bool(r.OK)
			e.Bool(r.Stale)
			e.U8(uint8(r.Kind))
			e.U64s(r.Vers)
			e.U64(r.NackEpoch)
			e.Int(r.NackOwner)
		},
		Decode: func(d *wire.Dec) any {
			return &respLock{
				ReqID: d.U64(), OK: d.Bool(), Stale: d.Bool(), Kind: cm.Kind(d.U8()),
				Vers: d.U64s(), NackEpoch: d.U64(), NackOwner: d.Int(),
			}
		},
	})
	wire.Register(wire.Codec{
		Kind: wkRelLocks, Type: typeOf[*relLocks](),
		Encode: func(e *wire.Enc, v any) {
			r := v.(*relLocks)
			encAddrs(e, r.ReadAddrs)
			encAddrs(e, r.WriteAddrs)
			e.Int(r.Core)
			e.U64(r.TxID)
		},
		Decode: func(d *wire.Dec) any {
			return &relLocks{
				ReadAddrs: decAddrs(d), WriteAddrs: decAddrs(d),
				Core: d.Int(), TxID: d.U64(),
			}
		},
	})
	wire.Register(wire.Codec{
		Kind: wkEarlyRelease, Type: typeOf[*earlyRelease](),
		Encode: func(e *wire.Enc, v any) {
			r := v.(*earlyRelease)
			encAddrs(e, r.Addrs)
			e.Int(r.Core)
			e.U64(r.TxID)
		},
		Decode: func(d *wire.Dec) any {
			return &earlyRelease{Addrs: decAddrs(d), Core: d.Int(), TxID: d.U64()}
		},
	})
	wire.Register(wire.Codec{
		// barrierMsg is the one value-type payload (messages.go sends it
		// by value), so its codec round-trips a bare struct, not a pointer.
		Kind: wkBarrier, Type: typeOf[barrierMsg](),
		Encode: func(e *wire.Enc, v any) {
			e.U64(v.(barrierMsg).Epoch)
		},
		Decode: func(d *wire.Dec) any {
			return barrierMsg{Epoch: d.U64()}
		},
	})
	wire.Register(wire.Codec{
		Kind: wkReqExclusive, Type: typeOf[*reqExclusive](),
		Encode: func(e *wire.Enc, v any) {
			r := v.(*reqExclusive)
			e.Int(r.Core)
			e.U64(r.TxID)
			e.Port(r.Reply)
		},
		Decode: func(d *wire.Dec) any {
			return &reqExclusive{Core: d.Int(), TxID: d.U64(), Reply: d.Port()}
		},
	})
	wire.Register(wire.Codec{
		Kind: wkRespExclusive, Type: typeOf[*respExclusive](),
		Encode: func(e *wire.Enc, v any) {},
		Decode: func(d *wire.Dec) any { return &respExclusive{} },
	})
	wire.Register(wire.Codec{
		Kind: wkRelExclusive, Type: typeOf[*relExclusive](),
		Encode: func(e *wire.Enc, v any) {
			r := v.(*relExclusive)
			e.Int(r.Core)
			e.U64(r.TxID)
		},
		Decode: func(d *wire.Dec) any {
			return &relExclusive{Core: d.Int(), TxID: d.U64()}
		},
	})
	wire.Register(wire.Codec{
		// The coalescing envelope: a count followed by the nested encoding of
		// each staged payload. Nesting reuses the registry, so an envelope
		// may carry any mix of the message types above (but not another
		// Batch: the Outbox never stages envelopes).
		Kind: wkBatch, Type: typeOf[*port.Batch](),
		Encode: func(e *wire.Enc, v any) {
			b := v.(*port.Batch)
			e.U32(uint32(len(b.Payloads)))
			for _, pl := range b.Payloads {
				if err := wire.EncodePayload(e, pl); err != nil {
					panic(err)
				}
			}
		},
		Decode: func(d *wire.Dec) any {
			n := int(d.U32())
			b := &port.Batch{Payloads: make([]any, 0, n)}
			for i := 0; i < n; i++ {
				pl, err := wire.DecodePayload(d)
				if err != nil {
					return b // d carries the error; caller checks Err
				}
				b.Payloads = append(b.Payloads, pl)
			}
			return b
		},
	})
}

package core

import "repro/internal/port"

// Port is the execution port every piece of the DTM protocol runs against:
// one core's identity, clock, deterministic random source, and
// selective-receive mailbox (see repro/internal/port for the full method
// contract). TM2C's portability claim is that the protocol sits on a thin
// message-passing abstraction — Port is that abstraction here, and
// Config.Backend chooses its implementation:
//
//   - BackendSim: a proc of the deterministic discrete-event kernel.
//     Advance consumes virtual time, Send is charged the platform's modeled
//     latency, and a fixed seed reproduces the run bit-for-bit.
//   - BackendLive: a real goroutine with a channel mailbox. Advance is a
//     no-op, Now is the monotonic clock, and messages travel at channel
//     speed — the protocol at whatever rate the hardware sustains.
//
// Application code normally stays above this seam (workers get a *Runtime,
// transactions a *Tx); Port surfaces through SpawnRaw for
// non-transactional baselines and through Runtime.Port for code that needs
// the core's clock or RNG.
type Port = port.Port

package core

package core

import (
	"fmt"

	"repro/internal/mem"
)

// The typed transactional layer. The word-level Tx API (Read/ReadN/Write/
// WriteN over mem.Addr) mirrors the paper's TX_LOAD/TX_STORE and stays the
// supported low-level substrate; TVar and TArray are a zero-cost veneer on
// top of it: a typed handle over an n-word object plus a WordCodec that
// translates the application type to and from the object's words. Every
// typed access maps to exactly one ReadN/WriteN of the same base and
// length, so migrating an application from hand-rolled word encodings to
// TVars changes neither its lock keys nor its virtual-time behavior.
//
// Allocation is where data placement is decided on a many-core (§5.2 keeps
// new elements in the allocating core's closest memory controller), so the
// placement hint lives in the constructors: NewTVarNear/NewTArrayNear
// allocate behind the controller closest to a core, NewTVarAt/NewTArrayAt
// behind an explicit controller.

// WordCodec encodes values of type T as a fixed number of 64-bit words —
// the object granularity of the TM2C lock protocol. Encode must write
// exactly Words() words into dst; Decode must read only src[:Words()].
type WordCodec[T any] interface {
	Words() int
	Encode(v T, dst []uint64)
	Decode(src []uint64) T
}

type uint64Codec struct{}

func (uint64Codec) Words() int                  { return 1 }
func (uint64Codec) Encode(v uint64, d []uint64) { d[0] = v }
func (uint64Codec) Decode(s []uint64) uint64    { return s[0] }

// Uint64Codec returns the codec for a single uint64 word.
func Uint64Codec() WordCodec[uint64] { return uint64Codec{} }

type int64Codec struct{}

func (int64Codec) Words() int                 { return 1 }
func (int64Codec) Encode(v int64, d []uint64) { d[0] = uint64(v) }
func (int64Codec) Decode(s []uint64) int64    { return int64(s[0]) }

// Int64Codec returns the codec for a single int64 (two's complement word).
func Int64Codec() WordCodec[int64] { return int64Codec{} }

type boolCodec struct{}

func (boolCodec) Words() int { return 1 }
func (boolCodec) Encode(v bool, d []uint64) {
	if v {
		d[0] = 1
	} else {
		d[0] = 0
	}
}
func (boolCodec) Decode(s []uint64) bool { return s[0] != 0 }

// BoolCodec returns the codec for a bool (0/1 word).
func BoolCodec() WordCodec[bool] { return boolCodec{} }

type addrCodec struct{}

func (addrCodec) Words() int                    { return 1 }
func (addrCodec) Encode(v mem.Addr, d []uint64) { d[0] = uint64(v) }
func (addrCodec) Decode(s []uint64) mem.Addr    { return mem.Addr(s[0]) }

// AddrCodec returns the codec for a shared-memory address — the typed form
// of a pointer field in a linked structure (mem.Nil is the null pointer).
func AddrCodec() WordCodec[mem.Addr] { return addrCodec{} }

// funcCodec adapts a (words, encode, decode) triple into a WordCodec.
type funcCodec[T any] struct {
	words int
	enc   func(T, []uint64)
	dec   func([]uint64) T
}

func (c funcCodec[T]) Words() int               { return c.words }
func (c funcCodec[T]) Encode(v T, dst []uint64) { c.enc(v, dst) }
func (c funcCodec[T]) Decode(src []uint64) T    { return c.dec(src) }

// FuncCodec builds a WordCodec from explicit encode/decode functions — the
// escape hatch for fixed-size application structs (list nodes, histograms,
// records). words must be positive and both functions must honor it.
func FuncCodec[T any](words int, enc func(v T, dst []uint64), dec func(src []uint64) T) WordCodec[T] {
	if words <= 0 {
		panic(fmt.Sprintf("core: FuncCodec with %d words", words))
	}
	if enc == nil || dec == nil {
		panic("core: FuncCodec with nil encode/decode")
	}
	return funcCodec[T]{words: words, enc: enc, dec: dec}
}

// TVar is a typed transactional variable: one n-word shared-memory object
// accessed through a codec. The zero TVar is invalid; construct one with
// NewTVar/NewTVarNear/NewTVarAt or view an existing allocation with TVarAt.
// TVars are small values — copy them freely.
type TVar[T any] struct {
	sys   *System
	codec WordCodec[T]
	base  mem.Addr
}

// NewTVar allocates a TVar behind memory controller 0 and raw-writes init
// (setup outside the simulated machine; zero words are free).
func NewTVar[T any](sys *System, c WordCodec[T], init T) TVar[T] {
	return NewTVarAt(sys, c, 0, init)
}

// NewTVarAt allocates a TVar behind the given memory controller and
// raw-writes init.
func NewTVarAt[T any](sys *System, c WordCodec[T], mc int, init T) TVar[T] {
	v := TVar[T]{sys: sys, codec: c, base: sys.Mem.Alloc(c.Words(), mc)}
	v.SetRaw(init)
	return v
}

// NewTVarNear allocates a TVar behind the memory controller closest to
// core and raw-writes init — the data-placement hint of §5.2 ("each core
// adding a new element stores it in its closest memory controller").
// Workers allocating inside a transaction pass the zero value as init (raw
// zero writes are no-ops) and populate the object with a transactional Set.
func NewTVarNear[T any](sys *System, c WordCodec[T], core int, init T) TVar[T] {
	v := TVar[T]{sys: sys, codec: c, base: sys.Mem.AllocNear(c.Words(), core)}
	v.SetRaw(init)
	return v
}

// TVarAt views the existing allocation at base as a TVar — the typed form
// of following a pointer in a linked structure.
func TVarAt[T any](sys *System, c WordCodec[T], base mem.Addr) TVar[T] {
	return TVar[T]{sys: sys, codec: c, base: base}
}

// Addr returns the object's base address (its identity for lock striping,
// EarlyRelease, and pointer fields).
func (v TVar[T]) Addr() mem.Addr { return v.base }

// Words returns the object size in words.
func (v TVar[T]) Words() int { return v.codec.Words() }

// Get transactionally reads the variable (one ReadN of the whole object).
func (v TVar[T]) Get(tx *Tx) T {
	// Decode from the transaction-internal view: the decoded T is the only
	// thing that leaves this frame, so no defensive word copy is needed.
	return v.codec.Decode(tx.readNView(v.base, v.codec.Words()))
}

// Set transactionally writes the variable (one WriteN of the whole object).
func (v TVar[T]) Set(tx *Tx, val T) {
	// Encode into the per-attempt word arena; WriteN copies the words into
	// the write buffer, so the scratch is free for the next operation.
	buf := tx.rt.wordBuf(v.codec.Words())
	v.codec.Encode(val, buf)
	tx.WriteN(v.base, buf)
}

// GetRaw reads the variable without latency accounting (setup and
// verification code outside the simulated machine).
func (v TVar[T]) GetRaw() T {
	buf := make([]uint64, v.codec.Words())
	for i := range buf {
		buf[i] = v.sys.Mem.ReadRaw(v.base + mem.Addr(i))
	}
	return v.codec.Decode(buf)
}

// SetRaw writes the variable without latency accounting.
func (v TVar[T]) SetRaw(val T) {
	buf := make([]uint64, v.codec.Words())
	v.codec.Encode(val, buf)
	for i, w := range buf {
		v.sys.Mem.WriteRaw(v.base+mem.Addr(i), w)
	}
}

// GetDirect reads the variable non-transactionally with charged memory
// latency (one batched access, like the word-level Mem.ReadBatch) — for
// bare-sequential baselines and privatized data. §2's caveat applies:
// transactional data must not be accessed directly while transactions may
// touch it.
func (v TVar[T]) GetDirect(p Port, core int) T {
	return v.codec.Decode(v.sys.Mem.ReadBatch(p, core, v.base, v.codec.Words()))
}

// SetDirect writes the variable non-transactionally with charged memory
// latency (one batched access).
func (v TVar[T]) SetDirect(p Port, core int, val T) {
	n := v.codec.Words()
	buf := make([]uint64, n)
	v.codec.Encode(val, buf)
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = v.base + mem.Addr(i)
	}
	v.sys.Mem.WriteBatch(p, core, addrs, buf)
}

// GetIr reads the variable inside an irrevocable transaction.
func (v TVar[T]) GetIr(ir *Irrevocable) T {
	return v.codec.Decode(ir.ReadN(v.base, v.codec.Words()))
}

// SetIr writes the variable inside an irrevocable transaction
// (write-through; there is no abort).
func (v TVar[T]) SetIr(ir *Irrevocable, val T) {
	buf := make([]uint64, v.codec.Words())
	v.codec.Encode(val, buf)
	ir.WriteN(v.base, buf)
}

// EarlyRelease drops the object's read lock before commit (elastic-early
// transactions only; see Tx.EarlyRelease).
func (v TVar[T]) EarlyRelease(tx *Tx) { tx.EarlyRelease(v.base) }

// TArray is a typed transactional array: n contiguous objects of the same
// codec, each locked independently under its own base address. Like TVar,
// the zero TArray is invalid and values are cheap to copy.
type TArray[T any] struct {
	sys   *System
	codec WordCodec[T]
	base  mem.Addr
	n     int
}

// NewTArray allocates an n-element TArray behind memory controller 0 and
// raw-writes init into every element (like the paper's benchmark state,
// which funds its whole array behind one controller).
func NewTArray[T any](sys *System, c WordCodec[T], n int, init T) TArray[T] {
	return NewTArrayAt(sys, c, n, 0, init)
}

// NewTArrayAt allocates the array behind the given memory controller and
// raw-writes init into every element.
func NewTArrayAt[T any](sys *System, c WordCodec[T], n, mc int, init T) TArray[T] {
	if n <= 0 {
		panic(fmt.Sprintf("core: TArray of %d elements", n))
	}
	a := TArray[T]{sys: sys, codec: c, base: sys.Mem.Alloc(n*c.Words(), mc), n: n}
	for i := 0; i < n; i++ {
		a.SetRaw(i, init)
	}
	return a
}

// NewTArrayNear allocates the array behind the controller closest to core.
func NewTArrayNear[T any](sys *System, c WordCodec[T], n, core int, init T) TArray[T] {
	return NewTArrayAt(sys, c, n, sys.Mem.NearestMC(core), init)
}

// Len returns the element count.
func (a TArray[T]) Len() int { return a.n }

// Addr returns element i's base address.
func (a TArray[T]) Addr(i int) mem.Addr {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("core: TArray index %d out of %d", i, a.n))
	}
	return a.base + mem.Addr(i*a.codec.Words())
}

// At returns a TVar view of element i.
func (a TArray[T]) At(i int) TVar[T] {
	return TVar[T]{sys: a.sys, codec: a.codec, base: a.Addr(i)}
}

// Get transactionally reads element i.
func (a TArray[T]) Get(tx *Tx, i int) T { return a.At(i).Get(tx) }

// Set transactionally writes element i.
func (a TArray[T]) Set(tx *Tx, i int, val T) { a.At(i).Set(tx, val) }

// GetRaw reads element i without latency accounting.
func (a TArray[T]) GetRaw(i int) T { return a.At(i).GetRaw() }

// SetRaw writes element i without latency accounting.
func (a TArray[T]) SetRaw(i int, val T) { a.At(i).SetRaw(val) }

package core

import (
	"testing"

	"repro/internal/cm"
	"repro/internal/mem"
)

func TestIrrevocableRunsExactlyOnce(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	runs := 0
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.RunIrrevocable(func(ir *Irrevocable) {
			runs++ // a side effect: must happen exactly once
			ir.Write(a, ir.Read(a)+1)
		})
	})
	st := s.RunToCompletion()
	if runs != 1 {
		t.Fatalf("irrevocable body ran %d times", runs)
	}
	if s.Mem.ReadRaw(a) != 1 {
		t.Fatal("irrevocable write lost")
	}
	if st.Irrevocables != 1 {
		t.Fatalf("Irrevocables = %d", st.Irrevocables)
	}
	if s.LockedAddrs() != 0 {
		t.Fatal("locks leaked")
	}
}

func TestIrrevocableAtomicAgainstTransactions(t *testing.T) {
	// Core 0 repeatedly runs an irrevocable read-modify-write over two
	// words that must stay equal; other cores update the pair
	// transactionally. Neither side may observe or produce a torn pair.
	s := testSystem(t, func(c *Config) { c.Policy = cm.FairCM })
	pair := s.Mem.Alloc(2, 0)
	const perCore = 15
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() == 0 {
			for i := 0; i < perCore; i++ {
				rt.RunIrrevocable(func(ir *Irrevocable) {
					x := ir.Read(pair)
					y := ir.Read(pair + 1)
					if x != y {
						t.Errorf("irrevocable observed torn pair: %d != %d", x, y)
					}
					ir.Write(pair, x+1)
					ir.Write(pair+1, y+1)
				})
			}
			return
		}
		for i := 0; i < perCore; i++ {
			rt.Run(func(tx *Tx) {
				x := tx.Read(pair)
				y := tx.Read(pair + 1)
				if x != y {
					t.Errorf("transaction observed torn pair: %d != %d", x, y)
				}
				tx.Write(pair, x+1)
				tx.Write(pair+1, y+1)
			})
		}
	})
	s.RunToCompletion()
	x, y := s.Mem.ReadRaw(pair), s.Mem.ReadRaw(pair+1)
	if x != y {
		t.Fatalf("final pair torn: %d != %d", x, y)
	}
	want := uint64(perCore * s.NumAppCores())
	if x != want {
		t.Fatalf("pair = %d, want %d (lost updates)", x, want)
	}
	if s.LockedAddrs() != 0 {
		t.Fatal("locks leaked")
	}
}

func TestTwoIrrevocablesSerialize(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() > 1 {
			return
		}
		for i := 0; i < 10; i++ {
			rt.RunIrrevocable(func(ir *Irrevocable) {
				ir.Write(a, ir.Read(a)+1)
			})
		}
	})
	s.RunToCompletion()
	if got := s.Mem.ReadRaw(a); got != 20 {
		t.Fatalf("counter = %d, want 20 (irrevocables interleaved!)", got)
	}
}

func TestIrrevocableUnderMultitask(t *testing.T) {
	s := testSystem(t, func(c *Config) { c.Deployment = Multitask; c.TotalCores = 4 })
	a := s.Mem.Alloc(1, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		rt.RunIrrevocable(func(ir *Irrevocable) {
			ir.Write(a, ir.Read(a)+1)
		})
	})
	s.RunToCompletion()
	if got := s.Mem.ReadRaw(a); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
}

func TestStaleExclusiveReleaseIgnored(t *testing.T) {
	s := testSystem(t, nil)
	a := s.Mem.Alloc(1, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		// A stray release for a token nobody holds must be a no-op.
		for ni := range s.nodes {
			rel := &relExclusive{Core: rt.Core(), TxID: 9999}
			s.send(&rt.shard, rt.rec, rt.Port(), rt.Core(), s.nodePorts[ni], s.nodes[ni].core, rel, rel.bytes())
		}
		rt.RunIrrevocable(func(ir *Irrevocable) { ir.Write(a, 1) })
		rt.Run(func(tx *Tx) { tx.Write(a, tx.Read(a)+1) })
	})
	s.RunToCompletion()
	if got := s.Mem.ReadRaw(a); got != 2 {
		t.Fatalf("a = %d, want 2", got)
	}
}

func TestIrrevocableStatusNotAbortable(t *testing.T) {
	s := testSystem(t, nil)
	s.SpawnWorkers(func(rt *Runtime) {
		if rt.AppIndex() != 0 {
			return
		}
		rt.RunIrrevocable(func(ir *Irrevocable) {
			// A CM-style CAS from pending must fail: the register was set
			// directly to committing.
			id, st := s.Regs.LoadStatusLocal(rt.Core())
			if st != mem.TxCommitting {
				t.Errorf("irrevocable status = %v, want committing", st)
			}
			if s.Regs.CASStatusLocal(rt.Core(), id, mem.TxPending, mem.TxAborted) {
				t.Error("irrevocable transaction was abortable")
			}
		})
	})
	s.RunToCompletion()
}

// Package core implements the TM2C runtime: the APP service (transactional
// wrappers and commit protocol, §3.3), the DTM service (DS-Lock request
// handling with distributed contention management, §3.2/§4), the two
// deployment strategies (§3.1), and the elastic transaction extension (§6).
//
// A System wires a simulated many-core (internal/sim + internal/noc +
// internal/mem) to a set of DTM nodes and application runtimes. Application
// code runs inside worker procs and uses the Tx API; every shared access is
// transparently turned into message-passing lock acquisition against the
// responsible DTM node, exactly following Algorithms 1-4 of the paper.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/cm"
	"repro/internal/noc"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Backend selects the execution backend a System runs on. The whole DTM
// protocol is written against the Port interface, so the same code runs on
// either backend; what changes is what a "core" physically is and what time
// means. See the package comments of internal/sim and internal/live.
type Backend uint8

const (
	// BackendSim (the default) runs on the deterministic discrete-event
	// simulator: virtual time, modeled platform latencies, bit-for-bit
	// reproducible for a given seed, full serializability audit available.
	BackendSim Backend = iota
	// BackendLive runs every application core and DTM node as a real
	// goroutine: wall-clock time, channel messaging, hardware speed.
	// Interleavings are scheduler-dependent, so runs are not reproducible
	// and the audit is unavailable; correctness is checked with invariants
	// (conservation, lock-table emptiness at quiesce, -race).
	BackendLive
	// BackendNet runs the system across separate OS processes: every rank
	// builds the identical System from the identical Config, hosts the cores
	// it owns as live-style goroutines, and reaches the others over
	// length-prefixed binary frames on TCP or Unix sockets (internal/net,
	// internal/wire). Like live, wall-clock time and invariant checking; in
	// addition the real failure surfaces (per-RPC deadlines, reconnects,
	// drain-then-close shutdown) are exercised.
	BackendNet
)

func (b Backend) String() string {
	switch b {
	case BackendLive:
		return "live"
	case BackendNet:
		return "net"
	}
	return "sim"
}

// ParseBackend parses a backend name (sim|live|net).
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "sim":
		return BackendSim, nil
	case "live":
		return BackendLive, nil
	case "net":
		return BackendNet, nil
	}
	return BackendSim, fmt.Errorf("core: unknown backend %q (want sim|live|net)", s)
}

// NetConfig places one process (rank) of a cross-process system. All ranks
// must construct their System from the same Config differing only in Rank:
// the net backend relies on replicated construction for its port table, so
// every field that shapes spawn order must match.
type NetConfig struct {
	// Ranks is the number of cooperating processes (>= 2).
	Ranks int
	// Rank is this process's index in [0, Ranks).
	Rank int
	// Addrs lists every rank's listen address, indexed by rank. Two forms:
	// "unix:<path>" for Unix domain sockets, "host:port" for TCP (loopback
	// by default in the CLI front-ends).
	Addrs []string
	// Session distinguishes successive systems multiplexed over one address
	// base (a bench process runs many systems back to back). Ranks must
	// agree on the session of each system; -1 asks the backend to draw from
	// its per-process counter, which stays aligned across ranks because all
	// ranks construct the same deterministic sequence of systems.
	Session int
}

// Protocol selects the read/commit protocol transactions run under. The
// whole DTM plane (placement, contention management, message transports) is
// shared; what changes is when the network is consulted.
type Protocol uint8

const (
	// ProtocolVisible (the default) is TM2C's visible-read protocol: every
	// read acquires a read lock from the responsible DTM node (one
	// request/grant round trip per first read of a stripe), writes acquire
	// write locks lazily at commit, and conflicts are resolved eagerly by
	// the distributed contention managers. Bit-identical to the pre-TL2
	// engine; all figure fingerprints pin this mode.
	ProtocolVisible Protocol = iota
	// ProtocolTL2 is the invisible-read mode in the TL2 style: reads are
	// local (read the object and its version, validate against the
	// transaction's snapshot of the sharded global version clock — zero
	// wire messages), writes buffer locally, and commit does the only
	// network work: scatter write-lock acquisition, a clock tick, read-set
	// revalidation against versions piggybacked on the grants, write-back,
	// release. Doomed reads (version newer than the snapshot, or a write-
	// back in flight) abort immediately, which is what preserves opacity.
	// Elastic kinds degenerate to plain TL2 (reads are already invisible);
	// irrevocable transactions are unsupported (invisible readers cannot be
	// blocked by exclusivity tokens).
	ProtocolTL2
)

func (p Protocol) String() string {
	if p == ProtocolTL2 {
		return "tl2"
	}
	return "visible"
}

// ParseProtocol parses a protocol name (visible|tl2).
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "", "visible":
		return ProtocolVisible, nil
	case "tl2":
		return ProtocolTL2, nil
	}
	return ProtocolVisible, fmt.Errorf("core: unknown protocol %q (want visible|tl2)", s)
}

// Deployment selects how the APP and DTM services share the cores (§3.1).
type Deployment uint8

const (
	// Dedicated assigns disjoint core sets to the application and the DTM
	// service. This is TM2C's default strategy.
	Dedicated Deployment = iota
	// Multitask co-locates both services on every core, libtask-style: the
	// DTM part of a core only runs when the application part yields, so
	// service requests can wait behind local computation (Figure 2).
	Multitask
)

func (d Deployment) String() string {
	if d == Multitask {
		return "multitask"
	}
	return "dedicated"
}

// AcquireMode selects when write locks are acquired (§3.3).
type AcquireMode uint8

const (
	// Lazy defers write-lock acquisition to commit time (write-back).
	// TM2C's default: it shortens the write-lock hold window and enables
	// write-lock batching.
	Lazy AcquireMode = iota
	// Eager acquires the write lock inside the txwrite wrapper, for the
	// Figure 4(c) comparison.
	Eager
)

func (m AcquireMode) String() string {
	if m == Eager {
		return "eager"
	}
	return "lazy"
}

// TxKind selects the transactional model for a transaction (§6).
type TxKind uint8

const (
	// Normal transactions acquire visible read locks on every read.
	Normal TxKind = iota
	// ElasticEarly transactions may release read locks early through
	// Tx.EarlyRelease (the DSTM-style explicit release implementation).
	ElasticEarly
	// ElasticRead transactions take no read locks at all: consecutive-read
	// atomicity is enforced by re-reading a small validation window from
	// shared memory.
	ElasticRead
	// ReadOnly transactions declare up front that they will not write:
	// reads follow the normal visible read-lock protocol, writes panic, and
	// the attempt path skips write-set allocation and the entire commit-time
	// lock machinery — a declared read-only commit only fires its release
	// burst (no commit bookkeeping, no status CAS, no persist). Committed
	// ones are counted in Stats.ReadOnlyCommits.
	ReadOnly
)

func (k TxKind) String() string {
	switch k {
	case ElasticEarly:
		return "elastic-early"
	case ElasticRead:
		return "elastic-read"
	case ReadOnly:
		return "read-only"
	default:
		return "normal"
	}
}

// Costs are the nominal software costs of the runtime, defined for the SCC's
// 533 MHz cores and scaled by the platform's compute factor.
type Costs struct {
	TxBegin    time.Duration // starting a transaction attempt
	Wrapper    time.Duration // per transactional read/write wrapper call
	Commit     time.Duration // commit bookkeeping
	SvcBase    time.Duration // DTM: per-message dispatch
	SvcLock    time.Duration // DTM: per lock acquire/conflict check
	SvcRelease time.Duration // DTM: per lock release
	// MultitaskSwitch is charged per DTM request served by a multitasked
	// core: the libtask-style coroutine switch into the service task and
	// back, plus the cache disturbance it causes (§3.1). Dedicated
	// deployments never pay it.
	MultitaskSwitch time.Duration
	// ClockSnap and ClockTick are the TL2 version-clock register-plane
	// costs: loading the per-shard counters at transaction begin, and the
	// atomic increment of one shard at an update commit. The visible
	// protocol never pays either.
	ClockSnap time.Duration
	ClockTick time.Duration
}

// DefaultCosts are the calibrated nominal costs.
var DefaultCosts = Costs{
	TxBegin:         200 * time.Nanosecond,
	Wrapper:         150 * time.Nanosecond,
	Commit:          300 * time.Nanosecond,
	SvcBase:         200 * time.Nanosecond,
	SvcLock:         300 * time.Nanosecond,
	SvcRelease:      120 * time.Nanosecond,
	MultitaskSwitch: 5 * time.Microsecond,
	ClockSnap:       150 * time.Nanosecond,
	ClockTick:       250 * time.Nanosecond,
}

// Config describes one TM2C system instance.
type Config struct {
	// Platform is the timing model (default: SCC setting 0). On the live
	// backend it still shapes the workload topology (core counts, memory
	// regions) but its latencies are not charged.
	Platform noc.Platform
	// Backend selects the execution backend: the deterministic simulator
	// (default) or the real-concurrency goroutine backend.
	Backend Backend
	// Protocol selects the read/commit protocol: the paper's visible-read
	// default, or the invisible-read TL2 mode.
	Protocol Protocol
	// Seed drives all pseudo-randomness.
	Seed uint64
	// TotalCores is the number of cores used (default: all platform cores).
	TotalCores int
	// ServiceCores is the size of the DTM partition in Dedicated mode
	// (default: half the cores, the paper's standard split). Ignored under
	// Multitask, where every core hosts both services. The special value
	// -1 builds a system with no DTM service at all, for purely
	// non-transactional baselines (every core is an application core;
	// only SpawnRaw may be used).
	ServiceCores int
	// Deployment selects Dedicated (default) or Multitask.
	Deployment Deployment
	// Policy is the contention manager (default NoCM, as in the paper).
	Policy cm.Policy
	// Acquire selects lazy (default) or eager write-lock acquisition.
	Acquire AcquireMode
	// NoBatching disables write-lock batching (one message per object
	// instead of one per DTM node) for the batching ablation.
	NoBatching bool
	// SerialRPC disables commit-time scatter-gather lock acquisition: the
	// per-node write-lock batches of a lazy commit are sent one at a time,
	// each awaiting its response before the next is sent (one round trip
	// per responsible node, the pre-RPC-layer behavior), instead of all at
	// once with a single gather phase. For the RPC ablation; releases stay
	// fire-and-forget either way.
	SerialRPC bool
	// Coalesce enables the coalescing message plane: protocol payloads
	// headed to the same destination within one burst — a commit scatter,
	// a release burst, the responses of one DTM dispatch — leave as a
	// single multi-payload wire message (port.Outbox → sim.Batch), charged
	// the batched cost model (noc.BatchDelay: fixed software overheads
	// once per wire message, marginal bytes per payload). Off by default:
	// the uncoalesced plane is the bit-identical historic behavior the
	// figure fingerprints pin. Stats.WireMsgs/CoalescedPayloads quantify
	// the effect; the ablbatch ablation compares both planes.
	Coalesce bool
	// AdaptiveFlush upgrades the application cores' coalescing outbox from
	// flush-at-burst-end to size/age-triggered emission: a release or
	// early-release burst leaves a staged entry in place unless it already
	// carries FlushBytes of payload or has waited FlushAge since its first
	// payload, so releases from consecutive transactions headed to the same
	// DTM node share a wire message across burst boundaries. Fire-and-forget
	// traffic only — everything awaited (lock requests, responses, DTM node
	// replies, barriers) still flushes at the burst end, and a held release
	// is revocable (the lock-stealing path treats a finished attempt's lock
	// as stale), so deferral can cost an enemy a retry but never a deadlock.
	// Requires Coalesce; sim-visible knob, off by default (the pinned
	// fingerprints run the plain coalescing plane).
	AdaptiveFlush bool
	// FlushBytes and FlushAge override the adaptive-flush triggers (defaults
	// from the platform: Platform.FlushBytes/FlushAge). Ignored unless
	// AdaptiveFlush is set.
	FlushBytes int
	FlushAge   time.Duration
	// LockGranule is the number of words covered by one lock stripe; it
	// must be a power of two (default 1). Objects larger than the granule
	// are locked by their base address.
	LockGranule int
	// Placement selects the object→DTM-node placement policy: the static
	// multiplicative hash of §3.2 (default), contiguous range striping, the
	// adaptive epoch-based repartitioner, or the hierarchical adaptive
	// repartitioner with locality-aware co-mapping (internal/placement).
	Placement placement.Kind
	// RepartitionEpoch is the adaptive placement epoch length: the number
	// of recorded lock-key accesses between repartition evaluations
	// (default 2048). Static policies ignore it.
	RepartitionEpoch int
	// MemWords is the per-memory-controller-region word capacity the
	// placement directory's stripe universe covers (default 1<<26, 67M
	// words per region). Addresses beyond it panic loudly at directory
	// resolution instead of silently aliasing onto low stripes; raise it
	// for workloads allocating beyond 64M words behind one controller.
	MemWords uint64
	// Costs overrides the nominal software costs (default DefaultCosts).
	Costs *Costs
	// Trace enables the flight recorder (internal/trace): every runtime,
	// DTM node and the placement directory gets a ring buffer of fixed-size
	// event records, assembled into a Trace at snapshot time (System.Trace,
	// and Trace.Sink if set). Nil — the default — disables tracing; every
	// emit site then costs exactly one nil comparison, which is what keeps
	// trace-off runs bit-identical to the pinned fingerprints.
	Trace *trace.Options
	// Snapshot enables the live backend's periodic metrics snapshotter:
	// interval-sampled commit/abort/op counters written as a JSONL time
	// series while the run is in flight. Ignored on the sim backend (the
	// sim is single-threaded virtual time; mid-run wall-clock sampling is
	// meaningless there).
	Snapshot *trace.SnapshotOptions
	// Net places this process within a cross-process system. Required (and
	// only meaningful) on BackendNet.
	Net *NetConfig
	// RPCDeadline bounds every awaited lock-response round trip on the net
	// backend: an RPC that outlives it aborts the attempt (ReasonTimeout,
	// Stats.RPCTimeouts) with conservative lock release, mapping peer
	// stalls and broken connections onto the ordinary retry machinery.
	// Defaults to 2s on net; ignored on sim/live, whose transports cannot
	// lose messages.
	RPCDeadline time.Duration
	// ArrivalStamp makes a DTM node timestamp contending requests at
	// envelope arrival instead of each payload's service instant: every
	// payload of one coalesced burst then carries the same OffsetGreedy
	// arrival time. Answers the FairCM fairness question raised when the
	// coalescing plane landed; see README. Sim-visible knob, off by
	// default (per-payload service-instant stamping is the pinned
	// historic behavior).
	ArrivalStamp bool
}

func (c *Config) normalize() error {
	if c.Backend > BackendNet {
		return fmt.Errorf("core: unknown backend %d", c.Backend)
	}
	if c.Protocol > ProtocolTL2 {
		return fmt.Errorf("core: unknown protocol %d", c.Protocol)
	}
	if c.Backend == BackendNet {
		n := c.Net
		if n == nil {
			return errors.New("core: net backend requires Config.Net")
		}
		if n.Ranks < 2 {
			return fmt.Errorf("core: net backend needs >= 2 ranks, got %d", n.Ranks)
		}
		if n.Rank < 0 || n.Rank >= n.Ranks {
			return fmt.Errorf("core: net rank %d out of range [0,%d)", n.Rank, n.Ranks)
		}
		if len(n.Addrs) != n.Ranks {
			return fmt.Errorf("core: net backend needs %d addresses, got %d", n.Ranks, len(n.Addrs))
		}
		if c.Protocol == ProtocolTL2 {
			return errors.New("core: tl2 protocol needs a shared version clock; unsupported on the net backend")
		}
		if c.Placement == placement.Adaptive || c.Placement == placement.AdaptiveHier {
			return errors.New("core: adaptive placement needs a shared directory; unsupported on the net backend")
		}
		if c.RPCDeadline == 0 {
			c.RPCDeadline = 2 * time.Second
		}
	}
	if c.Platform.NumCores() == 0 {
		c.Platform = noc.SCC(0)
	}
	if c.TotalCores == 0 {
		c.TotalCores = c.Platform.NumCores()
	}
	if c.TotalCores < 2 {
		return errors.New("core: need at least 2 cores")
	}
	if c.TotalCores > c.Platform.NumCores() {
		return fmt.Errorf("core: %d cores requested but platform has %d",
			c.TotalCores, c.Platform.NumCores())
	}
	if c.Deployment == Dedicated {
		switch {
		case c.ServiceCores == -1:
			c.ServiceCores = 0 // raw-only system
		case c.ServiceCores == 0:
			c.ServiceCores = c.TotalCores / 2
		}
		if c.ServiceCores < 0 || c.ServiceCores >= c.TotalCores {
			return fmt.Errorf("core: invalid service-core count %d of %d",
				c.ServiceCores, c.TotalCores)
		}
	}
	if c.AdaptiveFlush {
		if !c.Coalesce {
			return errors.New("core: AdaptiveFlush requires Coalesce (there is no outbox to govern without it)")
		}
		if c.FlushBytes == 0 {
			c.FlushBytes = c.Platform.FlushBytes()
		}
		if c.FlushAge == 0 {
			c.FlushAge = c.Platform.FlushAge()
		}
		if c.FlushBytes < 0 || c.FlushAge < 0 {
			return fmt.Errorf("core: negative adaptive-flush trigger (bytes %d, age %v)", c.FlushBytes, c.FlushAge)
		}
	}
	if c.LockGranule == 0 {
		c.LockGranule = 1
	}
	if c.LockGranule&(c.LockGranule-1) != 0 {
		return fmt.Errorf("core: lock granule %d is not a power of two", c.LockGranule)
	}
	if c.Placement > placement.AdaptiveHier {
		return fmt.Errorf("core: unknown placement policy %d", c.Placement)
	}
	if c.RepartitionEpoch < 0 {
		return fmt.Errorf("core: negative repartition epoch %d", c.RepartitionEpoch)
	}
	if c.MemWords == 0 {
		c.MemWords = 1 << 26
	}
	if c.Costs == nil {
		c.Costs = &DefaultCosts
	}
	return nil
}

// Stats are the counters of one run. All app-core counters are aggregated;
// PerCore holds the per-application-core breakdown.
type Stats struct {
	Commits uint64 // committed transactions
	Aborts  uint64 // aborted transaction attempts
	Ops     uint64 // application-level operations completed

	// ReadOnlyCommits counts the committed transactions that ran as the
	// declared ReadOnly kind (a subset of Commits). They take read locks but
	// never contribute write-lock requests or commit round trips.
	ReadOnlyCommits uint64

	// UserAborts counts transactions withdrawn by the application through
	// Tx.Abort or a non-retry error returned from an Atomic body. They are
	// not retried and are counted separately from Aborts (which tracks
	// aborted attempts that go back around the retry loop).
	UserAborts uint64

	// AbortsByKind sub-classifies conflict aborts by the conflict kind the
	// losing lock request reported (indexed by cm.Kind). AbortReasons is
	// the complete taxonomy; this array refines its ReasonConflict bucket.
	AbortsByKind [3]uint64

	// AbortReasons partitions every abort — retried attempts and withdrawn
	// transactions alike — by why it died (indexed by trace.Reason:
	// conflict, revoked, doomed-read, stale-placement, user). Invariant:
	// the sum over AbortReasons equals Aborts + UserAborts.
	AbortReasons [trace.NumReasons]uint64

	// Message traffic. Msgs counts protocol payloads (the logical message
	// plane); WireMsgs counts physical wire messages. Without coalescing
	// they are equal. With Config.Coalesce, payloads staged for the same
	// destination within one burst share a wire message, so WireMsgs <=
	// Msgs and Msgs/WireMsgs is the average payloads per wire message.
	// CoalescedPayloads counts the payloads that rode in multi-payload
	// envelopes (0 when coalescing is off or never merged anything).
	Msgs              uint64
	MsgBytes          uint64
	WireMsgs          uint64
	CoalescedPayloads uint64
	ReadLockReqs      uint64
	WriteLockReqs     uint64
	ReleaseMsgs       uint64
	EarlyReleases     uint64
	Responses         uint64

	// CommitRoundTrips counts the awaited round-trip phases of commit-time
	// write-lock acquisition: under SerialRPC one per per-node batch, under
	// scatter-gather one per commit attempt with a non-empty write set
	// (however many batches are in flight). Eager acquisition pays its round
	// trips inside the write wrappers and contributes zero here.
	CommitRoundTrips uint64

	// DTM activity.
	Conflicts   uint64
	Revocations uint64 // enemy aborts performed by CMs

	// Placement activity (adaptive policies; see internal/placement).
	StaleNacks        uint64 // lock requests NACKed for stale placement resolution
	StaleNackHints    uint64 // stale-NACK retries steered by the piggybacked owner hint
	PlacementAborts   uint64 // attempts aborted after chasing migrating ownership too long
	RepartitionRounds uint64 // repartition rounds that initiated at least one migration
	Migrations        uint64 // stripe migrations initiated by the directory
	Handoffs          uint64 // stripe handoffs completed by DTM nodes

	// Hierarchical-directory activity (adaptive policies). The leaf counters
	// are end-of-run gauges, not sums: MaterializedLeaves ≪ LeafUniverse is
	// the O(touched) scaling witness.
	DirSplits          uint64 // super-stripes materialized into leaves
	DirMerges          uint64 // cooled leaves dematerialized
	MaterializedLeaves int    // leaves materialized at the end of the run
	LeafUniverse       int    // super-stripes the universe divides into

	// Thread/data locality (adaptive policies with platform clusters wired;
	// see noc.Platform.ClusterOf). A recorded access is local when the
	// accessor's cluster contains the owning DTM node. RemoteAccessRatio
	// summarizes; the hier policy's co-mapping exists to shrink it.
	LocalAccesses  uint64
	RemoteAccesses uint64

	// TL2 protocol activity (Protocol=tl2; all zero under the visible
	// default).
	LocalReads    uint64 // invisible reads served from local memory, zero wire messages
	DoomedReads   uint64 // reads aborted by snapshot validation (newer version or write-back in flight)
	Revalidations uint64 // commit-time read-set stripe re-checks
	ClockAdvances uint64 // version-clock ticks (one per update commit that reached write-back)

	// NodeLoad counts the requests served by each DTM node, by node index
	// (lock requests, releases and exclusivity traffic, including NACKed
	// ones). LoadImbalance summarizes it.
	NodeLoad []uint64

	// Irrevocables counts completed irrevocable transactions (§2
	// extension).
	Irrevocables uint64

	// RPCTimeouts counts awaited lock-response RPCs that exceeded
	// Config.RPCDeadline on the net backend (each one also aborts its
	// attempt under AbortReasons[ReasonTimeout]). Zero on sim/live.
	RPCTimeouts uint64

	// Run length: virtual on the sim backend, wall-clock on live.
	Duration sim.Time

	PerCore []CoreStats
}

// addShard folds one execution context's counter shard into s. Every
// runtime and DTM node accumulates into its own shard — the only thing
// that makes the live backend's concurrent increments race-free — and the
// post-quiesce snapshot merges them here. All fields are sums, so the
// merged totals are independent of merge order and bit-identical to the
// old single-struct accumulation on the sim backend.
func (s *Stats) addShard(o *Stats) {
	s.ReadOnlyCommits += o.ReadOnlyCommits
	s.UserAborts += o.UserAborts
	for i, v := range o.AbortsByKind {
		s.AbortsByKind[i] += v
	}
	for i, v := range o.AbortReasons {
		s.AbortReasons[i] += v
	}
	s.Msgs += o.Msgs
	s.MsgBytes += o.MsgBytes
	s.WireMsgs += o.WireMsgs
	s.CoalescedPayloads += o.CoalescedPayloads
	s.ReadLockReqs += o.ReadLockReqs
	s.WriteLockReqs += o.WriteLockReqs
	s.ReleaseMsgs += o.ReleaseMsgs
	s.EarlyReleases += o.EarlyReleases
	s.Responses += o.Responses
	s.CommitRoundTrips += o.CommitRoundTrips
	s.Conflicts += o.Conflicts
	s.Revocations += o.Revocations
	s.StaleNacks += o.StaleNacks
	s.StaleNackHints += o.StaleNackHints
	s.PlacementAborts += o.PlacementAborts
	s.LocalReads += o.LocalReads
	s.DoomedReads += o.DoomedReads
	s.Revalidations += o.Revalidations
	s.ClockAdvances += o.ClockAdvances
	s.Irrevocables += o.Irrevocables
	s.RPCTimeouts += o.RPCTimeouts
}

// CoreStats is the per-application-core breakdown.
type CoreStats struct {
	Core    int
	Commits uint64
	Aborts  uint64
	Ops     uint64
}

// Throughput returns completed operations per virtual millisecond.
func (s *Stats) Throughput() float64 {
	if s.Duration == 0 {
		return 0
	}
	return float64(s.Ops) / (float64(s.Duration) / 1e6)
}

// LoadImbalance returns the max/mean ratio of per-DTM-node served request
// counts: 1 means perfectly balanced, len(NodeLoad) means one node served
// everything. It returns 0 when no node served any request.
func (s *Stats) LoadImbalance() float64 {
	var max, total uint64
	for _, v := range s.NodeLoad {
		total += v
		if v > max {
			max = v
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(s.NodeLoad)) / float64(total)
}

// PayloadsPerWireMsg returns the average number of protocol payloads per
// physical wire message: 1 when nothing coalesced, higher when
// Config.Coalesce merged bursts. It returns 0 when no message was sent.
func (s *Stats) PayloadsPerWireMsg() float64 {
	if s.WireMsgs == 0 {
		return 0
	}
	return float64(s.Msgs) / float64(s.WireMsgs)
}

// RemoteAccessRatio returns the fraction of recorded lock accesses whose
// owning DTM node sat outside the accessor's locality cluster: 0 means
// perfectly co-mapped, 1 means every access crossed clusters. It returns 0
// when locality was not tracked (static placement, or no cluster map).
func (s *Stats) RemoteAccessRatio() float64 {
	total := s.LocalAccesses + s.RemoteAccesses
	if total == 0 {
		return 0
	}
	return float64(s.RemoteAccesses) / float64(total)
}

// CommitRate returns the fraction of attempts that committed, in percent.
func (s *Stats) CommitRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 100
	}
	return 100 * float64(s.Commits) / float64(total)
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
)

// The audit subsystem is an executable check of the correctness claim of
// §2: TM2C ensures atomic consistency (opacity) of transactions. With
// visible reads and two-phase locking, every committed Normal transaction
// holds all its read and write locks at the instant it persists, so the
// whole transaction is atomic at its commit point. The auditor records
// every committed transaction's first-read values and written values, then
// replays the commits in commit order against a model memory: every
// recorded read must equal the model state at that point.
//
// Elastic transactions are exempt from read checking (their reads are
// deliberately not serialized at the commit point — that is the model's
// relaxation); their writes still participate in the replay.
//
// Auditing is a test/diagnostic facility: it allocates per-commit records,
// so enable it only on bounded runs.

// auditRecord is one committed transaction.
type auditRecord struct {
	core   int
	txID   uint64
	kind   TxKind
	strict bool // reads must match the serial state at the commit instant
	commit sim.Time
	seq    uint64 // tie-break for equal commit instants
	reads  []auditAccess
	writes []auditAccess
}

// auditAccess is one object access.
type auditAccess struct {
	base mem.Addr
	vals []uint64
}

// auditor collects commit records.
type auditor struct {
	records []auditRecord
	seq     uint64
}

// EnableAudit switches on commit recording. Call before SpawnWorkers. The
// audit is a sim-backend facility: it replays commits in their exact
// recorded order, which only exists under the deterministic kernel. Live
// runs are checked with invariants instead (conservation, lock-table
// emptiness at quiesce; see internal/live's tests).
func (s *System) EnableAudit() {
	if s.cfg.Backend == BackendLive {
		panic("core: EnableAudit requires the sim backend (live runs have no global commit order to replay)")
	}
	if s.audit == nil {
		s.audit = &auditor{}
	}
}

// recordCommit captures a committed transaction. Called at the commit
// instant (after persist), while the kernel guarantees mutual exclusion.
func (s *System) recordCommit(tx *Tx, commit sim.Time) {
	a := s.audit
	if a == nil {
		return
	}
	a.seq++
	rec := auditRecord{
		core: tx.rt.core,
		txID: tx.id,
		kind: tx.kind,
		// Visible protocol: Normal and ReadOnly hold read locks at their
		// commit instant, so their reads are checked strictly; the elastic
		// kinds deliberately relax read atomicity and are exempt. TL2:
		// every kind's reads are snapshot-validated (elastic relaxations
		// degenerate to plain TL2), so ALL kinds are checked strictly —
		// updates at their clock tick, pure readers at their snapshot.
		strict: s.tl2() || tx.kind == Normal || tx.kind == ReadOnly,
		commit: commit,
		seq:    a.seq,
	}
	for _, base := range tx.readOrder {
		vals, ok := tx.reads[base]
		if !ok {
			continue // early-released; not part of the atomic snapshot
		}
		if _, written := tx.writes[base]; written {
			// reads[] holds the first-read (pre-write) value because
			// Write buffers into writes[], never into reads[].
			rec.reads = append(rec.reads, auditAccess{base, cloneWords(vals)})
			continue
		}
		rec.reads = append(rec.reads, auditAccess{base, cloneWords(vals)})
	}
	for _, base := range tx.writeOrd {
		rec.writes = append(rec.writes, auditAccess{base, cloneWords(tx.writes[base])})
	}
	a.records = append(a.records, rec)
}

// AuditViolation describes a serializability failure found by CheckAudit.
type AuditViolation struct {
	Core   int
	TxID   uint64
	Commit sim.Time
	Addr   mem.Addr
	Got    uint64 // value the transaction read
	Want   uint64 // value the serial replay holds at its commit point
}

func (v *AuditViolation) Error() string {
	return fmt.Sprintf("core: audit: tx (core %d, id %d) committed at %v read %#x=%d but the serial order holds %d",
		v.Core, v.TxID, v.Commit, uint64(v.Addr), v.Got, v.Want)
}

// CheckAudit replays every committed transaction in commit order and
// verifies that each Normal transaction's reads match the serial state —
// i.e. that the concurrent execution is equivalent to the serial execution
// in commit order (view serializability at commit points, the heart of
// opacity for committed transactions). It returns nil if the history is
// serializable. initial supplies the pre-run values of audited addresses
// (missing addresses default to zero), matching mem's zero-initialized
// space.
func (s *System) CheckAudit(initial map[mem.Addr]uint64) error {
	a := s.audit
	if a == nil {
		return fmt.Errorf("core: audit was not enabled")
	}
	recs := make([]auditRecord, len(a.records))
	copy(recs, a.records)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].commit != recs[j].commit {
			return recs[i].commit < recs[j].commit
		}
		return recs[i].seq < recs[j].seq
	})
	model := make(map[mem.Addr]uint64, len(initial))
	for k, v := range initial {
		model[k] = v
	}
	for _, rec := range recs {
		// Strictness is decided at record time (recordCommit): under the
		// visible protocol Normal and ReadOnly are strict (their recorded
		// instant is the one moment every lock is provably held) and the
		// elastic kinds are exempt; under TL2 every kind is strict.
		if rec.strict {
			for _, rd := range rec.reads {
				for i, got := range rd.vals {
					addr := rd.base + mem.Addr(i)
					if want := model[addr]; want != got {
						return &AuditViolation{
							Core: rec.core, TxID: rec.txID, Commit: rec.commit,
							Addr: addr, Got: got, Want: want,
						}
					}
				}
			}
		}
		for _, wr := range rec.writes {
			for i, v := range wr.vals {
				model[wr.base+mem.Addr(i)] = v
			}
		}
	}
	return nil
}

// AuditedCommits reports how many commits were recorded.
func (s *System) AuditedCommits() int {
	if s.audit == nil {
		return 0
	}
	return len(s.audit.records)
}

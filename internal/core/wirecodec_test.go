package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/port"
	"repro/internal/sim"
	"repro/internal/wire"
)

// idPort is the resolver stand-in for round-trip tests: a Port that only
// answers ID, the one property the wire encoding preserves. Two idPorts
// with the same ID compare DeepEqual, so decoded Reply fields match their
// originals structurally.
type idPort struct{ id int }

func (p idPort) ID() int                                { return p.id }
func (p idPort) Now() sim.Time                          { panic("idPort: Now") }
func (p idPort) Rand() *sim.Rand                        { panic("idPort: Rand") }
func (p idPort) Advance(time.Duration)                  { panic("idPort: Advance") }
func (p idPort) Yield()                                 { panic("idPort: Yield") }
func (p idPort) Send(port.Port, any, time.Duration)     { panic("idPort: Send") }
func (p idPort) Recv() port.Msg                         { panic("idPort: Recv") }
func (p idPort) TryRecv() (port.Msg, bool)              { panic("idPort: TryRecv") }
func (p idPort) RecvMatch(func(port.Msg) bool) port.Msg { panic("idPort: RecvMatch") }
func (p idPort) TryRecvMatch(func(port.Msg) bool) (port.Msg, bool) {
	panic("idPort: TryRecvMatch")
}
func (p idPort) RecvTimeout(time.Duration) (port.Msg, bool) { panic("idPort: RecvTimeout") }

func testResolver(id int) port.Port { return idPort{id: id} }

func randAddrs(r *rand.Rand, maxN int) []mem.Addr {
	n := r.Intn(maxN + 1)
	if n == 0 {
		return nil // decoders yield nil for empty slices; match that
	}
	as := make([]mem.Addr, n)
	for i := range as {
		as[i] = mem.Addr(r.Uint64())
	}
	return as
}

func randVers(r *rand.Rand, maxN int) []uint64 {
	n := r.Intn(maxN + 1)
	if n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = r.Uint64()
	}
	return vs
}

func randMeta(r *rand.Rand) cm.Meta {
	return cm.Meta{
		Core:   r.Intn(1 << 20),
		TxID:   r.Uint64(),
		Prio:   int64(r.Uint64()), // exercises negative priorities
		Offset: sim.Time(r.Int63()),
	}
}

func randReply(r *rand.Rand) port.Port {
	if r.Intn(4) == 0 {
		return nil
	}
	return idPort{id: r.Intn(1 << 16)}
}

// messageGens builds one random instance per protocol message type. Every
// registered wire type except the Batch envelope must appear here; the
// completeness check in TestWireRoundTripAllMessages enforces that.
func messageGens() []func(r *rand.Rand) any {
	return []func(r *rand.Rand) any{
		func(r *rand.Rand) any {
			return &reqReadLock{
				ReqID: r.Uint64(), Epoch: r.Uint64(), Addr: mem.Addr(r.Uint64()),
				Meta: randMeta(r), Reply: randReply(r), ReplyTo: r.Intn(1 << 20),
			}
		},
		func(r *rand.Rand) any {
			return &reqWriteLock{
				ReqID: r.Uint64(), Epoch: r.Uint64(), Addrs: randAddrs(r, 12),
				Meta: randMeta(r), Reply: randReply(r), ReplyTo: r.Intn(1 << 20),
			}
		},
		func(r *rand.Rand) any {
			owner := r.Intn(64) - 1 // exercises the -1 "no single owner" sentinel
			return &respLock{
				ReqID: r.Uint64(), OK: r.Intn(2) == 0, Stale: r.Intn(2) == 0,
				Kind: cm.Kind(r.Intn(3)), Vers: randVers(r, 8),
				NackEpoch: r.Uint64(), NackOwner: owner,
			}
		},
		func(r *rand.Rand) any {
			return &relLocks{
				ReadAddrs: randAddrs(r, 8), WriteAddrs: randAddrs(r, 8),
				Core: r.Intn(1 << 20), TxID: r.Uint64(),
			}
		},
		func(r *rand.Rand) any {
			return &earlyRelease{Addrs: randAddrs(r, 8), Core: r.Intn(1 << 20), TxID: r.Uint64()}
		},
		func(r *rand.Rand) any { return barrierMsg{Epoch: r.Uint64()} },
		func(r *rand.Rand) any {
			return &reqExclusive{Core: r.Intn(1 << 20), TxID: r.Uint64(), Reply: randReply(r)}
		},
		func(r *rand.Rand) any { return &respExclusive{} },
		func(r *rand.Rand) any {
			return &relExclusive{Core: r.Intn(1 << 20), TxID: r.Uint64()}
		},
	}
}

func wireRoundTrip(t *testing.T, v any) any {
	t.Helper()
	e := wire.NewEnc(nil)
	if err := wire.EncodePayload(e, v); err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	d := wire.NewDec(e.Bytes(), testResolver)
	got, err := wire.DecodePayload(d)
	if err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	if d.Len() != 0 {
		t.Fatalf("decode %T left %d trailing bytes", v, d.Len())
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip %T:\n got %#v\nwant %#v", v, got, v)
	}
	return got
}

// TestWireRoundTripAllMessages property-tests encode→decode identity over
// randomized instances of every DTM protocol message, and fails if any
// registered wire type lacks a generator — so adding a message type without
// codec coverage breaks the build here.
func TestWireRoundTripAllMessages(t *testing.T) {
	r := rand.New(rand.NewSource(0x7432635f6e6574))
	gens := messageGens()
	covered := map[reflect.Type]bool{}
	for i := 0; i < 400; i++ {
		for _, gen := range gens {
			v := gen(r)
			wireRoundTrip(t, v)
			covered[reflect.TypeOf(v)] = true
		}
	}
	// The Batch envelope: random mixes of the message types above.
	for i := 0; i < 200; i++ {
		n := r.Intn(7)
		b := &port.Batch{Payloads: make([]any, 0, n)}
		for j := 0; j < n; j++ {
			b.Payloads = append(b.Payloads, gens[r.Intn(len(gens))](r))
		}
		wireRoundTrip(t, b)
	}
	covered[reflect.TypeOf(&port.Batch{})] = true

	for _, typ := range wire.RegisteredTypes() {
		if !covered[typ] {
			t.Errorf("registered wire type %v has no round-trip generator in this test", typ)
		}
	}
}

// TestWireDecodeRejectsCorruptInput pins the failure mode of bad frames:
// errors, never panics or silent truncation.
func TestWireDecodeRejectsCorruptInput(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	v := &reqWriteLock{
		ReqID: 7, Epoch: 3, Addrs: randAddrs(r, 6), Meta: randMeta(r),
		Reply: idPort{id: 9}, ReplyTo: 4,
	}
	e := wire.NewEnc(nil)
	if err := wire.EncodePayload(e, v); err != nil {
		t.Fatal(err)
	}
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := wire.NewDec(full[:cut], testResolver)
		if _, err := wire.DecodePayload(d); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(full))
		}
	}
	// Unknown kind byte.
	d := wire.NewDec([]byte{0xee, 1, 2, 3}, testResolver)
	if _, err := wire.DecodePayload(d); err == nil {
		t.Fatal("unknown payload kind decoded without error")
	}
	// Kind 0 is reserved so zeroed buffers fail loudly.
	d = wire.NewDec(make([]byte, 16), testResolver)
	if _, err := wire.DecodePayload(d); err == nil {
		t.Fatal("zeroed buffer decoded without error")
	}
}

// TestWireEncodingStable pins exact bytes for one representative message:
// the encoding is a protocol constant (docs/WIRE.md), and accidental layout
// drift must show up as a test failure, not a cross-version hang.
func TestWireEncodingStable(t *testing.T) {
	v := &reqReadLock{
		ReqID: 0x0102030405060708, Epoch: 2, Addr: 0x0a0b,
		Meta:  cm.Meta{Core: 3, TxID: 9, Prio: -1, Offset: 5},
		Reply: idPort{id: 17}, ReplyTo: 3,
	}
	e := wire.NewEnc(nil)
	if err := wire.EncodePayload(e, v); err != nil {
		t.Fatal(err)
	}
	want := []byte{
		1,                      // kind: reqReadLock
		8, 7, 6, 5, 4, 3, 2, 1, // ReqID
		2, 0, 0, 0, 0, 0, 0, 0, // Epoch
		0x0b, 0x0a, 0, 0, 0, 0, 0, 0, // Addr
		3, 0, 0, 0, 0, 0, 0, 0, // Meta.Core
		9, 0, 0, 0, 0, 0, 0, 0, // Meta.TxID
		0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, // Meta.Prio = -1
		5, 0, 0, 0, 0, 0, 0, 0, // Meta.Offset
		17, 0, 0, 0, // Reply port ID
		3, 0, 0, 0, 0, 0, 0, 0, // ReplyTo
	}
	if !reflect.DeepEqual(e.Bytes(), want) {
		t.Fatalf("encoding drifted:\n got %v\nwant %v", e.Bytes(), want)
	}
}

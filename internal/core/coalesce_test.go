package core

import (
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
)

// The coalescing message plane (Config.Coalesce) must change how protocol
// payloads travel — fewer, fatter wire messages — without changing what the
// protocol decides. These tests pin both halves: per-seed outcome
// equivalence (commits, aborts, final memory, serializability audit) on a
// deterministic workload where coalescing genuinely merges, and an
// invariant + wire-count check on a contended bank workload.

// coalesceSystem builds a sim system whose commit bursts produce several
// payloads per destination node: NoBatching splits the scatter burst into
// one request per object, which is exactly the multiplicity the transport
// re-merges (the protocol-batching ablation grid in exp/ablations.go shows
// the same effect at scale).
func coalesceSystem(t *testing.T, seed uint64, coalesce bool) *System {
	t.Helper()
	s, err := NewSystem(Config{
		Platform:     noc.SCC(0),
		Seed:         seed,
		TotalCores:   12,
		ServiceCores: 4,
		Policy:       cm.FairCM,
		NoBatching:   true,
		Coalesce:     coalesce,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// disjointRun executes a fixed, conflict-free workload: every worker
// performs a deterministic sequence of 6-object writes confined to its own
// slice of the array, so the protocol outcome — commits, aborts, every
// final memory word — is defined independently of message timing. Returns
// the final memory image alongside the stats.
func disjointRun(t *testing.T, seed uint64, coalesce bool) (*Stats, []uint64) {
	t.Helper()
	s := coalesceSystem(t, seed, coalesce)
	s.EnableAudit()
	const perCore, rounds = 64, 12
	n := s.NumAppCores()
	base := s.Mem.Alloc(n*perCore, 0)
	s.SpawnWorkers(func(rt *Runtime) {
		r := rt.Rand()
		lo := rt.AppIndex() * perCore
		for i := 0; i < rounds; i++ {
			rt.Run(func(tx *Tx) {
				for k := 0; k < 6; k++ {
					slot := lo + r.Intn(perCore)
					tx.Write(base+mem.Addr(slot), uint64(slot)<<16|uint64(i))
				}
			})
		}
	})
	st := s.RunToCompletion()
	if err := s.CheckAudit(nil); err != nil {
		t.Fatalf("audit failed (coalesce=%v, seed=%d): %v", coalesce, seed, err)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked (coalesce=%v, seed=%d)", leaked, coalesce, seed)
	}
	img := make([]uint64, n*perCore)
	for i := range img {
		img[i] = s.Mem.ReadRaw(base + mem.Addr(i))
	}
	return st, img
}

// TestCoalesceOutcomeEquivalence: per seed, a coalesced run must reach the
// exact same protocol outcome as the uncoalesced run — same commits, same
// aborts, same logical message counts, identical final memory, clean audit
// — while provably merging (strictly fewer wire messages, payloads riding
// in shared envelopes). This is the non-vacuous equivalence the coalescing
// refactor promises: only the wire format changed, not the protocol.
func TestCoalesceOutcomeEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		off, imgOff := disjointRun(t, seed, false)
		on, imgOn := disjointRun(t, seed, true)
		if off.Commits != on.Commits || off.Aborts != on.Aborts {
			t.Errorf("seed %d: commits/aborts %d/%d coalesced vs %d/%d uncoalesced",
				seed, on.Commits, on.Aborts, off.Commits, off.Aborts)
		}
		if off.Msgs != on.Msgs {
			t.Errorf("seed %d: logical payloads %d coalesced vs %d uncoalesced",
				seed, on.Msgs, off.Msgs)
		}
		for i := range imgOff {
			if imgOff[i] != imgOn[i] {
				t.Fatalf("seed %d: final memory diverges at word %d: %#x vs %#x",
					seed, i, imgOn[i], imgOff[i])
			}
		}
		if off.WireMsgs != off.Msgs || off.CoalescedPayloads != 0 {
			t.Errorf("seed %d: uncoalesced run counted %d wire msgs for %d payloads (%d coalesced)",
				seed, off.WireMsgs, off.Msgs, off.CoalescedPayloads)
		}
		if on.WireMsgs >= off.WireMsgs {
			t.Errorf("seed %d: coalescing did not reduce wire messages (%d vs %d) — equivalence is vacuous",
				seed, on.WireMsgs, off.WireMsgs)
		}
		if on.CoalescedPayloads == 0 {
			t.Errorf("seed %d: no payload rode a shared envelope", seed)
		}
	}
}

// TestCoalesceContendedBankFewerWireMsgs: on a contended bank workload the
// coalesced plane must send strictly fewer wire messages for the same kind
// of work, and every correctness invariant must hold: money conserved,
// empty lock tables, clean serializability audit.
func TestCoalesceContendedBankFewerWireMsgs(t *testing.T) {
	run := func(coalesce bool) *Stats {
		s := coalesceSystem(t, 3, coalesce)
		s.EnableAudit()
		const accounts = 48
		base := s.Mem.Alloc(accounts, 0)
		initial := make(map[mem.Addr]uint64, accounts)
		for i := 0; i < accounts; i++ {
			s.Mem.WriteRaw(base+mem.Addr(i), 100)
			initial[base+mem.Addr(i)] = 100
		}
		s.SpawnWorkers(func(rt *Runtime) {
			r := rt.Rand()
			for i := 0; i < 30; i++ {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				rt.Run(func(tx *Tx) {
					f := tx.Read(base + mem.Addr(from))
					tv := tx.Read(base + mem.Addr(to))
					tx.Write(base+mem.Addr(from), f-1)
					tx.Write(base+mem.Addr(to), tv+1)
				})
			}
		})
		st := s.RunToCompletion()
		if err := s.CheckAudit(initial); err != nil {
			t.Fatalf("audit failed (coalesce=%v): %v", coalesce, err)
		}
		if leaked := s.LockedAddrs(); leaked != 0 {
			t.Fatalf("%d locks leaked (coalesce=%v)", leaked, coalesce)
		}
		var total uint64
		for i := 0; i < accounts; i++ {
			total += s.Mem.ReadRaw(base + mem.Addr(i))
		}
		if want := uint64(accounts) * 100; total != want {
			t.Fatalf("money not conserved (coalesce=%v): %d != %d", coalesce, total, want)
		}
		return st
	}
	off, on := run(false), run(true)
	if on.WireMsgs >= off.WireMsgs {
		t.Errorf("contended bank: coalesced run sent %d wire messages, uncoalesced %d — want strictly fewer",
			on.WireMsgs, off.WireMsgs)
	}
	if on.PayloadsPerWireMsg() <= 1 {
		t.Errorf("contended bank: payloads/wire = %.3f, want > 1", on.PayloadsPerWireMsg())
	}
}

// TestCoalesceMultitaskConserves exercises the multitask flush points (the
// co-located node's staged responses leave at every dispatch boundary):
// a coalesced multitask bank must drain, conserve money, and leak no locks.
func TestCoalesceMultitaskConserves(t *testing.T) {
	s, err := NewSystem(Config{
		Platform:   noc.SCC(0),
		Seed:       11,
		TotalCores: 6,
		Deployment: Multitask,
		Policy:     cm.FairCM,
		NoBatching: true,
		Coalesce:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const accounts = 32
	base := s.Mem.Alloc(accounts, 0)
	for i := 0; i < accounts; i++ {
		s.Mem.WriteRaw(base+mem.Addr(i), 100)
	}
	s.SpawnWorkers(func(rt *Runtime) {
		r := rt.Rand()
		for i := 0; i < 25; i++ {
			from := r.Intn(accounts)
			to := (from + 1 + r.Intn(accounts-1)) % accounts
			rt.Run(func(tx *Tx) {
				f := tx.Read(base + mem.Addr(from))
				tv := tx.Read(base + mem.Addr(to))
				tx.Write(base+mem.Addr(from), f-1)
				tx.Write(base+mem.Addr(to), tv+1)
			})
		}
	})
	st := s.RunToCompletion()
	if st.Commits == 0 {
		t.Fatal("nothing committed")
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked", leaked)
	}
	var total uint64
	for i := 0; i < accounts; i++ {
		total += s.Mem.ReadRaw(base + mem.Addr(i))
	}
	if want := uint64(accounts) * 100; total != want {
		t.Fatalf("money not conserved: %d != %d", total, want)
	}
}

// TestCoalesceDeterministic: the coalesced plane must stay bit-identical
// across same-seed sim runs — staging and flushing introduce no map-order
// or other nondeterminism.
func TestCoalesceDeterministic(t *testing.T) {
	run := func() *Stats {
		s := coalesceSystem(t, 21, true)
		const accounts = 24
		base := s.Mem.Alloc(accounts, 0)
		s.SpawnWorkers(func(rt *Runtime) {
			r := rt.Rand()
			for !rt.Stopped() {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				rt.Run(func(tx *Tx) {
					f := tx.Read(base + mem.Addr(from))
					tx.Write(base+mem.Addr(from), f-1)
					tx.Write(base+mem.Addr(to), tx.Read(base+mem.Addr(to))+1)
				})
				rt.AddOps(1)
			}
		})
		return s.Run(2 * time.Millisecond)
	}
	a, b := run(), run()
	if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Msgs != b.Msgs ||
		a.WireMsgs != b.WireMsgs || a.CoalescedPayloads != b.CoalescedPayloads {
		t.Fatalf("same-seed coalesced runs diverged:\n%+v\n%+v", a, b)
	}
}

// TestCoalesceEagerAndElastic: the non-default protocol modes run through
// the coalesced plane too (eager write locks are awaited round trips, the
// elastic-early release burst is staged); both must quiesce cleanly.
func TestCoalesceEagerAndElastic(t *testing.T) {
	for _, acq := range []AcquireMode{Eager, Lazy} {
		s2, err := NewSystem(Config{
			Platform:     noc.SCC(0),
			Seed:         17,
			TotalCores:   8,
			ServiceCores: 2,
			Policy:       cm.FairCM,
			Acquire:      acq,
			Coalesce:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		base := s2.Mem.Alloc(16, 0)
		s2.SpawnWorkers(func(rt *Runtime) {
			r := rt.Rand()
			for i := 0; i < 15; i++ {
				rt.RunKind(ElasticEarly, func(tx *Tx) {
					a := mem.Addr(r.Intn(16))
					tx.Read(base + a)
					tx.EarlyRelease(base + a)
					tx.Write(base+mem.Addr(r.Intn(16)), uint64(i))
				})
			}
		})
		s2.RunToCompletion()
		if leaked := s2.LockedAddrs(); leaked != 0 {
			t.Fatalf("acquire=%v: %d locks leaked", acq, leaked)
		}
	}
}

// TestCoalesceSingletonPlaneBitIdentical pins the strongest transparency
// property of the coalescing plane: when no burst has two payloads for one
// destination (default protocol batching — one write-lock request, one
// release per node per burst), every flush is a singleton and goes out as
// a bare payload at the same virtual instant with the same MsgDelay, so a
// coalesced sim run is BIT-IDENTICAL to the uncoalesced run — not merely
// outcome-equivalent.
func TestCoalesceSingletonPlaneBitIdentical(t *testing.T) {
	run := func(coalesce bool) *Stats {
		s, err := NewSystem(Config{
			Platform:     noc.SCC(0),
			Seed:         13,
			TotalCores:   12,
			ServiceCores: 4,
			Policy:       cm.FairCM,
			Coalesce:     coalesce,
		})
		if err != nil {
			t.Fatal(err)
		}
		const accounts = 48
		base := s.Mem.Alloc(accounts, 0)
		s.SpawnWorkers(func(rt *Runtime) {
			r := rt.Rand()
			for !rt.Stopped() {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				rt.Run(func(tx *Tx) {
					f := tx.Read(base + mem.Addr(from))
					tv := tx.Read(base + mem.Addr(to))
					tx.Write(base+mem.Addr(from), f-1)
					tx.Write(base+mem.Addr(to), tv+1)
				})
				rt.AddOps(1)
			}
		})
		return s.Run(2 * time.Millisecond)
	}
	off, on := run(false), run(true)
	if off.Commits != on.Commits || off.Aborts != on.Aborts || off.Msgs != on.Msgs ||
		off.MsgBytes != on.MsgBytes || off.Duration != on.Duration {
		t.Fatalf("singleton-burst coalesced run diverged from uncoalesced:\noff %+v\non  %+v", off, on)
	}
	if on.WireMsgs != on.Msgs || on.CoalescedPayloads != 0 {
		t.Fatalf("singleton bursts produced envelopes: %d wire msgs for %d payloads, %d coalesced",
			on.WireMsgs, on.Msgs, on.CoalescedPayloads)
	}
}

package core

import (
	"testing"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/noc"
)

// findTwoNodeAddrs scans pool for two addresses owned by different DTM
// nodes, returning them with the second one's responsible node.
func findTwoNodeAddrs(t *testing.T, s *System, pool mem.Addr, words int) (a1, a2 mem.Addr, node2 int) {
	t.Helper()
	a1 = pool
	n1 := s.nodeFor(s.lockKey(a1))
	for i := 1; i < words; i++ {
		a := pool + mem.Addr(i)
		if n := s.nodeFor(s.lockKey(a)); n != n1 {
			return a1, a, n
		}
	}
	t.Fatal("no address pair spanning two DTM nodes in pool")
	return 0, 0, 0
}

// TestScatterRollbackOnPartialGrant injects a conflict at the second of two
// DTM nodes touched by a lazy commit and verifies the two-phase rollback:
// the write locks the first node already granted must be released before the
// abort unwinds, leaving no stale entries in any lock table.
func TestScatterRollbackOnPartialGrant(t *testing.T) {
	for _, serial := range []bool{false, true} {
		name := "scatter"
		if serial {
			name = "serial"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{
				Platform:     noc.SCC(0),
				Seed:         7,
				TotalCores:   4,
				ServiceCores: 2,
				Policy:       cm.NoCM, // rejects the requester without touching the enemy
				SerialRPC:    serial,
			}
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pool := s.Mem.Alloc(64, 0)
			a1, a2, node2 := findTwoNodeAddrs(t, s, pool, 64)

			// A foreign write lock on a2's stripe makes node2 reject the
			// commit's second batch with WAW; node1 has already granted the
			// first batch by then. The enemy core never runs a transaction,
			// and NoCM aborts the requester without consulting the enemy's
			// status register, so the injected lock stays put.
			enemyCore, enemyTx := 0, uint64(99)
			key2 := s.lockKey(a2)
			s.nodes[node2].table.SetWriter(key2, cm.Meta{Core: enemyCore, TxID: enemyTx})

			attempts := 0
			var used int
			s.SpawnWorkers(func(rt *Runtime) {
				if rt.AppIndex() != 1 {
					return
				}
				used = rt.Run(func(tx *Tx) {
					attempts++
					tx.Write(a1, 11)
					if attempts == 1 {
						tx.Write(a2, 22) // rejected at node2 on the first try
					}
				})
			})
			st := s.RunToCompletion()

			if used != 2 {
				t.Fatalf("transaction used %d attempts, want 2 (one scatter rollback)", used)
			}
			if st.Commits != 1 || st.Aborts != 1 {
				t.Fatalf("commits=%d aborts=%d, want 1/1", st.Commits, st.Aborts)
			}
			if st.AbortsByKind[cm.WAW] != 1 {
				t.Fatalf("WAW aborts = %d, want 1", st.AbortsByKind[cm.WAW])
			}
			if got := s.Mem.ReadRaw(a1); got != 11 {
				t.Fatalf("mem[a1] = %d, want 11 (retry committed)", got)
			}
			if got := s.Mem.ReadRaw(a2); got != 0 {
				t.Fatalf("mem[a2] = %d, want 0 (first attempt rolled back)", got)
			}
			// The only surviving lock is the injected one: the batch node1
			// granted on the failed attempt was released by the rollback,
			// and the retry's locks by its commit.
			if n := s.LockedAddrs(); n != 1 {
				t.Fatalf("%d addresses locked after the run, want only the injected lock", n)
			}
			if !s.nodes[node2].table.ReleaseWrite(key2, enemyCore, enemyTx) {
				t.Fatal("injected lock vanished: the rollback released a foreign lock")
			}
			if n := s.LockedAddrs(); n != 0 {
				t.Fatalf("%d stale lock entries survive the rollback", n)
			}

			// Counter consistency: the first attempt sends two batches, the
			// retry one; both attempts abort or commit through exactly one
			// release burst to node1.
			if st.WriteLockReqs != 3 {
				t.Errorf("WriteLockReqs = %d, want 3", st.WriteLockReqs)
			}
			if st.ReleaseMsgs != 2 {
				t.Errorf("ReleaseMsgs = %d, want 2", st.ReleaseMsgs)
			}
			wantRT := uint64(2) // one gather per attempt
			if serial {
				wantRT = 3 // grant+reject on attempt one, grant on the retry
			}
			if st.CommitRoundTrips != wantRT {
				t.Errorf("CommitRoundTrips = %d, want %d", st.CommitRoundTrips, wantRT)
			}
		})
	}
}

// scatterWriteWorker returns a worker running ops read-modify-write
// transactions of `writes` objects drawn from a pool — write sets that
// almost always span several DTM nodes.
func scatterWriteWorker(pool mem.Addr, words, writes, ops int) func(rt *Runtime) {
	return func(rt *Runtime) {
		r := rt.Rand()
		for i := 0; i < ops; i++ {
			rt.Run(func(tx *Tx) {
				for j := 0; j < writes; j++ {
					a := pool + mem.Addr(r.Intn(words))
					tx.Write(a, tx.Read(a)+1)
				}
			})
			rt.AddOps(1)
		}
	}
}

// TestScatterGatherReducesCommitRoundTrips runs the same multi-node
// scatter-write workload under serial and scatter-gather commit lock
// acquisition and verifies that scatter-gather awaits strictly fewer
// commit-phase round trips, with the linearizability auditor green in both
// modes.
func TestScatterGatherReducesCommitRoundTrips(t *testing.T) {
	run := func(serial bool) *Stats {
		cfg := Config{
			Platform:     noc.SCC(0),
			Seed:         11,
			TotalCores:   8,
			ServiceCores: 4,
			Policy:       cm.FairCM,
			SerialRPC:    serial,
		}
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.EnableAudit()
		pool := s.Mem.Alloc(256, 0)
		s.SpawnWorkers(scatterWriteWorker(pool, 256, 4, 25))
		st := s.RunToCompletion()
		if err := s.CheckAudit(nil); err != nil {
			t.Fatalf("serial=%v: %v", serial, err)
		}
		if st.Ops != 4*25 {
			t.Fatalf("serial=%v: ops = %d, want 100", serial, st.Ops)
		}
		if leaked := s.LockedAddrs(); leaked != 0 {
			t.Fatalf("serial=%v: %d locks leaked", serial, leaked)
		}
		return st
	}
	ser := run(true)
	sg := run(false)
	if sg.CommitRoundTrips >= ser.CommitRoundTrips {
		t.Fatalf("scatter-gather awaited %d commit round trips, serial %d: want strict reduction",
			sg.CommitRoundTrips, ser.CommitRoundTrips)
	}
	// Scatter-gather awaits exactly one phase per commit attempt that
	// reaches lock acquisition: at least every committed transaction, at
	// most every attempt (some aborts happen during reads, before commit).
	if sg.CommitRoundTrips < sg.Commits || sg.CommitRoundTrips > sg.Commits+sg.Aborts {
		t.Errorf("scatter CommitRoundTrips = %d, want within [commits=%d, attempts=%d]",
			sg.CommitRoundTrips, sg.Commits, sg.Commits+sg.Aborts)
	}
}

// TestScatterGatherDeterminism verifies that same-seed runs of the
// scatter-gather commit path are bit-identical: same kernel event trace,
// same statistics, under both deployments.
func TestScatterGatherDeterminism(t *testing.T) {
	for _, dep := range []Deployment{Dedicated, Multitask} {
		t.Run(dep.String(), func(t *testing.T) {
			run := func() (uint64, Stats) {
				cfg := Config{
					Platform:   noc.SCC(0),
					Seed:       5,
					TotalCores: 8,
					Deployment: dep,
					Policy:     cm.FairCM,
				}
				s, err := NewSystem(cfg)
				if err != nil {
					t.Fatal(err)
				}
				s.K.EnableTraceHash()
				pool := s.Mem.Alloc(128, 0)
				s.SpawnWorkers(scatterWriteWorker(pool, 128, 4, 15))
				st := s.RunToCompletion()
				return s.K.TraceHash(), *st
			}
			h1, st1 := run()
			h2, st2 := run()
			if h1 != h2 {
				t.Fatalf("trace hashes differ: %#x != %#x", h1, h2)
			}
			if st1.Commits != st2.Commits || st1.Aborts != st2.Aborts ||
				st1.Msgs != st2.Msgs || st1.CommitRoundTrips != st2.CommitRoundTrips {
				t.Fatalf("stats differ across identical runs:\n%+v\n%+v", st1, st2)
			}
			if st1.Commits == 0 {
				t.Fatal("no commits")
			}
		})
	}
}

// TestScatterMultitaskServesWhileGathering runs multi-node scatter commits
// under Multitask deployment, where every core both gathers its own lock
// responses and serves its co-located DTM node. If gathering ever stopped
// serving requests, two cores awaiting locks from each other's nodes would
// deadlock and the finite-ops run would never drain.
func TestScatterMultitaskServesWhileGathering(t *testing.T) {
	cfg := Config{
		Platform:   noc.SCC(0),
		Seed:       3,
		TotalCores: 4,
		Deployment: Multitask,
		Policy:     cm.FairCM,
	}
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.EnableAudit()
	pool := s.Mem.Alloc(64, 0)
	s.SpawnWorkers(scatterWriteWorker(pool, 64, 4, 20))
	st := s.RunToCompletion()
	if st.Ops != 4*20 {
		t.Fatalf("ops = %d, want 80 (run did not drain)", st.Ops)
	}
	if err := s.CheckAudit(nil); err != nil {
		t.Fatal(err)
	}
	if leaked := s.LockedAddrs(); leaked != 0 {
		t.Fatalf("%d locks leaked", leaked)
	}
}

package core

import (
	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/sim"
)

// The DTM wire protocol. Every transactional wrapper is "similar to an
// RPC-like call ... but uses message passing" (Algorithm 3/4): the app core
// sends a request to the responsible DTM node and blocks for the response.
// Releases and early releases are fire-and-forget.
//
// Payload sizes below approximate the on-wire encoding (for latency
// accounting only): an 8-byte header, 8 bytes per address, and a 24-byte
// transaction metadata block.

const (
	msgHeaderBytes = 8
	msgMetaBytes   = 24
	msgAddrBytes   = 8
	msgRespBytes   = msgHeaderBytes + 16
)

// reqReadLock asks for the read lock of one object (Algorithm 1 trigger).
type reqReadLock struct {
	Addr    mem.Addr
	Meta    cm.Meta
	Reply   *sim.Proc
	ReplyTo int // app core ID
}

func (r *reqReadLock) bytes() int { return msgHeaderBytes + msgMetaBytes + msgAddrBytes }

// reqWriteLock asks for the write locks of one or more objects owned by the
// same DTM node (Algorithm 2 trigger; batching per §3.3).
type reqWriteLock struct {
	Addrs   []mem.Addr
	Meta    cm.Meta
	Reply   *sim.Proc
	ReplyTo int
}

func (r *reqWriteLock) bytes() int {
	return msgHeaderBytes + msgMetaBytes + msgAddrBytes*len(r.Addrs)
}

// respLock answers a read- or write-lock request. OK means NO_CONFLICT; on
// failure Kind reports the conflict class that aborted the requester.
type respLock struct {
	OK   bool
	Kind cm.Kind
}

// relLocks releases the given read and write locks of attempt (Core, TxID).
// Fire-and-forget: stale releases are no-ops at the lock table.
type relLocks struct {
	ReadAddrs  []mem.Addr
	WriteAddrs []mem.Addr
	Core       int
	TxID       uint64
}

func (r *relLocks) bytes() int {
	return msgHeaderBytes + 16 + msgAddrBytes*(len(r.ReadAddrs)+len(r.WriteAddrs))
}

// earlyRelease releases read locks before commit (elastic-early, §6.1).
type earlyRelease struct {
	Addrs []mem.Addr
	Core  int
	TxID  uint64
}

func (r *earlyRelease) bytes() int {
	return msgHeaderBytes + 16 + msgAddrBytes*len(r.Addrs)
}

// barrierMsg implements the §8 privatization barrier: each app core sends
// one to every other app core and waits for all of them.
type barrierMsg struct {
	Epoch uint64
}

func (barrierMsg) bytes() int { return msgHeaderBytes + 8 }

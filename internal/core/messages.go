package core

import (
	"sync"

	"repro/internal/cm"
	"repro/internal/mem"
	"repro/internal/port"
)

// The DTM wire protocol. Every transactional wrapper is "similar to an
// RPC-like call ... but uses message passing" (Algorithm 3/4): the app core
// sends a request to the responsible DTM node and blocks for the response.
// Releases and early releases are fire-and-forget.
//
// Lock requests carry a correlation ID (ReqID) assigned by the requesting
// core's RPC layer (rpc.go) and echoed verbatim in the response, so a core
// may keep several requests to different DTM nodes outstanding at once
// (commit-time scatter-gather) and still attribute every response to the
// batch it answers. The ID is part of the modeled 8-byte header, so it does
// not change any payload size.
//
// Lock requests additionally carry the placement epoch (internal/placement)
// at which the sender resolved its keys to the destination node. A request
// that arrives after the resolution went stale — the stripe was handed off,
// or is frozen for migration — is NACKed (respLock.Stale) back to the
// requester for re-resolution, so a grant can only ever be issued by a
// key's current owner. The epoch rides in the 24-byte metadata block and
// changes no payload size.
//
// Payload sizes below approximate the on-wire encoding (for latency
// accounting only): an 8-byte header, 8 bytes per address, and a 24-byte
// transaction metadata block.

const (
	msgHeaderBytes = 8
	msgMetaBytes   = 24
	msgAddrBytes   = 8
	msgRespBytes   = msgHeaderBytes + 16
)

// dtmRequest marks every message type a DTM node serves, i.e. exactly the
// request arms of dtmNode.handle. The RPC await loop (rpc.go) uses the
// marker to keep a multitasked core's co-located node live while the
// application side awaits remote responses; handle panics are loud there,
// so a type carrying the marker without a handle arm is caught immediately.
type dtmRequest interface{ dtmRequest() }

func (*reqReadLock) dtmRequest()  {}
func (*reqWriteLock) dtmRequest() {}
func (*relLocks) dtmRequest()     {}
func (*earlyRelease) dtmRequest() {}

// reqReadLock asks for the read lock of one object (Algorithm 1 trigger).
type reqReadLock struct {
	ReqID   uint64 // correlation ID, echoed in the response
	Epoch   uint64 // placement epoch at resolution time
	Addr    mem.Addr
	Meta    cm.Meta
	Reply   port.Port
	ReplyTo int // app core ID
}

func (r *reqReadLock) bytes() int { return msgHeaderBytes + msgMetaBytes + msgAddrBytes }

// reqWriteLock asks for the write locks of one or more objects owned by the
// same DTM node (Algorithm 2 trigger; batching per §3.3).
type reqWriteLock struct {
	ReqID   uint64 // correlation ID, echoed in the response
	Epoch   uint64 // placement epoch at resolution time
	Addrs   []mem.Addr
	Meta    cm.Meta
	Reply   port.Port
	ReplyTo int
}

func (r *reqWriteLock) bytes() int {
	return msgHeaderBytes + msgMetaBytes + msgAddrBytes*len(r.Addrs)
}

// respLock answers a read- or write-lock request. OK means NO_CONFLICT; on
// failure Kind reports the conflict class that aborted the requester,
// unless Stale is set: then the request was NACKed because the node no
// longer (or not yet) owns a requested key, or its stripe is frozen for
// migration, and the requester must re-resolve and retry. ReqID echoes the
// request's correlation ID.
type respLock struct {
	ReqID uint64
	OK    bool
	Stale bool
	Kind  cm.Kind

	// Vers piggybacks the current version of every granted key (in request
	// order) on a TL2 write-lock grant, so commit-time revalidation of
	// read∩write stripes needs no extra memory traffic. Nil under the
	// visible protocol; each version adds one modeled address-sized word to
	// the response (respBytes).
	Vers []uint64

	// NackEpoch and NackOwner piggyback the directory state on a Stale NACK
	// (NackOwner < 0 when no single new owner applies, e.g. a multi-key
	// batch): a requester chasing a migrated stripe can follow the hint
	// directly instead of paying a fresh directory resolution. Both ride in
	// the modeled 16-byte response body, so NACK sizes are unchanged.
	NackEpoch uint64
	NackOwner int
}

// respBytes is the modeled size of a lock response: the fixed body plus one
// word per piggybacked version (zero except on TL2 write-lock grants).
func respBytes(resp *respLock) int {
	return msgRespBytes + msgAddrBytes*len(resp.Vers)
}

// relLocks releases the given read and write locks of attempt (Core, TxID).
// Fire-and-forget: stale releases are no-ops at the lock table.
type relLocks struct {
	ReadAddrs  []mem.Addr
	WriteAddrs []mem.Addr
	Core       int
	TxID       uint64
}

func (r *relLocks) bytes() int {
	return msgHeaderBytes + 16 + msgAddrBytes*(len(r.ReadAddrs)+len(r.WriteAddrs))
}

// earlyRelease releases read locks before commit (elastic-early, §6.1).
type earlyRelease struct {
	Addrs []mem.Addr
	Core  int
	TxID  uint64
}

func (r *earlyRelease) bytes() int {
	return msgHeaderBytes + 16 + msgAddrBytes*len(r.Addrs)
}

// barrierMsg implements the §8 privatization barrier: each app core sends
// one to every other app core and waits for all of them.
type barrierMsg struct {
	Epoch uint64
}

func (barrierMsg) bytes() int { return msgHeaderBytes + 8 }

// Protocol-message pools. The hot path sends one lock request and one
// response per acquisition plus a release burst per attempt; without reuse
// every one of them is a fresh heap object. Ownership follows the message:
// the creator fills a pooled struct and sends it, and the FINAL toucher
// recycles it — requests and fire-and-forget releases by the DTM node after
// its handle arm returns, responses by the requesting core once consumed.
// Messages that are never consumed (dropped at shutdown, expired deadlines,
// duplicate responses) simply fall to the garbage collector; nothing is ever
// recycled twice. Address and version slices are pool-owned: builders copy
// into them (append(x[:0], ...)) rather than alias caller storage, so an
// in-flight message never shares backing arrays with scratch buffers the
// sender is already reusing.
//
// Every get function fully reinitializes the struct — a pooled object
// carries arbitrary stale field values from its previous life.
var (
	readLockPool     = sync.Pool{New: func() any { return new(reqReadLock) }}
	writeLockPool    = sync.Pool{New: func() any { return new(reqWriteLock) }}
	respLockPool     = sync.Pool{New: func() any { return new(respLock) }}
	relLocksPool     = sync.Pool{New: func() any { return new(relLocks) }}
	earlyReleasePool = sync.Pool{New: func() any { return new(earlyRelease) }}
)

func getReadLockReq() *reqReadLock {
	r := readLockPool.Get().(*reqReadLock)
	*r = reqReadLock{}
	return r
}

func putReadLockReq(r *reqReadLock) {
	r.Reply = nil
	readLockPool.Put(r)
}

func getWriteLockReq() *reqWriteLock {
	r := writeLockPool.Get().(*reqWriteLock)
	addrs := r.Addrs[:0]
	*r = reqWriteLock{Addrs: addrs}
	return r
}

func putWriteLockReq(r *reqWriteLock) {
	r.Reply = nil
	writeLockPool.Put(r)
}

func getRespLock() *respLock {
	r := respLockPool.Get().(*respLock)
	vers := r.Vers[:0]
	*r = respLock{Vers: vers}
	return r
}

func putRespLock(r *respLock) {
	respLockPool.Put(r)
}

func getRelLocks() *relLocks {
	r := relLocksPool.Get().(*relLocks)
	reads, writes := r.ReadAddrs[:0], r.WriteAddrs[:0]
	*r = relLocks{ReadAddrs: reads, WriteAddrs: writes}
	return r
}

func putRelLocks(r *relLocks) {
	relLocksPool.Put(r)
}

func getEarlyRelease() *earlyRelease {
	r := earlyReleasePool.Get().(*earlyRelease)
	addrs := r.Addrs[:0]
	*r = earlyRelease{Addrs: addrs}
	return r
}

func putEarlyRelease(r *earlyRelease) {
	earlyReleasePool.Put(r)
}

package core

import (
	"fmt"

	"repro/internal/placement"
	"repro/internal/port"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Flight-recorder wiring (Config.Trace; see internal/trace). Every emit
// site below and across tx.go/rpc.go/tl2.go/dtm.go funnels through the two
// helpers here, whose trace-off fast path is exactly one nil comparison:
// Now() is only evaluated with tracing on, no time is advanced, no
// randomness is drawn, and nothing allocates — which is why trace-off runs
// stay bit-identical to the pinned figure fingerprints and trace-on sim
// runs stay deterministic.

// appActor is an application runtime's trace lane: its physical core ID.
func appActor(core int) int32 { return int32(core) }

// dtmActor is a DTM node's trace lane, offset so a multitasked core's two
// services get distinct lanes.
func dtmActor(core int) int32 { return trace.DTMActorBase + int32(core) }

// emit records one event on the runtime's lane; a no-op when tracing is
// off.
func (rt *Runtime) emit(k trace.Kind, txID, a, b, c uint64) {
	if rt.rec == nil {
		return
	}
	rt.rec.Emit(rt.proc.Now(), k, txID, a, b, c)
}

// emit records one event on the node's lane, stamped with the serving
// port's clock; a no-op when tracing is off.
func (n *dtmNode) emit(p port.Port, k trace.Kind, txID, a, b, c uint64) {
	if n.rec == nil {
		return
	}
	n.rec.Emit(p.Now(), k, txID, a, b, c)
}

// now is the backend-neutral current time for emit sites that run outside
// any port context: envelope-deliver hooks (kernel/receiver context) and
// the placement tracer (caller context, directory lock held).
func (s *System) now() sim.Time {
	if s.eng != nil {
		return s.eng.Now()
	}
	if s.neng != nil {
		return s.neng.Now()
	}
	return s.K.Now()
}

// setupTrace allocates the per-DTM-node recorders and the placement lane;
// called from NewSystem once the nodes and directory exist, before any port
// is spawned.
func (s *System) setupTrace() {
	if s.cfg.Trace == nil {
		return
	}
	for _, n := range s.nodes {
		n.rec = trace.NewRecorder(dtmActor(n.core), s.cfg.Trace.ActorEvents)
	}
	if s.dir != nil {
		rec := trace.NewRecorder(trace.PlacementActor, s.cfg.Trace.ActorEvents)
		s.placeRec = rec
		s.dir.SetTracer(func(op placement.TraceOp, stripe, from, to int) {
			k := trace.KFreeze
			if op == placement.TraceHandoff {
				k = trace.KHandoff
			}
			// The directory lock serializes these calls, so the recorder
			// keeps its single-writer discipline on the live backend.
			rec.Emit(s.now(), k, 0, uint64(stripe), uint64(from), uint64(to))
		})
	}
}

// hookBatches installs the envelope-deliver observer on port p: every
// multi-payload envelope unpacked at p's mailbox emits one KEnvelopeDeliver
// on rec's lane. The hook runs in the receiver's execution context — the
// sim kernel's delivery closure, or the live receiver's own goroutine — the
// same single writer as the lane's other emits.
func (s *System) hookBatches(p port.Port, rec *trace.Recorder) {
	if rec == nil {
		return
	}
	if h, ok := p.(interface{ SetBatchHook(func(int)) }); ok {
		h.SetBatchHook(func(payloads int) {
			rec.Emit(s.now(), trace.KEnvelopeDeliver, 0, 0, 0, uint64(payloads))
		})
	}
}

// Trace returns the flight record assembled after the run quiesced, or nil
// when Config.Trace was unset. Valid only after Run.
func (s *System) Trace() *trace.Trace { return s.traceOut }

// assembleTrace merges every lane's ring into one Trace, in a fixed order
// (app runtimes, DTM nodes, placement) so identical sim runs produce
// identical traces, and hands it to the configured Sink.
func (s *System) assembleTrace() {
	if s.cfg.Trace == nil {
		return
	}
	t := trace.New()
	for _, rt := range s.runtimes {
		t.Add(rt.rec, fmt.Sprintf("app%d", rt.core))
	}
	for _, n := range s.nodes {
		t.Add(n.rec, fmt.Sprintf("dtm%d", n.core))
	}
	t.Add(s.placeRec, "placement")
	t.Finish()
	s.traceOut = t
	if s.cfg.Trace.Sink != nil {
		s.cfg.Trace.Sink(t)
	}
}

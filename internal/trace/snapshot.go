package trace

import (
	"encoding/json"
	"io"
	"sync/atomic"
	"time"
)

// SnapshotOptions configures the live backend's periodic metrics
// snapshotter (core.Config.Snapshot). A nil *SnapshotOptions disables it.
type SnapshotOptions struct {
	// W receives one JSON object per line per sample interval.
	W io.Writer
	// Every is the sample interval (default 10ms).
	Every time.Duration
}

// snapLine is one JSONL sample: cumulative counters plus deltas since the
// previous sample, so throughput collapse and livelock onset are visible
// mid-run instead of only at quiesce.
type snapLine struct {
	TMs      float64 `json:"t_ms"`
	Commits  uint64  `json:"commits"`
	Aborts   uint64  `json:"aborts"`
	Ops      uint64  `json:"ops"`
	DCommits uint64  `json:"d_commits"`
	DAborts  uint64  `json:"d_aborts"`
	DOps     uint64  `json:"d_ops"`
}

// Snapshotter samples a small set of shared atomic counters on a fixed
// interval and writes a JSONL time series. Runtimes bump the counters with
// the Add* methods (atomic adds — safe from any goroutine, and nil-safe so
// call sites stay a single comparison when snapshotting is off). Only the
// live backend runs a Snapshotter: the sim is single-threaded virtual time,
// where mid-run wall-clock sampling is meaningless.
type Snapshotter struct {
	w     io.Writer
	every time.Duration
	start time.Time

	commits atomic.Uint64
	aborts  atomic.Uint64
	ops     atomic.Uint64

	prev snapLine
	stop chan struct{}
	done chan struct{}
}

// NewSnapshotter returns a snapshotter writing to opts.W every opts.Every.
func NewSnapshotter(opts SnapshotOptions) *Snapshotter {
	every := opts.Every
	if every <= 0 {
		every = 10 * time.Millisecond
	}
	return &Snapshotter{w: opts.W, every: every}
}

// AddCommit records one committed transaction.
func (s *Snapshotter) AddCommit() {
	if s != nil {
		s.commits.Add(1)
	}
}

// AddAbort records one aborted attempt or withdrawn transaction.
func (s *Snapshotter) AddAbort() {
	if s != nil {
		s.aborts.Add(1)
	}
}

// AddOps records n completed application operations.
func (s *Snapshotter) AddOps(n uint64) {
	if s != nil {
		s.ops.Add(n)
	}
}

// Start launches the sampling goroutine. No-op on a nil receiver.
func (s *Snapshotter) Start() {
	if s == nil || s.w == nil {
		return
	}
	s.start = time.Now()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		tick := time.NewTicker(s.every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				s.sample()
			case <-s.stop:
				return
			}
		}
	}()
}

// Stop halts sampling, writes one final sample, and waits for the
// goroutine to exit. No-op on a nil receiver or before Start.
func (s *Snapshotter) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.sample()
	s.stop = nil
}

func (s *Snapshotter) sample() {
	line := snapLine{
		TMs:     float64(time.Since(s.start)) / 1e6,
		Commits: s.commits.Load(),
		Aborts:  s.aborts.Load(),
		Ops:     s.ops.Load(),
	}
	line.DCommits = line.Commits - s.prev.Commits
	line.DAborts = line.Aborts - s.prev.Aborts
	line.DOps = line.Ops - s.prev.Ops
	s.prev = line
	if data, err := json.Marshal(line); err == nil {
		data = append(data, '\n')
		s.w.Write(data)
	}
}

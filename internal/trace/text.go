package trace

import (
	"bufio"
	"fmt"
	"io"
)

// WriteText renders the trace as a plain-text timeline, one event per line
// in time order, suitable for test assertions and terminal reading. Unlike
// WriteChrome it includes every recorded event, KRead included.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if t.Dropped > 0 {
		fmt.Fprintf(bw, "# %d events dropped (ring wrap)\n", t.Dropped)
	}
	for i := range t.Events {
		e := &t.Events[i]
		label := t.Labels[e.Actor]
		if label == "" {
			label = fmt.Sprintf("actor%d", e.Actor)
		}
		fmt.Fprintf(bw, "[%12dns] %-10s ", int64(e.At), label)
		switch e.Kind {
		case KAttemptStart:
			fmt.Fprintf(bw, "tx=%d attempt #%d", e.TxID, e.A)
		case KCommit:
			fmt.Fprintf(bw, "tx=%d COMMIT attempts=%d", e.TxID, e.A)
		case KAbort:
			fmt.Fprintf(bw, "tx=%d ABORT reason=%s", e.TxID, Reason(e.A))
			if k := kindName(e.B); k != "" {
				fmt.Fprintf(bw, " kind=%s", k)
			}
		case KRead:
			fmt.Fprintf(bw, "tx=%d read key=%d", e.TxID, e.A)
		case KDoomedRead:
			fmt.Fprintf(bw, "tx=%d doomed read key=%d", e.TxID, e.A)
		case KLockReq:
			fmt.Fprintf(bw, "tx=%d lock-req flow=%d/%d key=%d keys=%d",
				e.TxID, e.A>>40, e.A&(1<<40-1), e.B, e.C)
		case KLockGrant:
			fmt.Fprintf(bw, "tx=%d grant flow=%d/%d keys=%d",
				e.TxID, e.A>>40, e.A&(1<<40-1), e.B)
		case KLockNack:
			fmt.Fprintf(bw, "tx=%d nack flow=%d/%d", e.TxID, e.A>>40, e.A&(1<<40-1))
			if k := kindName(e.B + 1); k != "" {
				fmt.Fprintf(bw, " kind=%s", k)
			}
		case KLockStale:
			fmt.Fprintf(bw, "tx=%d stale-nack flow=%d/%d epoch=%d",
				e.TxID, e.A>>40, e.A&(1<<40-1), e.B)
			if e.C > 0 {
				fmt.Fprintf(bw, " owner=%d", e.C-1)
			}
		case KRevoke:
			fmt.Fprintf(bw, "revoke victim core=%d tx=%d key=%d", e.A, e.B, e.C)
		case KPhaseBegin:
			fmt.Fprintf(bw, "tx=%d phase %s {", e.TxID, Phase(e.A))
		case KPhaseEnd:
			fmt.Fprintf(bw, "tx=%d phase %s }", e.TxID, Phase(e.A))
		case KClockTick:
			fmt.Fprintf(bw, "tx=%d clock tick wv=%d", e.TxID, e.A)
		case KWireSend:
			fmt.Fprintf(bw, "wire send dst=%d bytes=%d payloads=%d", e.A, e.B, e.C)
			if e.C >= 2 {
				fmt.Fprint(bw, " (coalesced envelope)")
			}
		case KEnvelopeDeliver:
			fmt.Fprintf(bw, "envelope deliver payloads=%d", e.C)
		case KFreeze:
			fmt.Fprintf(bw, "freeze stripe=%d %d->%d", e.A, e.B, e.C)
		case KHandoff:
			fmt.Fprintf(bw, "handoff stripe=%d %d->%d", e.A, e.B, e.C)
		default:
			fmt.Fprintf(bw, "%s tx=%d a=%d b=%d c=%d", e.Kind, e.TxID, e.A, e.B, e.C)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one Chrome trace_event record. Field order (and the
// absence of maps except Args, which encoding/json key-sorts) keeps the
// rendered bytes deterministic for golden-file tests.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

var cmKindNames = [...]string{"RAW", "WAW", "WAR"}

func kindName(enc uint64) string {
	if enc == 0 {
		return ""
	}
	if int(enc-1) < len(cmKindNames) {
		return cmKindNames[enc-1]
	}
	return "?"
}

// micros converts a nanosecond virtual/wall timestamp to trace_event
// microseconds.
func micros(ns int64) float64 { return float64(ns) / 1e3 }

type openSpan struct {
	ev    chromeEvent
	phase Phase // valid only for phase spans
}

// WriteChrome renders the trace as Chrome trace_event JSON, loadable in
// chrome://tracing or Perfetto. Each actor gets one lane (thread):
// transaction attempts and commit phases become nested duration spans,
// lock request→grant/NACK pairs become flow arrows between the app and DTM
// lanes, and aborts, doomed reads, clock ticks, coalesced envelopes,
// freezes and handoffs become instant events. Individual KRead events are
// omitted to keep the render small; WriteText includes them.
func WriteChrome(w io.Writer, t *Trace) error {
	var out []chromeEvent

	// Lane metadata, in sorted actor order for deterministic bytes.
	actors := make([]int32, 0, len(t.Labels))
	for a := range t.Labels {
		actors = append(actors, a)
	}
	sort.Slice(actors, func(i, j int) bool { return actors[i] < actors[j] })
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "tm2c"},
	})
	for _, a := range actors {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: int64(a),
			Args: map[string]any{"name": t.Labels[a]},
		})
	}

	var maxTs int64
	for i := range t.Events {
		if ns := int64(t.Events[i].At); ns > maxTs {
			maxTs = ns
		}
	}

	attempts := make(map[int32]openSpan) // one live attempt per app lane
	phases := make(map[int32][]openSpan) // nested commit phases per lane
	closeSpan := func(sp openSpan, endNs int64, args map[string]any) {
		d := micros(endNs) - sp.ev.Ts
		sp.ev.Dur = &d
		if args != nil {
			sp.ev.Args = args
		}
		out = append(out, sp.ev)
	}
	closePhasesAbove := func(actor int32, endNs int64) {
		for _, sp := range phases[actor] {
			closeSpan(sp, endNs, nil)
		}
		phases[actor] = phases[actor][:0]
	}

	for i := range t.Events {
		e := &t.Events[i]
		ts := micros(int64(e.At))
		tid := int64(e.Actor)
		switch e.Kind {
		case KAttemptStart:
			// A fresh attempt implicitly closes a dangling one (abort
			// events can be lost to ring wrap).
			if sp, ok := attempts[e.Actor]; ok {
				closePhasesAbove(e.Actor, int64(e.At))
				closeSpan(sp, int64(e.At), map[string]any{"outcome": "lost"})
			}
			attempts[e.Actor] = openSpan{ev: chromeEvent{
				Name: fmt.Sprintf("tx %d #%d", e.TxID, e.A),
				Cat:  "tx", Ph: "X", Ts: ts, Pid: 1, Tid: tid,
			}}
		case KCommit:
			closePhasesAbove(e.Actor, int64(e.At))
			if sp, ok := attempts[e.Actor]; ok {
				delete(attempts, e.Actor)
				closeSpan(sp, int64(e.At), map[string]any{"outcome": "commit", "attempts": e.A})
			}
		case KAbort:
			closePhasesAbove(e.Actor, int64(e.At))
			args := map[string]any{"outcome": "abort", "reason": Reason(e.A).String()}
			if k := kindName(e.B); k != "" {
				args["kind"] = k
			}
			if sp, ok := attempts[e.Actor]; ok {
				delete(attempts, e.Actor)
				closeSpan(sp, int64(e.At), args)
			}
			out = append(out, chromeEvent{
				Name: "abort: " + Reason(e.A).String(),
				Cat:  "abort", Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t",
				Args: map[string]any{"tx": e.TxID, "reason": Reason(e.A).String()},
			})
		case KPhaseBegin:
			phases[e.Actor] = append(phases[e.Actor], openSpan{
				phase: Phase(e.A),
				ev: chromeEvent{
					Name: Phase(e.A).String(),
					Cat:  "phase", Ph: "X", Ts: ts, Pid: 1, Tid: tid,
				},
			})
		case KPhaseEnd:
			st := phases[e.Actor]
			for len(st) > 0 {
				sp := st[len(st)-1]
				st = st[:len(st)-1]
				closeSpan(sp, int64(e.At), nil)
				if sp.phase == Phase(e.A) {
					break
				}
			}
			phases[e.Actor] = st
		case KDoomedRead:
			out = append(out, chromeEvent{
				Name: "doomed read",
				Cat:  "abort", Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t",
				Args: map[string]any{"tx": e.TxID, "key": e.A},
			})
		case KLockReq:
			out = append(out, chromeEvent{
				Name: "lock", Cat: "lock", Ph: "s", Ts: ts, Pid: 1, Tid: tid,
				ID:   fmt.Sprintf("%x", e.A),
				Args: map[string]any{"tx": e.TxID, "key": e.B, "keys": e.C},
			})
		case KLockGrant, KLockNack, KLockStale:
			name, args := "grant", map[string]any{"tx": e.TxID}
			switch e.Kind {
			case KLockNack:
				name = "nack"
				if k := kindName(e.B + 1); k != "" {
					args["kind"] = k
				}
			case KLockStale:
				name = "stale-nack"
				args["epoch"] = e.B
				if e.C > 0 {
					args["owner"] = e.C - 1
				}
			default:
				args["keys"] = e.B
			}
			zero := 0.0
			out = append(out, chromeEvent{
				Name: name, Cat: "lock", Ph: "X", Ts: ts, Dur: &zero,
				Pid: 1, Tid: tid, Args: args,
			})
			out = append(out, chromeEvent{
				Name: "lock", Cat: "lock", Ph: "f", BP: "e", Ts: ts,
				Pid: 1, Tid: tid, ID: fmt.Sprintf("%x", e.A),
			})
		case KRevoke:
			out = append(out, chromeEvent{
				Name: "revoke", Cat: "cm", Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t",
				Args: map[string]any{"victim_core": e.A, "victim_tx": e.B, "key": e.C},
			})
		case KClockTick:
			out = append(out, chromeEvent{
				Name: "clock tick", Cat: "tl2", Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t",
				Args: map[string]any{"tx": e.TxID, "wv": e.A},
			})
		case KWireSend:
			if e.C < 2 {
				continue // singleton sends are noise at chrome scale
			}
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("envelope(%d)", e.C),
				Cat:  "wire", Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t",
				Args: map[string]any{"dst_core": e.A, "bytes": e.B, "payloads": e.C},
			})
		case KEnvelopeDeliver:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("deliver(%d)", e.C),
				Cat:  "wire", Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t",
				Args: map[string]any{"payloads": e.C},
			})
		case KFreeze:
			out = append(out, chromeEvent{
				Name: "freeze", Cat: "placement", Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t",
				Args: map[string]any{"stripe": e.A, "from": e.B, "to": e.C},
			})
		case KHandoff:
			out = append(out, chromeEvent{
				Name: "handoff", Cat: "placement", Ph: "i", Ts: ts, Pid: 1, Tid: tid, S: "t",
				Args: map[string]any{"stripe": e.A, "from": e.B, "to": e.C},
			})
		}
	}

	// Close anything still open at the end of the recorded window.
	var openActors []int32
	for a := range attempts {
		openActors = append(openActors, a)
	}
	for a := range phases {
		if len(phases[a]) > 0 {
			openActors = append(openActors, a)
		}
	}
	sort.Slice(openActors, func(i, j int) bool { return openActors[i] < openActors[j] })
	seen := make(map[int32]bool)
	for _, a := range openActors {
		if seen[a] {
			continue
		}
		seen[a] = true
		closePhasesAbove(a, maxTs)
		if sp, ok := attempts[a]; ok {
			closeSpan(sp, maxTs, map[string]any{"outcome": "open"})
		}
	}

	data, err := json.MarshalIndent(chromeFile{TraceEvents: out, DisplayTimeUnit: "ns"}, "", " ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

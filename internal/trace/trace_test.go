package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRecorderBasic(t *testing.T) {
	r := NewRecorder(3, 8)
	for i := 0; i < 5; i++ {
		r.Emit(sim.Time(i*10), KRead, 1, uint64(i), 0, 0)
	}
	if got := r.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped = %d, want 0", got)
	}
	evs := r.appendEvents(nil)
	for i, e := range evs {
		if e.A != uint64(i) || e.Actor != 3 || e.Kind != KRead {
			t.Fatalf("event %d = %+v", i, e)
		}
	}
}

func TestRecorderWrap(t *testing.T) {
	r := NewRecorder(1, 8)
	for i := 0; i < 20; i++ {
		r.Emit(sim.Time(i), KRead, 0, uint64(i), 0, 0)
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len after wrap = %d, want 8", got)
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	evs := r.appendEvents(nil)
	// The most recent window survives, in emission order.
	for i, e := range evs {
		if want := uint64(12 + i); e.A != want {
			t.Fatalf("event %d A = %d, want %d", i, e.A, want)
		}
	}
}

func TestRecorderCapacityRounding(t *testing.T) {
	r := NewRecorder(0, 100)
	if len(r.buf) != 128 {
		t.Fatalf("capacity 100 rounded to %d, want 128", len(r.buf))
	}
	r = NewRecorder(0, 0)
	if len(r.buf) != DefaultActorEvents {
		t.Fatalf("default capacity = %d, want %d", len(r.buf), DefaultActorEvents)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Emit(0, KCommit, 1, 2, 3, 4) // must not panic
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder reports non-zero state")
	}
	tr := New()
	tr.Add(r, "nil")
	tr.Finish()
	if len(tr.Events) != 0 {
		t.Fatal("nil recorder contributed events")
	}
}

// The flight recorder's hot path must not allocate: emitting with tracing
// on is a ring-slot write, and the trace-off path is one nil comparison.
func TestEmitAllocationFree(t *testing.T) {
	r := NewRecorder(0, 1024)
	if n := testing.AllocsPerRun(1000, func() {
		r.Emit(1, KRead, 2, 3, 4, 5)
	}); n != 0 {
		t.Fatalf("Emit allocates %v per call, want 0", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(1000, func() {
		nilRec.Emit(1, KRead, 2, 3, 4, 5)
	}); n != 0 {
		t.Fatalf("nil Emit allocates %v per call, want 0", n)
	}
}

func TestTraceMergeSort(t *testing.T) {
	a := NewRecorder(0, 16)
	b := NewRecorder(DTMActorBase+4, 16)
	a.Emit(30, KCommit, 1, 1, 0, 0)
	a.Emit(10, KAttemptStart, 1, 1, 0, 0)
	b.Emit(20, KLockGrant, 1, 7, 1, 0)
	tr := New()
	tr.Add(a, "app0")
	tr.Add(b, "dtm4")
	tr.Finish()
	if len(tr.Events) != 3 {
		t.Fatalf("merged %d events, want 3", len(tr.Events))
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].At < tr.Events[i-1].At {
			t.Fatalf("events not time-sorted: %v", tr.Events)
		}
	}
	if tr.Labels[0] != "app0" || tr.Labels[DTMActorBase+4] != "dtm4" {
		t.Fatalf("labels = %v", tr.Labels)
	}
}

func TestReasonStrings(t *testing.T) {
	want := map[Reason]string{
		ReasonConflict:       "conflict",
		ReasonRevoked:        "revoked",
		ReasonDoomedRead:     "doomed-read",
		ReasonStalePlacement: "stale-placement",
		ReasonUser:           "user",
		ReasonTimeout:        "timeout",
	}
	if len(Reasons()) != NumReasons {
		t.Fatalf("Reasons() lists %d, NumReasons = %d", len(Reasons()), NumReasons)
	}
	for _, r := range Reasons() {
		if r.String() != want[r] {
			t.Fatalf("Reason(%d).String() = %q, want %q", r, r, want[r])
		}
	}
}

// Build a tiny synthetic trace exercising every render path.
func syntheticTrace() *Trace {
	app := NewRecorder(2, 64)
	dtm := NewRecorder(DTMActorBase+8, 64)
	place := NewRecorder(PlacementActor, 64)
	flow := FlowID(2, 5)
	app.Emit(100, KAttemptStart, 7, 1, 0, 0)
	app.Emit(110, KRead, 7, 42, 0, 0)
	app.Emit(120, KLockReq, 7, flow, 42, 1)
	app.Emit(125, KWireSend, 7, 8, 24, 3)
	dtm.Emit(140, KEnvelopeDeliver, 0, 0, 0, 3)
	dtm.Emit(150, KLockNack, 7, flow, 1, 0)
	app.Emit(180, KAbort, 7, uint64(ReasonConflict), 2, 0)
	app.Emit(200, KAttemptStart, 8, 1, 0, 0)
	app.Emit(210, KPhaseBegin, 8, uint64(PhaseScatter), 0, 0)
	app.Emit(220, KPhaseEnd, 8, uint64(PhaseScatter), 0, 0)
	app.Emit(221, KPhaseBegin, 8, uint64(PhaseGather), 0, 0)
	dtm.Emit(230, KLockGrant, 8, FlowID(2, 6), 2, 0)
	app.Emit(240, KPhaseEnd, 8, uint64(PhaseGather), 0, 0)
	app.Emit(245, KClockTick, 8, 17, 0, 0)
	app.Emit(250, KCommit, 8, 2, 0, 0)
	dtm.Emit(260, KRevoke, 0, 5, 9, 42)
	dtm.Emit(270, KLockStale, 9, FlowID(3, 1), 4, 11)
	app.Emit(280, KDoomedRead, 9, 13, 0, 0)
	place.Emit(300, KFreeze, 0, 6, 8, 10)
	place.Emit(320, KHandoff, 0, 6, 8, 10)
	tr := New()
	tr.Add(app, "app2")
	tr.Add(dtm, "dtm8")
	tr.Add(place, "placement")
	tr.Finish()
	return tr
}

func TestWriteChrome(t *testing.T) {
	tr := syntheticTrace()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	var abortSpan, abortInstant, envelope, flowStart, flowEnd bool
	for _, ev := range parsed.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		if _, ok := ev["ts"]; !ok && ph != "M" {
			t.Fatalf("event without ts: %v", ev)
		}
		if args, ok := ev["args"].(map[string]any); ok && ph == "X" {
			if args["outcome"] == "abort" && args["reason"] == "conflict" {
				abortSpan = true
			}
		}
		if strings.HasPrefix(name, "abort:") && ph == "i" {
			abortInstant = true
		}
		if strings.HasPrefix(name, "envelope(") {
			envelope = true
		}
		if ph == "s" {
			flowStart = true
		}
		if ph == "f" {
			flowEnd = true
		}
	}
	if !abortSpan || !abortInstant {
		t.Fatalf("abort span/instant missing (span=%v instant=%v)", abortSpan, abortInstant)
	}
	if !envelope {
		t.Fatal("coalesced envelope instant missing")
	}
	if !flowStart || !flowEnd {
		t.Fatalf("flow arrow missing (s=%v f=%v)", flowStart, flowEnd)
	}
}

func TestWriteText(t *testing.T) {
	tr := syntheticTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ABORT reason=conflict kind=WAW",
		"read key=42",
		"doomed read key=13",
		"stale-nack flow=3/1 epoch=4 owner=10",
		"coalesced envelope",
		"phase scatter {",
		"clock tick wv=17",
		"freeze stripe=6",
		"handoff stripe=6",
		"COMMIT attempts=2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text render missing %q in:\n%s", want, out)
		}
	}
}

func TestSnapshotter(t *testing.T) {
	var buf bytes.Buffer
	s := NewSnapshotter(SnapshotOptions{W: &buf, Every: time.Millisecond})
	s.Start()
	s.AddCommit()
	s.AddCommit()
	s.AddAbort()
	s.AddOps(10)
	time.Sleep(5 * time.Millisecond)
	s.Stop()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no snapshot lines written")
	}
	var last snapLine
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("bad JSONL line %q: %v", lines[len(lines)-1], err)
	}
	if last.Commits != 2 || last.Aborts != 1 || last.Ops != 10 {
		t.Fatalf("final sample = %+v, want commits=2 aborts=1 ops=10", last)
	}
	// Nil snapshotter: all methods are no-ops.
	var nilSnap *Snapshotter
	nilSnap.AddCommit()
	nilSnap.AddOps(5)
	nilSnap.Start()
	nilSnap.Stop()
}

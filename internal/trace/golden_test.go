// Golden-trace and determinism tests: drive a real contended-bank run
// through the core runtime with the flight recorder on and pin the rendered
// chrome trace_event output byte-for-byte. The external test package breaks
// the core→trace import cycle.
package trace_test

import (
	"bytes"
	"compress/gzip"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/apps/bank"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace testdata")

// goldenConfig is the pinned contended-bank run: few accounts on many cores
// forces conflict aborts (the taxonomy coverage), NoBatching+Coalesce forces
// multi-payload envelopes (the coalescing-visibility coverage).
func goldenConfig(proto core.Protocol) core.Config {
	return core.Config{
		Backend:    core.BackendSim,
		Seed:       3,
		TotalCores: 8,
		Policy:     cm.FairCM,
		Coalesce:   true,
		NoBatching: true,
		Protocol:   proto,
		Trace:      &trace.Options{ActorEvents: 1 << 15},
	}
}

// runGoldenBank executes the pinned workload and returns the system after
// quiesce.
func runGoldenBank(t *testing.T, proto core.Protocol) (*core.System, *core.Stats) {
	t.Helper()
	s, err := core.NewSystem(goldenConfig(proto))
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	b := bank.New(s, 8)
	s.SpawnWorkers(b.TransferWorker(10))
	st := s.Run(300 * time.Microsecond)
	if b.TotalRaw() != b.Total() {
		t.Fatalf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
	}
	return s, st
}

// TestGoldenChromeTrace pins the chrome renderer's bytes on the contended
// bank run. The golden file must render in chrome://tracing / Perfetto and
// is asserted to contain at least one taxonomy abort span and one coalesced
// envelope with >= 2 payloads — the observable artifacts the flight recorder
// exists for. Regenerate with: go test ./internal/trace -run Golden -update
func TestGoldenChromeTrace(t *testing.T) {
	s, _ := runGoldenBank(t, core.ProtocolVisible)
	tr := s.Trace()
	if tr == nil {
		t.Fatal("no trace assembled")
	}
	if tr.Dropped != 0 {
		t.Fatalf("ring overflow: %d events dropped; grow ActorEvents", tr.Dropped)
	}
	if tr.CountKind(trace.KAbort) == 0 {
		t.Fatal("golden run produced no aborts; the workload must be contended")
	}
	coalesced := 0
	for _, e := range tr.Events {
		if e.Kind == trace.KWireSend && e.C >= 2 {
			coalesced++
		}
	}
	if coalesced == 0 {
		t.Fatal("golden run produced no coalesced envelope (>= 2 payloads)")
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	// The golden file is stored gzipped (~12k lines of JSON compress ~20x);
	// the comparison is still against the exact uncompressed bytes.
	golden := filepath.Join("testdata", "golden_bank_chrome.json.gz")
	if *update {
		if err := writeGzipped(golden, buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}
	want, err := readGzipped(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace deviates from %s (%d vs %d bytes); run with -update and review the diff",
			golden, buf.Len(), len(want))
	}
}

func writeGzipped(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	zw := gzip.NewWriter(f)
	_, err = zw.Write(data)
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func readGzipped(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer zr.Close()
	return io.ReadAll(zr)
}

// TestSimTraceDeterministic asserts the tentpole's determinism guarantee:
// two identical sim runs with tracing on produce identical event streams.
func TestSimTraceDeterministic(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtocolVisible, core.ProtocolTL2} {
		t.Run(proto.String(), func(t *testing.T) {
			s1, _ := runGoldenBank(t, proto)
			s2, _ := runGoldenBank(t, proto)
			t1, t2 := s1.Trace(), s2.Trace()
			if len(t1.Events) != len(t2.Events) {
				t.Fatalf("event counts differ: %d vs %d", len(t1.Events), len(t2.Events))
			}
			if !reflect.DeepEqual(t1.Events, t2.Events) {
				for i := range t1.Events {
					if t1.Events[i] != t2.Events[i] {
						t.Fatalf("first divergence at event %d: %+v vs %+v", i, t1.Events[i], t2.Events[i])
					}
				}
			}
		})
	}
}

// TestTraceStatsConsistency cross-checks the trace against the Stats the
// same run counted: every commit, abort, and per-reason abort must appear
// exactly once in the event stream. The TL2 variant adds doomed-read
// coverage (snapshot-staleness aborts).
func TestTraceStatsConsistency(t *testing.T) {
	for _, proto := range []core.Protocol{core.ProtocolVisible, core.ProtocolTL2} {
		t.Run(proto.String(), func(t *testing.T) {
			s, st := runGoldenBank(t, proto)
			tr := s.Trace()
			if tr.Dropped != 0 {
				t.Fatalf("ring overflow: %d events dropped", tr.Dropped)
			}
			if got := uint64(tr.CountKind(trace.KCommit)); got != st.Commits {
				t.Errorf("KCommit events %d != Stats.Commits %d", got, st.Commits)
			}
			if got := uint64(tr.CountKind(trace.KAbort)); got != st.Aborts+st.UserAborts {
				t.Errorf("KAbort events %d != Stats.Aborts+UserAborts %d", got, st.Aborts+st.UserAborts)
			}
			var byReason [trace.NumReasons]uint64
			for _, e := range tr.Events {
				if e.Kind == trace.KAbort {
					byReason[e.A]++
				}
			}
			var sum uint64
			for r, got := range byReason {
				if got != st.AbortReasons[r] {
					t.Errorf("reason %s: %d abort events != Stats.AbortReasons %d",
						trace.Reason(r), got, st.AbortReasons[r])
				}
				sum += st.AbortReasons[r]
			}
			if sum != st.Aborts+st.UserAborts {
				t.Errorf("sum(AbortReasons)=%d != Aborts+UserAborts=%d", sum, st.Aborts+st.UserAborts)
			}
			if proto == core.ProtocolTL2 && st.DoomedReads > 0 && tr.CountKind(trace.KDoomedRead) == 0 {
				t.Error("Stats counted doomed reads but the trace has no KDoomedRead event")
			}
		})
	}
}

// Package trace is TM2C-Go's flight recorder: a per-actor ring buffer of
// fixed-size binary event records written allocation-free on the hot path.
//
// Every execution context that does protocol work — an application runtime,
// a DTM service node, the placement directory — owns one Recorder and emits
// events into it as the protocol runs: transaction attempts, reads, lock
// request/grant/NACK pairs, commit phases, aborts with a reason taxonomy,
// wire envelopes, stripe freezes and handoffs. Events are stamped with the
// owning port's Now(), so simulator traces are deterministic (virtual time,
// bit-identical across runs of one seed) and live-backend traces are
// monotonic wall-clock.
//
// Emitting is a bounded-cost operation by construction: one ring-slot write,
// no allocation, no locking (each Recorder is single-writer, owned by its
// actor's execution context), and a nil *Recorder is a no-op — which is what
// the Config.Trace knob compiles down to when tracing is off. When the ring
// wraps, the oldest events are overwritten (flight-recorder semantics:
// the most recent window survives) and Dropped reports how many were lost.
//
// After a run quiesces, the per-actor rings are merged into a Trace and
// rendered: WriteChrome emits Chrome trace_event JSON (chrome://tracing,
// Perfetto) with one lane per actor, spans for transaction attempts and
// commit phases, and flow arrows for lock request→grant pairs; WriteText
// emits a plain-text timeline for test assertions and terminal reading.
package trace

import (
	"sort"

	"repro/internal/sim"
)

// Kind identifies one event record type. The A/B/C payload words are
// interpreted per kind as documented on each constant.
type Kind uint8

const (
	// KAttemptStart opens a transaction attempt span. A = attempt number
	// within the transaction (1 = first).
	KAttemptStart Kind = iota
	// KCommit closes the attempt span with a commit. A = attempts used.
	KCommit
	// KAbort closes the attempt span with an abort. A = Reason,
	// B = conflict kind + 1 (cm.Kind; 0 when the abort carries no kind).
	KAbort
	// KRead records a successful transactional read. A = lock key.
	KRead
	// KDoomedRead records a TL2/elastic read refused by snapshot or window
	// validation, immediately before the attempt aborts. A = lock key.
	KDoomedRead
	// KLockReq records a lock request leaving an application core; the
	// flow start of a request→grant arrow. A = flow ID (see FlowID),
	// B = first lock key of the batch, C = batch size.
	KLockReq
	// KLockGrant records a DTM node granting a lock request; the flow end.
	// A = flow ID, B = batch size.
	KLockGrant
	// KLockNack records a DTM node rejecting a request on a conflict.
	// A = flow ID, B = conflict kind (cm.Kind).
	KLockNack
	// KLockStale records a stale-placement NACK. A = flow ID, B = the
	// directory epoch piggybacked on the NACK, C = owner hint + 1 (0 = no
	// hint).
	KLockStale
	// KRevoke records a contention manager remotely aborting an enemy
	// transaction. A = victim core, B = victim transaction ID, C = lock key.
	KRevoke
	// KPhaseBegin/KPhaseEnd bracket one commit phase span. A = Phase.
	KPhaseBegin
	KPhaseEnd
	// KClockTick records a TL2 version-clock tick. A = the new version.
	KClockTick
	// KWireSend records one physical wire message leaving an actor.
	// A = destination core, B = modeled bytes, C = payload count (>= 2
	// means a coalesced multi-payload envelope).
	KWireSend
	// KEnvelopeDeliver records a multi-payload envelope being unpacked at
	// the receiving mailbox. C = payload count.
	KEnvelopeDeliver
	// KFreeze records the placement directory freezing a stripe for
	// migration. A = stripe, B = current owner node, C = target node.
	KFreeze
	// KHandoff records a drained stripe's ownership handoff completing.
	// A = stripe, B = old owner node, C = new owner node.
	KHandoff
)

func (k Kind) String() string {
	switch k {
	case KAttemptStart:
		return "attempt-start"
	case KCommit:
		return "commit"
	case KAbort:
		return "abort"
	case KRead:
		return "read"
	case KDoomedRead:
		return "doomed-read"
	case KLockReq:
		return "lock-req"
	case KLockGrant:
		return "lock-grant"
	case KLockNack:
		return "lock-nack"
	case KLockStale:
		return "lock-stale"
	case KRevoke:
		return "revoke"
	case KPhaseBegin:
		return "phase-begin"
	case KPhaseEnd:
		return "phase-end"
	case KClockTick:
		return "clock-tick"
	case KWireSend:
		return "wire-send"
	case KEnvelopeDeliver:
		return "envelope-deliver"
	case KFreeze:
		return "freeze"
	case KHandoff:
		return "handoff"
	}
	return "unknown"
}

// Phase identifies one commit phase span (KPhaseBegin/KPhaseEnd).
type Phase uint8

const (
	// PhaseScatter is the commit's write-lock scatter burst: building and
	// sending every per-node batch, through the outbox flush.
	PhaseScatter Phase = iota
	// PhaseGather is the await phase collecting the scatter's responses.
	PhaseGather
	// PhaseRevalidate is the TL2 commit's read-set revalidation.
	PhaseRevalidate
	// PhaseWriteBack is the write-set persist to shared memory.
	PhaseWriteBack
	// PhaseRelease is the fire-and-forget lock-release burst.
	PhaseRelease
)

func (p Phase) String() string {
	switch p {
	case PhaseScatter:
		return "scatter"
	case PhaseGather:
		return "gather"
	case PhaseRevalidate:
		return "revalidate"
	case PhaseWriteBack:
		return "write-back"
	case PhaseRelease:
		return "release"
	}
	return "unknown"
}

// Reason is the abort taxonomy: why a transaction attempt died. It replaces
// the lossy conflict-kind-only classification (Stats.AbortsByKind, which
// survives as the sub-classification of ReasonConflict) with a complete
// partition of every aborted attempt and withdrawn transaction.
type Reason uint8

const (
	// ReasonConflict: a DTM node rejected a lock request on a RAW/WAW/WAR
	// conflict and the contention manager sided with the enemy.
	ReasonConflict Reason = iota
	// ReasonRevoked: a contention manager remotely aborted this transaction
	// (its status register flipped to aborted, observed at a wrapper check
	// or a commit-time CAS).
	ReasonRevoked
	// ReasonDoomedRead: snapshot or window validation refused a read — a
	// TL2 read of a stripe newer than the snapshot (or mid-write-back), a
	// TL2 commit-time revalidation failure, or an elastic-read window
	// mismatch. The opacity mechanism.
	ReasonDoomedRead
	// ReasonStalePlacement: the attempt exhausted its stale-NACK hop budget
	// chasing migrating stripe ownership.
	ReasonStalePlacement
	// ReasonUser: the application withdrew the transaction (Tx.Abort or a
	// terminal Atomic error) or requested an explicit retry (ErrRetry).
	ReasonUser
	// ReasonTimeout: an awaited lock-response RPC exceeded the net backend's
	// per-RPC deadline (Config.RPCDeadline) — the peer process stalled, died,
	// or the connection broke mid-round-trip. The attempt conservatively
	// releases everything it may hold and goes back around the retry loop,
	// so a timeout is a retried abort, not a withdrawal.
	ReasonTimeout
	// NumReasons sizes per-reason counter arrays (Stats.AbortReasons).
	NumReasons = int(ReasonTimeout) + 1
)

func (r Reason) String() string {
	switch r {
	case ReasonConflict:
		return "conflict"
	case ReasonRevoked:
		return "revoked"
	case ReasonDoomedRead:
		return "doomed-read"
	case ReasonStalePlacement:
		return "stale-placement"
	case ReasonUser:
		return "user"
	case ReasonTimeout:
		return "timeout"
	}
	return "unknown"
}

// Reasons lists every abort reason in presentation order.
func Reasons() []Reason {
	return []Reason{ReasonConflict, ReasonRevoked, ReasonDoomedRead, ReasonStalePlacement, ReasonUser, ReasonTimeout}
}

// FlowID packs a (requester core, correlation ID) pair into the flow
// identifier tying a KLockReq to its KLockGrant/KLockNack/KLockStale:
// correlation IDs are per-core, so the pair is globally unique.
func FlowID(core int, reqID uint64) uint64 {
	return uint64(core)<<40 | reqID
}

// Event is one fixed-size flight-recorder record. At is the owning port's
// Now() at emit time; Actor identifies the lane (see Trace.Labels); the
// payload words A/B/C are interpreted per Kind.
type Event struct {
	At   sim.Time
	TxID uint64
	A    uint64
	B    uint64
	C    uint64
	// Actor is the emitting lane: the physical core ID for application
	// runtimes, DTMActorBase+core for DTM nodes, PlacementActor for the
	// placement directory.
	Actor int32
	Kind  Kind
}

// Actor lane encoding. Application runtimes use their physical core ID
// directly; DTM nodes are offset so a multitasked core's two services get
// distinct lanes; the placement directory gets one synthetic lane.
const (
	DTMActorBase   int32 = 1 << 16
	PlacementActor int32 = -1
)

// DefaultActorEvents is the default per-actor ring capacity.
const DefaultActorEvents = 8192

// Options configures the flight recorder (core.Config.Trace). The zero
// value of each field takes the documented default; a nil *Options disables
// tracing entirely.
type Options struct {
	// ActorEvents is the ring capacity per actor, rounded up to a power of
	// two (default DefaultActorEvents). When an actor emits more events
	// than fit, the oldest are overwritten.
	ActorEvents int
	// Sink, when non-nil, receives the assembled Trace right after the
	// run's statistics snapshot. Harnesses that build many systems (e.g.
	// tm2c-bench experiments) use it to collect every run's trace; a nil
	// Sink leaves the trace available through System.Trace only.
	Sink func(*Trace)
}

// Recorder is one actor's event ring. It is single-writer: only the actor's
// own execution context may Emit (the live backend's data-race freedom
// depends on it). A nil Recorder ignores Emit — the trace-off fast path is
// exactly one nil comparison.
type Recorder struct {
	buf   []Event
	mask  uint64
	n     uint64 // total events ever emitted (n - len(buf) were dropped)
	actor int32
}

// NewRecorder returns a recorder for the given actor lane with the given
// ring capacity (rounded up to a power of two; <= 0 takes the default).
func NewRecorder(actor int32, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultActorEvents
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Recorder{buf: make([]Event, size), mask: uint64(size - 1), actor: actor}
}

// Emit appends one event to the ring, overwriting the oldest when full.
// It never allocates and never blocks; on a nil receiver it is a no-op.
func (r *Recorder) Emit(at sim.Time, k Kind, txID, a, b, c uint64) {
	if r == nil {
		return
	}
	r.buf[r.n&r.mask] = Event{At: at, TxID: txID, A: a, B: b, C: c, Actor: r.actor, Kind: k}
	r.n++
}

// Len returns how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped returns how many events were overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	if r.n < uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// appendEvents appends the ring's events in emission order.
func (r *Recorder) appendEvents(dst []Event) []Event {
	if r == nil || r.n == 0 {
		return dst
	}
	if r.n <= uint64(len(r.buf)) {
		return append(dst, r.buf[:r.n]...)
	}
	head := r.n & r.mask
	dst = append(dst, r.buf[head:]...)
	return append(dst, r.buf[:head]...)
}

// Trace is the merged flight record of one run: every actor's surviving
// events in one time-sorted slice, plus the lane labels and drop count.
type Trace struct {
	// Events is sorted by At; ties preserve per-actor emission order and
	// the deterministic actor merge order, so identical sim runs produce
	// identical slices.
	Events []Event
	// Labels names each actor lane ("app3", "dtm8", "placement").
	Labels map[int32]string
	// Dropped is the total number of events lost to ring wrap across all
	// actors.
	Dropped uint64
}

// New returns an empty trace ready for Add.
func New() *Trace {
	return &Trace{Labels: make(map[int32]string)}
}

// Add merges one recorder's events under the given lane label. Call in a
// deterministic actor order, then Finish.
func (t *Trace) Add(r *Recorder, label string) {
	if r == nil {
		return
	}
	t.Labels[r.actor] = label
	t.Events = r.appendEvents(t.Events)
	t.Dropped += r.Dropped()
}

// Finish time-sorts the merged events. Stable, so same-instant events keep
// the deterministic order Add built.
func (t *Trace) Finish() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		return t.Events[i].At < t.Events[j].At
	})
}

// CountKind returns how many events of kind k the trace holds.
func (t *Trace) CountKind(k Kind) int {
	n := 0
	for i := range t.Events {
		if t.Events[i].Kind == k {
			n++
		}
	}
	return n
}

package dslock

import (
	"testing"

	"repro/internal/cm"
	"repro/internal/mem"
)

// BenchmarkReadLockGrant measures the grant/release fast path.
func BenchmarkReadLockGrant(b *testing.B) {
	t := NewTable()
	m := cm.Meta{Core: 1, TxID: 1}
	for i := 0; i < b.N; i++ {
		addr := mem.Addr(i % 1024)
		if t.ReadConflict(addr, m) == nil {
			t.AddReader(addr, m)
		}
		t.ReleaseRead(addr, m.Core, m.TxID)
	}
}

// BenchmarkWriteConflictScan measures conflict detection against a
// populated reader set.
func BenchmarkWriteConflictScan(b *testing.B) {
	t := NewTable()
	const addr mem.Addr = 7
	for c := 0; c < 16; c++ {
		t.AddReader(addr, cm.Meta{Core: c, TxID: uint64(c)})
	}
	req := cm.Meta{Core: 99, TxID: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t.WriteConflict(addr, req) == nil {
			b.Fatal("expected conflict")
		}
	}
}

package dslock

import (
	"testing"
	"testing/quick"

	"repro/internal/cm"
	"repro/internal/mem"
)

func meta(core int, txID uint64) cm.Meta { return cm.Meta{Core: core, TxID: txID, Prio: int64(core)} }

func TestReadLockGrantAndRAWConflict(t *testing.T) {
	tab := NewTable()
	const a mem.Addr = 100
	if c := tab.ReadConflict(a, meta(0, 1)); c != nil {
		t.Fatalf("unexpected conflict on free address: %+v", c)
	}
	tab.AddReader(a, meta(0, 1))
	// A second reader is always fine.
	if c := tab.ReadConflict(a, meta(1, 2)); c != nil {
		t.Fatalf("reader vs reader conflict: %+v", c)
	}
	tab.AddReader(a, meta(1, 2))
	// A writer makes subsequent foreign reads RAW conflicts.
	tab.SetWriter(a, meta(1, 2))
	c := tab.ReadConflict(a, meta(2, 3))
	if c == nil || c.Kind != cm.RAW || len(c.Enemies) != 1 || c.Enemies[0].Core != 1 {
		t.Fatalf("want RAW vs core 1, got %+v", c)
	}
	// The writer itself may still read (no self-conflict).
	if c := tab.ReadConflict(a, meta(1, 2)); c != nil {
		t.Fatalf("self RAW conflict: %+v", c)
	}
}

func TestWriteLockWAWConflict(t *testing.T) {
	tab := NewTable()
	const a mem.Addr = 7
	tab.SetWriter(a, meta(0, 1))
	c := tab.WriteConflict(a, meta(1, 2))
	if c == nil || c.Kind != cm.WAW || c.Enemies[0].Core != 0 {
		t.Fatalf("want WAW vs core 0, got %+v", c)
	}
	// Same core re-locking (e.g. upgrade within commit) is fine.
	if c := tab.WriteConflict(a, meta(0, 1)); c != nil {
		t.Fatalf("self WAW conflict: %+v", c)
	}
}

func TestWriteLockWARConflict(t *testing.T) {
	tab := NewTable()
	const a mem.Addr = 8
	tab.AddReader(a, meta(1, 10))
	tab.AddReader(a, meta(2, 20))
	tab.AddReader(a, meta(3, 30))
	c := tab.WriteConflict(a, meta(1, 10)) // core 1 upgrading its own read
	if c == nil || c.Kind != cm.WAR {
		t.Fatalf("want WAR, got %+v", c)
	}
	if len(c.Enemies) != 2 {
		t.Fatalf("enemies = %+v, want cores 2 and 3 only", c.Enemies)
	}
	for _, e := range c.Enemies {
		if e.Core == 1 {
			t.Fatal("requester listed among its own enemies")
		}
	}
	// With only its own read lock present, the upgrade succeeds.
	tab2 := NewTable()
	tab2.AddReader(a, meta(1, 10))
	if c := tab2.WriteConflict(a, meta(1, 10)); c != nil {
		t.Fatalf("self-upgrade conflict: %+v", c)
	}
}

func TestWAWCheckedBeforeWAR(t *testing.T) {
	// Algorithm 2 checks the writer first, then the readers.
	tab := NewTable()
	const a mem.Addr = 9
	tab.SetWriter(a, meta(0, 1))
	tab.AddReader(a, meta(0, 1)) // writer's own read entry
	c := tab.WriteConflict(a, meta(5, 2))
	if c == nil || c.Kind != cm.WAW {
		t.Fatalf("want WAW first, got %+v", c)
	}
}

func TestReleaseReadOnlyMatching(t *testing.T) {
	tab := NewTable()
	const a mem.Addr = 11
	tab.AddReader(a, meta(1, 100))
	if tab.ReleaseRead(a, 1, 999) {
		t.Fatal("release with wrong txID succeeded")
	}
	if tab.ReleaseRead(a, 2, 100) {
		t.Fatal("release with wrong core succeeded")
	}
	if !tab.ReleaseRead(a, 1, 100) {
		t.Fatal("matching release failed")
	}
	if tab.ReleaseRead(a, 1, 100) {
		t.Fatal("double release reported success")
	}
	if tab.Size() != 0 {
		t.Fatalf("size = %d after full release", tab.Size())
	}
}

func TestReleaseWriteOnlyMatching(t *testing.T) {
	tab := NewTable()
	const a mem.Addr = 12
	tab.SetWriter(a, meta(3, 7))
	if tab.ReleaseWrite(a, 3, 8) || tab.ReleaseWrite(a, 4, 7) {
		t.Fatal("mismatched write release succeeded")
	}
	if !tab.ReleaseWrite(a, 3, 7) {
		t.Fatal("matching write release failed")
	}
	if tab.Size() != 0 {
		t.Fatal("entry not garbage-collected")
	}
}

func TestRevokeRemovesBothKinds(t *testing.T) {
	tab := NewTable()
	const a mem.Addr = 13
	tab.AddReader(a, meta(1, 5))
	tab.SetWriter(a, meta(1, 5))
	tab.AddReader(a, meta(1, 5)) // replaced, still one entry
	if !tab.Revoke(a, 1, 5) {
		t.Fatal("revoke found nothing")
	}
	if tab.Size() != 0 {
		t.Fatal("revoke left residue")
	}
	if tab.Revoke(a, 1, 5) {
		t.Fatal("second revoke reported removal")
	}
}

func TestRevokeLeavesOthersIntact(t *testing.T) {
	tab := NewTable()
	const a mem.Addr = 14
	tab.AddReader(a, meta(1, 5))
	tab.AddReader(a, meta(2, 6))
	tab.Revoke(a, 1, 5)
	rs := tab.ReadersOf(a)
	if len(rs) != 1 || rs[0].Core != 2 {
		t.Fatalf("readers after revoke = %+v", rs)
	}
}

func TestAddReaderReplacesSameCore(t *testing.T) {
	tab := NewTable()
	const a mem.Addr = 15
	tab.AddReader(a, meta(1, 5))
	tab.AddReader(a, cm.Meta{Core: 1, TxID: 6})
	rs := tab.ReadersOf(a)
	if len(rs) != 1 || rs[0].TxID != 6 {
		t.Fatalf("readers = %+v, want single entry with TxID 6", rs)
	}
}

func TestSetWriterOverForeignWriterPanics(t *testing.T) {
	tab := NewTable()
	tab.SetWriter(1, meta(0, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on foreign overwrite")
		}
	}()
	tab.SetWriter(1, meta(1, 2))
}

func TestWriterOf(t *testing.T) {
	tab := NewTable()
	if _, ok := tab.WriterOf(3); ok {
		t.Fatal("writer on empty table")
	}
	tab.SetWriter(3, meta(2, 9))
	w, ok := tab.WriterOf(3)
	if !ok || w.Core != 2 || w.TxID != 9 {
		t.Fatalf("WriterOf = %+v, %v", w, ok)
	}
}

func TestReadersOfReturnsCopy(t *testing.T) {
	tab := NewTable()
	tab.AddReader(1, meta(0, 1))
	rs := tab.ReadersOf(1)
	rs[0].Core = 99
	if tab.ReadersOf(1)[0].Core != 0 {
		t.Fatal("ReadersOf exposed internal state")
	}
}

func TestGrantsAndSizeAccounting(t *testing.T) {
	tab := NewTable()
	tab.AddReader(1, meta(0, 1))
	tab.AddReader(2, meta(0, 1))
	tab.SetWriter(3, meta(0, 1))
	if tab.Grants != 3 {
		t.Fatalf("Grants = %d", tab.Grants)
	}
	if tab.Size() != 3 {
		t.Fatalf("Size = %d", tab.Size())
	}
}

// TestInvariantsUnderRandomOps drives the table with random operation
// sequences that mimic the DTM service discipline (a write lock is only set
// after foreign holders are revoked) and checks the structural invariants
// after every step.
func TestInvariantsUnderRandomOps(t *testing.T) {
	type op struct {
		Kind byte
		Addr uint8
		Core uint8
		TxID uint8
	}
	if err := quick.Check(func(ops []op) bool {
		tab := NewTable()
		for _, o := range ops {
			addr := mem.Addr(o.Addr % 16)
			m := cm.Meta{Core: int(o.Core % 6), TxID: uint64(o.TxID % 8)}
			switch o.Kind % 5 {
			case 0: // read-lock attempt
				if tab.ReadConflict(addr, m) == nil {
					tab.AddReader(addr, m)
				}
			case 1: // write-lock attempt with forced revocation of enemies
				if c := tab.WriteConflict(addr, m); c != nil {
					for _, e := range c.Enemies {
						tab.Revoke(addr, e.Core, e.TxID)
					}
				}
				if tab.WriteConflict(addr, m) == nil {
					tab.SetWriter(addr, m)
				}
			case 2:
				tab.ReleaseRead(addr, m.Core, m.TxID)
			case 3:
				tab.ReleaseWrite(addr, m.Core, m.TxID)
			case 4:
				tab.Revoke(addr, m.Core, m.TxID)
			}
			if err := tab.CheckInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

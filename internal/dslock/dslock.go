// Package dslock implements the DS-Lock component at the heart of TM2C's
// DTM service (§3.2): a table of multiple-readers/single-writer *revocable*
// locks over shared-memory words.
//
// Each DTM node owns one Table covering the slice of the address space that
// hashes to it. The table is a pure data structure — message passing,
// contention-manager invocation and remote revocation are driven by the DTM
// service loop in internal/core, which keeps this package directly
// unit-testable.
//
// Lock identity is the pair (core, txID): releases and revocations only
// remove entries whose identity matches, so a stale release from an aborted
// attempt can never disturb a lock legitimately held by a newer transaction.
package dslock

import (
	"fmt"

	"repro/internal/cm"
	"repro/internal/mem"
)

// entry is the lock state of one address. The writer pointer, when set,
// always points at the entry's own wmeta field: entries are recycled through
// the table's freelist on the release hot path, so the writer metadata lives
// inline instead of in a fresh heap box per write lock.
type entry struct {
	writer  *cm.Meta
	wmeta   cm.Meta
	readers []cm.Meta // at most one per core
}

func (e *entry) empty() bool { return e.writer == nil && len(e.readers) == 0 }

// Table is the lock table of one DTM node.
type Table struct {
	locks map[mem.Addr]*entry
	// free holds recycled entries (empty, reader capacity retained): lock
	// tables drain back to empty after every transaction, so without reuse
	// each acquire/release cycle would allocate a fresh entry.
	free []*entry

	// Stats.
	Grants, Conflicts uint64
}

// NewTable returns an empty lock table.
func NewTable() *Table {
	return &Table{locks: make(map[mem.Addr]*entry)}
}

// Size returns the number of addresses with at least one lock held.
func (t *Table) Size() int { return len(t.locks) }

// Conflict describes why a request cannot be granted: the conflict kind and
// the metadata of every enemy transaction, for the contention manager.
type Conflict struct {
	Kind    cm.Kind
	Enemies []cm.Meta
}

// ReadConflict checks a read-lock request by req against the table. It
// returns nil if the lock can be granted immediately, or the RAW conflict
// with the current writer (Algorithm 1).
func (t *Table) ReadConflict(addr mem.Addr, req cm.Meta) *Conflict {
	e := t.locks[addr]
	if e == nil || e.writer == nil || e.writer.Core == req.Core {
		return nil
	}
	return &Conflict{Kind: cm.RAW, Enemies: []cm.Meta{*e.writer}}
}

// WriteConflict checks a write-lock request by req. It returns nil if the
// lock can be granted, a WAW conflict if a foreign writer holds the lock, or
// a WAR conflict listing every foreign reader (Algorithm 2).
func (t *Table) WriteConflict(addr mem.Addr, req cm.Meta) *Conflict {
	e := t.locks[addr]
	if e == nil {
		return nil
	}
	if e.writer != nil && e.writer.Core != req.Core {
		return &Conflict{Kind: cm.WAW, Enemies: []cm.Meta{*e.writer}}
	}
	var enemies []cm.Meta
	for _, r := range e.readers {
		if r.Core != req.Core {
			enemies = append(enemies, r)
		}
	}
	if len(enemies) > 0 {
		return &Conflict{Kind: cm.WAR, Enemies: enemies}
	}
	return nil
}

// AddReader records a granted read lock. A core's previous read entry for
// the same address (e.g. an earlier attempt) is replaced.
func (t *Table) AddReader(addr mem.Addr, m cm.Meta) {
	t.Grants++
	e := t.ensure(addr)
	for i := range e.readers {
		if e.readers[i].Core == m.Core {
			e.readers[i] = m
			return
		}
	}
	e.readers = append(e.readers, m)
}

// SetWriter records a granted write lock. It panics if a different core
// still holds the write lock — the service must resolve conflicts first.
func (t *Table) SetWriter(addr mem.Addr, m cm.Meta) {
	t.Grants++
	e := t.ensure(addr)
	if e.writer != nil && e.writer.Core != m.Core {
		panic(fmt.Sprintf("dslock: SetWriter(%#x) over foreign writer core %d", uint64(addr), e.writer.Core))
	}
	e.wmeta = m
	e.writer = &e.wmeta
}

// WriterOf returns the current writer's metadata, if any.
func (t *Table) WriterOf(addr mem.Addr) (cm.Meta, bool) {
	if e := t.locks[addr]; e != nil && e.writer != nil {
		return *e.writer, true
	}
	return cm.Meta{}, false
}

// ReadersOf returns a copy of the reader set of addr.
func (t *Table) ReadersOf(addr mem.Addr) []cm.Meta {
	e := t.locks[addr]
	if e == nil || len(e.readers) == 0 {
		return nil
	}
	out := make([]cm.Meta, len(e.readers))
	copy(out, e.readers)
	return out
}

// ReleaseRead removes (core, txID)'s read lock on addr. It reports whether
// an entry was removed; stale releases are harmless no-ops.
func (t *Table) ReleaseRead(addr mem.Addr, core int, txID uint64) bool {
	e := t.locks[addr]
	if e == nil {
		return false
	}
	for i := range e.readers {
		if e.readers[i].Core == core && e.readers[i].TxID == txID {
			e.readers = append(e.readers[:i], e.readers[i+1:]...)
			t.gc(addr, e)
			return true
		}
	}
	return false
}

// ReleaseWrite removes (core, txID)'s write lock on addr.
func (t *Table) ReleaseWrite(addr mem.Addr, core int, txID uint64) bool {
	e := t.locks[addr]
	if e == nil || e.writer == nil || e.writer.Core != core || e.writer.TxID != txID {
		return false
	}
	e.writer = nil
	t.gc(addr, e)
	return true
}

// Revoke removes every lock (read and write) held by (core, txID) on addr.
// The DTM service calls it after the contention manager has aborted the
// enemy transaction. It reports whether anything was removed.
func (t *Table) Revoke(addr mem.Addr, core int, txID uint64) bool {
	e := t.locks[addr]
	if e == nil {
		return false
	}
	removed := false
	if e.writer != nil && e.writer.Core == core && e.writer.TxID == txID {
		e.writer = nil
		removed = true
	}
	for i := 0; i < len(e.readers); {
		if e.readers[i].Core == core && e.readers[i].TxID == txID {
			e.readers = append(e.readers[:i], e.readers[i+1:]...)
			removed = true
			continue
		}
		i++
	}
	if removed {
		t.gc(addr, e)
	}
	return removed
}

// ForEach calls fn for every address with at least one live lock, in one
// pass. The DTM service uses it to decide which placement stripes have
// drained and can be handed off to their new owners. Iteration order is
// the map's (nondeterministic); callers must only accumulate
// order-insensitive facts.
func (t *Table) ForEach(fn func(mem.Addr)) {
	for addr := range t.locks {
		fn(addr)
	}
}

func (t *Table) ensure(addr mem.Addr) *entry {
	e := t.locks[addr]
	if e == nil {
		if n := len(t.free); n > 0 {
			e, t.free = t.free[n-1], t.free[:n-1]
		} else {
			e = &entry{}
		}
		t.locks[addr] = e
	}
	return e
}

func (t *Table) gc(addr mem.Addr, e *entry) {
	if e.empty() {
		// empty() guarantees writer == nil and len(readers) == 0; the
		// reader backing array survives for the next acquire.
		delete(t.locks, addr)
		t.free = append(t.free, e)
	}
}

// CheckInvariants validates the table's structural invariants; tests call it
// after random operation sequences. The invariants are: no empty entries
// linger, at most one reader entry per core per address, and a foreign
// writer never coexists with foreign readers (the WAR resolution either
// aborted the readers or the writer).
func (t *Table) CheckInvariants() error {
	for addr, e := range t.locks {
		if e.empty() {
			return fmt.Errorf("empty entry lingers at %#x", uint64(addr))
		}
		seen := make(map[int]bool)
		for _, r := range e.readers {
			if seen[r.Core] {
				return fmt.Errorf("duplicate reader core %d at %#x", r.Core, uint64(addr))
			}
			seen[r.Core] = true
		}
		if e.writer != nil {
			for _, r := range e.readers {
				if r.Core != e.writer.Core {
					return fmt.Errorf("foreign reader core %d coexists with writer core %d at %#x",
						r.Core, e.writer.Core, uint64(addr))
				}
			}
		}
	}
	return nil
}

// Package wire is the deterministic, versioned binary codec used by the
// cross-process net backend. It has two layers:
//
//   - Framing: every unit on a connection is a length-prefixed frame
//     [u32 length][u8 frame kind][body...], little-endian, where length
//     counts the kind byte plus the body. Frame kinds (handshake, port
//     message, state RPC, control) belong to the transport (internal/net);
//     this package only moves opaque (kind, body) pairs.
//
//   - Payload codec: a registry mapping each protocol message type to a
//     stable one-byte payload kind and a hand-written encoder/decoder pair.
//     internal/core registers its nine DTM protocol messages plus the Batch
//     envelope at init time; nothing else ever crosses the wire, so the
//     registry is closed and the encoding is exhaustively property-tested.
//
// All integers are little-endian and fixed-width — no varints, no
// reflection, no per-build layout dependence — so two processes built from
// the same source always agree byte-for-byte. Version is bumped whenever
// any registered encoding or the frame layout changes; peers exchange it
// during the connection handshake and refuse mismatches.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"

	"repro/internal/port"
	"repro/internal/sim"
)

// Version identifies the wire format: frame layout, handshake shape, and
// every registered payload encoding. Peers with different versions refuse
// to talk during the handshake rather than misparse each other mid-run.
const Version uint16 = 1

// MaxFrame bounds a frame body so a corrupt or hostile length prefix cannot
// make a reader allocate unboundedly. The largest legitimate frames are
// coalesced Batch envelopes and state-RPC read-batch responses, both far
// below this.
const MaxFrame = 16 << 20

// PortResolver maps a spawn-order port ID back to the local process's
// port.Port replica of that actor. Decoders use it to rebuild Reply fields;
// the net backend supplies its engine's port table.
type PortResolver func(id int) port.Port

// nilPort is the on-wire encoding of a nil port.Port reference.
const nilPort = math.MaxUint32

// Enc is an append-only little-endian encoder.
type Enc struct {
	b []byte
}

// NewEnc returns an encoder reusing buf's storage (pass nil for a fresh one).
func NewEnc(buf []byte) *Enc { return &Enc{b: buf[:0]} }

// encPool recycles encoders for the per-message send paths. An encoder's
// buffer grows to the largest frame it ever carried and stays that size.
var encPool = sync.Pool{New: func() any { return &Enc{} }}

// GetEnc returns a pooled encoder, empty but with retained capacity.
func GetEnc() *Enc {
	e := encPool.Get().(*Enc)
	e.b = e.b[:0]
	return e
}

// PutEnc recycles an encoder. The caller must be done with every slice
// obtained from Bytes — the storage is reused by the next GetEnc.
func PutEnc(e *Enc) { encPool.Put(e) }

// Bytes returns the encoded buffer. It aliases the encoder's storage.
func (e *Enc) Bytes() []byte { return e.b }

func (e *Enc) U8(v uint8)      { e.b = append(e.b, v) }
func (e *Enc) U16(v uint16)    { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *Enc) U32(v uint32)    { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *Enc) U64(v uint64)    { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *Enc) I64(v int64)     { e.U64(uint64(v)) }
func (e *Enc) Int(v int)       { e.I64(int64(v)) }
func (e *Enc) Time(t sim.Time) { e.I64(int64(t)) }

func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U64s encodes a slice as a u32 count followed by the elements.
func (e *Enc) U64s(vs []uint64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// Port encodes a port reference as its spawn-order ID (nil → sentinel).
func (e *Enc) Port(p port.Port) {
	if p == nil {
		e.U32(nilPort)
		return
	}
	e.U32(uint32(p.ID()))
}

// Bytes32 encodes a byte slice as a u32 count followed by the raw bytes.
func (e *Enc) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.b = append(e.b, b...)
}

// Dec is a little-endian decoder over a fixed buffer. The first malformed
// read latches an error; subsequent reads return zero values, so decoders
// can run straight-line and check Err once at the end.
type Dec struct {
	b   []byte
	off int
	// Resolve rebuilds port.Port references from spawn-order IDs. Required
	// only when decoding payloads that carry port fields.
	Resolve PortResolver
	err     error
}

// NewDec returns a decoder over b.
func NewDec(b []byte, r PortResolver) *Dec { return &Dec{b: b, Resolve: r} }

// Err reports the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Len reports the number of unread bytes.
func (d *Dec) Len() int { return len(d.b) - d.off }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.fail("wire: truncated payload: need %d bytes at offset %d of %d", n, d.off, len(d.b))
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *Dec) U8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *Dec) U16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (d *Dec) U32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *Dec) U64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *Dec) I64() int64     { return int64(d.U64()) }
func (d *Dec) Int() int       { return int(d.I64()) }
func (d *Dec) Time() sim.Time { return sim.Time(d.I64()) }
func (d *Dec) Bool() bool     { return d.U8() != 0 }

// U64s decodes a slice written by Enc.U64s. A zero count yields nil so
// round-trips preserve the in-memory convention of nil empty slices.
func (d *Dec) U64s() []uint64 {
	n := int(d.U32())
	if d.err != nil || n == 0 {
		return nil
	}
	if n > d.Len()/8 {
		d.fail("wire: slice count %d exceeds remaining payload", n)
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = d.U64()
	}
	return vs
}

// Port decodes a port reference via the resolver (sentinel → nil).
func (d *Dec) Port() port.Port {
	id := d.U32()
	if d.err != nil || id == nilPort {
		return nil
	}
	if d.Resolve == nil {
		d.fail("wire: payload carries port ID %d but decoder has no resolver", id)
		return nil
	}
	p := d.Resolve(int(id))
	if p == nil {
		d.fail("wire: unknown port ID %d", id)
	}
	return p
}

// Bytes32 decodes a byte slice written by Enc.Bytes32. The result aliases
// the decoder's buffer.
func (d *Dec) Bytes32() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	if n > d.Len() {
		d.fail("wire: byte-slice length %d exceeds remaining payload", n)
		return nil
	}
	return d.take(n)
}

// Codec describes one registered payload type: a stable kind byte, the
// concrete Go type it encodes, and the encoder/decoder pair. Decode must
// return the same concrete type as Type (pointer types round-trip as new
// pointers).
type Codec struct {
	Kind   uint8
	Type   reflect.Type
	Encode func(e *Enc, v any)
	Decode func(d *Dec) any
}

var (
	byKind [256]*Codec
	byType = map[reflect.Type]*Codec{}
)

// Register adds a payload codec. Kinds and types must be unique; collisions
// are programmer errors and panic at init time.
func Register(c Codec) {
	if byKind[c.Kind] != nil {
		panic(fmt.Sprintf("wire: payload kind %d registered twice (%v and %v)", c.Kind, byKind[c.Kind].Type, c.Type))
	}
	if _, dup := byType[c.Type]; dup {
		panic(fmt.Sprintf("wire: payload type %v registered twice", c.Type))
	}
	cc := c
	byKind[c.Kind] = &cc
	byType[c.Type] = &cc
}

// RegisteredTypes lists every registered payload type (test support).
func RegisteredTypes() []reflect.Type {
	ts := make([]reflect.Type, 0, len(byType))
	for _, c := range byKind {
		if c != nil {
			ts = append(ts, c.Type)
		}
	}
	return ts
}

// EncodePayload appends v's kind byte and body to e. Unregistered types are
// protocol bugs: only the closed set of DTM messages may cross the wire.
func EncodePayload(e *Enc, v any) error {
	c, ok := byType[reflect.TypeOf(v)]
	if !ok {
		return fmt.Errorf("wire: unregistered payload type %T", v)
	}
	e.U8(c.Kind)
	c.Encode(e, v)
	return nil
}

// DecodePayload reads one kind byte and body from d.
func DecodePayload(d *Dec) (any, error) {
	k := d.U8()
	if d.err != nil {
		return nil, d.err
	}
	c := byKind[k]
	if c == nil {
		return nil, fmt.Errorf("wire: unknown payload kind %d", k)
	}
	v := c.Decode(d)
	if d.err != nil {
		return nil, d.err
	}
	return v, nil
}

// framePool recycles the scratch buffers WriteFrame uses to emit header and
// body as a single Write call (one syscall, no partial-frame interleaving).
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// WriteFrame writes one [u32 length][u8 kind][body] frame.
func WriteFrame(w io.Writer, kind uint8, body []byte) error {
	if len(body)+1 > MaxFrame {
		return fmt.Errorf("wire: frame body %d bytes exceeds MaxFrame", len(body))
	}
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = kind
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], hdr[:]...)
	buf = append(buf, body...)
	_, err := w.Write(buf)
	*bp = buf[:0]
	framePool.Put(bp)
	return err
}

// ReadFrame reads one frame written by WriteFrame.
func ReadFrame(r io.Reader) (kind uint8, body []byte, err error) {
	var hdr [4]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err = io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

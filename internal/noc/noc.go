// Package noc models the interconnect and timing characteristics of the
// target platforms of the TM2C paper: the Intel Single-chip Cloud Computer
// (SCC) under its five performance settings (§5.1), and a 48-core AMD
// Opteron multi-core running a Barrelfish-style cache-line message-passing
// library (§7).
//
// A Platform converts logical actions (send a message of n bytes from core a
// to core b, perform c cycles of compute, access shared memory) into virtual
// durations for the simulation kernel. The constants are calibrated so that
// the round-trip message latency curve reproduces the endpoints the paper
// reports in Figure 8(a): ~5.1 µs for 2 cores and ~12.4 µs for 48 cores on
// the SCC's default setting.
//
// The dominant scaling mechanism, as the paper explains, is software
// polling: "a core has to repeatedly poll a flag for any other core to be
// able to detect any incoming messages", so receive cost grows linearly with
// the number of peers a core listens to. PollPerPeer captures that; PerHop
// captures the 2D-mesh distance.
package noc

import (
	"fmt"
	"time"
)

// Topology selects how inter-core hop distance is computed.
type Topology int

const (
	// Mesh2D is the SCC's 6x4 tile mesh with XY routing (2 cores/tile).
	Mesh2D Topology = iota
	// Sockets is a multi-socket multi-core: 0 hops within a socket, 1 hop
	// (a HyperTransport-like link) between sockets.
	Sockets
)

// Setting is one row of the SCC performance-settings table from §5.1 of the
// paper: frequencies in MHz for the tiles (cores), the mesh, and the DRAM.
type Setting struct {
	ID   int
	Tile int // core frequency, MHz
	Mesh int // interconnect frequency, MHz
	DRAM int // memory frequency, MHz
}

// Settings is the SCC performance-settings table (§5.1). Setting 0 is the
// Intel-recommended default used for the paper's measurements; setting 1 is
// the fastest ("SCC800" in §7).
var Settings = [5]Setting{
	{ID: 0, Tile: 533, Mesh: 800, DRAM: 800},
	{ID: 1, Tile: 800, Mesh: 1600, DRAM: 1066},
	{ID: 2, Tile: 800, Mesh: 1600, DRAM: 800},
	{ID: 3, Tile: 800, Mesh: 800, DRAM: 1066},
	{ID: 4, Tile: 800, Mesh: 800, DRAM: 800},
}

// Platform describes the timing model of one machine.
type Platform struct {
	Name     string
	Topology Topology

	// Geometry.
	MeshW, MeshH int // tiles (Mesh2D) or sockets laid out in a row (Sockets)
	CoresPerUnit int // cores per tile / per socket

	// ComputeScale multiplies nominal compute durations. Nominal durations
	// throughout the repository are defined for the SCC's 533 MHz P54C
	// cores, so ComputeScale 1.0 = SCC setting 0 and smaller is faster.
	ComputeScale float64

	// One-way message latency components.
	SendOverhead time.Duration // sender-side software cost
	RecvOverhead time.Duration // receiver-side software cost (one peer)
	PerHop       time.Duration // mesh/link traversal per hop
	PollPerPeer  time.Duration // extra receiver cost per additional polled peer
	PerByte      time.Duration // payload serialization/copy cost per byte

	// Shared-memory access.
	MemBase    time.Duration // uncontended access latency
	MemPerHop  time.Duration // extra latency per hop to the memory controller
	MemService time.Duration // controller occupancy per access (queueing)
	NumMCs     int           // memory controllers

	// Remote atomic (test-and-set / status CAS) base cost; the hardware
	// register is addressed directly, with no software polling.
	AtomicBase time.Duration
}

// SCC returns the SCC platform under performance setting id (0..4).
// Constants are defined at setting 0 and scaled by the setting's
// frequencies: core-side software costs scale with the tile clock, hop
// latency with the mesh clock, and memory latency with the DRAM clock.
func SCC(id int) Platform {
	if id < 0 || id >= len(Settings) {
		panic(fmt.Sprintf("noc: invalid SCC setting %d", id))
	}
	s := Settings[id]
	tile := 533.0 / float64(s.Tile)
	mesh := 800.0 / float64(s.Mesh)
	dram := 800.0 / float64(s.DRAM)
	name := "SCC"
	if id != 0 {
		name = fmt.Sprintf("SCC(setting %d)", id)
	}
	if id == 1 {
		name = "SCC800"
	}
	return Platform{
		Name:         name,
		Topology:     Mesh2D,
		MeshW:        6,
		MeshH:        4,
		CoresPerUnit: 2,
		ComputeScale: float64(tile),
		SendOverhead: scaleDur(1300*time.Nanosecond, tile),
		RecvOverhead: scaleDur(1250*time.Nanosecond, tile),
		PerHop:       scaleDur(250*time.Nanosecond, mesh),
		PollPerPeer:  scaleDur(124*time.Nanosecond, tile),
		PerByte:      scaleDur(2*time.Nanosecond, mesh),
		MemBase:      scaleDur(400*time.Nanosecond, dram),
		MemPerHop:    scaleDur(30*time.Nanosecond, mesh),
		MemService:   scaleDur(55*time.Nanosecond, dram),
		NumMCs:       4,
		AtomicBase:   scaleDur(200*time.Nanosecond, mesh),
	}
}

// Opteron returns the 48-core (4 sockets x 12 cores) AMD Opteron platform of
// §7: ~2.6x faster cores than the SCC at 800 MHz, hardware cache coherence
// (so very fast shared-memory access on the hot paths) but a slower
// software message-passing channel built from cache lines.
func Opteron() Platform {
	return Platform{
		Name:         "Opteron",
		Topology:     Sockets,
		MeshW:        4,
		MeshH:        1,
		CoresPerUnit: 12,
		ComputeScale: 533.0 / 2100.0,
		SendOverhead: 1000 * time.Nanosecond,
		RecvOverhead: 1000 * time.Nanosecond,
		PerHop:       300 * time.Nanosecond,
		PollPerPeer:  115 * time.Nanosecond,
		PerByte:      1 * time.Nanosecond,
		MemBase:      60 * time.Nanosecond, // caches absorb hot-spot accesses
		MemPerHop:    20 * time.Nanosecond,
		MemService:   8 * time.Nanosecond,
		NumMCs:       4,
		AtomicBase:   120 * time.Nanosecond,
	}
}

// Mesh returns a generic 2D-mesh platform of w x h tiles with
// coresPerTile cores each, using the SCC default setting's per-component
// timings and one memory controller per mesh corner plus edge midpoints
// (8 controllers). It is the scale-out platform for the million-object
// benchmarks: the SCC's geometry tops out at 48 cores, while the timing
// model itself is geometry-independent.
func Mesh(w, h, coresPerTile int) Platform {
	if w < 2 || h < 2 || coresPerTile < 1 {
		panic(fmt.Sprintf("noc: invalid mesh geometry %dx%dx%d", w, h, coresPerTile))
	}
	pl := SCC(0)
	pl.Name = fmt.Sprintf("Mesh%dx%dx%d", w, h, coresPerTile)
	pl.MeshW = w
	pl.MeshH = h
	pl.CoresPerUnit = coresPerTile
	pl.NumMCs = 8
	return pl
}

func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// NumCores returns the total number of cores on the platform.
func (pl *Platform) NumCores() int { return pl.MeshW * pl.MeshH * pl.CoresPerUnit }

// unitOf returns the tile/socket index of a core.
func (pl *Platform) unitOf(core int) int { return core / pl.CoresPerUnit }

// UnitCoord returns the (x, y) mesh coordinate of a core's tile. For the
// Sockets topology y is always 0.
func (pl *Platform) UnitCoord(core int) (x, y int) {
	u := pl.unitOf(core)
	return u % pl.MeshW, u / pl.MeshW
}

// Hops returns the routing distance between two cores: Manhattan distance
// between tiles under XY routing on the mesh, or 0/1 for same/different
// socket.
func (pl *Platform) Hops(a, b int) int {
	ua, ub := pl.unitOf(a), pl.unitOf(b)
	if ua == ub {
		return 0
	}
	switch pl.Topology {
	case Sockets:
		return 1
	default:
		ax, ay := ua%pl.MeshW, ua/pl.MeshW
		bx, by := ub%pl.MeshW, ub/pl.MeshW
		return abs(ax-bx) + abs(ay-by)
	}
}

// MsgDelay returns the one-way latency of a message of payloadBytes from src
// to dst, where the receiver polls recvPeers potential senders (>= 1).
func (pl *Platform) MsgDelay(src, dst, payloadBytes, recvPeers int) time.Duration {
	if recvPeers < 1 {
		recvPeers = 1
	}
	d := pl.SendOverhead + pl.RecvOverhead
	d += time.Duration(pl.Hops(src, dst)) * pl.PerHop
	d += time.Duration(recvPeers-1) * pl.PollPerPeer
	d += time.Duration(payloadBytes) * pl.PerByte
	return d
}

// BatchDelay returns the one-way latency of a coalesced wire message
// carrying payloads protocol payloads totaling payloadBytes, from src to
// dst, where the receiver polls recvPeers potential senders. The fixed
// per-message software costs — SendOverhead, RecvOverhead, hop traversal,
// per-peer polling — are charged ONCE for the whole envelope; only the
// payload bytes (each payload's framing included in its own byte count)
// scale with the batch. This is the amortization the paper's numbers make
// worthwhile: on the SCC the fixed costs are microseconds while a payload
// byte is nanoseconds, so k coalesced payloads cost barely more than one.
// A single-payload batch costs exactly MsgDelay.
func (pl *Platform) BatchDelay(src, dst, payloadBytes, payloads, recvPeers int) time.Duration {
	if payloads < 1 {
		panic(fmt.Sprintf("noc: batch of %d payloads", payloads))
	}
	return pl.MsgDelay(src, dst, payloadBytes, recvPeers)
}

// FlushBytes returns the adaptive-flush size trigger this platform suggests:
// the payload volume whose serialization cost equals the fixed per-message
// software overhead. A staged entry that big amortizes the envelope as well
// as a second wire message would, so holding it longer buys nothing.
func (pl *Platform) FlushBytes() int {
	if pl.PerByte <= 0 {
		return 1 << 10
	}
	return int((pl.SendOverhead + pl.RecvOverhead) / pl.PerByte)
}

// FlushAge returns the adaptive-flush age bound this platform suggests: twice
// the fixed per-message software overhead. Entries older than this stop
// waiting for more payloads — the latency already spent rivals what a
// dedicated message would have cost.
func (pl *Platform) FlushAge() time.Duration {
	return 2 * (pl.SendOverhead + pl.RecvOverhead)
}

// Compute scales a nominal (SCC-533) compute duration to this platform.
func (pl *Platform) Compute(d time.Duration) time.Duration {
	return time.Duration(float64(d) * pl.ComputeScale)
}

// MCCount returns the number of memory controllers (at least 1).
func (pl *Platform) MCCount() int {
	if pl.NumMCs < 1 {
		return 1
	}
	return pl.NumMCs
}

// mcCoord places memory controllers at the mesh corners (the first four,
// approximating the SCC's edge-mounted DDR3 controllers) and then at the
// edge midpoints (controllers 4-7 on the larger Mesh platforms).
func (pl *Platform) mcCoord(mc int) (x, y int) {
	switch mc % 8 {
	case 0:
		return 0, 0
	case 1:
		return pl.MeshW - 1, 0
	case 2:
		return 0, pl.MeshH - 1
	case 3:
		return pl.MeshW - 1, pl.MeshH - 1
	case 4:
		return pl.MeshW / 2, 0
	case 5:
		return pl.MeshW / 2, pl.MeshH - 1
	case 6:
		return 0, pl.MeshH / 2
	default:
		return pl.MeshW - 1, pl.MeshH / 2
	}
}

// ClusterOf returns the locality cluster of a core: the mesh quadrant on
// Mesh2D (a proxy for NUMA-style distance domains — cores in the same
// quadrant are a few hops apart, opposite quadrants pay the full mesh
// diameter), or the socket under the Sockets topology. Clusters are the
// granularity of the placement directory's thread/data co-mapping:
// deliberately coarser than a tile, so every cluster contains DTM service
// nodes a hot stripe can migrate to.
func (pl *Platform) ClusterOf(core int) int {
	if pl.Topology == Sockets {
		return pl.unitOf(core)
	}
	x, y := pl.UnitCoord(core)
	cx, cy := 0, 0
	if x >= (pl.MeshW+1)/2 {
		cx = 1
	}
	if y >= (pl.MeshH+1)/2 {
		cy = 1
	}
	return cy*2 + cx
}

// NumClusters returns how many locality clusters ClusterOf partitions the
// platform into.
func (pl *Platform) NumClusters() int {
	if pl.Topology == Sockets {
		return pl.MeshW * pl.MeshH
	}
	return 4
}

// MemHops returns the routing distance from a core to a memory controller.
func (pl *Platform) MemHops(core, mc int) int {
	if pl.Topology == Sockets {
		// Socket-local controller or one HT hop away.
		if pl.unitOf(core)%pl.MCCount() == mc%pl.MCCount() {
			return 0
		}
		return 1
	}
	cx, cy := pl.UnitCoord(core)
	mx, my := pl.mcCoord(mc)
	return abs(cx-mx) + abs(cy-my)
}

// MemDelay returns the uncontended latency of one shared-memory access from
// core through controller mc. Controller queueing is layered on top by
// internal/mem.
func (pl *Platform) MemDelay(core, mc int) time.Duration {
	return pl.MemBase + time.Duration(pl.MemHops(core, mc))*pl.MemPerHop
}

// AtomicDelay returns the round-trip latency of a remote atomic operation
// (test-and-set or status CAS) on a register hosted by core dst.
func (pl *Platform) AtomicDelay(src, dst int) time.Duration {
	return pl.AtomicBase + 2*time.Duration(pl.Hops(src, dst))*pl.PerHop
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

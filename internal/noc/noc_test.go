package noc

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSettingsTableMatchesPaper(t *testing.T) {
	// §5.1: five rows, tile/mesh/DRAM in MHz.
	want := [5][3]int{
		{533, 800, 800},
		{800, 1600, 1066},
		{800, 1600, 800},
		{800, 800, 1066},
		{800, 800, 800},
	}
	for i, s := range Settings {
		if s.ID != i {
			t.Errorf("setting %d has ID %d", i, s.ID)
		}
		if s.Tile != want[i][0] || s.Mesh != want[i][1] || s.DRAM != want[i][2] {
			t.Errorf("setting %d = %+v, want %v", i, s, want[i])
		}
	}
}

func TestSCCGeometry(t *testing.T) {
	pl := SCC(0)
	if pl.NumCores() != 48 {
		t.Fatalf("NumCores = %d, want 48", pl.NumCores())
	}
	// Cores 0 and 1 share tile (0,0); cores 46,47 share tile (5,3).
	if h := pl.Hops(0, 1); h != 0 {
		t.Errorf("Hops(0,1) = %d, want 0", h)
	}
	if h := pl.Hops(0, 47); h != 8 {
		t.Errorf("Hops(0,47) = %d, want 8 (5+3)", h)
	}
	x, y := pl.UnitCoord(47)
	if x != 5 || y != 3 {
		t.Errorf("UnitCoord(47) = (%d,%d), want (5,3)", x, y)
	}
}

func TestOpteronGeometry(t *testing.T) {
	pl := Opteron()
	if pl.NumCores() != 48 {
		t.Fatalf("NumCores = %d, want 48", pl.NumCores())
	}
	if h := pl.Hops(0, 11); h != 0 {
		t.Errorf("same-socket hops = %d, want 0", h)
	}
	if h := pl.Hops(0, 12); h != 1 {
		t.Errorf("cross-socket hops = %d, want 1", h)
	}
}

func TestHopsMetricProperties(t *testing.T) {
	pl := SCC(0)
	n := pl.NumCores()
	if err := quick.Check(func(a8, b8, c8 uint8) bool {
		a, b, c := int(a8)%n, int(b8)%n, int(c8)%n
		hab, hba := pl.Hops(a, b), pl.Hops(b, a)
		if hab != hba { // symmetry
			return false
		}
		if a == b && hab != 0 { // identity (same core => same tile)
			return false
		}
		if hab < 0 {
			return false
		}
		// Triangle inequality for Manhattan distance.
		return pl.Hops(a, c) <= hab+pl.Hops(b, c)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// roundTrip mirrors the Fig. 8(a) experiment: an app core sends to a service
// core that replies immediately; both sides poll `peers` flags.
func roundTrip(pl *Platform, a, s, peers int) time.Duration {
	return pl.MsgDelay(a, s, 16, peers) + pl.MsgDelay(s, a, 16, peers)
}

func TestFig8aCalibrationSCC(t *testing.T) {
	pl := SCC(0)
	// 2 cores: app 0, service 1, same tile, one peer each.
	rt2 := roundTrip(&pl, 0, 1, 1)
	if rt2 < 4600*time.Nanosecond || rt2 > 5600*time.Nanosecond {
		t.Errorf("2-core RT = %v, want ~5.1µs", rt2)
	}
	// 48 cores: 24 app + 24 service; average over all pairs.
	var sum time.Duration
	n := 0
	for a := 0; a < 24; a++ {
		for s := 24; s < 48; s++ {
			sum += roundTrip(&pl, a, s, 24)
			n++
		}
	}
	rt48 := sum / time.Duration(n)
	if rt48 < 11*time.Microsecond || rt48 > 14*time.Microsecond {
		t.Errorf("48-core RT = %v, want ~12.4µs", rt48)
	}
}

func TestFig8aOrderingAcrossPlatforms(t *testing.T) {
	scc, scc800, opt := SCC(0), SCC(1), Opteron()
	avg := func(pl *Platform) time.Duration {
		var sum time.Duration
		n := 0
		for a := 0; a < 24; a++ {
			for s := 24; s < 48; s++ {
				sum += roundTrip(pl, a, s, 24)
				n++
			}
		}
		return sum / time.Duration(n)
	}
	l0, l1, lo := avg(&scc), avg(&scc800), avg(&opt)
	// §7: SCC800 messaging is fastest; the Opteron library is slower than
	// SCC800 but faster than the default-setting SCC.
	if !(l1 < lo && lo < l0) {
		t.Errorf("latency ordering violated: SCC=%v SCC800=%v Opteron=%v", l0, l1, lo)
	}
}

func TestMsgDelayMonotonicInPeersAndHops(t *testing.T) {
	pl := SCC(0)
	if pl.MsgDelay(0, 2, 16, 2) <= pl.MsgDelay(0, 2, 16, 1) {
		t.Error("delay not increasing in peers")
	}
	if pl.MsgDelay(0, 46, 16, 1) <= pl.MsgDelay(0, 2, 16, 1) {
		t.Error("delay not increasing in hops")
	}
	if pl.MsgDelay(0, 2, 256, 1) <= pl.MsgDelay(0, 2, 16, 1) {
		t.Error("delay not increasing in payload size")
	}
	if pl.MsgDelay(0, 2, 16, 0) != pl.MsgDelay(0, 2, 16, 1) {
		t.Error("peers < 1 should clamp to 1")
	}
}

func TestComputeScaling(t *testing.T) {
	scc, scc800, opt := SCC(0), SCC(1), Opteron()
	d := time.Microsecond
	if scc.Compute(d) != d {
		t.Errorf("SCC setting 0 should be the nominal baseline, got %v", scc.Compute(d))
	}
	if !(scc800.Compute(d) < scc.Compute(d)) {
		t.Error("SCC800 compute should be faster than SCC")
	}
	if !(opt.Compute(d) < scc800.Compute(d)) {
		t.Error("Opteron compute should be fastest")
	}
}

func TestSCCSettingScalesComponents(t *testing.T) {
	s0, s1, s4 := SCC(0), SCC(1), SCC(4)
	if !(s1.PerHop < s0.PerHop) {
		t.Error("faster mesh should reduce per-hop latency")
	}
	if !(s1.MemBase < s0.MemBase) {
		t.Error("faster DRAM should reduce memory latency")
	}
	// Setting 4 has the same mesh/DRAM as setting 0 but faster tiles.
	if s4.PerHop != s0.PerHop {
		t.Error("setting 4 mesh latency should equal setting 0")
	}
	if !(s4.SendOverhead < s0.SendOverhead) {
		t.Error("setting 4 software overhead should be lower than setting 0")
	}
}

func TestInvalidSettingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SCC(9) did not panic")
		}
	}()
	SCC(9)
}

func TestMemDelayAndHops(t *testing.T) {
	pl := SCC(0)
	if pl.MCCount() != 4 {
		t.Fatalf("MCCount = %d", pl.MCCount())
	}
	// Core 0 sits on tile (0,0) = MC 0's corner.
	if h := pl.MemHops(0, 0); h != 0 {
		t.Errorf("MemHops(0,0) = %d, want 0", h)
	}
	// MC 3 is the far corner.
	if h := pl.MemHops(0, 3); h != 8 {
		t.Errorf("MemHops(0,3) = %d, want 8", h)
	}
	if pl.MemDelay(0, 3) <= pl.MemDelay(0, 0) {
		t.Error("farther MC should cost more")
	}
}

func TestAtomicDelayGrowsWithDistance(t *testing.T) {
	pl := SCC(0)
	if pl.AtomicDelay(0, 47) <= pl.AtomicDelay(0, 1) {
		t.Error("remote atomic should cost more across the mesh")
	}
	opt := Opteron()
	if opt.AtomicDelay(0, 1) <= 0 {
		t.Error("atomic delay must be positive")
	}
}

func TestElasticReadEconomics(t *testing.T) {
	// §6.1/Fig 7b rationale: on the SCC a shared-memory access must be
	// cheaper than a message round trip, otherwise elastic-read could not
	// outperform read-locking.
	pl := SCC(0)
	rt := roundTrip(&pl, 0, 24, 24)
	maxMem := pl.MemDelay(0, 3) + pl.MemService
	if maxMem >= rt {
		t.Errorf("memory access (%v) should be cheaper than message RT (%v)", maxMem, rt)
	}
}

func TestMCCountFloor(t *testing.T) {
	pl := Platform{NumMCs: 0}
	if pl.MCCount() != 1 {
		t.Fatalf("MCCount floor = %d, want 1", pl.MCCount())
	}
}

// TestBatchDelayAmortizesFixedCosts pins the batched cost model: a
// coalesced envelope pays the fixed software costs (send/receive overhead,
// hops, polling) once, so k payloads in one wire message must be strictly
// cheaper than k separate messages of the same total bytes — and a
// single-payload batch must cost exactly MsgDelay.
func TestBatchDelayAmortizesFixedCosts(t *testing.T) {
	for _, pl := range []Platform{SCC(0), SCC(1), Opteron()} {
		const perPayload, k, peers = 48, 8, 24
		single := pl.MsgDelay(0, 47, perPayload, peers)
		if got := pl.BatchDelay(0, 47, perPayload, 1, peers); got != single {
			t.Errorf("%s: BatchDelay(1 payload) = %v, want MsgDelay %v", pl.Name, got, single)
		}
		batched := pl.BatchDelay(0, 47, k*perPayload, k, peers)
		if batched >= time.Duration(k)*single {
			t.Errorf("%s: batched %v not cheaper than %d singles %v", pl.Name, batched, k, time.Duration(k)*single)
		}
		// The whole fixed cost is amortized: the batch costs one fixed part
		// plus k payloads' bytes.
		want := single + time.Duration((k-1)*perPayload)*pl.PerByte
		if batched != want {
			t.Errorf("%s: BatchDelay = %v, want fixed-once model %v", pl.Name, batched, want)
		}
	}
}

func TestBatchDelayRejectsEmptyBatch(t *testing.T) {
	pl := SCC(0)
	defer func() {
		if recover() == nil {
			t.Fatal("BatchDelay(0 payloads) did not panic")
		}
	}()
	pl.BatchDelay(0, 1, 0, 0, 1)
}

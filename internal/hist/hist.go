// Package hist provides a small log-bucketed latency histogram for virtual
// durations. The runtime records every transaction's lifespan (start to
// commit, across aborts) and the harness reports percentiles — the metric
// behind the paper's starvation-freedom story: under a fair CM the p99
// lifespan stays bounded even on conflict-heavy workloads.
package hist

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// branching factor: each bucket spans a x2 range starting at 1ns, with 4
// sub-buckets per octave for ~19% resolution.
const (
	subBits    = 2
	subBuckets = 1 << subBits
	maxBuckets = 64 * subBuckets
)

// Histogram accumulates virtual durations. The zero value is ready to use.
type Histogram struct {
	counts [maxBuckets]uint64
	n      uint64
	sum    sim.Time
	max    sim.Time
	min    sim.Time
}

func bucketOf(d sim.Time) int {
	if d < 1 {
		d = 1
	}
	exp := 63 - leadingZeros(uint64(d))
	var sub int
	if exp >= subBits {
		sub = int(uint64(d)>>(uint(exp)-subBits)) & (subBuckets - 1)
	}
	b := exp*subBuckets + sub
	if b >= maxBuckets {
		b = maxBuckets - 1
	}
	return b
}

func leadingZeros(x uint64) int {
	n := 0
	for x&(1<<63) == 0 && n < 64 {
		x <<= 1
		n++
	}
	return n
}

// bucketLow returns the lower bound of bucket b.
func bucketLow(b int) sim.Time {
	exp := b / subBuckets
	sub := b % subBuckets
	if exp < subBits {
		return sim.Time(uint64(1) << uint(exp))
	}
	base := uint64(1) << uint(exp)
	return sim.Time(base | uint64(sub)<<(uint(exp)-subBits))
}

// Observe records one duration.
func (h *Histogram) Observe(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if h.n == 1 || d < h.min {
		h.min = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the mean observation.
func (h *Histogram) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Time(h.n)
}

// Max returns the largest observation.
func (h *Histogram) Max() sim.Time { return h.max }

// Min returns the smallest observation.
func (h *Histogram) Min() sim.Time { return h.min }

// Quantile returns an approximation (bucket lower bound) of quantile q in
// [0, 1].
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b := 0; b < maxBuckets; b++ {
		cum += h.counts[b]
		if cum >= target {
			return bucketLow(b)
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	for b, c := range other.counts {
		h.counts[b] += c
	}
	if h.n == 0 || (other.min < h.min && other.n > 0) {
		h.min = other.min
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.n == 0 {
		return "hist(empty)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.n, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
	return sb.String()
}

package hist

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("zero value not empty")
	}
	if h.String() != "hist(empty)" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []sim.Time{100, 200, 300, 400} {
		h.Observe(d)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 250 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Max() != 400 || h.Min() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestNegativeClampedToZeroBucket(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 {
		t.Fatal("negative observation mishandled")
	}
}

func TestQuantileApproximation(t *testing.T) {
	// Quantiles are bucket lower bounds: within ~19% below the true value.
	var h Histogram
	var vals []sim.Time
	r := sim.NewRand(1)
	for i := 0; i < 10000; i++ {
		v := sim.Time(r.Intn(1_000_000) + 1)
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := vals[int(q*float64(len(vals)))-1]
		got := h.Quantile(q)
		lo := sim.Time(float64(want) * 0.75)
		hi := sim.Time(float64(want) * 1.05)
		if got < lo || got > hi {
			t.Errorf("q%.2f = %v, want within [%v, %v] of %v", q, got, lo, hi, want)
		}
	}
}

func TestQuantileBoundsClamped(t *testing.T) {
	var h Histogram
	h.Observe(100)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("q<0 not clamped")
	}
	if h.Quantile(2) < h.Quantile(1) {
		t.Error("q>1 not clamped")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Observe(20)
	b.Observe(5)
	b.Observe(1000)
	a.Merge(&b)
	if a.Count() != 4 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 5 || a.Max() != 1000 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	a.Merge(nil) // must not panic
	var empty Histogram
	a.Merge(&empty)
	if a.Count() != 4 {
		t.Fatal("merging empty changed count")
	}
}

func TestBucketMonotonicProperty(t *testing.T) {
	if err := quick.Check(func(a, b uint32) bool {
		x, y := sim.Time(a), sim.Time(b)
		if x > y {
			x, y = y, x
		}
		return bucketOf(x) <= bucketOf(y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBucketLowIsLowerBoundProperty(t *testing.T) {
	if err := quick.Check(func(v uint32) bool {
		d := sim.Time(v) + 1
		b := bucketOf(d)
		return bucketLow(b) <= d
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormat(t *testing.T) {
	var h Histogram
	h.Observe(1000)
	s := h.String()
	for _, want := range []string{"n=1", "mean=1µs", "max=1µs"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

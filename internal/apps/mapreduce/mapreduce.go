// Package mapreduce implements the MapReduce-like letter-counting
// application of §5.4: workers atomically grab chunks of a text input,
// count letter occurrences locally, and transactionally merge their counts
// into a global histogram. TM2C replaces the master node of a classical
// MapReduce: chunk allocation and statistics updates are transactions over
// two shared objects (a cursor and the histogram).
//
// The paper uses 256 MB-1 GB text files; we do not have them, so the input
// is synthetic: each chunk's letters are generated from a PRNG seeded by
// (seed, chunk offset), which makes the counting work real and the expected
// totals verifiable, at any size. Sizes are scaled down by the harness (see
// EXPERIMENTS.md).
package mapreduce

import (
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Letters is the alphabet size of the histogram.
const Letters = 26

// PerByteCompute is the nominal per-byte counting cost on the 533 MHz P54C.
// Calibrated from Figure 6(a): 256 MB sequential takes ~180 s on one core,
// i.e. ~0.7 µs/byte (~370 cycles) — plausible for byte-indexed histogram
// code with uncached memory on an in-order Pentium. This constant sets the
// compute/merge balance that gives MapReduce its near-linear scaling (the
// transactional load is low relative to counting, §5.4).
const PerByteCompute = 700 * time.Nanosecond

// CachePenalty multiplies the per-byte cost when the chunk exceeds the
// usable L1 data cache. Each SCC core has 16 KB of L1D shared with the OS,
// so "it is not fully available" to the application (§5.4) — chunks above
// 8 KB thrash.
const (
	UsableL1      = 8 << 10
	CachePenalty  = 1.6
	smallOverhead = 2 * time.Microsecond // per-chunk dispatch bookkeeping
)

// Histogram is the per-letter count vector, stored in shared memory as one
// Letters-word object under a single lock.
type Histogram [Letters]uint64

// histCodec translates a Histogram to and from its Letters-word layout.
var histCodec = core.FuncCodec(Letters,
	func(h Histogram, dst []uint64) { copy(dst, h[:]) },
	func(src []uint64) (h Histogram) { copy(h[:], src); return h },
)

// Job is one letter-count run over a synthetic input.
type Job struct {
	sys   *core.System
	seed  uint64
	size  int // input bytes
	chunk int // chunk bytes

	cursor core.TVar[uint64]    // next unprocessed offset
	hist   core.TVar[Histogram] // global letter counts
}

// NewJob allocates the shared cursor and histogram for an input of size
// bytes processed in chunk-byte units.
func NewJob(sys *core.System, seed uint64, size, chunk int) *Job {
	if chunk <= 0 || size < 0 {
		panic("mapreduce: invalid size/chunk")
	}
	return &Job{
		sys:    sys,
		seed:   seed,
		size:   size,
		chunk:  chunk,
		cursor: core.NewTVar(sys, core.Uint64Codec(), 0),
		hist:   core.NewTVar(sys, histCodec, Histogram{}),
	}
}

// countChunk deterministically generates the chunk at offset and counts its
// letters. The same bytes are produced no matter which core processes the
// chunk, so the final histogram is verifiable.
func (j *Job) countChunk(offset, n int) Histogram {
	var counts Histogram
	r := sim.NewRand(j.seed ^ uint64(offset)*0x9e3779b97f4a7c15)
	// Generate 8 letters per PRNG draw.
	for i := 0; i < n; i += 8 {
		x := r.Uint64()
		for b := 0; b < 8 && i+b < n; b++ {
			counts[byte(x)%Letters]++
			x >>= 8
		}
	}
	return counts
}

// chunkCompute is the virtual time charged for counting n bytes.
func (j *Job) chunkCompute(n int) time.Duration {
	d := time.Duration(n) * PerByteCompute
	if j.chunk > UsableL1 {
		d = time.Duration(float64(d) * CachePenalty)
	}
	return d + smallOverhead
}

// Worker processes chunks until the input is exhausted (or the system
// deadline passes). It returns the number of bytes this worker processed.
func (j *Job) Worker(rt *core.Runtime) int {
	processed := 0
	for !rt.Stopped() {
		// Grab the next chunk: a tiny transaction on the shared cursor
		// (this is what removes the master node, §5.4).
		var off int
		rt.Run(func(tx *core.Tx) {
			off = int(j.cursor.Get(tx))
			if off >= j.size {
				return
			}
			j.cursor.Set(tx, uint64(off+j.chunk))
		})
		if off >= j.size {
			return processed
		}
		n := j.chunk
		if off+n > j.size {
			n = j.size - off
		}
		// Map phase: local counting, charged as compute time.
		counts := j.countChunk(off, n)
		rt.Compute(j.chunkCompute(n))
		// Reduce phase: transactional merge into the global histogram.
		// The statistics are one 26-word object — a single lock grant and
		// a single persisted write, so merges expose their locks only
		// briefly and the transactional load stays low (§5.4).
		rt.Run(func(tx *core.Tx) {
			upd := j.hist.Get(tx)
			for l := 0; l < Letters; l++ {
				upd[l] += counts[l]
			}
			j.hist.Set(tx, upd)
		})
		rt.AddOps(1) // one chunk processed
		processed += n
	}
	return processed
}

// Sequential counts the whole input on one core with no transactions: a
// single streaming pass (the "bare sequential code" of the paper's speedup
// baselines). Streaming pays neither per-chunk dispatch overhead nor the
// L1 chunk penalty — those are artifacts of the parallel version's
// chunk-at-a-time processing — so the chunk-size trade-off of Figure 6(b)
// shows up in the speedups, as in the paper.
func (j *Job) Sequential(p core.Port, coreID int) sim.Time {
	start := p.Now()
	var total Histogram
	for off := 0; off < j.size; off += j.chunk {
		n := j.chunk
		if off+n > j.size {
			n = j.size - off
		}
		counts := j.countChunk(off, n)
		for l := 0; l < Letters; l++ {
			total[l] += counts[l]
		}
	}
	p.Advance(j.sys.Platform().Compute(time.Duration(j.size) * PerByteCompute))
	// One final histogram store, no locking.
	upd := j.hist.GetRaw()
	for l := 0; l < Letters; l++ {
		upd[l] += total[l]
	}
	j.hist.SetDirect(p, coreID, upd)
	return p.Now() - start
}

// HistogramRaw returns the current histogram (verification).
func (j *Job) HistogramRaw() Histogram {
	return j.hist.GetRaw()
}

// HistogramTotal sums the histogram (must equal the processed bytes).
func (j *Job) HistogramTotal() uint64 {
	var sum uint64
	for _, v := range j.HistogramRaw() {
		sum += v
	}
	return sum
}

// Expected recomputes the ground-truth histogram off-line.
func (j *Job) Expected() Histogram {
	var total Histogram
	for off := 0; off < j.size; off += j.chunk {
		n := j.chunk
		if off+n > j.size {
			n = j.size - off
		}
		c := j.countChunk(off, n)
		for l := 0; l < Letters; l++ {
			total[l] += c[l]
		}
	}
	return total
}

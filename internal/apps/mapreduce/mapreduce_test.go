package mapreduce

import (
	"testing"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
)

func newSys(t *testing.T, cores, svc int) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.Config{
		Platform: noc.SCC(0), Seed: 21, TotalCores: cores, ServiceCores: svc, Policy: cm.FairCM,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParallelCountMatchesExpected(t *testing.T) {
	s := newSys(t, 8, 1) // 1 service core, as in §5.4
	j := NewJob(s, 99, 64<<10, 4<<10)
	s.SpawnWorkers(func(rt *core.Runtime) { j.Worker(rt) })
	st := s.RunToCompletion()
	if got, want := j.HistogramRaw(), j.Expected(); got != want {
		t.Fatalf("histogram mismatch:\n got %v\nwant %v", got, want)
	}
	if j.HistogramTotal() != 64<<10 {
		t.Fatalf("total = %d, want %d", j.HistogramTotal(), 64<<10)
	}
	if st.Commits == 0 {
		t.Fatal("no transactions committed")
	}
	// One chunk-grab tx + one merge tx per chunk.
	if st.Ops != uint64(64/4) {
		t.Fatalf("chunks processed = %d, want 16", st.Ops)
	}
}

func TestUnevenLastChunk(t *testing.T) {
	s := newSys(t, 4, 1)
	size := 10_000 // not a multiple of 4096
	j := NewJob(s, 5, size, 4096)
	s.SpawnWorkers(func(rt *core.Runtime) { j.Worker(rt) })
	s.RunToCompletion()
	if int(j.HistogramTotal()) != size {
		t.Fatalf("total = %d, want %d", j.HistogramTotal(), size)
	}
}

func TestSequentialMatchesExpected(t *testing.T) {
	s := newSys(t, 2, 1)
	j := NewJob(s, 7, 32<<10, 8<<10)
	var dur sim.Time
	s.SpawnRaw(func(p core.Port, coreID int) {
		dur = j.Sequential(p, coreID)
	})
	s.RunToCompletion()
	if got, want := j.HistogramRaw(), j.Expected(); got != want {
		t.Fatal("sequential histogram mismatch")
	}
	if dur <= 0 {
		t.Fatal("sequential duration not positive")
	}
}

func TestCachePenaltyAboveL1(t *testing.T) {
	s := newSys(t, 2, 1)
	small := NewJob(s, 1, 1<<20, 8<<10)
	big := NewJob(s, 1, 1<<20, 16<<10)
	perByteSmall := float64(small.chunkCompute(8<<10)) / float64(8<<10)
	perByteBig := float64(big.chunkCompute(16<<10)) / float64(16<<10)
	if perByteBig <= perByteSmall {
		t.Fatalf("no cache penalty: %.2f vs %.2f ns/B", perByteBig, perByteSmall)
	}
}

func TestDeterministicChunks(t *testing.T) {
	s := newSys(t, 2, 1)
	j := NewJob(s, 42, 1<<20, 4<<10)
	a := j.countChunk(8192, 4096)
	b := j.countChunk(8192, 4096)
	if a != b {
		t.Fatal("countChunk not deterministic")
	}
	c := j.countChunk(12288, 4096)
	if a == c {
		t.Fatal("different offsets produced identical counts (suspicious)")
	}
	var total uint64
	for _, v := range a {
		total += v
	}
	if total != 4096 {
		t.Fatalf("chunk counted %d letters, want 4096", total)
	}
}

func TestNewJobValidation(t *testing.T) {
	s := newSys(t, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on chunk=0")
		}
	}()
	NewJob(s, 1, 100, 0)
}

func TestWorkerStopsAtDeadline(t *testing.T) {
	s := newSys(t, 8, 1)
	j := NewJob(s, 3, 1<<30, 8<<10) // effectively endless input
	s.SpawnWorkers(func(rt *core.Runtime) { j.Worker(rt) })
	st := s.Run(2_000_000)
	if st.Ops == 0 {
		t.Fatal("no chunks processed before deadline")
	}
	// Partial processing must still be internally consistent: the
	// histogram total equals chunk-size times completed merges (all full
	// chunks here).
	if j.HistogramTotal() != uint64(st.Ops)*uint64(8<<10) {
		t.Fatalf("histogram total %d != %d chunks * 8KB", j.HistogramTotal(), st.Ops)
	}
}

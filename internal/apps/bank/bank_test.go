package bank

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
)

func newSys(t *testing.T, mut func(*core.Config)) *core.System {
	t.Helper()
	cfg := core.Config{Platform: noc.SCC(0), Seed: 7, TotalCores: 8, Policy: cm.FairCM}
	if mut != nil {
		mut(&cfg)
	}
	s, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewFundsAccounts(t *testing.T) {
	s := newSys(t, nil)
	b := New(s, 16)
	if b.Accounts() != 16 {
		t.Fatalf("Accounts = %d", b.Accounts())
	}
	if b.TotalRaw() != b.Total() || b.Total() != 16*InitialPerAccount {
		t.Fatalf("TotalRaw = %d, Total = %d", b.TotalRaw(), b.Total())
	}
}

func TestTransactionalConservationAndSnapshots(t *testing.T) {
	s := newSys(t, nil)
	b := New(s, 12)
	s.SpawnWorkers(func(rt *core.Runtime) {
		r := rt.Rand()
		for i := 0; i < 25; i++ {
			if i%5 == 0 {
				if got := b.Balance(rt); got != b.Total() {
					t.Errorf("balance snapshot %d != %d", got, b.Total())
				}
			} else {
				from, to := PickTransfer(r, b.Accounts())
				b.Transfer(rt, from, to, uint64(r.Intn(50)))
			}
		}
	})
	s.RunToCompletion()
	if b.TotalRaw() != b.Total() {
		t.Fatalf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
	}
}

func TestLockBasedConservationAndMutualExclusion(t *testing.T) {
	s := newSys(t, nil)
	b := New(s, 12)
	l := NewGlobalLock(s)
	s.SpawnRaw(func(p core.Port, coreID int) {
		r := p.Rand()
		for i := 0; i < 25; i++ {
			if i%6 == 0 {
				if got := b.LockBalance(l, p, coreID); got != b.Total() {
					t.Errorf("lock balance %d != %d (mutual exclusion broken)", got, b.Total())
				}
			} else {
				from, to := PickTransfer(r, b.Accounts())
				b.LockTransfer(l, p, coreID, from, to, uint64(r.Intn(50)))
			}
			s.AddOps(1)
		}
	})
	st := s.RunToCompletion()
	if b.TotalRaw() != b.Total() {
		t.Fatalf("money not conserved under lock: %d != %d", b.TotalRaw(), b.Total())
	}
	if st.Ops == 0 {
		t.Fatal("no ops recorded")
	}
}

func TestSequentialVariant(t *testing.T) {
	s := newSys(t, func(c *core.Config) { c.TotalCores = 2; c.ServiceCores = 1 })
	b := New(s, 6)
	s.SpawnRaw(func(p core.Port, coreID int) {
		b.SeqTransfer(p, coreID, 0, 1, 100)
		if got := b.SeqBalance(p, coreID); got != b.Total() {
			t.Errorf("seq balance = %d, want %d", got, b.Total())
		}
	})
	s.RunToCompletion()
	if s.Mem.ReadRaw(b.addr(0)) != InitialPerAccount-100 {
		t.Fatal("seq transfer did not apply")
	}
	if b.TotalRaw() != b.Total() {
		t.Fatal("seq conservation broken")
	}
}

func TestPickTransferProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8%100) + 2
		r := sim.NewRand(seed)
		for i := 0; i < 20; i++ {
			from, to := PickTransfer(&r, n)
			if from == to || from < 0 || from >= n || to < 0 || to >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferWorkerRunsUntilDeadline(t *testing.T) {
	s := newSys(t, nil)
	b := New(s, 64)
	s.SpawnWorkers(b.TransferWorker(20))
	st := s.Run(3 * time.Millisecond)
	if st.Ops == 0 {
		t.Fatal("worker made no progress")
	}
	if b.TotalRaw() != b.Total() {
		t.Fatalf("conservation after deadline drain: %d != %d", b.TotalRaw(), b.Total())
	}
}

func TestBalanceOnlyWorker(t *testing.T) {
	s := newSys(t, nil)
	b := New(s, 16)
	s.SpawnWorkers(func(rt *core.Runtime) {
		if rt.AppIndex() == 0 {
			b.BalanceOnlyWorker()(rt)
			return
		}
		b.TransferWorker(0)(rt)
	})
	st := s.Run(3 * time.Millisecond)
	if st.PerCore[0].Ops == 0 {
		t.Fatal("balance core made no progress (starved)")
	}
}

func TestGlobalLockSerializes(t *testing.T) {
	// A counter incremented under the lock must not lose updates.
	s := newSys(t, nil)
	l := NewGlobalLock(s)
	ctr := s.Mem.Alloc(1, 0)
	const perCore = 20
	s.SpawnRaw(func(p core.Port, coreID int) {
		for i := 0; i < perCore; i++ {
			l.Acquire(p, coreID)
			v := s.Mem.Read(p, coreID, ctr)
			s.Mem.Write(p, coreID, ctr, v+1)
			l.Release(p, coreID)
		}
	})
	s.RunToCompletion()
	want := uint64(perCore * s.NumAppCores())
	if got := s.Mem.ReadRaw(ctr); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
}

// bankStats runs one fixed bank workload (deterministic mixed
// transfer/balance mix) with worker logic supplied by op, and returns the
// run's Stats. Both callers below must produce the exact same virtual
// schedule for the exact same seed.
func bankStats(t *testing.T, op func(b *Bank, rt *core.Runtime, r *sim.Rand)) *core.Stats {
	t.Helper()
	s := newSys(t, nil)
	b := New(s, 12)
	s.SpawnWorkers(func(rt *core.Runtime) {
		r := rt.Rand()
		for i := 0; i < 20; i++ {
			op(b, rt, r)
		}
	})
	st := s.RunToCompletion()
	if b.TotalRaw() != b.Total() {
		t.Fatalf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
	}
	return st
}

// TestTypedBankMatchesLegacyWordPath is the typed-API determinism witness:
// the same bank workload expressed through the legacy word-level API
// (tx.Read/tx.Write over raw addresses) and through the typed TArray
// methods produces bit-identical Stats for the same Config.Seed — the
// typed layer is a zero-cost veneer and the word path is unchanged.
func TestTypedBankMatchesLegacyWordPath(t *testing.T) {
	legacy := bankStats(t, func(b *Bank, rt *core.Runtime, r *sim.Rand) {
		if r.Intn(100) < 20 {
			// Word-level balance scan.
			rt.Run(func(tx *core.Tx) {
				var sum uint64
				for i := 0; i < b.Accounts(); i++ {
					sum += tx.Read(b.addr(i))
				}
				if sum != b.Total() {
					t.Errorf("legacy balance %d != %d", sum, b.Total())
				}
			})
		} else {
			from, to := PickTransfer(r, b.Accounts())
			// Word-level transfer.
			rt.Run(func(tx *core.Tx) {
				f := tx.Read(b.addr(from))
				tv := tx.Read(b.addr(to))
				tx.Write(b.addr(from), f-1)
				tx.Write(b.addr(to), tv+1)
			})
		}
		rt.AddOps(1)
	})
	typed := bankStats(t, func(b *Bank, rt *core.Runtime, r *sim.Rand) {
		if r.Intn(100) < 20 {
			if got := b.Balance(rt); got != b.Total() {
				t.Errorf("typed balance %d != %d", got, b.Total())
			}
		} else {
			from, to := PickTransfer(r, b.Accounts())
			b.Transfer(rt, from, to, 1)
		}
		rt.AddOps(1)
	})
	// PerCore and NodeLoad ride along in the struct compare; Stats contains
	// only comparable fields plus slices, so compare the formatted dump.
	if fmt.Sprintf("%+v", legacy) != fmt.Sprintf("%+v", typed) {
		t.Fatalf("typed bank diverged from the legacy word path:\nlegacy: %+v\ntyped:  %+v", legacy, typed)
	}
}

// TestReadOnlyBalanceScan: with UseReadOnlyBalance, balance scans commit as
// declared read-only transactions — zero write-lock requests and zero
// commit round trips from a balance-only workload — and still observe the
// invariant total.
func TestReadOnlyBalanceScan(t *testing.T) {
	s := newSys(t, nil)
	b := New(s, 12)
	b.UseReadOnlyBalance(true)
	s.SpawnWorkers(func(rt *core.Runtime) {
		for i := 0; i < 5; i++ {
			if got := b.Balance(rt); got != b.Total() {
				t.Errorf("balance %d != %d", got, b.Total())
			}
		}
	})
	st := s.RunToCompletion()
	if st.Commits == 0 || st.ReadOnlyCommits != st.Commits {
		t.Fatalf("ReadOnlyCommits = %d of %d commits, want all", st.ReadOnlyCommits, st.Commits)
	}
	if st.WriteLockReqs != 0 || st.CommitRoundTrips != 0 {
		t.Fatalf("read-only balances sent write traffic: %d write-lock reqs, %d commit round trips",
			st.WriteLockReqs, st.CommitRoundTrips)
	}
}

// TestReadOnlyBalanceMixedWithTransfers: read-only scans interleaved with
// transfers keep CommitRoundTrips attributable to the transfers alone —
// the scans add none — and conserve money.
func TestReadOnlyBalanceMixedWithTransfers(t *testing.T) {
	s := newSys(t, nil)
	b := New(s, 12)
	b.UseReadOnlyBalance(true)
	s.SpawnWorkers(func(rt *core.Runtime) {
		r := rt.Rand()
		for i := 0; i < 15; i++ {
			if rt.AppIndex() == 0 {
				if got := b.Balance(rt); got != b.Total() {
					t.Errorf("balance %d != %d", got, b.Total())
				}
			} else {
				from, to := PickTransfer(r, b.Accounts())
				b.Transfer(rt, from, to, 1)
			}
		}
	})
	st := s.RunToCompletion()
	if st.ReadOnlyCommits == 0 {
		t.Fatal("no read-only commits recorded")
	}
	transferCommits := st.Commits - st.ReadOnlyCommits
	if st.CommitRoundTrips == 0 && transferCommits > 0 {
		t.Fatal("transfers must pay commit round trips")
	}
	// Every commit round trip belongs to a transfer attempt: scans add none.
	if st.CommitRoundTrips < transferCommits {
		t.Fatalf("CommitRoundTrips %d < transfer commits %d", st.CommitRoundTrips, transferCommits)
	}
	if b.TotalRaw() != b.Total() {
		t.Fatalf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
	}
}

package bank

import (
	"testing"

	"repro/internal/sim"
)

func TestZipfDistribution(t *testing.T) {
	const n, draws = 256, 200000
	z := NewZipf(n, 1.0)
	if z.Ranks() != n {
		t.Fatalf("Ranks = %d, want %d", z.Ranks(), n)
	}
	r := sim.NewRand(7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		k := z.Pick(&r)
		if k < 0 || k >= n {
			t.Fatalf("Pick returned %d, out of [0,%d)", k, n)
		}
		counts[k]++
	}
	// Rank 0 carries ~1/H_n(1) ≈ 16% of the mass; rank 1 about half that.
	if counts[0] <= counts[1] || counts[1] <= counts[3] {
		t.Errorf("skew not monotone over top ranks: c0=%d c1=%d c3=%d",
			counts[0], counts[1], counts[3])
	}
	if frac := float64(counts[0]) / draws; frac < 0.10 || frac > 0.25 {
		t.Errorf("rank-0 frequency %.3f outside [0.10, 0.25]", frac)
	}
	tail := 0
	for _, c := range counts[n/2:] {
		tail += c
	}
	if frac := float64(tail) / draws; frac > 0.25 {
		t.Errorf("top-half tail frequency %.3f, want < 0.25 under theta=1", frac)
	}
}

func TestZipfThetaZeroIsUniformWorker(t *testing.T) {
	// theta = 0 must fall back to the plain TransferWorker so the uniform
	// rows of the placement ablation are bit-identical to the historic
	// workload.
	b := &Bank{n: 16}
	w1 := b.ZipfTransferWorker(0, 0)
	if w1 == nil {
		t.Fatal("nil worker")
	}
	// And a degenerate sampler must still cover all ranks roughly evenly.
	z := NewZipf(64, 0)
	r := sim.NewRand(3)
	counts := make([]int, 64)
	for i := 0; i < 64000; i++ {
		counts[z.Pick(&r)]++
	}
	for k, c := range counts {
		if c < 500 || c > 1500 {
			t.Fatalf("uniform-degenerate zipf rank %d drawn %d/64000 times", k, c)
		}
	}
}

package bank

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Zipf draws ranks 0..n-1 with probability proportional to 1/(rank+1)^theta
// — the skewed key chooser of the placement experiments. Construction
// precomputes the CDF once (O(n)); Pick is a binary search. A Zipf is
// read-only after construction and may be shared by every worker.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with skew exponent theta.
// theta = 0 degenerates to uniform; theta around 1 matches classic web/OLTP
// skew ("80/20"); larger values concentrate harder on the low ranks. It
// panics on an empty rank space or a negative exponent — callers with
// user-supplied sizes (flag parsing) must validate first.
func NewZipf(n int, theta float64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("bank: Zipf sampler over %d ranks, need at least 1", n))
	}
	if math.IsNaN(theta) || theta < 0 {
		panic(fmt.Sprintf("bank: invalid Zipf exponent %v", theta))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// Ranks returns the number of ranks.
func (z *Zipf) Ranks() int { return len(z.cdf) }

// Pick draws one rank.
func (z *Zipf) Pick(r *sim.Rand) int {
	return sort.SearchFloat64s(z.cdf, r.Float64())
}

// HotReadWorker returns a worker mixing uniform transfers (writePct
// percent of operations) with read-only audit transactions that read
// readSet accounts chosen Zipf(theta)-skewed. Read locks are shared, so the
// skew creates no data conflicts — only service load concentrated on the
// DTM nodes owning the hot accounts. This is the workload placement
// policies differ on most: throughput is bound by the hottest node's queue,
// not by aborts.
func (b *Bank) HotReadWorker(writePct, readSet int, theta float64) func(rt *core.Runtime) {
	z := NewZipf(b.n, theta)
	return func(rt *core.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			if r.Intn(100) < writePct {
				from, to := PickTransfer(r, b.n)
				b.Transfer(rt, from, to, 1)
			} else {
				rt.RunKind(b.readKind(), func(tx *core.Tx) {
					for i := 0; i < readSet; i++ {
						b.accts.Get(tx, z.Pick(r))
					}
				})
			}
			rt.AddOps(1)
		}
	}
}

// LocalZipfWorker partitions the account array into parts contiguous
// slices and returns a worker that transfers between Zipf(theta)-skewed
// accounts of the partition partOf assigns to its core. With partOf =
// Platform.ClusterOf and parts = Platform.NumClusters this is the
// locality-structured workload of the scaleplace experiment: every
// cluster's heat lands on a disjoint contiguous account range, so an
// affinity-aware placement policy can co-locate each range with its
// accessors while a flat policy only balances totals. The last partition
// absorbs the remainder when parts does not divide the account count.
func (b *Bank) LocalZipfWorker(parts int, partOf func(core int) int, theta float64) func(rt *core.Runtime) {
	if parts < 1 || b.n < 2*parts {
		panic(fmt.Sprintf("bank: %d accounts cannot be split into %d partitions of at least 2", b.n, parts))
	}
	size := b.n / parts
	samplers := make([]*Zipf, parts)
	for p := range samplers {
		n := size
		if p == parts-1 {
			n = b.n - p*size
		}
		samplers[p] = NewZipf(n, theta)
	}
	return func(rt *core.Runtime) {
		part := partOf(rt.Core()) % parts
		base := part * size
		z := samplers[part]
		r := rt.Rand()
		for !rt.Stopped() {
			from := z.Pick(r)
			to := z.Pick(r)
			if to == from {
				to = (from + 1 + r.Intn(z.Ranks()-1)) % z.Ranks()
			}
			b.Transfer(rt, base+from, base+to, 1)
			rt.AddOps(1)
		}
	}
}

// ZipfTransferWorker is TransferWorker with Zipf(theta)-skewed account
// choice: rank r is account r, so the hot accounts cluster at the low end
// of the array (contiguous heat — the case range placement concentrates on
// one node and adaptive placement spreads back out). theta = 0 falls back
// to the uniform TransferWorker.
func (b *Bank) ZipfTransferWorker(balancePct int, theta float64) func(rt *core.Runtime) {
	if theta == 0 {
		return b.TransferWorker(balancePct)
	}
	z := NewZipf(b.n, theta)
	return func(rt *core.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			if balancePct > 0 && r.Intn(100) < balancePct {
				b.Balance(rt)
			} else {
				from := z.Pick(r)
				to := z.Pick(r)
				if to == from {
					to = (from + 1 + r.Intn(b.n-1)) % b.n
				}
				b.Transfer(rt, from, to, 1)
			}
			rt.AddOps(1)
		}
	}
}

// Package bank implements the bank application of §5.3: accounts in shared
// memory with transfer and balance operations. Three variants exist, exactly
// as in the paper's evaluation:
//
//   - transactional, through the TM2C runtime;
//   - lock-based, serializing every operation behind a single global
//     test-and-set register (the SCC offers one register per core, too few
//     for fine-grained locking, §5.3);
//   - bare sequential, for speedup baselines.
//
// The invariant used throughout the tests is money conservation: the sum of
// all accounts never changes, and every transactional balance snapshot must
// observe the exact initial total (an opacity witness).
package bank

import (
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// InitialPerAccount is the starting balance of every account.
const InitialPerAccount = 1000

// Bank is a shared-memory account array, held as a typed transactional
// array of uint64 balances.
type Bank struct {
	sys   *core.System
	accts core.TArray[uint64]
	n     int

	// roBalance runs balance scans (and the zipf hot-read audits) as
	// declared ReadOnly transactions instead of Normal ones.
	roBalance bool
}

// New allocates n accounts, funded with InitialPerAccount each. Like the
// paper's benchmark state, the initial array lives behind one memory
// controller.
func New(sys *core.System, n int) *Bank {
	return &Bank{
		sys:   sys,
		accts: core.NewTArray(sys, core.Uint64Codec(), n, uint64(InitialPerAccount)),
		n:     n,
	}
}

// Accounts returns the number of accounts.
func (b *Bank) Accounts() int { return b.n }

func (b *Bank) addr(i int) mem.Addr { return b.accts.Addr(i) }

// UseReadOnlyBalance switches balance scans (and the hot-read audits of
// HotReadWorker) onto the declared read-only transaction kind, which skips
// the commit-time write machinery entirely. Call before spawning workers.
func (b *Bank) UseReadOnlyBalance(on bool) { b.roBalance = on }

// readKind is the transaction kind of the bank's read-only operations.
func (b *Bank) readKind() core.TxKind {
	if b.roBalance {
		return core.ReadOnly
	}
	return core.Normal
}

// Total is the invariant sum of the bank.
func (b *Bank) Total() uint64 { return uint64(b.n) * InitialPerAccount }

// TotalRaw sums all accounts without latency (verification only).
func (b *Bank) TotalRaw() uint64 {
	var sum uint64
	for i := 0; i < b.n; i++ {
		sum += b.accts.GetRaw(i)
	}
	return sum
}

// Transfer atomically moves amount from one account to another ("the
// sequential implementation of a transfer performs only four accesses to the
// shared memory", §5.3).
func (b *Bank) Transfer(rt *core.Runtime, from, to int, amount uint64) {
	rt.Run(func(tx *core.Tx) {
		f := b.accts.Get(tx, from)
		t := b.accts.Get(tx, to)
		b.accts.Set(tx, from, f-amount)
		b.accts.Set(tx, to, t+amount)
	})
}

// Balance atomically sums every account (a declared read-only transaction
// when UseReadOnlyBalance is set).
func (b *Bank) Balance(rt *core.Runtime) uint64 {
	var sum uint64
	rt.RunKind(b.readKind(), func(tx *core.Tx) {
		sum = 0
		for i := 0; i < b.n; i++ {
			sum += b.accts.Get(tx, i)
		}
	})
	return sum
}

// GlobalLock is the single test-and-set lock of the lock-based variant; it
// lives on the register of core 0.
type GlobalLock struct {
	sys *core.System
	reg int
}

// NewGlobalLock returns the bank's global lock.
func NewGlobalLock(sys *core.System) *GlobalLock {
	return &GlobalLock{sys: sys, reg: 0}
}

// Acquire spins on the remote register with randomized exponential backoff.
func (l *GlobalLock) Acquire(p core.Port, coreID int) {
	backoff := 2 * time.Microsecond
	for l.sys.Regs.TAS(p, coreID, l.reg) {
		p.Advance(time.Duration(p.Rand().Int63() % int64(backoff)))
		if backoff < 128*time.Microsecond {
			backoff *= 2
		}
	}
}

// Release clears the lock.
func (l *GlobalLock) Release(p core.Port, coreID int) {
	l.sys.Regs.TASRelease(p, coreID, l.reg)
}

// LockTransfer is the lock-based transfer: four shared-memory accesses under
// the global lock.
func (b *Bank) LockTransfer(l *GlobalLock, p core.Port, coreID, from, to int, amount uint64) {
	l.Acquire(p, coreID)
	f := b.accts.At(from).GetDirect(p, coreID)
	t := b.accts.At(to).GetDirect(p, coreID)
	b.accts.At(from).SetDirect(p, coreID, f-amount)
	b.accts.At(to).SetDirect(p, coreID, t+amount)
	l.Release(p, coreID)
}

// LockBalance is the lock-based balance scan.
func (b *Bank) LockBalance(l *GlobalLock, p core.Port, coreID int) uint64 {
	l.Acquire(p, coreID)
	var sum uint64
	for i := 0; i < b.n; i++ {
		sum += b.accts.At(i).GetDirect(p, coreID)
	}
	l.Release(p, coreID)
	return sum
}

// SeqTransfer is the bare sequential transfer (no synchronization; valid
// only single-core).
func (b *Bank) SeqTransfer(p core.Port, coreID, from, to int, amount uint64) {
	f := b.accts.At(from).GetDirect(p, coreID)
	t := b.accts.At(to).GetDirect(p, coreID)
	b.accts.At(from).SetDirect(p, coreID, f-amount)
	b.accts.At(to).SetDirect(p, coreID, t+amount)
}

// SeqBalance is the bare sequential balance scan.
func (b *Bank) SeqBalance(p core.Port, coreID int) uint64 {
	var sum uint64
	for i := 0; i < b.n; i++ {
		sum += b.accts.At(i).GetDirect(p, coreID)
	}
	return sum
}

// PickTransfer draws a random (from, to) pair with from != to.
func PickTransfer(r *sim.Rand, n int) (from, to int) {
	from = r.Intn(n)
	to = (from + 1 + r.Intn(n-1)) % n
	return from, to
}

// TransferWorker returns a worker loop executing transfers with the given
// percentage of balance operations, until the system deadline.
func (b *Bank) TransferWorker(balancePct int) func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			if balancePct > 0 && r.Intn(100) < balancePct {
				b.Balance(rt)
			} else {
				from, to := PickTransfer(r, b.n)
				b.Transfer(rt, from, to, 1)
			}
			rt.AddOps(1)
		}
	}
}

// BalanceOnlyWorker returns a worker that repeatedly runs balance
// operations (the "1 reader" core of Figures 5(c)/5(d)).
func (b *Bank) BalanceOnlyWorker() func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		for !rt.Stopped() {
			b.Balance(rt)
			rt.AddOps(1)
		}
	}
}

package hashset

import (
	"sort"
	"testing"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
)

func newSys(t *testing.T, cores int) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.Config{
		Platform: noc.SCC(0), Seed: 11, TotalCores: cores, Policy: cm.FairCM,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func checkIntegrity(t *testing.T, s *Set) []uint64 {
	t.Helper()
	for i := 0; i < s.nbuckets; i++ {
		var prev uint64
		cur := s.buckets.GetRaw(i)
		for cur != 0 {
			n := s.nodeAt(cur).GetRaw()
			if n.Key <= prev {
				t.Fatalf("bucket %d not strictly sorted: %d after %d", i, n.Key, prev)
			}
			if int(hashKey(n.Key)%uint64(s.nbuckets)) != i {
				t.Fatalf("key %d in wrong bucket %d", n.Key, i)
			}
			prev = n.Key
			cur = n.Next
		}
	}
	all := s.RawKeys()
	seen := make(map[uint64]bool)
	for _, k := range all {
		if seen[k] {
			t.Fatalf("duplicate key %d", k)
		}
		seen[k] = true
	}
	return all
}

func TestInitFillCountAndIntegrity(t *testing.T) {
	s := newSys(t, 4)
	set := New(s, 16)
	r := sim.NewRand(3)
	keys := set.InitFill(100, 1000, &r)
	if len(keys) != 100 {
		t.Fatalf("InitFill returned %d keys", len(keys))
	}
	all := checkIntegrity(t, set)
	if len(all) != 100 {
		t.Fatalf("table holds %d keys, want 100", len(all))
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := range keys {
		if keys[i] != all[i] {
			t.Fatalf("key mismatch at %d", i)
		}
	}
}

func TestTransactionalOpsMatchModel(t *testing.T) {
	s := newSys(t, 2) // 1 app core: sequential consistency vs model
	set := New(s, 8)
	model := make(map[uint64]bool)
	s.SpawnWorkers(func(rt *core.Runtime) {
		r := rt.Rand()
		for i := 0; i < 150; i++ {
			key := r.Uint64()%64 + 1
			switch r.Intn(3) {
			case 0:
				if got, want := set.Add(rt, key), !model[key]; got != want {
					t.Errorf("Add(%d) = %v, want %v", key, got, want)
				}
				model[key] = true
			case 1:
				if got, want := set.Remove(rt, key), model[key]; got != want {
					t.Errorf("Remove(%d) = %v, want %v", key, got, want)
				}
				delete(model, key)
			default:
				if got, want := set.Contains(rt, key), model[key]; got != want {
					t.Errorf("Contains(%d) = %v, want %v", key, got, want)
				}
			}
		}
	})
	s.RunToCompletion()
	all := checkIntegrity(t, set)
	if len(all) != len(model) {
		t.Fatalf("final size %d != model %d", len(all), len(model))
	}
	for _, k := range all {
		if !model[k] {
			t.Fatalf("stray key %d", k)
		}
	}
}

func TestSeqOpsMatchModel(t *testing.T) {
	s := newSys(t, 2)
	set := New(s, 8)
	model := make(map[uint64]bool)
	s.SpawnRaw(func(p core.Port, coreID int) {
		r := p.Rand()
		for i := 0; i < 150; i++ {
			key := r.Uint64()%64 + 1
			switch r.Intn(3) {
			case 0:
				if got, want := set.SeqAdd(p, coreID, key), !model[key]; got != want {
					t.Errorf("SeqAdd(%d) = %v, want %v", key, got, want)
				}
				model[key] = true
			case 1:
				if got, want := set.SeqRemove(p, coreID, key), model[key]; got != want {
					t.Errorf("SeqRemove(%d) = %v, want %v", key, got, want)
				}
				delete(model, key)
			default:
				if got, want := set.SeqContains(p, coreID, key), model[key]; got != want {
					t.Errorf("SeqContains(%d) = %v, want %v", key, got, want)
				}
			}
		}
	})
	s.RunToCompletion()
	checkIntegrity(t, set)
}

func TestConcurrentTortureKeepsIntegrity(t *testing.T) {
	s := newSys(t, 8)
	set := New(s, 4) // tiny table: heavy conflicts
	r := sim.NewRand(5)
	set.InitFill(8, 64, &r)
	// Track net successful structural updates to validate against the
	// final size.
	deltas := make([]int, s.NumAppCores())
	s.SpawnWorkers(func(rt *core.Runtime) {
		rr := rt.Rand()
		d := 0
		for i := 0; i < 60; i++ {
			key := rr.Uint64()%64 + 1
			if rr.Intn(2) == 0 {
				if set.Add(rt, key) {
					d++
				}
			} else {
				if set.Remove(rt, key) {
					d--
				}
			}
		}
		deltas[rt.AppIndex()] = d
	})
	s.RunToCompletion()
	all := checkIntegrity(t, set)
	net := 8
	for _, d := range deltas {
		net += d
	}
	if len(all) != net {
		t.Fatalf("final size %d != initial+net %d (lost or phantom updates)", len(all), net)
	}
}

func TestMoveIsAtomic(t *testing.T) {
	s := newSys(t, 2)
	set := New(s, 8)
	r := sim.NewRand(1)
	set.InitFill(10, 100, &r)
	before := len(set.RawKeys())
	s.SpawnWorkers(func(rt *core.Runtime) {
		keys := set.RawKeys()
		from := keys[0]
		// moving to a fresh key preserves cardinality
		if !set.Move(rt, from, 101) {
			t.Errorf("Move(%d, 101) failed", from)
		}
		// moving a missing key fails
		if set.Move(rt, 9999, 102) {
			t.Error("Move of absent key succeeded")
		}
	})
	s.RunToCompletion()
	all := checkIntegrity(t, set)
	if len(all) != before {
		t.Fatalf("move changed cardinality: %d -> %d", before, len(all))
	}
	found := false
	for _, k := range all {
		if k == 101 {
			found = true
		}
	}
	if !found {
		t.Fatal("moved key missing")
	}
}

func TestWorkerAndOpMixSmoke(t *testing.T) {
	s := newSys(t, 8)
	set := New(s, 64)
	r := sim.NewRand(2)
	set.InitFill(128, 256, &r)
	s.SpawnWorkers(set.Worker(Workload{UpdatePct: 20, KeyRange: 256}))
	st := s.Run(2_000_000) // 2ms
	if st.Ops == 0 || st.Commits == 0 {
		t.Fatalf("no progress: %+v", st)
	}
	checkIntegrity(t, set)
}

func TestMoveWorkloadMix(t *testing.T) {
	s := newSys(t, 8)
	set := New(s, 16)
	r := sim.NewRand(2)
	set.InitFill(64, 128, &r)
	s.SpawnWorkers(set.Worker(Workload{UpdatePct: 10, MovePct: 20, KeyRange: 128}))
	st := s.Run(2_000_000)
	if st.Ops == 0 {
		t.Fatal("no ops")
	}
	checkIntegrity(t, set)
}

func TestHashKeySpreads(t *testing.T) {
	counts := make([]int, 16)
	for k := uint64(1); k <= 1600; k++ {
		counts[hashKey(k)%16]++
	}
	for i, c := range counts {
		if c < 50 || c > 150 {
			t.Fatalf("bucket %d holds %d of 1600 (bad spread)", i, c)
		}
	}
}

// Package hashset implements the synchrobench-style hash table benchmark of
// §5.2: a fixed array of buckets, each a sorted singly-linked list of nodes
// living in shared memory. The operations are contains, add, remove and (for
// the eager/lazy comparison of Figure 4(c)) move.
//
// Both a transactional version (through the TM2C runtime) and a bare
// sequential version (direct shared-memory accesses) are provided; they run
// the same traversal logic over the same memory layout.
//
// Layout: the set header holds the bucket array (one head pointer per
// bucket); a node is a two-word object [key, next]. Address 0 is the nil
// pointer (never allocated by internal/mem).
package hashset

import (
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Nominal per-operation compute costs (SCC-533 cycles turned into time);
// they model the hashing and pointer-chasing work of the slow in-order P54C
// cores and are scaled by the platform's compute factor.
const (
	OpBaseCompute  = 4 * time.Microsecond
	PerNodeCompute = 1 * time.Microsecond
)

// Set is the shared-memory hash table.
type Set struct {
	sys      *core.System
	buckets  mem.Addr // bucket head pointers, one word each
	nbuckets int
}

// New allocates a set with nbuckets buckets. Like the paper's initial hash
// table, the bucket array lives entirely behind one memory controller
// (§5.2: "the initial hash table resides only in one of the four memory
// controllers").
func New(sys *core.System, nbuckets int) *Set {
	return &Set{
		sys:      sys,
		buckets:  sys.Mem.Alloc(nbuckets, 0),
		nbuckets: nbuckets,
	}
}

// Buckets returns the bucket count.
func (s *Set) Buckets() int { return s.nbuckets }

func hashKey(key uint64) uint64 {
	key ^= key >> 33
	key *= 0x9e3779b97f4a7c15
	key ^= key >> 29
	return key
}

func (s *Set) bucketAddr(key uint64) mem.Addr {
	return s.buckets + mem.Addr(hashKey(key)%uint64(s.nbuckets))
}

// node field offsets.
const (
	fKey  = 0
	fNext = 1
	nodeW = 2
)

// InitFill populates the set with n distinct keys drawn from [1, keyRange]
// using raw accesses (setup code outside the simulation). It returns the
// inserted keys.
func (s *Set) InitFill(n int, keyRange uint64, r *sim.Rand) []uint64 {
	inserted := make([]uint64, 0, n)
	for len(inserted) < n {
		key := r.Uint64()%keyRange + 1
		if s.rawInsert(key) {
			inserted = append(inserted, key)
		}
	}
	return inserted
}

// rawInsert inserts without latency accounting; false if present.
func (s *Set) rawInsert(key uint64) bool {
	m := s.sys.Mem
	b := s.bucketAddr(key)
	prev, cur := mem.Addr(0), mem.Addr(m.ReadRaw(b))
	for cur != 0 && m.ReadRaw(cur+fKey) < key {
		prev, cur = cur, mem.Addr(m.ReadRaw(cur+fNext))
	}
	if cur != 0 && m.ReadRaw(cur+fKey) == key {
		return false
	}
	n := m.Alloc(nodeW, 0)
	m.WriteRaw(n+fKey, key)
	m.WriteRaw(n+fNext, uint64(cur))
	if prev == 0 {
		m.WriteRaw(b, uint64(n))
	} else {
		m.WriteRaw(prev+fNext, uint64(n))
	}
	return true
}

// RawKeys walks the whole table without latency and returns every key, for
// invariant checking (sortedness and uniqueness are verified by tests).
func (s *Set) RawKeys() []uint64 {
	m := s.sys.Mem
	var keys []uint64
	for i := 0; i < s.nbuckets; i++ {
		cur := mem.Addr(m.ReadRaw(s.buckets + mem.Addr(i)))
		for cur != 0 {
			keys = append(keys, m.ReadRaw(cur+fKey))
			cur = mem.Addr(m.ReadRaw(cur + fNext))
		}
	}
	return keys
}

// locate walks one bucket inside tx, returning the predecessor node (0 if
// the head pointer) and the current node (0 if past the end), such that
// cur.key >= key.
func (s *Set) locate(tx *core.Tx, rt *core.Runtime, key uint64) (bucket, prev, cur mem.Addr, curKey uint64) {
	bucket = s.bucketAddr(key)
	cur = mem.Addr(tx.Read(bucket))
	for cur != 0 {
		rt.Compute(PerNodeCompute)
		n := tx.ReadN(cur, nodeW)
		curKey = n[fKey]
		if curKey >= key {
			return bucket, prev, cur, curKey
		}
		prev, cur = cur, mem.Addr(n[fNext])
	}
	return bucket, prev, 0, 0
}

// Contains reports whether key is in the set (transactional).
func (s *Set) Contains(rt *core.Runtime, key uint64) bool {
	rt.Compute(OpBaseCompute)
	var found bool
	rt.Run(func(tx *core.Tx) {
		_, _, cur, curKey := s.locate(tx, rt, key)
		found = cur != 0 && curKey == key
	})
	return found
}

// Add inserts key; false if it was already present ("failed updates count as
// read-only transactions", §5.2). New nodes are allocated near the calling
// core's closest memory controller, as in the paper.
func (s *Set) Add(rt *core.Runtime, key uint64) bool {
	rt.Compute(OpBaseCompute)
	var added bool
	rt.Run(func(tx *core.Tx) {
		added = s.addInTx(tx, rt, key)
	})
	return added
}

func (s *Set) addInTx(tx *core.Tx, rt *core.Runtime, key uint64) bool {
	bucket, prev, cur, curKey := s.locate(tx, rt, key)
	if cur != 0 && curKey == key {
		return false
	}
	n := s.sys.Mem.AllocNear(nodeW, rt.Core())
	tx.WriteN(n, []uint64{key, uint64(cur)})
	if prev == 0 {
		tx.Write(bucket, uint64(n))
	} else {
		// Whole-object write: the lock unit is the object, so updating a
		// node rewrites [key, next] under the node's base lock — the same
		// lock its readers hold (txwrite(obj) in the paper).
		pkey := tx.ReadN(prev, nodeW)[fKey] // served from the tx cache
		tx.WriteN(prev, []uint64{pkey, uint64(n)})
	}
	return true
}

// Remove deletes key; false if absent.
func (s *Set) Remove(rt *core.Runtime, key uint64) bool {
	rt.Compute(OpBaseCompute)
	var removed bool
	rt.Run(func(tx *core.Tx) {
		removed = s.removeInTx(tx, rt, key)
	})
	return removed
}

func (s *Set) removeInTx(tx *core.Tx, rt *core.Runtime, key uint64) bool {
	bucket, prev, cur, curKey := s.locate(tx, rt, key)
	if cur == 0 || curKey != key {
		return false
	}
	next := tx.ReadN(cur, nodeW)[fNext]
	if prev == 0 {
		tx.Write(bucket, next)
	} else {
		pkey := tx.ReadN(prev, nodeW)[fKey]
		tx.WriteN(prev, []uint64{pkey, next})
	}
	return true
}

// Move atomically removes from and inserts to (the §5.2 move operation used
// by the eager-vs-lazy experiment: it issues a write in the middle of the
// transaction). It returns false if from was absent or to already present.
func (s *Set) Move(rt *core.Runtime, from, to uint64) bool {
	rt.Compute(2 * OpBaseCompute)
	var ok bool
	rt.Run(func(tx *core.Tx) {
		ok = false
		if !s.removeInTx(tx, rt, from) {
			return
		}
		if !s.addInTx(tx, rt, to) {
			return
		}
		ok = true
	})
	return ok
}

// Sequential variants: identical logic over raw memory with latency charged
// through mem.Read/ReadBatch, without any locking.

func (s *Set) seqLocate(p *sim.Proc, coreID int, key uint64) (bucket, prev, cur mem.Addr, curKey uint64) {
	m := s.sys.Mem
	bucket = s.bucketAddr(key)
	cur = mem.Addr(m.Read(p, coreID, bucket))
	for cur != 0 {
		p.Advance(s.sys.Platform().Compute(PerNodeCompute))
		n := m.ReadBatch(p, coreID, cur, nodeW)
		curKey = n[fKey]
		if curKey >= key {
			return bucket, prev, cur, curKey
		}
		prev, cur = cur, mem.Addr(n[fNext])
	}
	return bucket, prev, 0, 0
}

// SeqContains is the bare sequential contains.
func (s *Set) SeqContains(p *sim.Proc, coreID int, key uint64) bool {
	p.Advance(s.sys.Platform().Compute(OpBaseCompute))
	_, _, cur, curKey := s.seqLocate(p, coreID, key)
	return cur != 0 && curKey == key
}

// SeqAdd is the bare sequential add.
func (s *Set) SeqAdd(p *sim.Proc, coreID int, key uint64) bool {
	p.Advance(s.sys.Platform().Compute(OpBaseCompute))
	m := s.sys.Mem
	bucket, prev, cur, curKey := s.seqLocate(p, coreID, key)
	if cur != 0 && curKey == key {
		return false
	}
	n := m.AllocNear(nodeW, coreID)
	m.WriteBatch(p, coreID, []mem.Addr{n + fKey, n + fNext}, []uint64{key, uint64(cur)})
	if prev == 0 {
		m.Write(p, coreID, bucket, uint64(n))
	} else {
		m.Write(p, coreID, prev+fNext, uint64(n))
	}
	return true
}

// SeqRemove is the bare sequential remove.
func (s *Set) SeqRemove(p *sim.Proc, coreID int, key uint64) bool {
	p.Advance(s.sys.Platform().Compute(OpBaseCompute))
	m := s.sys.Mem
	bucket, prev, cur, curKey := s.seqLocate(p, coreID, key)
	if cur == 0 || curKey != key {
		return false
	}
	next := m.Read(p, coreID, cur+fNext)
	if prev == 0 {
		m.Write(p, coreID, bucket, next)
	} else {
		m.Write(p, coreID, prev+fNext, next)
	}
	return true
}

// Workload is the synchrobench operation mix.
type Workload struct {
	UpdatePct int    // percentage of attempted updates (half add, half remove)
	MovePct   int    // percentage of move operations (Figure 4(c) only)
	KeyRange  uint64 // keys drawn uniformly from [1, KeyRange]
}

// Worker returns a transactional worker loop for the workload.
func (s *Set) Worker(w Workload) func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			s.RunOp(rt, r, w)
			rt.AddOps(1)
		}
	}
}

// RunOp executes one randomly drawn operation of the workload.
func (s *Set) RunOp(rt *core.Runtime, r *sim.Rand, w Workload) {
	key := r.Uint64()%w.KeyRange + 1
	roll := r.Intn(100)
	switch {
	case roll < w.MovePct:
		s.Move(rt, key, r.Uint64()%w.KeyRange+1)
	case roll < w.MovePct+w.UpdatePct:
		if r.Intn(2) == 0 {
			s.Add(rt, key)
		} else {
			s.Remove(rt, key)
		}
	default:
		s.Contains(rt, key)
	}
}

// SeqOp executes one randomly drawn sequential operation.
func (s *Set) SeqOp(p *sim.Proc, coreID int, r *sim.Rand, w Workload) {
	key := r.Uint64()%w.KeyRange + 1
	roll := r.Intn(100)
	switch {
	case roll < w.MovePct:
		if s.SeqRemove(p, coreID, key) {
			s.SeqAdd(p, coreID, r.Uint64()%w.KeyRange+1)
		}
	case roll < w.MovePct+w.UpdatePct:
		if r.Intn(2) == 0 {
			s.SeqAdd(p, coreID, key)
		} else {
			s.SeqRemove(p, coreID, key)
		}
	default:
		s.SeqContains(p, coreID, key)
	}
}

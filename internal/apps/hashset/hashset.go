// Package hashset implements the synchrobench-style hash table benchmark of
// §5.2: a fixed array of buckets, each a sorted singly-linked list of nodes
// living in shared memory. The operations are contains, add, remove and (for
// the eager/lazy comparison of Figure 4(c)) move.
//
// Both a transactional version (through the TM2C runtime) and a bare
// sequential version (direct shared-memory accesses) are provided; they run
// the same traversal logic over the same memory layout.
//
// Layout: the set header holds the bucket array (one head pointer per
// bucket); a node is a two-word object [key, next]. Address 0 is the nil
// pointer (never allocated by internal/mem).
package hashset

import (
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Nominal per-operation compute costs (SCC-533 cycles turned into time);
// they model the hashing and pointer-chasing work of the slow in-order P54C
// cores and are scaled by the platform's compute factor.
const (
	OpBaseCompute  = 4 * time.Microsecond
	PerNodeCompute = 1 * time.Microsecond
)

// node is one list cell: the key and the next pointer, stored as a single
// two-word object under one lock.
type node struct {
	Key  uint64
	Next mem.Addr
}

// nodeW is the node object size in words; nodeNextOff is the word offset
// of the Next field, used by the word-granular sequential baselines.
const (
	nodeW       = 2
	nodeNextOff = 1
)

// nodeCodec translates node structs to and from their two-word layout.
var nodeCodec = core.FuncCodec(nodeW,
	func(n node, dst []uint64) { dst[0], dst[1] = n.Key, uint64(n.Next) },
	func(src []uint64) node { return node{Key: src[0], Next: mem.Addr(src[1])} },
)

// Set is the shared-memory hash table.
type Set struct {
	sys      *core.System
	buckets  core.TArray[mem.Addr] // bucket head pointers, one word each
	nbuckets int
}

// New allocates a set with nbuckets buckets. Like the paper's initial hash
// table, the bucket array lives entirely behind one memory controller
// (§5.2: "the initial hash table resides only in one of the four memory
// controllers").
func New(sys *core.System, nbuckets int) *Set {
	return &Set{
		sys:      sys,
		buckets:  core.NewTArray(sys, core.AddrCodec(), nbuckets, mem.Nil),
		nbuckets: nbuckets,
	}
}

// Buckets returns the bucket count.
func (s *Set) Buckets() int { return s.nbuckets }

func hashKey(key uint64) uint64 {
	key ^= key >> 33
	key *= 0x9e3779b97f4a7c15
	key ^= key >> 29
	return key
}

// bucketVar returns the head-pointer variable of key's bucket.
func (s *Set) bucketVar(key uint64) core.TVar[mem.Addr] {
	return s.buckets.At(int(hashKey(key) % uint64(s.nbuckets)))
}

// nodeAt views the node object at base.
func (s *Set) nodeAt(base mem.Addr) core.TVar[node] {
	return core.TVarAt(s.sys, nodeCodec, base)
}

// InitFill populates the set with n distinct keys drawn from [1, keyRange]
// using raw accesses (setup code outside the simulation). It returns the
// inserted keys.
func (s *Set) InitFill(n int, keyRange uint64, r *sim.Rand) []uint64 {
	inserted := make([]uint64, 0, n)
	for len(inserted) < n {
		key := r.Uint64()%keyRange + 1
		if s.rawInsert(key) {
			inserted = append(inserted, key)
		}
	}
	return inserted
}

// rawInsert inserts without latency accounting; false if present.
func (s *Set) rawInsert(key uint64) bool {
	b := s.bucketVar(key)
	prev, cur := mem.Nil, b.GetRaw()
	for cur != 0 && s.nodeAt(cur).GetRaw().Key < key {
		prev, cur = cur, s.nodeAt(cur).GetRaw().Next
	}
	if cur != 0 && s.nodeAt(cur).GetRaw().Key == key {
		return false
	}
	nv := core.NewTVar(s.sys, nodeCodec, node{Key: key, Next: cur})
	if prev == 0 {
		b.SetRaw(nv.Addr())
	} else {
		pv := s.nodeAt(prev)
		pv.SetRaw(node{Key: pv.GetRaw().Key, Next: nv.Addr()})
	}
	return true
}

// RawKeys walks the whole table without latency and returns every key, for
// invariant checking (sortedness and uniqueness are verified by tests).
func (s *Set) RawKeys() []uint64 {
	var keys []uint64
	for i := 0; i < s.nbuckets; i++ {
		cur := s.buckets.GetRaw(i)
		for cur != 0 {
			n := s.nodeAt(cur).GetRaw()
			keys = append(keys, n.Key)
			cur = n.Next
		}
	}
	return keys
}

// locate walks one bucket inside tx, returning the predecessor node (0 if
// the head pointer) and the current node (0 if past the end), such that
// cur.key >= key.
func (s *Set) locate(tx *core.Tx, rt *core.Runtime, key uint64) (bucket core.TVar[mem.Addr], prev, cur mem.Addr, curKey uint64) {
	bucket = s.bucketVar(key)
	cur = bucket.Get(tx)
	for cur != 0 {
		rt.Compute(PerNodeCompute)
		n := s.nodeAt(cur).Get(tx)
		curKey = n.Key
		if curKey >= key {
			return bucket, prev, cur, curKey
		}
		prev, cur = cur, n.Next
	}
	return bucket, prev, 0, 0
}

// Contains reports whether key is in the set (transactional).
func (s *Set) Contains(rt *core.Runtime, key uint64) bool {
	rt.Compute(OpBaseCompute)
	var found bool
	rt.Run(func(tx *core.Tx) {
		_, _, cur, curKey := s.locate(tx, rt, key)
		found = cur != 0 && curKey == key
	})
	return found
}

// Add inserts key; false if it was already present ("failed updates count as
// read-only transactions", §5.2). New nodes are allocated near the calling
// core's closest memory controller, as in the paper.
func (s *Set) Add(rt *core.Runtime, key uint64) bool {
	rt.Compute(OpBaseCompute)
	var added bool
	rt.Run(func(tx *core.Tx) {
		added = s.addInTx(tx, rt, key)
	})
	return added
}

func (s *Set) addInTx(tx *core.Tx, rt *core.Runtime, key uint64) bool {
	bucket, prev, cur, curKey := s.locate(tx, rt, key)
	if cur != 0 && curKey == key {
		return false
	}
	// Allocate near the inserting core (§5.2); the zero init is free and the
	// object is populated transactionally before the pointer publishes it.
	nv := core.NewTVarNear(s.sys, nodeCodec, rt.Core(), node{})
	nv.Set(tx, node{Key: key, Next: cur})
	if prev == 0 {
		bucket.Set(tx, nv.Addr())
	} else {
		// Whole-object write: the lock unit is the object, so updating a
		// node rewrites [key, next] under the node's base lock — the same
		// lock its readers hold (txwrite(obj) in the paper).
		pv := s.nodeAt(prev)
		pkey := pv.Get(tx).Key // served from the tx cache
		pv.Set(tx, node{Key: pkey, Next: nv.Addr()})
	}
	return true
}

// Remove deletes key; false if absent.
func (s *Set) Remove(rt *core.Runtime, key uint64) bool {
	rt.Compute(OpBaseCompute)
	var removed bool
	rt.Run(func(tx *core.Tx) {
		removed = s.removeInTx(tx, rt, key)
	})
	return removed
}

func (s *Set) removeInTx(tx *core.Tx, rt *core.Runtime, key uint64) bool {
	bucket, prev, cur, curKey := s.locate(tx, rt, key)
	if cur == 0 || curKey != key {
		return false
	}
	next := s.nodeAt(cur).Get(tx).Next
	if prev == 0 {
		bucket.Set(tx, next)
	} else {
		pv := s.nodeAt(prev)
		pkey := pv.Get(tx).Key
		pv.Set(tx, node{Key: pkey, Next: next})
	}
	return true
}

// Move atomically removes from and inserts to (the §5.2 move operation used
// by the eager-vs-lazy experiment: it issues a write in the middle of the
// transaction). It returns false if from was absent or to already present.
func (s *Set) Move(rt *core.Runtime, from, to uint64) bool {
	rt.Compute(2 * OpBaseCompute)
	var ok bool
	rt.Run(func(tx *core.Tx) {
		ok = false
		if !s.removeInTx(tx, rt, from) {
			return
		}
		if !s.addInTx(tx, rt, to) {
			return
		}
		ok = true
	})
	return ok
}

// Sequential variants: identical logic over raw memory with latency charged
// through mem.Read/ReadBatch, without any locking.

func (s *Set) seqLocate(p core.Port, coreID int, key uint64) (bucket core.TVar[mem.Addr], prev, cur mem.Addr, curKey uint64) {
	bucket = s.bucketVar(key)
	cur = bucket.GetDirect(p, coreID)
	for cur != 0 {
		p.Advance(s.sys.Platform().Compute(PerNodeCompute))
		n := s.nodeAt(cur).GetDirect(p, coreID)
		curKey = n.Key
		if curKey >= key {
			return bucket, prev, cur, curKey
		}
		prev, cur = cur, n.Next
	}
	return bucket, prev, 0, 0
}

// SeqContains is the bare sequential contains.
func (s *Set) SeqContains(p core.Port, coreID int, key uint64) bool {
	p.Advance(s.sys.Platform().Compute(OpBaseCompute))
	_, _, cur, curKey := s.seqLocate(p, coreID, key)
	return cur != 0 && curKey == key
}

// SeqAdd is the bare sequential add.
func (s *Set) SeqAdd(p core.Port, coreID int, key uint64) bool {
	p.Advance(s.sys.Platform().Compute(OpBaseCompute))
	bucket, prev, cur, curKey := s.seqLocate(p, coreID, key)
	if cur != 0 && curKey == key {
		return false
	}
	nv := core.NewTVarNear(s.sys, nodeCodec, coreID, node{})
	nv.SetDirect(p, coreID, node{Key: key, Next: cur})
	if prev == 0 {
		bucket.SetDirect(p, coreID, nv.Addr())
	} else {
		// The bare-sequential baseline needs no locking and therefore no
		// whole-object write: splice by storing the single next-pointer
		// word, exactly the charge the fig4 speedup denominators have
		// always paid.
		s.sys.Mem.Write(p, coreID, prev+nodeNextOff, uint64(nv.Addr()))
	}
	return true
}

// SeqRemove is the bare sequential remove.
func (s *Set) SeqRemove(p core.Port, coreID int, key uint64) bool {
	p.Advance(s.sys.Platform().Compute(OpBaseCompute))
	bucket, prev, cur, curKey := s.seqLocate(p, coreID, key)
	if cur == 0 || curKey != key {
		return false
	}
	next := s.sys.Mem.Read(p, coreID, cur+nodeNextOff)
	if prev == 0 {
		bucket.SetDirect(p, coreID, mem.Addr(next))
	} else {
		// Word-granular splice, matching the baseline's historic charge
		// (one 1-word read of cur.next, one 1-word write of prev.next).
		s.sys.Mem.Write(p, coreID, prev+nodeNextOff, next)
	}
	return true
}

// Workload is the synchrobench operation mix.
type Workload struct {
	UpdatePct int    // percentage of attempted updates (half add, half remove)
	MovePct   int    // percentage of move operations (Figure 4(c) only)
	KeyRange  uint64 // keys drawn uniformly from [1, KeyRange]
}

// Worker returns a transactional worker loop for the workload.
func (s *Set) Worker(w Workload) func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			s.RunOp(rt, r, w)
			rt.AddOps(1)
		}
	}
}

// RunOp executes one randomly drawn operation of the workload.
func (s *Set) RunOp(rt *core.Runtime, r *sim.Rand, w Workload) {
	key := r.Uint64()%w.KeyRange + 1
	roll := r.Intn(100)
	switch {
	case roll < w.MovePct:
		s.Move(rt, key, r.Uint64()%w.KeyRange+1)
	case roll < w.MovePct+w.UpdatePct:
		if r.Intn(2) == 0 {
			s.Add(rt, key)
		} else {
			s.Remove(rt, key)
		}
	default:
		s.Contains(rt, key)
	}
}

// SeqOp executes one randomly drawn sequential operation.
func (s *Set) SeqOp(p core.Port, coreID int, r *sim.Rand, w Workload) {
	key := r.Uint64()%w.KeyRange + 1
	roll := r.Intn(100)
	switch {
	case roll < w.MovePct:
		if s.SeqRemove(p, coreID, key) {
			s.SeqAdd(p, coreID, r.Uint64()%w.KeyRange+1)
		}
	case roll < w.MovePct+w.UpdatePct:
		if r.Intn(2) == 0 {
			s.SeqAdd(p, coreID, key)
		} else {
			s.SeqRemove(p, coreID, key)
		}
	default:
		s.SeqContains(p, coreID, key)
	}
}

package intset

import (
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
)

func newSys(t *testing.T, cores int) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.Config{
		Platform: noc.SCC(0), Seed: 13, TotalCores: cores, Policy: cm.FairCM,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func checkSorted(t *testing.T, l *List) []uint64 {
	t.Helper()
	keys := l.RawKeys()
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("list not strictly sorted at %d: %v", i, keys[i-1:i+1])
		}
	}
	return keys
}

func TestInitFillSorted(t *testing.T) {
	s := newSys(t, 4)
	l := New(s)
	r := sim.NewRand(1)
	keys := l.InitFill(50, 500, &r)
	if len(keys) != 50 {
		t.Fatalf("inserted %d", len(keys))
	}
	if got := checkSorted(t, l); len(got) != 50 {
		t.Fatalf("list has %d keys", len(got))
	}
}

func TestModeStringsAndKinds(t *testing.T) {
	if Normal.String() != "normal" || ElasticEarly.String() != "elastic-early" || ElasticRead.String() != "elastic-read" {
		t.Fatal("Mode.String mismatch")
	}
	if Normal.TxKind() != core.Normal || ElasticEarly.TxKind() != core.ElasticEarly || ElasticRead.TxKind() != core.ElasticRead {
		t.Fatal("TxKind mapping mismatch")
	}
}

func TestOpsMatchModelPerMode(t *testing.T) {
	for _, mode := range []Mode{Normal, ElasticEarly, ElasticRead} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s := newSys(t, 2) // single app core vs model
			l := New(s)
			model := make(map[uint64]bool)
			s.SpawnWorkers(func(rt *core.Runtime) {
				r := rt.Rand()
				for i := 0; i < 120; i++ {
					key := r.Uint64()%48 + 1
					switch r.Intn(3) {
					case 0:
						if got, want := l.Add(rt, mode, key), !model[key]; got != want {
							t.Errorf("%v Add(%d) = %v want %v", mode, key, got, want)
						}
						model[key] = true
					case 1:
						if got, want := l.Remove(rt, mode, key), model[key]; got != want {
							t.Errorf("%v Remove(%d) = %v want %v", mode, key, got, want)
						}
						delete(model, key)
					default:
						if got, want := l.Contains(rt, mode, key), model[key]; got != want {
							t.Errorf("%v Contains(%d) = %v want %v", mode, key, got, want)
						}
					}
				}
			})
			s.RunToCompletion()
			keys := checkSorted(t, l)
			if len(keys) != len(model) {
				t.Fatalf("size %d != model %d", len(keys), len(model))
			}
			for _, k := range keys {
				if !model[k] {
					t.Fatalf("stray key %d", k)
				}
			}
		})
	}
}

func TestConcurrentTorturePerMode(t *testing.T) {
	for _, mode := range []Mode{Normal, ElasticEarly, ElasticRead} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			s := newSys(t, 8)
			l := New(s)
			r := sim.NewRand(9)
			init := len(l.InitFill(16, 64, &r))
			deltas := make([]int, s.NumAppCores())
			s.SpawnWorkers(func(rt *core.Runtime) {
				rr := rt.Rand()
				d := 0
				for i := 0; i < 40; i++ {
					key := rr.Uint64()%64 + 1
					if rr.Intn(2) == 0 {
						if l.Add(rt, mode, key) {
							d++
						}
					} else {
						if l.Remove(rt, mode, key) {
							d--
						}
					}
				}
				deltas[rt.AppIndex()] = d
			})
			s.RunToCompletion()
			keys := checkSorted(t, l)
			net := init
			for _, d := range deltas {
				net += d
			}
			if len(keys) != net {
				t.Fatalf("%v: size %d != initial+net %d (lost/phantom update)", mode, len(keys), net)
			}
		})
	}
}

func TestElasticEarlySendsEarlyReleases(t *testing.T) {
	s := newSys(t, 2)
	l := New(s)
	r := sim.NewRand(3)
	l.InitFill(32, 64, &r)
	s.SpawnWorkers(func(rt *core.Runtime) {
		for i := 0; i < 10; i++ {
			l.Contains(rt, ElasticEarly, 60) // deep traversal
		}
	})
	st := s.RunToCompletion()
	if st.EarlyReleases == 0 {
		t.Fatal("elastic-early sent no early releases")
	}
}

func TestElasticReadTakesNoReadLocks(t *testing.T) {
	s := newSys(t, 2)
	l := New(s)
	r := sim.NewRand(3)
	l.InitFill(32, 64, &r)
	s.SpawnWorkers(func(rt *core.Runtime) {
		for i := 0; i < 10; i++ {
			l.Contains(rt, ElasticRead, 60)
		}
	})
	st := s.RunToCompletion()
	if st.ReadLockReqs != 0 {
		t.Fatalf("elastic-read sent %d read-lock requests, want 0", st.ReadLockReqs)
	}
	if st.WriteLockReqs != 0 {
		t.Fatalf("read-only ops sent %d write-lock requests", st.WriteLockReqs)
	}
}

func TestElasticReadDetectsConcurrentChange(t *testing.T) {
	// A writer changes the node under a slow elastic traversal; the
	// traversal must abort and retry rather than return stale structure.
	s := newSys(t, 4)
	l := New(s)
	r := sim.NewRand(3)
	l.InitFill(64, 128, &r)
	s.SpawnWorkers(func(rt *core.Runtime) {
		rr := rt.Rand()
		for i := 0; i < 30; i++ {
			key := rr.Uint64()%128 + 1
			switch rt.AppIndex() {
			case 0:
				l.Contains(rt, ElasticRead, key)
			default:
				if rr.Intn(2) == 0 {
					l.Add(rt, Normal, key)
				} else {
					l.Remove(rt, Normal, key)
				}
			}
		}
	})
	st := s.RunToCompletion()
	checkSorted(t, l)
	_ = st // aborts may or may not occur at this scale; integrity is the invariant
}

func TestWorkerSmokeAllModes(t *testing.T) {
	for _, mode := range []Mode{Normal, ElasticEarly, ElasticRead} {
		s := newSys(t, 8)
		l := New(s)
		r := sim.NewRand(4)
		l.InitFill(64, 128, &r)
		s.SpawnWorkers(l.Worker(Workload{UpdatePct: 20, KeyRange: 128, Mode: mode}))
		st := s.Run(2 * time.Millisecond)
		if st.Ops == 0 {
			t.Fatalf("%v: no ops", mode)
		}
		checkSorted(t, l)
	}
}

// Package intset implements the sorted linked-list benchmark of §6.2: a
// single sorted list of [key, next] nodes in shared memory, exercised with
// the synchrobench contains/add/remove mix.
//
// The list is the elastic-transaction showcase: a search traversal only
// needs consecutive reads to be atomic, so the read-only prefix can either
// release its read locks early (elastic-early) or take no locks at all and
// validate by re-reading (elastic-read). Mode selects between the three
// implementations, which share the same traversal structure.
package intset

import (
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// PerNodeCompute is the nominal per-node traversal cost.
const PerNodeCompute = 600 * time.Nanosecond

// Mode selects the transactional model of the list operations.
type Mode uint8

const (
	// Normal uses plain TM2C transactions (visible read locks on the whole
	// traversal).
	Normal Mode = iota
	// ElasticEarly releases the read locks of nodes that fell out of the
	// two-node traversal window (§6.1 first implementation).
	ElasticEarly
	// ElasticRead takes no read locks and validates consecutive reads from
	// shared memory (§6.1 second implementation).
	ElasticRead
)

func (m Mode) String() string {
	switch m {
	case ElasticEarly:
		return "elastic-early"
	case ElasticRead:
		return "elastic-read"
	default:
		return "normal"
	}
}

// TxKind maps the mode to the runtime's transaction kind.
func (m Mode) TxKind() core.TxKind {
	switch m {
	case ElasticEarly:
		return core.ElasticEarly
	case ElasticRead:
		return core.ElasticRead
	default:
		return core.Normal
	}
}

// node is one list cell: the key and the next pointer, one two-word object
// under a single lock.
type node struct {
	Key  uint64
	Next mem.Addr
}

// nodeW is the node object size in words.
const nodeW = 2

// nodeCodec translates node structs to and from their two-word layout.
var nodeCodec = core.FuncCodec(nodeW,
	func(n node, dst []uint64) { dst[0], dst[1] = n.Key, uint64(n.Next) },
	func(src []uint64) node { return node{Key: src[0], Next: mem.Addr(src[1])} },
)

// List is the shared-memory sorted list.
type List struct {
	sys  *core.System
	head core.TVar[mem.Addr] // head pointer
}

// New allocates an empty list (head pointer behind controller 0).
func New(sys *core.System) *List {
	return &List{sys: sys, head: core.NewTVar(sys, core.AddrCodec(), mem.Nil)}
}

// nodeAt views the node object at base.
func (l *List) nodeAt(base mem.Addr) core.TVar[node] {
	return core.TVarAt(l.sys, nodeCodec, base)
}

// InitFill inserts n distinct keys from [1, keyRange] with raw accesses.
func (l *List) InitFill(n int, keyRange uint64, r *sim.Rand) []uint64 {
	inserted := make([]uint64, 0, n)
	for len(inserted) < n {
		key := r.Uint64()%keyRange + 1
		if l.rawInsert(key) {
			inserted = append(inserted, key)
		}
	}
	return inserted
}

func (l *List) rawInsert(key uint64) bool {
	prev, cur := mem.Nil, l.head.GetRaw()
	for cur != 0 && l.nodeAt(cur).GetRaw().Key < key {
		prev, cur = cur, l.nodeAt(cur).GetRaw().Next
	}
	if cur != 0 && l.nodeAt(cur).GetRaw().Key == key {
		return false
	}
	nv := core.NewTVar(l.sys, nodeCodec, node{Key: key, Next: cur})
	if prev == 0 {
		l.head.SetRaw(nv.Addr())
	} else {
		pv := l.nodeAt(prev)
		pv.SetRaw(node{Key: pv.GetRaw().Key, Next: nv.Addr()})
	}
	return true
}

// RawKeys returns the current keys in list order (verification only).
func (l *List) RawKeys() []uint64 {
	var keys []uint64
	cur := l.head.GetRaw()
	for cur != 0 {
		n := l.nodeAt(cur).GetRaw()
		keys = append(keys, n.Key)
		cur = n.Next
	}
	return keys
}

// locate traverses inside tx until cur.key >= key, applying the mode's
// elastic behaviour: under ElasticEarly, nodes leaving the two-node window
// are released immediately.
func (l *List) locate(tx *core.Tx, rt *core.Runtime, mode Mode, key uint64) (prev, cur mem.Addr, curKey uint64) {
	var prevPrev mem.Addr
	headReleased := false
	cur = l.head.Get(tx)
	for cur != 0 {
		rt.Compute(PerNodeCompute)
		n := l.nodeAt(cur).Get(tx)
		curKey = n.Key
		if mode == ElasticEarly {
			// The traversal window is {prev, cur}; anything older is no
			// longer semantically relevant to the search (§6).
			if prevPrev != 0 {
				l.nodeAt(prevPrev).EarlyRelease(tx)
			} else if prev != 0 && !headReleased {
				l.head.EarlyRelease(tx)
				headReleased = true
			}
		}
		if curKey >= key {
			return prev, cur, curKey
		}
		prevPrev, prev, cur = prev, cur, n.Next
	}
	return prev, 0, 0
}

// Contains reports whether key is present.
func (l *List) Contains(rt *core.Runtime, mode Mode, key uint64) bool {
	var found bool
	rt.RunKind(mode.TxKind(), func(tx *core.Tx) {
		_, cur, curKey := l.locate(tx, rt, mode, key)
		found = cur != 0 && curKey == key
	})
	return found
}

// Add inserts key; false if already present.
func (l *List) Add(rt *core.Runtime, mode Mode, key uint64) bool {
	var added bool
	rt.RunKind(mode.TxKind(), func(tx *core.Tx) {
		added = false
		prev, cur, curKey := l.locate(tx, rt, mode, key)
		if cur != 0 && curKey == key {
			return
		}
		nv := core.NewTVarNear(l.sys, nodeCodec, rt.Core(), node{})
		nv.Set(tx, node{Key: key, Next: cur})
		if prev == 0 {
			l.head.Set(tx, nv.Addr())
		} else {
			// Whole-object write: the lock unit is the object, so the
			// update conflicts with the node's readers (and, for
			// elastic-read, sits in their validation windows).
			pv := l.nodeAt(prev)
			pkey := pv.Get(tx).Key
			pv.Set(tx, node{Key: pkey, Next: nv.Addr()})
		}
		added = true
	})
	return added
}

// Remove deletes key; false if absent.
func (l *List) Remove(rt *core.Runtime, mode Mode, key uint64) bool {
	var removed bool
	rt.RunKind(mode.TxKind(), func(tx *core.Tx) {
		removed = false
		prev, cur, curKey := l.locate(tx, rt, mode, key)
		if cur == 0 || curKey != key {
			return
		}
		next := l.nodeAt(cur).Get(tx).Next
		if prev == 0 {
			l.head.Set(tx, next)
		} else {
			pv := l.nodeAt(prev)
			pkey := pv.Get(tx).Key
			pv.Set(tx, node{Key: pkey, Next: next})
		}
		if mode != Normal {
			// Elastic modes do not hold read locks on the whole traversal,
			// so two adjacent removals (remove(B) writes A, remove(C)
			// writes B) would otherwise not conflict and the second unlink
			// would be lost. Writing a tombstone into the removed node
			// serializes adjacent updates via WAW and — because §6.1's
			// validation relies on committed updates writing *different*
			// values — makes the removal visible to elastic-read windows:
			// the key field becomes 0, which no live node carries.
			l.nodeAt(cur).Set(tx, node{Key: 0, Next: next})
		}
		removed = true
	})
	return removed
}

// Workload is the synchrobench mix for the list.
type Workload struct {
	UpdatePct int
	KeyRange  uint64
	Mode      Mode
}

// Worker returns a worker loop for the workload.
func (l *List) Worker(w Workload) func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			l.RunOp(rt, r, w)
			rt.AddOps(1)
		}
	}
}

// RunOp executes one randomly drawn operation.
func (l *List) RunOp(rt *core.Runtime, r *sim.Rand, w Workload) {
	key := r.Uint64()%w.KeyRange + 1
	if r.Intn(100) < w.UpdatePct {
		if r.Intn(2) == 0 {
			l.Add(rt, w.Mode, key)
		} else {
			l.Remove(rt, w.Mode, key)
		}
	} else {
		l.Contains(rt, w.Mode, key)
	}
}

// Package intset implements the sorted linked-list benchmark of §6.2: a
// single sorted list of [key, next] nodes in shared memory, exercised with
// the synchrobench contains/add/remove mix.
//
// The list is the elastic-transaction showcase: a search traversal only
// needs consecutive reads to be atomic, so the read-only prefix can either
// release its read locks early (elastic-early) or take no locks at all and
// validate by re-reading (elastic-read). Mode selects between the three
// implementations, which share the same traversal structure.
package intset

import (
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// PerNodeCompute is the nominal per-node traversal cost.
const PerNodeCompute = 600 * time.Nanosecond

// Mode selects the transactional model of the list operations.
type Mode uint8

const (
	// Normal uses plain TM2C transactions (visible read locks on the whole
	// traversal).
	Normal Mode = iota
	// ElasticEarly releases the read locks of nodes that fell out of the
	// two-node traversal window (§6.1 first implementation).
	ElasticEarly
	// ElasticRead takes no read locks and validates consecutive reads from
	// shared memory (§6.1 second implementation).
	ElasticRead
)

func (m Mode) String() string {
	switch m {
	case ElasticEarly:
		return "elastic-early"
	case ElasticRead:
		return "elastic-read"
	default:
		return "normal"
	}
}

// TxKind maps the mode to the runtime's transaction kind.
func (m Mode) TxKind() core.TxKind {
	switch m {
	case ElasticEarly:
		return core.ElasticEarly
	case ElasticRead:
		return core.ElasticRead
	default:
		return core.Normal
	}
}

const (
	fKey  = 0
	fNext = 1
	nodeW = 2
)

// List is the shared-memory sorted list.
type List struct {
	sys  *core.System
	head mem.Addr // one-word head pointer
}

// New allocates an empty list (head pointer behind controller 0).
func New(sys *core.System) *List {
	return &List{sys: sys, head: sys.Mem.Alloc(1, 0)}
}

// InitFill inserts n distinct keys from [1, keyRange] with raw accesses.
func (l *List) InitFill(n int, keyRange uint64, r *sim.Rand) []uint64 {
	inserted := make([]uint64, 0, n)
	for len(inserted) < n {
		key := r.Uint64()%keyRange + 1
		if l.rawInsert(key) {
			inserted = append(inserted, key)
		}
	}
	return inserted
}

func (l *List) rawInsert(key uint64) bool {
	m := l.sys.Mem
	prev, cur := mem.Addr(0), mem.Addr(m.ReadRaw(l.head))
	for cur != 0 && m.ReadRaw(cur+fKey) < key {
		prev, cur = cur, mem.Addr(m.ReadRaw(cur+fNext))
	}
	if cur != 0 && m.ReadRaw(cur+fKey) == key {
		return false
	}
	n := m.Alloc(nodeW, 0)
	m.WriteRaw(n+fKey, key)
	m.WriteRaw(n+fNext, uint64(cur))
	if prev == 0 {
		m.WriteRaw(l.head, uint64(n))
	} else {
		m.WriteRaw(prev+fNext, uint64(n))
	}
	return true
}

// RawKeys returns the current keys in list order (verification only).
func (l *List) RawKeys() []uint64 {
	m := l.sys.Mem
	var keys []uint64
	cur := mem.Addr(m.ReadRaw(l.head))
	for cur != 0 {
		keys = append(keys, m.ReadRaw(cur+fKey))
		cur = mem.Addr(m.ReadRaw(cur + fNext))
	}
	return keys
}

// locate traverses inside tx until cur.key >= key, applying the mode's
// elastic behaviour: under ElasticEarly, nodes leaving the two-node window
// are released immediately.
func (l *List) locate(tx *core.Tx, rt *core.Runtime, mode Mode, key uint64) (prev, cur mem.Addr, curKey uint64) {
	var prevPrev mem.Addr
	headReleased := false
	cur = mem.Addr(tx.Read(l.head))
	for cur != 0 {
		rt.Compute(PerNodeCompute)
		n := tx.ReadN(cur, nodeW)
		curKey = n[fKey]
		if mode == ElasticEarly {
			// The traversal window is {prev, cur}; anything older is no
			// longer semantically relevant to the search (§6).
			if prevPrev != 0 {
				tx.EarlyRelease(prevPrev)
			} else if prev != 0 && !headReleased {
				tx.EarlyRelease(l.head)
				headReleased = true
			}
		}
		if curKey >= key {
			return prev, cur, curKey
		}
		prevPrev, prev, cur = prev, cur, mem.Addr(n[fNext])
	}
	return prev, 0, 0
}

// Contains reports whether key is present.
func (l *List) Contains(rt *core.Runtime, mode Mode, key uint64) bool {
	var found bool
	rt.RunKind(mode.TxKind(), func(tx *core.Tx) {
		_, cur, curKey := l.locate(tx, rt, mode, key)
		found = cur != 0 && curKey == key
	})
	return found
}

// Add inserts key; false if already present.
func (l *List) Add(rt *core.Runtime, mode Mode, key uint64) bool {
	var added bool
	rt.RunKind(mode.TxKind(), func(tx *core.Tx) {
		added = false
		prev, cur, curKey := l.locate(tx, rt, mode, key)
		if cur != 0 && curKey == key {
			return
		}
		n := l.sys.Mem.AllocNear(nodeW, rt.Core())
		tx.WriteN(n, []uint64{key, uint64(cur)})
		if prev == 0 {
			tx.Write(l.head, uint64(n))
		} else {
			// Whole-object write: the lock unit is the object, so the
			// update conflicts with the node's readers (and, for
			// elastic-read, sits in their validation windows).
			pkey := tx.ReadN(prev, nodeW)[fKey]
			tx.WriteN(prev, []uint64{pkey, uint64(n)})
		}
		added = true
	})
	return added
}

// Remove deletes key; false if absent.
func (l *List) Remove(rt *core.Runtime, mode Mode, key uint64) bool {
	var removed bool
	rt.RunKind(mode.TxKind(), func(tx *core.Tx) {
		removed = false
		prev, cur, curKey := l.locate(tx, rt, mode, key)
		if cur == 0 || curKey != key {
			return
		}
		next := tx.ReadN(cur, nodeW)[fNext]
		if prev == 0 {
			tx.Write(l.head, next)
		} else {
			pkey := tx.ReadN(prev, nodeW)[fKey]
			tx.WriteN(prev, []uint64{pkey, next})
		}
		if mode != Normal {
			// Elastic modes do not hold read locks on the whole traversal,
			// so two adjacent removals (remove(B) writes A, remove(C)
			// writes B) would otherwise not conflict and the second unlink
			// would be lost. Writing a tombstone into the removed node
			// serializes adjacent updates via WAW and — because §6.1's
			// validation relies on committed updates writing *different*
			// values — makes the removal visible to elastic-read windows:
			// the key field becomes 0, which no live node carries.
			tx.WriteN(cur, []uint64{0, next})
		}
		removed = true
	})
	return removed
}

// Workload is the synchrobench mix for the list.
type Workload struct {
	UpdatePct int
	KeyRange  uint64
	Mode      Mode
}

// Worker returns a worker loop for the workload.
func (l *List) Worker(w Workload) func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			l.RunOp(rt, r, w)
			rt.AddOps(1)
		}
	}
}

// RunOp executes one randomly drawn operation.
func (l *List) RunOp(rt *core.Runtime, r *sim.Rand, w Workload) {
	key := r.Uint64()%w.KeyRange + 1
	if r.Intn(100) < w.UpdatePct {
		if r.Intn(2) == 0 {
			l.Add(rt, w.Mode, key)
		} else {
			l.Remove(rt, w.Mode, key)
		}
	} else {
		l.Contains(rt, w.Mode, key)
	}
}

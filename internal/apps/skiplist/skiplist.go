// Package skiplist implements a transactional skip list over TM2C shared
// memory. The paper evaluates synchrobench's hash table and linked list;
// the skip list is the suite's third classic search structure and serves as
// an extension benchmark: logarithmic traversals produce mid-sized read
// sets (between the hash table's short chains and the list's long ones) and
// updates write several predecessor nodes at once, exercising multi-object
// write-lock batching.
//
// Layout: a node is a fixed-size object of 2+MaxLevel words:
// [key, level, next_0 .. next_{MaxLevel-1}]; unused levels hold 0. The head
// node has key 0 (smaller than every stored key; keys are >= 1). Fixed-size
// nodes keep object bases and lengths consistent across all accessors,
// which the object-granularity lock protocol requires.
package skiplist

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// MaxLevel is the tallest tower; 2^8 = 256x fan-out covers the benchmark
// sizes used here.
const MaxLevel = 8

// nodeW is the node object size in words.
const nodeW = 2 + MaxLevel

// node is one tower: the key, the tower height, and MaxLevel next pointers
// (unused levels hold mem.Nil) — a single fixed-size object under one lock.
type node struct {
	Key   uint64
	Level int
	Next  [MaxLevel]mem.Addr
}

// nodeCodec translates node structs to and from their fixed layout:
// [key, level, next_0 .. next_{MaxLevel-1}].
var nodeCodec = core.FuncCodec(nodeW,
	func(n node, dst []uint64) {
		dst[0], dst[1] = n.Key, uint64(n.Level)
		for i, a := range n.Next {
			dst[2+i] = uint64(a)
		}
	},
	func(src []uint64) node {
		n := node{Key: src[0], Level: int(src[1])}
		for i := range n.Next {
			n.Next[i] = mem.Addr(src[2+i])
		}
		return n
	},
)

// PerNodeCompute is the nominal traversal cost per visited node.
const PerNodeCompute = 700 * time.Nanosecond

// List is the shared-memory skip list.
type List struct {
	sys  *core.System
	head core.TVar[node]
}

// New allocates an empty skip list (head tower behind controller 0).
func New(sys *core.System) *List {
	return &List{sys: sys, head: core.NewTVar(sys, nodeCodec, node{Level: MaxLevel})}
}

// nodeAt views the tower object at base.
func (l *List) nodeAt(base mem.Addr) core.TVar[node] {
	return core.TVarAt(l.sys, nodeCodec, base)
}

// randomLevel draws a geometric tower height in [1, MaxLevel].
func randomLevel(r *sim.Rand) int {
	lvl := 1
	for lvl < MaxLevel && r.Uint64()&3 == 0 { // p = 1/4
		lvl++
	}
	return lvl
}

// InitFill inserts n distinct keys from [1, keyRange] with raw accesses.
func (l *List) InitFill(n int, keyRange uint64, r *sim.Rand) []uint64 {
	inserted := make([]uint64, 0, n)
	for len(inserted) < n {
		key := r.Uint64()%keyRange + 1
		if l.rawInsert(key, randomLevel(r)) {
			inserted = append(inserted, key)
		}
	}
	return inserted
}

func (l *List) rawInsert(key uint64, level int) bool {
	var preds [MaxLevel]core.TVar[node]
	cur := l.head
	for lv := MaxLevel - 1; lv >= 0; lv-- {
		for {
			next := cur.GetRaw().Next[lv]
			if next == 0 || l.nodeAt(next).GetRaw().Key >= key {
				break
			}
			cur = l.nodeAt(next)
		}
		preds[lv] = cur
	}
	at := preds[0].GetRaw().Next[0]
	if at != 0 && l.nodeAt(at).GetRaw().Key == key {
		return false
	}
	n := node{Key: key, Level: level}
	for lv := 0; lv < level; lv++ {
		n.Next[lv] = preds[lv].GetRaw().Next[lv]
	}
	nv := core.NewTVar(l.sys, nodeCodec, n)
	for lv := 0; lv < level; lv++ {
		p := preds[lv].GetRaw()
		p.Next[lv] = nv.Addr()
		preds[lv].SetRaw(p)
	}
	return true
}

// RawKeys returns the bottom-level keys in order (verification).
func (l *List) RawKeys() []uint64 {
	var keys []uint64
	cur := l.head.GetRaw().Next[0]
	for cur != 0 {
		n := l.nodeAt(cur).GetRaw()
		keys = append(keys, n.Key)
		cur = n.Next[0]
	}
	return keys
}

// CheckTowers verifies structural integrity with raw accesses: every level
// is sorted and every tower is reachable at each of its levels. It returns
// the bottom-level size.
func (l *List) CheckTowers() (int, error) {
	for lv := 0; lv < MaxLevel; lv++ {
		var prev uint64
		cur := l.head.GetRaw().Next[lv]
		for cur != 0 {
			n := l.nodeAt(cur).GetRaw()
			if n.Key <= prev {
				return 0, errUnsorted(lv, prev, n.Key)
			}
			if n.Level <= lv {
				return 0, errLowTower(lv, n.Key)
			}
			prev = n.Key
			cur = n.Next[lv]
		}
	}
	return len(l.RawKeys()), nil
}

func errUnsorted(lv int, prev, key uint64) error {
	return fmt.Errorf("skiplist: level %d unsorted: %d after %d", lv, key, prev)
}

func errLowTower(lv int, key uint64) error {
	return fmt.Errorf("skiplist: node %d linked above its level at %d", key, lv)
}

// locate returns the predecessors at every level and the candidate node
// (the bottom-level successor of preds[0]).
func (l *List) locate(tx *core.Tx, rt *core.Runtime, key uint64) (preds [MaxLevel]mem.Addr, cand mem.Addr, candKey uint64) {
	cur := l.head.Addr()
	curObj := l.head.Get(tx)
	for lv := MaxLevel - 1; lv >= 0; lv-- {
		for {
			next := curObj.Next[lv]
			if next == 0 {
				break
			}
			rt.Compute(PerNodeCompute)
			nextObj := l.nodeAt(next).Get(tx)
			if nextObj.Key >= key {
				break
			}
			cur, curObj = next, nextObj
		}
		preds[lv] = cur
	}
	cand = curObj.Next[0]
	if cand != 0 {
		candKey = l.nodeAt(cand).Get(tx).Key
	}
	return preds, cand, candKey
}

// Contains reports whether key is present (transactional).
func (l *List) Contains(rt *core.Runtime, key uint64) bool {
	var found bool
	rt.Run(func(tx *core.Tx) {
		_, cand, candKey := l.locate(tx, rt, key)
		found = cand != 0 && candKey == key
	})
	return found
}

// Add inserts key with a deterministic random tower height; false if
// already present.
func (l *List) Add(rt *core.Runtime, key uint64) bool {
	level := randomLevel(rt.Rand())
	var added bool
	rt.Run(func(tx *core.Tx) {
		added = false
		preds, cand, candKey := l.locate(tx, rt, key)
		if cand != 0 && candKey == key {
			return
		}
		nv := core.NewTVarNear(l.sys, nodeCodec, rt.Core(), node{})
		obj := node{Key: key, Level: level}
		for lv := 0; lv < level; lv++ {
			obj.Next[lv] = l.nodeAt(preds[lv]).Get(tx).Next[lv] // tx cache
		}
		nv.Set(tx, obj)
		for lv := 0; lv < level; lv++ {
			pv := l.nodeAt(preds[lv])
			upd := pv.Get(tx)
			upd.Next[lv] = nv.Addr()
			pv.Set(tx, upd)
		}
		added = true
	})
	return added
}

// Remove deletes key; false if absent.
func (l *List) Remove(rt *core.Runtime, key uint64) bool {
	var removed bool
	rt.Run(func(tx *core.Tx) {
		removed = false
		preds, cand, candKey := l.locate(tx, rt, key)
		if cand == 0 || candKey != key {
			return
		}
		victim := l.nodeAt(cand).Get(tx)
		for lv := 0; lv < victim.Level; lv++ {
			pv := l.nodeAt(preds[lv])
			upd := pv.Get(tx)
			if upd.Next[lv] != cand {
				continue // taller predecessor bypasses the victim here
			}
			upd.Next[lv] = victim.Next[lv]
			pv.Set(tx, upd)
		}
		removed = true
	})
	return removed
}

// Workload is the synchrobench mix.
type Workload struct {
	UpdatePct int
	KeyRange  uint64
}

// Worker returns a worker loop for the workload.
func (l *List) Worker(w Workload) func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			key := r.Uint64()%w.KeyRange + 1
			if r.Intn(100) < w.UpdatePct {
				if r.Intn(2) == 0 {
					l.Add(rt, key)
				} else {
					l.Remove(rt, key)
				}
			} else {
				l.Contains(rt, key)
			}
			rt.AddOps(1)
		}
	}
}

// Package skiplist implements a transactional skip list over TM2C shared
// memory. The paper evaluates synchrobench's hash table and linked list;
// the skip list is the suite's third classic search structure and serves as
// an extension benchmark: logarithmic traversals produce mid-sized read
// sets (between the hash table's short chains and the list's long ones) and
// updates write several predecessor nodes at once, exercising multi-object
// write-lock batching.
//
// Layout: a node is a fixed-size object of 2+MaxLevel words:
// [key, level, next_0 .. next_{MaxLevel-1}]; unused levels hold 0. The head
// node has key 0 (smaller than every stored key; keys are >= 1). Fixed-size
// nodes keep object bases and lengths consistent across all accessors,
// which the object-granularity lock protocol requires.
package skiplist

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
)

// MaxLevel is the tallest tower; 2^8 = 256x fan-out covers the benchmark
// sizes used here.
const MaxLevel = 8

const (
	fKey   = 0
	fLevel = 1
	fNext  = 2 // first of MaxLevel next pointers
	nodeW  = 2 + MaxLevel
)

// PerNodeCompute is the nominal traversal cost per visited node.
const PerNodeCompute = 700 * time.Nanosecond

// List is the shared-memory skip list.
type List struct {
	sys  *core.System
	head mem.Addr
}

// New allocates an empty skip list (head tower behind controller 0).
func New(sys *core.System) *List {
	head := sys.Mem.Alloc(nodeW, 0)
	sys.Mem.WriteRaw(head+fLevel, MaxLevel)
	return &List{sys: sys, head: head}
}

// randomLevel draws a geometric tower height in [1, MaxLevel].
func randomLevel(r *sim.Rand) int {
	lvl := 1
	for lvl < MaxLevel && r.Uint64()&3 == 0 { // p = 1/4
		lvl++
	}
	return lvl
}

// InitFill inserts n distinct keys from [1, keyRange] with raw accesses.
func (l *List) InitFill(n int, keyRange uint64, r *sim.Rand) []uint64 {
	inserted := make([]uint64, 0, n)
	for len(inserted) < n {
		key := r.Uint64()%keyRange + 1
		if l.rawInsert(key, randomLevel(r)) {
			inserted = append(inserted, key)
		}
	}
	return inserted
}

func (l *List) rawInsert(key uint64, level int) bool {
	m := l.sys.Mem
	var preds [MaxLevel]mem.Addr
	cur := l.head
	for lv := MaxLevel - 1; lv >= 0; lv-- {
		for {
			next := mem.Addr(m.ReadRaw(cur + fNext + mem.Addr(lv)))
			if next == 0 || m.ReadRaw(next+fKey) >= key {
				break
			}
			cur = next
		}
		preds[lv] = cur
	}
	at := mem.Addr(m.ReadRaw(preds[0] + fNext))
	if at != 0 && m.ReadRaw(at+fKey) == key {
		return false
	}
	n := m.Alloc(nodeW, 0)
	m.WriteRaw(n+fKey, key)
	m.WriteRaw(n+fLevel, uint64(level))
	for lv := 0; lv < level; lv++ {
		next := m.ReadRaw(preds[lv] + fNext + mem.Addr(lv))
		m.WriteRaw(n+fNext+mem.Addr(lv), next)
		m.WriteRaw(preds[lv]+fNext+mem.Addr(lv), uint64(n))
	}
	return true
}

// RawKeys returns the bottom-level keys in order (verification).
func (l *List) RawKeys() []uint64 {
	m := l.sys.Mem
	var keys []uint64
	cur := mem.Addr(m.ReadRaw(l.head + fNext))
	for cur != 0 {
		keys = append(keys, m.ReadRaw(cur+fKey))
		cur = mem.Addr(m.ReadRaw(cur + fNext))
	}
	return keys
}

// CheckTowers verifies structural integrity with raw accesses: every level
// is sorted and every tower is reachable at each of its levels. It returns
// the bottom-level size.
func (l *List) CheckTowers() (int, error) {
	m := l.sys.Mem
	for lv := 0; lv < MaxLevel; lv++ {
		var prev uint64
		cur := mem.Addr(m.ReadRaw(l.head + fNext + mem.Addr(lv)))
		for cur != 0 {
			key := m.ReadRaw(cur + fKey)
			if key <= prev {
				return 0, errUnsorted(lv, prev, key)
			}
			if int(m.ReadRaw(cur+fLevel)) <= lv {
				return 0, errLowTower(lv, key)
			}
			prev = key
			cur = mem.Addr(m.ReadRaw(cur + fNext + mem.Addr(lv)))
		}
	}
	return len(l.RawKeys()), nil
}

func errUnsorted(lv int, prev, key uint64) error {
	return fmt.Errorf("skiplist: level %d unsorted: %d after %d", lv, key, prev)
}

func errLowTower(lv int, key uint64) error {
	return fmt.Errorf("skiplist: node %d linked above its level at %d", key, lv)
}

// locate returns the predecessors at every level and the candidate node
// (the bottom-level successor of preds[0]).
func (l *List) locate(tx *core.Tx, rt *core.Runtime, key uint64) (preds [MaxLevel]mem.Addr, cand mem.Addr, candKey uint64) {
	cur := l.head
	curObj := tx.ReadN(cur, nodeW)
	for lv := MaxLevel - 1; lv >= 0; lv-- {
		for {
			next := mem.Addr(curObj[fNext+lv])
			if next == 0 {
				break
			}
			rt.Compute(PerNodeCompute)
			nextObj := tx.ReadN(next, nodeW)
			if nextObj[fKey] >= key {
				break
			}
			cur, curObj = next, nextObj
		}
		preds[lv] = cur
	}
	cand = mem.Addr(curObj[fNext])
	if cand != 0 {
		candKey = tx.ReadN(cand, nodeW)[fKey]
	}
	return preds, cand, candKey
}

// Contains reports whether key is present (transactional).
func (l *List) Contains(rt *core.Runtime, key uint64) bool {
	var found bool
	rt.Run(func(tx *core.Tx) {
		_, cand, candKey := l.locate(tx, rt, key)
		found = cand != 0 && candKey == key
	})
	return found
}

// Add inserts key with a deterministic random tower height; false if
// already present.
func (l *List) Add(rt *core.Runtime, key uint64) bool {
	level := randomLevel(rt.Rand())
	var added bool
	rt.Run(func(tx *core.Tx) {
		added = false
		preds, cand, candKey := l.locate(tx, rt, key)
		if cand != 0 && candKey == key {
			return
		}
		n := l.sys.Mem.AllocNear(nodeW, rt.Core())
		obj := make([]uint64, nodeW)
		obj[fKey] = key
		obj[fLevel] = uint64(level)
		for lv := 0; lv < level; lv++ {
			pred := tx.ReadN(preds[lv], nodeW)
			obj[fNext+lv] = pred[fNext+lv]
		}
		tx.WriteN(n, obj)
		for lv := 0; lv < level; lv++ {
			pred := tx.ReadN(preds[lv], nodeW)
			upd := cloneSlice(pred)
			upd[fNext+lv] = uint64(n)
			tx.WriteN(preds[lv], upd)
		}
		added = true
	})
	return added
}

// Remove deletes key; false if absent.
func (l *List) Remove(rt *core.Runtime, key uint64) bool {
	var removed bool
	rt.Run(func(tx *core.Tx) {
		removed = false
		preds, cand, candKey := l.locate(tx, rt, key)
		if cand == 0 || candKey != key {
			return
		}
		victim := tx.ReadN(cand, nodeW)
		level := int(victim[fLevel])
		for lv := 0; lv < level; lv++ {
			pred := tx.ReadN(preds[lv], nodeW)
			if mem.Addr(pred[fNext+lv]) != cand {
				continue // taller predecessor bypasses the victim here
			}
			upd := cloneSlice(pred)
			upd[fNext+lv] = victim[fNext+lv]
			tx.WriteN(preds[lv], upd)
		}
		removed = true
	})
	return removed
}

// Workload is the synchrobench mix.
type Workload struct {
	UpdatePct int
	KeyRange  uint64
}

// Worker returns a worker loop for the workload.
func (l *List) Worker(w Workload) func(rt *core.Runtime) {
	return func(rt *core.Runtime) {
		r := rt.Rand()
		for !rt.Stopped() {
			key := r.Uint64()%w.KeyRange + 1
			if r.Intn(100) < w.UpdatePct {
				if r.Intn(2) == 0 {
					l.Add(rt, key)
				} else {
					l.Remove(rt, key)
				}
			} else {
				l.Contains(rt, key)
			}
			rt.AddOps(1)
		}
	}
}

func cloneSlice(v []uint64) []uint64 {
	out := make([]uint64, len(v))
	copy(out, v)
	return out
}

package skiplist

import (
	"sort"
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/sim"
)

func newSys(t *testing.T, cores int) *core.System {
	t.Helper()
	s, err := core.NewSystem(core.Config{
		Platform: noc.SCC(0), Seed: 17, TotalCores: cores, Policy: cm.FairCM,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRandomLevelDistribution(t *testing.T) {
	r := sim.NewRand(1)
	counts := make([]int, MaxLevel+1)
	const n = 100000
	for i := 0; i < n; i++ {
		lvl := randomLevel(&r)
		if lvl < 1 || lvl > MaxLevel {
			t.Fatalf("level %d out of range", lvl)
		}
		counts[lvl]++
	}
	// Geometric with p=1/4: level 1 ~ 75%, level 2 ~ 18.75%, ...
	if counts[1] < n*70/100 || counts[1] > n*80/100 {
		t.Errorf("level-1 fraction %d of %d (want ~75%%)", counts[1], n)
	}
	if counts[2] > counts[1] || counts[3] > counts[2] {
		t.Error("level distribution not decreasing")
	}
}

func TestInitFillAndIntegrity(t *testing.T) {
	s := newSys(t, 4)
	l := New(s)
	r := sim.NewRand(2)
	keys := l.InitFill(200, 1000, &r)
	size, err := l.CheckTowers()
	if err != nil {
		t.Fatal(err)
	}
	if size != 200 {
		t.Fatalf("size = %d", size)
	}
	got := l.RawKeys()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d: %d != %d", i, got[i], keys[i])
		}
	}
}

func TestOpsMatchModel(t *testing.T) {
	s := newSys(t, 2)
	l := New(s)
	model := make(map[uint64]bool)
	s.SpawnWorkers(func(rt *core.Runtime) {
		r := rt.Rand()
		for i := 0; i < 150; i++ {
			key := r.Uint64()%96 + 1
			switch r.Intn(3) {
			case 0:
				if got, want := l.Add(rt, key), !model[key]; got != want {
					t.Errorf("Add(%d) = %v, want %v", key, got, want)
				}
				model[key] = true
			case 1:
				if got, want := l.Remove(rt, key), model[key]; got != want {
					t.Errorf("Remove(%d) = %v, want %v", key, got, want)
				}
				delete(model, key)
			default:
				if got, want := l.Contains(rt, key), model[key]; got != want {
					t.Errorf("Contains(%d) = %v, want %v", key, got, want)
				}
			}
		}
	})
	s.RunToCompletion()
	size, err := l.CheckTowers()
	if err != nil {
		t.Fatal(err)
	}
	if size != len(model) {
		t.Fatalf("size %d != model %d", size, len(model))
	}
}

func TestConcurrentTortureIntegrity(t *testing.T) {
	s := newSys(t, 8)
	l := New(s)
	r := sim.NewRand(7)
	init := len(l.InitFill(32, 128, &r))
	deltas := make([]int, s.NumAppCores())
	s.SpawnWorkers(func(rt *core.Runtime) {
		rr := rt.Rand()
		d := 0
		for i := 0; i < 40; i++ {
			key := rr.Uint64()%128 + 1
			if rr.Intn(2) == 0 {
				if l.Add(rt, key) {
					d++
				}
			} else {
				if l.Remove(rt, key) {
					d--
				}
			}
		}
		deltas[rt.AppIndex()] = d
	})
	s.RunToCompletion()
	size, err := l.CheckTowers()
	if err != nil {
		t.Fatal(err)
	}
	net := init
	for _, d := range deltas {
		net += d
	}
	if size != net {
		t.Fatalf("size %d != initial+net %d (lost/phantom update)", size, net)
	}
	if s.LockedAddrs() != 0 {
		t.Fatal("lock leak")
	}
}

func TestConcurrentAuditSerializable(t *testing.T) {
	s := newSys(t, 8)
	s.EnableAudit()
	l := New(s)
	r := sim.NewRand(3)
	l.InitFill(32, 96, &r)
	// Capture the raw initial state for the audit model.
	initial := snapshotWords(s)
	s.SpawnWorkers(l.Worker(Workload{UpdatePct: 40, KeyRange: 96}))
	s.Run(2 * time.Millisecond)
	if _, err := l.CheckTowers(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckAudit(initial); err != nil {
		t.Fatalf("skip list history not serializable: %v", err)
	}
}

func snapshotWords(s *core.System) map[mem.Addr]uint64 {
	// Walk the allocator's used region of controller 0 conservatively by
	// re-reading every address the structure can reference.
	snap := make(map[mem.Addr]uint64)
	for a := mem.Addr(1); a < 4096; a++ {
		if v := s.Mem.ReadRaw(a); v != 0 {
			snap[a] = v
		}
	}
	return snap
}

func TestWorkerSmoke(t *testing.T) {
	s := newSys(t, 8)
	l := New(s)
	r := sim.NewRand(4)
	l.InitFill(64, 256, &r)
	s.SpawnWorkers(l.Worker(Workload{UpdatePct: 20, KeyRange: 256}))
	st := s.Run(2 * time.Millisecond)
	if st.Ops == 0 || st.Commits == 0 {
		t.Fatalf("no progress: %+v", st)
	}
	if _, err := l.CheckTowers(); err != nil {
		t.Fatal(err)
	}
}

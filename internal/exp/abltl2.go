package exp

import (
	"fmt"

	"repro/internal/apps/bank"
	"repro/internal/apps/intset"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	register("abltl2", "Ablation: invisible-read TL2 protocol vs visible reads (read-mostly workloads)", ablTL2)
}

// ablTL2 measures what the invisible-read TL2 mode buys where it should win
// biggest: read-mostly workloads, where the visible protocol pays one DTM
// round trip per first read while TL2 reads locally against the sharded
// version clock and only talks to the DTM nodes at commit (and not at all
// for pure readers). The wire/op column is the ablation's headline — the
// per-read round trips simply vanish — and cmd/benchcheck gates on it.
func ablTL2(sc Scale, ov Overrides) []*Table {
	accounts := sc.div(1024, 64)
	elems := sc.div(512, 32)
	t := &Table{
		ID: "abltl2",
		Title: fmt.Sprintf(
			"Invisible-read TL2 vs visible reads, read-mostly mixes (%d accounts / %d list elems, 48 cores)",
			accounts, elems),
		Columns: []string{"workload", "protocol", "ops/ms", "wire/op", "commit %",
			"local rd/op", "reval/commit", "clock ticks", "doomed",
			"ab-conflict/op", "ab-revoked/op", "ab-doomed/op", "ab-stale/op", "ab-user/op"},
	}
	protocols := []core.Protocol{core.ProtocolVisible, core.ProtocolTL2}

	// Bank with Zipf-skewed hot reads: 10% transfers, 90% audits of an
	// 8-account Zipf(0.85) read set — the paper's balance-heavy regime with
	// realistic skew.
	for _, proto := range protocols {
		c := defaultSys(48)
		c.seed = sc.Seed
		c.protocol = proto
		st, _ := bankRun(sc, ov, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
			return b.HotReadWorker(10, 8, 0.85)
		})
		addTL2Row(t, "bank-zipf", proto, st)
	}

	// Linked list, lookup-heavy synchrobench mix (10% updates): long
	// traversals make the visible protocol's per-node read round trips the
	// dominant cost.
	for _, proto := range protocols {
		c := defaultSys(48)
		c.seed = sc.Seed
		c.protocol = proto
		s := c.build(ov)
		l := intset.New(s)
		r := sim.NewRand(sc.Seed ^ 0x77)
		keyRange := uint64(2 * elems)
		l.InitFill(elems, keyRange, &r)
		s.SpawnWorkers(l.Worker(intset.Workload{UpdatePct: 10, KeyRange: keyRange, Mode: intset.Normal}))
		st := s.Run(sc.Duration)
		addTL2Row(t, "intset-lookup", proto, st)
	}

	t.Notes = append(t.Notes,
		"ab-*/op: aborts per completed operation by taxonomy reason (conflict, CM revocation, doomed snapshot read, stale placement, user)",
		"wire/op: physical wire messages per completed operation; tl2 reads are local, so only commit-time write-lock traffic remains",
		"local rd/op counts reads served from the local version table; doomed counts snapshot-staleness aborts (the opacity mechanism)",
		"pure read-only transactions under tl2 send zero messages: no locks, no validation traffic, just a clock snapshot")
	return []*Table{t}
}

// addTL2Row appends one protocol's measurements to the abltl2 table.
func addTL2Row(t *Table, workload string, proto core.Protocol, st *core.Stats) {
	revalPerCommit := 0.0
	if st.Commits > 0 {
		revalPerCommit = float64(st.Revalidations) / float64(st.Commits)
	}
	ops := float64(st.Ops)
	t.AddRow(workload, proto.String(),
		perMs(st.Ops, st.Duration),
		ratio(float64(st.WireMsgs), ops),
		st.CommitRate(),
		ratio(float64(st.LocalReads), ops),
		revalPerCommit,
		st.ClockAdvances,
		st.DoomedReads,
		ratio(float64(st.AbortReasons[trace.ReasonConflict]), ops),
		ratio(float64(st.AbortReasons[trace.ReasonRevoked]), ops),
		ratio(float64(st.AbortReasons[trace.ReasonDoomedRead]), ops),
		ratio(float64(st.AbortReasons[trace.ReasonStalePlacement]), ops),
		ratio(float64(st.AbortReasons[trace.ReasonUser]), ops))
}

package exp

import (
	"repro/internal/apps/hashset"
	"repro/internal/apps/intset"
	"repro/internal/apps/skiplist"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
)

// Extension experiments beyond the paper's evaluation.

func init() {
	register("extskip", "Extension: skip list vs list vs hash table (20% updates)", extSkip)
	register("extirrev", "Extension: irrevocable transactions mixed with optimistic load", extIrrev)
}

// extSkip compares the three search structures at equal logical size under
// the same workload: the hash table's O(load factor) chains, the skip
// list's O(log n) towers and the list's O(n) traversals produce read sets
// of very different sizes, which directly scales the number of messages per
// operation — the dominant cost on a message-passing TM.
func extSkip(sc Scale, ov Overrides) []*Table {
	elems := sc.div(512, 32)
	t := &Table{
		ID:      "extskip",
		Title:   "Search structures, equal size, 20% updates (ops/ms)",
		Columns: []string{"cores", "hashset", "skiplist", "list"},
	}
	keyRange := uint64(2 * elems)
	for _, n := range sc.Cores {
		row := []any{n}

		ch := defaultSys(n)
		ch.seed = sc.Seed
		st := hashRun(sc, ov, ch, elems/4, 4, hashset.Workload{UpdatePct: 20, KeyRange: keyRange})
		row = append(row, perMs(st.Ops, st.Duration))

		cs := defaultSys(n)
		cs.seed = sc.Seed
		s := cs.build(ov)
		sl := skiplist.New(s)
		r := sim.NewRand(sc.Seed ^ 0x51)
		sl.InitFill(elems, keyRange, &r)
		s.SpawnWorkers(sl.Worker(skiplist.Workload{UpdatePct: 20, KeyRange: keyRange}))
		st = s.Run(sc.Duration)
		row = append(row, perMs(st.Ops, st.Duration))

		lst := listRun(sc, ov, noc.SCC(0), n, elems, 20, intset.Normal, sc.Seed)
		row = append(row, perMs(lst.Ops, lst.Duration))
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"read-set size drives message count: O(load) hash chains beat O(log n) towers beat O(n) list scans")
	return []*Table{t}
}

// extIrrev measures the cost of the §2 irrevocable-transaction extension: a
// fraction of operations run pessimistically (acquiring every DTM node's
// exclusivity token), the rest are ordinary optimistic transfers.
func extIrrev(sc Scale, ov Overrides) []*Table {
	// Irrevocability is a visible-protocol facility (TL2 readers bypass the
	// DTM exclusivity tokens), so this experiment pins the protocol rather
	// than crashing under a forced -protocol tl2.
	ov.Protocol = core.ProtocolVisible
	accounts := sc.div(1024, 64)
	t := &Table{
		ID:      "extirrev",
		Title:   "Irrevocable transactions mixed into bank transfers (48 cores, ops/ms)",
		Columns: []string{"irrevocable %", "ops/ms", "irrevocables/s"},
	}
	for _, pct := range []int{0, 1, 5, 10} {
		c := defaultSys(48)
		c.seed = sc.Seed
		s := c.build(ov)
		accts := core.NewTArray(s, core.Uint64Codec(), accounts, 1000)
		s.SpawnWorkers(func(rt *core.Runtime) {
			r := rt.Rand()
			for !rt.Stopped() {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				if pct > 0 && r.Intn(100) < pct {
					rt.RunIrrevocable(func(ir *core.Irrevocable) {
						f := accts.At(from).GetIr(ir)
						tv := accts.At(to).GetIr(ir)
						accts.At(from).SetIr(ir, f-1)
						accts.At(to).SetIr(ir, tv+1)
					})
				} else {
					rt.Run(func(tx *core.Tx) {
						f := accts.Get(tx, from)
						tv := accts.Get(tx, to)
						accts.Set(tx, from, f-1)
						accts.Set(tx, to, tv+1)
					})
				}
				rt.AddOps(1)
			}
		})
		st := s.Run(sc.Duration)
		irrevPerSec := float64(st.Irrevocables) / (float64(st.Duration) / 1e9)
		t.AddRow(pctLabel(pct), perMs(st.Ops, st.Duration), irrevPerSec)
	}
	t.Notes = append(t.Notes,
		"each irrevocable transaction drains and stalls every DTM node, so even small fractions are costly — the reason TM2C keeps them out of the core protocol")
	return []*Table{t}
}

func pctLabel(p int) string {
	return formatFloat(float64(p)) + "%"
}

package exp

import (
	"testing"
	"time"

	"repro/internal/noc"
)

func TestScaleDiv(t *testing.T) {
	sc := Scale{SizeDiv: 4}
	if got := sc.div(1024, 64); got != 256 {
		t.Errorf("div(1024) = %d", got)
	}
	if got := sc.div(100, 64); got != 64 {
		t.Errorf("floor not applied: %d", got)
	}
}

func TestPerMsAndRatio(t *testing.T) {
	if got := perMs(500, 1_000_000); got != 500 {
		t.Errorf("perMs = %v", got)
	}
	if got := perMs(500, 0); got != 0 {
		t.Errorf("perMs zero-duration = %v", got)
	}
	if ratio(10, 4) != 2.5 || ratio(1, 0) != 0 {
		t.Error("ratio helper wrong")
	}
}

func TestHalfSplit(t *testing.T) {
	cases := map[int]int{2: 1, 3: 1, 4: 2, 48: 24}
	for total, want := range cases {
		if got := halfSplit(total); got != want {
			t.Errorf("halfSplit(%d) = %d, want %d", total, got, want)
		}
	}
}

func TestSysConfigBuildPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config did not panic")
		}
	}()
	c := defaultSys(1) // 1 core is invalid
	c.build(Overrides{})
}

func TestPingPongMatchesAnalyticalLatency(t *testing.T) {
	// With one app and one service core there is no queueing, so the
	// simulated round trip must equal the platform's closed form.
	pl := noc.SCC(0)
	want := pl.MsgDelay(0, 1, 16, 1) + pl.MsgDelay(1, 0, 16, 1)
	got := pingPong(pl, 2, 50, 1)
	if got != want {
		t.Fatalf("pingPong RT = %v, want %v", got, want)
	}
	if want < 4500*time.Nanosecond || want > 5600*time.Nanosecond {
		t.Fatalf("2-core RT %v outside the paper's ~5.1µs", want)
	}
}

func TestPingPongScalesWithCores(t *testing.T) {
	pl := noc.SCC(0)
	small := pingPong(pl, 2, 30, 1)
	big := pingPong(pl, 48, 30, 1)
	if big <= small {
		t.Fatalf("48-core RT (%v) should exceed 2-core RT (%v)", big, small)
	}
	// Paper: ~12.4µs at 48 cores.
	if big < 10*time.Microsecond || big > 15*time.Microsecond {
		t.Fatalf("48-core RT = %v, want ~12.4µs", big)
	}
}

func TestMrSizeScaling(t *testing.T) {
	sc := Scale{SizeDiv: 1}
	if mrSize(sc, 256) != 256<<20/64 {
		t.Errorf("mrSize(256MB) = %d", mrSize(sc, 256))
	}
	tiny := Scale{SizeDiv: 1 << 20}
	if mrSize(tiny, 256) != 64<<10 {
		t.Errorf("mrSize floor = %d", mrSize(tiny, 256))
	}
}

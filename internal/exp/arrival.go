package exp

import (
	"fmt"

	"repro/internal/apps/bank"
	"repro/internal/cm"
	"repro/internal/core"
)

func init() {
	register("ablarrival", "Ablation: CM timestamping at envelope arrival vs per-payload service instant (Offset-Greedy, contended bank)", ablArrival)
}

// ablArrival quantifies the FairCM-question carry-over from the coalescing
// PR: when the transport packs several lock requests into one envelope,
// should a timestamp-priority contention manager stamp them all with the
// envelope's arrival instant (they did arrive together) or with each
// payload's service instant (the pre-coalescing behavior, where later
// payloads of one envelope look younger than they are)?
//
// The ablation runs a deliberately contended bank (few hot accounts, Zipf
// writes) under Offset-Greedy — the one policy whose priorities are derived
// from the DTM-side timestamp — on the coalescing plane, across a seed
// matrix. Per seed it reports both arms' throughput and commit rate plus
// the commit-order divergence: the L1 distance between the two arms'
// per-core commit distributions, normalized by total commits. The sim
// backend makes both arms exactly reproducible, so any divergence is
// attributable to the stamping instant alone.
func ablArrival(sc Scale, ov Overrides) []*Table {
	accounts := sc.div(128, 16)
	t := &Table{
		ID:    "ablarrival",
		Title: fmt.Sprintf("Offset-Greedy stamping instant: service vs envelope arrival (%d accounts, zipf 1.2, coalescing)", accounts),
		Columns: []string{
			"seed",
			"tput/svc", "tput/arr",
			"commit%/svc", "commit%/arr",
			"aborts/svc", "aborts/arr",
			"order-div",
		},
	}
	cores := 16
	for _, n := range sc.Cores {
		if n <= 24 && n > cores {
			cores = n
		}
	}
	run := func(seed uint64, arrival bool) *struct {
		tput, rate float64
		aborts     uint64
		perCore    []uint64
	} {
		o := ov
		o.Coalesce = true
		o.ArrivalStamp = arrival
		c := defaultSys(cores)
		c.pol = cm.OffsetGreedy
		c.seed = seed
		st, _ := bankRun(sc, o, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
			return b.ZipfTransferWorker(10, 1.2)
		})
		per := make([]uint64, len(st.PerCore))
		for i, pc := range st.PerCore {
			per[i] = pc.Commits
		}
		return &struct {
			tput, rate float64
			aborts     uint64
			perCore    []uint64
		}{perMs(st.Ops, st.Duration), st.CommitRate(), st.Aborts, per}
	}
	for seed := uint64(1); seed <= 5; seed++ {
		svc := run(sc.Seed*100+seed, false)
		arr := run(sc.Seed*100+seed, true)
		var l1, total uint64
		for i := range svc.perCore {
			a, b := svc.perCore[i], uint64(0)
			if i < len(arr.perCore) {
				b = arr.perCore[i]
			}
			if a > b {
				l1 += a - b
			} else {
				l1 += b - a
			}
			total += a
		}
		div := 0.0
		if total > 0 {
			div = float64(l1) / float64(total)
		}
		t.AddRow(int(seed), svc.tput, arr.tput, svc.rate, arr.rate, svc.aborts, arr.aborts, div)
	}
	t.Notes = append(t.Notes,
		"order-div: L1 distance between the arms' per-core commit distributions / total commits of the service arm",
		"the two arms are bit-identical sim runs differing only in Config.ArrivalStamp")
	return []*Table{t}
}

package exp

import (
	"fmt"

	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Overrides are cross-cutting knobs applied to every system an experiment
// builds. They are threaded explicitly through Experiment.Run — there are
// no mutable package globals — so experiments are reentrant: overlapping
// runs (e.g. live-backend runs racing sim runs in tests) cannot observe
// each other's settings.
type Overrides struct {
	// SerialRPC forces serial (non-scatter-gather) commit-time lock
	// acquisition — wired to the -serialrpc flag of cmd/tm2c-bench for
	// A/B-ing any figure against the pre-RPC-layer behavior. The ablrpc
	// ablation compares both modes itself; under the flag its scatter rows
	// degenerate to serial.
	SerialRPC bool
	// Placement, when non-nil, overrides the placement policy — wired to
	// the -placement flag for A/B-ing any figure across policies. The
	// ablplace ablation compares the policies itself; under the flag its
	// rows all run the forced policy.
	Placement *placement.Kind
	// ReadOnly runs every bank balance scan (and zipf hot-read audit) as a
	// declared ReadOnly transaction instead of a Normal one — wired to the
	// -readonly flag for A/B-ing the bank figures against the read-only
	// fast path. The ablro ablation compares both kinds itself.
	ReadOnly bool
	// Coalesce enables the coalescing message plane (Config.Coalesce) in
	// every system an experiment builds — wired to the -coalesce flag for
	// A/B-ing any figure against the batched transport. The ablbatch
	// ablation compares both planes itself; under the flag its uncoalesced
	// rows degenerate to coalesced ones.
	Coalesce bool
	// AdaptiveFlush enables size/age-triggered outbox emission
	// (Config.AdaptiveFlush) in every system an experiment builds — wired
	// to the -adaptiveflush flag. It implies Coalesce: adaptive flush is a
	// policy over staged envelopes, so there is nothing for it to defer on
	// the uncoalesced plane. The ablbatch ablation compares the three
	// transport modes (off/on/adaptive) itself.
	AdaptiveFlush bool
	// Backend selects the execution backend every system runs on — wired
	// to the -backend flag. On BackendLive durations are wall-clock and
	// throughput columns read ops per wall millisecond. The fig8a
	// ping-pong microbenchmark measures the simulator's timing model and
	// always runs on sim.
	Backend core.Backend
	// Protocol selects the read-visibility protocol (visible reads vs
	// invisible-read TL2) in every system an experiment builds — wired to
	// the -protocol flag for A/B-ing any figure. The abltl2 ablation
	// compares both protocols itself; under the flag its visible rows
	// degenerate to the forced protocol. The zero value is the visible
	// default, so existing experiments (and their pinned fingerprints) are
	// untouched.
	Protocol core.Protocol
	// Trace, when non-nil, enables the flight recorder (Config.Trace) in
	// every system an experiment builds — wired to the -trace-dir flag of
	// cmd/tm2c-bench. Options.Sink receives each run's merged trace; nil
	// Trace keeps the recorder compiled out (a nil check per emit site).
	Trace *trace.Options
	// Net places every system this process builds within a cross-process
	// group (Config.Net); applied only under Backend == BackendNet. The
	// template's Session should be -1 so each constructed system draws the
	// next per-process session, which stays aligned across ranks because
	// every rank runs the identical experiment sequence.
	Net *core.NetConfig
	// ArrivalStamp timestamps contending payloads at envelope arrival
	// instead of the per-payload service instant (Config.ArrivalStamp) —
	// the ablarrival ablation quantifies the commit-order difference this
	// makes to timestamp-priority contention managers.
	ArrivalStamp bool
}

// sysConfig carries the per-run knobs shared by the experiment helpers.
type sysConfig struct {
	pl        noc.Platform
	total     int
	svc       int // 0 = default split, -1 = raw only
	dep       core.Deployment
	pol       cm.Policy
	acq       core.AcquireMode
	batch     bool // false disables write-lock batching
	serialRPC bool // true disables commit-time scatter-gather
	coalesce  bool // true enables the coalescing message plane
	adaptive  bool // true enables adaptive outbox flush (implies coalesce)
	gran      int
	place     placement.Kind
	repEpoch  int // adaptive placement epoch length (0 = default)
	protocol  core.Protocol
	seed      uint64
}

func defaultSys(total int) sysConfig {
	return sysConfig{pl: noc.SCC(0), total: total, pol: cm.FairCM, batch: true}
}

func (c sysConfig) build(ov Overrides) *core.System {
	cfg := core.Config{
		Platform:         c.pl,
		Backend:          ov.Backend,
		Seed:             c.seed,
		TotalCores:       c.total,
		ServiceCores:     c.svc,
		Deployment:       c.dep,
		Policy:           c.pol,
		Acquire:          c.acq,
		NoBatching:       !c.batch,
		SerialRPC:        c.serialRPC || ov.SerialRPC,
		Coalesce:         c.coalesce || ov.Coalesce,
		AdaptiveFlush:    c.adaptive || ov.AdaptiveFlush,
		LockGranule:      c.gran,
		Placement:        c.place,
		RepartitionEpoch: c.repEpoch,
		Protocol:         c.protocol,
	}
	if cfg.AdaptiveFlush {
		cfg.Coalesce = true // adaptive flush is a policy over staged envelopes
	}
	if ov.Placement != nil {
		cfg.Placement = *ov.Placement
	}
	if ov.Protocol != core.ProtocolVisible {
		cfg.Protocol = ov.Protocol
	}
	cfg.Trace = ov.Trace
	cfg.ArrivalStamp = ov.ArrivalStamp
	if ov.Net != nil && cfg.Backend == core.BackendNet {
		// Every build gets its own copy: normalization must not mutate the
		// caller's template across runs.
		n := *ov.Net
		cfg.Net = &n
	}
	s, err := core.NewSystem(cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: bad system config: %v", err))
	}
	return s
}

// perMs converts an ops count over a virtual duration to ops per virtual ms.
func perMs(ops uint64, d sim.Time) float64 {
	if d == 0 {
		return 0
	}
	return float64(ops) / (float64(d) / 1e6)
}

// ratio guards against division by zero.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// halfSplit returns the dedicated service-core count used by the paper for
// a given total (half the cores, at least one of each).
func halfSplit(total int) int {
	s := total / 2
	if s < 1 {
		s = 1
	}
	if s >= total {
		s = total - 1
	}
	return s
}

package exp

import (
	"fmt"

	"repro/internal/apps/bank"
	"repro/internal/core"
)

func init() {
	register("ablro", "Ablation: declared read-only transactions vs normal transactions (bank balance mixes)", ablRO)
}

// ablRO measures what the declared read-only transaction kind buys on the
// bank's balance-heavy mixes. A balance scan has an empty write set either
// way, so it never sends write-lock requests — the declared kind's gains
// are the skipped commit bookkeeping (its commit is just the release
// burst), the skipped write-set allocation, and the static no-write
// guarantee. The effect therefore scales with the fraction and length of
// the scans, which is exactly what the mix sweep shows.
func ablRO(sc Scale, ov Overrides) []*Table {
	accounts := sc.div(1024, 64)
	t := &Table{
		ID:      "ablro",
		Title:   fmt.Sprintf("Declared read-only vs normal balance scans, %d accounts, 48 cores", accounts),
		Columns: []string{"balance %", "kind", "ops/ms", "commit %", "ro commits", "commit rt/commit"},
	}
	for _, balPct := range []int{20, 50, 100} {
		for _, ro := range []bool{false, true} {
			ro := ro
			c := defaultSys(48)
			c.seed = sc.Seed
			st, _ := bankRun(sc, ov, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
				b.UseReadOnlyBalance(ro)
				return b.TransferWorker(balPct)
			})
			kind := "normal"
			if ro {
				kind = "read-only"
			}
			rtPerCommit := 0.0
			if st.Commits > 0 {
				rtPerCommit = float64(st.CommitRoundTrips) / float64(st.Commits)
			}
			t.AddRow(fmt.Sprintf("%d%%", balPct), kind,
				perMs(st.Ops, st.Duration), st.CommitRate(), st.ReadOnlyCommits, rtPerCommit)
		}
	}
	t.Notes = append(t.Notes,
		"a balance scan sends no write-lock requests under either kind (empty write set); the declared kind drops the commit bookkeeping and write-set allocation on top",
		"commit round trips per commit fall as the read-only share of commits rises — read-only commits contribute zero")
	return []*Table{t}
}

package exp

import (
	"fmt"
	"time"

	"repro/internal/apps/bank"
	"repro/internal/apps/hashset"
	"repro/internal/core"
	"repro/internal/placement"
)

// Ablations beyond the paper's figures: each isolates one design decision
// that DESIGN.md calls out.

func init() {
	register("ablbatch", "Ablation: message-plane coalescing x write-lock batching (scatter-write transactions)", ablBatch)
	register("ablpoll", "Ablation: sensitivity to the per-peer polling cost (the Fig.8a mechanism)", ablPoll)
	register("ablgran", "Ablation: lock granularity vs false conflicts (bank)", ablGran)
	register("ablrpc", "Ablation: serial vs scatter-gather commit lock acquisition vs DTM node count", ablRPC)
	register("ablplace", "Ablation: placement policy (hash/range/adaptive) across workload skew (bank)", ablPlace)
}

// ablBatch compares the two batching layers of the message plane on a
// contended scatter-write workload: protocol-level write-lock batching
// (§3.3, one request per responsible DTM node; Config.NoBatching disables
// it) against transport-level coalescing (Config.Coalesce, port.Outbox:
// payloads sharing a destination within one burst share a wire message,
// charged noc.BatchDelay's one-fixed-cost-per-envelope model). The headline
// is the batching-off pair: coalescing re-merges the per-object requests
// AND the per-request responses at the transport, recovering most of the
// protocol batching win without protocol knowledge. With protocol batching
// on, every burst is already one payload per node and plain coalescing
// finds little to merge — the planes compose, they do not stack. The third
// transport mode, adaptive flush (Config.AdaptiveFlush), closes that gap:
// fire-and-forget envelopes below the platform's bytes-per-fixed-cost
// sweet spot are held back at soft flush points and merge into the next
// burst to the same node, so coalescing pays off even when protocol
// batching has already merged each burst.
func ablBatch(sc Scale, ov Overrides) []*Table {
	run := func(total, svc int, batching bool, mode string) *core.Stats {
		c := defaultSys(total)
		c.svc = svc
		c.batch = batching
		c.coalesce = mode != "off"
		c.adaptive = mode == "adaptive"
		c.seed = sc.Seed
		s := c.build(ov)
		const words = 4096
		arr := core.NewTArray(s, core.Uint64Codec(), words, 0)
		s.SpawnWorkers(func(rt *core.Runtime) {
			r := rt.Rand()
			for !rt.Stopped() {
				rt.Run(func(tx *core.Tx) {
					for i := 0; i < 16; i++ {
						arr.Set(tx, r.Intn(words), uint64(i))
					}
				})
				rt.AddOps(1)
			}
		})
		return s.Run(sc.Duration)
	}
	onOff := func(v bool) string {
		if v {
			return "on"
		}
		return "off"
	}

	grid := &Table{
		ID:      "ablbatch",
		Title:   "Message plane: protocol batching x transport coalescing (off/on/adaptive), 16-object scatter-write transactions, 48 cores (36 app + 12 DTM)",
		Columns: []string{"batching", "coalesce", "ops/ms", "wire msgs", "wire/op", "payloads/wire", "write-lock msgs"},
	}
	for _, batching := range []bool{true, false} {
		for _, mode := range []string{"off", "on", "adaptive"} {
			st := run(48, 12, batching, mode)
			grid.AddRow(onOff(batching), mode, perMs(st.Ops, st.Duration),
				st.WireMsgs, ratio(float64(st.WireMsgs), float64(st.Ops)),
				st.PayloadsPerWireMsg(), st.WriteLockReqs)
		}
	}
	grid.Notes = append(grid.Notes,
		"batching requests all locks owned by one DTM node in a single message (§3.3): at most one write-lock message per DTM node instead of one per object",
		"coalescing merges same-destination payloads of one burst into a single wire envelope (port.Outbox), paying the fixed send/receive/hop cost once per envelope (noc.BatchDelay)",
		"headline: with protocol batching off, coalescing recovers the win at the transport layer — per-object requests re-merge per node and the node's per-request grants re-merge per core",
		"adaptive flush defers sub-threshold fire-and-forget envelopes (releases) at soft flush points until the size or age trigger fires, merging them into the next burst to the same node — the mode that makes coalescing pay on the batching-on plane too")

	scale := &Table{
		ID:      "ablbatch-scale",
		Title:   "Transport coalescing across core counts (protocol batching off)",
		Columns: []string{"cores", "coalesce", "ops/ms", "wire msgs", "wire/op", "payloads/wire"},
	}
	for _, n := range sc.Cores {
		for _, mode := range []string{"off", "on"} {
			st := run(n, 0, false, mode)
			scale.AddRow(n, mode, perMs(st.Ops, st.Duration),
				st.WireMsgs, ratio(float64(st.WireMsgs), float64(st.Ops)),
				st.PayloadsPerWireMsg())
		}
	}
	scale.Notes = append(scale.Notes,
		"wire/op normalizes wire traffic to completed operations — the comparable metric on the live backend, where each row's wall-clock window covers a different amount of work",
		"more cores spread the 16-object write set over more DTM nodes, shrinking each per-node group; the coalescing win narrows but never inverts")
	return []*Table{grid, scale}
}

func ablPoll(sc Scale, ov Overrides) []*Table {
	t := &Table{
		ID:      "ablpoll",
		Title:   "Per-peer polling cost sensitivity: bank 100% transfers, 48 cores (ops/ms)",
		Columns: []string{"poll scale", "poll/peer", "ops/ms"},
	}
	accounts := sc.div(1024, 64)
	base := defaultSys(48)
	for _, scale := range []float64{0, 0.5, 1, 2, 4} {
		c := base
		c.pl.PollPerPeer = time.Duration(float64(c.pl.PollPerPeer) * scale)
		c.seed = sc.Seed
		st, _ := bankRun(sc, ov, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
			return b.TransferWorker(0)
		})
		t.AddRow(fmt.Sprintf("%.1fx", scale), c.pl.PollPerPeer.String(), perMs(st.Ops, st.Duration))
	}
	t.Notes = append(t.Notes,
		"the polling cost is the mechanism behind the SCC's latency degradation in Fig.8(a): removing it makes messaging — and TM2C — scale almost linearly")
	return []*Table{t}
}

// ablRPC compares commit-time write-lock acquisition strategies as the
// write set spreads over more DTM nodes: serial (one awaited round trip per
// responsible node, Config.SerialRPC) against scatter-gather (all per-node
// batches in flight at once, one awaited gather phase; the default).
func ablRPC(sc Scale, ov Overrides) []*Table {
	t := &Table{
		ID:      "ablrpc",
		Title:   "Commit RPC: serial vs scatter-gather lock acquisition, 8-object scatter writes, 16 app cores",
		Columns: []string{"dtm nodes", "mode", "ops/ms", "awaited rt/commit", "mean commit latency"},
	}
	const words = 2048
	for _, svc := range []int{2, 4, 8, 16} {
		for _, serial := range []bool{true, false} {
			c := defaultSys(16 + svc)
			c.svc = svc
			c.serialRPC = serial
			c.seed = sc.Seed
			s := c.build(ov)
			arr := core.NewTArray(s, core.Uint64Codec(), words, 0)
			s.SpawnWorkers(func(rt *core.Runtime) {
				r := rt.Rand()
				for !rt.Stopped() {
					rt.Run(func(tx *core.Tx) {
						for i := 0; i < 8; i++ {
							arr.Set(tx, r.Intn(words), uint64(i))
						}
					})
					rt.AddOps(1)
				}
			})
			st := s.Run(sc.Duration)
			mode := "scatter"
			if serial {
				mode = "serial"
			}
			rtPerCommit := 0.0
			if st.Commits > 0 {
				rtPerCommit = float64(st.CommitRoundTrips) / float64(st.Commits)
			}
			t.AddRow(svc, mode, perMs(st.Ops, st.Duration), rtPerCommit, s.CommitLatency.Mean().Duration())
		}
	}
	t.Notes = append(t.Notes,
		"a lazy commit touching k DTM nodes pays k serial round trips under SerialRPC but a single awaited gather phase under scatter-gather (correlation-tagged RPC, rpc.go)",
		"rt/commit counts awaited commit-phase round-trip phases over committed transactions; aborted attempts contribute phases but no commits")
	return []*Table{t}
}

// ablPlace compares the three placement policies (internal/placement)
// across access skew on two bank workloads. The headline is the hot-read
// mix: skewed reads take shared read locks, so the skew creates no data
// conflicts — only service load concentrated on the DTM nodes owning the
// hot accounts, which is exactly the imbalance placement can and cannot
// fix. The transfer companion shows the conflict-bound regime, where the
// hot keys conflict no matter which node arbitrates them and every policy
// converges.
func ablPlace(sc Scale, ov Overrides) []*Table {
	policies := []placement.Kind{placement.Hash, placement.Range, placement.Adaptive}
	skews := []float64{0, 0.9, 1.25}
	label := func(theta float64) string {
		if theta == 0 {
			return "uniform"
		}
		return fmt.Sprintf("zipf-%.2g", theta)
	}

	hot := &Table{
		ID:      "ablplace",
		Title:   "Placement vs read skew: bank hot-read mix (90% 12-account audits, 10% transfers), 48 cores, 6 DTM nodes",
		Columns: []string{"skew", "policy", "ops/ms", "commit %", "node imbalance", "migrations", "stale nacks"},
	}
	accounts := sc.div(4096, 256)
	for _, theta := range skews {
		for _, k := range policies {
			c := defaultSys(48)
			c.svc = 6
			c.place = k
			c.repEpoch = 1024 // adapt within even the quick scale's window
			c.seed = sc.Seed
			st, _ := bankRun(sc, ov, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
				return b.HotReadWorker(10, 12, theta)
			})
			hot.AddRow(label(theta), k.String(), perMs(st.Ops, st.Duration), st.CommitRate(),
				st.LoadImbalance(), st.Migrations, st.StaleNacks)
		}
	}
	hot.Notes = append(hot.Notes,
		"node imbalance = max/mean served requests across DTM nodes (1 = perfectly balanced)",
		"range places contiguous accounts on one node, so Zipf heat (hot ranks = low addresses) piles onto a single DTM node and its queue bounds throughput; adaptive migrates hot stripes back out via the epoch/NACK remap protocol and tracks hash's balance or better",
		"migrations count stripe moves initiated by the directory; stale nacks are requests that chased a moving stripe and re-resolved")

	xfer := &Table{
		ID:      "ablplace-xfer",
		Title:   "Placement vs write skew: bank 100% Zipf transfers, 32 cores (conflict-bound regime)",
		Columns: []string{"skew", "policy", "ops/ms", "commit %", "node imbalance", "migrations"},
	}
	xaccounts := sc.div(2048, 128)
	for _, theta := range []float64{0, 0.9} {
		for _, k := range policies {
			c := defaultSys(32)
			c.place = k
			c.seed = sc.Seed
			st, _ := bankRun(sc, ov, c, xaccounts, func(b *bank.Bank) func(*core.Runtime) {
				return b.ZipfTransferWorker(0, theta)
			})
			xfer.AddRow(label(theta), k.String(), perMs(st.Ops, st.Duration), st.CommitRate(),
				st.LoadImbalance(), st.Migrations)
		}
	}
	xfer.Notes = append(xfer.Notes,
		"skewed writes conflict on the hot accounts themselves, so no placement can lift the commit rate: the policies converge and the remap protocol's only job is to not make things worse")
	return []*Table{hot, xfer}
}

func ablGran(sc Scale, ov Overrides) []*Table {
	t := &Table{
		ID:      "ablgran",
		Title:   "Lock granularity: hash table 20% updates, 48 cores",
		Columns: []string{"granule (words)", "ops/ms", "commit rate %", "conflicts"},
	}
	for _, g := range []int{1, 4, 16} {
		c := defaultSys(48)
		c.gran = g
		c.seed = sc.Seed
		st := hashRun(sc, ov, c, sc.div(128, 8), 4, hashset.Workload{UpdatePct: 20})
		t.AddRow(g, perMs(st.Ops, st.Duration), st.CommitRate(), st.Conflicts)
	}
	t.Notes = append(t.Notes,
		"coarser lock stripes save lock-table state but manufacture false conflicts between unrelated objects (TM2C locks per byte; we lock per word)")
	return []*Table{t}
}

package exp

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// tiny is the cheapest scale that still exercises every code path.
var tiny = Scale{Duration: 800 * time.Microsecond, SizeDiv: 16, Cores: []int{4, 8}, Seed: 3}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"settings", "fig4a", "fig4b", "fig4c",
		"fig5a", "fig5b", "fig5c", "fig5d",
		"fig6a", "fig6b", "fig7a", "fig7b",
		"fig8a", "fig8b", "fig8c", "fig8d",
		"ablbatch", "ablpoll", "ablgran", "ablrpc", "ablplace", "ablro", "abltl2",
		"ablarrival", "extskip", "extirrev", "scaleplace",
	}
	ids := IDs()
	for _, w := range want {
		found := false
		for _, id := range ids {
			if id == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("experiment %q not registered", w)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d (%v)", len(ids), len(want), ids)
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig5a"); !ok {
		t.Fatal("fig5a missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID:      "demo",
		Title:   "Demo",
		Columns: []string{"x", "y"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("wide-label", 12345.0)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"## demo", "x", "y", "wide-label", "12345", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	sb.Reset()
	tab.CSV(&sb)
	if !strings.HasPrefix(sb.String(), "x,y\n1,2.500\n") {
		t.Errorf("csv output:\n%s", sb.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{0: "0", 0.5: "0.500", 42.42: "42.4", 1234567: "1234567"}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestEveryExperimentRunsAtTinyScale smoke-runs the full registry and
// validates the result tables are well-formed.
func TestEveryExperimentRunsAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("tiny sweep still takes a few seconds")
	}
	for _, e := range All {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(tiny, Overrides{})
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if tab.ID == "" || tab.Title == "" {
					t.Errorf("table missing ID/title: %+v", tab)
				}
				if len(tab.Rows) == 0 {
					t.Errorf("table %s has no rows", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("table %s row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
					}
				}
			}
		})
	}
}

// Qualitative shape checks at a small but meaningful scale. Generous
// tolerances: these assert orderings, not magnitudes.
func TestShapeDedicatedBeatsMultitask(t *testing.T) {
	sc := Scale{Duration: 3 * time.Millisecond, SizeDiv: 8, Cores: []int{48}, Seed: 5}
	tabs := fig4a(sc, Overrides{})
	row := tabs[0].Rows[len(tabs[0].Rows)-1]
	multi, ded := row[1], row[3] // lf2 columns
	if parse(t, ded) <= parse(t, multi) {
		t.Errorf("dedicated (%s) should beat multitask (%s) at 48 cores", ded, multi)
	}
}

func TestShapeElasticReadWins(t *testing.T) {
	sc := Scale{Duration: 4 * time.Millisecond, SizeDiv: 16, Cores: []int{16}, Seed: 5}
	tabs := fig7b(sc, Overrides{})
	row := tabs[0].Rows[0]
	if parse(t, row[1]) <= 1.0 {
		t.Errorf("elastic-read speedup over normal = %s, want > 1", row[1])
	}
}

func TestShapeFairCMThrottlesBalanceCore(t *testing.T) {
	sc := Scale{Duration: 6 * time.Millisecond, SizeDiv: 8, Cores: []int{16}, Seed: 5}
	tabs := fig5c(sc, Overrides{})
	row := tabs[0].Rows[0] // columns: cores, wholly, offset-greedy, faircm, backoff
	wholly, faircm := parse(t, row[1]), parse(t, row[3])
	if faircm <= wholly {
		t.Errorf("FairCM (%v) should beat Wholly (%v) with one balance core", faircm, wholly)
	}
}

// TestShapeScatterGatherCutsRoundTrips checks the ablrpc headline: for lazy
// write sets spanning several DTM nodes, scatter-gather awaits strictly
// fewer commit-phase round trips per commit than serial acquisition, at
// every DTM node count.
func TestShapeScatterGatherCutsRoundTrips(t *testing.T) {
	sc := Scale{Duration: 2 * time.Millisecond, SizeDiv: 8, Cores: []int{8}, Seed: 5}
	tabs := ablRPC(sc, Overrides{})
	rows := tabs[0].Rows // (serial, scatter) row pairs per node count
	if len(rows) == 0 || len(rows)%2 != 0 {
		t.Fatalf("ablrpc produced %d rows, want non-empty pairs", len(rows))
	}
	for i := 0; i+1 < len(rows); i += 2 {
		serialRT, scatterRT := parse(t, rows[i][3]), parse(t, rows[i+1][3])
		if scatterRT >= serialRT {
			t.Errorf("%s dtm nodes: scatter rt/commit %v, serial %v: want strict reduction",
				rows[i][0], scatterRT, serialRT)
		}
	}
}

// TestShapeTL2KillsReadTraffic checks the abltl2 headline at shape scale:
// on both read-mostly workloads TL2 sends at least 60% fewer wire messages
// per operation than the visible protocol — the per-read round trips are
// the traffic, and TL2 deletes them.
func TestShapeTL2KillsReadTraffic(t *testing.T) {
	sc := Scale{Duration: 3 * time.Millisecond, SizeDiv: 8, Cores: []int{48}, Seed: 5}
	tabs := ablTL2(sc, Overrides{})
	rows := tabs[0].Rows // (visible, tl2) row pairs per workload
	if len(rows) == 0 || len(rows)%2 != 0 {
		t.Fatalf("abltl2 produced %d rows, want non-empty pairs", len(rows))
	}
	for i := 0; i+1 < len(rows); i += 2 {
		if rows[i][1] != "visible" || rows[i+1][1] != "tl2" {
			t.Fatalf("row pair %d is (%s, %s), want (visible, tl2)", i, rows[i][1], rows[i+1][1])
		}
		visWire, tl2Wire := parse(t, rows[i][3]), parse(t, rows[i+1][3])
		if tl2Wire > 0.4*visWire {
			t.Errorf("%s: tl2 wire/op %v vs visible %v: reduction below 60%%",
				rows[i][0], tl2Wire, visWire)
		}
	}
}

// TestShapeAdaptivePlacementTracksHashUnderSkew checks the ablplace
// headline on its skewed hot-read rows: range's contiguous placement piles
// the Zipf heat onto one DTM node and pays for it, while adaptive stays at
// least competitive with hash (generous margin — the two are typically
// within a few percent, with adaptive ahead).
func TestShapeAdaptivePlacementTracksHashUnderSkew(t *testing.T) {
	sc := Scale{Duration: 4 * time.Millisecond, SizeDiv: 4, Cores: []int{48}, Seed: 5}
	tabs := ablPlace(sc, Overrides{})
	rows := tabs[0].Rows // triples: hash, range, adaptive per skew level
	if len(rows)%3 != 0 {
		t.Fatalf("ablplace produced %d rows, want policy triples", len(rows))
	}
	for i := 0; i+2 < len(rows); i += 3 {
		skew := rows[i][0]
		hash, rng, adaptive := parse(t, rows[i][2]), parse(t, rows[i+1][2]), parse(t, rows[i+2][2])
		if adaptive < 0.9*hash {
			t.Errorf("%s: adaptive %.1f ops/ms fell >10%% behind hash %.1f", skew, adaptive, hash)
		}
		if skew != "uniform" && rng > 0.85*hash {
			t.Errorf("%s: range %.1f ops/ms should trail hash %.1f — skewed heat on one node", skew, rng, hash)
		}
	}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

// TestShapeCoalescingRecoversBatchingWin checks the ablbatch headline: with
// protocol batching off, transport coalescing must cut wire messages by at
// least 20% on the contended scatter-write workload (the acceptance bar of
// the message-plane refactor), and with protocol batching on it must not
// inflate them by more than noise — while adaptive flush must make the
// coalescing transport WIN on that plane, where plain coalescing finds
// nothing left to merge.
func TestShapeCoalescingRecoversBatchingWin(t *testing.T) {
	sc := Scale{Duration: 2 * time.Millisecond, SizeDiv: 8, Cores: []int{8}, Seed: 5}
	tabs := ablBatch(sc, Overrides{})
	rows := tabs[0].Rows // (batching, mode) grid: on x off/on/adaptive, off x off/on/adaptive
	if len(rows) != 6 {
		t.Fatalf("ablbatch grid has %d rows, want 6", len(rows))
	}
	batchedOff, batchedOn, batchedAdpt := parse(t, rows[0][3]), parse(t, rows[1][3]), parse(t, rows[2][3])
	plainOff, plainOn, plainAdpt := parse(t, rows[3][3]), parse(t, rows[4][3]), parse(t, rows[5][3])
	if plainOn > 0.8*plainOff {
		t.Errorf("batching off: coalescing sent %.0f wire msgs vs %.0f — want >= 20%% reduction", plainOn, plainOff)
	}
	if batchedOn > 1.05*batchedOff {
		t.Errorf("batching on: coalescing inflated wire msgs %.0f vs %.0f", batchedOn, batchedOff)
	}
	if batchedAdpt >= batchedOff {
		t.Errorf("batching on: adaptive flush sent %.0f wire msgs vs %.0f uncoalesced — the deferral must win this plane", batchedAdpt, batchedOff)
	}
	if plainAdpt >= plainOn {
		t.Errorf("batching off: adaptive flush sent %.0f wire msgs vs %.0f plain coalescing — deferral found nothing extra to merge", plainAdpt, plainOn)
	}
	// payloads/wire must exceed 1 exactly where merging happens.
	if ppw := parse(t, rows[4][5]); ppw <= 1.1 {
		t.Errorf("batching off + coalesce: payloads/wire = %.3f, want > 1.1", ppw)
	}
}

package exp

import (
	"fmt"

	"repro/internal/noc"
)

func init() {
	registerSimOnly("settings", "SCC performance settings table (§5.1) and derived model parameters", settingsTable)
}

func settingsTable(Scale, Overrides) []*Table {
	t := &Table{
		ID:      "settings",
		Title:   "SCC performance settings (frequencies in MHz, §5.1)",
		Columns: []string{"setting", "tile", "mesh", "DRAM"},
	}
	for _, s := range noc.Settings {
		t.AddRow(s.ID, s.Tile, s.Mesh, s.DRAM)
	}

	d := &Table{
		ID:      "settings-derived",
		Title:   "Derived simulator parameters per setting",
		Columns: []string{"setting", "send+recv", "per hop", "poll/peer", "mem base", "2-core RT"},
	}
	for i := range noc.Settings {
		pl := noc.SCC(i)
		rt := pl.MsgDelay(0, 1, 16, 1) + pl.MsgDelay(1, 0, 16, 1)
		d.AddRow(i,
			(pl.SendOverhead + pl.RecvOverhead).String(),
			pl.PerHop.String(),
			pl.PollPerPeer.String(),
			pl.MemBase.String(),
			rt.String(),
		)
	}
	d.Notes = append(d.Notes,
		fmt.Sprintf("setting 0 is calibrated to the paper's 5.1µs 2-core round trip; Opteron compute scale %.3f",
			noc.Opteron().ComputeScale))
	return []*Table{t, d}
}

// Package exp regenerates every table and figure of the paper's evaluation
// (§5-§7). Each experiment is registered under the paper's figure ID
// (fig4a ... fig8d, settings) plus ablations beyond the paper (ablbatch,
// ablpoll, ablgran, ablrpc, ablplace, ablro), and produces one or more
// text tables whose rows correspond to the points of the original plot.
//
// Experiments run at a configurable Scale: the Full scale uses the paper's
// structure sizes; smaller scales shrink data structures, input sizes and
// the measurement window so the whole suite stays cheap enough for CI and
// `go test -bench`. Shapes (who wins, where the curves cross) are preserved
// across scales; see EXPERIMENTS.md for the recorded full-scale results.
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Scale controls the cost of an experiment run.
type Scale struct {
	// Duration is the virtual measurement window per data point.
	Duration time.Duration
	// SizeDiv divides data-structure sizes and the MapReduce input
	// (which is additionally pre-scaled from the paper's gigabytes).
	SizeDiv int
	// Cores is the total-core sweep of the x-axes.
	Cores []int
	// Seed drives all randomness.
	Seed uint64
	// Objects, when non-zero, overrides the per-experiment default object
	// count of the experiments that have a scale dimension (scaleplace).
	// SizeDiv does not apply to it: Large pins the count directly.
	Objects int
}

// Full approximates the paper's parameters (minutes of wall-clock time).
var Full = Scale{Duration: 40 * time.Millisecond, SizeDiv: 1, Cores: []int{2, 4, 8, 16, 32, 48}, Seed: 1}

// Default is a balanced scale for interactive use.
var Default = Scale{Duration: 15 * time.Millisecond, SizeDiv: 2, Cores: []int{2, 4, 8, 16, 32, 48}, Seed: 1}

// Quick is the CI/bench scale: small structures, short windows.
var Quick = Scale{Duration: 3 * time.Millisecond, SizeDiv: 8, Cores: []int{2, 8, 24, 48}, Seed: 1}

// Large opens the scale dimension beyond the paper's 48-core SCC: a
// million-object working set on a 256-core mesh. Only the experiments with
// a scale dimension (scaleplace) react to Objects and to core counts above
// 48; the figure experiments stay within the paper's platform.
var Large = Scale{Duration: 120 * time.Millisecond, SizeDiv: 1, Cores: []int{256}, Seed: 1, Objects: 1 << 20}

// div scales a size down, with a floor.
func (sc Scale) div(n, floor int) int {
	v := n / sc.SizeDiv
	if v < floor {
		return floor
	}
	return v
}

// Table is one rendered result grid. The first column is the x-axis. The
// json tags define the schema of tm2c-bench's BENCH_<id>.json files.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// AddRow appends a formatted row; cells may be strings or numbers.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case int:
			row[i] = fmt.Sprintf("%d", v)
		case uint64:
			row[i] = fmt.Sprintf("%d", v)
		case time.Duration:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Experiment is one registered reproduction target. Run executes it at
// the given scale under the given cross-cutting overrides (see Overrides);
// experiments hold no mutable global state, so concurrent Run calls with
// different overrides are safe.
type Experiment struct {
	ID    string
	Title string
	// SimOnly marks experiments Overrides.Backend does not apply to: they
	// measure the simulator's timing model itself (fig8a's ping-pong) or
	// execute nothing at all (the settings table). Consumers of bench
	// results use it to attribute the numbers to the backend that actually
	// produced them.
	SimOnly bool
	Run     func(Scale, Overrides) []*Table
}

// All lists every experiment in paper order.
var All []*Experiment

func register(id, title string, run func(Scale, Overrides) []*Table) {
	All = append(All, &Experiment{ID: id, Title: title, Run: run})
}

// registerSimOnly registers an experiment that always runs on the sim
// backend regardless of Overrides.Backend.
func registerSimOnly(id, title string, run func(Scale, Overrides) []*Table) {
	All = append(All, &Experiment{ID: id, Title: title, SimOnly: true, Run: run})
}

// ByID finds an experiment.
func ByID(id string) (*Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return nil, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	ids := make([]string, len(All))
	for i, e := range All {
		ids[i] = e.ID
	}
	return ids
}

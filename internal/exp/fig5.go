package exp

import (
	"fmt"

	"repro/internal/apps/bank"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/sim"
)

func init() {
	register("fig5a", "Bank: with vs without contention management (20% balance / 80% transfer)", fig5a)
	register("fig5b", "Bank: throughput for various numbers of service cores (48 total)", fig5b)
	register("fig5c", "Bank: contention managers with one balance core among transfer cores", fig5c)
	register("fig5d", "Bank: single global lock vs transactions (2048 accounts)", fig5d)
}

// bankRun runs the transactional bank with the given worker assignment.
// The worker factory runs after the Overrides.ReadOnly default is applied,
// so an ablation can still pick the balance-scan kind per row.
func bankRun(sc Scale, ov Overrides, c sysConfig, accounts int, worker func(*bank.Bank) func(*core.Runtime)) (*core.Stats, *bank.Bank) {
	s := c.build(ov)
	b := bank.New(s, accounts)
	b.UseReadOnlyBalance(ov.ReadOnly)
	s.SpawnWorkers(worker(b))
	st := s.Run(sc.Duration)
	return st, b
}

func fig5a(sc Scale, ov Overrides) []*Table {
	accounts := sc.div(1024, 64)
	tput := &Table{
		ID:      "fig5a",
		Title:   fmt.Sprintf("Bank throughput (ops/ms), %d accounts, 20%% balance", accounts),
		Columns: []string{"cores", "wholly", "offset-greedy", "faircm", "backoff", "no-cm"},
	}
	rate := &Table{
		ID:      "fig5a-commit",
		Title:   "Bank commit rate (%)",
		Columns: []string{"cores", "wholly", "offset-greedy", "faircm", "backoff", "no-cm"},
	}
	policies := []cm.Policy{cm.Wholly, cm.OffsetGreedy, cm.FairCM, cm.BackoffRetry, cm.NoCM}
	for _, n := range sc.Cores {
		rowT := []any{n}
		rowR := []any{n}
		for _, p := range policies {
			c := defaultSys(n)
			c.pol = p
			c.seed = sc.Seed
			st, _ := bankRun(sc, ov, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
				return b.TransferWorker(20)
			})
			rowT = append(rowT, perMs(st.Ops, st.Duration))
			rowR = append(rowR, st.CommitRate())
		}
		tput.AddRow(rowT...)
		rate.AddRow(rowR...)
	}
	tput.Notes = append(tput.Notes,
		"paper Fig.5(a): without a CM the system livelocks; every CM scales")
	return []*Table{tput, rate}
}

func fig5b(sc Scale, ov Overrides) []*Table {
	accounts := sc.div(1024, 64)
	t := &Table{
		ID:      "fig5b",
		Title:   "Bank throughput (ops/ms) vs number of service cores (48 cores total)",
		Columns: []string{"svc cores", "20% balance", "100% transfers"},
	}
	for _, svc := range []int{1, 2, 4, 8, 16, 24} {
		row := []any{svc}
		for _, balPct := range []int{20, 0} {
			c := defaultSys(48)
			c.svc = svc
			c.seed = sc.Seed
			st, _ := bankRun(sc, ov, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
				return b.TransferWorker(balPct)
			})
			row = append(row, perMs(st.Ops, st.Duration))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig.5(b): returns diminish because SCC message passing does not scale; half/half is a good split")
	return []*Table{t}
}

func fig5c(sc Scale, ov Overrides) []*Table {
	accounts := sc.div(1024, 64)
	policies := []cm.Policy{cm.Wholly, cm.OffsetGreedy, cm.FairCM, cm.BackoffRetry}
	tput := &Table{
		ID:      "fig5c",
		Title:   "Bank throughput (ops/ms): one balance core, rest transfers",
		Columns: []string{"cores", "wholly", "offset-greedy", "faircm", "backoff"},
	}
	rate := &Table{
		ID:      "fig5c-commit",
		Title:   "Commit rate (%): one balance core, rest transfers",
		Columns: []string{"cores", "wholly", "offset-greedy", "faircm", "backoff"},
	}
	maxCores := 0
	for _, n := range sc.Cores {
		if n > maxCores {
			maxCores = n
		}
	}
	balance := &Table{
		ID:      "fig5c-balance",
		Title:   fmt.Sprintf("Balance-core committed ops per second (%d cores)", maxCores),
		Columns: []string{"cm", "balance ops/s"},
	}
	for _, n := range sc.Cores {
		if n < 4 && n < maxCores {
			continue
		}
		rowT := []any{n}
		rowR := []any{n}
		for _, p := range policies {
			c := defaultSys(n)
			c.pol = p
			c.seed = sc.Seed
			st, _ := bankRun(sc, ov, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
				return func(rt *core.Runtime) {
					if rt.AppIndex() == 0 {
						b.BalanceOnlyWorker()(rt)
						return
					}
					b.TransferWorker(0)(rt)
				}
			})
			rowT = append(rowT, perMs(st.Ops, st.Duration))
			rowR = append(rowR, st.CommitRate())
			if n == maxCores {
				balOps := float64(st.PerCore[0].Ops) / (float64(st.Duration) / 1e9)
				balance.AddRow(p.String(), balOps)
			}
		}
		tput.AddRow(rowT...)
		rate.AddRow(rowR...)
	}
	tput.Notes = append(tput.Notes,
		"paper Fig.5(c): FairCM throttles the expensive balance core and beats Wholly/Offset-Greedy by up to 12x/9x")
	return []*Table{tput, rate, balance}
}

func fig5d(sc Scale, ov Overrides) []*Table {
	accounts := sc.div(2048, 128)
	transfers := &Table{
		ID:      "fig5d",
		Title:   fmt.Sprintf("Bank, %d accounts, all cores transfer: lock vs tx (ops/ms)", accounts),
		Columns: []string{"cores", "lock,transfers", "tx,transfers"},
	}
	reader := &Table{
		ID:      "fig5d-reader",
		Title:   "Bank, one balance core + transfers: lock vs tx (ops/ms)",
		Columns: []string{"cores", "lock,1 reader", "tx,1 reader"},
	}
	lockRun := func(n int, oneReader bool) float64 {
		c := defaultSys(n)
		c.svc = -1 // raw-only: every core runs the lock-based app
		c.seed = sc.Seed
		s := c.build(ov)
		b := bank.New(s, accounts)
		l := bank.NewGlobalLock(s)
		deadline := sim.Time(sc.Duration)
		s.SpawnRaw(func(p core.Port, coreID int) {
			r := p.Rand()
			first := coreID == s.AppCores()[0]
			for p.Now() < deadline {
				if oneReader && first {
					b.LockBalance(l, p, coreID)
				} else {
					from, to := bank.PickTransfer(r, accounts)
					b.LockTransfer(l, p, coreID, from, to, 1)
				}
				s.AddOps(1)
			}
		})
		st := s.RunToCompletion()
		return perMs(st.Ops, st.Duration)
	}
	txRun := func(n int, oneReader bool) float64 {
		c := defaultSys(n)
		c.seed = sc.Seed
		st, _ := bankRun(sc, ov, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
			return func(rt *core.Runtime) {
				if oneReader && rt.AppIndex() == 0 {
					b.BalanceOnlyWorker()(rt)
					return
				}
				b.TransferWorker(0)(rt)
			}
		})
		return perMs(st.Ops, st.Duration)
	}
	for _, n := range []int{28, 32, 36, 40, 44, 48} {
		transfers.AddRow(n, lockRun(n, false), txRun(n, false))
	}
	for _, n := range sc.Cores {
		if n < 4 {
			continue
		}
		reader.AddRow(n, lockRun(n, true), txRun(n, true))
	}
	transfers.Notes = append(transfers.Notes,
		"paper Fig.5(d): the lock wins at lower core counts, then collapses under contention while TM keeps scaling")
	reader.Notes = append(reader.Notes,
		"paper Fig.5(d): with one balance reader the lock serializes everything behind the scan; TM wins at every count")
	return []*Table{transfers, reader}
}

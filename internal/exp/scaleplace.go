package exp

import (
	"fmt"

	"repro/internal/apps/bank"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/placement"
)

func init() {
	register("scaleplace", "Scale: flat vs hierarchical placement across skew on a million-object bank", scalePlace)
}

// scalePlace is the scale ablation of the hierarchical directory: the bank
// account array grows to Scale.Objects (a million accounts at the Large
// scale) and every cluster's workers hammer a Zipf-skewed slice of their
// own contiguous partition (bank.LocalZipfWorker), so the heat is both
// skewed and locality-structured. Rows compare hash (static, perfectly
// spread, locality-blind), flat adaptive (balances totals, locality-blind)
// and hier (balances totals toward the accessors' cluster) at uniform and
// Zipf skew. The directory gauges make the scaling claim checkable: the
// leaf universe covers every stripe the configured memory could hold,
// while materialized leaves stay proportional to the touched working set —
// repartition scans walk only the latter. Above 48 cores the paper's SCC
// is out of tiles and the run moves to a 16x8 mesh of 2-core tiles.
func scalePlace(sc Scale, ov Overrides) []*Table {
	objects := sc.Objects
	if objects == 0 {
		objects = sc.div(1<<17, 4096)
	}
	cores := 0
	for _, n := range sc.Cores {
		if n > cores {
			cores = n
		}
	}
	pl := noc.SCC(0)
	if cores > pl.NumCores() {
		pl = noc.Mesh(16, 8, 2)
	}
	label := func(theta float64) string {
		if theta == 0 {
			return "uniform"
		}
		return fmt.Sprintf("zipf-%.2g", theta)
	}

	t := &Table{
		ID:    "scaleplace",
		Title: fmt.Sprintf("Placement at scale: %d-account bank, cluster-local Zipf transfers, %d cores on %s", objects, cores, pl.Name),
		Columns: []string{"skew", "policy", "objects", "ops/ms", "commit %", "node imbalance",
			"wire/op", "migrations", "leaves", "leaf universe", "remote %"},
	}
	parts := pl.NumClusters()
	for _, theta := range []float64{0, 0.99} {
		for _, k := range []placement.Kind{placement.Hash, placement.Adaptive, placement.AdaptiveHier} {
			c := defaultSys(cores)
			c.pl = pl
			c.svc = cores / 8
			c.place = k
			c.repEpoch = 1024
			c.seed = sc.Seed
			st, _ := bankRun(sc, ov, c, objects, func(b *bank.Bank) func(*core.Runtime) {
				return b.LocalZipfWorker(parts, pl.ClusterOf, theta)
			})
			t.AddRow(label(theta), k.String(), objects, perMs(st.Ops, st.Duration), st.CommitRate(),
				st.LoadImbalance(), ratio(float64(st.WireMsgs), float64(st.Ops)),
				st.Migrations, st.MaterializedLeaves, st.LeafUniverse,
				100*st.RemoteAccessRatio())
		}
	}
	t.Notes = append(t.Notes,
		"every worker's transfers stay inside its cluster's contiguous account partition, Zipf-skewed within it — heat is locality-structured, the regime co-mapping exists for",
		"leaves / leaf universe: owner state the hierarchical directory materialized vs the leaf count a flat table would scan — epoch repartitioning walks only the former",
		"remote % counts directory-recorded accesses whose owning DTM node sat outside the accessor's cluster (0 for hash: the static policy records no accesses)",
		"hier must track flat adaptive's throughput and balance while pulling remote % down; at uniform skew all policies converge")
	return []*Table{t}
}

package exp

import (
	"strings"
	"testing"
	"time"
)

// figFingerprints pins the rendered output of every fig4–fig8 experiment at
// a tiny scale across a seed matrix to the values captured on the tree
// IMMEDIATELY BEFORE the execution-port refactor (PR 4), when internal/core
// still hard-coded *sim.Proc. The rendered tables are a function of the
// run's Stats (ops, commits, message counts, latencies in virtual time), so
// matching hashes mean the port extraction — interface indirection, stats
// sharding, memory/register/directory locking — changed no simulated
// behavior: same seed ⇒ same Stats, bit for bit.
//
// If a LATER change legitimately alters simulated behavior (a protocol or
// timing change), re-capture these values and say so in the commit message;
// this test exists so that such changes are loud and deliberate, never
// accidental.
var figFingerprints = []struct {
	id   string
	seed uint64
	want uint64
}{
	{"fig4a", 3, 0x9d901fcbc66f7d85},
	{"fig4b", 3, 0x239a787488603158},
	{"fig4c", 3, 0x40544b64d5f41a8e},
	{"fig5a", 3, 0x0504110043ba31ff},
	{"fig5b", 3, 0xf955158fdc68c5d6},
	{"fig5c", 3, 0xcd1ef4750e7e2157},
	{"fig5d", 3, 0x1cf8734a2fc462c8},
	{"fig6a", 3, 0x6600e2eb6acfe935},
	{"fig6b", 3, 0x4a55331fce907b4c},
	{"fig7a", 3, 0xcce4d693817cb46c},
	{"fig7b", 3, 0x7a69c2aa780744e7},
	{"fig8a", 3, 0x604384acd9a27940},
	{"fig8b", 3, 0xaad96c371be8b502},
	{"fig8c", 3, 0x7328e54fbca8f5b9},
	{"fig8d", 3, 0x1c4a1b6cbafac0a6},
	{"fig4a", 9, 0xe19f9d13dcc68685},
	{"fig4b", 9, 0x76b8e11382428c88},
	{"fig4c", 9, 0x1a60e9ca4aa43ae6},
	{"fig5a", 9, 0x9b88212b7c13bd28},
	{"fig5b", 9, 0x811799ccd27055ee},
	{"fig5c", 9, 0x9d54fbca760ae165},
	{"fig5d", 9, 0x9d6497c12252b55c},
	{"fig6a", 9, 0x6600e2eb6acfe935},
	{"fig6b", 9, 0xf4a256d3a1138d3f},
	{"fig7a", 9, 0xf30198ad6bdc2877},
	{"fig7b", 9, 0x2d3dc2a3c90bcfbb},
	{"fig8a", 9, 0x604384acd9a27940},
	{"fig8b", 9, 0x04a28c15e10c39c0},
	{"fig8c", 9, 0xf52f8afde22ee9c6},
	{"fig8d", 9, 0x946c178421d0f179},
}

// fingerprintScale matches the capture run exactly; any change invalidates
// the recorded hashes.
var fingerprintScale = Scale{Duration: 800 * time.Microsecond, SizeDiv: 16, Cores: []int{4, 8}}

func fnv1a(s string) uint64 {
	h := uint64(1469598103934665603)
	for _, b := range []byte(s) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// TestFigureFingerprintsBitIdentical runs the fig4–fig8 seed matrix on the
// sim backend and asserts the rendered results are bit-identical to the
// pre-port-refactor capture.
func TestFigureFingerprintsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig4–fig8 seed matrix takes a few seconds")
	}
	for _, c := range figFingerprints {
		c := c
		t.Run(c.id, func(t *testing.T) {
			e, ok := ByID(c.id)
			if !ok {
				t.Fatalf("experiment %q not registered", c.id)
			}
			sc := fingerprintScale
			sc.Seed = c.seed
			var sb strings.Builder
			for _, tab := range e.Run(sc, Overrides{}) {
				tab.Render(&sb)
			}
			if got := fnv1a(sb.String()); got != c.want {
				t.Errorf("%s seed %d: fingerprint %#016x, want %#016x — simulated behavior changed",
					c.id, c.seed, got, c.want)
			}
		})
	}
}

package exp

import (
	"fmt"

	"repro/internal/apps/intset"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
)

func init() {
	register("fig7a", "Linked list: elastic-early speedup over normal transactions", fig7a)
	register("fig7b", "Linked list: elastic-read speedup over normal and elastic-early", fig7b)
}

// listRun measures the list benchmark throughput for one mode.
func listRun(sc Scale, ov Overrides, pl noc.Platform, n, elems, updatePct int, mode intset.Mode, seed uint64) *core.Stats {
	c := defaultSys(n)
	c.pl = pl
	c.seed = seed
	s := c.build(ov)
	l := intset.New(s)
	r := sim.NewRand(seed ^ 0x77)
	keyRange := uint64(2 * elems)
	l.InitFill(elems, keyRange, &r)
	s.SpawnWorkers(l.Worker(intset.Workload{UpdatePct: updatePct, KeyRange: keyRange, Mode: mode}))
	return s.Run(sc.Duration)
}

// fig7Elems scales the paper's 2048-element list. Traversals dominate the
// simulation cost, so the default floor is modest.
func fig7Elems(sc Scale) int { return sc.div(2048, 32) }

func fig7a(sc Scale, ov Overrides) []*Table {
	elems := fig7Elems(sc)
	t := &Table{
		ID:      "fig7a",
		Title:   fmt.Sprintf("List (%d elems, 20%% updates): elastic-early speedup over normal", elems),
		Columns: []string{"cores", "speedup", "normal ops/ms", "elastic-early ops/ms"},
	}
	for _, n := range sc.Cores {
		norm := listRun(sc, ov, noc.SCC(0), n, elems, 20, intset.Normal, sc.Seed)
		early := listRun(sc, ov, noc.SCC(0), n, elems, 20, intset.ElasticEarly, sc.Seed)
		nT := perMs(norm.Ops, norm.Duration)
		eT := perMs(early.Ops, early.Duration)
		t.AddRow(n, ratio(eT, nT), nT, eT)
	}
	t.Notes = append(t.Notes,
		"paper Fig.7(a): the abort rate drops below 1% but each early release costs an extra message, so the speedup stays near 1")
	return []*Table{t}
}

func fig7b(sc Scale, ov Overrides) []*Table {
	elems := fig7Elems(sc)
	t := &Table{
		ID:      "fig7b",
		Title:   fmt.Sprintf("List (%d elems): elastic-read speedup", elems),
		Columns: []string{"cores", "vs normal", "vs elastic-early", "elastic-read ops/ms"},
	}
	for _, n := range sc.Cores {
		norm := listRun(sc, ov, noc.SCC(0), n, elems, 20, intset.Normal, sc.Seed)
		early := listRun(sc, ov, noc.SCC(0), n, elems, 20, intset.ElasticEarly, sc.Seed)
		er := listRun(sc, ov, noc.SCC(0), n, elems, 20, intset.ElasticRead, sc.Seed)
		nT := perMs(norm.Ops, norm.Duration)
		eT := perMs(early.Ops, early.Duration)
		rT := perMs(er.Ops, er.Duration)
		t.AddRow(n, ratio(rT, nT), ratio(rT, eT), rT)
	}
	t.Notes = append(t.Notes,
		"paper Fig.7(b): read validation replaces one message round-trip per node with a memory access (9-18x); the gain sags at high core counts as memory congests")
	return []*Table{t}
}

package exp

import (
	"repro/internal/apps/hashset"
	"repro/internal/core"
	"repro/internal/sim"
)

func init() {
	register("fig4a", "Hash table: multitasked vs dedicated deployment (20% updates, load factors 2 and 8)", fig4a)
	register("fig4b", "Hash table: speedup over bare sequential, 24+24 cores", fig4b)
	register("fig4c", "Hash table: eager vs lazy write-lock acquisition (30% updates incl. 20% moves)", fig4c)
}

// hashRun builds a hash table of nbuckets with loadFactor*nbuckets initial
// elements and runs the transactional workload for the scale's window.
func hashRun(sc Scale, ov Overrides, c sysConfig, nbuckets, loadFactor int, w hashset.Workload) *core.Stats {
	s := c.build(ov)
	set := hashset.New(s, nbuckets)
	elems := nbuckets * loadFactor
	if w.KeyRange == 0 {
		w.KeyRange = uint64(2 * elems)
	}
	r := sim.NewRand(c.seed ^ 0xabcd)
	set.InitFill(elems, w.KeyRange, &r)
	s.SpawnWorkers(set.Worker(w))
	return s.Run(sc.Duration)
}

// hashSeq measures the bare sequential throughput of the same workload on
// one core.
func hashSeq(sc Scale, ov Overrides, nbuckets, loadFactor int, w hashset.Workload) float64 {
	c := defaultSys(2)
	c.svc = 1
	c.seed = sc.Seed
	s := c.build(ov)
	set := hashset.New(s, nbuckets)
	elems := nbuckets * loadFactor
	if w.KeyRange == 0 {
		w.KeyRange = uint64(2 * elems)
	}
	r := sim.NewRand(sc.Seed ^ 0xabcd)
	set.InitFill(elems, w.KeyRange, &r)
	deadline := sim.Time(sc.Duration)
	s.SpawnRaw(func(p core.Port, coreID int) {
		rr := p.Rand()
		for p.Now() < deadline {
			set.SeqOp(p, coreID, rr, w)
			s.AddOps(1)
		}
	})
	st := s.RunToCompletion()
	return perMs(st.Ops, st.Duration)
}

func fig4a(sc Scale, ov Overrides) []*Table {
	buckets := sc.div(128, 8)
	w := hashset.Workload{UpdatePct: 20}
	t := &Table{
		ID:      "fig4a",
		Title:   "Hash table throughput (ops/ms): multitasked vs dedicated",
		Columns: []string{"cores", "multi,lf2", "multi,lf8", "ded,lf2", "ded,lf8"},
	}
	for _, n := range sc.Cores {
		row := []any{n}
		for _, dep := range []core.Deployment{core.Multitask, core.Dedicated} {
			for _, lf := range []int{2, 8} {
				c := defaultSys(n)
				c.dep = dep
				c.seed = sc.Seed
				st := hashRun(sc, ov, c, buckets, lf, w)
				row = append(row, perMs(st.Ops, st.Duration))
			}
		}
		// Reorder: multi lf2, multi lf8, ded lf2, ded lf8 (already so).
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig.4(a): dedicated service cores outperform multitasking at every core count")
	return []*Table{t}
}

func fig4b(sc Scale, ov Overrides) []*Table {
	buckets := sc.div(64, 8)
	t := &Table{
		ID:      "fig4b",
		Title:   "Hash table speedup over sequential (48 cores: 24 app + 24 DTM)",
		Columns: []string{"load", "20% upd", "30% upd", "40% upd", "50% upd"},
	}
	for _, lf := range []int{2, 4, 6, 8} {
		row := []any{lf}
		for _, upd := range []int{20, 30, 40, 50} {
			w := hashset.Workload{UpdatePct: upd}
			c := defaultSys(48)
			c.seed = sc.Seed
			st := hashRun(sc, ov, c, buckets, lf, w)
			seq := hashSeq(sc, ov, buckets, lf, w)
			row = append(row, ratio(perMs(st.Ops, st.Duration), seq))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig.4(b): speedup decreases as the load factor (and conflict probability) grows")
	return []*Table{t}
}

func fig4c(sc Scale, ov Overrides) []*Table {
	tput := &Table{
		ID:      "fig4c",
		Title:   "Eager vs lazy write-lock acquisition: throughput (ops/ms)",
		Columns: []string{"cores", "eager,64", "lazy,64", "eager,128", "lazy,128"},
	}
	rate := &Table{
		ID:      "fig4c-commit",
		Title:   "Eager vs lazy write-lock acquisition: commit rate (%)",
		Columns: []string{"cores", "eager,64", "lazy,64", "eager,128", "lazy,128"},
	}
	w := hashset.Workload{UpdatePct: 10, MovePct: 20} // 30% total updates, 20% moves
	for _, n := range sc.Cores {
		rowT := []any{n}
		rowR := []any{n}
		for _, nb := range []int{64, 128} {
			for _, acq := range []core.AcquireMode{core.Eager, core.Lazy} {
				c := defaultSys(n)
				c.acq = acq
				c.seed = sc.Seed
				st := hashRun(sc, ov, c, sc.div(nb, 8), 4, w)
				rowT = append(rowT, perMs(st.Ops, st.Duration))
				rowR = append(rowR, st.CommitRate())
			}
		}
		tput.AddRow(rowT...)
		rate.AddRow(rowR...)
	}
	tput.Notes = append(tput.Notes,
		"paper Fig.4(c): similar at low contention; lazy wins as conflicts increase")
	return []*Table{tput, rate}
}

package exp

import (
	"fmt"
	"time"

	"repro/internal/apps/bank"
	"repro/internal/apps/hashset"
	"repro/internal/apps/intset"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
)

func init() {
	registerSimOnly("fig8a", "Round-trip message latency vs cores (SCC, SCC800, Opteron)", fig8a)
	register("fig8b", "Bank on many-core vs multi-core", fig8b)
	register("fig8c", "Linked list on many-core vs multi-core", fig8c)
	register("fig8d", "Hash table on many-core vs multi-core", fig8d)
}

func platforms() []noc.Platform {
	return []noc.Platform{noc.SCC(0), noc.SCC(1), noc.Opteron()}
}

// pingPong reproduces the §7.1 latency experiment: half the cores are
// dedicated service cores that respond immediately; each application core
// sends messages evenly distributed to all service cores and waits for each
// response. The average round trip is returned.
func pingPong(pl noc.Platform, total int, msgsPerCore int, seed uint64) time.Duration {
	k := sim.New(seed)
	nApp := total / 2
	nSvc := total - nApp
	type ping struct {
		reply *sim.Proc
		core  int
	}
	svcProcs := make([]*sim.Proc, nSvc)
	svcCores := make([]int, nSvc)
	for i := 0; i < nSvc; i++ {
		core := nApp + i
		svcCores[i] = core
		svcProcs[i] = k.Spawn(fmt.Sprintf("svc%d", core), func(p *sim.Proc) {
			for {
				m := p.Recv()
				pg := m.Payload.(ping)
				// Respond immediately, without local computation (§7.1).
				p.Send(pg.reply, struct{}{}, pl.MsgDelay(core, pg.core, 16, nSvc))
			}
		})
	}
	var totalRT time.Duration
	var count int
	for a := 0; a < nApp; a++ {
		a := a
		k.Spawn(fmt.Sprintf("app%d", a), func(p *sim.Proc) {
			for i := 0; i < msgsPerCore; i++ {
				svc := i % nSvc
				start := p.Now()
				p.Send(svcProcs[svc], ping{reply: p, core: a}, pl.MsgDelay(a, svcCores[svc], 16, nApp))
				p.Recv()
				totalRT += (p.Now() - start).Duration()
				count++
			}
		})
	}
	k.Run(sim.Infinity)
	k.Shutdown()
	if count == 0 {
		return 0
	}
	return totalRT / time.Duration(count)
}

func fig8a(sc Scale, ov Overrides) []*Table {
	t := &Table{
		ID:      "fig8a",
		Title:   "Average round-trip message latency (µs)",
		Columns: []string{"cores", "SCC", "SCC800", "Opteron"},
	}
	msgs := 500
	if sc.SizeDiv > 4 {
		msgs = 100
	}
	for _, n := range sc.Cores {
		row := []any{n}
		for _, pl := range platforms() {
			rt := pingPong(pl, n, msgs, sc.Seed)
			row = append(row, float64(rt)/1000.0)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig.8(a): SCC latency degrades from ~5.1µs to ~12.4µs with core count (per-peer polling); SCC800 is fastest; the Opteron's software channels sit in between")
	return []*Table{t}
}

func fig8b(sc Scale, ov Overrides) []*Table {
	accounts := sc.div(1024, 64)
	mixed := &Table{
		ID:      "fig8b",
		Title:   "Bank 20% balance / 80% transfers (ops/ms)",
		Columns: []string{"cores", "SCC", "SCC800", "Opteron"},
	}
	transfers := &Table{
		ID:      "fig8b-transfers",
		Title:   "Bank 100% transfers (ops/ms)",
		Columns: []string{"cores", "SCC", "SCC800", "Opteron"},
	}
	for _, n := range sc.Cores {
		rowM := []any{n}
		rowT := []any{n}
		for _, pl := range platforms() {
			for i, balPct := range []int{20, 0} {
				c := defaultSys(n)
				c.pl = pl
				c.seed = sc.Seed
				st, _ := bankRun(sc, ov, c, accounts, func(b *bank.Bank) func(*core.Runtime) {
					return b.TransferWorker(balPct)
				})
				v := perMs(st.Ops, st.Duration)
				if i == 0 {
					rowM = append(rowM, v)
				} else {
					rowT = append(rowT, v)
				}
			}
		}
		mixed.AddRow(rowM...)
		transfers.AddRow(rowT...)
	}
	mixed.Notes = append(mixed.Notes,
		"paper Fig.8(b): the SCC behaves better under heavy contention; the low-contention workload follows the messaging latencies")
	return []*Table{mixed, transfers}
}

func fig8c(sc Scale, ov Overrides) []*Table {
	elems := sc.div(512, 16)
	t := &Table{
		ID:      "fig8c",
		Title:   fmt.Sprintf("Linked list, %d elems, 10%% updates (ops/ms)", elems),
		Columns: []string{"cores", "SCC", "SCC800", "Opteron"},
	}
	for _, n := range sc.Cores {
		row := []any{n}
		for _, pl := range platforms() {
			st := listRun(sc, ov, pl, n, elems, 10, intset.Normal, sc.Seed)
			row = append(row, perMs(st.Ops, st.Duration))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig.8(c): a high-contention benchmark where the multi-core profits from caching the list hot spots")
	return []*Table{t}
}

func fig8d(sc Scale, ov Overrides) []*Table {
	elems := sc.div(512, 32)
	out := make([]*Table, 0, 2)
	for _, lf := range []int{4, 16} {
		t := &Table{
			ID:      fmt.Sprintf("fig8d-load%d", lf),
			Title:   fmt.Sprintf("Hash table, %d elems, load factor %d, 10%% updates (ops/ms)", elems, lf),
			Columns: []string{"cores", "SCC", "SCC800", "Opteron"},
		}
		buckets := elems / lf
		if buckets < 2 {
			buckets = 2
		}
		for _, n := range sc.Cores {
			row := []any{n}
			for _, pl := range platforms() {
				c := defaultSys(n)
				c.pl = pl
				c.seed = sc.Seed
				st := hashRun(sc, ov, c, buckets, lf, hashset.Workload{UpdatePct: 10})
				row = append(row, perMs(st.Ops, st.Duration))
			}
			t.AddRow(row...)
		}
		out = append(out, t)
	}
	out[0].Notes = append(out[0].Notes,
		"paper Fig.8(d): the low-contention hash table follows the message latencies of Fig.8(a)")
	return out
}

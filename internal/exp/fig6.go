package exp

import (
	"fmt"

	"repro/internal/apps/mapreduce"
	"repro/internal/core"
	"repro/internal/sim"
)

func init() {
	register("fig6a", "MapReduce: duration vs cores for three input sizes", fig6a)
	register("fig6b", "MapReduce: speedup over sequential for three chunk sizes", fig6b)
}

// mrInputDiv pre-scales the paper's file sizes (256 MB-2 GB) to simulator
// scale; Scale.SizeDiv shrinks them further.
const mrInputDiv = 64

func mrSize(sc Scale, mb int) int {
	n := mb << 20 / mrInputDiv / sc.SizeDiv
	const floor = 64 << 10
	if n < floor {
		return floor
	}
	return n
}

// mrParallel runs the job on n total cores (1 dedicated service core, as in
// §5.4) and returns the completion time.
func mrParallel(sc Scale, ov Overrides, n, size, chunk int) sim.Time {
	c := defaultSys(n)
	c.svc = 1
	c.seed = sc.Seed
	s := c.build(ov)
	j := mapreduce.NewJob(s, sc.Seed, size, chunk)
	s.SpawnWorkers(func(rt *core.Runtime) { j.Worker(rt) })
	st := s.RunToCompletion()
	if j.HistogramTotal() != uint64(size) {
		panic(fmt.Sprintf("exp: mapreduce merged %d of %d bytes", j.HistogramTotal(), size))
	}
	return st.Duration
}

// mrSequential runs the single-core baseline and returns its duration.
func mrSequential(sc Scale, ov Overrides, size, chunk int) sim.Time {
	c := defaultSys(2)
	c.svc = 1
	c.seed = sc.Seed
	s := c.build(ov)
	j := mapreduce.NewJob(s, sc.Seed, size, chunk)
	var dur sim.Time
	s.SpawnRaw(func(p core.Port, coreID int) { dur = j.Sequential(p, coreID) })
	s.RunToCompletion()
	return dur
}

func fig6a(sc Scale, ov Overrides) []*Table {
	t := &Table{
		ID:      "fig6a",
		Title:   "MapReduce duration (virtual ms) vs cores, 8KB chunks",
		Columns: []string{"cores", "256MB", "512MB", "1GB"},
	}
	const chunk = 8 << 10
	for _, n := range sc.Cores {
		row := []any{n}
		for _, mb := range []int{256, 512, 1024} {
			d := mrParallel(sc, ov, n, mrSize(sc, mb), chunk)
			row = append(row, float64(d)/1e6)
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("input sizes are the paper's divided by %d*SizeDiv; shapes are preserved (see EXPERIMENTS.md)", mrInputDiv),
		"paper Fig.6(a): duration drops near-linearly with cores; one DTM core suffices for the low transactional load")
	return []*Table{t}
}

func fig6b(sc Scale, ov Overrides) []*Table {
	t := &Table{
		ID:      "fig6b",
		Title:   "MapReduce speedup over sequential (48 cores: 47 app + 1 DTM)",
		Columns: []string{"input", "4KB", "8KB", "16KB"},
	}
	for _, mb := range []int{256, 512, 1024, 2048} {
		size := mrSize(sc, mb)
		row := []any{fmt.Sprintf("%dMB", mb)}
		for _, chunkKB := range []int{4, 8, 16} {
			chunk := chunkKB << 10
			seq := mrSequential(sc, ov, size, chunk)
			par := mrParallel(sc, ov, 48, size, chunk)
			row = append(row, ratio(float64(seq), float64(par)))
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"paper Fig.6(b): 8KB chunks perform best — smaller chunks pay more transaction overhead, larger ones thrash the 16KB L1")
	return []*Table{t}
}

// Package port defines the execution-port abstraction of TM2C-Go: the thin
// message-passing and timing interface the whole DTM protocol is written
// against.
//
// TM2C's portability story (§3 of the paper) is that the protocol only ever
// touches a small message-passing library, which is how the same code ran on
// the SCC, the TILE-Gx and cache-coherent x86/SPARC machines. Port is this
// reproduction's version of that seam: internal/core speaks exclusively to
// Port, and a backend decides what a "core" physically is —
//
//   - internal/sim: a proc of the deterministic discrete-event kernel, where
//     Advance consumes virtual time and exactly one goroutine runs at any
//     instant (the bit-identical default; see SimPort);
//   - internal/live: a real goroutine with a channel mailbox, where Advance
//     is a no-op and Now is the monotonic clock (hardware speed).
//
// The package sits below both backends and below internal/core, so nothing
// here may import them; the shared message, time and RNG types come from
// internal/sim, which is the one package every backend already builds on.
package port

import (
	"time"

	"repro/internal/sim"
)

// Msg is one delivered mailbox message. It is sim.Msg verbatim: From is the
// sender's port ID and Payload the protocol message; the SentAt/At
// timestamps are meaningful on the simulated backend and zero on live.
type Msg = sim.Msg

// Port is one core's execution context: its identity, clock, deterministic
// randomness source, and mailbox. All methods except ID must be called only
// from the port's own goroutine (the owning proc or worker); Send may target
// any other Port of the same backend.
//
// The receive family forms a selective-receive mailbox: Recv/TryRecv take
// the earliest delivered message, RecvMatch/TryRecvMatch take the earliest
// message satisfying a pure predicate and leave everything else queued in
// delivery order, and RecvTimeout bounds the wait. The DTM protocol relies
// on exactly these semantics for its correlation-tagged RPC layer.
type Port interface {
	// ID returns the backend-assigned port identifier.
	ID() int
	// Now returns the current time: virtual nanoseconds on the simulated
	// backend, monotonic nanoseconds since Run on the live backend.
	Now() sim.Time
	// Rand returns the port's deterministic random source. Streams are
	// seeded identically on every backend, so workload shapes (access
	// patterns, jitter draws) match across backends even though live
	// interleavings do not.
	Rand() *sim.Rand
	// Advance consumes d of nominal compute time: virtual time on sim, a
	// no-op on live (the hardware is as fast as it is).
	Advance(d time.Duration)
	// Yield lets other runnable work proceed before continuing.
	Yield()
	// Send delivers payload to dst after the backend's notion of delay
	// (modeled latency on sim, ignored on live). It does not block the
	// sender beyond backend-internal flow control.
	Send(dst Port, payload any, delay time.Duration)
	// Recv blocks until a message is available and returns the earliest
	// delivered one.
	Recv() Msg
	// TryRecv returns the earliest queued message without blocking.
	TryRecv() (Msg, bool)
	// RecvMatch blocks until a message satisfying pred is available and
	// returns the earliest such message; non-matching messages stay queued
	// in delivery order. pred must be a pure function of the message.
	RecvMatch(pred func(Msg) bool) Msg
	// TryRecvMatch is RecvMatch without blocking.
	TryRecvMatch(pred func(Msg) bool) (Msg, bool)
	// RecvTimeout waits up to d for a message; ok is false on timeout.
	RecvTimeout(d time.Duration) (Msg, bool)
}

// SimPort adapts a *sim.Proc to the Port interface. It is a zero-cost
// forwarding wrapper: every method maps to the identically-named Proc
// method, so a system built on SimPorts performs the exact same sequence of
// kernel events as one hard-coded on *sim.Proc — the refactor-safety
// property the figure-fingerprint tests pin down.
type SimPort struct{ P *sim.Proc }

// ID returns the proc's kernel-assigned identifier.
func (s SimPort) ID() int { return s.P.ID() }

// Now returns the current virtual time.
func (s SimPort) Now() sim.Time { return s.P.Now() }

// Rand returns the proc's deterministic random source.
func (s SimPort) Rand() *sim.Rand { return s.P.Rand() }

// Advance consumes d of virtual compute time.
func (s SimPort) Advance(d time.Duration) { s.P.Advance(d) }

// Yield reschedules the proc behind already-pending same-instant events.
func (s SimPort) Yield() { s.P.Yield() }

// Send delivers payload to dst (which must wrap a proc of the same kernel)
// after the given virtual delay.
func (s SimPort) Send(dst Port, payload any, delay time.Duration) {
	s.P.Send(dst.(SimPort).P, payload, delay)
}

// Recv blocks until a message is available.
func (s SimPort) Recv() Msg { return s.P.Recv() }

// TryRecv returns a queued message, if any, without blocking.
func (s SimPort) TryRecv() (Msg, bool) { return s.P.TryRecv() }

// RecvMatch blocks for the earliest message satisfying pred.
func (s SimPort) RecvMatch(pred func(Msg) bool) Msg { return s.P.RecvMatch(pred) }

// TryRecvMatch returns the earliest matching message without blocking.
func (s SimPort) TryRecvMatch(pred func(Msg) bool) (Msg, bool) { return s.P.TryRecvMatch(pred) }

// RecvTimeout waits up to d for a message.
func (s SimPort) RecvTimeout(d time.Duration) (Msg, bool) { return s.P.RecvTimeout(d) }

// SetBatchHook forwards the envelope-deliver observer to the proc (see
// sim.Proc.SetBatchHook). Backends expose this method outside the Port
// interface; observers discover it by type assertion, so a backend without
// envelope visibility simply has no hook.
func (s SimPort) SetBatchHook(fn func(n int)) { s.P.SetBatchHook(fn) }

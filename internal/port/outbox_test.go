package port

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// fakePort implements Port with just enough behavior for Outbox keying;
// the Outbox only ever calls ID.
type fakePort struct{ id int }

func (f fakePort) ID() int                                 { return f.id }
func (f fakePort) Now() sim.Time                           { return 0 }
func (f fakePort) Rand() *sim.Rand                         { return nil }
func (f fakePort) Advance(time.Duration)                   {}
func (f fakePort) Yield()                                  {}
func (f fakePort) Send(Port, any, time.Duration)           {}
func (f fakePort) Recv() Msg                               { return Msg{} }
func (f fakePort) TryRecv() (Msg, bool)                    { return Msg{}, false }
func (f fakePort) RecvMatch(func(Msg) bool) Msg            { return Msg{} }
func (f fakePort) TryRecvMatch(func(Msg) bool) (Msg, bool) { return Msg{}, false }
func (f fakePort) RecvTimeout(time.Duration) (Msg, bool)   { return Msg{}, false }

func TestOutboxStagesPerDestinationInOrder(t *testing.T) {
	var o Outbox
	a, b := fakePort{id: 3}, fakePort{id: 7}
	o.Stage(a, 30, "a1", 10)
	o.Stage(b, 70, "b1", 20)
	o.Stage(a, 30, "a2", 5)
	if got := o.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}

	var flushed []OutEntry
	o.Flush(func(e *OutEntry) { flushed = append(flushed, *e) })

	if len(flushed) != 2 {
		t.Fatalf("flushed %d entries, want 2 (one per destination)", len(flushed))
	}
	// First-staged destination order: a before b.
	if flushed[0].Dst.ID() != 3 || flushed[1].Dst.ID() != 7 {
		t.Fatalf("destination order %d,%d, want 3,7", flushed[0].Dst.ID(), flushed[1].Dst.ID())
	}
	if flushed[0].DstTag != 30 || flushed[1].DstTag != 70 {
		t.Fatalf("tags %d,%d, want 30,70", flushed[0].DstTag, flushed[1].DstTag)
	}
	if len(flushed[0].Payloads) != 2 || flushed[0].Payloads[0] != "a1" || flushed[0].Payloads[1] != "a2" {
		t.Fatalf("a payloads %v, want [a1 a2] in staged order", flushed[0].Payloads)
	}
	if flushed[0].Bytes != 15 || flushed[1].Bytes != 20 {
		t.Fatalf("bytes %d,%d, want 15,20", flushed[0].Bytes, flushed[1].Bytes)
	}
}

func TestOutboxFlushResets(t *testing.T) {
	var o Outbox
	p := fakePort{id: 1}
	o.Stage(p, 1, "x", 8)
	o.Flush(func(*OutEntry) {})
	if o.Pending() != 0 {
		t.Fatalf("Pending after flush = %d, want 0", o.Pending())
	}
	// Re-staging after a flush starts a fresh entry, not a leftover one.
	o.Stage(p, 1, "y", 4)
	var got []OutEntry
	o.Flush(func(e *OutEntry) { got = append(got, *e) })
	if len(got) != 1 || len(got[0].Payloads) != 1 || got[0].Payloads[0] != "y" || got[0].Bytes != 4 {
		t.Fatalf("second flush entries %+v, want one fresh entry [y]/4 bytes", got)
	}
}

func TestOutboxEmptyFlushIsNoop(t *testing.T) {
	var o Outbox
	calls := 0
	o.Flush(func(*OutEntry) { calls++ })
	if calls != 0 {
		t.Fatalf("empty flush invoked send %d times", calls)
	}
}

package port

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// fakePort implements Port with just enough behavior for Outbox keying;
// the Outbox only ever calls ID.
type fakePort struct{ id int }

func (f fakePort) ID() int                                 { return f.id }
func (f fakePort) Now() sim.Time                           { return 0 }
func (f fakePort) Rand() *sim.Rand                         { return nil }
func (f fakePort) Advance(time.Duration)                   {}
func (f fakePort) Yield()                                  {}
func (f fakePort) Send(Port, any, time.Duration)           {}
func (f fakePort) Recv() Msg                               { return Msg{} }
func (f fakePort) TryRecv() (Msg, bool)                    { return Msg{}, false }
func (f fakePort) RecvMatch(func(Msg) bool) Msg            { return Msg{} }
func (f fakePort) TryRecvMatch(func(Msg) bool) (Msg, bool) { return Msg{}, false }
func (f fakePort) RecvTimeout(time.Duration) (Msg, bool)   { return Msg{}, false }

// snapshot copies the parts of an OutEntry a test wants to assert on after
// Flush returns — the entry's payload slice is outbox-owned and recycled as
// soon as the send callback finishes.
type snapshot struct {
	dst      int
	dstTag   int
	payloads []any
	bytes    int
	first    sim.Time
}

func snap(e *OutEntry) snapshot {
	return snapshot{
		dst:      e.Dst.ID(),
		dstTag:   e.DstTag,
		payloads: append([]any(nil), e.Payloads...),
		bytes:    e.Bytes,
		first:    e.First,
	}
}

func TestOutboxStagesPerDestinationInOrder(t *testing.T) {
	var o Outbox
	a, b := fakePort{id: 3}, fakePort{id: 7}
	o.Stage(a, 30, "a1", 10, 100)
	o.Stage(b, 70, "b1", 20, 200)
	o.Stage(a, 30, "a2", 5, 300)
	if got := o.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}

	var flushed []snapshot
	o.Flush(func(e *OutEntry) { flushed = append(flushed, snap(e)) })

	if len(flushed) != 2 {
		t.Fatalf("flushed %d entries, want 2 (one per destination)", len(flushed))
	}
	// First-staged destination order: a before b.
	if flushed[0].dst != 3 || flushed[1].dst != 7 {
		t.Fatalf("destination order %d,%d, want 3,7", flushed[0].dst, flushed[1].dst)
	}
	if flushed[0].dstTag != 30 || flushed[1].dstTag != 70 {
		t.Fatalf("tags %d,%d, want 30,70", flushed[0].dstTag, flushed[1].dstTag)
	}
	if len(flushed[0].payloads) != 2 || flushed[0].payloads[0] != "a1" || flushed[0].payloads[1] != "a2" {
		t.Fatalf("a payloads %v, want [a1 a2] in staged order", flushed[0].payloads)
	}
	if flushed[0].bytes != 15 || flushed[1].bytes != 20 {
		t.Fatalf("bytes %d,%d, want 15,20", flushed[0].bytes, flushed[1].bytes)
	}
	// First carries the FIRST staging instant of each entry.
	if flushed[0].first != 100 || flushed[1].first != 200 {
		t.Fatalf("first instants %d,%d, want 100,200", flushed[0].first, flushed[1].first)
	}
}

func TestOutboxFlushResets(t *testing.T) {
	var o Outbox
	p := fakePort{id: 1}
	o.Stage(p, 1, "x", 8, 5)
	o.Flush(func(*OutEntry) {})
	if o.Pending() != 0 {
		t.Fatalf("Pending after flush = %d, want 0", o.Pending())
	}
	// Re-staging after a flush starts a fresh entry (recycled storage, fresh
	// content): new payloads, new byte count, new First instant.
	o.Stage(p, 1, "y", 4, 9)
	var got []snapshot
	o.Flush(func(e *OutEntry) { got = append(got, snap(e)) })
	if len(got) != 1 || len(got[0].payloads) != 1 || got[0].payloads[0] != "y" || got[0].bytes != 4 || got[0].first != 9 {
		t.Fatalf("second flush entries %+v, want one fresh entry [y]/4 bytes/first 9", got)
	}
}

func TestOutboxEmptyFlushIsNoop(t *testing.T) {
	var o Outbox
	calls := 0
	o.Flush(func(*OutEntry) { calls++ })
	if calls != 0 {
		t.Fatalf("empty flush invoked send %d times", calls)
	}
}

// TestOutboxFlushMatching: the adaptive-flush primitive. Only entries the
// predicate selects are emitted; the rest stay staged, keep their payload
// order and First instant, and a later full Flush emits them in original
// staging order.
func TestOutboxFlushMatching(t *testing.T) {
	var o Outbox
	a, b, c := fakePort{id: 1}, fakePort{id: 2}, fakePort{id: 3}
	o.Stage(a, 10, "a1", 100, 1)
	o.Stage(b, 20, "b1", 5, 2)
	o.Stage(c, 30, "c1", 200, 3)
	o.Stage(b, 20, "b2", 5, 4)

	// Emit only the big entries (a and c); b stays.
	var sent []snapshot
	o.FlushMatching(
		func(e *OutEntry) bool { return e.Bytes >= 100 },
		func(e *OutEntry) { sent = append(sent, snap(e)) },
	)
	if len(sent) != 2 || sent[0].dst != 1 || sent[1].dst != 3 {
		t.Fatalf("matching flush sent %+v, want entries for ports 1 and 3 in staged order", sent)
	}
	if o.Pending() != 2 {
		t.Fatalf("Pending after partial flush = %d, want 2 (b1+b2 retained)", o.Pending())
	}

	// The retained entry must still accumulate: staging more for b lands in
	// the SAME entry, with the original First preserved.
	o.Stage(b, 20, "b3", 5, 9)
	var rest []snapshot
	o.Flush(func(e *OutEntry) { rest = append(rest, snap(e)) })
	if len(rest) != 1 {
		t.Fatalf("final flush sent %d entries, want 1", len(rest))
	}
	e := rest[0]
	if e.dst != 2 || len(e.payloads) != 3 || e.payloads[0] != "b1" || e.payloads[1] != "b2" || e.payloads[2] != "b3" {
		t.Fatalf("retained entry %+v, want b1 b2 b3 in staged order", e)
	}
	if e.bytes != 15 || e.first != 2 {
		t.Fatalf("retained entry bytes/first = %d/%d, want 15/2 (first staging instant survives)", e.bytes, e.first)
	}
}

// TestOutboxFlushMatchingNone: a predicate matching nothing emits nothing
// and leaves the outbox untouched.
func TestOutboxFlushMatchingNone(t *testing.T) {
	var o Outbox
	p := fakePort{id: 1}
	o.Stage(p, 1, "x", 8, 0)
	calls := 0
	o.FlushMatching(func(*OutEntry) bool { return false }, func(*OutEntry) { calls++ })
	if calls != 0 || o.Pending() != 1 {
		t.Fatalf("no-match flush: %d sends, %d pending; want 0 sends, 1 pending", calls, o.Pending())
	}
}

// TestOutboxStageAllocFree: steady-state staging and flushing allocates
// nothing once the outbox's storage has warmed up.
func TestOutboxStageAllocFree(t *testing.T) {
	var o Outbox
	// Pre-boxed interfaces: real callers hold ports as interfaces already, so
	// the conversion cost at the Stage call site is not the outbox's to pay.
	var a, b Port = fakePort{id: 1}, fakePort{id: 2}
	var payload any = "p"
	warm := func() {
		o.Stage(a, 1, payload, 8, 0)
		o.Stage(b, 2, payload, 8, 0)
		o.Stage(a, 1, payload, 8, 0)
		o.Flush(func(*OutEntry) {})
	}
	warm()
	if n := testing.AllocsPerRun(100, warm); n != 0 {
		t.Fatalf("Stage+Flush allocates %v per cycle in steady state, want 0", n)
	}
}

package port

import "repro/internal/sim"

// Batch is the multi-payload wire envelope backends unpack at the receiving
// mailbox. It is sim.Batch verbatim, re-exported so protocol code above the
// port seam never imports a backend for it.
type Batch = sim.Batch

// GetBatch and PutBatch expose the shared envelope pool (see sim.GetBatch):
// senders draw pooled envelopes, the unpacking mailbox recycles them.
var (
	GetBatch = sim.GetBatch
	PutBatch = sim.PutBatch
)

// Outbox is the coalescing half of the message plane: protocol endpoints
// stage typed payloads into it per destination and flush at explicit
// protocol points (the end of a commit scatter burst, of a release burst,
// of a DTM dispatch that produced several responses). Payloads staged for
// the same destination between two flushes leave as ONE wire message — a
// Batch envelope — so the per-message fixed cost (send/receive software
// overhead, hop traversal, per-peer polling) is paid once and only the
// marginal payload bytes grow with the burst.
//
// The Outbox is deliberately mechanism-free: it knows nothing about delay
// models or statistics. Flush hands each destination's staged payloads back
// to the owner, which charges its own cost model (noc.BatchDelay on the
// simulated backend) and performs the Send. Destinations flush in
// first-staged order and payloads stay in staged order per destination, so
// a deterministic backend schedules identical events for identical runs.
//
// An Outbox belongs to one execution port and must only be used from that
// port's goroutine. The zero value is an empty, ready-to-use outbox.
type Outbox struct {
	entries []OutEntry
	index   map[int]int // destination port ID → entries index
	spare   [][]any     // retained payload backing arrays, reused by Stage
}

// OutEntry is the staged traffic for one destination.
type OutEntry struct {
	Dst      Port     // destination port
	DstTag   int      // caller-supplied destination tag (e.g. physical core ID)
	Payloads []any    // staged payloads, in staged order
	Bytes    int      // summed modeled payload bytes
	First    sim.Time // when the entry's first payload was staged
}

// Stage queues payload for dst, to be sent at the next Flush. dstTag is an
// opaque caller tag returned with the entry at flush time (the DTM protocol
// stores the destination's physical core ID, which its cost model needs and
// the port interface does not expose). nbytes is the payload's modeled
// on-wire size; now stamps the entry's First when this payload opens it, so
// flush policies can age-bound staged traffic.
func (o *Outbox) Stage(dst Port, dstTag int, payload any, nbytes int, now sim.Time) {
	if o.index == nil {
		o.index = make(map[int]int)
	}
	id := dst.ID()
	i, ok := o.index[id]
	if !ok {
		i = len(o.entries)
		o.index[id] = i
		var ps []any
		if n := len(o.spare); n > 0 {
			ps, o.spare = o.spare[n-1], o.spare[:n-1]
		}
		o.entries = append(o.entries, OutEntry{Dst: dst, DstTag: dstTag, Payloads: ps, First: now})
	}
	e := &o.entries[i]
	e.Payloads = append(e.Payloads, payload)
	e.Bytes += nbytes
}

// Pending returns the number of staged payloads across all destinations.
func (o *Outbox) Pending() int {
	n := 0
	for i := range o.entries {
		n += len(o.entries[i].Payloads)
	}
	return n
}

// recycle clears and retains e's payload backing array for reuse by a later
// Stage. Callers must be done with e.Payloads: the send path copies payloads
// into a pooled Batch envelope (or sends the singleton payload bare), so by
// the time recycle runs nothing aliases the slice.
func (o *Outbox) recycle(e *OutEntry) {
	for j := range e.Payloads {
		e.Payloads[j] = nil
	}
	o.spare = append(o.spare, e.Payloads[:0])
	e.Payloads = nil
}

// Flush hands every destination's staged payloads to send, in first-staged
// destination order, and resets the outbox. The caller owns the actual
// transmission: one wire message per entry, a bare payload for singleton
// entries and a Batch envelope otherwise (see the owner's send path). The
// outbox RETAINS each entry's Payloads backing array after send returns —
// send must copy anything it wants to keep (the envelope path copies into a
// pooled Batch). Flush on an empty outbox is a no-op.
func (o *Outbox) Flush(send func(e *OutEntry)) {
	if len(o.entries) == 0 {
		return
	}
	for i := range o.entries {
		send(&o.entries[i])
		o.recycle(&o.entries[i])
	}
	o.entries = o.entries[:0]
	for id := range o.index {
		delete(o.index, id)
	}
}

// FlushMatching hands only the entries satisfying pred to send (first-staged
// destination order, same ownership contract as Flush) and keeps the rest
// staged, preserving their relative order. Adaptive flushing uses it to emit
// entries that reached the size or age bound while younger, smaller ones
// keep accumulating.
func (o *Outbox) FlushMatching(pred func(e *OutEntry) bool, send func(e *OutEntry)) {
	if len(o.entries) == 0 {
		return
	}
	kept := 0
	for i := range o.entries {
		e := &o.entries[i]
		if pred(e) {
			send(e)
			o.recycle(e)
			delete(o.index, e.Dst.ID())
			continue
		}
		if kept != i {
			o.entries[kept] = *e
			o.index[e.Dst.ID()] = kept
			e.Payloads = nil
		}
		kept++
	}
	o.entries = o.entries[:kept]
}

package port

import "repro/internal/sim"

// Batch is the multi-payload wire envelope backends unpack at the receiving
// mailbox. It is sim.Batch verbatim, re-exported so protocol code above the
// port seam never imports a backend for it.
type Batch = sim.Batch

// Outbox is the coalescing half of the message plane: protocol endpoints
// stage typed payloads into it per destination and flush at explicit
// protocol points (the end of a commit scatter burst, of a release burst,
// of a DTM dispatch that produced several responses). Payloads staged for
// the same destination between two flushes leave as ONE wire message — a
// Batch envelope — so the per-message fixed cost (send/receive software
// overhead, hop traversal, per-peer polling) is paid once and only the
// marginal payload bytes grow with the burst.
//
// The Outbox is deliberately mechanism-free: it knows nothing about delay
// models or statistics. Flush hands each destination's staged payloads back
// to the owner, which charges its own cost model (noc.BatchDelay on the
// simulated backend) and performs the Send. Destinations flush in
// first-staged order and payloads stay in staged order per destination, so
// a deterministic backend schedules identical events for identical runs.
//
// An Outbox belongs to one execution port and must only be used from that
// port's goroutine. The zero value is an empty, ready-to-use outbox.
type Outbox struct {
	entries []OutEntry
	index   map[int]int // destination port ID → entries index
}

// OutEntry is the staged traffic for one destination.
type OutEntry struct {
	Dst      Port  // destination port
	DstTag   int   // caller-supplied destination tag (e.g. physical core ID)
	Payloads []any // staged payloads, in staged order
	Bytes    int   // summed modeled payload bytes
}

// Stage queues payload for dst, to be sent at the next Flush. dstTag is an
// opaque caller tag returned with the entry at flush time (the DTM protocol
// stores the destination's physical core ID, which its cost model needs and
// the port interface does not expose). nbytes is the payload's modeled
// on-wire size.
func (o *Outbox) Stage(dst Port, dstTag int, payload any, nbytes int) {
	if o.index == nil {
		o.index = make(map[int]int)
	}
	id := dst.ID()
	i, ok := o.index[id]
	if !ok {
		i = len(o.entries)
		o.index[id] = i
		o.entries = append(o.entries, OutEntry{Dst: dst, DstTag: dstTag})
	}
	e := &o.entries[i]
	e.Payloads = append(e.Payloads, payload)
	e.Bytes += nbytes
}

// Pending returns the number of staged payloads across all destinations.
func (o *Outbox) Pending() int {
	n := 0
	for i := range o.entries {
		n += len(o.entries[i].Payloads)
	}
	return n
}

// Flush hands every destination's staged payloads to send, in first-staged
// destination order, and resets the outbox. The caller owns the actual
// transmission: one wire message per entry, a bare payload for singleton
// entries and a Batch envelope otherwise (see the owner's send path).
// Ownership of each entry's Payloads slice transfers to send — the outbox
// starts a fresh slice per destination after a reset, so the callee may
// retain or wrap the slice without copying. Flush on an empty outbox is a
// no-op.
func (o *Outbox) Flush(send func(e *OutEntry)) {
	if len(o.entries) == 0 {
		return
	}
	for i := range o.entries {
		send(&o.entries[i])
	}
	o.entries = o.entries[:0]
	for id := range o.index {
		delete(o.index, id)
	}
}

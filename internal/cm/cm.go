// Package cm implements the distributed contention managers of TM2C (§4).
//
// A contention manager (CM) is invoked by a DTM node when the DS-Lock
// service detects a conflict (RAW, WAW or WAR). Because the system is fully
// distributed, the CM can only use information piggybacked on requests and
// stored in the local lock table — there is no global clock or shared
// counter. Five policies are provided:
//
//   - NoCM: abort and restart the requester (the paper's default baseline).
//   - BackoffRetry: abort the requester, who waits a randomized,
//     exponentially growing delay before retrying. Livelock-prone.
//   - OffsetGreedy: a distributed adaptation of Greedy that estimates
//     transaction start timestamps from piggybacked offsets. Message delay
//     is not accounted for, so different DTM nodes may order two
//     transactions differently (rule (b) of Property 1 can be violated).
//   - Wholly: priority = number of committed transactions; starvation-free.
//   - FairCM: priority = cumulative *effective* transactional time (only
//     the successful attempt of each transaction counts); starvation-free
//     and fair to cores running short transactions.
//
// Priorities are fixed for a transaction's lifespan (rule (a)), totally
// ordered with the core ID as tie-break (rule (b)), and strictly decrease in
// favourability after each commit (rule (c)) — the Property 1 discipline
// that makes Wholly and FairCM starvation-free.
package cm

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Policy selects a contention-management algorithm.
type Policy uint8

const (
	// NoCM aborts the transaction that detects the conflict.
	NoCM Policy = iota
	// BackoffRetry aborts the requester with randomized exponential backoff.
	BackoffRetry
	// OffsetGreedy prioritizes the transaction with the earliest estimated
	// start time (offset-based timestamps).
	OffsetGreedy
	// Wholly prioritizes the node with the fewest committed transactions.
	Wholly
	// FairCM prioritizes the node with the least cumulative effective
	// transactional time.
	FairCM
)

var policyNames = map[Policy]string{
	NoCM:         "none",
	BackoffRetry: "backoff",
	OffsetGreedy: "offset-greedy",
	Wholly:       "wholly",
	FairCM:       "faircm",
}

func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Parse returns the policy named s.
func Parse(s string) (Policy, error) {
	for p, name := range policyNames {
		if name == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cm: unknown policy %q (want none|backoff|offset-greedy|wholly|faircm)", s)
}

// Policies lists all policies in presentation order.
var Policies = []Policy{NoCM, BackoffRetry, OffsetGreedy, Wholly, FairCM}

// StarvationFree reports whether the policy guarantees that every
// transaction eventually commits (Properties 2 and 3 of the paper).
func (p Policy) StarvationFree() bool { return p == Wholly || p == FairCM }

// Kind classifies a conflict.
type Kind uint8

const (
	// RAW: the requester wants to read data write-locked by another
	// transaction.
	RAW Kind = iota
	// WAW: the requester wants to write data write-locked by another
	// transaction.
	WAW
	// WAR: the requester wants to write data read-locked by other
	// transactions.
	WAR
)

func (k Kind) String() string {
	switch k {
	case RAW:
		return "RAW"
	case WAW:
		return "WAW"
	default:
		return "WAR"
	}
}

// Meta is the per-transaction information piggybacked on every DTM request
// and stored with each lock grant. It is everything a CM may consult.
type Meta struct {
	Core   int      // requesting application core
	TxID   uint64   // attempt identifier (unique per core)
	Prio   int64    // lifespan priority; lower value = higher priority
	Offset sim.Time // OffsetGreedy: elapsed time since lifespan start
}

// ArrivalPrio finalizes a request's priority on the DTM side. OffsetGreedy
// estimates the transaction's start timestamp as arrival time minus the
// piggybacked offset — deliberately ignoring message flight time, exactly as
// the paper's Offset-Greedy does (§4.3), so estimates from different nodes
// may disagree.
func (p Policy) ArrivalPrio(m *Meta, now sim.Time) {
	if p == OffsetGreedy {
		m.Prio = int64(now - m.Offset)
	}
}

// Beats reports whether a has strictly higher priority than b under the
// (Prio, Core) lexicographic total order.
func (a Meta) Beats(b Meta) bool {
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.Core < b.Core
}

// Decision is a CM verdict.
type Decision uint8

const (
	// AbortRequester: the requesting transaction must abort (the lock
	// holders win).
	AbortRequester Decision = iota
	// AbortEnemies: every conflicting holder must be aborted and the
	// request granted.
	AbortEnemies
)

func (d Decision) String() string {
	if d == AbortEnemies {
		return "abort-enemies"
	}
	return "abort-requester"
}

// Resolve arbitrates a conflict between the requester and the current lock
// holders. For priority-based policies the requester wins only if it beats
// every enemy ("aborts all of them but the highest priority one", §4.1).
func (p Policy) Resolve(req Meta, enemies []Meta, kind Kind) Decision {
	switch p {
	case NoCM, BackoffRetry:
		return AbortRequester
	default:
		for _, e := range enemies {
			if !req.Beats(e) {
				return AbortRequester
			}
		}
		return AbortEnemies
	}
}

// Backoff parameters for BackoffRetry (nominal SCC durations; the runtime
// scales them with the platform's compute scale).
var (
	// BackoffBase is the initial upper bound of the randomized wait.
	BackoffBase = 10 * time.Microsecond
	// BackoffMax caps the exponential growth of the upper bound.
	BackoffMax = 1280 * time.Microsecond
)

// Local is the requester-side CM state of one application core. It
// implements the lifespan bookkeeping behind each policy's priority.
type Local struct {
	Policy Policy
	Core   int

	rng *sim.Rand

	commits      uint64   // committed transactions (Wholly priority)
	effTime      sim.Time // cumulative effective transactional time (FairCM)
	lifeStart    sim.Time // current lifespan start (OffsetGreedy offsets)
	attemptStart sim.Time // current attempt start (FairCM effective time)
	attempts     int      // aborts of the current lifespan (backoff growth)
	prio         int64    // priority fixed for the current lifespan
}

// NewLocal returns the CM-local state for core under policy p.
func NewLocal(p Policy, core int, rng *sim.Rand) *Local {
	return &Local{Policy: p, Core: core, rng: rng}
}

// StartLifespan begins a new transaction: its priority is computed once and
// stays fixed until commit (Property 1, rule (a)).
func (l *Local) StartLifespan(now sim.Time) {
	l.lifeStart = now
	l.attempts = 0
	switch l.Policy {
	case Wholly:
		l.prio = int64(l.commits)
	case FairCM:
		l.prio = int64(l.effTime)
	default:
		l.prio = 0
	}
	l.attemptStart = now
}

// StartAttempt marks the beginning of an attempt (initial or after abort).
func (l *Local) StartAttempt(now sim.Time) { l.attemptStart = now }

// RequestMeta builds the metadata to piggyback on a DTM request issued now
// by attempt txID.
func (l *Local) RequestMeta(txID uint64, now sim.Time) Meta {
	m := Meta{Core: l.Core, TxID: txID, Prio: l.prio}
	if l.Policy == OffsetGreedy {
		m.Offset = now - l.lifeStart
	}
	return m
}

// OnAbort records an abort and returns how long the core should wait before
// restarting (zero except under BackoffRetry).
func (l *Local) OnAbort() time.Duration {
	l.attempts++
	if l.Policy != BackoffRetry {
		return 0
	}
	bound := BackoffBase << uint(min(l.attempts-1, 30))
	if bound > BackoffMax {
		bound = BackoffMax
	}
	return time.Duration(l.rng.Int63() % int64(bound))
}

// OnCommit finalizes the lifespan: the commit counter and the effective
// transactional time (the successful attempt only, §4.5) both advance, so
// the next lifespan's priority is strictly less favourable (rule (c)).
func (l *Local) OnCommit(now sim.Time) {
	l.commits++
	d := now - l.attemptStart
	if d <= 0 {
		d = 1 // guarantee strict monotonicity of effTime
	}
	l.effTime += d
	l.attempts = 0
}

// Commits returns the number of committed transactions.
func (l *Local) Commits() uint64 { return l.commits }

// EffectiveTime returns the cumulative successful-attempt time.
func (l *Local) EffectiveTime() sim.Time { return l.effTime }

// Attempts returns the abort count of the current lifespan.
func (l *Local) Attempts() int { return l.attempts }

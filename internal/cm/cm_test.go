package cm

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

func TestPolicyStringAndParse(t *testing.T) {
	for _, p := range Policies {
		got, err := Parse(p.String())
		if err != nil || got != p {
			t.Errorf("Parse(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse(bogus) succeeded")
	}
	if Policy(200).String() == "" {
		t.Error("unknown policy String is empty")
	}
}

func TestStarvationFreeFlags(t *testing.T) {
	free := map[Policy]bool{NoCM: false, BackoffRetry: false, OffsetGreedy: false, Wholly: true, FairCM: true}
	for p, want := range free {
		if p.StarvationFree() != want {
			t.Errorf("%v.StarvationFree() = %v, want %v", p, p.StarvationFree(), want)
		}
	}
}

func TestKindString(t *testing.T) {
	if RAW.String() != "RAW" || WAW.String() != "WAW" || WAR.String() != "WAR" {
		t.Fatal("Kind.String mismatch")
	}
}

func TestBeatsIsStrictTotalOrder(t *testing.T) {
	// Property 1 rule (b): priorities with core tie-break totally order
	// distinct transactions.
	if err := quick.Check(func(p1, p2 int64, c1, c2 uint8) bool {
		a := Meta{Core: int(c1), Prio: p1}
		b := Meta{Core: int(c2), Prio: p2}
		if a.Prio == b.Prio && a.Core == b.Core {
			return true // same identity: skip
		}
		// Exactly one of a<b, b<a (antisymmetry + totality).
		return a.Beats(b) != b.Beats(a)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBeatsTransitive(t *testing.T) {
	if err := quick.Check(func(p [3]int8, c [3]uint8) bool {
		m := make([]Meta, 3)
		for i := range m {
			m[i] = Meta{Core: int(c[i]), Prio: int64(p[i])}
		}
		if m[0].Beats(m[1]) && m[1].Beats(m[2]) {
			return m[0].Beats(m[2])
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBeatsIrreflexive(t *testing.T) {
	m := Meta{Core: 3, Prio: 17}
	if m.Beats(m) {
		t.Fatal("Meta beats itself")
	}
}

func TestResolveAlwaysAbortsRequesterForSimplePolicies(t *testing.T) {
	req := Meta{Core: 0, Prio: -100} // best possible priority
	enemies := []Meta{{Core: 1, Prio: 100}}
	for _, p := range []Policy{NoCM, BackoffRetry} {
		if d := p.Resolve(req, enemies, RAW); d != AbortRequester {
			t.Errorf("%v.Resolve = %v, want abort-requester", p, d)
		}
	}
}

func TestResolvePriorityPolicies(t *testing.T) {
	for _, p := range []Policy{OffsetGreedy, Wholly, FairCM} {
		// Requester beats the single enemy.
		d := p.Resolve(Meta{Core: 0, Prio: 1}, []Meta{{Core: 1, Prio: 2}}, WAW)
		if d != AbortEnemies {
			t.Errorf("%v: higher-priority requester should win", p)
		}
		// Requester must beat ALL enemies (WAR with a reader set).
		d = p.Resolve(Meta{Core: 0, Prio: 1},
			[]Meta{{Core: 1, Prio: 2}, {Core: 2, Prio: 0}}, WAR)
		if d != AbortRequester {
			t.Errorf("%v: requester losing to one of several enemies should abort", p)
		}
		// Tie on priority: lower core wins.
		d = p.Resolve(Meta{Core: 0, Prio: 5}, []Meta{{Core: 1, Prio: 5}}, RAW)
		if d != AbortEnemies {
			t.Errorf("%v: tie should break by core ID", p)
		}
		d = p.Resolve(Meta{Core: 7, Prio: 5}, []Meta{{Core: 1, Prio: 5}}, RAW)
		if d != AbortRequester {
			t.Errorf("%v: tie with lower-core enemy should abort requester", p)
		}
	}
}

func TestDecisionString(t *testing.T) {
	if AbortRequester.String() != "abort-requester" || AbortEnemies.String() != "abort-enemies" {
		t.Fatal("Decision.String mismatch")
	}
}

func TestOffsetGreedyArrivalPrio(t *testing.T) {
	// A transaction that started at t=100 sends a request at t=400 with
	// offset 300. Arriving at t=450 (50ns flight), the DTM estimates start
	// = 450-300 = 150: the flight time inflates the estimate, which is the
	// documented inconsistency of Offset-Greedy.
	m := Meta{Offset: 300}
	OffsetGreedy.ArrivalPrio(&m, 450)
	if m.Prio != 150 {
		t.Fatalf("estimated start = %d, want 150", m.Prio)
	}
	// Other policies leave the piggybacked priority untouched.
	m2 := Meta{Prio: 9, Offset: 300}
	FairCM.ArrivalPrio(&m2, 450)
	if m2.Prio != 9 {
		t.Fatalf("FairCM touched Prio: %d", m2.Prio)
	}
}

func TestOffsetGreedyInconsistentViews(t *testing.T) {
	// Two DTM nodes receive requests from two transactions with different
	// flight delays; their estimated orders disagree — the rule (b)
	// violation the paper describes in §4.3.
	txA := Meta{Core: 0, Offset: 100} // started at 0, sends at 100
	txB := Meta{Core: 1, Offset: 95}  // started at 10, sends at 105

	a1, b1 := txA, txB
	OffsetGreedy.ArrivalPrio(&a1, 101) // 1ns flight: est A = 1
	OffsetGreedy.ArrivalPrio(&b1, 125) // 20ns flight: est B = 30
	a2, b2 := txA, txB
	OffsetGreedy.ArrivalPrio(&a2, 140) // 40ns flight: est A = 40
	OffsetGreedy.ArrivalPrio(&b2, 106) // 1ns flight: est B = 11

	node1AFirst := a1.Beats(b1)
	node2AFirst := a2.Beats(b2)
	if node1AFirst == node2AFirst {
		t.Fatal("expected the two nodes to disagree on ordering")
	}
}

func TestLocalWhollyPriorityIsCommitCount(t *testing.T) {
	rng := sim.NewRand(1)
	l := NewLocal(Wholly, 3, &rng)
	l.StartLifespan(0)
	m := l.RequestMeta(1, 10)
	if m.Prio != 0 || m.Core != 3 || m.TxID != 1 {
		t.Fatalf("meta = %+v", m)
	}
	l.OnCommit(100)
	l.StartLifespan(100)
	if m := l.RequestMeta(2, 110); m.Prio != 1 {
		t.Fatalf("after one commit Prio = %d, want 1", m.Prio)
	}
	if l.Commits() != 1 {
		t.Fatalf("Commits = %d", l.Commits())
	}
}

func TestLocalFairCMUsesEffectiveTimeOnly(t *testing.T) {
	rng := sim.NewRand(1)
	l := NewLocal(FairCM, 2, &rng)
	// Lifespan: start 0, abort at 50, restart at 60, commit at 100.
	// Only the successful attempt (60..100) counts.
	l.StartLifespan(0)
	l.OnAbort()
	l.StartAttempt(60)
	l.OnCommit(100)
	if l.EffectiveTime() != 40 {
		t.Fatalf("effective time = %v, want 40", l.EffectiveTime())
	}
	l.StartLifespan(100)
	if m := l.RequestMeta(5, 120); m.Prio != 40 {
		t.Fatalf("Prio = %d, want 40", m.Prio)
	}
}

func TestLocalFairCMEffTimeStrictlyIncreases(t *testing.T) {
	rng := sim.NewRand(1)
	l := NewLocal(FairCM, 0, &rng)
	l.StartLifespan(5)
	l.StartAttempt(5)
	l.OnCommit(5) // zero-duration attempt must still increase effTime
	if l.EffectiveTime() == 0 {
		t.Fatal("effective time did not strictly increase (rule (c) violated)")
	}
}

func TestLocalPriorityFixedDuringLifespan(t *testing.T) {
	rng := sim.NewRand(1)
	l := NewLocal(Wholly, 0, &rng)
	l.StartLifespan(0)
	p1 := l.RequestMeta(1, 10).Prio
	l.OnAbort() // abort does not change the lifespan priority (rule (a))
	l.StartAttempt(20)
	p2 := l.RequestMeta(2, 30).Prio
	if p1 != p2 {
		t.Fatalf("priority changed mid-lifespan: %d -> %d", p1, p2)
	}
}

func TestBackoffGrowsAndResets(t *testing.T) {
	rng := sim.NewRand(7)
	l := NewLocal(BackoffRetry, 0, &rng)
	l.StartLifespan(0)
	// The random wait is bounded by BackoffBase << attempts; verify the
	// bound grows and stays under BackoffMax.
	maxSeen := time.Duration(0)
	for i := 0; i < 20; i++ {
		d := l.OnAbort()
		if d < 0 {
			t.Fatalf("negative backoff %v", d)
		}
		if d >= BackoffMax {
			t.Fatalf("backoff %v exceeds cap %v", d, BackoffMax)
		}
		if d > maxSeen {
			maxSeen = d
		}
	}
	if maxSeen <= BackoffBase {
		t.Fatalf("backoff never grew beyond the base bound (max seen %v)", maxSeen)
	}
	l.OnCommit(1000)
	if l.Attempts() != 0 {
		t.Fatal("attempts not reset on commit")
	}
}

func TestNonBackoffPoliciesRestartImmediately(t *testing.T) {
	rng := sim.NewRand(1)
	for _, p := range []Policy{NoCM, OffsetGreedy, Wholly, FairCM} {
		l := NewLocal(p, 0, &rng)
		l.StartLifespan(0)
		if d := l.OnAbort(); d != 0 {
			t.Errorf("%v backoff = %v, want 0", p, d)
		}
	}
}

func TestRuleCPriorityStrictlyDropsAfterCommit(t *testing.T) {
	// Property 1 rule (c) for both starvation-free CMs under random commit
	// schedules.
	if err := quick.Check(func(seed uint64, spans []uint16) bool {
		if len(spans) == 0 {
			return true
		}
		rng := sim.NewRand(seed)
		for _, p := range []Policy{Wholly, FairCM} {
			l := NewLocal(p, 1, &rng)
			now := sim.Time(0)
			last := int64(-1)
			for _, s := range spans {
				l.StartLifespan(now)
				m := l.RequestMeta(1, now)
				if last >= 0 && m.Prio <= last {
					return false // must be strictly worse (larger)
				}
				last = m.Prio
				now += sim.Time(s)
				l.OnCommit(now)
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package net

import (
	"fmt"
	gonet "net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/port"
	"repro/internal/wire"
)

// helloMagic opens every handshake frame.
var helloMagic = [4]byte{'T', 'M', '2', 'C'}

// resolveAddr turns a configured per-rank address plus session into a
// concrete (network, address) pair. Unix sockets get a per-session path
// suffix so successive systems in one process never collide; TCP ports are
// offset by session*ranks (CLI fork mode hands out consecutive base ports
// per rank, so the stride keeps sessions disjoint).
func resolveAddr(addr string, session, ranks int) (string, string, error) {
	if p, ok := strings.CutPrefix(addr, "unix:"); ok {
		if p == "" {
			return "", "", fmt.Errorf("net: empty unix socket path in %q", addr)
		}
		if session > 0 {
			p = fmt.Sprintf("%s.s%d", p, session)
		}
		return "unix", p, nil
	}
	host, portStr, err := gonet.SplitHostPort(addr)
	if err != nil {
		return "", "", fmt.Errorf("net: address %q is neither unix:<path> nor host:port: %w", addr, err)
	}
	pn, err := strconv.Atoi(portStr)
	if err != nil {
		return "", "", fmt.Errorf("net: non-numeric port in %q", addr)
	}
	return "tcp", gonet.JoinHostPort(host, strconv.Itoa(pn+session*ranks)), nil
}

// link is the persistent connection to one peer rank. The higher-ranked
// side dials (and redials with backoff on failure); the lower-ranked side
// accepts (and swaps in replacement connections). Writers serialize on mu;
// one readLoop goroutine serves each physical connection.
type link struct {
	eng    *Engine
	peer   int
	dialer bool
	netw   string // peer's resolved network+address (dial side)
	addr   string

	mu      sync.Mutex
	cond    *sync.Cond
	conn    gonet.Conn
	closed  bool
	dialing bool
}

// waitConnected blocks until the link has a live connection (or deadline).
func (l *link) waitConnected(deadline time.Time) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.conn == nil && !l.closed {
		if time.Now().After(deadline) {
			return fmt.Errorf("net: rank %d: no connection to rank %d by %v",
				l.eng.cfg.Rank, l.peer, l.eng.cfg.ConnectTimeout)
		}
		// cond has no deadline wait; poke ourselves periodically.
		l.mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		l.mu.Lock()
	}
	if l.closed {
		return fmt.Errorf("net: rank %d: link to rank %d closed during connect", l.eng.cfg.Rank, l.peer)
	}
	return nil
}

// write sends one frame, blocking while the link is mid-reconnect (bounded
// by ConnectTimeout — after that the frame is reported lost).
func (l *link) write(kind uint8, body []byte) error {
	deadline := time.Now().Add(l.eng.cfg.ConnectTimeout)
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.conn == nil && !l.closed {
		if time.Now().After(deadline) {
			return fmt.Errorf("net: rank %d: link to rank %d down", l.eng.cfg.Rank, l.peer)
		}
		l.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
		l.mu.Lock()
	}
	if l.closed {
		return fmt.Errorf("net: rank %d: link to rank %d closed", l.eng.cfg.Rank, l.peer)
	}
	c := l.conn
	if err := wire.WriteFrame(c, kind, body); err != nil {
		l.dropLocked(c)
		return err
	}
	return nil
}

// dropLocked discards a failed connection and, on the dialing side, starts
// the redial loop. Called with mu held.
func (l *link) dropLocked(c gonet.Conn) {
	if l.conn != c {
		return // already replaced
	}
	l.conn = nil
	c.Close()
	if l.dialer && !l.closed && !l.dialing {
		l.dialing = true
		go l.redial()
	}
}

// setConn installs a fresh connection (handshake already complete) and
// starts its read loop.
func (l *link) setConn(c gonet.Conn) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		c.Close()
		return
	}
	old := l.conn
	l.conn = c
	l.mu.Unlock()
	if old != nil {
		old.Close()
	}
	l.cond.Broadcast()
	go l.eng.readLoop(l, c)
}

func (l *link) close() {
	l.mu.Lock()
	l.closed = true
	c := l.conn
	l.conn = nil
	l.mu.Unlock()
	if c != nil {
		c.Close()
	}
	l.cond.Broadcast()
}

// redial dials the peer with exponential backoff until connected, the link
// closes, or ConnectTimeout expires (which faults the engine: a peer that
// stays away that long is gone, and every RPC toward it would time out
// anyway).
func (l *link) redial() {
	e := l.eng
	backoff := 5 * time.Millisecond
	deadline := time.Now().Add(e.cfg.ConnectTimeout)
	for {
		l.mu.Lock()
		closed := l.closed
		l.mu.Unlock()
		if closed {
			return
		}
		c, err := gonet.DialTimeout(l.netw, l.addr, 2*time.Second)
		if err == nil {
			if err = l.handshake(c); err == nil {
				l.mu.Lock()
				l.dialing = false
				l.mu.Unlock()
				l.setConn(c)
				return
			}
			c.Close()
		}
		if time.Now().After(deadline) {
			e.setFault(fmt.Errorf("net: rank %d: cannot reach rank %d at %s: %v",
				e.cfg.Rank, l.peer, l.addr, err))
			l.mu.Lock()
			l.dialing = false
			l.mu.Unlock()
			return
		}
		time.Sleep(backoff)
		if backoff < 250*time.Millisecond {
			backoff *= 2
		}
	}
}

// handshake runs the dialer's side: send HELLO, read and validate the
// acceptor's HELLO.
func (l *link) handshake(c gonet.Conn) error {
	e := l.eng
	if err := wire.WriteFrame(c, frHello, helloBody(e.cfg.Rank, e.cfg.Session)); err != nil {
		return err
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer c.SetReadDeadline(time.Time{})
	kind, body, err := wire.ReadFrame(c)
	if err != nil {
		return err
	}
	rank, session, err := parseHello(kind, body)
	if err != nil {
		return err
	}
	if rank != l.peer || session != e.cfg.Session {
		return fmt.Errorf("net: dialed rank %d session %d but peer says rank %d session %d",
			l.peer, e.cfg.Session, rank, session)
	}
	return nil
}

func helloBody(rank, session int) []byte {
	enc := wire.NewEnc(nil)
	enc.U8(helloMagic[0])
	enc.U8(helloMagic[1])
	enc.U8(helloMagic[2])
	enc.U8(helloMagic[3])
	enc.U16(wire.Version)
	enc.U32(uint32(rank))
	enc.U32(uint32(session))
	return enc.Bytes()
}

func parseHello(kind uint8, body []byte) (rank, session int, err error) {
	if kind != frHello {
		return 0, 0, fmt.Errorf("net: expected HELLO frame, got kind %d", kind)
	}
	d := wire.NewDec(body, nil)
	var magic [4]byte
	for i := range magic {
		magic[i] = d.U8()
	}
	ver := d.U16()
	rank = int(d.U32())
	session = int(d.U32())
	if d.Err() != nil {
		return 0, 0, d.Err()
	}
	if magic != helloMagic {
		return 0, 0, fmt.Errorf("net: bad handshake magic %q", magic[:])
	}
	if ver != wire.Version {
		return 0, 0, fmt.Errorf("net: wire version mismatch: peer %d, local %d", ver, wire.Version)
	}
	return rank, session, nil
}

// acceptLoop serves the listener: each incoming connection identifies its
// rank via HELLO and is installed on (or replaces) that rank's link.
func (e *Engine) acceptLoop(ln gonet.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		go e.acceptConn(c)
	}
}

func (e *Engine) acceptConn(c gonet.Conn) {
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	kind, body, err := wire.ReadFrame(c)
	if err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	rank, session, err := parseHello(kind, body)
	if err != nil || session != e.cfg.Session || rank <= e.cfg.Rank || rank >= e.cfg.Ranks {
		c.Close()
		return
	}
	if err := wire.WriteFrame(c, frHello, helloBody(e.cfg.Rank, e.cfg.Session)); err != nil {
		c.Close()
		return
	}
	e.links[rank].setConn(c)
}

// readLoop serves one physical connection until it breaks or the engine
// closes, dispatching every frame inline: port messages push into local
// mailboxes (never blocking — see Port.push), state RPCs execute against
// the local memory/register owners, control frames feed the barriers.
func (e *Engine) readLoop(l *link, c gonet.Conn) {
	for {
		kind, body, err := wire.ReadFrame(c)
		if err != nil {
			l.mu.Lock()
			if !l.closed {
				l.dropLocked(c)
			}
			l.mu.Unlock()
			return
		}
		e.handleFrame(l, kind, body)
	}
}

func (e *Engine) handleFrame(l *link, kind uint8, body []byte) {
	switch kind {
	case frMsg:
		d := wire.NewDec(body, e.resolvePort)
		dst := int(d.U32())
		src := int(d.U32())
		payload, err := wire.DecodePayload(d)
		if err != nil {
			e.setFault(fmt.Errorf("net: rank %d: bad MSG frame from rank %d: %w", e.cfg.Rank, l.peer, err))
			return
		}
		p, ok := e.resolvePort(dst).(*Port)
		if !ok {
			e.setFault(fmt.Errorf("net: rank %d: MSG for port %d, which is not hosted here", e.cfg.Rank, dst))
			return
		}
		p.push(port.Msg{From: src, Payload: payload})
	case frStateReq:
		e.serveState(l, body)
	case frStateResp:
		d := wire.NewDec(body, nil)
		corr := d.U64()
		if d.Err() != nil {
			return
		}
		e.pendMu.Lock()
		ch := e.pend[corr]
		delete(e.pend, corr)
		e.pendMu.Unlock()
		if ch != nil {
			ch <- body[8:]
		}
	case frCtrl:
		if len(body) == 0 {
			return
		}
		switch body[0] {
		case ctrlDone:
			e.doneCh <- struct{}{}
		case ctrlDrain:
			e.drainCh <- struct{}{}
		case ctrlStats:
			e.statsCh <- body[1:]
		}
	case frHello:
		// Duplicate HELLO on an established connection: ignore.
	default:
		e.setFault(fmt.Errorf("net: rank %d: unknown frame kind %d from rank %d", e.cfg.Rank, kind, l.peer))
	}
}

// Package net implements the cross-process execution backend of TM2C-Go:
// the system's cores are partitioned over separate OS processes ("ranks"),
// each rank hosts its share as live-style goroutine ports, and messages to
// cores of other ranks travel as length-prefixed binary frames
// (internal/wire) over persistent TCP or Unix-domain connections.
//
// The backend relies on replicated construction: every rank builds the
// identical System from the identical Config (differing only in
// NetConfig.Rank), so spawn order — and therefore every port ID — agrees
// across processes without any name service. A port owned by another rank
// is represented by a Stub that serializes sends onto the owning rank's
// connection; everything else about the DTM protocol is unchanged.
//
// Shared state is partitioned the same way: memory words and allocation
// bump pointers are homed on rank 0, per-core status/TAS registers on the
// rank owning the core, both reached through synchronous state RPCs served
// directly by the connection readers (see state.go, mem.SetRemote).
//
// Failure handling: a broken connection is redialed with backoff by the
// higher-ranked side while the acceptor swaps in the replacement; frames in
// flight at the moment of the break are lost, which the DTM layer absorbs
// through per-RPC deadlines (Config.RPCDeadline → ReasonTimeout aborts with
// conservative lock release). Shutdown is drain-then-close: ranks first
// agree every worker finished (DONE barrier), then flush their connections
// (DRAIN barrier — per-connection FIFO guarantees every release message has
// been delivered), and only then kill the service loops, so lock tables
// quiesce empty exactly like the live backend.
package net

import (
	"fmt"
	gonet "net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/port"
	"repro/internal/sim"
)

// Frame kinds (the u8 after the length prefix; see docs/WIRE.md).
const (
	frHello     uint8 = 1 // handshake: magic, version, rank, session
	frMsg       uint8 = 2 // port message: dst port, src port, payload
	frStateReq  uint8 = 3 // state RPC request: corr ID, op, args
	frStateResp uint8 = 4 // state RPC response: corr ID, result
	frCtrl      uint8 = 5 // control: subkind (done | drain | stats)
)

// Control subkinds.
const (
	ctrlDone  uint8 = 1 // this rank's workers all finished
	ctrlDrain uint8 = 2 // conn flush marker: no more port messages behind it
	ctrlStats uint8 = 3 // this rank's serialized post-run statistics
)

// killSentinel unwinds a port goroutine blocked in a receive when the
// engine shuts down; the spawn wrapper recovers it (same pattern as the sim
// kernel and the live engine).
type killSentinel struct{}

// Config places one engine within a cross-process system.
type Config struct {
	Rank    int
	Ranks   int
	Addrs   []string // per-rank listen addresses ("unix:<path>" or TCP "host:port")
	Session int      // distinguishes successive systems over one address base
	Seed    uint64

	// ConnectTimeout bounds the initial rendezvous and any reconnect
	// attempt (default 30s).
	ConnectTimeout time.Duration
	// StateTimeout bounds one synchronous state RPC (default 10s); an
	// expiry faults the run — unlike lock RPCs, memory has no retry path.
	StateTimeout time.Duration
}

// sessionCounter auto-assigns sessions (NetConfig.Session == -1): every
// process runs the same deterministic sequence of systems, so per-process
// counters stay aligned across ranks.
var sessionCounter atomic.Int64

// NextSession draws from the per-process auto-session counter.
func NextSession() int { return int(sessionCounter.Add(1) - 1) }

// Engine owns one rank's goroutine ports and peer connections.
type Engine struct {
	cfg   Config
	ports []port.Port // by spawn ID: *Port (local) or *Stub (remote)

	started chan struct{} // closed by Start; gates every port goroutine
	quit    chan struct{} // closed by Shutdown; drains and kills receivers
	all     sync.WaitGroup

	start time.Time // monotonic epoch, set just before started closes

	mu      sync.Mutex
	fault   any
	running bool
	down    bool
	closed  bool

	ln    gonet.Listener
	links []*link // by peer rank; links[cfg.Rank] == nil

	// State-RPC correlation: corr → waiting caller.
	pendMu sync.Mutex
	pend   map[uint64]chan []byte
	corr   atomic.Uint64

	// Control-plane rendezvous (one token per peer rank).
	doneCh  chan struct{}
	drainCh chan struct{}
	statsCh chan []byte

	// State plane (BindState).
	st stateHooks

	// Drops counts remote sends lost to broken connections (they surface
	// as RPC timeouts at the protocol layer).
	Drops atomic.Uint64
}

// New validates cfg and returns an engine. No sockets are opened until
// Start.
func New(cfg Config) (*Engine, error) {
	if cfg.Ranks < 2 {
		return nil, fmt.Errorf("net: need >= 2 ranks, got %d", cfg.Ranks)
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.Ranks {
		return nil, fmt.Errorf("net: rank %d out of range [0,%d)", cfg.Rank, cfg.Ranks)
	}
	if len(cfg.Addrs) != cfg.Ranks {
		return nil, fmt.Errorf("net: need %d addresses, got %d", cfg.Ranks, len(cfg.Addrs))
	}
	if cfg.Session < 0 {
		return nil, fmt.Errorf("net: unresolved session %d (use NextSession)", cfg.Session)
	}
	if cfg.ConnectTimeout <= 0 {
		cfg.ConnectTimeout = 30 * time.Second
	}
	if cfg.StateTimeout <= 0 {
		cfg.StateTimeout = 10 * time.Second
	}
	e := &Engine{
		cfg:     cfg,
		started: make(chan struct{}),
		quit:    make(chan struct{}),
		pend:    make(map[uint64]chan []byte),
		doneCh:  make(chan struct{}, cfg.Ranks),
		drainCh: make(chan struct{}, cfg.Ranks),
		statsCh: make(chan []byte, cfg.Ranks),
	}
	e.links = make([]*link, cfg.Ranks)
	for r := 0; r < cfg.Ranks; r++ {
		if r == cfg.Rank {
			continue
		}
		netw, addr, err := resolveAddr(cfg.Addrs[r], cfg.Session, cfg.Ranks)
		if err != nil {
			return nil, err
		}
		l := &link{eng: e, peer: r, dialer: cfg.Rank > r, netw: netw, addr: addr}
		l.cond = sync.NewCond(&l.mu)
		e.links[r] = l
	}
	return e, nil
}

// Rank returns this engine's rank.
func (e *Engine) Rank() int { return e.cfg.Rank }

// Spawn creates the port of spawn index len(ports). If owner is this rank
// the port runs fn in its own goroutine (gated on Start, exactly like the
// live engine); otherwise a Stub stands in and fn never runs here — the
// owning rank, constructing the same system, spawns the real one. Spawn
// must not be called after Start.
func (e *Engine) Spawn(name string, owner int, fn func(port.Port)) port.Port {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		panic("net: Spawn after Start")
	}
	id := len(e.ports)
	if owner != e.cfg.Rank {
		st := &Stub{eng: e, id: id, rank: owner, name: name}
		e.ports = append(e.ports, st)
		e.mu.Unlock()
		return st
	}
	p := &Port{
		eng:  e,
		id:   id,
		name: name,
		rng:  sim.NewRand(e.cfg.Seed ^ (0x9e3779b97f4a7c15 * uint64(id+1))),
		wake: make(chan struct{}, 1),
	}
	e.ports = append(e.ports, p)
	e.mu.Unlock()
	e.all.Add(1)
	go func() {
		defer e.all.Done()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); !ok {
					e.setFault(r)
				}
			}
		}()
		<-e.started
		fn(p)
	}()
	return p
}

// resolvePort maps a wire port ID to the local replica (wire.PortResolver).
func (e *Engine) resolvePort(id int) port.Port {
	if id < 0 || id >= len(e.ports) {
		return nil
	}
	return e.ports[id]
}

// Start opens the listener, establishes a connection to every peer (dialing
// the lower-ranked side, accepting the higher), then releases the port
// goroutines and starts the clock. The connection rendezvous doubles as the
// start barrier: no rank proceeds until every peer it talks to exists.
func (e *Engine) Start() error {
	e.mu.Lock()
	if e.running {
		e.mu.Unlock()
		panic("net: Start called twice")
	}
	e.mu.Unlock()

	// Listen if any higher rank will dial us.
	if e.cfg.Rank < e.cfg.Ranks-1 {
		netw, addr, err := resolveAddr(e.cfg.Addrs[e.cfg.Rank], e.cfg.Session, e.cfg.Ranks)
		if err != nil {
			return err
		}
		ln, err := gonet.Listen(netw, addr)
		if err != nil {
			return fmt.Errorf("net: rank %d listen %s: %w", e.cfg.Rank, addr, err)
		}
		e.ln = ln
		go e.acceptLoop(ln)
	}
	// Dial every lower rank (with backoff: the peer's listener may not
	// exist yet — that skew IS the bootstrap).
	for r := 0; r < e.cfg.Rank; r++ {
		l := e.links[r]
		l.mu.Lock()
		l.dialing = true
		l.mu.Unlock()
		go l.redial()
	}
	// Rendezvous: wait until every link is connected.
	deadline := time.Now().Add(e.cfg.ConnectTimeout)
	for _, l := range e.links {
		if l == nil {
			continue
		}
		if err := l.waitConnected(deadline); err != nil {
			return err
		}
	}
	e.mu.Lock()
	e.running = true
	e.mu.Unlock()
	e.start = time.Now()
	close(e.started)
	return nil
}

// Now returns the monotonic time since Start as a sim.Time (nanoseconds);
// zero before Start.
func (e *Engine) Now() sim.Time {
	e.mu.Lock()
	running := e.running
	e.mu.Unlock()
	if !running {
		return 0
	}
	return sim.Time(time.Since(e.start))
}

// BarrierDone announces that this rank's workers all finished and waits for
// every peer's announcement. DTM service loops keep serving remote traffic
// throughout — that is the point: a rank may only tear down once no process
// can still need its locks.
func (e *Engine) BarrierDone(timeout time.Duration) error {
	return e.barrier(ctrlDone, nil, e.doneCh, timeout)
}

// BarrierDrain flushes every connection: a DRAIN marker is written behind
// all previously sent port messages, and per-connection FIFO means that
// once every peer's marker has been read, every message addressed to this
// rank has already been pushed into its destination mailbox. Call after
// BarrierDone; Shutdown's mailbox drain then leaves the lock tables empty.
func (e *Engine) BarrierDrain(timeout time.Duration) error {
	return e.barrier(ctrlDrain, nil, e.drainCh, timeout)
}

func (e *Engine) barrier(sub uint8, payload []byte, ch chan struct{}, timeout time.Duration) error {
	body := append([]byte{sub}, payload...)
	for _, l := range e.links {
		if l == nil {
			continue
		}
		if err := l.write(frCtrl, body); err != nil {
			return fmt.Errorf("net: rank %d: barrier %d to rank %d: %w", e.cfg.Rank, sub, l.peer, err)
		}
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	for i := 0; i < e.cfg.Ranks-1; i++ {
		select {
		case <-ch:
		case <-t.C:
			return fmt.Errorf("net: rank %d: barrier %d timed out after %v (%d/%d peers)",
				e.cfg.Rank, sub, timeout, i, e.cfg.Ranks-1)
		}
	}
	return nil
}

// ExchangeStats broadcasts this rank's serialized post-run statistics and
// returns every peer's. Call after Shutdown (local counters quiesced) and
// before Close (the connections carry the exchange).
func (e *Engine) ExchangeStats(local []byte, timeout time.Duration) ([][]byte, error) {
	body := append([]byte{ctrlStats}, local...)
	for _, l := range e.links {
		if l == nil {
			continue
		}
		if err := l.write(frCtrl, body); err != nil {
			return nil, fmt.Errorf("net: rank %d: stats to rank %d: %w", e.cfg.Rank, l.peer, err)
		}
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	var out [][]byte
	for i := 0; i < e.cfg.Ranks-1; i++ {
		select {
		case b := <-e.statsCh:
			out = append(out, b)
		case <-t.C:
			return nil, fmt.Errorf("net: rank %d: stats exchange timed out after %v", e.cfg.Rank, timeout)
		}
	}
	return out, nil
}

// Shutdown drains and terminates every local port goroutine (mirroring the
// live engine: a killed receiver empties its mailbox before unwinding) and
// re-raises the first fault. Connections stay up for ExchangeStats; Close
// tears them down.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	if !e.down {
		e.down = true
		close(e.quit)
	}
	e.mu.Unlock()
	e.all.Wait()
	e.mu.Lock()
	f := e.fault
	e.fault = nil
	e.mu.Unlock()
	if f != nil {
		panic(f)
	}
}

// Close tears down the listener and every connection. State RPCs fail fast
// afterwards (post-run raw verification must run on the owning rank).
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	ln := e.ln
	e.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, l := range e.links {
		if l != nil {
			l.close()
		}
	}
}

// Fault returns the first panic value captured from a port goroutine or the
// transport, if any. Watchdogs consult it while waiting for workers.
func (e *Engine) Fault() any {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fault
}

func (e *Engine) setFault(r any) {
	e.mu.Lock()
	if e.fault == nil {
		e.fault = r
	}
	e.mu.Unlock()
}

func (e *Engine) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

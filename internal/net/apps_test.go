// Cross-process backend tests: the five applications of the evaluation run
// on the net backend, with the ranks either as goroutine-hosted engine
// replicas inside one test binary (cheap, race-checked) or as genuinely
// separate OS processes re-execing this test binary (TestNetOSProcesses).
//
// Every rank builds the identical System from the identical Config (only
// Net.Rank differs) and drives the identical workload; the backends
// rendezvous over unix sockets in a per-test temp dir. The sim backend's
// serializability audit is unavailable here, so correctness is checked at
// the invariant level like on the live backend — conservation laws,
// structural integrity, empty lock tables at quiesce — plus one property
// the other backends cannot express: after the stats exchange, every rank
// must report the identical merged system-wide totals.
package net_test

import (
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/bank"
	"repro/internal/apps/hashset"
	"repro/internal/apps/intset"
	"repro/internal/apps/mapreduce"
	"repro/internal/apps/skiplist"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// netWindow is the measurement window per app. Short: the point is
// exercising the wire protocol, not throughput.
const netWindow = 40 * time.Millisecond

// netApp is one workload: mut tweaks the shared Config, run drives the
// system to quiescence, and the returned check validates app invariants
// against raw memory — rank 0 only, since the words are homed there.
type netApp struct {
	mut func(*core.Config)
	run func(s *core.System) (*core.Stats, func() error)
}

// netApps is the workload registry, shared by the in-process multi-rank
// tests and the OS-process fork harness (which looks workloads up by name
// from the child's environment).
var netApps = map[string]netApp{
	"bank": {
		run: func(s *core.System) (*core.Stats, func() error) {
			const accounts = 128
			b := bank.New(s, accounts)
			s.SpawnWorkers(b.TransferWorker(10))
			st := s.Run(netWindow)
			return st, func() error {
				if b.TotalRaw() != b.Total() {
					return fmt.Errorf("money not conserved: %d != %d", b.TotalRaw(), b.Total())
				}
				return nil
			}
		},
	},
	"hashset": {
		run: func(s *core.System) (*core.Stats, func() error) {
			set := hashset.New(s, 32)
			r := sim.NewRand(11)
			keys := set.InitFill(128, 512, &r)
			s.SpawnWorkers(set.Worker(hashset.Workload{UpdatePct: 30, KeyRange: 512}))
			st := s.Run(netWindow)
			return st, func() error {
				if len(keys) == 0 {
					return fmt.Errorf("init fill inserted nothing")
				}
				seen := make(map[uint64]bool)
				for _, k := range set.RawKeys() {
					if seen[k] {
						return fmt.Errorf("duplicate key %d in hash set", k)
					}
					seen[k] = true
				}
				return nil
			}
		},
	},
	"intset": {
		run: func(s *core.System) (*core.Stats, func() error) {
			l := intset.New(s)
			r := sim.NewRand(13)
			l.InitFill(96, 384, &r)
			s.SpawnWorkers(l.Worker(intset.Workload{UpdatePct: 25, KeyRange: 384, Mode: intset.ElasticEarly}))
			st := s.Run(netWindow)
			return st, func() error {
				keys := l.RawKeys()
				if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
					return fmt.Errorf("list keys out of order: %v", keys)
				}
				for i := 1; i < len(keys); i++ {
					if keys[i] == keys[i-1] {
						return fmt.Errorf("duplicate key %d in sorted list", keys[i])
					}
				}
				return nil
			}
		},
	},
	"skiplist": {
		run: func(s *core.System) (*core.Stats, func() error) {
			l := skiplist.New(s)
			r := sim.NewRand(17)
			l.InitFill(96, 384, &r)
			s.SpawnWorkers(l.Worker(skiplist.Workload{UpdatePct: 25, KeyRange: 384}))
			st := s.Run(netWindow)
			return st, func() error {
				if _, err := l.CheckTowers(); err != nil {
					return fmt.Errorf("skip list structure broken: %v", err)
				}
				return nil
			}
		},
	},
	"mapreduce": {
		mut: func(c *core.Config) { c.ServiceCores = 2 },
		run: func(s *core.System) (*core.Stats, func() error) {
			const size = 32 << 10
			j := mapreduce.NewJob(s, 7, size, 4<<10)
			s.SpawnWorkers(func(rt *core.Runtime) { j.Worker(rt) })
			st := s.RunToCompletion()
			return st, func() error {
				if got := j.HistogramTotal(); got != size {
					return fmt.Errorf("merged %d of %d bytes", got, size)
				}
				if j.HistogramRaw() != j.Expected() {
					return fmt.Errorf("histogram does not match the sequential model")
				}
				return nil
			}
		},
	},
}

// appNames is the deterministic iteration order for subtests.
var appNames = []string{"bank", "hashset", "intset", "skiplist", "mapreduce"}

// netConfig is the shared per-rank Config: everything identical across
// ranks except Net.Rank.
func netConfig(rank, ranks int, addrs []string, coalesce bool) core.Config {
	return core.Config{
		Backend:    core.BackendNet,
		Seed:       7,
		TotalCores: 8,
		// FairCM: starvation-free, so the post-deadline drain stays short
		// (see the live tests — on net, livelock would be real RPCs).
		Policy:   cm.FairCM,
		Coalesce: coalesce,
		// The flight recorder stays on so every emit path runs per-process.
		Trace: &trace.Options{ActorEvents: 1024},
		Net:   &core.NetConfig{Ranks: ranks, Rank: rank, Addrs: addrs, Session: 0},
	}
}

func unixAddrs(dir string, ranks int) []string {
	addrs := make([]string, ranks)
	for r := range addrs {
		addrs[r] = fmt.Sprintf("unix:%s/r%d", dir, r)
	}
	return addrs
}

// runOneRank builds this rank's System and drives the workload; the rank-0
// caller gets the app check back, other ranks get nil.
func runOneRank(app netApp, cfg core.Config) (st *core.Stats, check func() error, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("rank %d: panic: %v", cfg.Net.Rank, p)
		}
	}()
	s, err := core.NewSystem(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("rank %d: NewSystem: %v", cfg.Net.Rank, err)
	}
	st, appCheck := app.run(s)
	if cfg.Net.Rank != 0 {
		return st, nil, nil
	}
	check = func() error {
		if st.Commits == 0 {
			return fmt.Errorf("no transaction committed")
		}
		if leaked := s.LockedAddrs(); leaked != 0 {
			return fmt.Errorf("%d addresses still locked after drain", leaked)
		}
		if tr := s.Trace(); tr == nil {
			return fmt.Errorf("flight recorder enabled but no trace assembled")
		} else if len(tr.Events) == 0 {
			return fmt.Errorf("flight recorder enabled but trace is empty")
		}
		return appCheck()
	}
	return st, check, nil
}

// runRanks runs one workload across ranks engine replicas inside this
// process (one goroutine per rank) and checks rank-0 invariants plus the
// cross-rank agreement of the merged stats.
func runRanks(t *testing.T, ranks int, name string, coalesce bool) {
	t.Helper()
	app, ok := netApps[name]
	if !ok {
		t.Fatalf("unknown workload %q", name)
	}
	addrs := unixAddrs(t.TempDir(), ranks)
	stats := make([]*core.Stats, ranks)
	errs := make([]error, ranks)
	var check func() error
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := netConfig(r, ranks, addrs, coalesce)
			if app.mut != nil {
				app.mut(&cfg)
			}
			var c func() error
			stats[r], c, errs[r] = runOneRank(app, cfg)
			if r == 0 {
				check = c
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := check(); err != nil {
		t.Error(err)
	}
	// The stats exchange must leave every rank with the same system totals.
	for r := 1; r < ranks; r++ {
		if stats[r].Commits != stats[0].Commits || stats[r].Aborts != stats[0].Aborts || stats[r].Ops != stats[0].Ops {
			t.Errorf("rank %d merged stats disagree with rank 0: commits %d/%d aborts %d/%d ops %d/%d",
				r, stats[r].Commits, stats[0].Commits, stats[r].Aborts, stats[0].Aborts, stats[r].Ops, stats[0].Ops)
		}
	}
}

func TestNetApps(t *testing.T) {
	for _, name := range appNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Run("plain", func(t *testing.T) { runRanks(t, 2, name, false) })
			t.Run("coalesce", func(t *testing.T) { runRanks(t, 2, name, true) })
		})
	}
}

// TestNetBankThreeRanks covers the many-link topology: rank 2 dials both
// lower ranks, core→rank assignment is non-uniform (8 cores over 3 ranks).
func TestNetBankThreeRanks(t *testing.T) {
	runRanks(t, 3, "bank", true)
}

// TestNetBarrier runs the §8 privatization barrier across ranks: the
// barrier fan-out crosses the wire as registered barrierMsg payloads, and
// the post-barrier direct reads travel as state RPCs from the non-zero
// ranks to the memory home.
func TestNetBarrier(t *testing.T) {
	ranks := 2
	addrs := unixAddrs(t.TempDir(), ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("rank %d: panic: %v", r, p)
				}
			}()
			cfg := netConfig(r, ranks, addrs, false)
			s, err := core.NewSystem(cfg)
			if err != nil {
				errs[r] = err
				return
			}
			n := s.NumAppCores()
			slots := core.NewTArray(s, core.Uint64Codec(), n, 0)
			s.SpawnWorkers(func(rt *core.Runtime) {
				i := rt.AppIndex()
				rt.Run(func(tx *core.Tx) { slots.Set(tx, i, uint64(i)+1) })
				rt.Barrier()
				for j := 0; j < n; j++ {
					if got := slots.At(j).GetDirect(rt.Port(), rt.Core()); got != uint64(j)+1 {
						panic(fmt.Sprintf("core %d saw slot %d = %d after barrier, want %d", i, j, got, j+1))
					}
				}
				rt.Barrier()
			})
			st := s.RunToCompletion()
			if r == 0 {
				if st.Commits == 0 {
					errs[r] = fmt.Errorf("no transaction committed")
				} else if leaked := s.LockedAddrs(); leaked != 0 {
					errs[r] = fmt.Errorf("%d addresses still locked after drain", leaked)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestNetIrrevocable mixes irrevocable transfers into the bank workload
// across ranks: the exclusivity token requests/grants/releases cross the
// wire, and irrevocable reads/writes travel as state RPCs.
func TestNetIrrevocable(t *testing.T) {
	ranks := 2
	addrs := unixAddrs(t.TempDir(), ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("rank %d: panic: %v", r, p)
				}
			}()
			cfg := netConfig(r, ranks, addrs, false)
			s, err := core.NewSystem(cfg)
			if err != nil {
				errs[r] = err
				return
			}
			const accounts = 64
			accts := core.NewTArray(s, core.Uint64Codec(), accounts, 1000)
			s.SpawnWorkers(func(rt *core.Runtime) {
				rnd := rt.Rand()
				// Every worker's first transfer is irrevocable so the token
				// protocol is exercised deterministically: under the conflict
				// storm a worker completes only a handful of loop iterations
				// per window, too few for a 5% draw alone to be reliable.
				first := true
				for !rt.Stopped() {
					from, to := bank.PickTransfer(rnd, accounts)
					if first || rnd.Intn(100) < 5 {
						first = false
						rt.RunIrrevocable(func(ir *core.Irrevocable) {
							f := accts.At(from).GetIr(ir)
							tv := accts.At(to).GetIr(ir)
							accts.At(from).SetIr(ir, f-1)
							accts.At(to).SetIr(ir, tv+1)
						})
					} else {
						rt.Run(func(tx *core.Tx) {
							f := accts.Get(tx, from)
							tv := accts.Get(tx, to)
							accts.Set(tx, from, f-1)
							accts.Set(tx, to, tv+1)
						})
					}
					rt.AddOps(1)
				}
			})
			st := s.Run(netWindow)
			if r == 0 {
				var sum uint64
				for i := 0; i < accounts; i++ {
					sum += accts.GetRaw(i)
				}
				switch {
				case st.Commits == 0:
					errs[r] = fmt.Errorf("no transaction committed")
				case st.Irrevocables == 0:
					errs[r] = fmt.Errorf("no irrevocable transaction completed")
				case s.LockedAddrs() != 0:
					errs[r] = fmt.Errorf("%d addresses still locked after drain", s.LockedAddrs())
				case sum != uint64(accounts)*1000:
					errs[r] = fmt.Errorf("money not conserved across irrevocable mix: %d != %d", sum, uint64(accounts)*1000)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// --- OS-process harness -------------------------------------------------

// Environment contract between the forking parent and the re-exec'd child:
// the child runs one non-zero rank of the named workload and exits 0 on
// success.
const (
	envApp      = "TM2C_NET_TEST_APP"
	envRank     = "TM2C_NET_TEST_RANK"
	envRanks    = "TM2C_NET_TEST_RANKS"
	envAddrs    = "TM2C_NET_TEST_ADDRS"
	envCoalesce = "TM2C_NET_TEST_COALESCE"
)

func TestMain(m *testing.M) {
	if name := os.Getenv(envApp); name != "" {
		os.Exit(helperMain(name))
	}
	os.Exit(m.Run())
}

// helperMain is the child side of TestNetOSProcesses: one rank of the
// workload in its own OS process.
func helperMain(name string) int {
	app, ok := netApps[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "helper: unknown workload %q\n", name)
		return 2
	}
	rank, err1 := strconv.Atoi(os.Getenv(envRank))
	ranks, err2 := strconv.Atoi(os.Getenv(envRanks))
	if err1 != nil || err2 != nil {
		fmt.Fprintln(os.Stderr, "helper: bad rank env")
		return 2
	}
	addrs := strings.Split(os.Getenv(envAddrs), ",")
	cfg := netConfig(rank, ranks, addrs, os.Getenv(envCoalesce) == "1")
	if app.mut != nil {
		app.mut(&cfg)
	}
	st, _, err := runOneRank(app, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: %v\n", err)
		return 1
	}
	if st == nil || st.Commits == 0 {
		fmt.Fprintln(os.Stderr, "helper: merged stats report zero commits")
		return 1
	}
	return 0
}

// TestNetOSProcesses runs every workload across two genuinely separate OS
// processes: rank 0 in this test process, rank 1 as a re-exec of the test
// binary in helper mode. This is the acceptance check that the backend
// works process-to-process, not just engine-to-engine.
func TestNetOSProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("forking subprocesses in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	for _, name := range appNames {
		name := name
		t.Run(name, func(t *testing.T) {
			addrs := unixAddrs(t.TempDir(), 2)
			cmd := exec.Command(exe, "-test.run=^$")
			cmd.Env = append(os.Environ(),
				envApp+"="+name,
				envRank+"=1",
				envRanks+"=2",
				envAddrs+"="+strings.Join(addrs, ","),
				envCoalesce+"=1",
			)
			var childOut strings.Builder
			cmd.Stdout = &childOut
			cmd.Stderr = &childOut
			if err := cmd.Start(); err != nil {
				t.Fatalf("fork rank 1: %v", err)
			}
			app := netApps[name]
			cfg := netConfig(0, 2, addrs, true)
			if app.mut != nil {
				app.mut(&cfg)
			}
			_, check, err := runOneRank(app, cfg)
			waitErr := cmd.Wait()
			if err != nil {
				t.Fatalf("rank 0: %v (child: %v, output: %s)", err, waitErr, childOut.String())
			}
			if waitErr != nil {
				t.Fatalf("rank 1 process failed: %v\noutput: %s", waitErr, childOut.String())
			}
			if err := check(); err != nil {
				t.Error(err)
			}
		})
	}
}

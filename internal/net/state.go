package net

import (
	"fmt"
	"time"

	"repro/internal/mem"
	"repro/internal/wire"
)

// The state plane: synchronous, correlation-ID-tagged RPCs that move raw
// word and register operations to the rank owning the state. Memory words
// and allocation bump pointers are homed on rank 0; each core's status/TAS
// registers on the rank hosting the core. The model costs (controller
// queueing, NoC distance, remote-atomic latency) were already charged
// locally by internal/mem before the forward — only the raw apply crosses
// the wire.
//
// Every operation is synchronous, writes included: a commit's write-back
// must be applied at the owner before the committer releases its locks, or
// the next lock holder could read the pre-write words through a different
// connection. Connection readers execute requests inline (pure map/array
// operations under the owner's mutex — no nested RPCs, so no deadlock).

// State-RPC opcodes.
const (
	opReadRaw uint8 = iota + 1
	opWriteRaw
	opReadBatchRaw
	opWriteBatchRaw
	opAlloc
	opCAS
	opTAS
	opTASRelease
)

// stateHooks is the engine's view of the locally-owned state.
type stateHooks struct {
	mem    *mem.Memory
	regs   *mem.Registers
	rankOf func(core int) int
}

// BindState wires the replica's memory and registers into the cross-process
// state plane: non-zero ranks forward word storage to rank 0, and every
// rank forwards register operations to the rank owning the target core.
// Call after all raw setup writes (they stay local and replicated) and
// before Start releases any worker.
func (e *Engine) BindState(m *mem.Memory, r *mem.Registers, rankOf func(core int) int) {
	e.st = stateHooks{mem: m, regs: r, rankOf: rankOf}
	if e.cfg.Rank != 0 {
		m.SetRemote(memRemote{e})
	}
	r.SetRemote(func(core int) bool { return rankOf(core) == e.cfg.Rank }, regRemote{e})
}

// stateCall sends one state RPC to rank and blocks for the response.
func (e *Engine) stateCall(rank int, build func(enc *wire.Enc)) []byte {
	corr := e.corr.Add(1)
	ch := make(chan []byte, 1)
	e.pendMu.Lock()
	e.pend[corr] = ch
	e.pendMu.Unlock()
	enc := wire.GetEnc()
	enc.U64(corr)
	build(enc)
	err := e.links[rank].write(frStateReq, enc.Bytes())
	wire.PutEnc(enc)
	if err != nil {
		e.pendMu.Lock()
		delete(e.pend, corr)
		e.pendMu.Unlock()
		panic(fmt.Errorf("net: rank %d: state RPC to rank %d: %w", e.cfg.Rank, rank, err))
	}
	t := time.NewTimer(e.cfg.StateTimeout)
	defer t.Stop()
	select {
	case resp := <-ch:
		return resp
	case <-t.C:
		e.pendMu.Lock()
		delete(e.pend, corr)
		e.pendMu.Unlock()
		panic(fmt.Errorf("net: rank %d: state RPC to rank %d timed out after %v",
			e.cfg.Rank, rank, e.cfg.StateTimeout))
	case <-e.quit:
		// The engine is tearing down; unwind like any blocked receive.
		// (Workers are all done before Shutdown, so a state call here can
		// only belong to a goroutine being killed anyway.)
		panic(killSentinel{})
	}
}

// serveState executes one state request against the locally-owned state and
// writes the response on the same link.
func (e *Engine) serveState(l *link, body []byte) {
	d := wire.NewDec(body, nil)
	corr := d.U64()
	op := d.U8()
	resp := wire.GetEnc()
	defer wire.PutEnc(resp) // l.write copies the frame out before returning
	resp.U64(corr)
	st := e.st
	if st.mem == nil {
		e.setFault(fmt.Errorf("net: rank %d: state RPC before BindState", e.cfg.Rank))
		return
	}
	switch op {
	case opReadRaw:
		resp.U64(st.mem.ReadRaw(mem.Addr(d.U64())))
	case opWriteRaw:
		a, v := mem.Addr(d.U64()), d.U64()
		st.mem.WriteRaw(a, v)
	case opReadBatchRaw:
		base, n := mem.Addr(d.U64()), d.Int()
		if d.Err() == nil {
			resp.U64s(st.mem.ReadBatchRaw(base, n))
		}
	case opWriteBatchRaw:
		as := d.U64s()
		vs := d.U64s()
		if d.Err() == nil {
			addrs := make([]mem.Addr, len(as))
			for i, a := range as {
				addrs[i] = mem.Addr(a)
			}
			st.mem.WriteBatchRaw(addrs, vs)
		}
	case opAlloc:
		n, mc := d.Int(), d.Int()
		if d.Err() == nil {
			resp.U64(uint64(st.mem.Alloc(n, mc)))
		}
	case opCAS:
		owner, txID := d.Int(), d.U64()
		from, to := mem.TxState(d.U8()), mem.TxState(d.U8())
		if d.Err() == nil {
			sw, obsTx, obsState := st.regs.CASStatusObserveRaw(owner, txID, from, to)
			resp.Bool(sw)
			resp.U64(obsTx)
			resp.U8(uint8(obsState))
		}
	case opTAS:
		reg := d.Int()
		if d.Err() == nil {
			resp.Bool(st.regs.TASRaw(reg))
		}
	case opTASRelease:
		reg := d.Int()
		if d.Err() == nil {
			st.regs.TASReleaseRaw(reg)
		}
	default:
		e.setFault(fmt.Errorf("net: rank %d: unknown state op %d", e.cfg.Rank, op))
		return
	}
	if err := d.Err(); err != nil {
		e.setFault(fmt.Errorf("net: rank %d: bad state request: %w", e.cfg.Rank, err))
		return
	}
	if err := l.write(frStateResp, resp.Bytes()); err != nil {
		// The requester's StateTimeout will surface the loss.
		e.Drops.Add(1)
	}
}

// memRemote forwards word storage to rank 0 (mem.Remote).
type memRemote struct{ e *Engine }

func (m memRemote) ReadRaw(addr mem.Addr) uint64 {
	resp := m.e.stateCall(0, func(enc *wire.Enc) {
		enc.U8(opReadRaw)
		enc.U64(uint64(addr))
	})
	return wire.NewDec(resp, nil).U64()
}

func (m memRemote) WriteRaw(addr mem.Addr, v uint64) {
	m.e.stateCall(0, func(enc *wire.Enc) {
		enc.U8(opWriteRaw)
		enc.U64(uint64(addr))
		enc.U64(v)
	})
}

func (m memRemote) ReadBatchRaw(base mem.Addr, n int) []uint64 {
	resp := m.e.stateCall(0, func(enc *wire.Enc) {
		enc.U8(opReadBatchRaw)
		enc.U64(uint64(base))
		enc.Int(n)
	})
	vs := wire.NewDec(resp, nil).U64s()
	if vs == nil {
		vs = make([]uint64, n)
	}
	return vs
}

func (m memRemote) WriteBatchRaw(addrs []mem.Addr, vals []uint64) {
	m.e.stateCall(0, func(enc *wire.Enc) {
		enc.U8(opWriteBatchRaw)
		enc.U32(uint32(len(addrs)))
		for _, a := range addrs {
			enc.U64(uint64(a))
		}
		enc.U64s(vals)
	})
}

func (m memRemote) Alloc(n, mc int) mem.Addr {
	resp := m.e.stateCall(0, func(enc *wire.Enc) {
		enc.U8(opAlloc)
		enc.Int(n)
		enc.Int(mc)
	})
	return mem.Addr(wire.NewDec(resp, nil).U64())
}

// regRemote forwards register operations to the rank owning the target core
// (mem.RemoteRegs).
type regRemote struct{ e *Engine }

func (r regRemote) CASStatus(owner int, txID uint64, from, to mem.TxState) (bool, uint64, mem.TxState) {
	resp := r.e.stateCall(r.e.st.rankOf(owner), func(enc *wire.Enc) {
		enc.U8(opCAS)
		enc.Int(owner)
		enc.U64(txID)
		enc.U8(uint8(from))
		enc.U8(uint8(to))
	})
	d := wire.NewDec(resp, nil)
	return d.Bool(), d.U64(), mem.TxState(d.U8())
}

func (r regRemote) TAS(reg int) bool {
	resp := r.e.stateCall(r.e.st.rankOf(reg), func(enc *wire.Enc) {
		enc.U8(opTAS)
		enc.Int(reg)
	})
	return wire.NewDec(resp, nil).Bool()
}

func (r regRemote) TASRelease(reg int) {
	r.e.stateCall(r.e.st.rankOf(reg), func(enc *wire.Enc) {
		enc.U8(opTASRelease)
		enc.Int(reg)
	})
}

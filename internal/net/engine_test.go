package net_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	tmnet "repro/internal/net"
	"repro/internal/port"
	"repro/internal/wire"
)

// testPing is a registered wire payload for transport-level tests (kind 200,
// far above the protocol's message kinds).
type testPing struct {
	Seq  uint64
	Note uint64
}

func init() {
	wire.Register(wire.Codec{
		Kind: 200,
		Type: reflect.TypeOf(&testPing{}),
		Encode: func(e *wire.Enc, v any) {
			p := v.(*testPing)
			e.U64(p.Seq)
			e.U64(p.Note)
		},
		Decode: func(d *wire.Dec) any {
			return &testPing{Seq: d.U64(), Note: d.U64()}
		},
	})
}

// startPair builds and starts two connected engines over unix sockets in a
// fresh temp dir. Each rank spawns the same two actors in the same order
// (replicated construction); actor i is owned by rank i and runs fn with its
// own port and its local view of the peer (a Stub).
func startPair(t *testing.T, fn func(rank int, self, peer port.Port)) [2]*tmnet.Engine {
	t.Helper()
	dir := t.TempDir()
	addrs := []string{"unix:" + dir + "/r0", "unix:" + dir + "/r1"}
	var engs [2]*tmnet.Engine
	for r := 0; r < 2; r++ {
		eng, err := tmnet.New(tmnet.Config{
			Rank: r, Ranks: 2, Addrs: addrs, Session: 0, Seed: 42,
		})
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		engs[r] = eng
	}
	var ports [2][2]port.Port // [rank][owner]
	for r := 0; r < 2; r++ {
		r := r
		for owner := 0; owner < 2; owner++ {
			owner := owner
			ports[r][owner] = engs[r].Spawn(fmt.Sprintf("actor%d", owner), owner, func(p port.Port) {
				fn(owner, p, ports[r][1-owner])
			})
		}
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var startErrs []error
	for r := 0; r < 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := engs[r].Start(); err != nil {
				errMu.Lock()
				startErrs = append(startErrs, err)
				errMu.Unlock()
			}
		}()
	}
	wg.Wait()
	for _, err := range startErrs {
		t.Fatalf("start: %v", err)
	}
	return engs
}

func stopPair(engs [2]*tmnet.Engine) {
	for _, e := range engs {
		e.Shutdown()
	}
	for _, e := range engs {
		e.Close()
	}
}

// TestEnginePingPong bounces a payload between two ranks and checks ordering
// and the From metadata the transport fills in.
func TestEnginePingPong(t *testing.T) {
	const rounds = 50
	done := make(chan error, 2)
	engs := startPair(t, func(rank int, self, peer port.Port) {
		var err error
		defer func() { done <- err }()
		if rank == 0 {
			for i := 0; i < rounds; i++ {
				self.Send(peer, &testPing{Seq: uint64(i)}, 0)
				m := self.Recv()
				pong, ok := m.Payload.(*testPing)
				if !ok || pong.Seq != uint64(i) || pong.Note != 1 {
					err = fmt.Errorf("round %d: bad pong %#v", i, m.Payload)
					return
				}
				if m.From != peer.ID() {
					err = fmt.Errorf("round %d: From = %d, want %d", i, m.From, peer.ID())
					return
				}
			}
		} else {
			for i := 0; i < rounds; i++ {
				m := self.Recv()
				ping, ok := m.Payload.(*testPing)
				if !ok || ping.Seq != uint64(i) {
					err = fmt.Errorf("round %d: bad ping %#v", i, m.Payload)
					return
				}
				self.Send(peer, &testPing{Seq: ping.Seq, Note: 1}, 0)
			}
		}
	})
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	stopPair(engs)
}

// TestEngineSelectiveReceive checks that RecvMatch stashes non-matching
// remote messages and replays them in arrival order afterwards.
func TestEngineSelectiveReceive(t *testing.T) {
	done := make(chan error, 2)
	engs := startPair(t, func(rank int, self, peer port.Port) {
		var err error
		defer func() { done <- err }()
		if rank == 1 {
			// Three decoys, then the match, then one trailer. A single TCP
			// connection preserves this order end to end.
			for i := 0; i < 3; i++ {
				self.Send(peer, &testPing{Seq: uint64(i), Note: 0}, 0)
			}
			self.Send(peer, &testPing{Seq: 99, Note: 7}, 0)
			self.Send(peer, &testPing{Seq: 3, Note: 0}, 0)
			// Wait for the ack so the engine is not torn down mid-delivery.
			self.Recv()
			return
		}
		m := self.RecvMatch(func(m port.Msg) bool {
			pg, ok := m.Payload.(*testPing)
			return ok && pg.Note == 7
		})
		if pg := m.Payload.(*testPing); pg.Seq != 99 {
			err = fmt.Errorf("matched Seq = %d, want 99", pg.Seq)
			return
		}
		// Stashed decoys must replay in order, then the trailer.
		for i := 0; i < 4; i++ {
			m := self.Recv()
			pg := m.Payload.(*testPing)
			if pg.Seq != uint64(i) {
				err = fmt.Errorf("replay %d: Seq = %d", i, pg.Seq)
				return
			}
		}
		self.Send(peer, &testPing{Seq: 100}, 0)
	})
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	stopPair(engs)
}

// TestEngineRecvMatchTimeout exercises the deadline capability the RPC layer
// maps Config.RPCDeadline onto: a predicate nothing satisfies must return
// ok=false after roughly the deadline, and a satisfied one returns early.
func TestEngineRecvMatchTimeout(t *testing.T) {
	type deadliner interface {
		RecvMatchTimeout(func(port.Msg) bool, time.Duration) (port.Msg, bool)
	}
	done := make(chan error, 2)
	engs := startPair(t, func(rank int, self, peer port.Port) {
		var err error
		defer func() { done <- err }()
		if rank == 1 {
			// A decoy that never matches, then the real message later.
			self.Send(peer, &testPing{Seq: 1, Note: 0}, 0)
			time.Sleep(30 * time.Millisecond)
			self.Send(peer, &testPing{Seq: 2, Note: 7}, 0)
			return
		}
		dr, ok := self.(deadliner)
		if !ok {
			err = fmt.Errorf("net port lacks RecvMatchTimeout")
			return
		}
		want7 := func(m port.Msg) bool {
			pg, ok := m.Payload.(*testPing)
			return ok && pg.Note == 7
		}
		// First wait is too short for the matching message.
		if _, got := dr.RecvMatchTimeout(want7, 5*time.Millisecond); got {
			err = fmt.Errorf("expected timeout, got a match")
			return
		}
		// Second wait is long enough.
		m, got := dr.RecvMatchTimeout(want7, 5*time.Second)
		if !got {
			err = fmt.Errorf("expected match, timed out")
			return
		}
		if pg := m.Payload.(*testPing); pg.Seq != 2 {
			err = fmt.Errorf("matched Seq = %d, want 2", pg.Seq)
			return
		}
		// The non-matching decoy is still deliverable afterwards.
		if pg := self.Recv().Payload.(*testPing); pg.Seq != 1 {
			err = fmt.Errorf("decoy Seq = %d, want 1", pg.Seq)
		}
	})
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	stopPair(engs)
}

package net

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/port"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Port is one locally-hosted execution context: a goroutine with an
// unbounded, mutex-guarded inbox fed both by local senders and by the
// connection readers. The inbox is deliberately unbounded where the live
// backend uses a bounded channel: a connection reader must never block on a
// full mailbox, or a port waiting for a state-RPC response queued behind
// its backlog would deadlock the whole rank.
//
// Like the live backend, selective receive runs entirely on the port's own
// goroutine: raw messages (possibly Batch envelopes) are popped from the
// inbox and unpacked into the single-consumer stash, so the flight-recorder
// hook and stash never race.
type Port struct {
	eng  *Engine
	id   int
	name string
	rng  sim.Rand

	mu    sync.Mutex
	inbox sim.MsgQueue
	wake  chan struct{} // cap 1: at least one token per non-empty inbox

	// stash holds delivered-but-deferred messages in delivery order —
	// receiver-goroutine-only state, exactly like live.Port.stash.
	stash sim.MsgQueue

	onBatch func(n int)
}

var _ port.Port = (*Port)(nil)

// SetBatchHook installs fn to observe every multi-payload Batch envelope
// this port unpacks. Install before Engine.Start; nil disables.
func (p *Port) SetBatchHook(fn func(n int)) { p.onBatch = fn }

// ID returns the engine-assigned (spawn-order) port identifier.
func (p *Port) ID() int { return p.id }

// Name returns the name given at Spawn time.
func (p *Port) Name() string { return p.name }

// Now returns monotonic nanoseconds since Start.
func (p *Port) Now() sim.Time { return sim.Time(time.Since(p.eng.start)) }

// Rand returns the port's deterministic random source (seeded by spawn
// index exactly like the sim kernel and live engine, so workload shapes
// match across backends and ranks).
func (p *Port) Rand() *sim.Rand { return &p.rng }

// Advance consumes no time (see live.Port.Advance); it yields so backoff
// loops don't starve the goroutines they wait on.
func (p *Port) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("net: %s: negative advance %v", p.name, d))
	}
	if d > 0 {
		runtime.Gosched()
	}
}

// Yield lets other goroutines run.
func (p *Port) Yield() { runtime.Gosched() }

// push delivers a raw message into the inbox. Any goroutine may call it
// (local sender or connection reader); it never blocks.
func (p *Port) push(m port.Msg) {
	p.mu.Lock()
	p.inbox.Push(m)
	p.mu.Unlock()
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// Send delivers payload to dst: straight into the inbox when dst is hosted
// here, serialized onto the owning rank's connection when it is a Stub. The
// delay parameter models simulated latency and is ignored.
func (p *Port) Send(dst port.Port, payload any, delay time.Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("net: negative send delay %v", delay))
	}
	if b, ok := payload.(*port.Batch); ok && len(b.Payloads) == 0 {
		panic("net: empty batch envelope")
	}
	switch d := dst.(type) {
	case *Port:
		d.push(port.Msg{From: p.id, Payload: payload})
	case *Stub:
		p.eng.sendRemote(p.id, d, payload)
	default:
		panic(fmt.Sprintf("net: Send to foreign port type %T", dst))
	}
}

// popInbox returns the next raw inbox message if one is queued.
func (p *Port) popInbox() (port.Msg, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inbox.Len() == 0 {
		return port.Msg{}, false
	}
	return p.inbox.Pop(), true
}

// recvRaw blocks for the next raw inbox message. During shutdown it first
// drains the inbox, then unwinds the goroutine (killSentinel) — releases
// from the final transactions must be served so lock tables quiesce empty.
func (p *Port) recvRaw() port.Msg {
	for {
		if m, ok := p.popInbox(); ok {
			return m
		}
		select {
		case <-p.wake:
		case <-p.eng.quit:
			if m, ok := p.popInbox(); ok {
				return m
			}
			panic(killSentinel{})
		}
	}
}

// deliver unpacks a raw message into the stash (Batch envelopes become one
// stashed message per payload, staged order, the envelope's sender).
func (p *Port) deliver(m port.Msg) {
	if b, ok := m.Payload.(*port.Batch); ok {
		for _, pl := range b.Payloads {
			p.stash.Push(port.Msg{From: m.From, Payload: pl})
		}
		if p.onBatch != nil {
			p.onBatch(len(b.Payloads))
		}
		port.PutBatch(b)
		return
	}
	p.stash.Push(m)
}

// Recv blocks until a message is available and returns the earliest
// delivered one (stashed messages first — they were delivered earlier).
func (p *Port) Recv() port.Msg {
	for p.stash.Len() == 0 {
		p.deliver(p.recvRaw())
	}
	return p.stash.Pop()
}

// TryRecv returns the earliest queued message without blocking.
func (p *Port) TryRecv() (port.Msg, bool) {
	if p.stash.Len() > 0 {
		return p.stash.Pop(), true
	}
	if m, ok := p.popInbox(); ok {
		p.deliver(m)
		return p.stash.Pop(), true
	}
	return port.Msg{}, false
}

// RecvMatch blocks until a message satisfying pred is available; everything
// else stays queued in delivery order.
func (p *Port) RecvMatch(pred func(port.Msg) bool) port.Msg {
	for {
		if m, ok := p.stash.TakeMatch(pred); ok {
			return m
		}
		p.deliver(p.recvRaw())
	}
}

// TryRecvMatch returns the earliest queued message satisfying pred, if any,
// without blocking.
func (p *Port) TryRecvMatch(pred func(port.Msg) bool) (port.Msg, bool) {
	for {
		if m, ok := p.stash.TakeMatch(pred); ok {
			return m, true
		}
		m, ok := p.popInbox()
		if !ok {
			return port.Msg{}, false
		}
		p.deliver(m)
	}
}

// RecvTimeout waits up to d for a message; ok is false on timeout.
func (p *Port) RecvTimeout(d time.Duration) (port.Msg, bool) {
	if p.stash.Len() > 0 {
		return p.stash.Pop(), true
	}
	if m, ok := p.waitRaw(d, nil); ok {
		p.deliver(m)
		return p.stash.Pop(), true
	}
	return port.Msg{}, false
}

// RecvMatchTimeout is RecvMatch bounded by d: it returns the earliest
// message satisfying pred, or ok=false once d elapses without one. This is
// the capability behind the DTM layer's per-RPC deadlines; it sits outside
// the Port interface and is discovered by type assertion, like
// SetBatchHook.
func (p *Port) RecvMatchTimeout(pred func(port.Msg) bool, d time.Duration) (port.Msg, bool) {
	var t *time.Timer
	defer func() {
		if t != nil {
			t.Stop()
		}
	}()
	deadline := time.Now().Add(d)
	for {
		if m, ok := p.stash.TakeMatch(pred); ok {
			return m, true
		}
		left := time.Until(deadline)
		if left <= 0 {
			return port.Msg{}, false
		}
		if t == nil {
			t = time.NewTimer(left)
		} else {
			t.Reset(left)
		}
		m, ok := p.waitRawTimer(t)
		if !ok {
			return port.Msg{}, false
		}
		p.deliver(m)
	}
}

// waitRaw waits up to d for a raw inbox message (d <= 0: poll only).
func (p *Port) waitRaw(d time.Duration, _ func(port.Msg) bool) (port.Msg, bool) {
	if m, ok := p.popInbox(); ok {
		return m, true
	}
	if d <= 0 {
		return port.Msg{}, false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	return p.waitRawTimer(t)
}

// waitRawTimer waits for a raw inbox message until the timer fires. During
// shutdown it drains, then unwinds the goroutine.
func (p *Port) waitRawTimer(t *time.Timer) (port.Msg, bool) {
	for {
		if m, ok := p.popInbox(); ok {
			return m, true
		}
		select {
		case <-p.wake:
		case <-t.C:
			// One last poll: a push may have raced the timer.
			return p.popInbox()
		case <-p.eng.quit:
			if m, ok := p.popInbox(); ok {
				return m, true
			}
			panic(killSentinel{})
		}
	}
}

// Stub stands in for a port hosted by another rank. Only its identity (ID)
// and its role as a Send destination are usable here; everything execution-
// context-like panics — by replicated construction nothing on this rank
// should ever run on a remote core's port.
type Stub struct {
	eng  *Engine
	id   int
	rank int
	name string
}

var _ port.Port = (*Stub)(nil)

// ID returns the spawn-order port identifier (agreed across ranks).
func (s *Stub) ID() int { return s.id }

// Name returns the name given at Spawn time.
func (s *Stub) Name() string { return s.name }

func (s *Stub) remoteUse(method string) string {
	return fmt.Sprintf("net: %s on %q, a stub for rank %d — remote ports are Send destinations only", method, s.name, s.rank)
}

func (s *Stub) Now() sim.Time                          { panic(s.remoteUse("Now")) }
func (s *Stub) Rand() *sim.Rand                        { panic(s.remoteUse("Rand")) }
func (s *Stub) Advance(time.Duration)                  { panic(s.remoteUse("Advance")) }
func (s *Stub) Yield()                                 { panic(s.remoteUse("Yield")) }
func (s *Stub) Send(port.Port, any, time.Duration)     { panic(s.remoteUse("Send")) }
func (s *Stub) Recv() port.Msg                         { panic(s.remoteUse("Recv")) }
func (s *Stub) TryRecv() (port.Msg, bool)              { panic(s.remoteUse("TryRecv")) }
func (s *Stub) RecvMatch(func(port.Msg) bool) port.Msg { panic(s.remoteUse("RecvMatch")) }
func (s *Stub) TryRecvMatch(func(port.Msg) bool) (port.Msg, bool) {
	panic(s.remoteUse("TryRecvMatch"))
}
func (s *Stub) RecvTimeout(time.Duration) (port.Msg, bool) { panic(s.remoteUse("RecvTimeout")) }

// sendRemote serializes payload and writes it as one MSG frame on the
// destination rank's connection. A write failure (connection mid-reconnect)
// drops the message: the protocol's RPC deadlines absorb the loss.
func (e *Engine) sendRemote(src int, dst *Stub, payload any) {
	enc := wire.GetEnc()
	enc.U32(uint32(dst.id))
	enc.U32(uint32(src))
	if err := wire.EncodePayload(enc, payload); err != nil {
		panic(err) // unregistered payload type: a protocol bug, not an I/O fault
	}
	// write copies the frame out before returning, so the encoder recycles
	// regardless of the write's outcome.
	err := e.links[dst.rank].write(frMsg, enc.Bytes())
	wire.PutEnc(enc)
	if err != nil {
		e.Drops.Add(1)
	}
}

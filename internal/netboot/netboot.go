// Package netboot bootstraps the cross-process net backend for the CLI
// front-ends (tm2c-bench, tm2c-sim): it resolves this process's place in
// the process group from the -groups/-listen/-peers flags and, in the
// default fork mode, launches the worker ranks as re-execs of the current
// binary over unix sockets in a private temp dir.
//
// Three ways into a net-backend run:
//
//   - Fork mode (default): the invoked process is rank 0; Resolve allocates
//     unix-socket addresses and Fork starts ranks 1..N-1 as copies of this
//     process with the topology in TM2C_NET_* environment variables. The
//     children re-parse the identical command line, so every rank constructs
//     the identical deterministic sequence of systems — the property the
//     backend's replicated-construction model requires.
//
//   - Forked child: TM2C_NET_RANK/TM2C_NET_PEERS are set; Resolve returns
//     that topology and IsChild reports true so the front-end can suppress
//     its rank-0-only output and verification.
//
//   - Standalone (-peers, for multi-host or manual launches): the full
//     rank-ordered address list is given explicitly, -rank selects this
//     process's slot, and the optional -listen overrides the local bind
//     address (e.g. 0.0.0.0:port while the peers dial a routable IP).
package netboot

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
)

const (
	envRank  = "TM2C_NET_RANK"
	envPeers = "TM2C_NET_PEERS"
)

// Plan is one process's place in a net-backend run, plus the children a
// fork-mode parent spawned.
type Plan struct {
	Ranks int
	Rank  int
	Addrs []string

	children []*exec.Cmd
	tmpDir   string
}

// IsChild reports whether this process was forked by a netboot parent.
func IsChild() bool { return os.Getenv(envRank) != "" }

// Resolve builds the topology plan from the flag values. groups is the
// process count for fork mode; rank/listen/peers configure standalone mode
// (peers empty selects fork mode).
func Resolve(groups, rank int, listen, peers string) (*Plan, error) {
	if r := os.Getenv(envRank); r != "" {
		rk, err := strconv.Atoi(r)
		if err != nil {
			return nil, fmt.Errorf("netboot: bad %s=%q", envRank, r)
		}
		addrs := strings.Split(os.Getenv(envPeers), ",")
		if rk < 0 || rk >= len(addrs) {
			return nil, fmt.Errorf("netboot: %s=%d out of range for %d peers", envRank, rk, len(addrs))
		}
		return &Plan{Ranks: len(addrs), Rank: rk, Addrs: addrs}, nil
	}
	if peers != "" {
		addrs := strings.Split(peers, ",")
		if len(addrs) < 2 {
			return nil, fmt.Errorf("netboot: -peers needs at least 2 rank-ordered addresses")
		}
		if rank < 0 || rank >= len(addrs) {
			return nil, fmt.Errorf("netboot: -rank %d out of range for %d peers", rank, len(addrs))
		}
		if listen != "" {
			addrs[rank] = listen
		}
		return &Plan{Ranks: len(addrs), Rank: rank, Addrs: addrs}, nil
	}
	if groups < 2 {
		return nil, fmt.Errorf("netboot: the net backend needs -groups >= 2 processes (or an explicit -peers list)")
	}
	dir, err := os.MkdirTemp("", "tm2c-net-")
	if err != nil {
		return nil, err
	}
	addrs := make([]string, groups)
	for r := range addrs {
		addrs[r] = "unix:" + filepath.Join(dir, fmt.Sprintf("r%d.sock", r))
	}
	return &Plan{Ranks: groups, Rank: 0, Addrs: addrs, tmpDir: dir}, nil
}

// Fork launches ranks 1..Ranks-1 as re-execs of this binary with the
// topology in the environment. A no-op for children and standalone ranks.
// Children inherit stderr; their stdout is discarded — rank 0's report is
// the authoritative one.
func (p *Plan) Fork() error {
	if p.tmpDir == "" {
		return nil
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	for r := 1; r < p.Ranks; r++ {
		cmd := exec.Command(exe, os.Args[1:]...)
		cmd.Env = append(os.Environ(),
			envRank+"="+strconv.Itoa(r),
			envPeers+"="+strings.Join(p.Addrs, ","),
		)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			p.Wait() // reap whatever already started
			return fmt.Errorf("netboot: fork rank %d: %v", r, err)
		}
		p.children = append(p.children, cmd)
	}
	return nil
}

// Wait reaps the forked children and removes the socket dir; the first
// child failure is returned. A no-op without children.
func (p *Plan) Wait() error {
	var first error
	for _, c := range p.children {
		if err := c.Wait(); err != nil && first == nil {
			first = fmt.Errorf("netboot: net worker rank (pid %d) failed: %v", c.Process.Pid, err)
		}
	}
	p.children = nil
	if p.tmpDir != "" {
		os.RemoveAll(p.tmpDir)
		p.tmpDir = ""
	}
	return first
}

// NetConfig returns this process's Config.Net. Session -1 lets the backend
// draw per-process session numbers, which stay aligned across ranks because
// every rank constructs the identical sequence of systems.
func (p *Plan) NetConfig() *core.NetConfig {
	return &core.NetConfig{
		Ranks:   p.Ranks,
		Rank:    p.Rank,
		Addrs:   append([]string(nil), p.Addrs...),
		Session: -1,
	}
}

// OversubscriptionWarning returns a warning (or "") for live/net runs whose
// worker-thread demand exceeds the Go scheduler's parallelism: oversubscribed
// runs show zero-commit windows while descheduled cores hold locks. cores is
// the largest per-process core count the run will spawn.
func OversubscriptionWarning(cores, maxprocs int, backend core.Backend) string {
	if backend != core.BackendLive && backend != core.BackendNet {
		return ""
	}
	if cores <= maxprocs {
		return ""
	}
	return fmt.Sprintf(
		"warning: %d cores on the %s backend exceed GOMAXPROCS=%d; expect zero-commit oversubscription windows (inspect them with tm2c-sim -backend live -snapshot <file>)",
		cores, backend, maxprocs)
}

package mem

import (
	"sync"

	"repro/internal/noc"
)

// TxState is the state held in a core's transaction status register.
//
// The SCC exposes one globally accessible test-and-set register per core;
// TM2C uses it to switch a transaction's status "atomically from pending to
// aborted" (§4.1). We model the register as a (txID, state) word supporting
// compare-and-swap, charged with the platform's remote-atomic latency when
// accessed from another core and free when a core inspects its own register.
type TxState uint8

const (
	// TxFree means no transaction is active on the core.
	TxFree TxState = iota
	// TxPending is an executing, abortable transaction.
	TxPending
	// TxCommitting is a transaction that holds all its write locks and is
	// persisting its write set; it can no longer be aborted.
	TxCommitting
	// TxAborted marks a transaction killed by a contention manager.
	TxAborted
	// TxCommitted marks a completed transaction.
	TxCommitted
)

func (s TxState) String() string {
	switch s {
	case TxFree:
		return "free"
	case TxPending:
		return "pending"
	case TxCommitting:
		return "committing"
	case TxAborted:
		return "aborted"
	case TxCommitted:
		return "committed"
	default:
		return "invalid"
	}
}

type statusWord struct {
	txID  uint64
	state TxState
}

// Registers models the per-core atomic registers: one transaction status
// word and one test-and-set bit per core. The registers are hardware
// atomics, so the model must stay atomic under real concurrency too: a
// mutex linearizes every operation (uncontended — and therefore
// behavior-free — on the single-threaded simulation backend). The mutex is
// never held across an Advance.
type Registers struct {
	pl     *noc.Platform
	mu     sync.Mutex
	status []statusWord
	tas    []bool

	// owns/fwd, when set, forward operations on registers whose core lives
	// in another process (the net backend partitions registers by the rank
	// owning the core). Local-core operations (SetStatusLocal,
	// LoadStatusLocal, CASStatusLocal) never forward: a core's own register
	// always lives in its own process. See SetRemote.
	owns func(core int) bool
	fwd  RemoteRegs

	// RemoteOps counts remote register operations (guarded by mu); read it
	// after a run.
	RemoteOps uint64
}

// RemoteRegs is the net backend's cross-process register hook: raw,
// latency-free atomic operations executed in the process owning the target
// core. Implementations must be safe for concurrent use.
type RemoteRegs interface {
	CASStatus(owner int, txID uint64, from, to TxState) (swapped bool, obsTxID uint64, obsState TxState)
	TAS(reg int) bool
	TASRelease(reg int)
}

// SetRemote installs the forwarding hook: operations targeting a core for
// which owns reports false are executed remotely through fwd (after local
// latency charging). Install before the engine releases any worker
// goroutine; the fields are read without synchronization after that.
func (r *Registers) SetRemote(owns func(core int) bool, fwd RemoteRegs) {
	r.owns = owns
	r.fwd = fwd
}

// NewRegisters returns registers for every core of the platform.
func NewRegisters(pl *noc.Platform) *Registers {
	n := pl.NumCores()
	return &Registers{
		pl:     pl,
		status: make([]statusWord, n),
		tas:    make([]bool, n),
	}
}

// SetStatusLocal installs (txID, state) in owner's own register. Local
// register access is free.
func (r *Registers) SetStatusLocal(owner int, txID uint64, state TxState) {
	r.mu.Lock()
	r.status[owner] = statusWord{txID: txID, state: state}
	r.mu.Unlock()
}

// LoadStatusLocal reads owner's own register without latency.
func (r *Registers) LoadStatusLocal(owner int) (txID uint64, state TxState) {
	r.mu.Lock()
	w := r.status[owner]
	r.mu.Unlock()
	return w.txID, w.state
}

// CASStatusLocal atomically replaces (txID, from) with (txID, to) on the
// caller's own register, without latency. It reports whether the swap
// happened.
func (r *Registers) CASStatusLocal(owner int, txID uint64, from, to TxState) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.casLocked(owner, txID, from, to)
}

// casLocked is CASStatusLocal with mu held.
func (r *Registers) casLocked(owner int, txID uint64, from, to TxState) bool {
	w := r.status[owner]
	if w.txID != txID || w.state != from {
		return false
	}
	r.status[owner] = statusWord{txID: txID, state: to}
	return true
}

// CASStatusRemote attempts the same swap from core src, charging the remote
// atomic round-trip latency to p.
func (r *Registers) CASStatusRemote(p Ctx, src, owner int, txID uint64, from, to TxState) bool {
	r.mu.Lock()
	r.RemoteOps++
	r.mu.Unlock()
	p.Advance(r.pl.AtomicDelay(src, owner))
	if r.fwd != nil && !r.owns(owner) {
		sw, _, _ := r.fwd.CASStatus(owner, txID, from, to)
		return sw
	}
	return r.CASStatusLocal(owner, txID, from, to)
}

// CASStatusRemoteObserve is CASStatusRemote but additionally returns the
// register word observed at the register (after the swap, if it happened).
// The DTM service uses the observation to distinguish an enemy that is
// committing (non-abortable) from a stale lock left by a finished attempt.
// The swap and the observation are one atomic step.
func (r *Registers) CASStatusRemoteObserve(p Ctx, src, owner int, txID uint64, from, to TxState) (swapped bool, obsTxID uint64, obsState TxState) {
	r.mu.Lock()
	r.RemoteOps++
	r.mu.Unlock()
	p.Advance(r.pl.AtomicDelay(src, owner))
	if r.fwd != nil && !r.owns(owner) {
		return r.fwd.CASStatus(owner, txID, from, to)
	}
	return r.CASStatusObserveRaw(owner, txID, from, to)
}

// CASStatusObserveRaw is the latency-free swap-and-observe: the serving
// side of a forwarded CASStatusRemoteObserve.
func (r *Registers) CASStatusObserveRaw(owner int, txID uint64, from, to TxState) (swapped bool, obsTxID uint64, obsState TxState) {
	r.mu.Lock()
	swapped = r.casLocked(owner, txID, from, to)
	w := r.status[owner]
	r.mu.Unlock()
	return swapped, w.txID, w.state
}

// TAS performs a remote test-and-set on core reg's register from core src:
// it sets the bit and returns its previous value. The caller acquired the
// "lock" iff TAS returns false.
func (r *Registers) TAS(p Ctx, src, reg int) bool {
	r.mu.Lock()
	r.RemoteOps++
	r.mu.Unlock()
	p.Advance(r.pl.AtomicDelay(src, reg))
	if r.fwd != nil && !r.owns(reg) {
		return r.fwd.TAS(reg)
	}
	return r.TASRaw(reg)
}

// TASRaw is the latency-free test-and-set: the serving side of a forwarded
// TAS.
func (r *Registers) TASRaw(reg int) bool {
	r.mu.Lock()
	old := r.tas[reg]
	r.tas[reg] = true
	r.mu.Unlock()
	return old
}

// TASRelease clears core reg's test-and-set bit from core src.
func (r *Registers) TASRelease(p Ctx, src, reg int) {
	r.mu.Lock()
	r.RemoteOps++
	r.mu.Unlock()
	p.Advance(r.pl.AtomicDelay(src, reg))
	if r.fwd != nil && !r.owns(reg) {
		r.fwd.TASRelease(reg)
		return
	}
	r.TASReleaseRaw(reg)
}

// TASReleaseRaw is the latency-free bit clear: the serving side of a
// forwarded TASRelease.
func (r *Registers) TASReleaseRaw(reg int) {
	r.mu.Lock()
	r.tas[reg] = false
	r.mu.Unlock()
}

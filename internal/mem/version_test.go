package mem

import (
	"testing"

	"repro/internal/sim"
)

func TestVClockSnapshotCoversOwnTicks(t *testing.T) {
	c := NewVClock(4)
	if c.NumShards() != 4 {
		t.Fatalf("NumShards = %d", c.NumShards())
	}
	var vers []uint64
	for i := 0; i < 10; i++ {
		vers = append(vers, c.Tick(i%4))
	}
	snap := c.Snapshot(nil)
	for _, v := range vers {
		if !VersionLEQ(v, snap) {
			t.Fatalf("version %#x not covered by the snapshot taken after it", v)
		}
	}
	// A tick after the snapshot must NOT be covered.
	if v := c.Tick(2); VersionLEQ(v, snap) {
		t.Fatalf("version %#x ticked after the snapshot is covered by it", v)
	}
}

func TestVClockZeroVersionAlwaysCovered(t *testing.T) {
	c := NewVClock(8)
	// Version 0 means "never written since boot": every snapshot covers it,
	// including the empty one taken before any tick.
	if !VersionLEQ(0, c.Snapshot(nil)) {
		t.Fatal("zero version not covered by the boot snapshot")
	}
}

func TestVClockShardsIndependent(t *testing.T) {
	c := NewVClock(2)
	v0 := c.Tick(0)
	snap := c.Snapshot(nil)
	v1 := c.Tick(1)
	if !VersionLEQ(v0, snap) {
		t.Fatal("shard-0 tick before snapshot not covered")
	}
	if VersionLEQ(v1, snap) {
		t.Fatal("shard-1 tick after snapshot wrongly covered")
	}
	// Snapshot reuse: appending into the same backing array must refresh.
	snap = c.Snapshot(snap[:0])
	if !VersionLEQ(v1, snap) {
		t.Fatal("refreshed snapshot misses shard-1 tick")
	}
}

func TestVClockBadShardCountPanics(t *testing.T) {
	for _, n := range []int{0, -1, 257} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewVClock(%d) did not panic", n)
				}
			}()
			NewVClock(n)
		}()
	}
}

func TestVersionTableLifecycle(t *testing.T) {
	_, m := newTestMem()
	k := sim.New(1)
	base := m.Alloc(4, 0)
	clock := NewVClock(2)
	k.Spawn("c", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			m.Write(p, 0, base+Addr(i), uint64(i+1))
		}
		keys := []Addr{base, base + 2}

		// Fresh objects: version 0, unlocked.
		if ver, locked := m.LoadVersion(p, 0, base); ver != 0 || locked {
			t.Errorf("fresh LoadVersion = %d, %v", ver, locked)
		}
		if m.VersionRaw(base) != 0 {
			t.Errorf("fresh VersionRaw = %d", m.VersionRaw(base))
		}

		// Lock markers: set, observable through every read path, cleared by
		// publish with the new version.
		m.LockVersions(p, 0, keys)
		if _, locked := m.LoadVersion(p, 0, base); !locked {
			t.Error("marker not observable via LoadVersion")
		}
		if _, _, locked := m.ReadVersioned(p, 0, base, 2, base); !locked {
			t.Error("marker not observable via ReadVersioned")
		}
		wv := clock.Tick(1)
		m.PublishVersions(p, 0, keys, wv)
		vals, ver, locked := m.ReadVersioned(p, 0, base, 2, base)
		if locked {
			t.Error("marker survived PublishVersions")
		}
		if ver != wv {
			t.Errorf("published version = %#x, want %#x", ver, wv)
		}
		if vals[0] != 1 || vals[1] != 2 {
			t.Errorf("values = %v", vals)
		}

		// Unlock without publish (abort path) keeps the old version.
		m.LockVersions(p, 0, keys)
		m.UnlockVersions(keys)
		if got, locked := m.LoadVersion(p, 0, base); got != wv || locked {
			t.Errorf("after abort unlock: ver=%#x locked=%v, want %#x unlocked", got, locked, wv)
		}
	})
	k.Run(sim.Infinity)
}

func TestVersionOpsChargeMemoryTraffic(t *testing.T) {
	_, m := newTestMem()
	k := sim.New(1)
	base := m.Alloc(2, 0)
	k.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		m.ReadVersioned(p, 0, base, 2, base)
		if p.Now() == start {
			t.Error("ReadVersioned charged no latency")
		}
		start = p.Now()
		m.LockVersions(p, 0, []Addr{base})
		if p.Now() == start {
			t.Error("LockVersions charged no latency")
		}
		start = p.Now()
		m.PublishVersions(p, 0, []Addr{base}, NewVClock(1).Tick(0))
		if p.Now() == start {
			t.Error("PublishVersions charged no latency")
		}
		// VersionRaw is the DTM-local fast path: free by design.
		start = p.Now()
		m.VersionRaw(base)
		if p.Now() != start {
			t.Error("VersionRaw charged latency")
		}
	})
	k.Run(sim.Infinity)
}

func TestDoubleLockVersionPanics(t *testing.T) {
	_, m := newTestMem()
	k := sim.New(1)
	base := m.Alloc(1, 0)
	k.Spawn("c", func(p *sim.Proc) {
		m.LockVersions(p, 0, []Addr{base})
		defer func() {
			if recover() == nil {
				t.Error("double LockVersions did not panic")
			}
		}()
		m.LockVersions(p, 0, []Addr{base})
	})
	k.Run(sim.Infinity)
}

func TestUnlockUnmarkedVersionPanics(t *testing.T) {
	_, m := newTestMem()
	base := m.Alloc(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("UnlockVersions on unmarked key did not panic")
		}
	}()
	m.UnlockVersions([]Addr{base})
}

// Package mem emulates the non-coherent shared memory of a many-core: a
// flat, word-addressable address space reached through a small number of
// memory controllers, with no hardware cache coherence.
//
// The address space is partitioned into one region per memory controller
// (high address bits select the controller), matching the SCC where each
// DDR3 controller serves a fixed physical range. A bump allocator per region
// lets callers place data near a chosen controller — the paper relies on
// this ("each core adding a new element stores it in its closest memory
// controller", §5.2).
//
// Accesses are charged virtual latency: distance to the controller plus a
// queueing term, so controller congestion emerges when many cores hammer
// the same region (the effect behind Fig. 4(b) and the elastic-read knee in
// Fig. 7(b)).
package mem

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/noc"
	"repro/internal/sim"
)

// Ctx is the execution context charged for a memory access: any execution
// port (a simulated proc or a live goroutine port) that can report time and
// absorb latency. Keeping the interface this small lets mem sit below the
// backend packages.
type Ctx interface {
	Now() sim.Time
	Advance(d time.Duration)
}

// Addr is a word address in the shared address space.
type Addr uint64

// RegionShift selects the memory-controller region from the high bits:
// region r serves addresses [r<<RegionShift, (r+1)<<RegionShift). Exported
// so the placement directory can derive its stripe universe from the same
// partitioning instead of aliasing far-apart addresses.
const RegionShift = 40

// Word storage is paged: a sparse map of fixed-size pages rather than one
// map entry per word. At the million-object scales the ROADMAP targets, a
// per-word map costs ~50 bytes/entry and a cache miss per access; pages
// amortize to ~8 bytes/word for any reasonably dense allocation while cold
// ranges of the 2^40-word regions cost nothing. A page that drops to zero
// live words is freed, so footprint tracks the working set, not the
// universe.
const (
	pageShift = 9 // 512 words (4 KiB of data) per page
	pageWords = 1 << pageShift
	pageMask  = pageWords - 1
)

type page struct {
	live int // non-zero words on the page
	w    [pageWords]uint64
}

// Nil is the null address. The allocator never returns it, so data
// structures may use it as a null pointer.
const Nil Addr = 0

// Memory is the shared address space. Methods are safe for concurrent use
// by multiple execution ports: internal state is guarded by a mutex that is
// never held across an Advance, so on the single-threaded simulation
// backend the lock is uncontended and the virtual-time behavior is exactly
// what it was when the kernel's one-at-a-time discipline was the only
// protection, while on the live backend concurrent goroutine accesses
// linearize at the lock.
type Memory struct {
	pl *noc.Platform

	mu      sync.Mutex
	pages   map[Addr]*page  // page number -> page (sparse word storage)
	nonzero int             // non-zero words across all pages
	vers    map[Addr]objVer // per-lock-stripe TL2 version metadata (see version.go); populated only for written stripes
	brk     []Addr          // per-region bump pointer
	busy    []sim.Time      // per-controller queue: time the MC is busy until

	// remote, when set, redirects word storage and allocation to another
	// process (the net backend homes all words on rank 0). Latency is still
	// charged locally against the model; only the raw apply crosses the
	// process boundary. See SetRemote.
	remote Remote

	// Stats accumulates access counters (guarded by mu); read them after a
	// run, once the machine has quiesced.
	Stats MemStats
}

// Remote is the net backend's cross-process storage hook: raw, latency-free
// word operations executed in the owning process. Implementations must be
// safe for concurrent use.
type Remote interface {
	ReadRaw(addr Addr) uint64
	WriteRaw(addr Addr, v uint64)
	ReadBatchRaw(base Addr, n int) []uint64
	WriteBatchRaw(addrs []Addr, vals []uint64)
	Alloc(n, mc int) Addr
}

// SetRemote redirects this replica's word storage and allocation to r
// (rank 0's memory, on the net backend). Install it before the engine
// releases any worker goroutine — the field is read without
// synchronization after that point. Setup code that ran before SetRemote
// wrote to the local replica; by replicated construction every rank ran the
// identical setup, so the owning rank's copy already agrees.
func (m *Memory) SetRemote(r Remote) { m.remote = r }

// MemStats counts memory traffic.
type MemStats struct {
	Reads, Writes uint64
	PerMC         []uint64
	WaitTime      sim.Time // total queueing delay experienced
}

// New returns an empty memory for the platform.
func New(pl *noc.Platform) *Memory {
	n := pl.MCCount()
	m := &Memory{
		pl:    pl,
		pages: make(map[Addr]*page),
		vers:  make(map[Addr]objVer),
		brk:   make([]Addr, n),
		busy:  make([]sim.Time, n),
	}
	m.Stats.PerMC = make([]uint64, n)
	for i := range m.brk {
		// Start each region at word 1 so that Nil (0) is never allocated.
		m.brk[i] = Addr(i)<<RegionShift + 1
	}
	return m
}

// MCOf returns the memory controller serving addr.
func (m *Memory) MCOf(addr Addr) int {
	mc := int(addr >> RegionShift)
	if mc >= len(m.brk) {
		panic(fmt.Sprintf("mem: address %#x outside any controller region", uint64(addr)))
	}
	return mc
}

// Alloc reserves n contiguous words in controller mc's region and returns
// the base address. It never fails (the regions are 2^40 words). Workers
// allocate inside transactions (list/hash-set inserts), so Alloc is safe
// for concurrent use.
func (m *Memory) Alloc(n int, mc int) Addr {
	if n <= 0 {
		panic("mem: Alloc of non-positive size")
	}
	mc %= len(m.brk)
	if m.remote != nil {
		// The bump pointers are homed with the words: mid-run allocations
		// (list/hash-set inserts) from different processes must never hand
		// out overlapping addresses.
		return m.remote.Alloc(n, mc)
	}
	m.mu.Lock()
	base := m.brk[mc]
	m.brk[mc] += Addr(n)
	m.mu.Unlock()
	return base
}

// NearestMC returns the controller closest to core on the platform.
func (m *Memory) NearestMC(core int) int {
	best, bestHops := 0, 1<<30
	for mc := 0; mc < m.pl.MCCount(); mc++ {
		if h := m.pl.MemHops(core, mc); h < bestHops {
			best, bestHops = mc, h
		}
	}
	return best
}

// AllocNear reserves n words in the region of the controller closest to
// core.
func (m *Memory) AllocNear(n int, core int) Addr {
	return m.Alloc(n, m.NearestMC(core))
}

// charge accounts nWords accesses through mc at time now and returns the
// queueing + service latency to charge (the distance term is added by the
// caller). Called with mu held.
func (m *Memory) charge(now sim.Time, mc, nWords int) sim.Time {
	m.Stats.PerMC[mc] += uint64(nWords)
	start := now
	if m.busy[mc] > start {
		start = m.busy[mc]
	}
	wait := start - now
	service := sim.Time(m.pl.MemService) * sim.Time(nWords)
	m.busy[mc] = start + service
	m.Stats.WaitTime += wait
	return wait + service
}

// access charges p with the latency of nWords accesses from core through
// addr's controller. A batch pays the distance once and occupies the
// controller once per word. The lock is dropped before Advance: a parked
// proc must never hold it.
func (m *Memory) access(p Ctx, core int, addr Addr, nWords int) {
	mc := m.MCOf(addr)
	now := p.Now()
	m.mu.Lock()
	busy := m.charge(now, mc, nWords)
	m.mu.Unlock()
	p.Advance(busy.Duration() + m.pl.MemDelay(core, mc))
}

// Read returns the word at addr, charging access latency to p.
func (m *Memory) Read(p Ctx, core int, addr Addr) uint64 {
	m.mu.Lock()
	m.Stats.Reads++
	m.mu.Unlock()
	m.access(p, core, addr, 1)
	if m.remote != nil {
		return m.remote.ReadRaw(addr)
	}
	m.mu.Lock()
	v := m.getWord(addr)
	m.mu.Unlock()
	return v
}

// Write stores v at addr, charging access latency to p.
func (m *Memory) Write(p Ctx, core int, addr Addr, v uint64) {
	m.mu.Lock()
	m.Stats.Writes++
	m.mu.Unlock()
	m.access(p, core, addr, 1)
	if m.remote != nil {
		m.remote.WriteRaw(addr, v)
		return
	}
	m.mu.Lock()
	m.setWord(addr, v)
	m.mu.Unlock()
}

// ReadBatch returns the n contiguous words starting at base, charging one
// batched access: the distance to the controller is paid once, the
// controller is occupied once per word. Objects (multi-word records) are
// read this way.
func (m *Memory) ReadBatch(p Ctx, core int, base Addr, n int) []uint64 {
	if n <= 0 {
		panic("mem: ReadBatch of non-positive size")
	}
	return m.ReadBatchTo(p, core, base, make([]uint64, n))
}

// ReadBatchTo is ReadBatch reading len(dst) words into dst — identical
// charging, no allocation — and returns dst. The hot transactional read path
// passes arena-backed buffers here.
func (m *Memory) ReadBatchTo(p Ctx, core int, base Addr, dst []uint64) []uint64 {
	n := len(dst)
	if n <= 0 {
		panic("mem: ReadBatchTo of empty buffer")
	}
	m.mu.Lock()
	m.Stats.Reads += uint64(n)
	m.mu.Unlock()
	m.access(p, core, base, n)
	if m.remote != nil {
		copy(dst, m.remote.ReadBatchRaw(base, n))
		return dst
	}
	m.mu.Lock()
	m.getBatch(base, dst)
	m.mu.Unlock()
	return dst
}

// WriteBatch stores values[i] at addrs[i], charging a single batched access:
// one distance payment per controller touched, one service slot per word.
func (m *Memory) WriteBatch(p Ctx, core int, addrs []Addr, values []uint64) {
	if len(addrs) != len(values) {
		panic("mem: WriteBatch length mismatch")
	}
	if len(addrs) == 0 {
		return
	}
	// Group per controller, paying distance once per controller; iterate
	// controllers in fixed order for determinism. The counter vector lives
	// on the stack for realistic controller counts.
	var mcBuf [8]int
	perMC := mcBuf[:0]
	if len(m.brk) <= len(mcBuf) {
		perMC = mcBuf[:len(m.brk)]
	} else {
		perMC = make([]int, len(m.brk))
	}
	for _, a := range addrs {
		perMC[m.MCOf(a)]++
	}
	m.mu.Lock()
	m.Stats.Writes += uint64(len(addrs))
	m.mu.Unlock()
	for mc, n := range perMC {
		if n == 0 {
			continue
		}
		now := p.Now()
		m.mu.Lock()
		busy := m.charge(now, mc, n)
		m.mu.Unlock()
		p.Advance(busy.Duration() + m.pl.MemDelay(core, mc))
	}
	if m.remote != nil {
		m.remote.WriteBatchRaw(addrs, values)
		return
	}
	m.mu.Lock()
	for i, a := range addrs {
		m.setWord(a, values[i])
	}
	m.mu.Unlock()
}

// getWord returns the word at addr; called with mu held.
func (m *Memory) getWord(addr Addr) uint64 {
	if pg := m.pages[addr>>pageShift]; pg != nil {
		return pg.w[addr&pageMask]
	}
	return 0
}

// getBatch reads len(dst) contiguous words starting at base into dst,
// walking whole pages at a time; called with mu held.
func (m *Memory) getBatch(base Addr, dst []uint64) {
	for i := 0; i < len(dst); {
		a := base + Addr(i)
		n := pageWords - int(a&pageMask)
		if rest := len(dst) - i; n > rest {
			n = rest
		}
		if pg := m.pages[a>>pageShift]; pg != nil {
			copy(dst[i:i+n], pg.w[a&pageMask:int(a&pageMask)+n])
		} else {
			for j := i; j < i+n; j++ {
				dst[j] = 0
			}
		}
		i += n
	}
}

// setWord stores v at addr; called with mu held. Pages materialize on first
// non-zero write and free when their last live word zeroes, so storage
// stays proportional to the live working set.
func (m *Memory) setWord(addr Addr, v uint64) {
	pn := addr >> pageShift
	pg := m.pages[pn]
	if pg == nil {
		if v == 0 {
			return
		}
		pg = &page{}
		m.pages[pn] = pg
	}
	slot := &pg.w[addr&pageMask]
	old := *slot
	*slot = v
	switch {
	case old == 0 && v != 0:
		pg.live++
		m.nonzero++
	case old != 0 && v == 0:
		pg.live--
		m.nonzero--
		if pg.live == 0 {
			delete(m.pages, pn)
		}
	}
}

// ReadRaw returns the word at addr without charging latency. Intended for
// setup and verification code outside the simulated machine, and for the
// elastic-read validation window's free commit-time re-check.
func (m *Memory) ReadRaw(addr Addr) uint64 {
	if m.remote != nil {
		return m.remote.ReadRaw(addr)
	}
	m.mu.Lock()
	v := m.getWord(addr)
	m.mu.Unlock()
	return v
}

// WriteRaw stores v at addr without charging latency. Intended for setup
// code outside the simulated machine.
func (m *Memory) WriteRaw(addr Addr, v uint64) {
	if m.remote != nil {
		m.remote.WriteRaw(addr, v)
		return
	}
	m.mu.Lock()
	m.setWord(addr, v)
	m.mu.Unlock()
}

// ReadBatchRaw returns n contiguous words starting at base without charging
// latency: the serving side of a forwarded ReadBatch.
func (m *Memory) ReadBatchRaw(base Addr, n int) []uint64 {
	out := make([]uint64, n)
	m.mu.Lock()
	m.getBatch(base, out)
	m.mu.Unlock()
	return out
}

// WriteBatchRaw stores values[i] at addrs[i] without charging latency: the
// serving side of a forwarded WriteBatch.
func (m *Memory) WriteBatchRaw(addrs []Addr, values []uint64) {
	m.mu.Lock()
	for i, a := range addrs {
		m.setWord(a, values[i])
	}
	m.mu.Unlock()
}

// Footprint returns the number of non-zero words currently stored.
func (m *Memory) Footprint() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nonzero
}

package mem

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/noc"
	"repro/internal/sim"
)

func newTestMem() (*noc.Platform, *Memory) {
	pl := noc.SCC(0)
	return &pl, New(&pl)
}

func TestAllocNeverReturnsNil(t *testing.T) {
	_, m := newTestMem()
	for mc := 0; mc < 4; mc++ {
		if a := m.Alloc(1, mc); a == Nil {
			t.Fatalf("Alloc returned Nil in region %d", mc)
		}
	}
}

func TestAllocRegionsDisjoint(t *testing.T) {
	_, m := newTestMem()
	type span struct{ lo, hi Addr }
	var spans []span
	for i := 0; i < 200; i++ {
		n := i%17 + 1
		a := m.Alloc(n, i%4)
		spans = append(spans, span{a, a + Addr(n)})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.lo < b.hi && b.lo < a.hi {
				t.Fatalf("allocations overlap: %+v and %+v", a, b)
			}
		}
	}
}

func TestAllocPropertyNonOverlapping(t *testing.T) {
	if err := quick.Check(func(sizes []uint8) bool {
		_, m := newTestMem()
		seen := make(map[Addr]bool)
		for i, s := range sizes {
			n := int(s%32) + 1
			base := m.Alloc(n, i%4)
			for w := Addr(0); w < Addr(n); w++ {
				if seen[base+w] {
					return false
				}
				seen[base+w] = true
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMCOfMatchesAllocRegion(t *testing.T) {
	_, m := newTestMem()
	for mc := 0; mc < 4; mc++ {
		a := m.Alloc(8, mc)
		if got := m.MCOf(a); got != mc {
			t.Errorf("MCOf(alloc in %d) = %d", mc, got)
		}
	}
}

func TestAllocPanicsOnNonPositive(t *testing.T) {
	_, m := newTestMem()
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	m.Alloc(0, 0)
}

func TestReadAfterWrite(t *testing.T) {
	_, m := newTestMem()
	k := sim.New(1)
	a := m.Alloc(4, 0)
	k.Spawn("c", func(p *sim.Proc) {
		m.Write(p, 0, a, 42)
		if v := m.Read(p, 0, a); v != 42 {
			t.Errorf("read back %d, want 42", v)
		}
		if v := m.Read(p, 0, a+1); v != 0 {
			t.Errorf("unwritten word = %d, want 0", v)
		}
	})
	k.Run(sim.Infinity)
}

func TestAccessChargesLatency(t *testing.T) {
	pl, m := newTestMem()
	k := sim.New(1)
	a := m.Alloc(1, 0)
	var elapsed sim.Time
	k.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		m.Read(p, 0, a)
		elapsed = p.Now() - start
	})
	k.Run(sim.Infinity)
	min := sim.Time(pl.MemBase)
	if elapsed < min {
		t.Fatalf("read took %v, want >= %v", elapsed, min)
	}
}

func TestControllerCongestion(t *testing.T) {
	_, m := newTestMem()
	k := sim.New(1)
	a := m.Alloc(1, 0)
	// Ten cores hit the same controller at t=0; later ones must queue.
	var times []sim.Time
	for c := 0; c < 10; c++ {
		core := c
		k.Spawn("c", func(p *sim.Proc) {
			m.Read(p, core, a)
			times = append(times, p.Now())
		})
	}
	k.Run(sim.Infinity)
	if m.Stats.WaitTime == 0 {
		t.Fatal("expected queueing wait under contention")
	}
	if m.Stats.Reads != 10 {
		t.Fatalf("reads = %d", m.Stats.Reads)
	}
}

func TestWriteBatchCheaperThanSingles(t *testing.T) {
	cost := func(batch bool) sim.Time {
		_, m := newTestMem()
		k := sim.New(1)
		addrs := make([]Addr, 16)
		vals := make([]uint64, 16)
		base := m.Alloc(16, 0)
		for i := range addrs {
			addrs[i] = base + Addr(i)
			vals[i] = uint64(i + 1)
		}
		var elapsed sim.Time
		k.Spawn("c", func(p *sim.Proc) {
			start := p.Now()
			if batch {
				m.WriteBatch(p, 0, addrs, vals)
			} else {
				for i := range addrs {
					m.Write(p, 0, addrs[i], vals[i])
				}
			}
			elapsed = p.Now() - start
		})
		k.Run(sim.Infinity)
		for i := range addrs {
			if m.ReadRaw(addrs[i]) != vals[i] {
				t.Fatalf("batch=%v lost write at %d", batch, i)
			}
		}
		return elapsed
	}
	if b, s := cost(true), cost(false); b >= s {
		t.Fatalf("batch (%v) should be cheaper than singles (%v)", b, s)
	}
}

func TestWriteBatchValidation(t *testing.T) {
	_, m := newTestMem()
	k := sim.New(1)
	k.Spawn("c", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Errorf("length mismatch did not panic")
			}
		}()
		m.WriteBatch(p, 0, []Addr{1}, nil)
	})
	k.Run(sim.Infinity)
}

func TestWriteBatchEmptyIsFree(t *testing.T) {
	_, m := newTestMem()
	k := sim.New(1)
	k.Spawn("c", func(p *sim.Proc) {
		start := p.Now()
		m.WriteBatch(p, 0, nil, nil)
		if p.Now() != start {
			t.Errorf("empty batch consumed time")
		}
	})
	k.Run(sim.Infinity)
}

func TestZeroWritesKeepMapSparse(t *testing.T) {
	_, m := newTestMem()
	a := m.Alloc(1, 0)
	m.WriteRaw(a, 7)
	if m.Footprint() != 1 {
		t.Fatalf("footprint = %d", m.Footprint())
	}
	m.WriteRaw(a, 0)
	if m.Footprint() != 0 {
		t.Fatalf("footprint after zeroing = %d", m.Footprint())
	}
}

func TestNearestMC(t *testing.T) {
	_, m := newTestMem()
	// Core 0 is at tile (0,0): controller 0's corner.
	if mc := m.NearestMC(0); mc != 0 {
		t.Errorf("NearestMC(0) = %d, want 0", mc)
	}
	// Core 47 is at tile (5,3): controller 3's corner.
	if mc := m.NearestMC(47); mc != 3 {
		t.Errorf("NearestMC(47) = %d, want 3", mc)
	}
	a := m.AllocNear(4, 47)
	if m.MCOf(a) != 3 {
		t.Errorf("AllocNear(47) placed in MC %d", m.MCOf(a))
	}
}

func TestMCOfPanicsOutsideRegions(t *testing.T) {
	_, m := newTestMem()
	defer func() {
		if recover() == nil {
			t.Fatal("MCOf on wild address did not panic")
		}
	}()
	m.MCOf(Addr(200) << 40)
}

func TestStatusRegisterLifecycle(t *testing.T) {
	pl := noc.SCC(0)
	r := NewRegisters(&pl)
	r.SetStatusLocal(3, 100, TxPending)
	if id, st := r.LoadStatusLocal(3); id != 100 || st != TxPending {
		t.Fatalf("load = (%d,%v)", id, st)
	}
	if !r.CASStatusLocal(3, 100, TxPending, TxCommitting) {
		t.Fatal("CAS pending->committing failed")
	}
	if r.CASStatusLocal(3, 100, TxPending, TxAborted) {
		t.Fatal("CAS from stale state succeeded")
	}
	if r.CASStatusLocal(3, 99, TxCommitting, TxAborted) {
		t.Fatal("CAS with wrong txID succeeded")
	}
}

func TestRemoteCASChargesLatency(t *testing.T) {
	pl := noc.SCC(0)
	r := NewRegisters(&pl)
	r.SetStatusLocal(40, 7, TxPending)
	k := sim.New(1)
	k.Spawn("dtm", func(p *sim.Proc) {
		start := p.Now()
		if !r.CASStatusRemote(p, 0, 40, 7, TxPending, TxAborted) {
			t.Errorf("remote CAS failed")
		}
		if p.Now() == start {
			t.Errorf("remote CAS was free")
		}
	})
	k.Run(sim.Infinity)
	if _, st := r.LoadStatusLocal(40); st != TxAborted {
		t.Fatalf("state = %v, want aborted", st)
	}
	if r.RemoteOps != 1 {
		t.Fatalf("RemoteOps = %d", r.RemoteOps)
	}
}

func TestTASSemantics(t *testing.T) {
	pl := noc.SCC(0)
	r := NewRegisters(&pl)
	k := sim.New(1)
	k.Spawn("c", func(p *sim.Proc) {
		if r.TAS(p, 1, 0) {
			t.Errorf("first TAS should return false (was clear)")
		}
		if !r.TAS(p, 2, 0) {
			t.Errorf("second TAS should return true (was set)")
		}
		r.TASRelease(p, 1, 0)
		if r.TAS(p, 3, 0) {
			t.Errorf("TAS after release should return false")
		}
	})
	k.Run(sim.Infinity)
}

func TestTxStateString(t *testing.T) {
	names := map[TxState]string{
		TxFree: "free", TxPending: "pending", TxCommitting: "committing",
		TxAborted: "aborted", TxCommitted: "committed", TxState(99): "invalid",
	}
	for st, want := range names {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestMemDelayFartherMCCostsMore(t *testing.T) {
	// Sanity for time.Duration plumbing between noc and mem.
	pl := noc.SCC(0)
	if pl.MemDelay(0, 3)-pl.MemDelay(0, 0) < time.Duration(8)*pl.MemPerHop {
		t.Fatal("per-hop memory cost not applied")
	}
}

package mem

import (
	"fmt"
	"sync/atomic"
)

// TL2-style version metadata: a sharded global version clock and a
// per-object (per lock stripe) version table. The visible-read protocol
// never touches either; the invisible-read protocol mode (core.ProtocolTL2)
// uses them to validate local reads without any DTM round trip.
//
// The clock is sharded to keep update commits from serializing on one
// counter: each committer ticks its own shard, and a version is the pair
// (shard, per-shard count) packed into one word. A transaction's read
// snapshot is therefore a small vector — one count per shard — not a single
// scalar. That vector form is what makes validation sound: "version v is
// covered by snapshot rv" means rv's entry for v's shard is at least v's
// count, which can only be true if the snapshot read that shard after the
// tick that produced v. A scalar sum of shards would admit snapshots that
// cover a version without having observed its tick, and with it mixed
// pre/post states of one committer's write set.

// versionShardShift splits the packed version word: the top bits carry the
// shard index, the low bits the per-shard count.
const versionShardShift = 56

// versionCountMask masks the per-shard count out of a packed version.
const versionCountMask = (uint64(1) << versionShardShift) - 1

// VClock is the sharded global version clock. Shards are padded to their
// own cache lines so concurrent committers on the live backend never false-
// share a counter.
type VClock struct {
	shards []vclockShard
}

type vclockShard struct {
	v atomic.Uint64
	_ [7]uint64 // pad to one cache line
}

// NewVClock returns a clock with the given number of shards (at least 1,
// at most 256 — the shard index must fit the packed version's top byte).
func NewVClock(shards int) *VClock {
	if shards < 1 || shards > 256 {
		panic(fmt.Sprintf("mem: vclock shard count %d out of range [1,256]", shards))
	}
	return &VClock{shards: make([]vclockShard, shards)}
}

// NumShards returns the shard count.
func (c *VClock) NumShards() int { return len(c.shards) }

// Snapshot appends the current per-shard counts to dst (pass dst[:0] to
// reuse a buffer) and returns the snapshot vector.
func (c *VClock) Snapshot(dst []uint64) []uint64 {
	for i := range c.shards {
		dst = append(dst, c.shards[i].v.Load())
	}
	return dst
}

// Tick advances the given shard and returns the resulting packed version,
// strictly newer (on its shard) than any snapshot taken before the tick.
func (c *VClock) Tick(shard int) uint64 {
	s := shard % len(c.shards)
	cnt := c.shards[s].v.Add(1)
	if cnt > versionCountMask {
		panic("mem: vclock shard count overflow")
	}
	return uint64(s)<<versionShardShift | cnt
}

// VersionLEQ reports whether the packed version ver is covered by the
// snapshot vector snap: the snapshot observed ver's shard at or after the
// tick that produced it. The zero version (never written) is covered by
// every snapshot.
func VersionLEQ(ver uint64, snap []uint64) bool {
	if ver == 0 {
		return true
	}
	shard := int(ver >> versionShardShift)
	if shard >= len(snap) {
		return false
	}
	return ver&versionCountMask <= snap[shard]
}

// objVer is the version metadata of one lock stripe: the packed version of
// its last committed write-back and the write-back marker a committer holds
// while its writes are in flight. A reader observing the marker cannot tell
// old from new data and must abort.
type objVer struct {
	ver    uint64
	locked bool
}

// ReadVersioned returns the n-word object at base together with the version
// metadata of its lock stripe key, all observed atomically under the memory
// mutex (within one controller an object read is untorn). It charges one
// batched access of n+1 words — the version word co-located with the
// object rides the same controller visit.
func (m *Memory) ReadVersioned(p Ctx, core int, base Addr, n int, key Addr) (vals []uint64, ver uint64, locked bool) {
	if n <= 0 {
		panic("mem: ReadVersioned of non-positive size")
	}
	return m.ReadVersionedTo(p, core, base, key, make([]uint64, n))
}

// ReadVersionedTo is ReadVersioned reading the object into dst (len(dst)
// words) — identical atomicity and charging, no allocation — and returns
// dst as vals.
func (m *Memory) ReadVersionedTo(p Ctx, core int, base Addr, key Addr, dst []uint64) (vals []uint64, ver uint64, locked bool) {
	n := len(dst)
	if n <= 0 {
		panic("mem: ReadVersionedTo of empty buffer")
	}
	m.mu.Lock()
	m.Stats.Reads += uint64(n) + 1
	m.mu.Unlock()
	m.access(p, core, base, n+1)
	m.mu.Lock()
	m.getBatch(base, dst)
	ov := m.vers[key]
	m.mu.Unlock()
	return dst, ov.ver, ov.locked
}

// LoadVersion returns the version metadata of one lock stripe, charging a
// one-word access (commit-time read-set revalidation pays this per stripe).
func (m *Memory) LoadVersion(p Ctx, core int, key Addr) (ver uint64, locked bool) {
	m.mu.Lock()
	m.Stats.Reads++
	m.mu.Unlock()
	m.access(p, core, key, 1)
	m.mu.Lock()
	ov := m.vers[key]
	m.mu.Unlock()
	return ov.ver, ov.locked
}

// VersionRaw returns a stripe's current version without charging latency.
// DTM nodes use it to piggyback versions on write-lock grants (the lookup
// rides the already-charged lock service cost); tests use it to inspect
// state.
func (m *Memory) VersionRaw(key Addr) uint64 {
	m.mu.Lock()
	v := m.vers[key].ver
	m.mu.Unlock()
	return v
}

// LockVersions sets the write-back marker of every given stripe, charging
// one batched write access per controller touched (one word per stripe).
// The caller must hold the stripes' DTM write locks; a marker already set
// would mean two committers hold the same write lock, so it panics.
func (m *Memory) LockVersions(p Ctx, core int, keys []Addr) {
	m.chargeKeyBatch(p, core, keys)
	m.mu.Lock()
	for _, k := range keys {
		ov := m.vers[k]
		if ov.locked {
			m.mu.Unlock()
			panic(fmt.Sprintf("mem: version marker of %#x already locked", uint64(k)))
		}
		ov.locked = true
		m.vers[k] = ov
	}
	m.mu.Unlock()
}

// UnlockVersions clears the write-back markers without advancing versions —
// the abort path of a commit whose revalidation failed after the markers
// were set. Free of charge, like the other abort bookkeeping.
func (m *Memory) UnlockVersions(keys []Addr) {
	m.mu.Lock()
	for _, k := range keys {
		ov := m.vers[k]
		if !ov.locked {
			m.mu.Unlock()
			panic(fmt.Sprintf("mem: unlock of unmarked stripe %#x", uint64(k)))
		}
		ov.locked = false
		m.vers[k] = ov
	}
	m.mu.Unlock()
}

// PublishVersions installs ver as every given stripe's version and clears
// the write-back markers, charging one batched write access per controller
// touched. Called after the write set has persisted: from this instant
// readers see the new data under the new version instead of the marker.
func (m *Memory) PublishVersions(p Ctx, core int, keys []Addr, ver uint64) {
	m.chargeKeyBatch(p, core, keys)
	m.mu.Lock()
	for _, k := range keys {
		ov := m.vers[k]
		if !ov.locked {
			m.mu.Unlock()
			panic(fmt.Sprintf("mem: publish to unmarked stripe %#x", uint64(k)))
		}
		m.vers[k] = objVer{ver: ver}
	}
	m.mu.Unlock()
}

// chargeKeyBatch charges one word of write traffic per key, batched per
// controller exactly like WriteBatch.
func (m *Memory) chargeKeyBatch(p Ctx, core int, keys []Addr) {
	if len(keys) == 0 {
		return
	}
	var mcBuf [8]int
	perMC := mcBuf[:0]
	if len(m.brk) <= len(mcBuf) {
		perMC = mcBuf[:len(m.brk)]
	} else {
		perMC = make([]int, len(m.brk))
	}
	for _, k := range keys {
		perMC[m.MCOf(k)]++
	}
	m.mu.Lock()
	m.Stats.Writes += uint64(len(keys))
	m.mu.Unlock()
	for mc, n := range perMC {
		if n == 0 {
			continue
		}
		now := p.Now()
		m.mu.Lock()
		busy := m.charge(now, mc, n)
		m.mu.Unlock()
		p.Advance(busy.Duration() + m.pl.MemDelay(core, mc))
	}
}

// Package placement implements TM2C-Go's object→DTM-node directory: the
// pluggable subsystem deciding which DTM service node owns the lock for a
// given shared-memory key.
//
// TM2C (§3.2) fixes this mapping to a static multiplicative hash, which
// balances load only under uniform access. This package makes placement a
// first-class subsystem behind a Policy interface with four strategies:
//
//   - Hash: the paper's static multiplicative hash (the default);
//   - Range: contiguous striping, so neighbouring addresses share a DTM
//     node (spatial locality for scans and block-structured data);
//   - Adaptive: a per-stripe ownership table that tracks access counts per
//     epoch and migrates hot stripes from overloaded to underloaded nodes;
//   - AdaptiveHier: Adaptive plus locality-aware thread/data co-mapping —
//     migrations are biased toward a DTM node in the cluster (mesh
//     quadrant / socket) of the stripe's dominant accessor group.
//
// # Stripe universe
//
// The stripe universe is derived from the configured memory size: Regions
// memory-controller regions of RegionWords words each, quantized into
// stripes of Span words. A key outside the configured universe panics
// loudly — the directory never aliases far-apart addresses onto the same
// stripe (the historic wrap-modulo behavior silently merged unrelated keys
// at large universes, coarsening migration in ways that were impossible to
// diagnose).
//
// # Hierarchical storage
//
// A universe sized for millions of objects makes flat per-stripe arrays an
// O(universe) cost paid on every epoch. The adaptive directory therefore
// stores its ownership table hierarchically: the universe is divided into
// super-stripes of LeafStripes leaf stripes, and a super-stripe is
// materialized into a leaf — per-stripe owner/pending/count/affinity arrays
// — only when one of its stripes is first recorded or frozen (a split).
// Unmaterialized stripes implicitly carry the interleaved default owner
// (stripe mod Nodes) and a zero count, so resolution never needs the leaf.
// Epoch decay, repartition scans and invariant checks walk only the
// materialized leaves; a leaf whose counts have decayed to zero, with no
// frozen stripe and every owner back at the default, is merged away
// (dematerialized). Directory work is thus O(touched), not O(universe).
//
// # Migration protocol
//
// Adaptive migration is a consistency-critical distributed protocol. The
// directory never moves ownership of a stripe while locks on it are live:
//
//  1. A repartition round freezes the chosen stripes (the pending target is
//     recorded and the epoch bumps); the current owner keeps serving
//     releases on a frozen stripe but NACKs new lock requests.
//  2. The owner hands a stripe off only once its lock table holds no live
//     lock on it (re-checked on every release and on every retried
//     request), at which point ownership flips and the epoch bumps again.
//     A drained stripe has no lock state, so nothing is copied.
//  3. Lock requests carry the epoch at which the sender resolved the key;
//     a request arriving at a node that no longer (or not yet) owns the
//     key, or whose stripe is frozen, is NACKed back to the requester for
//     re-resolution.
//
// Ownership is therefore never lost or duplicated: at every epoch each key
// has exactly one owner, and only that owner can grant its locks. The
// directory is plain bookkeeping driven by the simulator's event loop, so
// it stays deterministic like everything else in the system.
package placement

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mem"
)

// Kind selects a placement policy.
type Kind uint8

const (
	// Hash is the paper's static multiplicative hash of the lock key.
	Hash Kind = iota
	// Range stripes the address space contiguously across the nodes.
	Range
	// Adaptive starts from an interleaved stripe assignment and migrates
	// hot stripes between nodes at epoch boundaries.
	Adaptive
	// AdaptiveHier is Adaptive with locality-aware co-mapping: hot stripes
	// migrate toward a DTM node in the cluster of their dominant accessor
	// group instead of merely toward the globally coolest node.
	AdaptiveHier
)

func (k Kind) String() string {
	switch k {
	case Range:
		return "range"
	case Adaptive:
		return "adaptive"
	case AdaptiveHier:
		return "hier"
	default:
		return "hash"
	}
}

// Parse parses a placement policy name (hash|range|adaptive|hier).
func Parse(s string) (Kind, error) {
	switch s {
	case "", "hash":
		return Hash, nil
	case "range":
		return Range, nil
	case "adaptive":
		return Adaptive, nil
	case "hier", "adaptive-hier":
		return AdaptiveHier, nil
	}
	return Hash, fmt.Errorf("placement: unknown policy %q", s)
}

// Kinds lists every policy in presentation order.
func Kinds() []Kind { return []Kind{Hash, Range, Adaptive, AdaptiveHier} }

// Config describes one directory.
type Config struct {
	// Nodes is the number of DTM nodes (required, > 0).
	Nodes int
	// Kind selects the policy (default Hash).
	Kind Kind
	// Stripes is the legacy stripe-universe size, used only when
	// RegionWords is unset: the universe then covers Stripes*Span words in
	// a single region (default 4096). Prefer deriving the universe from the
	// memory size via Regions/RegionWords.
	Stripes int
	// Span is the number of contiguous words per stripe (default 1).
	Span int
	// Regions is the number of memory-controller regions the universe
	// covers (default 1). Region r serves addresses [r<<mem.RegionShift,
	// r<<mem.RegionShift + RegionWords).
	Regions int
	// RegionWords is the per-region word capacity of the stripe universe.
	// Keys outside it panic instead of aliasing. Default: Stripes*Span
	// (the legacy single-region universe).
	RegionWords uint64
	// LeafStripes is the number of leaf stripes per super-stripe (rounded
	// up to a power of two; default 256). Adaptive state materializes in
	// units of this size.
	LeafStripes int
	// Clusters maps each DTM node index to its locality cluster (mesh
	// quadrant or socket; see noc.Platform.ClusterOf). Required for the
	// AdaptiveHier co-mapping bias and for the local/remote access
	// accounting; nil disables both.
	Clusters []int
	// EvalEvery is the adaptive epoch length: the number of recorded lock
	// accesses between repartition evaluations (default 2048).
	EvalEvery int
	// MaxMoves caps the migrations initiated per repartition round
	// (default 4).
	MaxMoves int
	// ImbalanceFactor is the max/mean node-load ratio above which a round
	// migrates stripes (default 1.25).
	ImbalanceFactor float64
}

func (c *Config) normalize() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("placement: need at least one node, got %d", c.Nodes)
	}
	if c.Stripes <= 0 {
		c.Stripes = 4096
	}
	if c.Span <= 0 {
		c.Span = 1
	}
	if c.Regions <= 0 {
		c.Regions = 1
	}
	if c.RegionWords == 0 {
		c.RegionWords = uint64(c.Stripes) * uint64(c.Span)
	}
	if c.RegionWords > 1<<mem.RegionShift {
		return fmt.Errorf("placement: RegionWords %d exceeds the %d-word region capacity", c.RegionWords, uint64(1)<<mem.RegionShift)
	}
	if c.LeafStripes <= 0 {
		c.LeafStripes = 256
	}
	// Round the leaf size up to a power of two so leaf lookup is a shift.
	ls := 1
	for ls < c.LeafStripes {
		ls <<= 1
	}
	c.LeafStripes = ls
	if c.Clusters != nil && len(c.Clusters) != c.Nodes {
		return fmt.Errorf("placement: %d node clusters for %d nodes", len(c.Clusters), c.Nodes)
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 2048
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 4
	}
	if c.ImbalanceFactor <= 1 {
		c.ImbalanceFactor = 1.25
	}
	spr := (c.RegionWords + uint64(c.Span) - 1) / uint64(c.Span)
	if total := spr * uint64(c.Regions); total > 1<<40 {
		return fmt.Errorf("placement: stripe universe %d exceeds 2^40 stripes; raise Span", total)
	}
	return nil
}

// Move is one stripe migration proposed by a policy.
type Move struct {
	Stripe, From, To int
}

// TraceOp identifies one observable directory transition for SetTracer.
type TraceOp uint8

const (
	// TraceFreeze: a stripe was frozen for migration; its owner will NACK
	// new lock requests on it until it drains.
	TraceFreeze TraceOp = iota
	// TraceHandoff: a drained stripe's ownership flipped to its target.
	TraceHandoff
)

// leaf is one materialized super-stripe: per-stripe adaptive state for
// LeafStripes consecutive leaf stripes. Everything in it is guarded by the
// directory mutex.
type leaf struct {
	owner   []int32  // stripe -> owning node
	pending []int32  // stripe -> migration target, -1 when none
	counts  []uint64 // stripe -> accesses in the current epoch window
	aff     []uint64 // stripe -> packed accessor-affinity vote (co-mapping)
	total   uint64   // sum of counts (the super-stripe heat aggregate)
	frozen  int      // stripes with a pending migration
	moved   int      // stripes whose owner differs from the default formula
}

// Directory owns the key→node mapping and drives the epoch-numbered remap
// protocol. Methods are safe for concurrent use: a mutex linearizes every
// resolution, record and migration step. On the single-threaded simulation
// backend the lock is uncontended and changes nothing; on the live backend
// it is what keeps the ownership invariants (one owner per stripe, grants
// only from the owner) intact under real goroutine concurrency.
type Directory struct {
	cfg Config
	pol Policy

	stripesPerRegion int // leaf stripes per region
	totalStripes     int // leaf-stripe universe size
	leafShift        uint
	numLeaves        int // super-stripe universe size

	mu        sync.Mutex
	epoch     uint64
	leaves    map[int]*leaf // super-stripe -> materialized leaf (adaptive only)
	leafOrder []int         // materialized super-stripes, ascending
	frozen    [][]int       // node -> frozen stripes it still owns, ascending
	freezeGen []uint64      // node -> freezes ever initiated on its stripes
	accesses  uint64
	nextEval  uint64

	// Locality accounting (Clusters set): recorded accesses whose owner
	// node shares / does not share the accessor's cluster, cumulative and
	// for the current epoch window.
	localAcc, remoteAcc uint64
	winLocal, winRemote uint64
	remoteHist          []float64 // per-epoch remote-access ratio history

	// Counters, snapshotted into core.Stats after a run.
	Epochs     uint64 // repartition rounds that initiated at least one move
	Migrations uint64 // stripe migrations initiated
	Handoffs   uint64 // stripe handoffs completed
	Splits     uint64 // super-stripes materialized into leaves
	Merges     uint64 // leaves dematerialized after cooling down

	// tracer, when set, observes every freeze and handoff. Called with mu
	// held (serialized, in transition order); it must not call back into
	// the directory or block.
	tracer func(op TraceOp, stripe, from, to int)
}

// SetTracer installs fn to observe stripe freezes and handoffs. Install
// before the system runs; the callback fires with the directory lock held,
// so it must be fast, non-blocking, and must not re-enter the directory.
func (d *Directory) SetTracer(fn func(op TraceOp, stripe, from, to int)) {
	d.mu.Lock()
	d.tracer = fn
	d.mu.Unlock()
}

// New builds a directory. The zero Kind is the paper's static hash.
func New(cfg Config) (*Directory, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	d := &Directory{cfg: cfg, pol: policyFor(cfg.Kind), nextEval: uint64(cfg.EvalEvery)}
	d.stripesPerRegion = int((cfg.RegionWords + uint64(cfg.Span) - 1) / uint64(cfg.Span))
	d.totalStripes = d.stripesPerRegion * cfg.Regions
	for 1<<d.leafShift < cfg.LeafStripes {
		d.leafShift++
	}
	d.numLeaves = (d.totalStripes + cfg.LeafStripes - 1) / cfg.LeafStripes
	if cfg.Kind == Adaptive || cfg.Kind == AdaptiveHier {
		d.leaves = make(map[int]*leaf)
		d.frozen = make([][]int, cfg.Nodes)
		d.freezeGen = make([]uint64, cfg.Nodes)
	}
	return d, nil
}

// Kind returns the directory's policy kind.
func (d *Directory) Kind() Kind { return d.cfg.Kind }

// PolicyName returns the active policy's name.
func (d *Directory) PolicyName() string { return d.pol.Name() }

// Nodes returns the number of DTM nodes.
func (d *Directory) Nodes() int { return d.cfg.Nodes }

// NumStripes returns the size of the leaf-stripe universe.
func (d *Directory) NumStripes() int { return d.totalStripes }

// LeafUniverse returns how many super-stripes the universe divides into.
func (d *Directory) LeafUniverse() int { return d.numLeaves }

// LeafSpan returns the number of leaf stripes per super-stripe.
func (d *Directory) LeafSpan() int { return d.cfg.LeafStripes }

// MaterializedLeaves returns how many super-stripes currently hold
// materialized adaptive state. The whole point of the hierarchical store is
// that this stays proportional to the touched working set, not the
// universe.
func (d *Directory) MaterializedLeaves() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.leaves)
}

// AccessLocality returns the cumulative recorded accesses whose owning DTM
// node did / did not share the accessor's cluster. Zero unless the
// directory is adaptive and Config.Clusters is set.
func (d *Directory) AccessLocality() (local, remote uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.localAcc, d.remoteAcc
}

// RemoteHistory returns the per-epoch-window remote-access ratios, oldest
// first — the convergence witness of the co-mapping tests.
func (d *Directory) RemoteHistory() []float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.remoteHist...)
}

// Epoch returns the current remap epoch. Static policies stay at 0.
func (d *Directory) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

func (d *Directory) adaptive() bool { return d.leaves != nil }

func (d *Directory) clustered() bool { return d.cfg.Clusters != nil }

// StripeOf maps a lock key to its stripe: region-major, Span words per
// stripe. It panics on a key outside the configured universe — the
// directory derives its universe from the memory size precisely so that
// far-apart keys can never silently alias.
func (d *Directory) StripeOf(key mem.Addr) int {
	r := uint64(key) >> mem.RegionShift
	off := uint64(key) & (1<<mem.RegionShift - 1)
	s := off / uint64(d.cfg.Span)
	if int(r) >= d.cfg.Regions || s >= uint64(d.stripesPerRegion) {
		panic(fmt.Sprintf(
			"placement: address %#x outside the configured stripe universe (%d regions x %d words); raise the configured memory size (core.Config.MemWords) instead of relying on aliasing",
			uint64(key), d.cfg.Regions, d.cfg.RegionWords))
	}
	return int(r)*d.stripesPerRegion + int(s)
}

// KeyInStripe reports whether key belongs to stripe s.
func (d *Directory) KeyInStripe(key mem.Addr, s int) bool { return d.StripeOf(key) == s }

// defaultOwner is the implicit owner of an unmaterialized stripe: the
// interleaved start assignment (consecutive stripes round-robin across the
// nodes, balanced under uniform access; migration refines it).
func (d *Directory) defaultOwner(s int) int32 { return int32(s % d.cfg.Nodes) }

// leafAt returns the materialized leaf covering stripe s, or nil. Called
// with mu held.
func (d *Directory) leafAt(s int) (*leaf, int) {
	lf := d.leaves[s>>d.leafShift]
	if lf == nil {
		return nil, 0
	}
	return lf, s & (d.cfg.LeafStripes - 1)
}

// materialize splits the super-stripe covering s into a leaf (no-op when
// already materialized) and returns it with s's index inside it. Called
// with mu held.
func (d *Directory) materialize(s int) (*leaf, int) {
	id := s >> d.leafShift
	lf := d.leaves[id]
	if lf == nil {
		base := id << d.leafShift
		size := d.cfg.LeafStripes
		if base+size > d.totalStripes {
			size = d.totalStripes - base
		}
		lf = &leaf{
			owner:   make([]int32, size),
			pending: make([]int32, size),
			counts:  make([]uint64, size),
		}
		if d.clustered() {
			lf.aff = make([]uint64, size)
		}
		for i := range lf.owner {
			lf.owner[i] = d.defaultOwner(base + i)
			lf.pending[i] = -1
		}
		d.leaves[id] = lf
		at := sort.SearchInts(d.leafOrder, id)
		d.leafOrder = append(d.leafOrder, 0)
		copy(d.leafOrder[at+1:], d.leafOrder[at:])
		d.leafOrder[at] = id
		d.Splits++
	}
	return lf, s & (d.cfg.LeafStripes - 1)
}

// ownerAt returns stripe s's owner without materializing. Called with mu
// held.
func (d *Directory) ownerAt(s int) int32 {
	if lf, i := d.leafAt(s); lf != nil {
		return lf.owner[i]
	}
	return d.defaultOwner(s)
}

// pendingAt returns stripe s's migration target (-1 when none) without
// materializing. Called with mu held.
func (d *Directory) pendingAt(s int) int32 {
	if lf, i := d.leafAt(s); lf != nil {
		return lf.pending[i]
	}
	return -1
}

// Owner resolves a lock key to its owning DTM node under the current
// assignment. Resolution is pure lookup; use Record to account accesses.
func (d *Directory) Owner(key mem.Addr) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pol.Owner(d, key)
}

// StripeOwner returns the current owner of stripe s (adaptive directories;
// static policies resolve per key, not per stripe).
func (d *Directory) StripeOwner(s int) int {
	if !d.adaptive() {
		return -1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.ownerAt(s))
}

// PendingTarget returns the migration target of stripe s, if it is frozen.
func (d *Directory) PendingTarget(s int) (int, bool) {
	if !d.adaptive() {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if t := d.pendingAt(s); t >= 0 {
		return int(t), true
	}
	return 0, false
}

// Record accounts intended lock acquisitions on each key by an accessor in
// cluster src (see noc.Platform.ClusterOf; pass -1 when unknown) and, at
// epoch boundaries, lets the policy initiate a repartition round. Static
// policies ignore it. Recording materializes the touched super-stripes:
// counters, affinity votes and freeze state live only in those leaves, so
// everything downstream — epoch decay, repartition scans, handoff walks —
// costs O(touched), never O(universe).
func (d *Directory) Record(src int, keys ...mem.Addr) {
	if !d.adaptive() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, k := range keys {
		s := d.StripeOf(k)
		lf, i := d.materialize(s)
		lf.counts[i]++
		lf.total++
		if d.clustered() && src >= 0 {
			if d.cfg.Clusters[lf.owner[i]] == src {
				d.localAcc++
				d.winLocal++
			} else {
				d.remoteAcc++
				d.winRemote++
			}
			lf.aff[i] = affVote(lf.aff[i], src)
		}
	}
	d.accesses += uint64(len(keys))
	if d.accesses >= d.nextEval {
		d.nextEval = d.accesses + uint64(d.cfg.EvalEvery)
		d.evaluate()
	}
}

// evaluate closes an epoch window: the policy proposes migrations, the
// directory freezes the chosen stripes, and the access counts decay so old
// heat fades across windows. The decay walks materialized leaves only —
// unmaterialized stripes hold zero counts by construction, so skipping
// them is exact, and a leaf that has fully cooled (no heat, no frozen
// stripe, all owners back at the default) merges away. Called with mu held.
func (d *Directory) evaluate() {
	moved := false
	for _, m := range d.pol.Repartition(d) {
		if d.initiateMove(m.Stripe, m.To) {
			moved = true
		}
	}
	if moved {
		d.Epochs++
	}
	var cold []int
	for _, id := range d.leafOrder {
		lf := d.leaves[id]
		if lf.total != 0 {
			var tot uint64
			for i := range lf.counts {
				lf.counts[i] >>= 1
				tot += lf.counts[i]
			}
			lf.total = tot
		}
		if lf.aff != nil {
			for i, a := range lf.aff {
				if a != 0 {
					lf.aff[i] = affDecay(a)
				}
			}
		}
		if lf.total == 0 && lf.frozen == 0 && lf.moved == 0 {
			cold = append(cold, id)
		}
	}
	for _, id := range cold {
		delete(d.leaves, id)
		at := sort.SearchInts(d.leafOrder, id)
		d.leafOrder = append(d.leafOrder[:at], d.leafOrder[at+1:]...)
		d.Merges++
	}
	if w := d.winLocal + d.winRemote; w > 0 {
		if len(d.remoteHist) < 4096 {
			d.remoteHist = append(d.remoteHist, float64(d.winRemote)/float64(w))
		}
		d.winLocal, d.winRemote = 0, 0
	}
}

// InitiateMove freezes stripe s for migration to node to: the current owner
// keeps serving releases on s but NACKs new lock requests until the stripe
// drains and the handoff completes. It reports whether the move was
// initiated (false when s is already frozen, already owned by to, the
// directory is not adaptive, or an argument is out of range).
func (d *Directory) InitiateMove(s, to int) bool {
	if !d.adaptive() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.initiateMove(s, to)
}

// initiateMove is InitiateMove with mu held.
func (d *Directory) initiateMove(s, to int) bool {
	if s < 0 || s >= d.totalStripes || to < 0 || to >= d.cfg.Nodes {
		return false
	}
	lf, i := d.materialize(s)
	if lf.pending[i] >= 0 || int(lf.owner[i]) == to {
		return false
	}
	lf.pending[i] = int32(to)
	lf.frozen++
	owner := int(lf.owner[i])
	list := d.frozen[owner]
	at := sort.SearchInts(list, s)
	list = append(list, 0)
	copy(list[at+1:], list[at:])
	list[at] = s
	d.frozen[owner] = list
	d.freezeGen[owner]++
	d.epoch++
	d.Migrations++
	if d.tracer != nil {
		d.tracer(TraceFreeze, s, owner, to)
	}
	return true
}

// CompleteHandoff transfers frozen stripe s to its pending target and bumps
// the epoch. The caller — the owning DTM node — must have verified that its
// lock table holds no live lock on the stripe.
func (d *Directory) CompleteHandoff(s int) {
	if !d.adaptive() {
		panic(fmt.Sprintf("placement: CompleteHandoff(%d) without a pending migration", s))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	lf, i := d.leafAt(s)
	if lf == nil || lf.pending[i] < 0 {
		panic(fmt.Sprintf("placement: CompleteHandoff(%d) without a pending migration", s))
	}
	owner := int(lf.owner[i])
	list := d.frozen[owner]
	at := sort.SearchInts(list, s)
	d.frozen[owner] = append(list[:at], list[at+1:]...)
	def := d.defaultOwner(s)
	wasDefault := lf.owner[i] == def
	lf.owner[i] = lf.pending[i]
	lf.pending[i] = -1
	lf.frozen--
	if isDefault := lf.owner[i] == def; wasDefault != isDefault {
		if isDefault {
			lf.moved--
		} else {
			lf.moved++
		}
	}
	d.epoch++
	d.Handoffs++
	if d.tracer != nil {
		d.tracer(TraceHandoff, s, owner, int(lf.owner[i]))
	}
}

// HasPending reports whether node still has frozen stripes to hand off.
func (d *Directory) HasPending(node int) bool {
	if !d.adaptive() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.frozen[node]) > 0
}

// FreezeGen returns how many freezes have ever been initiated on stripes
// node owned — a monotonic cursor DTM nodes use to gate their drained-stripe
// scans: a frozen stripe can only become drainable when the owner's lock
// table shrinks or a new freeze appears, so an unchanged generation plus an
// unchanged table means the scan can be skipped (see core's dtmNode).
func (d *Directory) FreezeGen(node int) uint64 {
	if !d.adaptive() {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.freezeGen[node]
}

// PendingFor returns the frozen stripes node still owns, in ascending
// stripe order (deterministic handoff order). The returned slice is a
// copy: callers complete handoffs while iterating it.
func (d *Directory) PendingFor(node int) []int {
	if !d.adaptive() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.frozen[node]) == 0 {
		return nil
	}
	return append([]int(nil), d.frozen[node]...)
}

// ValidFor reports whether a lock request for keys sent to node is
// serviceable by that node: every key must currently map to node and none
// of their stripes may be frozen for migration. The check is authoritative
// per key — a request whose resolution happens to still be correct is
// accepted even if it was resolved epochs ago, and a mis-addressed request
// is rejected regardless of its stamp. (The wire epoch's job is the
// receiver's fast path: a current-epoch request from a protocol-obeying
// sender needs no per-key scan; see dtmNode.placeOK.) Static policies
// never invalidate a resolution.
func (d *Directory) ValidFor(node int, keys ...mem.Addr) bool {
	if !d.adaptive() {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, k := range keys {
		s := d.StripeOf(k)
		if lf, i := d.leafAt(s); lf != nil {
			if int(lf.owner[i]) != node || lf.pending[i] >= 0 {
				return false
			}
		} else if int(d.defaultOwner(s)) != node {
			return false
		}
	}
	return true
}

// CheckInvariants validates the directory's structural invariants; tests
// call it after random migration schedules. The invariants are: every
// stripe has exactly one owner in range, frozen-stripe bookkeeping matches
// the pending table, a pending target never equals the current owner, and
// every leaf's aggregate counters (total heat, frozen count, moved count)
// agree with its per-stripe state — in particular no frozen stripe can live
// outside a materialized leaf, so a leaf is never merged away while a
// migration is in flight on it.
func (d *Directory) CheckInvariants() error {
	if !d.adaptive() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.leafOrder) != len(d.leaves) {
		return fmt.Errorf("%d leaves ordered, %d materialized", len(d.leafOrder), len(d.leaves))
	}
	wantFrozen := make([][]int, d.cfg.Nodes)
	for oi, id := range d.leafOrder {
		if oi > 0 && d.leafOrder[oi-1] >= id {
			return fmt.Errorf("leaf order not ascending at %d", oi)
		}
		lf := d.leaves[id]
		if lf == nil {
			return fmt.Errorf("ordered leaf %d not materialized", id)
		}
		base := id << d.leafShift
		var tot uint64
		frozen, moved := 0, 0
		for i := range lf.owner {
			s := base + i
			o := lf.owner[i]
			if o < 0 || int(o) >= d.cfg.Nodes {
				return fmt.Errorf("stripe %d owned by out-of-range node %d", s, o)
			}
			if o != d.defaultOwner(s) {
				moved++
			}
			tot += lf.counts[i]
			if t := lf.pending[i]; t >= 0 {
				if int(t) >= d.cfg.Nodes {
					return fmt.Errorf("stripe %d pending to out-of-range node %d", s, t)
				}
				if t == o {
					return fmt.Errorf("stripe %d pending to its own owner %d", s, o)
				}
				frozen++
				wantFrozen[o] = append(wantFrozen[o], s)
			}
		}
		if tot != lf.total || frozen != lf.frozen || moved != lf.moved {
			return fmt.Errorf("leaf %d aggregates (total %d, frozen %d, moved %d) disagree with per-stripe state (%d, %d, %d)",
				id, lf.total, lf.frozen, lf.moved, tot, frozen, moved)
		}
	}
	for n, want := range wantFrozen {
		got := d.frozen[n]
		if len(got) != len(want) {
			return fmt.Errorf("node %d frozen list has %d stripes, table says %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] { // both ascending
				return fmt.Errorf("node %d frozen list %v, table says %v", n, got, want)
			}
		}
	}
	return nil
}

// affVote folds one accessor-cluster observation into a packed
// Boyer-Moore-style majority vote: the candidate cluster (plus one, so 0
// means empty) in the high 32 bits, its lead count in the low 32. Matching
// observations strengthen the candidate, conflicting ones weaken it until a
// new candidate takes over — O(1) space per stripe regardless of how many
// clusters exist, and exact whenever one cluster truly dominates the epoch
// window.
func affVote(a uint64, src int) uint64 {
	cand, cnt := uint32(a>>32), uint32(a)
	switch {
	case cnt == 0:
		return uint64(src+1)<<32 | 1
	case cand == uint32(src+1):
		if cnt < 1<<32-1 {
			cnt++
		}
		return uint64(cand)<<32 | uint64(cnt)
	default:
		return uint64(cand)<<32 | uint64(cnt-1)
	}
}

// affDecay halves a vote's lead at an epoch boundary, mirroring the count
// decay: stale affinity fades at the same rate as stale heat.
func affDecay(a uint64) uint64 {
	cnt := uint32(a) >> 1
	if cnt == 0 {
		return 0
	}
	return a&0xffffffff00000000 | uint64(cnt)
}

// affCluster unpacks a vote's dominant cluster, -1 when none.
func affCluster(a uint64) int {
	if uint32(a) == 0 {
		return -1
	}
	return int(uint32(a>>32)) - 1
}

// Package placement implements TM2C-Go's object→DTM-node directory: the
// pluggable subsystem deciding which DTM service node owns the lock for a
// given shared-memory key.
//
// TM2C (§3.2) fixes this mapping to a static multiplicative hash, which
// balances load only under uniform access. This package makes placement a
// first-class subsystem behind a Policy interface with three strategies:
//
//   - Hash: the paper's static multiplicative hash (the default);
//   - Range: contiguous striping, so neighbouring addresses share a DTM
//     node (spatial locality for scans and block-structured data);
//   - Adaptive: a per-stripe ownership table that tracks access counts per
//     epoch and migrates hot stripes from overloaded to underloaded nodes.
//
// Adaptive migration is a consistency-critical distributed protocol. The
// directory never moves ownership of a stripe while locks on it are live:
//
//  1. A repartition round freezes the chosen stripes (the pending target is
//     recorded and the epoch bumps); the current owner keeps serving
//     releases on a frozen stripe but NACKs new lock requests.
//  2. The owner hands a stripe off only once its lock table holds no live
//     lock on it (re-checked on every release and on every retried
//     request), at which point ownership flips and the epoch bumps again.
//     A drained stripe has no lock state, so nothing is copied.
//  3. Lock requests carry the epoch at which the sender resolved the key;
//     a request arriving at a node that no longer (or not yet) owns the
//     key, or whose stripe is frozen, is NACKed back to the requester for
//     re-resolution.
//
// Ownership is therefore never lost or duplicated: at every epoch each key
// has exactly one owner, and only that owner can grant its locks. The
// directory is plain bookkeeping driven by the simulator's event loop, so
// it stays deterministic like everything else in the system.
package placement

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/mem"
)

// Kind selects a placement policy.
type Kind uint8

const (
	// Hash is the paper's static multiplicative hash of the lock key.
	Hash Kind = iota
	// Range stripes the address space contiguously across the nodes.
	Range
	// Adaptive starts from an interleaved stripe assignment and migrates
	// hot stripes between nodes at epoch boundaries.
	Adaptive
)

func (k Kind) String() string {
	switch k {
	case Range:
		return "range"
	case Adaptive:
		return "adaptive"
	default:
		return "hash"
	}
}

// Parse parses a placement policy name (hash|range|adaptive).
func Parse(s string) (Kind, error) {
	switch s {
	case "", "hash":
		return Hash, nil
	case "range":
		return Range, nil
	case "adaptive":
		return Adaptive, nil
	}
	return Hash, fmt.Errorf("placement: unknown policy %q", s)
}

// Kinds lists every policy in presentation order.
func Kinds() []Kind { return []Kind{Hash, Range, Adaptive} }

// Config describes one directory.
type Config struct {
	// Nodes is the number of DTM nodes (required, > 0).
	Nodes int
	// Kind selects the policy (default Hash).
	Kind Kind
	// Stripes is the size of the stripe universe for stripe-based policies
	// (default 4096). Addresses wrap modulo Span*Stripes, so two keys that
	// far apart may alias to the same stripe; aliasing only coarsens
	// migration, never correctness.
	Stripes int
	// Span is the number of contiguous words per stripe (default 1).
	Span int
	// EvalEvery is the adaptive epoch length: the number of recorded lock
	// accesses between repartition evaluations (default 2048).
	EvalEvery int
	// MaxMoves caps the migrations initiated per repartition round
	// (default 4).
	MaxMoves int
	// ImbalanceFactor is the max/mean node-load ratio above which a round
	// migrates stripes (default 1.25).
	ImbalanceFactor float64
}

func (c *Config) normalize() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("placement: need at least one node, got %d", c.Nodes)
	}
	if c.Stripes <= 0 {
		c.Stripes = 4096
	}
	if c.Span <= 0 {
		c.Span = 1
	}
	if c.EvalEvery <= 0 {
		c.EvalEvery = 2048
	}
	if c.MaxMoves <= 0 {
		c.MaxMoves = 4
	}
	if c.ImbalanceFactor <= 1 {
		c.ImbalanceFactor = 1.25
	}
	return nil
}

// Move is one stripe migration proposed by a policy.
type Move struct {
	Stripe, From, To int
}

// TraceOp identifies one observable directory transition for SetTracer.
type TraceOp uint8

const (
	// TraceFreeze: a stripe was frozen for migration; its owner will NACK
	// new lock requests on it until it drains.
	TraceFreeze TraceOp = iota
	// TraceHandoff: a drained stripe's ownership flipped to its target.
	TraceHandoff
)

// Directory owns the key→node mapping and drives the epoch-numbered remap
// protocol. Methods are safe for concurrent use: a mutex linearizes every
// resolution, record and migration step. On the single-threaded simulation
// backend the lock is uncontended and changes nothing; on the live backend
// it is what keeps the ownership invariants (one owner per stripe, grants
// only from the owner) intact under real goroutine concurrency.
type Directory struct {
	cfg Config
	pol Policy

	mu        sync.Mutex
	epoch     uint64
	owner     []int32  // stripe -> owning node (adaptive only)
	pending   []int32  // stripe -> migration target, -1 when none
	frozen    [][]int  // node -> frozen stripes it still owns, ascending
	freezeGen []uint64 // node -> freezes ever initiated on its stripes
	counts    []uint64 // stripe -> accesses in the current epoch window
	accesses  uint64
	nextEval  uint64

	// Counters, snapshotted into core.Stats after a run.
	Epochs     uint64 // repartition rounds that initiated at least one move
	Migrations uint64 // stripe migrations initiated
	Handoffs   uint64 // stripe handoffs completed

	// tracer, when set, observes every freeze and handoff. Called with mu
	// held (serialized, in transition order); it must not call back into
	// the directory or block.
	tracer func(op TraceOp, stripe, from, to int)
}

// SetTracer installs fn to observe stripe freezes and handoffs. Install
// before the system runs; the callback fires with the directory lock held,
// so it must be fast, non-blocking, and must not re-enter the directory.
func (d *Directory) SetTracer(fn func(op TraceOp, stripe, from, to int)) {
	d.mu.Lock()
	d.tracer = fn
	d.mu.Unlock()
}

// New builds a directory. The zero Kind is the paper's static hash.
func New(cfg Config) (*Directory, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	d := &Directory{cfg: cfg, pol: policyFor(cfg.Kind), nextEval: uint64(cfg.EvalEvery)}
	if cfg.Kind == Adaptive {
		d.owner = make([]int32, cfg.Stripes)
		d.pending = make([]int32, cfg.Stripes)
		d.counts = make([]uint64, cfg.Stripes)
		d.frozen = make([][]int, cfg.Nodes)
		d.freezeGen = make([]uint64, cfg.Nodes)
		for s := range d.owner {
			// Interleaved start: consecutive stripes round-robin across the
			// nodes, balanced under uniform access; migration refines it.
			d.owner[s] = int32(s % cfg.Nodes)
			d.pending[s] = -1
		}
	}
	return d, nil
}

// Kind returns the directory's policy kind.
func (d *Directory) Kind() Kind { return d.cfg.Kind }

// PolicyName returns the active policy's name.
func (d *Directory) PolicyName() string { return d.pol.Name() }

// Nodes returns the number of DTM nodes.
func (d *Directory) Nodes() int { return d.cfg.Nodes }

// NumStripes returns the size of the stripe universe.
func (d *Directory) NumStripes() int { return d.cfg.Stripes }

// Epoch returns the current remap epoch. Static policies stay at 0.
func (d *Directory) Epoch() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.epoch
}

func (d *Directory) adaptive() bool { return d.owner != nil }

// StripeOf maps a lock key to its stripe.
func (d *Directory) StripeOf(key mem.Addr) int {
	return int((uint64(key) / uint64(d.cfg.Span)) % uint64(d.cfg.Stripes))
}

// KeyInStripe reports whether key belongs to stripe s.
func (d *Directory) KeyInStripe(key mem.Addr, s int) bool { return d.StripeOf(key) == s }

// Owner resolves a lock key to its owning DTM node under the current
// assignment. Resolution is pure lookup; use Record to account accesses.
func (d *Directory) Owner(key mem.Addr) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pol.Owner(d, key)
}

// StripeOwner returns the current owner of stripe s (adaptive directories;
// static policies resolve per key, not per stripe).
func (d *Directory) StripeOwner(s int) int {
	if !d.adaptive() {
		return -1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.owner[s])
}

// PendingTarget returns the migration target of stripe s, if it is frozen.
func (d *Directory) PendingTarget(s int) (int, bool) {
	if !d.adaptive() {
		return 0, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pending[s] < 0 {
		return 0, false
	}
	return int(d.pending[s]), true
}

// Record accounts intended lock acquisitions on each key and, at epoch
// boundaries, lets the policy initiate a repartition round. Static policies
// ignore it.
func (d *Directory) Record(keys ...mem.Addr) {
	if !d.adaptive() {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, k := range keys {
		d.counts[d.StripeOf(k)]++
	}
	d.accesses += uint64(len(keys))
	if d.accesses >= d.nextEval {
		d.nextEval = d.accesses + uint64(d.cfg.EvalEvery)
		d.evaluate()
	}
}

// evaluate closes an epoch window: the policy proposes migrations, the
// directory freezes the chosen stripes, and the access counts decay so old
// heat fades across windows. Called with mu held.
func (d *Directory) evaluate() {
	moved := false
	for _, m := range d.pol.Repartition(d) {
		if d.initiateMove(m.Stripe, m.To) {
			moved = true
		}
	}
	if moved {
		d.Epochs++
	}
	for i := range d.counts {
		d.counts[i] >>= 1
	}
}

// InitiateMove freezes stripe s for migration to node to: the current owner
// keeps serving releases on s but NACKs new lock requests until the stripe
// drains and the handoff completes. It reports whether the move was
// initiated (false when s is already frozen, already owned by to, the
// directory is not adaptive, or an argument is out of range).
func (d *Directory) InitiateMove(s, to int) bool {
	if !d.adaptive() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.initiateMove(s, to)
}

// initiateMove is InitiateMove with mu held.
func (d *Directory) initiateMove(s, to int) bool {
	if s < 0 || s >= d.cfg.Stripes || to < 0 || to >= d.cfg.Nodes {
		return false
	}
	if d.pending[s] >= 0 || int(d.owner[s]) == to {
		return false
	}
	d.pending[s] = int32(to)
	owner := int(d.owner[s])
	list := d.frozen[owner]
	at := sort.SearchInts(list, s)
	list = append(list, 0)
	copy(list[at+1:], list[at:])
	list[at] = s
	d.frozen[owner] = list
	d.freezeGen[owner]++
	d.epoch++
	d.Migrations++
	if d.tracer != nil {
		d.tracer(TraceFreeze, s, owner, to)
	}
	return true
}

// CompleteHandoff transfers frozen stripe s to its pending target and bumps
// the epoch. The caller — the owning DTM node — must have verified that its
// lock table holds no live lock on the stripe.
func (d *Directory) CompleteHandoff(s int) {
	if !d.adaptive() {
		panic(fmt.Sprintf("placement: CompleteHandoff(%d) without a pending migration", s))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pending[s] < 0 {
		panic(fmt.Sprintf("placement: CompleteHandoff(%d) without a pending migration", s))
	}
	owner := int(d.owner[s])
	list := d.frozen[owner]
	at := sort.SearchInts(list, s)
	d.frozen[owner] = append(list[:at], list[at+1:]...)
	d.owner[s] = d.pending[s]
	d.pending[s] = -1
	d.epoch++
	d.Handoffs++
	if d.tracer != nil {
		d.tracer(TraceHandoff, s, owner, int(d.owner[s]))
	}
}

// HasPending reports whether node still has frozen stripes to hand off.
func (d *Directory) HasPending(node int) bool {
	if !d.adaptive() {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.frozen[node]) > 0
}

// FreezeGen returns how many freezes have ever been initiated on stripes
// node owned — a monotonic cursor DTM nodes use to gate their drained-stripe
// scans: a frozen stripe can only become drainable when the owner's lock
// table shrinks or a new freeze appears, so an unchanged generation plus an
// unchanged table means the scan can be skipped (see core's dtmNode).
func (d *Directory) FreezeGen(node int) uint64 {
	if !d.adaptive() {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.freezeGen[node]
}

// PendingFor returns the frozen stripes node still owns, in ascending
// stripe order (deterministic handoff order). The returned slice is a
// copy: callers complete handoffs while iterating it.
func (d *Directory) PendingFor(node int) []int {
	if !d.adaptive() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.frozen[node]) == 0 {
		return nil
	}
	return append([]int(nil), d.frozen[node]...)
}

// ValidFor reports whether a lock request for keys sent to node is
// serviceable by that node: every key must currently map to node and none
// of their stripes may be frozen for migration. The check is authoritative
// per key — a request whose resolution happens to still be correct is
// accepted even if it was resolved epochs ago, and a mis-addressed request
// is rejected regardless of its stamp. (The wire epoch's job is the
// receiver's fast path: a current-epoch request from a protocol-obeying
// sender needs no per-key scan; see dtmNode.placeOK.) Static policies
// never invalidate a resolution.
func (d *Directory) ValidFor(node int, keys ...mem.Addr) bool {
	if !d.adaptive() {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, k := range keys {
		s := d.StripeOf(k)
		if int(d.owner[s]) != node || d.pending[s] >= 0 {
			return false
		}
	}
	return true
}

// CheckInvariants validates the directory's structural invariants; tests
// call it after random migration schedules. The invariants are: every
// stripe has exactly one owner in range, frozen-stripe bookkeeping matches
// the pending table, and a pending target never equals the current owner.
func (d *Directory) CheckInvariants() error {
	if !d.adaptive() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	wantFrozen := make([][]int, d.cfg.Nodes)
	for s, o := range d.owner {
		if o < 0 || int(o) >= d.cfg.Nodes {
			return fmt.Errorf("stripe %d owned by out-of-range node %d", s, o)
		}
		if t := d.pending[s]; t >= 0 {
			if int(t) >= d.cfg.Nodes {
				return fmt.Errorf("stripe %d pending to out-of-range node %d", s, t)
			}
			if t == o {
				return fmt.Errorf("stripe %d pending to its own owner %d", s, o)
			}
			wantFrozen[o] = append(wantFrozen[o], s)
		}
	}
	for n, want := range wantFrozen {
		got := d.frozen[n]
		if len(got) != len(want) {
			return fmt.Errorf("node %d frozen list has %d stripes, table says %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] { // both ascending
				return fmt.Errorf("node %d frozen list %v, table says %v", n, got, want)
			}
		}
	}
	return nil
}

package placement

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

func TestParseAndString(t *testing.T) {
	for _, k := range Kinds() {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	if k, err := Parse(""); err != nil || k != Hash {
		t.Errorf("Parse(\"\") = %v, %v, want Hash", k, err)
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse(\"nope\") succeeded")
	}
}

func TestNewRejectsZeroNodes(t *testing.T) {
	if _, err := New(Config{Nodes: 0}); err == nil {
		t.Fatal("New with 0 nodes succeeded")
	}
}

// TestHashMatchesLegacyNodeFor pins the hash policy to the seed's
// multiplicative hash so switching resolution behind the directory cannot
// silently change the paper's default placement.
func TestHashMatchesLegacyNodeFor(t *testing.T) {
	d, err := New(Config{Nodes: 24})
	if err != nil {
		t.Fatal(err)
	}
	legacy := func(key mem.Addr) int {
		x := uint64(key)
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		return int(x % 24)
	}
	for key := mem.Addr(0); key < 4096; key++ {
		if got, want := d.Owner(key), legacy(key); got != want {
			t.Fatalf("Owner(%#x) = %d, legacy hash says %d", uint64(key), got, want)
		}
	}
	if d.Epoch() != 0 {
		t.Errorf("static hash directory at epoch %d, want 0", d.Epoch())
	}
}

// TestRangeIsContiguous checks that the range policy maps contiguous
// address blocks to the same node and covers every node.
func TestRangeIsContiguous(t *testing.T) {
	const nodes, stripes, span = 4, 64, 8
	d, err := New(Config{Nodes: nodes, Kind: Range, Stripes: stripes, Span: span})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	switches := 0
	prev := d.Owner(0)
	seen[prev] = true
	for key := mem.Addr(1); key < stripes*span; key++ {
		o := d.Owner(key)
		if o != prev {
			switches++
			prev = o
		}
		seen[o] = true
	}
	if switches != nodes-1 {
		t.Errorf("range placement switched owner %d times over one wrap, want %d", switches, nodes-1)
	}
	if len(seen) != nodes {
		t.Errorf("range placement used %d nodes, want %d", len(seen), nodes)
	}
}

// TestDirectoryOwnershipProperty drives adaptive directories through
// arbitrary schedules of skewed accesses, policy-initiated and forced
// migrations, and handoff completions in random order, asserting after
// every step that (a) the structural invariants hold, (b) exactly one node
// considers itself a valid owner of any unfrozen key and none does for a
// frozen key, and (c) ownership only changes when the epoch changes — i.e.
// every key has exactly one owner per epoch, with no loss or duplication.
func TestDirectoryOwnershipProperty(t *testing.T) {
	r := sim.NewRand(42)
	for trial := 0; trial < 25; trial++ {
		nodes := 2 + r.Intn(6)
		stripes := 16 << r.Intn(3)
		span := 1 + r.Intn(4)
		d, err := New(Config{
			Nodes: nodes, Kind: Adaptive, Stripes: stripes, Span: span,
			EvalEvery: 16 + r.Intn(64), MaxMoves: 1 + r.Intn(4),
			LeafStripes: 8 << r.Intn(3), // several leaves even at 16 stripes
		})
		if err != nil {
			t.Fatal(err)
		}
		// Keys stay inside the configured universe (stripes*span words):
		// out-of-universe addresses now panic instead of aliasing.
		keys := make([]mem.Addr, 64)
		for i := range keys {
			keys[i] = mem.Addr(r.Intn(stripes * span))
		}
		lastEpoch := d.Epoch()
		owners := make([]int, len(keys))
		for i, k := range keys {
			owners[i] = d.Owner(k)
		}
		for step := 0; step < 3000; step++ {
			switch r.Intn(10) {
			case 0: // forced migration of a random stripe
				d.InitiateMove(r.Intn(stripes), r.Intn(nodes))
			case 1, 2: // complete a random node's pending handoffs
				for _, s := range d.PendingFor(r.Intn(nodes)) {
					if r.Intn(2) == 0 {
						d.CompleteHandoff(s)
					}
				}
			default: // skewed accesses (low keys hot), may trigger a round
				d.Record(-1, keys[r.Intn(1+r.Intn(len(keys)))])
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
			for i, k := range keys {
				o := d.Owner(k)
				if d.Epoch() == lastEpoch && o != owners[i] {
					t.Fatalf("trial %d step %d: key %#x changed owner %d->%d within epoch %d",
						trial, step, uint64(k), owners[i], o, lastEpoch)
				}
				owners[i] = o
			}
			if d.Epoch() < lastEpoch {
				t.Fatalf("trial %d step %d: epoch went backwards", trial, step)
			}
			lastEpoch = d.Epoch()
			// Exactly one valid owner per unfrozen key, none per frozen key.
			k := keys[r.Intn(len(keys))]
			valid := 0
			for n := 0; n < nodes; n++ {
				if d.ValidFor(n, k) {
					valid++
				}
			}
			if _, frozen := d.PendingTarget(d.StripeOf(k)); frozen {
				if valid != 0 {
					t.Fatalf("trial %d step %d: frozen key %#x has %d valid owners, want 0",
						trial, step, uint64(k), valid)
				}
			} else if valid != 1 {
				t.Fatalf("trial %d step %d: key %#x has %d valid owners, want 1",
					trial, step, uint64(k), valid)
			}
		}
		// Drain every pending handoff; the stripe universe must remain a
		// disjoint partition over the nodes.
		for n := 0; n < nodes; n++ {
			for _, s := range d.PendingFor(n) {
				d.CompleteHandoff(s)
			}
			if d.HasPending(n) {
				t.Fatalf("trial %d: node %d still pending after drain", trial, n)
			}
		}
		total := 0
		perNode := make([]int, nodes)
		for s := 0; s < stripes; s++ {
			perNode[d.StripeOwner(s)]++
			total++
		}
		if total != stripes {
			t.Fatalf("trial %d: %d stripes accounted, want %d", trial, total, stripes)
		}
	}
}

// TestAdaptiveRepartitionMovesHeat checks that a skewed access stream makes
// the policy migrate hot stripes off the overloaded node.
func TestAdaptiveRepartitionMovesHeat(t *testing.T) {
	const nodes = 4
	d, err := New(Config{Nodes: nodes, Kind: Adaptive, Stripes: 64, Span: 1, EvalEvery: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer keys that all land on node 0 under the interleaved start
	// (stripes 0, 4, 8, 12 with 4 nodes and span 1).
	hot := []mem.Addr{0, 4, 8, 12}
	for i := 0; i < 2048; i++ {
		d.Record(-1, hot[i%len(hot)])
	}
	if d.Migrations == 0 {
		t.Fatal("no migrations initiated under a fully skewed stream")
	}
	// Complete the handoffs (no lock table here, so every stripe is
	// trivially drained) and verify heat actually spread out.
	for n := 0; n < nodes; n++ {
		for _, s := range d.PendingFor(n) {
			d.CompleteHandoff(s)
		}
	}
	owners := make(map[int]bool)
	for _, k := range hot {
		owners[d.Owner(k)] = true
	}
	if len(owners) < 2 {
		t.Errorf("hot stripes still all owned by one node after repartitioning")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

package placement

import "repro/internal/mem"

// Policy is one pluggable mapping strategy behind a Directory. Implementations
// must be deterministic pure functions of the directory state: the same
// directory always resolves the same key to the same node, and Repartition
// proposes the same moves for the same counts.
type Policy interface {
	// Name is the policy's flag-friendly name.
	Name() string
	// Owner resolves a lock key under the directory's current assignment.
	Owner(d *Directory, key mem.Addr) int
	// Repartition inspects the closing epoch's per-stripe access counts and
	// returns the migrations to initiate. Static policies return nil.
	Repartition(d *Directory) []Move
}

func policyFor(k Kind) Policy {
	switch k {
	case Range:
		return rangePolicy{}
	case Adaptive:
		return adaptivePolicy{}
	case AdaptiveHier:
		return hierPolicy{}
	default:
		return hashPolicy{}
	}
}

// hashPolicy is §3.2's static placement: a multiplicative (Murmur3
// finalizer) hash of the lock key, bit-identical to the pre-directory
// System.nodeFor.
type hashPolicy struct{}

func (hashPolicy) Name() string { return "hash" }

func (hashPolicy) Owner(d *Directory, key mem.Addr) int {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(d.cfg.Nodes))
}

func (hashPolicy) Repartition(*Directory) []Move { return nil }

// rangePolicy stripes the address space contiguously: each node owns one
// contiguous block of stripes, so neighbouring addresses resolve to the
// same node (spatial locality across the whole configured universe).
type rangePolicy struct{}

func (rangePolicy) Name() string { return "range" }

func (rangePolicy) Owner(d *Directory, key mem.Addr) int {
	s := d.StripeOf(key)
	return int(uint64(s) * uint64(d.cfg.Nodes) / uint64(d.totalStripes))
}

func (rangePolicy) Repartition(*Directory) []Move { return nil }

// nodeLoads sums the closing epoch's access counts per owning node over the
// materialized leaves. Unmaterialized stripes were never recorded this
// window, so their contribution is exactly zero — walking leaves only is
// bit-identical to the historic flat scan. Called with d.mu held.
func nodeLoads(d *Directory) (load []uint64, total uint64) {
	load = make([]uint64, d.cfg.Nodes)
	for _, id := range d.leafOrder {
		lf := d.leaves[id]
		if lf.total == 0 {
			continue
		}
		for i, c := range lf.counts {
			if c != 0 {
				load[lf.owner[i]] += c
				total += c
			}
		}
	}
	return load, total
}

// hottestFit scans the materialized stripes in ascending order for the
// hottest stripe owned by donor that is not frozen, not already planned,
// and no hotter than maxHeat; ties break to the lowest stripe index. A
// whole leaf is skipped when its aggregate heat cannot beat the incumbent.
// Returns the stripe, its count and its packed affinity vote, or stripe -1.
// Called with d.mu held.
func hottestFit(d *Directory, donor int, maxHeat float64, planned map[int]bool) (stripe int, count, aff uint64) {
	stripe = -1
	for _, id := range d.leafOrder {
		lf := d.leaves[id]
		if lf.total <= count {
			continue // no stripe inside can beat the incumbent
		}
		base := id << d.leafShift
		for i, c := range lf.counts {
			if c <= count || float64(c) > maxHeat || int(lf.owner[i]) != donor || lf.pending[i] >= 0 || planned[base+i] {
				continue
			}
			stripe, count = base+i, c
			if lf.aff != nil {
				aff = lf.aff[i]
			}
		}
	}
	return stripe, count, aff
}

// adaptivePolicy resolves through the directory's stripe-ownership table
// and rebalances it at epoch boundaries: while the hottest node carries
// more than ImbalanceFactor times the mean load, its hottest migratable
// stripe moves to the coolest node — greedy, capped at MaxMoves per round,
// and only when the move strictly narrows the donor/recipient gap.
//
// A stripe hotter than the donor's excess over the mean never moves:
// migrating it would only relocate the hotspot while freezing the most
// contended keys (every in-flight transaction on them aborts during the
// drain). Instead the donor sheds its cooler stripes until the mega-stripe
// is all it owns — the best balance a stripe-granular directory can reach.
type adaptivePolicy struct{}

func (adaptivePolicy) Name() string { return "adaptive" }

func (adaptivePolicy) Owner(d *Directory, key mem.Addr) int {
	return int(d.ownerAt(d.StripeOf(key)))
}

func (adaptivePolicy) Repartition(d *Directory) []Move {
	n := d.cfg.Nodes
	if n < 2 {
		return nil
	}
	load, total := nodeLoads(d)
	if total == 0 {
		return nil
	}
	mean := float64(total) / float64(n)
	var moves []Move
	planned := make(map[int]bool)
	for len(moves) < d.cfg.MaxMoves {
		donor, recip := 0, 0
		for i := 1; i < n; i++ {
			if load[i] > load[donor] {
				donor = i
			}
			if load[i] < load[recip] {
				recip = i
			}
		}
		if donor == recip || float64(load[donor]) <= d.cfg.ImbalanceFactor*mean {
			break
		}
		// Hottest unfrozen stripe of the donor that fits in its excess over
		// the mean and strictly improves the pair; ties break to the lowest
		// stripe index (determinism). The recipient constraint folds into
		// the heat cap: a candidate must also leave the recipient below the
		// donor after the move.
		excess := float64(load[donor]) - mean
		maxHeat := excess
		if gap := float64(load[donor]) - float64(load[recip]) - 1; gap < maxHeat {
			maxHeat = gap
		}
		best, bestCount, _ := hottestFit(d, donor, maxHeat, planned)
		if best < 0 {
			break
		}
		moves = append(moves, Move{Stripe: best, From: donor, To: recip})
		planned[best] = true
		load[donor] -= bestCount
		load[recip] += bestCount
	}
	return moves
}

// hierPolicy is adaptivePolicy plus locality-aware co-mapping: the stripe
// to shed is still the donor's hottest migratable stripe within its excess,
// but the recipient is chosen by the stripe's accessors — the least-loaded
// DTM node in the cluster of the stripe's dominant accessor group (its
// Boyer-Moore affinity vote), falling back to the globally coolest node
// when the affinity cluster has no improving node. Moves therefore pull
// data toward its users (shrinking the remote-access ratio) while still
// strictly narrowing the donor/recipient gap.
type hierPolicy struct{}

func (hierPolicy) Name() string { return "hier" }

func (hierPolicy) Owner(d *Directory, key mem.Addr) int {
	return int(d.ownerAt(d.StripeOf(key)))
}

func (hierPolicy) Repartition(d *Directory) []Move {
	n := d.cfg.Nodes
	if n < 2 {
		return nil
	}
	load, total := nodeLoads(d)
	if total == 0 {
		return nil
	}
	mean := float64(total) / float64(n)
	var moves []Move
	planned := make(map[int]bool)
	for len(moves) < d.cfg.MaxMoves {
		donor, coolest := 0, 0
		for i := 1; i < n; i++ {
			if load[i] > load[donor] {
				donor = i
			}
			if load[i] < load[coolest] {
				coolest = i
			}
		}
		if donor == coolest || float64(load[donor]) <= d.cfg.ImbalanceFactor*mean {
			break
		}
		excess := float64(load[donor]) - mean
		best, bestCount, aff := hottestFit(d, donor, excess, planned)
		if best < 0 {
			break
		}
		// Co-mapping: prefer the least-loaded node in the candidate's
		// dominant accessor cluster, provided moving there still strictly
		// narrows the gap; otherwise fall back to the globally coolest node.
		recip := -1
		if d.clustered() {
			if cl := affCluster(aff); cl >= 0 {
				for i := 0; i < n; i++ {
					if i != donor && d.cfg.Clusters[i] == cl && (recip < 0 || load[i] < load[recip]) {
						recip = i
					}
				}
				if recip >= 0 && load[recip]+bestCount >= load[donor] {
					recip = -1
				}
			}
		}
		if recip < 0 {
			if load[coolest]+bestCount >= load[donor] {
				break
			}
			recip = coolest
		}
		moves = append(moves, Move{Stripe: best, From: donor, To: recip})
		planned[best] = true
		load[donor] -= bestCount
		load[recip] += bestCount
	}
	return moves
}

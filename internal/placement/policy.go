package placement

import "repro/internal/mem"

// Policy is one pluggable mapping strategy behind a Directory. Implementations
// must be deterministic pure functions of the directory state: the same
// directory always resolves the same key to the same node, and Repartition
// proposes the same moves for the same counts.
type Policy interface {
	// Name is the policy's flag-friendly name.
	Name() string
	// Owner resolves a lock key under the directory's current assignment.
	Owner(d *Directory, key mem.Addr) int
	// Repartition inspects the closing epoch's per-stripe access counts and
	// returns the migrations to initiate. Static policies return nil.
	Repartition(d *Directory) []Move
}

func policyFor(k Kind) Policy {
	switch k {
	case Range:
		return rangePolicy{}
	case Adaptive:
		return adaptivePolicy{}
	default:
		return hashPolicy{}
	}
}

// hashPolicy is §3.2's static placement: a multiplicative (Murmur3
// finalizer) hash of the lock key, bit-identical to the pre-directory
// System.nodeFor.
type hashPolicy struct{}

func (hashPolicy) Name() string { return "hash" }

func (hashPolicy) Owner(d *Directory, key mem.Addr) int {
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(d.cfg.Nodes))
}

func (hashPolicy) Repartition(*Directory) []Move { return nil }

// rangePolicy stripes the address space contiguously: each node owns one
// contiguous block of stripes, so neighbouring addresses resolve to the
// same node (spatial locality; the wrap at Span*Stripes words restarts the
// blocks).
type rangePolicy struct{}

func (rangePolicy) Name() string { return "range" }

func (rangePolicy) Owner(d *Directory, key mem.Addr) int {
	return d.StripeOf(key) * d.cfg.Nodes / d.cfg.Stripes
}

func (rangePolicy) Repartition(*Directory) []Move { return nil }

// adaptivePolicy resolves through the directory's stripe-ownership table
// and rebalances it at epoch boundaries: while the hottest node carries
// more than ImbalanceFactor times the mean load, its hottest migratable
// stripe moves to the coolest node — greedy, capped at MaxMoves per round,
// and only when the move strictly narrows the donor/recipient gap.
//
// A stripe hotter than the donor's excess over the mean never moves:
// migrating it would only relocate the hotspot while freezing the most
// contended keys (every in-flight transaction on them aborts during the
// drain). Instead the donor sheds its cooler stripes until the mega-stripe
// is all it owns — the best balance a stripe-granular directory can reach.
type adaptivePolicy struct{}

func (adaptivePolicy) Name() string { return "adaptive" }

func (adaptivePolicy) Owner(d *Directory, key mem.Addr) int {
	return int(d.owner[d.StripeOf(key)])
}

func (adaptivePolicy) Repartition(d *Directory) []Move {
	n := d.cfg.Nodes
	if n < 2 {
		return nil
	}
	load := make([]uint64, n)
	var total uint64
	for s, c := range d.counts {
		load[d.owner[s]] += c
		total += c
	}
	if total == 0 {
		return nil
	}
	mean := float64(total) / float64(n)
	var moves []Move
	planned := make(map[int]bool)
	for len(moves) < d.cfg.MaxMoves {
		donor, recip := 0, 0
		for i := 1; i < n; i++ {
			if load[i] > load[donor] {
				donor = i
			}
			if load[i] < load[recip] {
				recip = i
			}
		}
		if donor == recip || float64(load[donor]) <= d.cfg.ImbalanceFactor*mean {
			break
		}
		// Hottest unfrozen stripe of the donor that fits in its excess over
		// the mean and strictly improves the pair; ties break to the lowest
		// stripe index (determinism).
		excess := float64(load[donor]) - mean
		best, bestCount := -1, uint64(0)
		for s := range d.counts {
			if int(d.owner[s]) != donor || d.pending[s] >= 0 || planned[s] {
				continue
			}
			c := d.counts[s]
			if c > bestCount && float64(c) <= excess && load[recip]+c < load[donor] {
				best, bestCount = s, c
			}
		}
		if best < 0 {
			break
		}
		moves = append(moves, Move{Stripe: best, From: donor, To: recip})
		planned[best] = true
		load[donor] -= bestCount
		load[recip] += bestCount
	}
	return moves
}

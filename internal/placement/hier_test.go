package placement

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestHierSplitMergeProperty drives hierarchical directories through random
// schedules of clustered accesses, forced migrations, handoff completions
// and full decay cycles, asserting after every step that the structural
// invariants hold — in particular that exactly one node owns every stripe
// (materialized or not) and that no leaf carrying a frozen stripe is ever
// merged away (CheckInvariants recounts each leaf's frozen bookkeeping, so
// a stranded freeze would surface as a mismatch or a panic on handoff).
func TestHierSplitMergeProperty(t *testing.T) {
	r := sim.NewRand(99)
	for trial := 0; trial < 20; trial++ {
		nodes := 2 + r.Intn(6)
		stripes := 64 << r.Intn(3)
		clusters := make([]int, nodes)
		for i := range clusters {
			clusters[i] = r.Intn(1 + i)
		}
		d, err := New(Config{
			Nodes: nodes, Kind: AdaptiveHier, Stripes: stripes, Span: 1,
			LeafStripes: 8, Clusters: clusters,
			EvalEvery: 16 + r.Intn(64), MaxMoves: 1 + r.Intn(4),
		})
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 4000; step++ {
			switch r.Intn(10) {
			case 0:
				d.InitiateMove(r.Intn(stripes), r.Intn(nodes))
			case 1, 2:
				for _, s := range d.PendingFor(r.Intn(nodes)) {
					if r.Intn(2) == 0 {
						d.CompleteHandoff(s)
					}
				}
			default:
				// Skewed clustered accesses: a few hot leaves, the rest cold,
				// so splits and merges both happen along the way.
				base := r.Intn(4) * 8
				d.Record(r.Intn(len(clusters)), mem.Addr(base+r.Intn(8)))
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
		// Drain everything, then let repeated evaluation decay all heat: no
		// frozen stripe may survive the drain, and every still-materialized
		// leaf must be there for a reason (moved ownership), never stranded
		// with pending state.
		for n := 0; n < nodes; n++ {
			for _, s := range d.PendingFor(n) {
				d.CompleteHandoff(s)
			}
			if d.HasPending(n) {
				t.Fatalf("trial %d: node %d still pending after drain", trial, n)
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("trial %d post-drain: %v", trial, err)
		}
		// One owner per stripe across the whole universe.
		perNode := make([]int, nodes)
		for s := 0; s < d.NumStripes(); s++ {
			o := d.StripeOwner(s)
			if o < 0 || o >= nodes {
				t.Fatalf("trial %d: stripe %d owned by %d", trial, s, o)
			}
			perNode[o]++
		}
		total := 0
		for _, c := range perNode {
			total += c
		}
		if total != d.NumStripes() {
			t.Fatalf("trial %d: %d stripes accounted, want %d", trial, total, d.NumStripes())
		}
	}
}

// TestHierLeavesMergeWhenCold checks the merge half of the lifecycle: after
// a burst of localized traffic stops, epoch decay must dematerialize every
// cooled leaf, leaving only leaves that still carry migrated ownership.
func TestHierLeavesMergeWhenCold(t *testing.T) {
	// ImbalanceFactor prohibitive: no migrations, so no stripe ever leaves
	// its default owner and the merge path is isolated from the move path.
	d, err := New(Config{
		Nodes: 4, Kind: AdaptiveHier, Stripes: 1 << 12, Span: 1,
		LeafStripes: 64, EvalEvery: 64, ImbalanceFactor: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer one leaf's worth of stripes hard enough that per-epoch decay
	// (halving) cannot zero them while the traffic lasts.
	for i := 0; i < 512; i++ {
		d.Record(-1, mem.Addr(i%8))
	}
	if d.MaterializedLeaves() == 0 {
		t.Fatal("no leaves materialized by recorded traffic")
	}
	if d.MaterializedLeaves() > 1 {
		t.Fatalf("%d leaves materialized for an 8-stripe working set with 64-stripe leaves", d.MaterializedLeaves())
	}
	// Cold epochs: traffic on one distant stripe keeps evaluation ticking
	// while the hot leaf's counts decay to zero and it merges away.
	for i := 0; i < 64*64; i++ {
		d.Record(-1, mem.Addr(4000))
	}
	if d.Merges == 0 {
		t.Error("no leaf merged after its counts fully decayed")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHierDirectoryWorkIsOTouched is the scaling witness at the directory
// level: a million-stripe universe with a small working set must
// materialize leaves proportional to the working set, not the universe.
func TestHierDirectoryWorkIsOTouched(t *testing.T) {
	const universeWords = 1 << 20
	d, err := New(Config{
		Nodes: 8, Kind: AdaptiveHier, RegionWords: universeWords, Span: 1,
		LeafStripes: 256, EvalEvery: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.LeafUniverse() != universeWords/256 {
		t.Fatalf("leaf universe = %d, want %d", d.LeafUniverse(), universeWords/256)
	}
	// A 4096-word working set scattered across the universe.
	r := sim.NewRand(7)
	keys := make([]mem.Addr, 4096)
	for i := range keys {
		keys[i] = mem.Addr(r.Intn(universeWords))
	}
	for i := 0; i < 1<<16; i++ {
		d.Record(i%4, keys[r.Intn(len(keys))])
	}
	leaves, universe := d.MaterializedLeaves(), d.LeafUniverse()
	if leaves > len(keys) { // one leaf per key is the worst case
		t.Fatalf("%d leaves for a %d-key working set", leaves, len(keys))
	}
	if 10*leaves >= universe {
		t.Fatalf("materialized leaves %d not ≪ leaf universe %d", leaves, universe)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestHierCoMappingPullsDataToAccessors checks the locality bias at the
// policy level: with two clusters whose cores touch disjoint stripe sets
// (each set starting on the wrong side), the hier policy must migrate
// stripes toward their accessors' cluster, strictly lowering the remote
// access ratio across epoch windows; the flat adaptive policy, blind to
// affinity, must end up with a higher remote ratio on the same stream.
func TestHierCoMappingPullsDataToAccessors(t *testing.T) {
	run := func(kind Kind) *Directory {
		d, err := New(Config{
			Nodes: 4, Kind: kind, Stripes: 256, Span: 1,
			LeafStripes: 16, Clusters: []int{0, 0, 1, 1},
			EvalEvery: 512, MaxMoves: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := sim.NewRand(11)
		// Cluster 0 hammers stripes whose interleaved default owners sit in
		// cluster 1 and vice versa: every access starts remote, and only
		// affinity-aware migration can fix it. Heat is skewed (Zipf-ish via
		// nested Intn) and stable across the whole run.
		for i := 0; i < 1<<16; i++ {
			k := r.Intn(1 + r.Intn(64))
			if i%2 == 0 {
				d.Record(0, mem.Addr(4*k+2)) // default owner 2: cluster 1
			} else {
				d.Record(1, mem.Addr(4*k+1)) // default owner 1: cluster 0
			}
			// Stripes drain instantly: no lock table in this test.
			for n := 0; n < 4; n++ {
				for _, s := range d.PendingFor(n) {
					d.CompleteHandoff(s)
				}
			}
		}
		return d
	}
	hier := run(AdaptiveHier)
	flat := run(Adaptive)
	hist := hier.RemoteHistory()
	if len(hist) < 2 {
		t.Fatalf("only %d epoch windows recorded", len(hist))
	}
	first, last := hist[0], hist[len(hist)-1]
	if last >= first {
		t.Errorf("hier remote ratio did not drop: first window %.3f, last %.3f", first, last)
	}
	hl, hr := hier.AccessLocality()
	fl, fr := flat.AccessLocality()
	hierRatio := float64(hr) / float64(hl+hr)
	flatRatio := float64(fr) / float64(fl+fr)
	if hierRatio >= flatRatio {
		t.Errorf("co-mapping remote ratio %.3f not below flat adaptive %.3f", hierRatio, flatRatio)
	}
	if err := hier.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

package sim

import (
	"testing"
	"time"
)

// BenchmarkEventDispatch measures raw kernel event throughput (heap push +
// pop + callback) without proc handoffs.
func BenchmarkEventDispatch(b *testing.B) {
	k := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.At(time.Nanosecond, tick)
		}
	}
	k.At(time.Nanosecond, tick)
	b.ResetTimer()
	k.Run(Infinity)
}

// BenchmarkProcHandoff measures the cost of one Advance round trip (two
// channel handoffs) between the kernel and a proc.
func BenchmarkProcHandoff(b *testing.B) {
	k := New(1)
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(time.Nanosecond)
		}
	})
	b.ResetTimer()
	k.Run(Infinity)
}

// BenchmarkSendRecv measures a one-message ping-pong between two procs.
func BenchmarkSendRecv(b *testing.B) {
	k := New(1)
	var a, c *Proc
	a = k.Spawn("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Send(c, i, time.Nanosecond)
			p.Recv()
		}
	})
	c = k.Spawn("c", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			m := p.Recv()
			p.Send(a, m.Payload, time.Nanosecond)
		}
	})
	b.ResetTimer()
	k.Run(Infinity)
}

// BenchmarkRand measures the PRNG.
func BenchmarkRand(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel models a many-core chip in virtual time: every simulated core is
// a Proc backed by a real goroutine, but the kernel guarantees that exactly
// one goroutine (either the kernel's event loop or a single Proc) executes at
// any instant. Control is handed off through unbuffered channels, so no
// shared state needs locking and, given a fixed seed, every run produces an
// identical event sequence.
//
// Procs interact with the simulation only through their *Proc handle:
// Advance consumes virtual compute time, Send/Recv exchange messages with a
// caller-supplied delivery delay, and Rand supplies deterministic
// pseudo-randomness. Higher layers (internal/noc, internal/core) decide what
// the delays mean physically.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is unrelated to wall-clock time.
type Time int64

// Infinity is a timestamp later than any reachable simulation instant.
const Infinity Time = math.MaxInt64

// Duration converts a virtual time span to a time.Duration. Virtual time is
// kept in nanoseconds, so the conversion is exact.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback. Events with equal timestamps fire in
// scheduling order (seq), which makes the simulation deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }

// Kernel is the discrete-event scheduler. The zero value is not usable; use
// New.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap

	procs  []*Proc
	live   int // procs spawned and not yet finished
	parked chan struct{}

	// fifoLast tracks the last delivery timestamp per (src, dst) pair so
	// that messages between the same two procs are never reordered even
	// when later messages are assigned smaller delays (e.g. under
	// congestion models).
	fifoLast map[uint64]Time

	killing bool
	seed    uint64
	// fault holds a panic value captured from a proc goroutine; resume
	// re-raises it in kernel context so it propagates out of Run to the
	// simulation's caller instead of killing the process.
	fault any

	eventsRun uint64
	hashing   bool
	hash      uint64
}

// New returns a kernel whose process RNGs derive from seed.
func New(seed uint64) *Kernel {
	return &Kernel{
		parked:   make(chan struct{}),
		fifoLast: make(map[uint64]Time),
		seed:     seed,
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed returns the seed the kernel was created with.
func (k *Kernel) Seed() uint64 { return k.seed }

// EventsRun reports how many events have fired so far. It is a cheap proxy
// for simulation effort, useful in tests and benchmarks.
func (k *Kernel) EventsRun() uint64 { return k.eventsRun }

// EnableTraceHash makes the kernel fold every fired event's (time, seq) pair
// into an FNV-1a hash, retrievable with TraceHash. Two runs of the same
// workload with the same seed must produce identical hashes.
func (k *Kernel) EnableTraceHash() { k.hashing = true; k.hash = 1469598103934665603 }

// TraceHash returns the accumulated event-trace hash (see EnableTraceHash).
func (k *Kernel) TraceHash() uint64 { return k.hash }

// schedule enqueues fn to run at timestamp at (clamped to now).
func (k *Kernel) schedule(at Time, fn func()) {
	if at < k.now {
		at = k.now
	}
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, fn: fn})
}

// At schedules fn to run in kernel context after virtual delay d. It may be
// called from kernel context (before Run, or inside another event) or from a
// running Proc.
func (k *Kernel) At(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	k.schedule(k.now+Time(d), fn)
}

// Run executes events until the event queue is empty (which implies every
// proc has finished or is blocked forever) or until the virtual deadline
// passes, whichever comes first. It returns the number of events fired
// during this call. Run(Infinity) drains the simulation.
func (k *Kernel) Run(until Time) uint64 {
	var fired uint64
	for len(k.events) > 0 && !k.killing {
		if k.events.peek().at > until {
			if until > k.now {
				k.now = until
			}
			return fired
		}
		ev := heap.Pop(&k.events).(event)
		k.now = ev.at
		k.eventsRun++
		fired++
		if k.hashing {
			k.hash ^= uint64(ev.at)
			k.hash *= 1099511628211
			k.hash ^= ev.seq
			k.hash *= 1099511628211
		}
		ev.fn()
	}
	return fired
}

// Idle reports whether no events remain.
func (k *Kernel) Idle() bool { return len(k.events) == 0 }

// Live reports how many spawned procs have not yet finished.
func (k *Kernel) Live() int { return k.live }

// Shutdown force-terminates every proc that is still blocked, releasing
// their goroutines. It must be called from kernel context (i.e. not from
// inside a proc). After Shutdown the kernel can still be inspected but no
// further events run.
func (k *Kernel) Shutdown() {
	k.killing = true
	for _, p := range k.procs {
		if !p.finished && p.started {
			// Wake the proc; park() observes killing and panics with
			// killSentinel, which the spawn wrapper recovers.
			k.resume(p)
		}
	}
	k.events = nil
}

// resume transfers control to p and blocks until p parks again or finishes.
// If the proc's goroutine died with a panic, the panic is re-raised here, in
// kernel context.
func (k *Kernel) resume(p *Proc) {
	p.wake <- struct{}{}
	<-k.parked
	if k.fault != nil {
		f := k.fault
		k.fault = nil
		panic(f)
	}
}

type pairKey = uint64

func mkPair(src, dst int32) pairKey { return uint64(uint32(src))<<32 | uint64(uint32(dst)) }

// deliverAt computes the FIFO-respecting delivery time for a message from
// src to dst wanted at time at, and records it.
func (k *Kernel) deliverAt(src, dst int32, at Time) Time {
	key := mkPair(src, dst)
	if last, ok := k.fifoLast[key]; ok && at < last {
		at = last
	}
	k.fifoLast[key] = at
	return at
}

package sim

// Rand is a small, fast, deterministic pseudo-random source
// (splitmix64-seeded xorshift128+). Each Proc owns one, derived from the
// kernel seed and the proc ID, so simulations are reproducible regardless of
// goroutine scheduling.
type Rand struct {
	s0, s1 uint64
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRand returns a source seeded from seed.
func NewRand(seed uint64) Rand {
	var r Rand
	r.s0 = splitmix64(&seed)
	r.s1 = splitmix64(&seed)
	if r.s0 == 0 && r.s1 == 0 {
		r.s1 = 1
	}
	return r
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

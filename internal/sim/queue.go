package sim

// MsgQueue is an in-order message queue with selective take: the mailbox
// representation shared by every execution backend (the kernel's procs here,
// the live backend's stash of deferred messages). Messages keep their
// delivery order; TakeMatch removes the earliest message satisfying a
// predicate and leaves the rest untouched. The zero value is an empty queue.
//
// Popped slots are compacted lazily (a head index plus an occasional copy),
// so steady-state receive loops allocate nothing.
type MsgQueue struct {
	items []Msg
	head  int
}

// Len returns the number of queued messages.
func (q *MsgQueue) Len() int { return len(q.items) - q.head }

// Push appends m behind every queued message.
func (q *MsgQueue) Push(m Msg) { q.items = append(q.items, m) }

// Pop removes and returns the earliest message. It panics on an empty
// queue; callers check Len first.
func (q *MsgQueue) Pop() Msg {
	m := q.items[q.head]
	q.items[q.head] = Msg{} // drop payload reference
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head > 64 && q.head*2 > len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return m
}

// TakeMatch removes and returns the earliest message satisfying pred,
// preserving the order of the rest. pred must be a pure function of the
// message: it may be re-evaluated over the same queued message any number
// of times.
func (q *MsgQueue) TakeMatch(pred func(Msg) bool) (Msg, bool) {
	for i := q.head; i < len(q.items); i++ {
		if pred(q.items[i]) {
			return q.takeAt(i), true
		}
	}
	return Msg{}, false
}

// takeAt removes and returns the message at index i (>= head), preserving
// the order of the remaining messages.
func (q *MsgQueue) takeAt(i int) Msg {
	if i == q.head {
		return q.Pop()
	}
	m := q.items[i]
	copy(q.items[i:], q.items[i+1:])
	q.items[len(q.items)-1] = Msg{} // drop payload reference
	q.items = q.items[:len(q.items)-1]
	return m
}

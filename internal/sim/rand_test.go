package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(77), NewRand(77)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRandSeedsIndependent(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across different seeds", same)
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n16 uint16) bool {
		n := int(n16%1000) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r := NewRand(1)
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64RoughlyUniform(t *testing.T) {
	r := NewRand(9)
	var buckets [10]int
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d of %d (expected ~%d)", i, c, n, n/10)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, n8 uint8) bool {
		n := int(n8 % 64)
		r := NewRand(seed)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

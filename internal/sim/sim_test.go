package sim

import (
	"testing"
	"time"
)

func TestAdvanceMovesVirtualTime(t *testing.T) {
	k := New(1)
	var end Time
	k.Spawn("a", func(p *Proc) {
		p.Advance(5 * time.Microsecond)
		p.Advance(7 * time.Microsecond)
		end = p.Now()
	})
	k.Run(Infinity)
	if end != Time(12*time.Microsecond) {
		t.Fatalf("end = %v, want 12µs", end)
	}
	if k.Live() != 0 {
		t.Fatalf("live = %d, want 0", k.Live())
	}
}

func TestAdvanceZeroIsNoop(t *testing.T) {
	k := New(1)
	k.Spawn("a", func(p *Proc) {
		before := k.EventsRun()
		p.Advance(0)
		if k.EventsRun() != before {
			t.Errorf("Advance(0) scheduled an event")
		}
	})
	k.Run(Infinity)
}

func TestEventOrderingByTimeThenSeq(t *testing.T) {
	k := New(1)
	var got []int
	k.At(2*time.Nanosecond, func() { got = append(got, 2) })
	k.At(1*time.Nanosecond, func() { got = append(got, 1) })
	k.At(1*time.Nanosecond, func() { got = append(got, 11) }) // same time, later seq
	k.At(0, func() { got = append(got, 0) })
	k.Run(Infinity)
	want := []int{0, 1, 11, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSendRecvDeliversWithDelay(t *testing.T) {
	k := New(1)
	var rx *Proc
	var gotAt Time
	var gotPayload any
	rx = k.Spawn("rx", func(p *Proc) {
		m := p.Recv()
		gotAt = p.Now()
		gotPayload = m.Payload
		if m.At != gotAt {
			t.Errorf("m.At = %v, now = %v", m.At, gotAt)
		}
		if m.SentAt != Time(3*time.Microsecond) {
			t.Errorf("m.SentAt = %v, want 3µs", m.SentAt)
		}
	})
	k.Spawn("tx", func(p *Proc) {
		p.Advance(3 * time.Microsecond)
		p.Send(rx, "hello", 2*time.Microsecond)
	})
	k.Run(Infinity)
	if gotAt != Time(5*time.Microsecond) {
		t.Fatalf("delivered at %v, want 5µs", gotAt)
	}
	if gotPayload != "hello" {
		t.Fatalf("payload = %v", gotPayload)
	}
}

func TestRecvBlocksUntilMessage(t *testing.T) {
	k := New(1)
	var rx *Proc
	order := []string{}
	rx = k.Spawn("rx", func(p *Proc) {
		p.Recv()
		order = append(order, "recv")
	})
	k.Spawn("tx", func(p *Proc) {
		p.Advance(time.Millisecond)
		order = append(order, "send")
		p.Send(rx, 1, 0)
	})
	k.Run(Infinity)
	if len(order) != 2 || order[0] != "send" || order[1] != "recv" {
		t.Fatalf("order = %v", order)
	}
}

func TestPerPairFIFOUnderShrinkingDelay(t *testing.T) {
	k := New(1)
	var rx *Proc
	var got []int
	rx = k.Spawn("rx", func(p *Proc) {
		for i := 0; i < 2; i++ {
			m := p.Recv()
			got = append(got, m.Payload.(int))
		}
	})
	k.Spawn("tx", func(p *Proc) {
		p.Send(rx, 1, 10*time.Microsecond)
		p.Send(rx, 2, 1*time.Microsecond) // would overtake without FIFO clamp
	})
	k.Run(Infinity)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("got %v, want [1 2]", got)
	}
}

func TestDistinctPairsMayOvertake(t *testing.T) {
	k := New(1)
	var rx *Proc
	var got []int
	rx = k.Spawn("rx", func(p *Proc) {
		for i := 0; i < 2; i++ {
			got = append(got, p.Recv().Payload.(int))
		}
	})
	k.Spawn("slow", func(p *Proc) { p.Send(rx, 1, 10*time.Microsecond) })
	k.Spawn("fast", func(p *Proc) { p.Send(rx, 2, 1*time.Microsecond) })
	k.Run(Infinity)
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("got %v, want [2 1]", got)
	}
}

func TestTryRecv(t *testing.T) {
	k := New(1)
	var rx *Proc
	rx = k.Spawn("rx", func(p *Proc) {
		if _, ok := p.TryRecv(); ok {
			t.Errorf("TryRecv returned a message on empty mailbox")
		}
		p.Advance(5 * time.Microsecond)
		m, ok := p.TryRecv()
		if !ok || m.Payload.(int) != 7 {
			t.Errorf("TryRecv after delivery: ok=%v m=%v", ok, m)
		}
	})
	k.Spawn("tx", func(p *Proc) { p.Send(rx, 7, time.Microsecond) })
	k.Run(Infinity)
}

func TestRecvTimeoutExpires(t *testing.T) {
	k := New(1)
	k.Spawn("rx", func(p *Proc) {
		start := p.Now()
		_, ok := p.RecvTimeout(4 * time.Microsecond)
		if ok {
			t.Errorf("expected timeout")
		}
		if p.Now()-start != Time(4*time.Microsecond) {
			t.Errorf("woke at %v after start", p.Now()-start)
		}
	})
	k.Run(Infinity)
}

func TestRecvTimeoutGetsMessage(t *testing.T) {
	k := New(1)
	var rx *Proc
	rx = k.Spawn("rx", func(p *Proc) {
		m, ok := p.RecvTimeout(10 * time.Microsecond)
		if !ok || m.Payload.(int) != 9 {
			t.Errorf("ok=%v m=%v", ok, m)
		}
		if p.Now() != Time(2*time.Microsecond) {
			t.Errorf("woke at %v, want 2µs", p.Now())
		}
		// The stale timer must not disturb a later Recv.
		m2 := p.Recv()
		if m2.Payload.(int) != 10 {
			t.Errorf("second recv got %v", m2.Payload)
		}
	})
	k.Spawn("tx", func(p *Proc) {
		p.Send(rx, 9, 2*time.Microsecond)
		p.Advance(20 * time.Microsecond)
		p.Send(rx, 10, time.Microsecond)
	})
	k.Run(Infinity)
}

func TestRecvTimeoutZeroOrNegative(t *testing.T) {
	k := New(1)
	k.Spawn("rx", func(p *Proc) {
		if _, ok := p.RecvTimeout(0); ok {
			t.Errorf("RecvTimeout(0) returned ok on empty mailbox")
		}
		if _, ok := p.RecvTimeout(-time.Second); ok {
			t.Errorf("RecvTimeout(<0) returned ok on empty mailbox")
		}
	})
	k.Run(Infinity)
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	k := New(1)
	fired := 0
	k.At(time.Millisecond, func() { fired++ })
	k.At(3*time.Millisecond, func() { fired++ })
	k.Run(Time(2 * time.Millisecond))
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if k.Now() != Time(2*time.Millisecond) {
		t.Fatalf("now = %v, want 2ms", k.Now())
	}
	k.Run(Infinity)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestShutdownReleasesBlockedProcs(t *testing.T) {
	k := New(1)
	for i := 0; i < 10; i++ {
		k.Spawn("blocked", func(p *Proc) {
			p.Recv() // never satisfied
			t.Errorf("blocked proc returned from Recv")
		})
	}
	k.Run(Infinity)
	if k.Live() != 10 {
		t.Fatalf("live = %d, want 10", k.Live())
	}
	k.Shutdown()
	if k.Live() != 0 {
		t.Fatalf("after shutdown live = %d, want 0", k.Live())
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := New(1)
	done := false
	k.Spawn("parent", func(p *Proc) {
		p.Advance(time.Microsecond)
		child := k.Spawn("child", func(c *Proc) {
			c.Advance(time.Microsecond)
			done = true
		})
		if child.Name() != "child" {
			t.Errorf("child name = %q", child.Name())
		}
	})
	k.Run(Infinity)
	if !done {
		t.Fatal("child did not run")
	}
}

func TestYieldLetsPeersRun(t *testing.T) {
	k := New(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run(Infinity)
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterministicTraceHash(t *testing.T) {
	run := func() uint64 {
		k := New(42)
		k.EnableTraceHash()
		var procs []*Proc
		for i := 0; i < 8; i++ {
			procs = append(procs, k.Spawn("svc", func(p *Proc) {
				for {
					m, ok := p.RecvTimeout(50 * time.Microsecond)
					if !ok {
						return
					}
					p.Advance(time.Duration(p.Rand().Intn(500)) * time.Nanosecond)
					_ = m
				}
			}))
		}
		k.Spawn("driver", func(p *Proc) {
			for i := 0; i < 200; i++ {
				dst := procs[p.Rand().Intn(len(procs))]
				p.Send(dst, i, time.Duration(p.Rand().Intn(2000))*time.Nanosecond)
				p.Advance(time.Duration(p.Rand().Intn(300)) * time.Nanosecond)
			}
		})
		k.Run(Infinity)
		return k.TraceHash()
	}
	h1, h2 := run(), run()
	if h1 != h2 {
		t.Fatalf("trace hashes differ: %x vs %x", h1, h2)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	run := func(seed uint64) Time {
		k := New(seed)
		var end Time
		k.Spawn("p", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Advance(time.Duration(p.Rand().Intn(1000)+1) * time.Nanosecond)
			}
			end = p.Now()
		})
		k.Run(Infinity)
		return end
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

func TestMailboxCompaction(t *testing.T) {
	k := New(1)
	var rx *Proc
	total := 0
	rx = k.Spawn("rx", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			total += p.Recv().Payload.(int)
		}
	})
	k.Spawn("tx", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Send(rx, 1, time.Nanosecond)
		}
	})
	k.Run(Infinity)
	if total != 1000 {
		t.Fatalf("total = %d, want 1000", total)
	}
}

func TestSendToFinishedProcIsDropped(t *testing.T) {
	k := New(1)
	var rx *Proc
	rx = k.Spawn("rx", func(p *Proc) {}) // exits immediately
	k.Spawn("tx", func(p *Proc) {
		p.Advance(time.Millisecond)
		p.Send(rx, 1, time.Microsecond) // must not panic or wake anything
	})
	k.Run(Infinity)
	if k.Live() != 0 {
		t.Fatalf("live = %d", k.Live())
	}
}

func TestNegativeDelaysPanic(t *testing.T) {
	k := New(1)
	k.Spawn("p", func(p *Proc) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("negative Advance did not panic")
				}
			}()
			p.Advance(-time.Second)
		}()
	})
	k.Run(Infinity)
}

func TestProcPanicPropagatesToRunCaller(t *testing.T) {
	k := New(1)
	k.Spawn("buggy", func(p *Proc) {
		p.Advance(time.Microsecond)
		panic("proc bug")
	})
	defer func() {
		r := recover()
		if r != "proc bug" {
			t.Fatalf("recovered %v, want proc bug", r)
		}
	}()
	k.Run(Infinity)
	t.Fatal("Run returned despite proc panic")
}

func TestTimeString(t *testing.T) {
	if Time(1500).String() != "1.5µs" {
		t.Fatalf("Time.String = %q", Time(1500).String())
	}
	if Time(time.Millisecond).Duration() != time.Millisecond {
		t.Fatal("Duration round-trip failed")
	}
}

func TestRecvMatchSelectsAcrossQueue(t *testing.T) {
	k := New(1)
	var rx *Proc
	got := make([]int, 0, 4)
	rx = k.Spawn("rx", func(p *Proc) {
		// Wait for all four messages to be queued.
		for p.Pending() < 4 {
			p.Advance(10 * time.Microsecond)
		}
		// Take the even payloads first, in delivery order, leaving the odd
		// ones queued.
		even := func(m Msg) bool { return m.Payload.(int)%2 == 0 }
		got = append(got, p.RecvMatch(even).Payload.(int))
		got = append(got, p.RecvMatch(even).Payload.(int))
		// Plain Recv drains the remainder in delivery order.
		got = append(got, p.Recv().Payload.(int))
		got = append(got, p.Recv().Payload.(int))
	})
	k.Spawn("tx", func(p *Proc) {
		for i, v := range []int{1, 2, 3, 4} {
			p.Send(rx, v, time.Duration(i+1)*time.Microsecond)
		}
	})
	k.Run(Infinity)
	want := []int{2, 4, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestRecvMatchBlocksUntilMatchArrives(t *testing.T) {
	k := New(1)
	var rx *Proc
	var matchedAt Time
	rx = k.Spawn("rx", func(p *Proc) {
		m := p.RecvMatch(func(m Msg) bool { return m.Payload.(string) == "yes" })
		matchedAt = p.Now()
		if m.Payload.(string) != "yes" {
			t.Errorf("matched payload %v", m.Payload)
		}
		if p.Pending() != 2 {
			t.Errorf("pending = %d, want 2 skipped messages", p.Pending())
		}
	})
	k.Spawn("tx", func(p *Proc) {
		p.Send(rx, "no", 1*time.Microsecond)
		p.Send(rx, "nope", 2*time.Microsecond)
		p.Send(rx, "yes", 5*time.Microsecond)
	})
	k.Run(Infinity)
	if matchedAt != Time(5*time.Microsecond) {
		t.Fatalf("matched at %v, want 5µs", matchedAt)
	}
}

func TestTryRecvMatch(t *testing.T) {
	k := New(1)
	var rx *Proc
	rx = k.Spawn("rx", func(p *Proc) {
		for p.Pending() < 2 {
			p.Advance(10 * time.Microsecond)
		}
		if _, ok := p.TryRecvMatch(func(m Msg) bool { return m.Payload.(int) > 10 }); ok {
			t.Errorf("TryRecvMatch matched nothing-should-match")
		}
		m, ok := p.TryRecvMatch(func(m Msg) bool { return m.Payload.(int) == 2 })
		if !ok || m.Payload.(int) != 2 {
			t.Errorf("TryRecvMatch = %v, %v", m.Payload, ok)
		}
		if p.Pending() != 1 {
			t.Errorf("pending = %d, want 1", p.Pending())
		}
	})
	k.Spawn("tx", func(p *Proc) {
		p.Send(rx, 1, time.Microsecond)
		p.Send(rx, 2, 2*time.Microsecond)
	})
	k.Run(Infinity)
}

// TestBatchEnvelopeUnpacksAtMailbox: a *Batch payload must be unpacked at
// delivery — the receiver observes one Msg per payload, in staged order,
// all carrying the envelope's sender and timestamps, and never sees the
// Batch itself. This is the delivery half of the coalescing message plane.
func TestBatchEnvelopeUnpacksAtMailbox(t *testing.T) {
	k := New(1)
	var got []Msg
	recvd := k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, p.Recv())
		}
	})
	k.Spawn("send", func(p *Proc) {
		p.Send(recvd, &Batch{Payloads: []any{"a", "b", "c"}}, 10*time.Nanosecond)
		p.Send(recvd, "solo", 20*time.Nanosecond)
	})
	k.Run(Infinity)
	if len(got) != 4 {
		t.Fatalf("received %d messages, want 4", len(got))
	}
	want := []any{"a", "b", "c", "solo"}
	for i, m := range got {
		if m.Payload != want[i] {
			t.Errorf("msg %d payload %v, want %v", i, m.Payload, want[i])
		}
		if _, isBatch := m.Payload.(*Batch); isBatch {
			t.Errorf("msg %d: receiver observed a raw Batch envelope", i)
		}
	}
	// The unpacked messages share the envelope's delivery instant.
	if got[0].At != got[1].At || got[1].At != got[2].At {
		t.Errorf("unpacked delivery times differ: %v %v %v", got[0].At, got[1].At, got[2].At)
	}
	if got[0].From != got[1].From || got[0].SentAt != got[2].SentAt {
		t.Error("unpacked messages lost the envelope's sender or send time")
	}
}

// TestBatchEnvelopeSelectiveReceive: selective receive must see the
// unpacked payloads individually — a predicate can take one payload out of
// the middle of an envelope and leave the rest queued in order.
func TestBatchEnvelopeSelectiveReceive(t *testing.T) {
	k := New(1)
	var order []any
	recvd := k.Spawn("recv", func(p *Proc) {
		m := p.RecvMatch(func(m Msg) bool { return m.Payload == "pick" })
		order = append(order, m.Payload)
		for i := 0; i < 2; i++ {
			order = append(order, p.Recv().Payload)
		}
	})
	k.Spawn("send", func(p *Proc) {
		p.Send(recvd, &Batch{Payloads: []any{"x", "pick", "y"}}, 0)
	})
	k.Run(Infinity)
	want := []any{"pick", "x", "y"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

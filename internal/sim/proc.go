package sim

import (
	"fmt"
	"sync"
	"time"
)

// Msg is a message delivered to a Proc's mailbox.
type Msg struct {
	From    int  // sender proc ID
	SentAt  Time // virtual time the send was issued
	At      Time // virtual delivery time
	Payload any  // application payload
}

// Batch is a multi-payload wire envelope: one physical message carrying
// several protocol payloads coalesced for the same destination (the
// message-plane transport optimization behind port.Outbox). Every backend
// unpacks the envelope at the receiving mailbox — each payload becomes its
// own Msg, in staged order, with the envelope's sender and timestamps — so
// receivers and their selective-receive predicates never observe a Batch.
// The sender charges the wire cost of the envelope once (noc.BatchDelay);
// delivery as individual messages is free. Payloads must be non-empty:
// both backends reject an empty envelope loudly rather than diverge on
// what a message that delivers nothing means.
type Batch struct {
	Payloads []any
}

// batchPool recycles Batch envelopes and their payload backing arrays. The
// lifetime is one wire hop: a sender draws an envelope with GetBatch and
// copies the staged payloads in; the receiving mailbox unpacks it and hands
// it back with PutBatch. Envelopes that are never unpacked (a shutdown drops
// the mailbox) simply fall to the garbage collector.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

// GetBatch returns an empty envelope from the pool. Its Payloads slice is
// length zero but may retain capacity from a previous hop.
func GetBatch() *Batch {
	b := batchPool.Get().(*Batch)
	b.Payloads = b.Payloads[:0]
	return b
}

// PutBatch recycles an unpacked envelope. The caller must be done with b and
// with the Payloads slice header (the payload values themselves have already
// been re-homed into the receiver's mailbox).
func PutBatch(b *Batch) {
	for i := range b.Payloads {
		b.Payloads[i] = nil
	}
	b.Payloads = b.Payloads[:0]
	batchPool.Put(b)
}

// killSentinel is panicked out of park() during Kernel.Shutdown so that the
// spawn wrapper can unwind a blocked proc's goroutine.
type killSentinel struct{}

// Proc is a simulated process (one core, one service loop, ...). All methods
// except ID and Name must be called only from the proc's own goroutine while
// it is the running process.
type Proc struct {
	k    *Kernel
	id   int
	name string

	wake     chan struct{}
	started  bool
	finished bool

	mbox    MsgQueue
	waiting bool
	tgen    uint64 // generation counter cancelling stale RecvTimeout timers

	// onBatch, when set, observes every Batch envelope unpacked into this
	// proc's mailbox (the payload count). It runs in kernel context at the
	// delivery instant; it must not touch kernel state or block.
	onBatch func(n int)

	rng Rand
}

// SetBatchHook installs fn to observe every multi-payload Batch envelope
// delivered to this proc (called with the envelope's payload count at the
// delivery instant). Install before the kernel runs; a nil fn disables it.
func (p *Proc) SetBatchHook(fn func(n int)) { p.onBatch = fn }

// Spawn creates a new proc running fn and schedules it to start at the
// current virtual time. Spawn may be called from kernel context or from a
// running proc.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		k:    k,
		id:   len(k.procs),
		name: name,
		wake: make(chan struct{}),
		rng:  NewRand(k.seed ^ (0x9e3779b97f4a7c15 * uint64(len(k.procs)+1))),
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); !ok {
					// A real bug in proc code: hand the panic to the
					// kernel, which re-raises it in Run's caller.
					k.fault = r
				}
			}
			p.finished = true
			k.live--
			k.parked <- struct{}{}
		}()
		<-p.wake
		p.started = true
		fn(p)
	}()
	k.schedule(k.now, func() {
		if !k.killing {
			k.resume(p)
		}
	})
	return p
}

// ID returns the proc's kernel-assigned identifier.
func (p *Proc) ID() int { return p.id }

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Rand returns the proc's deterministic random source.
func (p *Proc) Rand() *Rand { return &p.rng }

// park yields control back to the kernel and blocks until resumed.
func (p *Proc) park() {
	p.k.parked <- struct{}{}
	<-p.wake
	if p.k.killing {
		panic(killSentinel{})
	}
}

// Advance consumes d of virtual compute time.
func (p *Proc) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative advance %v", p.name, d))
	}
	if d == 0 {
		return
	}
	k := p.k
	k.schedule(k.now+Time(d), func() { k.resume(p) })
	p.park()
}

// Yield reschedules the proc at the current instant behind already-pending
// events, letting same-timestamp work elsewhere proceed first.
func (p *Proc) Yield() {
	k := p.k
	k.schedule(k.now, func() { k.resume(p) })
	p.park()
}

// Send delivers payload to dst after the given delay. Messages between the
// same (src, dst) pair are never reordered: if a later send computes an
// earlier delivery time it is clamped to the previous delivery time.
// Send does not block the sender.
func (p *Proc) Send(dst *Proc, payload any, delay time.Duration) {
	p.k.SendFrom(p.id, dst, payload, delay)
}

// SendFrom is Send with an explicit source ID; the kernel may use it from
// event context (e.g. environment-injected messages).
func (k *Kernel) SendFrom(src int, dst *Proc, payload any, delay time.Duration) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative send delay %v", delay))
	}
	if b, ok := payload.(*Batch); ok && len(b.Payloads) == 0 {
		panic("sim: empty batch envelope")
	}
	sent := k.now
	at := k.deliverAt(int32(src), int32(dst.id), k.now+Time(delay))
	k.schedule(at, func() {
		if dst.finished {
			return
		}
		// A Batch envelope is unpacked here, at the mailbox: each payload
		// becomes its own Msg in staged order, so receive loops and
		// selective-receive predicates never see the envelope itself.
		if b, ok := payload.(*Batch); ok {
			for _, pl := range b.Payloads {
				dst.mbox.Push(Msg{From: src, SentAt: sent, At: k.now, Payload: pl})
			}
			if dst.onBatch != nil {
				dst.onBatch(len(b.Payloads))
			}
			PutBatch(b)
		} else {
			dst.mbox.Push(Msg{From: src, SentAt: sent, At: k.now, Payload: payload})
		}
		if dst.waiting {
			dst.waiting = false
			k.resume(dst)
		}
	})
}

// Pending reports how many messages are queued in the proc's mailbox.
func (p *Proc) Pending() int { return p.mbox.Len() }

// Recv blocks until a message is available and returns it.
func (p *Proc) Recv() Msg {
	for p.Pending() == 0 {
		p.waiting = true
		p.park()
	}
	return p.mbox.Pop()
}

// TryRecv returns a queued message, if any, without blocking.
func (p *Proc) TryRecv() (Msg, bool) {
	if p.Pending() == 0 {
		return Msg{}, false
	}
	return p.mbox.Pop(), true
}

// RecvMatch blocks until a message satisfying pred is available and returns
// the earliest-delivered one. Messages that do not satisfy pred stay queued
// in delivery order for later Recv/RecvMatch calls, so a proc with several
// outstanding request/response conversations can await exactly the replies
// it can currently process and leave unrelated traffic untouched.
//
// pred must be a pure function of the message: it may be re-evaluated over
// the same queued message any number of times.
func (p *Proc) RecvMatch(pred func(Msg) bool) Msg {
	for {
		if m, ok := p.mbox.TakeMatch(pred); ok {
			return m
		}
		p.waiting = true
		p.park()
	}
}

// TryRecvMatch returns the earliest queued message satisfying pred, if any,
// without blocking. Non-matching messages stay queued.
func (p *Proc) TryRecvMatch(pred func(Msg) bool) (Msg, bool) {
	return p.mbox.TakeMatch(pred)
}

// RecvTimeout waits up to d for a message. ok is false on timeout.
func (p *Proc) RecvTimeout(d time.Duration) (m Msg, ok bool) {
	if p.Pending() > 0 {
		return p.mbox.Pop(), true
	}
	if d <= 0 {
		return Msg{}, false
	}
	k := p.k
	p.tgen++
	gen := p.tgen
	expired := false
	k.schedule(k.now+Time(d), func() {
		// Fire only if the proc is still blocked in the same RecvTimeout.
		if p.waiting && gen == p.tgen && !p.finished {
			p.waiting = false
			expired = true
			k.resume(p)
		}
	})
	p.waiting = true
	p.park()
	if expired && p.Pending() == 0 {
		return Msg{}, false
	}
	p.tgen++ // cancel the pending timer if a message won the race
	return p.mbox.Pop(), true
}

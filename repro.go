// Package repro is TM2C-Go: a reproduction of "TM2C: a Software
// Transactional Memory for Many-Cores" (Gramoli, Guerraoui, Trigonakis,
// EuroSys 2012) as a Go library.
//
// TM2C runs transactions on a non-cache-coherent many-core by turning every
// shared access into message passing against a distributed lock service
// (DS-Lock), with fully decentralized contention management. This package is
// the public facade: it re-exports the supported surface of the internal
// packages — the simulated many-core (System), the transactional runtime
// (Runtime, Tx), the contention-manager policies, and the platform timing
// models (SCC under its five performance settings, and a 48-core Opteron
// multi-core).
//
// A minimal program, on the typed API (generic TVar/TArray over a word
// codec, error-based Atomic control flow):
//
//	sys, err := repro.NewSystem(repro.Config{Policy: repro.FairCM})
//	if err != nil { ... }
//	accts := repro.NewTArray(sys, repro.Uint64Codec(), 2, 100)
//	sys.SpawnWorkers(func(rt *repro.Runtime) {
//		for !rt.Stopped() {
//			err := rt.Atomic(func(tx *repro.Tx) error {
//				from := accts.Get(tx, 0)
//				if from == 0 {
//					tx.Abort(errors.New("insufficient funds")) // no retry
//				}
//				accts.Set(tx, 0, from-1)
//				accts.Set(tx, 1, accts.Get(tx, 1)+1)
//				return nil
//			})
//			_ = err
//			rt.AddOps(1)
//		}
//	})
//	stats := sys.Run(10 * time.Millisecond)
//	fmt.Printf("%.1f ops/ms, %.1f%% commit rate\n",
//		stats.Throughput(), stats.CommitRate())
//
// The word-level API (Tx.Read/Write over raw Addr, Runtime.Run) remains
// fully supported as the low-level substrate underneath the typed layer.
// Declared read-only transactions (Runtime.RunReadOnly/AtomicReadOnly) skip
// the whole commit-time write machinery and serialize at their last read.
//
// Time inside a System is virtual: Run executes the workload on a
// deterministic discrete-event simulation of the target platform, so results
// are reproducible bit-for-bit for a given Config.Seed.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper's
// reproduced figures.
package repro

import (
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/placement"
	"repro/internal/sim"
)

// Core system types.
type (
	// System is one simulated TM2C machine; see core.System.
	System = core.System
	// Config configures a System.
	Config = core.Config
	// Runtime is the per-application-core transactional runtime.
	Runtime = core.Runtime
	// Tx is one transaction attempt.
	Tx = core.Tx
	// Irrevocable is the handle of an irrevocable (pessimistic,
	// side-effect-capable) transaction; see Runtime.RunIrrevocable.
	Irrevocable = core.Irrevocable
	// Stats are the counters collected by a run.
	Stats = core.Stats
	// CoreStats is the per-core breakdown inside Stats.
	CoreStats = core.CoreStats
	// Costs are the nominal software costs of the runtime.
	Costs = core.Costs
	// Deployment selects dedicated or multitasked service cores.
	Deployment = core.Deployment
	// AcquireMode selects lazy or eager write-lock acquisition.
	AcquireMode = core.AcquireMode
	// TxKind selects normal or elastic transactions.
	TxKind = core.TxKind
	// Policy is a contention-management policy.
	Policy = cm.Policy
	// PlacementKind selects the object→DTM-node placement policy.
	PlacementKind = placement.Kind
	// PlacementDirectory is the key→DTM-node directory of a System.
	PlacementDirectory = placement.Directory
	// Platform is a timing model (SCC setting or Opteron).
	Platform = noc.Platform
	// Addr is a word address in the simulated shared memory.
	Addr = mem.Addr
	// Time is a virtual timestamp (nanoseconds).
	Time = sim.Time
	// Port is one core's execution context on the configured backend
	// (used by SpawnRaw baselines and Runtime.Port); see core.Port.
	Port = core.Port
	// Backend selects the execution backend of a System: the
	// deterministic simulator or the real-concurrency goroutine backend.
	Backend = core.Backend
	// NetConfig places one process within a cross-process (BackendNet)
	// system: rank, rank count, per-rank addresses, session.
	NetConfig = core.NetConfig
	// Protocol selects the read-visibility protocol of a System: visible
	// reads (per-read DTM round trips) or invisible-read TL2 (local reads
	// against a sharded version clock, commit-time validation).
	Protocol = core.Protocol
	// Proc is a simulated process (the sim backend's Port implementation
	// wraps it; advanced simulator-level tooling only).
	Proc = sim.Proc
	// Rand is the deterministic per-core random source.
	Rand = sim.Rand
)

// Deployment strategies (§3.1).
const (
	Dedicated = core.Dedicated
	Multitask = core.Multitask
)

// Execution backends. BackendSim is the deterministic discrete-event
// simulator (virtual time, reproducible); BackendLive runs every core as a
// real goroutine (wall-clock time, hardware speed, not reproducible);
// BackendNet spreads the cores over separate OS processes connected by
// length-prefixed binary frames (Config.Net places each process).
const (
	BackendSim  = core.BackendSim
	BackendLive = core.BackendLive
	BackendNet  = core.BackendNet
)

// Read-visibility protocols. ProtocolVisible is the paper's protocol —
// every first read of an object costs one DTM round trip and installs a
// visible read lock; ProtocolTL2 serves reads from a local version table
// validated against a sharded global version clock, moving all network
// work to commit time (see internal/core/tl2.go).
const (
	ProtocolVisible = core.ProtocolVisible
	ProtocolTL2     = core.ProtocolTL2
)

// Write-lock acquisition modes (§3.3).
const (
	Lazy  = core.Lazy
	Eager = core.Eager
)

// Transaction kinds (§3.3, §6). ReadOnly is the declared read-only kind:
// writes panic, the commit-time lock machinery is skipped entirely, and
// commits are counted in Stats.ReadOnlyCommits.
const (
	Normal       = core.Normal
	ElasticEarly = core.ElasticEarly
	ElasticRead  = core.ElasticRead
	ReadOnly     = core.ReadOnly
)

// Typed transactional layer: generic typed variables and arrays over the
// word-level substrate. See core.TVar for the full semantics.
type (
	// TVar is a typed transactional variable over one fixed-size object.
	TVar[T any] = core.TVar[T]
	// TArray is a typed transactional array of independently locked
	// elements.
	TArray[T any] = core.TArray[T]
	// WordCodec translates T to and from a fixed number of 64-bit words.
	WordCodec[T any] = core.WordCodec[T]
)

// Atomic control-flow errors (see Runtime.Atomic and Tx.Abort).
var (
	// ErrRetry, returned from an Atomic body, aborts the attempt and
	// retries it after the contention manager's backoff.
	ErrRetry = core.ErrRetry
	// ErrAborted is returned by Atomic for a Tx.Abort(nil).
	ErrAborted = core.ErrAborted
)

// Built-in word codecs.
func Uint64Codec() WordCodec[uint64] { return core.Uint64Codec() }

// Int64Codec returns the codec for a single int64.
func Int64Codec() WordCodec[int64] { return core.Int64Codec() }

// BoolCodec returns the codec for a bool.
func BoolCodec() WordCodec[bool] { return core.BoolCodec() }

// AddrCodec returns the codec for a shared-memory address (pointer field).
func AddrCodec() WordCodec[Addr] { return core.AddrCodec() }

// FuncCodec builds a WordCodec from explicit encode/decode functions — for
// fixed-size application structs.
func FuncCodec[T any](words int, enc func(v T, dst []uint64), dec func(src []uint64) T) WordCodec[T] {
	return core.FuncCodec(words, enc, dec)
}

// NewTVar allocates a typed transactional variable behind memory
// controller 0 and raw-writes init.
func NewTVar[T any](sys *System, c WordCodec[T], init T) TVar[T] {
	return core.NewTVar(sys, c, init)
}

// NewTVarAt allocates a TVar behind an explicit memory controller.
func NewTVarAt[T any](sys *System, c WordCodec[T], mc int, init T) TVar[T] {
	return core.NewTVarAt(sys, c, mc, init)
}

// NewTVarNear allocates a TVar behind the memory controller closest to
// core — the §5.2 data-placement hint, expressed in the allocation API.
func NewTVarNear[T any](sys *System, c WordCodec[T], coreID int, init T) TVar[T] {
	return core.NewTVarNear(sys, c, coreID, init)
}

// TVarAt views an existing allocation at base as a TVar.
func TVarAt[T any](sys *System, c WordCodec[T], base Addr) TVar[T] {
	return core.TVarAt(sys, c, base)
}

// NewTArray allocates a typed transactional array behind memory
// controller 0, raw-writing init into every element.
func NewTArray[T any](sys *System, c WordCodec[T], n int, init T) TArray[T] {
	return core.NewTArray(sys, c, n, init)
}

// NewTArrayAt allocates the array behind an explicit memory controller.
func NewTArrayAt[T any](sys *System, c WordCodec[T], n, mc int, init T) TArray[T] {
	return core.NewTArrayAt(sys, c, n, mc, init)
}

// NewTArrayNear allocates the array behind the controller closest to core.
func NewTArrayNear[T any](sys *System, c WordCodec[T], n, coreID int, init T) TArray[T] {
	return core.NewTArrayNear(sys, c, n, coreID, init)
}

// Contention managers (§4).
const (
	NoCM         = cm.NoCM
	BackoffRetry = cm.BackoffRetry
	OffsetGreedy = cm.OffsetGreedy
	Wholly       = cm.Wholly
	FairCM       = cm.FairCM
)

// Placement policies (internal/placement): the paper's static hash
// (default), contiguous range striping, epoch-based adaptive
// repartitioning, and the hierarchical locality-aware variant of the
// adaptive policy.
const (
	PlacementHash     = placement.Hash
	PlacementRange    = placement.Range
	PlacementAdaptive = placement.Adaptive
	PlacementHier     = placement.AdaptiveHier
)

// NewSystem builds a simulated TM2C machine from cfg. Zero-valued fields
// take the paper's defaults: the SCC under performance setting 0, all 48
// cores, half of them dedicated DTM service cores, lazy write-lock
// acquisition with batching, and the NoCM policy.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// SCC returns the Intel Single-chip Cloud Computer platform under
// performance setting id (0..4, §5.1). Setting 0 is the paper's default;
// setting 1 is the fast "SCC800" configuration of §7.
func SCC(id int) Platform { return noc.SCC(id) }

// Opteron returns the 48-core AMD Opteron multi-core of §7.
func Opteron() Platform { return noc.Opteron() }

// ParsePolicy parses a contention-manager name
// (none|backoff|offset-greedy|wholly|faircm).
func ParsePolicy(s string) (Policy, error) { return cm.Parse(s) }

// ParsePlacement parses a placement policy name (hash|range|adaptive|hier).
func ParsePlacement(s string) (PlacementKind, error) { return placement.Parse(s) }

// ParseBackend parses an execution backend name (sim|live).
func ParseBackend(s string) (Backend, error) { return core.ParseBackend(s) }

// ParseProtocol parses a read-visibility protocol name (visible|tl2; the
// empty string is the visible default).
func ParseProtocol(s string) (Protocol, error) { return core.ParseProtocol(s) }

// NewRand returns a deterministic random source seeded from seed, suitable
// for building workloads outside the simulated machine.
func NewRand(seed uint64) Rand { return sim.NewRand(seed) }

// Policies lists every contention manager in presentation order.
func Policies() []Policy { return append([]Policy(nil), cm.Policies...) }
